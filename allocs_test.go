package bifrost

// Allocation-regression tests for the allocation-free steady state (PR 5):
// once the pack cache is warm and output tensors are recycled through the
// arena, the fused full-accuracy Conv2D and Dense paths must run at ~0
// allocations per operation. These pins are what keep the warm-sweep
// throughput from regressing via allocator pressure — a change that
// reintroduces per-job packing or fresh tensor allocations fails here
// before it shows up in a benchmark.

import (
	"testing"

	"repro/internal/farm"
	"repro/internal/stonne/config"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// steadyStateAllocs measures allocations per run after a warmup that fills
// the pack cache and the tensor arena.
func steadyStateAllocs(run func()) float64 {
	for i := 0; i < 5; i++ {
		run() // warm: publish packs, grow scratch, seed the arena
	}
	return testing.AllocsPerRun(50, run)
}

// TestFusedConvSteadyStateAllocFree pins the fused full-accuracy Conv2D
// path — analytic counters plus the panel-streaming arithmetic — to ~0
// allocs/op once the content-keyed panels are cached and outputs are
// released back to the arena.
func TestFusedConvSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	d := tensor.ConvDims{N: 1, C: 32, H: 8, W: 8, K: 32, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 4, TG: 1, TN: 1, TX: 1, TY: 1}
	in := tensor.RandomUniform(1, 1, d.N, d.H, d.W, d.C)
	ker := tensor.RandomUniform(2, 1, d.R, d.S, d.C, d.K)
	eng, err := maeri.NewEngine(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	eng.Pack = tensor.NewPackCache(0, 0)

	allocs := steadyStateAllocs(func() {
		out, _, err := eng.Conv2D(in, ker, d, m)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	})
	if allocs > 2 {
		t.Fatalf("steady-state fused Conv2D allocates %.1f/op, want ~0 (<= 2)", allocs)
	}
}

// TestFusedDenseSteadyStateAllocFree pins the fused full-accuracy Dense
// path the same way.
func TestFusedDenseSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	in := tensor.RandomUniform(1, 1, 4, 256)
	w := tensor.RandomUniform(2, 1, 128, 256)
	m := mapping.FCMapping{TS: 8, TK: 4, TN: 1}
	eng, err := maeri.NewEngine(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	eng.Pack = tensor.NewPackCache(0, 0)

	allocs := steadyStateAllocs(func() {
		out, _, err := eng.Dense(in, w, m)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	})
	if allocs > 2 {
		t.Fatalf("steady-state fused Dense allocates %.1f/op, want ~0 (<= 2)", allocs)
	}
}

// TestAnalyticDryRunAllocFree pins the counters-only measurement path (the
// tuner's cost signal) to zero allocations — it runs thousands of times per
// mapping search.
func TestAnalyticDryRunAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	d := tensor.ConvDims{N: 1, C: 64, H: 14, W: 14, K: 64, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 8, TG: 1, TN: 1, TX: 1, TY: 1}
	eng, err := maeri.NewEngine(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	eng.DryRun = true
	allocs := steadyStateAllocs(func() {
		if _, _, err := eng.Conv2D(nil, nil, d, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("analytic dry run allocates %.1f/op, want 0", allocs)
	}
}

// TestTelemetryRecordAllocFree pins the telemetry record path (PR 6) to
// zero allocations: counters, gauges, sharded histograms and a full pooled
// span begin→observe→end cycle. These run on every job and every request,
// so a single allocation here would undo the allocation-free steady state
// the tests above protect.
func TestTelemetryRecordAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	reg := telemetry.NewRegistry()
	c := reg.Counter("alloc_test_total", "test")
	g := reg.Gauge("alloc_test_gauge", "test")
	h := reg.Histogram("alloc_test_seconds", "test", nil)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1.5)
		h.Observe(3e-4)
	}); allocs > 0 {
		t.Fatalf("metric record path allocates %.1f/op, want 0", allocs)
	}
	ph := telemetry.NewPhaseHistograms(reg, "alloc_test_phase_seconds", "test")
	if allocs := testing.AllocsPerRun(100, func() {
		sp := telemetry.BeginSpan()
		sp.Observe(telemetry.PhaseCompute, 250*1e3) // 250µs in ns
		ph.ObserveSpan(sp)
		telemetry.EndSpan(sp)
	}); allocs > 0 {
		t.Fatalf("span lifecycle allocates %.1f/op, want 0", allocs)
	}
}

// TestTracedFarmSteadyStateAllocFree pins what tracing adds to the farm's
// warm hit path: the path itself pays for key hashing and the future, but
// span accounting and phase observations must add nothing, and a traced
// hit may add only the single echoed Trace object.
func TestTracedFarmSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	d := tensor.ConvDims{N: 1, C: 4, H: 10, W: 10, K: 8, R: 3, S: 3}
	job := farm.Job{
		HW: config.Default(config.MAERIDenseWorkload), Kind: farm.Conv2D, DryRun: true, Dims: d,
		ConvMapping: mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 2, TG: 1, TN: 1, TX: 1, TY: 1},
	}
	f := NewFarm(1)
	defer f.Close()
	if _, err := f.Do(job); err != nil {
		t.Fatal(err)
	}

	// Baseline: the pre-existing warm hit path (key encode + hash, future,
	// hit counters). Tracing must not change it when off, and a traced hit
	// may add only the one Trace allocation on top.
	plain := steadyStateAllocs(func() {
		if _, err := f.Do(job); err != nil {
			t.Fatal(err)
		}
	})
	traced := job
	traced.Trace = true
	withTrace := steadyStateAllocs(func() {
		res, err := f.Do(traced)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatal("traced warm hit returned no trace")
		}
	})
	if withTrace > plain+1.5 {
		t.Fatalf("traced warm hit allocates %.1f/op vs %.1f untraced — tracing must add at most the Trace object", withTrace, plain)
	}
}
