package bifrost

// Allocation-regression tests for the allocation-free steady state (PR 5):
// once the pack cache is warm and output tensors are recycled through the
// arena, the fused full-accuracy Conv2D and Dense paths must run at ~0
// allocations per operation. These pins are what keep the warm-sweep
// throughput from regressing via allocator pressure — a change that
// reintroduces per-job packing or fresh tensor allocations fails here
// before it shows up in a benchmark.

import (
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// steadyStateAllocs measures allocations per run after a warmup that fills
// the pack cache and the tensor arena.
func steadyStateAllocs(run func()) float64 {
	for i := 0; i < 5; i++ {
		run() // warm: publish packs, grow scratch, seed the arena
	}
	return testing.AllocsPerRun(50, run)
}

// TestFusedConvSteadyStateAllocFree pins the fused full-accuracy Conv2D
// path — analytic counters plus the panel-streaming arithmetic — to ~0
// allocs/op once the content-keyed panels are cached and outputs are
// released back to the arena.
func TestFusedConvSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	d := tensor.ConvDims{N: 1, C: 32, H: 8, W: 8, K: 32, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 4, TG: 1, TN: 1, TX: 1, TY: 1}
	in := tensor.RandomUniform(1, 1, d.N, d.H, d.W, d.C)
	ker := tensor.RandomUniform(2, 1, d.R, d.S, d.C, d.K)
	eng, err := maeri.NewEngine(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	eng.Pack = tensor.NewPackCache(0, 0)

	allocs := steadyStateAllocs(func() {
		out, _, err := eng.Conv2D(in, ker, d, m)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	})
	if allocs > 2 {
		t.Fatalf("steady-state fused Conv2D allocates %.1f/op, want ~0 (<= 2)", allocs)
	}
}

// TestFusedDenseSteadyStateAllocFree pins the fused full-accuracy Dense
// path the same way.
func TestFusedDenseSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	in := tensor.RandomUniform(1, 1, 4, 256)
	w := tensor.RandomUniform(2, 1, 128, 256)
	m := mapping.FCMapping{TS: 8, TK: 4, TN: 1}
	eng, err := maeri.NewEngine(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	eng.Pack = tensor.NewPackCache(0, 0)

	allocs := steadyStateAllocs(func() {
		out, _, err := eng.Dense(in, w, m)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	})
	if allocs > 2 {
		t.Fatalf("steady-state fused Dense allocates %.1f/op, want ~0 (<= 2)", allocs)
	}
}

// TestAnalyticDryRunAllocFree pins the counters-only measurement path (the
// tuner's cost signal) to zero allocations — it runs thousands of times per
// mapping search.
func TestAnalyticDryRunAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is inflated under -race")
	}
	d := tensor.ConvDims{N: 1, C: 64, H: 14, W: 14, K: 64, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 8, TG: 1, TN: 1, TX: 1, TY: 1}
	eng, err := maeri.NewEngine(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	eng.DryRun = true
	allocs := steadyStateAllocs(func() {
		if _, _, err := eng.Conv2D(nil, nil, d, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("analytic dry run allocates %.1f/op, want 0", allocs)
	}
}
