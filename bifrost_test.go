package bifrost

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestListing1Workflow exercises the paper's Listing 1 end to end: set the
// multiplier count, create the configuration, run an unmodified model.
func TestListing1Workflow(t *testing.T) {
	arch := DefaultArchitecture(MAERI)
	arch.MSSize = 128
	sess, err := NewSession(arch)
	if err != nil {
		t.Fatal(err)
	}
	sess.Verify = true
	model := LeNet5(1)
	feeds := map[string]*Tensor{"data": tensor.RandomUniform(1, 1, 1, 1, 28, 28)}
	outs, err := sess.Run(model, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Dim(1) != 10 {
		t.Fatalf("unexpected output %v", outs)
	}
	if len(sess.Records()) != 5 {
		t.Fatalf("records = %d, want 5 offloaded layers", len(sess.Records()))
	}
	if !strings.Contains(sess.Report(), "cycles=") {
		t.Fatal("report must include cycle counts")
	}
}

func TestTuneConvMappingImprovesOnBasic(t *testing.T) {
	arch := DefaultArchitecture(MAERI)
	d := ConvDims{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	tuned, res, err := TuneConvMapping(arch, d, TuneOptions{Tuner: TunerXGB, Target: TargetPsums, Trials: 300, EarlyStopping: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured == 0 {
		t.Fatal("no measurements recorded")
	}
	if tuned.NumVNs() <= 1 {
		t.Fatalf("tuned mapping %s should parallelise", tuned)
	}
}

func TestTuneFCMappingMatchesTableVI(t *testing.T) {
	arch := DefaultArchitecture(MAERI)
	fc, _, err := TuneFCMapping(arch, 1, 4096, 4096, TuneOptions{Tuner: TunerGrid, Target: TargetPsums})
	if err != nil {
		t.Fatal(err)
	}
	if fc.TS != 20 || fc.TK != 1 || fc.TN != 1 {
		t.Fatalf("psum-tuned FC mapping = %s, want 20, 1, 1 (Table VI)", fc)
	}
}

func TestTuneWithCyclesTarget(t *testing.T) {
	arch := DefaultArchitecture(MAERI)
	fc, _, err := TuneFCMapping(arch, 1, 128, 64, TuneOptions{Tuner: TunerGrid, Target: TargetCycles})
	if err != nil {
		t.Fatal(err)
	}
	if fc.TK <= 1 {
		t.Fatalf("cycle-tuned FC mapping should use spatial reduction, got %s", fc)
	}
}

func TestMRNAMapperIntegration(t *testing.T) {
	arch := DefaultArchitecture(MAERI)
	mapper, err := NewMRNAMapper(arch)
	if err != nil {
		t.Fatal(err)
	}
	fc, cycles, err := mapper.MapFC(1, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if fc.TK <= 1 || cycles <= 0 {
		t.Fatalf("mRNA mapping %s (%d cycles)", fc, cycles)
	}
	if _, err := NewMRNAMapper(DefaultArchitecture(SIGMA)); err == nil {
		t.Fatal("mRNA integration is MAERI-only")
	}
}

func TestSaveAndLoadModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lenet.json")
	g := LeNet5(3)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if err := SaveModel(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatalf("round trip lost nodes: %d vs %d", g2.NumNodes(), g.NumNodes())
	}
}

func TestAllArchitecturesEndToEnd(t *testing.T) {
	feeds := map[string]*Tensor{"data": tensor.RandomUniform(5, 1, 1, 1, 28, 28)}
	var baseline *Tensor
	for _, ct := range []ControllerType{MAERI, SIGMA, TPU} {
		sess, err := NewSession(DefaultArchitecture(ct))
		if err != nil {
			t.Fatal(err)
		}
		outs, err := sess.Run(LeNet5(9), feeds)
		if err != nil {
			t.Fatalf("%s: %v", ct, err)
		}
		if baseline == nil {
			baseline = outs[0]
			continue
		}
		if !tensor.AllClose(baseline, outs[0], 1e-3) {
			t.Fatalf("%s disagrees with other architectures", ct)
		}
	}
}

func TestAlexNetLayersExported(t *testing.T) {
	if len(AlexNetLayers()) != 8 {
		t.Fatal("AlexNet must expose 8 offloadable layers")
	}
	if BasicConvMapping().Multipliers() != 1 || BasicFCMapping().Multipliers() != 1 {
		t.Fatal("basic mappings must occupy one multiplier")
	}
}

func TestSpMSpMEngineExported(t *testing.T) {
	eng, err := NewSpMSpMEngine(DefaultArchitecture(SIGMA))
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.RandomUniform(1, 1, 8, 16)
	tensor.Prune(a, 0.5)
	b := tensor.RandomUniform(2, 1, 16, 4)
	tensor.Prune(b, 0.5)
	out, st, err := eng.SpMSpM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(tensor.GEMM(a, b), out, 1e-3) {
		t.Fatal("SpMSpM façade wrong")
	}
	if st.MACs >= 8*16*4 {
		t.Fatal("SpMSpM must skip zero pairs")
	}
	if _, err := NewSpMSpMEngine(DefaultArchitecture(MAERI)); err == nil {
		t.Fatal("SpMSpM requires the SIGMA fabric")
	}
}
