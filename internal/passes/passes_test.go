package passes

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// bnGraph builds input → conv → (optional bias_add) → batch_norm → relu.
func bnGraph(withBias bool) (*graph.Graph, *tensor.Tensor) {
	g := graph.New("bn")
	x := g.Input("data", 1, 2, 6, 6)
	w := g.Constant("w", tensor.RandomNormal(1, 0.5, 3, 2, 3, 3))
	y := g.Conv2D("conv", x, w, graph.Attrs{PadH: 1, PadW: 1})
	if withBias {
		b := g.Constant("b", tensor.RandomNormal(2, 0.5, 3))
		y = g.BiasAdd("bias", y, b)
	}
	gamma := g.Constant("gamma", tensor.RandomUniform(3, 0.5, 3))
	for i, v := range gamma.Value.Data() {
		gamma.Value.Data()[i] = v + 1 // keep scale away from zero
	}
	beta := g.Constant("beta", tensor.RandomNormal(4, 0.5, 3))
	mean := g.Constant("mean", tensor.RandomNormal(5, 0.5, 3))
	variance := g.Constant("var", tensor.RandomUniform(6, 0.5, 3))
	for i, v := range variance.Value.Data() {
		variance.Value.Data()[i] = v*v + 0.5 // positive variance
	}
	y = g.BatchNorm("bn", y, gamma, beta, mean, variance, 1e-5)
	y = g.ReLU("relu", y)
	g.MarkOutput(y)
	in := tensor.RandomUniform(9, 1, 1, 2, 6, 6)
	return g, in
}

func runGraph(t *testing.T, g *graph.Graph, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	ex := &graph.Executor{Graph: g}
	outs, err := ex.Run(map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	return outs[0]
}

func TestFoldBatchNormPreservesSemantics(t *testing.T) {
	for _, withBias := range []bool{false, true} {
		g, in := bnGraph(withBias)
		want := runGraph(t, g, in)
		n, err := FoldBatchNorm(g)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("folded %d batch_norms, want 1 (withBias=%v)", n, withBias)
		}
		got := runGraph(t, g, in)
		if !tensor.AllClose(want, got, 1e-4) {
			t.Fatalf("folding changed semantics (withBias=%v): max diff %v", withBias, tensor.MaxAbsDiff(want, got))
		}
		// The folded graph must no longer execute a batch_norm node.
		for _, n := range g.Nodes() {
			if n.Op == graph.OpBatchNorm {
				// Node may remain in the list but must be unreachable.
				EliminateDead(g)
			}
		}
		EliminateDead(g)
		for _, n := range g.Nodes() {
			if n.Op == graph.OpBatchNorm {
				t.Fatal("batch_norm still reachable after fold + DCE")
			}
		}
	}
}

func TestFoldBatchNormSkipsNonConstParams(t *testing.T) {
	g := graph.New("bad")
	x := g.Input("data", 1, 2, 4, 4)
	w := g.Constant("w", tensor.RandomNormal(1, 0.5, 2, 2, 3, 3))
	y := g.Conv2D("conv", x, w, graph.Attrs{PadH: 1, PadW: 1})
	p := g.Input("gamma", 2) // non-constant parameter
	beta := g.Constant("beta", tensor.New(2))
	mean := g.Constant("mean", tensor.New(2))
	variance := g.Constant("var", tensor.FromData([]float32{1, 1}, 2))
	y = g.BatchNorm("bn", y, p, beta, mean, variance, 1e-5)
	g.MarkOutput(y)
	if _, err := FoldBatchNorm(g); err == nil {
		t.Fatal("non-constant batch_norm parameters must be reported")
	}
}

func TestFoldBatchNormNoPattern(t *testing.T) {
	g := graph.New("none")
	x := g.Input("data", 1, 2, 4, 4)
	p := func(name string) *graph.Node { return g.Constant(name, tensor.FromData([]float32{1, 1}, 2)) }
	y := g.BatchNorm("bn", x, p("g"), p("b"), p("m"), p("v"), 1e-5) // BN not after conv
	g.MarkOutput(y)
	n, err := FoldBatchNorm(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("folded %d, want 0", n)
	}
}

func TestAnnotateFusion(t *testing.T) {
	g := graph.New("fuse")
	x := g.Input("data", 1, 2, 6, 6)
	w := g.Constant("w", tensor.RandomNormal(1, 0.5, 3, 2, 3, 3))
	conv := g.Conv2D("conv", x, w, graph.Attrs{})
	b := g.Constant("b", tensor.New(3))
	y := g.BiasAdd("bias", conv, b)
	y = g.ReLU("relu", y)
	fw := g.Constant("fw", tensor.RandomNormal(2, 0.5, 4, 48))
	fc := g.Dense("fc", g.Flatten("flat", y), fw)
	out := g.Tanh("tanh", fc)
	g.MarkOutput(out)
	n := AnnotateFusion(g)
	if n != 2 {
		t.Fatalf("annotated %d, want 2", n)
	}
	if conv.FusedActivation != graph.OpReLU {
		t.Fatalf("conv fused activation = %q", conv.FusedActivation)
	}
	if fc.FusedActivation != graph.OpTanh {
		t.Fatalf("dense fused activation = %q", fc.FusedActivation)
	}
}

func TestAnnotateFusionMultiUserNotFused(t *testing.T) {
	g := graph.New("branch")
	x := g.Input("data", 1, 4)
	w := g.Constant("w", tensor.RandomNormal(1, 0.5, 4, 4))
	fc := g.Dense("fc", x, w)
	a := g.ReLU("relu", fc)
	b := g.Tanh("tanh", fc) // second user: fc must not be fused
	g.MarkOutput(g.Add("add", a, b))
	if n := AnnotateFusion(g); n != 0 {
		t.Fatalf("annotated %d, want 0", n)
	}
}

func TestEliminateDead(t *testing.T) {
	g := graph.New("dead")
	x := g.Input("data", 1, 4)
	w := g.Constant("w", tensor.RandomNormal(1, 0.5, 4, 4))
	live := g.Dense("fc", x, w)
	g.ReLU("orphan", live) // dead: never an output
	g.Constant("unused", tensor.New(3))
	g.MarkOutput(live)
	removed := EliminateDead(g)
	if removed != 2 {
		t.Fatalf("removed %d nodes, want 2", removed)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("graph has %d nodes, want 3", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStandardPipeline(t *testing.T) {
	g, in := bnGraph(true)
	want := runGraph(t, g, in)
	if err := Standard(g); err != nil {
		t.Fatal(err)
	}
	got := runGraph(t, g, in)
	if !tensor.AllClose(want, got, 1e-4) {
		t.Fatal("standard pipeline changed semantics")
	}
	// conv must now be annotated with the trailing ReLU.
	for _, n := range g.Nodes() {
		if n.Op == graph.OpConv2D && n.FusedActivation != graph.OpReLU {
			t.Fatal("conv should carry fused ReLU annotation after Standard pipeline")
		}
	}
}
