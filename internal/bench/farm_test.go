package bench

import (
	"reflect"
	"testing"

	"repro/internal/farm"
)

// TestExperimentsFarmedMatchSerial runs the Figure 9/10 sweeps and the
// mapping study serially and through a farm and requires identical rows —
// the farm is a scheduler, not a different experiment.
func TestExperimentsFarmedMatchSerial(t *testing.T) {
	fm := farm.New(4)
	defer fm.Close()

	serial9, err := Fig9(nil, Mini, 1)
	if err != nil {
		t.Fatal(err)
	}
	farmed9, err := Fig9(fm, Mini, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial9, farmed9) {
		t.Fatalf("fig9 rows diverged:\nserial: %+v\nfarmed: %+v", serial9, farmed9)
	}

	serial10, err := Fig10(nil, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	farmed10, err := Fig10(fm, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial10, farmed10) {
		t.Fatalf("fig10 rows diverged:\nserial: %+v\nfarmed: %+v", serial10, farmed10)
	}

	opts := DefaultTuneOptions()
	opts.Trials = 120
	opts.EarlyStopping = 40
	serialStudy, err := MappingStudy(nil, Mini, opts)
	if err != nil {
		t.Fatal(err)
	}
	farmedStudy, err := MappingStudy(fm, Mini, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialStudy, farmedStudy) {
		t.Fatalf("mapping study rows diverged:\nserial: %+v\nfarmed: %+v", serialStudy, farmedStudy)
	}

	// A repeated sweep must be served from the content-addressed cache.
	misses := fm.Stats().Misses
	if _, err := Fig9(fm, Mini, 1); err != nil {
		t.Fatal(err)
	}
	st := fm.Stats()
	if st.Misses != misses {
		t.Fatalf("repeated Fig9 sweep re-simulated: %+v", st)
	}
	if st.HitRate() == 0 {
		t.Fatalf("hit rate still zero after a repeated sweep: %+v", st)
	}
}
