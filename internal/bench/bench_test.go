package bench

import (
	"strings"
	"testing"
)

func TestFig9MiniShape(t *testing.T) {
	rows, err := Fig9(nil, Mini, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("fig9 rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.CyclesDense <= 0 || r.CyclesSparse50 <= 0 {
			t.Fatalf("%s: non-positive cycles", r.Layer)
		}
		// The Figure 9 shape: 50% sparsity must reduce cycles noticeably.
		if red := r.Reduction(); red < 0.2 || red > 0.8 {
			t.Fatalf("%s: 50%% sparsity reduction = %.2f, want roughly half (paper: 44-54%%)", r.Layer, red)
		}
	}
	var sb strings.Builder
	RenderFig9(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 9a") || !strings.Contains(sb.String(), "average reduction") {
		t.Fatalf("render output incomplete:\n%s", sb.String())
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := Fig10(nil, []int{8, 32, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("fig10 rows = %d", len(rows))
	}
	// Optimal cycles must fall monotonically with multipliers.
	for i := 1; i < len(rows); i++ {
		if rows[i].OptimalCycles >= rows[i-1].OptimalCycles {
			t.Fatalf("optimal cycles must fall with multipliers: %v then %v", rows[i-1], rows[i])
		}
	}
	// The suboptimal/optimal gap must grow with the array size.
	firstGap := float64(rows[0].Suboptimal) / float64(rows[0].OptimalCycles)
	lastGap := float64(rows[2].Suboptimal) / float64(rows[2].OptimalCycles)
	if lastGap <= firstGap {
		t.Fatalf("mapping gap must grow with multipliers: %.1f then %.1f", firstGap, lastGap)
	}
	if lastGap < 10 {
		t.Fatalf("gap at 128 multipliers = %.1f×, expected large (paper: ~76×)", lastGap)
	}
	var sb strings.Builder
	RenderFig10(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 10") {
		t.Fatal("render output incomplete")
	}
}

func TestMappingStudyMiniShape(t *testing.T) {
	opts := DefaultTuneOptions()
	opts.Trials = 200
	opts.EarlyStopping = 60
	rows, err := MappingStudy(nil, Mini, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		// Figure 11 shape: tuned mappings beat the basic mapping broadly.
		if r.Speedup() < 2 {
			t.Fatalf("%s: AutoTVM speedup %.1f× too small", r.Layer, r.Speedup())
		}
		// Figure 12 shape: mRNA is at least as good as AutoTVM.
		if r.MRNACycles > r.AutoTVMCycles {
			t.Fatalf("%s: mRNA (%d) must not lose to AutoTVM (%d)", r.Layer, r.MRNACycles, r.AutoTVMCycles)
		}
		if !r.IsConv {
			// Table VI shape: AutoTVM minimises T_K, mRNA does not.
			if r.AutoTVMFC.TK != 1 {
				t.Fatalf("%s: psum-tuned T_K = %d, want 1", r.Layer, r.AutoTVMFC.TK)
			}
			if r.MRNAFC.TK <= 1 {
				t.Fatalf("%s: mRNA T_K = %d, want > 1", r.Layer, r.MRNAFC.TK)
			}
		}
	}
	var sb strings.Builder
	RenderFig11(&sb, rows)
	RenderTableVI(&sb, rows)
	RenderFig12(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Figure 11a", "Figure 11b", "Table VI", "Figure 12a", "Figure 12b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q", want)
		}
	}
}

func TestTableAndCSVRender(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "t", []string{"a", "b"}, [][]string{{"1", "22"}, {"333", "4"}})
	if !strings.Contains(sb.String(), "333") {
		t.Fatal("table render lost cells")
	}
	sb.Reset()
	CSV(&sb, []string{"a", "b"}, [][]string{{"1", "2"}})
	if sb.String() != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}
