package bench

import (
	"fmt"
	"io"

	"repro/internal/autotune"
	"repro/internal/farm"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/mrna"
	"repro/internal/stonne/config"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// TuneOptions bounds the AutoTVM-style searches used by Figures 11/12 and
// Table VI. The defaults mirror the paper: XGBoost tuner, psum target,
// early stopping at convergence.
type TuneOptions struct {
	Trials        int
	EarlyStopping int
	Seed          int64
}

// DefaultTuneOptions returns the budget used by the shipped benchmarks.
func DefaultTuneOptions() TuneOptions {
	return TuneOptions{Trials: 600, EarlyStopping: 120, Seed: 1}
}

// tunedConvMapping runs the psum-target XGB tuning for one conv layer. The
// psum measure is a cheap pure function, so with a farm present the trials
// parallelize through a goroutine-pool measurer sized to the farm rather
// than through simulation jobs.
func tunedConvMapping(fm *farm.Farm, d tensor.ConvDims, ms int, o TuneOptions) (mapping.ConvMapping, error) {
	space, err := autotune.ConvMappingSpace(d, ms)
	if err != nil {
		return mapping.ConvMapping{}, err
	}
	measure := autotune.ConvPsumCost(d, ms)
	opts := autotune.Options{Trials: o.Trials, EarlyStopping: o.EarlyStopping, Seed: o.Seed}
	if fm != nil {
		opts.Measurer = autotune.ParallelMeasurer(fm.Workers(), measure)
	}
	res, err := autotune.XGBTuner{}.Tune(space, measure, opts)
	if err != nil {
		return mapping.ConvMapping{}, err
	}
	return autotune.ConvMappingOf(res.Best.Config), nil
}

// tunedFCMapping runs the psum-target grid tuning for one dense layer (the
// FC space is small enough that the paper's converged XGB search and an
// exhaustive search coincide).
func tunedFCMapping(fm *farm.Farm, l models.LayerSpec, ms int) (mapping.FCMapping, error) {
	space := autotune.FCMappingSpace(l.K, l.N, ms)
	measure := autotune.FCPsumCost(l.M, l.K, l.N, ms)
	opts := autotune.Options{}
	if fm != nil {
		opts.Measurer = autotune.ParallelMeasurer(fm.Workers(), measure)
	}
	res, err := autotune.GridSearch{}.Tune(space, measure, opts)
	if err != nil {
		return mapping.FCMapping{}, err
	}
	return autotune.FCMappingOf(res.Best.Config), nil
}

// dryCycles measures a mapping's cycle count with a dry-run MAERI engine —
// the analytical fast path, bit-identical to the step-loop reference —
// through the farm (cached, deduplicated) when one is provided.
func dryCycles(f *farm.Farm, cfg config.HWConfig, l models.LayerSpec, cm mapping.ConvMapping, fcm mapping.FCMapping) (int64, error) {
	if f != nil {
		j := farm.Job{HW: cfg, DryRun: true}
		if l.Op == graph.OpConv2D {
			j.Kind = farm.Conv2D
			j.Dims = l.Conv
			j.ConvMapping = cm
		} else {
			j.Kind = farm.Dense
			j.FCMapping = fcm
			j.M, j.K, j.N = l.M, l.K, l.N
		}
		res, err := f.Do(j)
		return res.Stats.Cycles, err
	}
	eng, err := maeri.NewEngine(cfg)
	if err != nil {
		return 0, err
	}
	eng.DryRun = true
	if l.Op == graph.OpConv2D {
		_, st, err := eng.Conv2D(nil, nil, l.Conv, cm)
		return st.Cycles, err
	}
	in := tensor.New(l.M, l.K)
	w := tensor.New(l.N, l.K)
	_, st, err := eng.Dense(in, w, fcm)
	return st.Cycles, err
}

// MappingRow is one layer's outcome under the three mapping sources —
// enough to render Figure 11 (speedups), Figure 12 (cycles) and Table VI
// (FC mapping tuples).
type MappingRow struct {
	Layer  string
	IsConv bool

	BasicCycles   int64
	AutoTVMCycles int64
	MRNACycles    int64

	AutoTVMConv mapping.ConvMapping
	MRNAConv    mapping.ConvMapping
	AutoTVMFC   mapping.FCMapping
	MRNAFC      mapping.FCMapping
}

// Speedup returns the Figure 11 metric: basic cycles over AutoTVM cycles.
func (r MappingRow) Speedup() float64 { return float64(r.BasicCycles) / float64(r.AutoTVMCycles) }

// MappingStudy runs the complete §VIII-B pipeline on each AlexNet layer:
// the automatically generated basic mapping, the AutoTVM-tuned mapping
// (psums target with early stopping) and the mRNA mapping, each measured in
// cycles on MAERI with 128 multipliers. With a farm, tuner trials
// parallelize and the cycle measurements run as cached dry-run jobs; rows
// are bit-identical to the serial study either way.
func MappingStudy(fm *farm.Farm, scale Scale, o TuneOptions) ([]MappingRow, error) {
	cfg := config.Default(config.MAERIDenseWorkload)
	mapper, err := mrna.NewMapper(cfg, mrna.MinimizeCycles)
	if err != nil {
		return nil, err
	}
	var rows []MappingRow
	for _, l := range layers(scale) {
		row := MappingRow{Layer: l.Name, IsConv: l.Op == graph.OpConv2D}
		if l.Op == graph.OpConv2D {
			row.AutoTVMConv, err = tunedConvMapping(fm, l.Conv, cfg.MSSize, o)
			if err != nil {
				return nil, fmt.Errorf("bench: tuning %s: %w", l.Name, err)
			}
			row.MRNAConv, _, err = mapper.MapConv(l.Conv)
			if err != nil {
				return nil, fmt.Errorf("bench: mRNA %s: %w", l.Name, err)
			}
			if row.BasicCycles, err = dryCycles(fm, cfg, l, mapping.Basic(), mapping.FCMapping{}); err != nil {
				return nil, err
			}
			if row.AutoTVMCycles, err = dryCycles(fm, cfg, l, row.AutoTVMConv, mapping.FCMapping{}); err != nil {
				return nil, err
			}
			if row.MRNACycles, err = dryCycles(fm, cfg, l, row.MRNAConv, mapping.FCMapping{}); err != nil {
				return nil, err
			}
		} else {
			row.AutoTVMFC, err = tunedFCMapping(fm, l, cfg.MSSize)
			if err != nil {
				return nil, fmt.Errorf("bench: tuning %s: %w", l.Name, err)
			}
			row.MRNAFC, _, err = mapper.MapFC(l.M, l.K, l.N)
			if err != nil {
				return nil, fmt.Errorf("bench: mRNA %s: %w", l.Name, err)
			}
			if row.BasicCycles, err = dryCycles(fm, cfg, l, mapping.ConvMapping{}, mapping.BasicFC()); err != nil {
				return nil, err
			}
			if row.AutoTVMCycles, err = dryCycles(fm, cfg, l, mapping.ConvMapping{}, row.AutoTVMFC); err != nil {
				return nil, err
			}
			if row.MRNACycles, err = dryCycles(fm, cfg, l, mapping.ConvMapping{}, row.MRNAFC); err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig11 prints the Figure 11 speedup panels.
func RenderFig11(w io.Writer, rows []MappingRow) {
	var convRows, fcRows [][]string
	var convSp, fcSp []float64
	for _, r := range rows {
		cells := []string{r.Layer, fmt.Sprint(r.BasicCycles), fmt.Sprint(r.AutoTVMCycles), fmt.Sprintf("%.1f×", r.Speedup())}
		if r.IsConv {
			convRows = append(convRows, cells)
			convSp = append(convSp, r.Speedup())
		} else {
			fcRows = append(fcRows, cells)
			fcSp = append(fcSp, r.Speedup())
		}
	}
	header := []string{"layer", "basic cycles", "AutoTVM cycles", "speedup"}
	Table(w, "Figure 11a — AutoTVM mapping speedup, convolutional layers (MAERI-128)", header, convRows)
	fmt.Fprintf(w, "  average speedup: %.1f× (paper: ~51×, max 77×)\n\n", mean(convSp))
	Table(w, "Figure 11b — AutoTVM mapping speedup, fully connected layers", header, fcRows)
	fmt.Fprintf(w, "  average speedup: %.1f× (paper: ~11×)\n", mean(fcSp))
}

// RenderTableVI prints Table VI: the FC mapping tuples (T_S, T_K, T_N).
func RenderTableVI(w io.Writer, rows []MappingRow) {
	header := []string{"Mapping"}
	basic := []string{"Basic"}
	autotvm := []string{"AutoTVM"}
	mrnaRow := []string{"mRNA"}
	for _, r := range rows {
		if r.IsConv {
			continue
		}
		header = append(header, r.Layer)
		basic = append(basic, mapping.BasicFC().String())
		autotvm = append(autotvm, r.AutoTVMFC.String())
		mrnaRow = append(mrnaRow, r.MRNAFC.String())
	}
	Table(w, "Table VI — FC mappings (T_S, T_K, T_N) on simulated MAERI", header, [][]string{basic, autotvm, mrnaRow})
}

// RenderFig12 prints the Figure 12 cycle panels and the headline mRNA
// advantages (paper: ~20% fewer cycles than AutoTVM on conv, ~67% on FC).
func RenderFig12(w io.Writer, rows []MappingRow) {
	var convRows, fcRows [][]string
	var convAdv, fcAdv []float64
	for _, r := range rows {
		adv := 1 - float64(r.MRNACycles)/float64(r.AutoTVMCycles)
		cells := []string{r.Layer, fmt.Sprint(r.BasicCycles), fmt.Sprint(r.AutoTVMCycles), fmt.Sprint(r.MRNACycles), fmt.Sprintf("%.0f%%", 100*adv)}
		if r.IsConv {
			convRows = append(convRows, cells)
			convAdv = append(convAdv, adv)
		} else {
			fcRows = append(fcRows, cells)
			fcAdv = append(fcAdv, adv)
		}
	}
	header := []string{"layer", "basic", "AutoTVM", "mRNA", "mRNA advantage"}
	Table(w, "Figure 12a — cycles per mapping source, convolutional layers (log scale in the paper)", header, convRows)
	fmt.Fprintf(w, "  average mRNA advantage: %.0f%% fewer cycles (paper: ~20%%)\n\n", 100*mean(convAdv))
	Table(w, "Figure 12b — cycles per mapping source, fully connected layers", header, fcRows)
	fmt.Fprintf(w, "  average mRNA advantage: %.0f%% fewer cycles (paper: ~67%%)\n", 100*mean(fcAdv))
}
