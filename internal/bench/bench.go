// Package bench regenerates every table and figure of the Bifrost paper's
// evaluation (§VIII): Figure 9 (SIGMA sparsity sweep), Figure 10 (MAERI
// optimal vs suboptimal mappings across multiplier counts), Figure 11
// (AutoTVM speedup over the basic mapping), Table VI (FC mappings chosen by
// basic/AutoTVM/mRNA) and Figure 12 (cycles under the three mapping
// sources). Each experiment returns structured rows and can render itself
// as a text table or CSV.
package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/autotune"
	"repro/internal/farm"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// runJobStats streams a batched job set through the farm — or inline and
// serially when fm is nil — returning only each job's Stats. Jobs are
// built lazily and at most 2×workers are in flight, so a sweep's peak
// memory stays at a handful of layers' operand tensors rather than the
// whole network's. Both paths funnel through farm.Run, so results are
// bit-identical; only wall-clock time differs.
func runJobStats(fm *farm.Farm, builders []func() farm.Job) ([]stats.Stats, error) {
	out := make([]stats.Stats, len(builders))
	if fm == nil {
		for i, build := range builders {
			res, err := farm.Run(build())
			if err != nil {
				return nil, fmt.Errorf("job %d: %w", i, err)
			}
			out[i] = res.Stats
		}
		return out, nil
	}
	window := 2 * fm.Workers()
	futures := make([]*farm.Future, len(builders))
	collect := func(i int) error {
		res, err := futures[i].Wait()
		if err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		futures[i] = nil // release the future (and its output tensor)
		out[i] = res.Stats
		return nil
	}
	for i, build := range builders {
		if i >= window {
			if err := collect(i - window); err != nil {
				return nil, err
			}
		}
		futures[i] = fm.Submit(build())
	}
	for i := len(builders) - window; i < len(builders); i++ {
		if i < 0 {
			continue
		}
		if err := collect(i); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Scale selects the workload size: the paper's full AlexNet layers, or
// geometry-faithful mini layers for fast regression runs.
type Scale int

// Workload scales.
const (
	Mini Scale = iota // scaled-down AlexNet: seconds per experiment
	Full              // the paper's AlexNet: minutes per experiment
)

func layers(s Scale) []models.LayerSpec {
	if s == Full {
		return models.AlexNetLayers()
	}
	return models.AlexNetMiniLayers()
}

// Table renders rows with a header as fixed-width text.
func Table(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}

// CSV renders rows as comma-separated values.
func CSV(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// ---------------------------------------------------------------------------
// Figure 9: SIGMA at 0% vs 50% sparsity.

// Fig9Row is one AlexNet layer's cycle counts at the two sparsity levels.
type Fig9Row struct {
	Layer          string
	IsConv         bool
	CyclesDense    int64
	CyclesSparse50 int64
}

// Reduction returns the fractional cycle reduction at 50% sparsity.
func (r Fig9Row) Reduction() float64 {
	return 1 - float64(r.CyclesSparse50)/float64(r.CyclesDense)
}

// Fig9 runs every AlexNet layer on SIGMA at 0% and 50% weight sparsity.
// The layer×sparsity grid is one batched job set: with a farm the
// simulations run concurrently across its workers (and repeated sweeps are
// served from the result cache); with fm == nil they run serially inline.
func Fig9(fm *farm.Farm, scale Scale, seed int64) ([]Fig9Row, error) {
	ls := layers(scale)
	var builders []func() farm.Job
	for i, l := range ls {
		for _, sparsity := range []float64{0, 0.5} {
			builders = append(builders, func() farm.Job {
				cfg := config.Default(config.SIGMASparseGEMM)
				cfg.SparsityRatio = int(sparsity * 100)
				j := farm.Job{HW: cfg, Seed: seed + int64(i)}
				if l.Op == graph.OpConv2D {
					d := l.Conv
					ker := tensor.RandomUniform(seed+int64(i)+100, 1, d.K, d.C/d.G, d.R, d.S)
					ensureDense(ker)
					tensor.Prune(ker, sparsity)
					j.Kind = farm.Conv2D
					j.Dims = d
					j.ConvMapping = mapping.Basic()
					j.Input = tensor.RandomUniform(seed+int64(i), 1, d.N, d.C, d.H, d.W)
					j.Weights = ker
				} else {
					w := tensor.RandomUniform(seed+int64(i)+100, 1, l.N, l.K)
					ensureDense(w)
					tensor.Prune(w, sparsity)
					j.Kind = farm.Dense
					j.FCMapping = mapping.BasicFC()
					j.Input = tensor.RandomUniform(seed+int64(i), 1, l.M, l.K)
					j.Weights = w
				}
				return j
			})
		}
	}
	results, err := runJobStats(fm, builders)
	if err != nil {
		return nil, fmt.Errorf("bench: fig9: %w", err)
	}
	var rows []Fig9Row
	for i, l := range ls {
		rows = append(rows, Fig9Row{
			Layer:          l.Name,
			IsConv:         l.Op == graph.OpConv2D,
			CyclesDense:    results[2*i].Cycles,
			CyclesSparse50: results[2*i+1].Cycles,
		})
	}
	return rows, nil
}

// ensureDense replaces exact zeros from the RNG so the 0%-sparsity baseline
// is fully dense.
func ensureDense(t *tensor.Tensor) {
	for i, v := range t.Data() {
		if v == 0 {
			t.Data()[i] = 0.01
		}
	}
}

// RenderFig9 prints the Figure 9 tables (conv and FC panels) and the
// average reductions the paper quotes (≈44% conv, ≈54% FC).
func RenderFig9(w io.Writer, rows []Fig9Row) {
	var convRows, fcRows [][]string
	var convRed, fcRed []float64
	for _, r := range rows {
		cells := []string{r.Layer, fmt.Sprint(r.CyclesDense), fmt.Sprint(r.CyclesSparse50), fmt.Sprintf("%.1f%%", 100*r.Reduction())}
		if r.IsConv {
			convRows = append(convRows, cells)
			convRed = append(convRed, r.Reduction())
		} else {
			fcRows = append(fcRows, cells)
			fcRed = append(fcRed, r.Reduction())
		}
	}
	header := []string{"layer", "cycles@0%", "cycles@50%", "reduction"}
	Table(w, "Figure 9a — SIGMA convolutional layers", header, convRows)
	fmt.Fprintf(w, "  average reduction: %.1f%% (paper: ~44%%)\n\n", 100*mean(convRed))
	Table(w, "Figure 9b — SIGMA fully connected layers", header, fcRows)
	fmt.Fprintf(w, "  average reduction: %.1f%% (paper: ~54%%)\n", 100*mean(fcRed))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ---------------------------------------------------------------------------
// Figure 10: optimal vs suboptimal mapping across multiplier counts.

// Fig10Row is the exhaustive-search result at one multiplier count.
type Fig10Row struct {
	Multipliers    int
	OptimalCycles  int64
	Suboptimal     int64
	OptimalMapping mapping.ConvMapping
}

// Fig10Conv is the paper's small workload: an NCHW convolution with a
// 1×2×10×10 input tensor (§VIII-B), given a 3×3 kernel with 4 filters.
func Fig10Conv() tensor.ConvDims {
	d := tensor.ConvDims{N: 1, C: 2, H: 10, W: 10, K: 4, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		panic(err)
	}
	return d
}

// Fig10 grid-searches the full mapping space at each multiplier count,
// optimising for cycles, and reports the globally optimal and suboptimal
// (worst) mappings — the two curves of Figure 10. With a farm, every
// feasible mapping in the space is measured as a concurrent dry-run job;
// the resulting curves are bit-identical to the serial search.
func Fig10(fm *farm.Farm, multipliers []int) ([]Fig10Row, error) {
	if len(multipliers) == 0 {
		multipliers = []int{8, 16, 32, 64, 128}
	}
	d := Fig10Conv()
	var rows []Fig10Row
	for _, ms := range multipliers {
		cfg := config.Default(config.MAERIDenseWorkload)
		cfg.MSSize = ms
		space, err := autotune.ConvMappingSpace(d, ms)
		if err != nil {
			return nil, err
		}
		opts := autotune.Options{}
		if fm != nil {
			opts.Measurer = autotune.FarmConvCycleMeasurer(fm, cfg, d)
		}
		res, err := autotune.GridSearch{}.Tune(space, autotune.ConvCycleCost(cfg, d), opts)
		if err != nil {
			return nil, fmt.Errorf("bench: fig10 ms=%d: %w", ms, err)
		}
		worst, ok := autotune.Worst(res)
		if !ok {
			return nil, fmt.Errorf("bench: fig10 ms=%d: no feasible mappings", ms)
		}
		rows = append(rows, Fig10Row{
			Multipliers:    ms,
			OptimalCycles:  int64(res.Best.Cost.Primary),
			Suboptimal:     int64(worst.Cost.Primary),
			OptimalMapping: autotune.ConvMappingOf(res.Best.Config),
		})
	}
	return rows, nil
}

// RenderFig10 prints the Figure 10 series with the paper's headline ratios.
func RenderFig10(w io.Writer, rows []Fig10Row) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprint(r.Multipliers), fmt.Sprint(r.OptimalCycles), fmt.Sprint(r.Suboptimal),
			fmt.Sprintf("%.1f×", float64(r.Suboptimal)/float64(r.OptimalCycles)),
			r.OptimalMapping.String(),
		})
	}
	Table(w, "Figure 10 — MAERI 1×2×10×10 conv, optimal vs suboptimal mapping (log-scale plot in the paper)",
		[]string{"multipliers", "optimal", "suboptimal", "gap", "optimal mapping"}, cells)
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		fmt.Fprintf(w, "  optimal %d-mult vs %d-mult: %.1f× (paper: ~12×); suboptimal/optimal at %d: %.1f× (paper: ~76×)\n",
			first.Multipliers, last.Multipliers,
			float64(first.OptimalCycles)/float64(last.OptimalCycles),
			last.Multipliers, float64(last.Suboptimal)/float64(last.OptimalCycles))
	}
}
