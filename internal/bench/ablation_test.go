package bench

import (
	"strings"
	"testing"
)

func TestAblationAccumBuffer(t *testing.T) {
	rows, err := AblationAccumBuffer()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Small VNs must suffer more from losing the buffer than large VNs.
	first := float64(rows[0].WithoutBuffer) / float64(rows[0].WithBuffer)
	last := float64(rows[len(rows)-1].WithoutBuffer) / float64(rows[len(rows)-1].WithBuffer)
	if first <= last {
		t.Fatalf("VN=1 slowdown (%.2f) must exceed full-VN slowdown (%.2f)", first, last)
	}
	if first < 1.2 {
		t.Fatalf("VN=1 without buffer should be clearly slower, got %.2f×", first)
	}
	var sb strings.Builder
	RenderAccumBuffer(&sb, rows)
	if !strings.Contains(sb.String(), "accumulation buffer") {
		t.Fatal("render incomplete")
	}
}

func TestAblationBandwidth(t *testing.T) {
	rows, err := AblationBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	// Cycles must be non-increasing in bandwidth.
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycles > rows[i-1].Cycles {
			t.Fatalf("cycles rose with bandwidth: %+v then %+v", rows[i-1], rows[i])
		}
	}
	// The narrowest point must be clearly slower than the widest.
	if rows[0].Cycles < 2*rows[len(rows)-1].Cycles {
		t.Fatalf("bandwidth sweep too flat: %d vs %d", rows[0].Cycles, rows[len(rows)-1].Cycles)
	}
	var sb strings.Builder
	RenderBandwidth(&sb, rows)
	if !strings.Contains(sb.String(), "dn_bw") {
		t.Fatal("render incomplete")
	}
}

func TestAblationTuningTarget(t *testing.T) {
	rows, err := AblationTuningTarget(1)
	if err != nil {
		t.Fatal(err)
	}
	var psums, cycles int64
	for _, r := range rows {
		switch r.Target {
		case "psums":
			psums = r.Cycles
		case "cycles":
			cycles = r.Cycles
		}
		if r.Cycles <= 0 {
			t.Fatalf("%s: no cycles", r.Target)
		}
	}
	// §VII-B: cycle-target tuning finds mappings at least as fast as
	// psum-target tuning (psums are only loosely correlated).
	if cycles > psums {
		t.Fatalf("cycles-tuned winner (%d) must not lose to psums-tuned (%d)", cycles, psums)
	}
	var sb strings.Builder
	RenderTuningTarget(&sb, rows)
	if !strings.Contains(sb.String(), "tuning target") {
		t.Fatal("render incomplete")
	}
}

func TestAblationTuners(t *testing.T) {
	rows, err := AblationTuners(3)
	if err != nil {
		t.Fatal(err)
	}
	var grid, random float64
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.Tuner, "grid"):
			grid = r.BestCost
		case r.Tuner == "random":
			random = r.BestCost
		}
	}
	// The exhaustive search defines the global optimum; sampled tuners may
	// not reach it but must not beat it.
	if random < grid {
		t.Fatalf("random (%v) cannot beat exhaustive grid (%v)", random, grid)
	}
	for _, r := range rows {
		if r.BestCost < grid {
			t.Fatalf("%s reported cost below the global optimum", r.Tuner)
		}
	}
	var sb strings.Builder
	RenderTuners(&sb, rows)
	if !strings.Contains(sb.String(), "tuner comparison") {
		t.Fatal("render incomplete")
	}
}
