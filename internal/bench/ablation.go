package bench

import (
	"fmt"
	"io"

	"repro/internal/autotune"
	"repro/internal/stonne/config"
	"repro/internal/stonne/energy"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// The ablation studies quantify the design decisions the paper discusses in
// prose: the accumulation buffer (Table III), distribution bandwidth, the
// psums-vs-cycles tuning target trade-off (§VII-B) and the choice of tuner
// (§VII: grid, GA, XGBoost).

func ablationConv() tensor.ConvDims {
	d := tensor.ConvDims{N: 1, C: 16, H: 14, W: 14, K: 32, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		panic(err)
	}
	return d
}

func dryConvCycles(cfg config.HWConfig, d tensor.ConvDims, m mapping.ConvMapping) (int64, error) {
	eng, err := maeri.NewEngine(cfg)
	if err != nil {
		return 0, err
	}
	eng.DryRun = true
	_, st, err := eng.Conv2D(nil, nil, d, m)
	return st.Cycles, err
}

// AccumBufferRow compares cycles with and without the accumulation buffer
// for one virtual-neuron size.
type AccumBufferRow struct {
	VNSize        int
	Mapping       mapping.ConvMapping
	WithBuffer    int64
	WithoutBuffer int64
}

// AblationAccumBuffer sweeps VN sizes: small VNs accumulate temporally and
// suffer most when the buffer is removed (psums recirculate through the
// distribution network).
func AblationAccumBuffer() ([]AccumBufferRow, error) {
	d := ablationConv()
	maps := []mapping.ConvMapping{
		{TR: 1, TS: 1, TC: 1, TK: 8, TG: 1, TN: 1, TX: 4, TY: 4},  // VN=1
		{TR: 3, TS: 1, TC: 1, TK: 8, TG: 1, TN: 1, TX: 2, TY: 2},  // VN=3
		{TR: 3, TS: 3, TC: 1, TK: 4, TG: 1, TN: 1, TX: 2, TY: 1},  // VN=9
		{TR: 3, TS: 3, TC: 8, TK: 1, TG: 1, TN: 1, TX: 1, TY: 1},  // VN=72
		{TR: 3, TS: 3, TC: 14, TK: 1, TG: 1, TN: 1, TX: 1, TY: 1}, // VN=126
	}
	base := config.Default(config.MAERIDenseWorkload)
	base.DNBandwidth = 16 // modest bandwidth makes recirculation visible
	noAB := base
	noAB.AccumBuffer = false
	var rows []AccumBufferRow
	for _, m := range maps {
		with, err := dryConvCycles(base, d, m)
		if err != nil {
			return nil, err
		}
		without, err := dryConvCycles(noAB, d, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AccumBufferRow{VNSize: m.VNSize(), Mapping: m, WithBuffer: with, WithoutBuffer: without})
	}
	return rows, nil
}

// RenderAccumBuffer prints the accumulation-buffer ablation.
func RenderAccumBuffer(w io.Writer, rows []AccumBufferRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprint(r.VNSize), fmt.Sprint(r.WithBuffer), fmt.Sprint(r.WithoutBuffer),
			fmt.Sprintf("%.2f×", float64(r.WithoutBuffer)/float64(r.WithBuffer)),
		})
	}
	Table(w, "Ablation — accumulation buffer (MAERI, dn_bw=16): removing the buffer penalises small-VN mappings",
		[]string{"VN size", "with buffer", "without", "slowdown"}, cells)
}

// BandwidthRow is one distribution-bandwidth design point.
type BandwidthRow struct {
	DNBandwidth int
	Cycles      int64
	EnergyNJ    float64
}

// AblationBandwidth sweeps dn_bw for a bandwidth-hungry mapping, reporting
// cycles and estimated energy — the performance/efficiency trade-off that
// motivates the paper's planned energy tuning target.
func AblationBandwidth() ([]BandwidthRow, error) {
	d := ablationConv()
	m := mapping.ConvMapping{TR: 1, TS: 1, TC: 4, TK: 8, TG: 1, TN: 1, TX: 2, TY: 2}
	model := energy.Default45nm()
	var rows []BandwidthRow
	for _, bw := range []int{2, 4, 8, 16, 32, 64} {
		cfg := config.Default(config.MAERIDenseWorkload)
		cfg.DNBandwidth = bw
		eng, err := maeri.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		eng.DryRun = true
		_, st, err := eng.Conv2D(nil, nil, d, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BandwidthRow{DNBandwidth: bw, Cycles: st.Cycles, EnergyNJ: model.Estimate(st).TotalPJ() / 1e3})
	}
	return rows, nil
}

// RenderBandwidth prints the bandwidth ablation.
func RenderBandwidth(w io.Writer, rows []BandwidthRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{fmt.Sprint(r.DNBandwidth), fmt.Sprint(r.Cycles), fmt.Sprintf("%.1f", r.EnergyNJ)})
	}
	Table(w, "Ablation — distribution bandwidth sweep (fixed mapping)",
		[]string{"dn_bw", "cycles", "energy (nJ)"}, cells)
}

// TargetRow compares tuning targets on the same layer and budget.
type TargetRow struct {
	Target   string
	Mapping  mapping.ConvMapping
	Cycles   int64
	Measured int
}

// AblationTuningTarget tunes the same conv layer against psums, cycles and
// energy, then scores every winner in simulated cycles — quantifying the
// paper's claim that psums are "only loosely correlated with performance"
// but far cheaper to search with.
func AblationTuningTarget(seed int64) ([]TargetRow, error) {
	d := ablationConv()
	cfg := config.Default(config.MAERIDenseWorkload)
	space, err := autotune.ConvMappingSpace(d, cfg.MSSize)
	if err != nil {
		return nil, err
	}
	targets := []struct {
		name    string
		measure autotune.MeasureFunc
	}{
		{"psums", autotune.ConvPsumCost(d, cfg.MSSize)},
		{"cycles", autotune.ConvCycleCost(cfg, d)},
		{"energy", autotune.ConvEnergyCost(cfg, d, energy.Default45nm())},
		{"edp", autotune.ConvEDPCost(cfg, d, energy.Default45nm())},
	}
	var rows []TargetRow
	for _, t := range targets {
		res, err := (autotune.XGBTuner{}).Tune(space, t.measure, autotune.Options{Trials: 400, EarlyStopping: 100, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("bench: target %s: %w", t.name, err)
		}
		m := autotune.ConvMappingOf(res.Best.Config)
		cycles, err := dryConvCycles(cfg, d, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TargetRow{Target: t.name, Mapping: m, Cycles: cycles, Measured: res.Measured})
	}
	return rows, nil
}

// RenderTuningTarget prints the target ablation.
func RenderTuningTarget(w io.Writer, rows []TargetRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Target, fmt.Sprint(r.Cycles), fmt.Sprint(r.Measured), r.Mapping.String()})
	}
	Table(w, "Ablation — tuning target (same layer, XGB tuner, same budget), scored in simulated cycles",
		[]string{"target", "cycles of winner", "measurements", "winning mapping"}, cells)
}

// TunerRow compares search strategies on the same space and measure.
type TunerRow struct {
	Tuner     string
	BestCost  float64
	Measured  int
	Converged bool
}

// AblationTuners runs grid, random, GA and XGB tuners over the FC cycle
// space of an AlexNet-fc2-like layer, reporting the best cost each finds —
// the §VII claim that learned tuners "more efficiently search a subset of
// mapping space".
func AblationTuners(seed int64) ([]TunerRow, error) {
	cfg := config.Default(config.MAERIDenseWorkload)
	const inN, outN = 1024, 512
	space := autotune.FCMappingSpace(inN, outN, cfg.MSSize)
	measure := autotune.FCCycleCost(cfg, 1, inN, outN)
	budget := autotune.Options{Trials: 80, EarlyStopping: 0, Seed: seed}
	tuners := []struct {
		name  string
		tuner autotune.Tuner
		opts  autotune.Options
	}{
		{"grid (exhaustive)", autotune.GridSearch{}, autotune.Options{}},
		{"random", autotune.RandomSearch{}, budget},
		{"ga", autotune.GATuner{}, budget},
		{"xgb", autotune.XGBTuner{}, budget},
	}
	var rows []TunerRow
	for _, t := range tuners {
		res, err := t.tuner.Tune(space, measure, t.opts)
		if err != nil {
			return nil, fmt.Errorf("bench: tuner %s: %w", t.name, err)
		}
		rows = append(rows, TunerRow{Tuner: t.name, BestCost: res.Best.Cost.Primary, Measured: res.Measured, Converged: res.Converged})
	}
	return rows, nil
}

// RenderTuners prints the tuner ablation.
func RenderTuners(w io.Writer, rows []TunerRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Tuner, fmt.Sprintf("%.0f", r.BestCost), fmt.Sprint(r.Measured)})
	}
	Table(w, "Ablation — tuner comparison (FC 1024→512, cycles target)",
		[]string{"tuner", "best cycles", "measurements"}, cells)
}
