package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
)

// pinJob returns a cheap dry-run farm job (key unique to n) whose hook
// blocks the executing worker until release is closed, so tests drive
// queue depth and backpressure deterministically.
func pinJob(n int, started chan<- struct{}, release <-chan struct{}) farm.Job {
	j := farm.Job{
		HW: config.Default(config.MAERIDenseWorkload), Kind: farm.Dense, DryRun: true,
		M: 1, K: 32, N: 4000 + n, FCMapping: mapping.BasicFC(),
	}
	return j.WithFaultHook(func() { close(started); <-release })
}

// dryBody returns a /simulate body for a cheap dry-run job unique to n.
func dryBody(n int, extra string) string {
	return fmt.Sprintf(`{"arch":{"controller":"maeri"},"op":"dense","dense":{"k":32,"n":%d},"dry_run":true%s}`, n, extra)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeFaultBackpressure429 proves the HTTP backpressure contract: with
// the farm's queue at its bound, /simulate answers 429 with a Retry-After
// hint instead of queueing, and accepts work again once the queue drains.
func TestServeFaultBackpressure429(t *testing.T) {
	fm := farm.New(1, farm.WithMaxQueue(1))
	ts := httptest.NewServer(NewServer(fm))
	t.Cleanup(func() { ts.Close(); fm.Close() })

	started := make(chan struct{})
	release := make(chan struct{})
	pinned := fm.Submit(pinJob(0, started, release))
	<-started
	filler := farm.Job{ // fills the queue's one slot; runs normally after the drain
		HW: config.Default(config.MAERIDenseWorkload), Kind: farm.Dense, DryRun: true,
		M: 1, K: 32, N: 4001, FCMapping: mapping.BasicFC(),
	}
	queuedFut := fm.Submit(filler)
	waitFor(t, "queue to fill", func() bool { return fm.Stats().Queued == 1 })

	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(dryBody(100, "")))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body: %+v)", resp.StatusCode, jr)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After header")
	}
	if !strings.Contains(jr.Error, "queue full") {
		t.Errorf("429 error %q does not name the queue bound", jr.Error)
	}

	// Drain and verify the server accepts work again.
	close(release)
	if _, err := pinned.Wait(); err != nil {
		t.Fatalf("pinned job: %v", err)
	}
	if _, err := queuedFut.Wait(); err != nil {
		t.Fatalf("queued job: %v", err)
	}
	resp2, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(dryBody(100, "")))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-drain status = %d, want 200", resp2.StatusCode)
	}
}

// TestServeFaultTimeout504 proves timeout_ms: a job stuck behind a pinned
// worker past its budget answers 504 with a deadline error instead of
// holding the connection (and the queue slot) indefinitely.
func TestServeFaultTimeout504(t *testing.T) {
	fm := farm.New(1)
	ts := httptest.NewServer(NewServer(fm))
	started := make(chan struct{})
	release := make(chan struct{})
	t.Cleanup(func() { ts.Close(); fm.Close() })
	defer close(release) // unpin before Close so the farm can drain

	fm.Submit(pinJob(10, started, release))
	<-started

	resp, err := http.Post(ts.URL+"/simulate", "application/json",
		strings.NewReader(dryBody(110, `,"timeout_ms":50`)))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body: %+v)", resp.StatusCode, jr)
	}
	if !strings.Contains(jr.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("504 error %q does not name the deadline", jr.Error)
	}
	waitFor(t, "timed-out job to leave the queue", func() bool {
		return fm.Stats().Queued == 0
	})
	if st := fm.Stats(); st.Cancelled == 0 {
		t.Errorf("timed-out job was never reaped: %+v", st)
	}
}

// TestServeFaultBatchDisconnectFreesQueue proves a dead client's sweep
// stops consuming the farm: cancelling a /batch request releases its
// still-queued jobs before any worker picks them up.
func TestServeFaultBatchDisconnectFreesQueue(t *testing.T) {
	fm := farm.New(1)
	ts := httptest.NewServer(NewServer(fm))
	started := make(chan struct{})
	release := make(chan struct{})
	t.Cleanup(func() { ts.Close(); fm.Close() })
	defer close(release)

	fm.Submit(pinJob(20, started, release))
	<-started

	var batch strings.Builder
	batch.WriteString(`{"jobs":[`)
	for i := 0; i < 6; i++ {
		if i > 0 {
			batch.WriteString(",")
		}
		batch.WriteString(dryBody(120+i, ""))
	}
	batch.WriteString(`]}`)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/batch", strings.NewReader(batch.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, "batch jobs to queue behind the pinned worker", func() bool {
		return fm.Stats().Queued > 0
	})

	cancel() // the client walks away mid-sweep
	if err := <-errc; err == nil {
		t.Error("cancelled batch request reported no error to the client")
	}
	waitFor(t, "disconnected client's jobs to leave the queue", func() bool {
		return fm.Stats().Queued == 0
	})
	st := fm.Stats()
	if st.Cancelled == 0 {
		t.Errorf("no queued job was cancelled on disconnect: %+v", st)
	}
	if st.Completed != 0 {
		t.Errorf("a disconnected client's job still executed: %+v", st)
	}
}

// TestServeFaultDegradedDiskObservability proves a quarantined disk tier is
// visible to operators: /stats reports degraded with the breaker counters,
// and /metrics exposes the disk error, trip and degraded families.
func TestServeFaultDegradedDiskObservability(t *testing.T) {
	ds, err := farm.NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := farmtest.NewFaultStore(ds, farmtest.FaultPolicy{ErrRate: 1, Seed: 9})
	fm := farm.New(2, farm.WithDiskStore(farm.NewRetryStore(fs, farmtest.TestRetryPolicy())))
	ts := httptest.NewServer(NewServer(fm))
	t.Cleanup(func() { ts.Close(); fm.Close() })

	// Enough traffic to trip the breaker (TripAfter 3), all still correct.
	for i := 0; i < 6; i++ {
		resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(dryBody(200+i, "")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d during disk outage: status %d, want 200", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Disk == nil || !st.Disk.Degraded {
		t.Fatalf("/stats does not report the quarantined disk tier: %+v", st.Disk)
	}
	if st.Disk.Trips == 0 {
		t.Errorf("/stats reports no breaker trips: %+v", st.Disk)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(strings.Builder)
	if _, err := fmt.Fprint(buf, readAll(t, mresp)); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"bifrost_farm_disk_degraded 1",
		"bifrost_farm_disk_breaker_trips_total",
		"bifrost_farm_disk_errors_total",
		"bifrost_farm_disk_retries_total",
		"bifrost_farm_panics_total",
		"bifrost_farm_cancelled_total",
		"bifrost_farm_rejected_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
