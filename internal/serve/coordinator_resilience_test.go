package serve

import (
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farm"
)

// scrapeMetrics fetches the coordinator's /metrics body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return readAll(t, resp)
}

// metricValue extracts one sample (full name including labels) from an
// exposition body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s missing from /metrics", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// TestCoordinatorRingSkipsDrainingPeer drains one of two workers and runs a
// sweep through the coordinator: the stats scrape must learn the drain and
// pull the peer off the ring, every row must land elsewhere byte-identically
// with zero error rows, and the drain must not feed the peer's breaker.
func TestCoordinatorRingSkipsDrainingPeer(t *testing.T) {
	reqs := sweepRequests()
	single, _ := newTestServer(t)
	want := runSweepNDJSON(t, single.URL, reqs)

	w1, w2 := newWorkerNode(t), newWorkerNode(t)
	coordFarm := farm.New(2)
	coord := httptest.NewServer(NewServer(coordFarm,
		WithPeers([]Peer{{Name: "w1", URL: w1.URL}, {Name: "w2", URL: w2.URL}}),
		WithPeerStatsTTL(10*time.Millisecond)))
	t.Cleanup(func() { coord.Close(); coordFarm.Close() })

	// Drain w2 directly, as an operator would before taking it down.
	dresp, err := http.Post(w2.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	got := runSweepNDJSON(t, coord.URL, reqs)
	assertSweepRows(t, "sweep with w2 draining", want, got)
	for i := range got {
		if got[i].Peer == "w2" {
			t.Errorf("row %d answered by the draining peer", i)
		}
	}

	metrics := scrapeMetrics(t, coord.URL)
	if v := metricValue(t, metrics, "bifrost_coordinator_ring_members"); v != 1 {
		t.Errorf("ring members %v with one peer draining, want 1", v)
	}
	if v := metricValue(t, metrics, `bifrost_peer_draining{peer="w2"}`); v != 1 {
		t.Errorf("bifrost_peer_draining for w2 = %v, want 1", v)
	}
	if v := metricValue(t, metrics, `bifrost_peer_up{peer="w2"}`); v != 0 {
		t.Errorf("bifrost_peer_up for w2 = %v, want 0 while draining", v)
	}
	if v := metricValue(t, metrics, `bifrost_peer_breaker_trips_total{peer="w2"}`); v != 0 {
		t.Errorf("draining fed w2's breaker: %v trips, want 0", v)
	}
}

// TestCoordinatorPeerHedgedDispatch shards a sweep across a fast worker and
// a slow one (250ms per /simulate) with hedging armed at 40ms: the slow
// peer's rows must be rescued by hedges — byte-identical, zero error rows —
// and the cancelled losers must not trip the slow peer's breaker.
func TestCoordinatorPeerHedgedDispatch(t *testing.T) {
	reqs := sweepRequests()
	single, _ := newTestServer(t)
	want := runSweepNDJSON(t, single.URL, reqs)

	fast := newWorkerNode(t)
	backend := newWorkerNode(t)
	burl, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(burl)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/simulate" {
			time.Sleep(250 * time.Millisecond)
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)

	coordFarm := farm.New(2)
	coord := httptest.NewServer(NewServer(coordFarm,
		WithPeers([]Peer{{Name: "fast", URL: fast.URL}, {Name: "slow", URL: slow.URL}}),
		WithHedgeAfter(40*time.Millisecond)))
	t.Cleanup(func() { coord.Close(); coordFarm.Close() })

	start := time.Now()
	got := runSweepNDJSON(t, coord.URL, reqs)
	elapsed := time.Since(start)
	assertSweepRows(t, "hedged sweep", want, got)

	metrics := scrapeMetrics(t, coord.URL)
	hedges := metricValue(t, metrics, "bifrost_peer_hedges_total")
	wins := metricValue(t, metrics, "bifrost_peer_hedge_wins_total")
	if hedges == 0 {
		t.Errorf("no hedges fired against a 250ms peer with -hedge-after 40ms (sweep took %s)", elapsed)
	}
	if wins == 0 {
		t.Error("no hedge ever won against a 250ms peer")
	}
	if wins > hedges {
		t.Errorf("hedge wins %v exceed hedges %v", wins, hedges)
	}
	// Losing the race is not a failure: the slow peer must stay admitted.
	if v := metricValue(t, metrics, `bifrost_peer_breaker_trips_total{peer="slow"}`); v != 0 {
		t.Errorf("cancelled hedge losers tripped the slow peer's breaker %v times", v)
	}
	if v := metricValue(t, metrics, "bifrost_coordinator_ring_members"); v != 2 {
		t.Errorf("ring members %v after hedged sweep, want 2", v)
	}
}

// TestCoordinatorPeerProbeFlipsRing toggles a peer's /healthz and watches
// the active prober flip it off the ring after consecutive failures — and
// back on when it recovers.
func TestCoordinatorPeerProbeFlipsRing(t *testing.T) {
	w1 := newWorkerNode(t)
	flakyFarm := farm.New(1)
	flakyNode := NewServer(flakyFarm)
	var sick atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() && r.URL.Path == "/healthz" {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		flakyNode.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { flaky.Close(); flakyFarm.Close() })

	coordFarm := farm.New(2)
	api := NewServer(coordFarm,
		WithPeers([]Peer{{Name: "w1", URL: w1.URL}, {Name: "flaky", URL: flaky.URL}}),
		WithPeerProbes(15*time.Millisecond))
	coord := httptest.NewServer(api)
	t.Cleanup(func() { coord.Close(); api.Close(); coordFarm.Close() })

	waitRing := func(members float64, context string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if metricValue(t, scrapeMetrics(t, coord.URL), "bifrost_coordinator_ring_members") == members {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("%s: ring never reached %v members", context, members)
	}

	waitRing(2, "healthy start")
	sick.Store(true)
	waitRing(1, "flaky peer failing probes")
	if v := metricValue(t, scrapeMetrics(t, coord.URL), `bifrost_peer_up{peer="flaky"}`); v != 0 {
		t.Errorf("bifrost_peer_up for the downed peer = %v, want 0", v)
	}
	sick.Store(false)
	waitRing(2, "flaky peer recovered")
	if v := metricValue(t, scrapeMetrics(t, coord.URL), `bifrost_peer_up{peer="flaky"}`); v != 1 {
		t.Errorf("bifrost_peer_up for the recovered peer = %v, want 1", v)
	}
}
