package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/farm"
)

// TestBatchNDJSONErrorRowTaxonomy is the regression test for opaque stream
// errors: an NDJSON row that fails must carry the same machine-readable
// code/retryable fields the single-job path expresses via HTTP status,
// because a streamed row has no status of its own.
func TestBatchNDJSONErrorRowTaxonomy(t *testing.T) {
	ts, _ := newTestServer(t)

	body := `{"arch":{"controller":"maeri"},"op":"dense","dense":{"k":16,"n":8},"dry_run":true}
{"arch":{"controller":"maeri"},"op":"warp_drive"}
{"arch":{"controller":"nonsense"},"op":"dense","dense":{"k":16,"n":8}}
`
	resp, err := http.Post(ts.URL+"/batch", "application/x-ndjson", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []JobResponse
	dec := json.NewDecoder(resp.Body)
	for {
		var jr JobResponse
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, jr)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Error != "" || rows[0].Code != "" {
		t.Errorf("healthy row got error fields: %+v", rows[0])
	}
	for i, row := range rows[1:] {
		if row.Error == "" {
			t.Fatalf("bad row %d reported no error", i+1)
		}
		if row.Code != "invalid" {
			t.Errorf("bad row %d: code %q, want invalid", i+1, row.Code)
		}
		if row.Retryable {
			t.Errorf("bad row %d marked retryable: resubmitting an invalid job cannot succeed", i+1)
		}
	}
}

// TestBatchFanoutRespectsQueueBound is the regression test for the fan-out
// width ignoring the queue bound: a server over a farm with WithMaxQueue(1)
// used to launch 2*workers concurrent submissions, manufacturing
// ErrQueueFull rows out of its own parallelism. The width is now clamped to
// the bound, so a large batch must stream back with zero rejections.
func TestBatchFanoutRespectsQueueBound(t *testing.T) {
	fm := farm.New(2, farm.WithMaxQueue(1))
	ts := httptest.NewServer(NewServer(fm))
	t.Cleanup(func() {
		ts.Close()
		fm.Close()
	})

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	const batch = 24
	for i := 0; i < batch; i++ {
		if err := enc.Encode(JobRequest{
			Arch: ArchSpec{Controller: "maeri"},
			Op:   "dense", Dense: &DenseSpec{K: 16, N: 8 + i},
			DryRun: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/batch", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rows := 0
	dec := json.NewDecoder(resp.Body)
	for {
		var jr JobResponse
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if jr.Error != "" {
			t.Errorf("row %d failed: %s (code %s)", rows, jr.Error, jr.Code)
		}
		rows++
	}
	if rows != batch {
		t.Fatalf("streamed %d rows, want %d", rows, batch)
	}
	if st := fm.Stats(); st.Rejected != 0 {
		t.Errorf("batch fan-out manufactured %d rejections over a bound-1 queue", st.Rejected)
	}
}
