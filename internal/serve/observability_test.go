package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/telemetry"
)

// TestMetricsEndpoint checks the Prometheus exposition: content type, the
// registry-backed families and the scrape-time farm families, with values
// consistent with the traffic that was just served.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	// One miss and one hit populate the farm counters, the phase and
	// compute histograms and the request histograms.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(convBody))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, family := range []string{
		// Registry-backed histograms and gauges.
		"bifrost_http_request_seconds_bucket",
		"bifrost_http_in_flight",
		"bifrost_farm_phase_seconds_bucket",
		"bifrost_compute_seconds_bucket",
		// Scrape-time families derived from farm.Stats.
		"bifrost_farm_workers 2",
		"bifrost_farm_submitted_total 2",
		"bifrost_farm_hits_total 1",
		"bifrost_farm_misses_total 1",
		"bifrost_farm_hit_ratio 0.5",
		`bifrost_store_entries{tier="memory"} 1`,
		`bifrost_store_hit_ratio{tier="memory"}`,
		"bifrost_pack_cache_hits_total",
		"bifrost_traces_recorded_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing %q", family)
		}
	}
	// Every HELP line must be paired with a TYPE line.
	if got, want := strings.Count(text, "# HELP"), strings.Count(text, "# TYPE"); got != want || got == 0 {
		t.Errorf("HELP lines %d, TYPE lines %d", got, want)
	}
}

// TestVersionEndpoint checks the build/runtime descriptor.
func TestVersionEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.GoVersion, "go") {
		t.Errorf("go_version %q", v.GoVersion)
	}
	if v.SIMD == "" {
		t.Error("simd level empty")
	}
	if v.Farm.Workers != 2 {
		t.Errorf("farm.workers = %d, want 2", v.Farm.Workers)
	}
}

// TestTraceRoundTrip checks the per-request trace flag: a traced request
// echoes a lifecycle trace naming its source tier, an untraced request
// carries none, and tracing never changes keys or results.
func TestTraceRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	traced := strings.Replace(convBody, `"seed": 1`, `"seed": 1, "trace": true`, 1)

	post := func(body string) JobResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		if jr.Error != "" {
			t.Fatal(jr.Error)
		}
		return jr
	}

	first := post(traced)
	if first.Trace == nil {
		t.Fatal("traced request returned no trace")
	}
	if first.Trace.Source != "compute" {
		t.Errorf("fresh trace source %q, want compute", first.Trace.Source)
	}
	if first.Trace.Key != first.Key {
		t.Errorf("trace key %q != response key %q", first.Trace.Key, first.Key)
	}
	if first.Trace.ComputeMS <= 0 {
		t.Errorf("fresh trace compute_ms = %v, want > 0", first.Trace.ComputeMS)
	}

	second := post(traced)
	if !second.Cached {
		t.Fatal("repeat of traced request missed the cache")
	}
	if second.Trace == nil || second.Trace.Source != "memory" {
		t.Fatalf("warm trace = %+v, want source memory", second.Trace)
	}

	// An untraced request shares the cache entry (trace flag excluded from
	// the key) and carries no trace.
	plain := post(convBody)
	if !plain.Cached || plain.Key != first.Key {
		t.Fatalf("untraced request did not share the traced entry: cached=%v key=%q vs %q",
			plain.Cached, plain.Key, first.Key)
	}
	if plain.Trace != nil {
		t.Errorf("untraced request carried a trace: %+v", plain.Trace)
	}
	if plain.OutputSum != first.OutputSum || *plain.Stats != *first.Stats {
		t.Error("tracing changed the result payload")
	}
}

// TestElapsedSubMillisecond pins the float elapsed_ms contract: an analytic
// dry run completes in well under a millisecond and must report a positive
// fractional time, not a truncated 0.
func TestElapsedSubMillisecond(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"arch": {"controller": "maeri"}, "op": "conv2d",
		"conv": {"c": 2, "h": 8, "k": 4, "r": 3}, "dry_run": true}`
	// Warm the cache so the timed request is a pure memory hit.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var jr JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if jr.Error != "" {
			t.Fatal(jr.Error)
		}
		if jr.ElapsedMS <= 0 {
			t.Fatalf("elapsed_ms = %v, want > 0 (sub-millisecond times must not truncate)", jr.ElapsedMS)
		}
	}
}

// TestDebugTraces checks the bounded trace ring endpoint: executions land in
// the ring newest-first and the total keeps counting past the capacity.
func TestDebugTraces(t *testing.T) {
	ring := telemetry.NewTraceRing(8)
	fm := farm.New(2, farm.WithTraceRing(ring))
	ts := httptest.NewServer(NewServer(fm))
	t.Cleanup(func() { ts.Close(); fm.Close() })

	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(convBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	tresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var tr TracesResponse
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Total != 1 || len(tr.Traces) != 1 {
		t.Fatalf("traces = %+v, want exactly the one execution", tr)
	}
	if tr.Traces[0].Source != "compute" {
		t.Errorf("trace source %q, want compute", tr.Traces[0].Source)
	}
}

// TestStatsExtended decodes the extended /stats payload and checks the
// telemetry rollups layered on top of the raw farm snapshot.
func TestStatsExtended(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(convBody))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("raw farm counters lost in the extended payload: %+v", st.Stats)
	}
	if st.Ratios.Farm != 0.5 {
		t.Errorf("farm ratio %v, want 0.5", st.Ratios.Farm)
	}
	if st.Ratios.Memory <= 0 {
		t.Errorf("memory ratio %v, want > 0", st.Ratios.Memory)
	}
	if st.Phases["compute"].Count == 0 {
		t.Error("compute phase summary empty after an execution")
	}
	if _, ok := st.Compute["maeri"]; !ok {
		t.Errorf("compute summaries missing maeri: %v", st.Compute)
	}
	if st.Requests["/simulate"].Count < 2 {
		t.Errorf("request summary for /simulate = %+v, want >= 2 observations", st.Requests["/simulate"])
	}
	if st.Limits.Workers != 2 {
		t.Errorf("limits.workers = %d", st.Limits.Workers)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime %v", st.UptimeSeconds)
	}
}

// TestSlowJobLogging checks that a threshold of one nanosecond flags every
// job as slow and logs its key with the lifecycle trace, without echoing a
// trace to a client that did not ask for one.
func TestSlowJobLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	fm := farm.New(1)
	ts := httptest.NewServer(NewServer(fm, WithLogger(logger), WithSlowJobThreshold(time.Nanosecond)))
	t.Cleanup(func() { ts.Close(); fm.Close() })

	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(convBody))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.Trace != nil {
		t.Error("slow-job tracing leaked into a response that did not request a trace")
	}

	logs := buf.String()
	if !strings.Contains(logs, "slow job") {
		t.Fatalf("no slow-job warning in logs:\n%s", logs)
	}
	if !strings.Contains(logs, jr.Key) {
		t.Error("slow-job warning does not name the job key")
	}
	if !strings.Contains(logs, "compute_ms") {
		t.Error("slow-job warning carries no lifecycle trace")
	}
	if !strings.Contains(logs, `"path":"/simulate"`) {
		t.Error("request log line missing")
	}
}

// TestTraceAll checks the server-wide -trace mode: every response carries a
// trace without the client opting in.
func TestTraceAll(t *testing.T) {
	fm := farm.New(1)
	ts := httptest.NewServer(NewServer(fm, WithTraceAll(true)))
	t.Cleanup(func() { ts.Close(); fm.Close() })

	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(convBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Trace == nil || jr.Trace.Source != "compute" {
		t.Fatalf("server-wide tracing returned trace %+v", jr.Trace)
	}
}
