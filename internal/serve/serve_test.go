package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/farm"
)

func newTestServer(t *testing.T) (*httptest.Server, *farm.Farm) {
	t.Helper()
	fm := farm.New(2)
	ts := httptest.NewServer(NewServer(fm))
	t.Cleanup(func() {
		ts.Close()
		fm.Close()
	})
	return ts, fm
}

const convBody = `{
	"arch": {"controller": "maeri", "ms_size": 128},
	"op": "conv2d",
	"conv": {"c": 2, "h": 10, "k": 4, "r": 3},
	"mapping": [3, 3, 1, 2, 1, 1, 1, 1],
	"seed": 1
}`

func TestSimulateAndStats(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(convBody))
	if err != nil {
		t.Fatal(err)
	}
	var first JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || first.Error != "" {
		t.Fatalf("status %d, error %q", resp.StatusCode, first.Error)
	}
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	if first.Stats == nil || first.Stats.Cycles == 0 {
		t.Fatalf("no stats in response: %+v", first)
	}
	if len(first.OutputShape) != 4 {
		t.Fatalf("output shape %v", first.OutputShape)
	}

	// The identical request must be a cache hit with identical results.
	resp, err = http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(convBody))
	if err != nil {
		t.Fatal(err)
	}
	var second JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !second.Cached {
		t.Fatal("repeated request missed the cache")
	}
	if second.Key != first.Key || second.OutputSum != first.OutputSum || *second.Stats != *first.Stats {
		t.Fatalf("cached response diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}

	// /stats must report the hit.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st farm.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Hits == 0 || st.Misses == 0 || st.CacheEntries == 0 {
		t.Fatalf("stats did not record the hit/miss: %+v", st)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("hit rate %v, want > 0", st.HitRate())
	}
}

func TestSimulateRejectsBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, body := range map[string]string{
		"malformed":   `{"op": `,
		"unknown op":  `{"op": "pool"}`,
		"no geometry": `{"op": "conv2d"}`,
		"bad arch":    `{"op": "dense", "dense": {"k": 4, "n": 2}, "arch": {"controller": "npu"}}`,
		"bad mapping": `{"op": "conv2d", "conv": {"c": 2, "h": 10, "k": 4, "r": 3}, "mapping": [1, 2]}`,
	} {
		resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var jr JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK || jr.Error == "" {
			t.Fatalf("%s: status %d, error %q — want a rejection", name, resp.StatusCode, jr.Error)
		}
	}
}

func TestBatchJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"jobs": [` + convBody + `,` + convBody + `,
		{"arch": {"controller": "sigma", "sparsity": 50},
		 "op": "dense", "dense": {"k": 32, "n": 16}, "seed": 2}]}`
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(batch.Results))
	}
	for i, r := range batch.Results {
		if r.Error != "" {
			t.Fatalf("result %d: %s", i, r.Error)
		}
	}
	// The duplicated conv job must coalesce: at most 2 distinct sims ran.
	if batch.Results[0].Key != batch.Results[1].Key {
		t.Fatal("identical jobs produced different keys")
	}
	if batch.Results[0].OutputSum != batch.Results[1].OutputSum {
		t.Fatal("identical jobs produced different outputs")
	}
	if batch.Stats.Completed > 2 {
		t.Fatalf("duplicate job was not deduplicated: %+v", batch.Stats)
	}
	if batch.Stats.Hits+batch.Stats.Deduped == 0 {
		t.Fatalf("batch reported no coalescing: %+v", batch.Stats)
	}
}

func TestBatchNDJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	lines := []string{
		`{"op": "dense", "dense": {"k": 16, "n": 8}, "seed": 1}`,
		``, // blank lines are skipped
		`{"op": "dense", "dense": {"k": 16, "n": 8}, "fc_mapping": [4, 2, 1], "seed": 1}`,
	}
	resp, err := http.Post(ts.URL+"/batch", "application/x-ndjson", strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var results []JobResponse
	for dec.More() {
		var r JobResponse
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("result %d: %s", i, r.Error)
		}
		if r.Stats == nil || r.Stats.Cycles == 0 {
			t.Fatalf("result %d has no cycles", i)
		}
	}
	// Different mappings: the tuned one must not be slower than basic here.
	if results[1].Stats.Cycles >= results[0].Stats.Cycles {
		t.Fatalf("tiled FC mapping (%d cycles) should beat basic (%d cycles)",
			results[1].Stats.Cycles, results[0].Stats.Cycles)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
