package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/farm"
)

// sweepRequests is a deterministic mixed sweep: conv and dense, three
// controllers, dry runs and real operands, distinct seeds.
func sweepRequests() []JobRequest {
	var reqs []JobRequest
	for i := 0; i < 6; i++ {
		reqs = append(reqs, JobRequest{
			Arch: ArchSpec{Controller: "maeri"},
			Op:   "dense", Dense: &DenseSpec{K: 16, N: 8 + i},
			Seed: int64(100 + i),
		})
		reqs = append(reqs, JobRequest{
			Arch: ArchSpec{Controller: []string{"maeri", "sigma", "tpu"}[i%3]},
			Op:   "conv2d", Conv: &ConvSpec{C: 2, H: 8, K: 4, R: 3},
			Seed: int64(200 + i),
		})
	}
	reqs = append(reqs, JobRequest{
		Arch: ArchSpec{Controller: "maeri"},
		Op:   "dense", Dense: &DenseSpec{K: 32, N: 16},
		DryRun: true,
	})
	return reqs
}

// runSweepNDJSON drives reqs through a server's streamed /batch and returns
// the per-line responses in order.
func runSweepNDJSON(t *testing.T, url string, reqs []JobRequest) []JobResponse {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, r := range reqs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+"/batch", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d", resp.StatusCode)
	}
	var out []JobResponse
	dec := json.NewDecoder(resp.Body)
	for {
		var jr JobResponse
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		out = append(out, jr)
	}
	return out
}

// newWorkerNode stands up one complete bifrost-serve node for a coordinator
// to dispatch to.
func newWorkerNode(t *testing.T) *httptest.Server {
	t.Helper()
	fm := farm.New(2)
	ts := httptest.NewServer(NewServer(fm))
	t.Cleanup(func() {
		ts.Close()
		fm.Close()
	})
	return ts
}

// TestCoordinatorTwoNodePeerSweepByteIdentical is the tentpole's
// acceptance: the same sweep through a single node and through a
// coordinator sharding across two peer nodes must agree on every key,
// every counter and every output checksum.
func TestCoordinatorTwoNodePeerSweepByteIdentical(t *testing.T) {
	reqs := sweepRequests()

	single, _ := newTestServer(t)
	want := runSweepNDJSON(t, single.URL, reqs)

	w1, w2 := newWorkerNode(t), newWorkerNode(t)
	coordFarm := farm.New(2)
	coord := httptest.NewServer(NewServer(coordFarm,
		WithPeers([]Peer{{Name: "w1", URL: w1.URL}, {Name: "w2", URL: w2.URL}})))
	t.Cleanup(func() {
		coord.Close()
		coordFarm.Close()
	})

	got := runSweepNDJSON(t, coord.URL, reqs)
	if len(got) != len(want) {
		t.Fatalf("coordinator sweep returned %d rows, want %d", len(got), len(want))
	}
	peers := map[string]int{}
	for i := range want {
		if got[i].Error != "" {
			t.Fatalf("row %d failed through coordinator: %s (code %s)", i, got[i].Error, got[i].Code)
		}
		if got[i].Key != want[i].Key {
			t.Errorf("row %d: key %s through coordinator, %s single-node", i, got[i].Key, want[i].Key)
		}
		if *got[i].Stats != *want[i].Stats {
			t.Errorf("row %d: stats diverge:\n coord %+v\nsingle %+v", i, *got[i].Stats, *want[i].Stats)
		}
		if got[i].OutputSum != want[i].OutputSum {
			t.Errorf("row %d: output checksum %v through coordinator, %v single-node", i, got[i].OutputSum, want[i].OutputSum)
		}
		if got[i].Peer == "" {
			t.Errorf("row %d: no peer label on a coordinated response", i)
		}
		peers[got[i].Peer]++
	}
	if len(peers) != 2 {
		t.Errorf("sweep used peers %v, want both nodes sharded in", peers)
	}

	// The coordinator's /metrics must expose the per-peer families.
	resp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		`bifrost_peer_dispatched_total{peer="w1"}`,
		`bifrost_peer_dispatched_total{peer="w2"}`,
		`bifrost_peer_up{peer="w1"}`,
		`bifrost_peer_queue_depth{peer="w1"}`,
		`bifrost_peer_busy_workers{peer="w2"}`,
		`bifrost_peer_mem_hit_ratio{peer="w1"}`,
		"bifrost_coordinator_ring_members 2",
	} {
		if !strings.Contains(string(metrics), fam) {
			t.Errorf("coordinator /metrics missing %s", fam)
		}
	}
}

// TestCoordinatorPeerDownRedistributes kills one of two peers: its shard
// must land on the survivor (or the local farm) with every job still
// byte-identical, and the dead peer's breaker must trip.
func TestCoordinatorPeerDownRedistributes(t *testing.T) {
	reqs := sweepRequests()
	single, _ := newTestServer(t)
	want := runSweepNDJSON(t, single.URL, reqs)

	alive := newWorkerNode(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens: connection refused, the hard failure mode

	coordFarm := farm.New(2)
	coord := httptest.NewServer(NewServer(coordFarm,
		WithPeers([]Peer{{Name: "alive", URL: alive.URL}, {Name: "dead", URL: deadURL}})))
	t.Cleanup(func() {
		coord.Close()
		coordFarm.Close()
	})

	got := runSweepNDJSON(t, coord.URL, reqs)
	for i := range want {
		if got[i].Error != "" {
			t.Fatalf("row %d failed with a peer down: %s (code %s)", i, got[i].Error, got[i].Code)
		}
		if got[i].Key != want[i].Key || got[i].OutputSum != want[i].OutputSum {
			t.Errorf("row %d diverged with a peer down", i)
		}
		if got[i].Peer == "dead" {
			t.Errorf("row %d claims the dead peer answered it", i)
		}
	}

	resp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `bifrost_peer_up{peer="alive"} 1`) {
		t.Error("alive peer not reported up")
	}
	// The dead peer owned some shard of the sweep, so it must have either
	// tripped its breaker or at least recorded failovers.
	if !strings.Contains(string(metrics), `bifrost_peer_failovers_total{peer="dead"}`) {
		t.Error("dead peer's failovers family missing from /metrics")
	}
}

// TestCoordinatorPeerBackpressurePropagates fronts a peer that answers 429:
// the coordinator must hand the client the same terminal backpressure —
// status, machine-readable code and retry hint — not mask it or fail over.
func TestCoordinatorPeerBackpressurePropagates(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/simulate" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Retry-After", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"farm: queue full","code":"queue_full","retryable":true,"retry_after_ms":2000}`)
	}))
	defer busy.Close()

	coordFarm := farm.New(1)
	coord := httptest.NewServer(NewServer(coordFarm, WithPeers([]Peer{{Name: "busy", URL: busy.URL}})))
	t.Cleanup(func() {
		coord.Close()
		coordFarm.Close()
	})

	resp, err := http.Post(coord.URL+"/simulate", "application/json",
		strings.NewReader(`{"arch":{"controller":"maeri"},"op":"dense","dense":{"k":16,"n":8},"dry_run":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressure hop: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After through the coordinator")
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Code != "queue_full" || !jr.Retryable || jr.RetryAfterMS <= 0 {
		t.Errorf("backpressure row = code %q retryable %v retry_after_ms %d, want machine-readable queue_full",
			jr.Code, jr.Retryable, jr.RetryAfterMS)
	}
	if jr.Peer != "busy" {
		t.Errorf("backpressure row peer = %q, want busy", jr.Peer)
	}
}

// TestCoordinatorPeerTracePropagation asks for a trace through the remote
// hop: the response must carry one trace per hop — the coordinator's
// wrapping the executing node's.
func TestCoordinatorPeerTracePropagation(t *testing.T) {
	w1 := newWorkerNode(t)
	coordFarm := farm.New(1)
	coord := httptest.NewServer(NewServer(coordFarm, WithPeers([]Peer{{Name: "w1", URL: w1.URL}})))
	t.Cleanup(func() {
		coord.Close()
		coordFarm.Close()
	})

	resp, err := http.Post(coord.URL+"/simulate", "application/json",
		strings.NewReader(`{"arch":{"controller":"maeri"},"op":"dense","dense":{"k":16,"n":8},"seed":7,"trace":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Error != "" {
		t.Fatalf("traced job failed: %s", jr.Error)
	}
	if jr.Trace == nil {
		t.Fatal("no trace echoed through the coordinator")
	}
	if jr.Trace.Source != "peer" || jr.Trace.Peer != "w1" {
		t.Errorf("outer hop = source %q peer %q, want peer/w1", jr.Trace.Source, jr.Trace.Peer)
	}
	if jr.Trace.Remote == nil {
		t.Fatal("remote hop's trace missing")
	}
	if jr.Trace.Remote.Source == "" || jr.Trace.Remote.Key != jr.Key {
		t.Errorf("remote hop = %+v, want the executing node's lifecycle for key %s", jr.Trace.Remote, jr.Key)
	}
	if jr.Trace.TotalMS < jr.Trace.Remote.TotalMS {
		t.Errorf("outer hop total %.3fms < remote total %.3fms", jr.Trace.TotalMS, jr.Trace.Remote.TotalMS)
	}
}

// TestCoordinatorAllPeersDownFallsBackLocal drains the whole ring: with
// every peer unreachable the coordinator must degrade to a correct single
// node, absorbing the sweep into its local farm.
func TestCoordinatorAllPeersDownFallsBackLocal(t *testing.T) {
	reqs := sweepRequests()
	single, _ := newTestServer(t)
	want := runSweepNDJSON(t, single.URL, reqs)

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	coordFarm := farm.New(2)
	coord := httptest.NewServer(NewServer(coordFarm, WithPeers([]Peer{{Name: "dead", URL: deadURL}})))
	t.Cleanup(func() {
		coord.Close()
		coordFarm.Close()
	})

	got := runSweepNDJSON(t, coord.URL, reqs)
	for i := range want {
		if got[i].Error != "" {
			t.Fatalf("row %d failed with all peers down: %s", i, got[i].Error)
		}
		if got[i].Key != want[i].Key || got[i].OutputSum != want[i].OutputSum {
			t.Errorf("row %d diverged in local-fallback mode", i)
		}
		if got[i].Peer != "" {
			t.Errorf("row %d labelled peer %q though the local farm ran it", i, got[i].Peer)
		}
	}
	resp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "bifrost_coordinator_local_fallbacks_total") {
		t.Error("local-fallback counter missing from /metrics")
	}
}
