package serve

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
)

// replNode is one complete bifrost-serve worker with a replicated result
// tier: disk store, replica members over the peer wire protocol, and a farm
// serving /batch for a coordinator.
type replNode struct {
	ts     *httptest.Server
	fm     *farm.Farm
	repl   *farm.ReplicatedStore
	name   string
	killed bool
}

// kill hard-closes the node's HTTP server: in-flight connections are torn
// down and new ones refused — the closest an in-process test gets to
// kill -9. The node's farm is left un-drained, like a dead process.
func (n *replNode) kill() {
	if n.killed {
		return
	}
	n.killed = true
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// newReplCluster stands up n workers whose replicated stores are cross-wired
// over real HTTP peer stores, each remote member behind its own breaker.
// Listeners are pre-bound so every node knows its peers' ring names (host:port,
// exactly how bifrost-serve derives them) before any store is built.
func newReplCluster(t *testing.T, n, replicas int) []*replNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	names := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		names[i] = l.Addr().String()
	}
	nodes := make([]*replNode, n)
	for i := range nodes {
		var members []farm.ReplicaMember
		for j := range nodes {
			if j == i {
				continue
			}
			members = append(members, farm.ReplicaMember{
				Name:  names[j],
				Store: farm.NewRetryStore(farm.NewPeerStore("http://"+names[j]), farmtest.TestRetryPolicy()),
			})
		}
		ds, err := farm.NewDiskStore(filepath.Join(t.TempDir(), "cache"), 0)
		if err != nil {
			t.Fatal(err)
		}
		repl := farm.NewReplicatedStore(ds, names[i], replicas, members,
			farm.WithReplicaWatchInterval(20*time.Millisecond), farm.WithRebalanceRate(1<<20))
		fm := farm.New(2, farm.WithDiskStore(repl))
		ts := httptest.NewUnstartedServer(NewServer(fm, WithReplicatedStore(repl)))
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		nodes[i] = &replNode{ts: ts, fm: fm, repl: repl, name: names[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.kill()
			nd.fm.Close()
		}
	})
	return nodes
}

// TestChaosThreeNodeKillServedFromReplicas is the durable tier's
// acceptance: a three-node replicated cluster warms a sweep, loses one node
// kill -9-style mid-sweep, and the re-run still returns zero error rows and
// byte-identical output — every row served from a surviving replica, not
// recomputed.
func TestChaosThreeNodeKillServedFromReplicas(t *testing.T) {
	reqs := sweepRequests()
	single, _ := newTestServer(t)
	want := runSweepNDJSON(t, single.URL, reqs)

	nodes := newReplCluster(t, 3, 2)
	coordFarm := farm.New(2)
	peers := make([]Peer, len(nodes))
	for i, nd := range nodes {
		peers[i] = Peer{Name: nd.name, URL: nd.ts.URL}
	}
	coord := httptest.NewServer(NewServer(coordFarm,
		WithPeers(peers), WithPeerStatsTTL(10*time.Millisecond)))
	t.Cleanup(func() {
		coord.Close()
		coordFarm.Close()
	})

	// Warm pass: every row computed once somewhere, replicated to R=2 owners.
	warm := runSweepNDJSON(t, coord.URL, reqs)
	assertSweepRows(t, "three-node warm sweep", want, warm)
	victim := nodes[2]
	served := map[string]int{}
	for _, row := range warm {
		served[row.Peer]++
	}
	if len(served) != 3 {
		t.Fatalf("warm sweep used peers %v, want all three", served)
	}
	executed := func() int64 {
		var total int64
		for _, nd := range nodes {
			if !nd.killed {
				total += nd.fm.Stats().Completed
			}
		}
		return total
	}
	survivorsBefore := nodes[0].fm.Stats().Completed + nodes[1].fm.Stats().Completed

	// Chaos pass: stream the same sweep again and kill a node after the
	// second row is on the wire.
	resp, err := http.Post(coord.URL+"/batch", "application/x-ndjson", encodeNDJSON(t, reqs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos sweep: HTTP %d", resp.StatusCode)
	}
	var got []JobResponse
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			var jr JobResponse
			if uerr := json.Unmarshal(line, &jr); uerr != nil {
				t.Fatalf("row %d: %v", len(got), uerr)
			}
			got = append(got, jr)
			if len(got) == 2 {
				victim.kill()
			}
		}
		if err != nil {
			break
		}
	}
	assertSweepRows(t, "post-kill sweep", want, got)

	// Zero recomputation: the survivors answered the dead node's shard from
	// their replicas — no simulator ran.
	if delta := executed() - survivorsBefore; delta != 0 {
		t.Fatalf("sweep after node loss recomputed %d rows, want 0", delta)
	}
	// Every row comes from a cache tier; rows the dead node answered before
	// the kill keep its label, but nothing fails over to it afterwards.
	for i, row := range got {
		if !row.Cached {
			t.Errorf("post-kill row %d not served from a cache tier", i)
		}
	}

	// With R=2 over two survivors plus self, replication is intact: the
	// survivors must keep advertising ready.
	for _, nd := range nodes[:2] {
		rz, err := http.Get(nd.ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		rz.Body.Close()
		if rz.StatusCode != http.StatusOK {
			t.Errorf("survivor %s not ready after peer loss: HTTP %d", nd.name, rz.StatusCode)
		}
	}
}

// TestChaosSweepResumeJournalWithoutCache pins the resume edge case where
// the journal survived a crash but the cache did not (or eviction outran
// the sweep): a journaled key absent from every cache tier must be
// recomputed through normal dispatch — never an error row, never a stall.
func TestChaosSweepResumeJournalWithoutCache(t *testing.T) {
	reqs := sweepRequests()
	single, _ := newTestServer(t)
	want := runSweepNDJSON(t, single.URL, reqs)

	root := t.TempDir()
	cacheDir, sweepDir := filepath.Join(root, "cache"), filepath.Join(root, "sweeps")
	boot := func() (*httptest.Server, *Server, *farm.Farm) {
		ds, err := farm.NewDiskStore(cacheDir, 0)
		if err != nil {
			t.Fatal(err)
		}
		fm := farm.New(2, farm.WithDiskStore(ds))
		srv := NewServer(fm, WithSweepDir(sweepDir))
		return httptest.NewServer(srv), srv, fm
	}
	ts, _, fm := boot()
	first := postSweepNDJSON(t, ts.URL, "sweep_id=gap", reqs)
	assertSweepRows(t, "initial journaled sweep", want, first)
	ts.Close()
	fm.Close()

	// The journal survived; the cache did not.
	if err := os.RemoveAll(cacheDir); err != nil {
		t.Fatal(err)
	}

	ts2, srv2, fm2 := boot()
	t.Cleanup(func() { ts2.Close(); fm2.Close() })
	got := postSweepNDJSON(t, ts2.URL, "sweep_id=gap&resume=true", reqs)
	assertSweepRows(t, "resume without cache", want, got)
	if n := fm2.Stats().Completed; n != int64(len(reqs)) {
		t.Fatalf("resume without cache executed %d simulations, want %d (full recompute)", n, len(reqs))
	}
	if n := srv2.sweeps.replayed.Load(); n != 0 {
		t.Fatalf("resume without cache claimed %d journal replays, want 0", n)
	}
}
