package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
)

// TestShutdownDrainLifecycle walks the whole drain contract on one node:
// ready → POST /drain → liveness and readiness flip to 503, new work is
// refused with the machine-readable code, /stats and /metrics advertise
// the state, main's wait channel fires, and a second drain is a no-op.
func TestShutdownDrainLifecycle(t *testing.T) {
	fm := farm.New(2)
	srv := NewServer(fm)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); fm.Close() })

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp, readAll(t, resp)
	}

	// Healthy node: live, ready, nothing draining.
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}
	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("readyz before drain: %d %s", resp.StatusCode, body)
	}
	select {
	case <-srv.DrainRequested():
		t.Fatal("DrainRequested fired before any drain")
	default:
	}

	// Flip the node.
	dresp, err := http.Post(ts.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dr DrainResponse
	if err := json.NewDecoder(dresp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || !dr.Draining {
		t.Fatalf("POST /drain: %d %+v", dresp.StatusCode, dr)
	}
	select {
	case <-srv.DrainRequested():
	default:
		t.Fatal("DrainRequested did not fire after POST /drain")
	}

	// Liveness and readiness both go false, with the reason visible.
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("healthz while draining: %d %q", resp.StatusCode, body)
	}
	resp, _ = get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}
	var ready ReadyResponse
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if ready.Ready || len(ready.Reasons) != 1 || ready.Reasons[0] != "draining" {
		t.Fatalf("readyz payload while draining: %+v", ready)
	}

	// New work is refused with the machine-readable, retryable code.
	for _, path := range []string{"/simulate", "/batch"} {
		wresp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(dryBody(1, "")))
		if err != nil {
			t.Fatal(err)
		}
		var jr JobResponse
		if err := json.NewDecoder(wresp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		wresp.Body.Close()
		if wresp.StatusCode != http.StatusServiceUnavailable || jr.Code != "draining" || !jr.Retryable {
			t.Fatalf("POST %s while draining: %d %+v", path, wresp.StatusCode, jr)
		}
		if wresp.Header.Get("Retry-After") == "" {
			t.Errorf("POST %s while draining: no Retry-After header", path)
		}
	}

	// Observability: /stats and /metrics advertise the drain; read paths
	// stay up so coordinators and operators can watch it finish.
	resp, _ = get("/stats")
	var st StatsResponse
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !st.Draining {
		t.Fatal("/stats does not advertise draining")
	}
	if _, body := get("/metrics"); !strings.Contains(body, "bifrost_draining 1") || !strings.Contains(body, "bifrost_ready 0") {
		t.Fatal("/metrics missing bifrost_draining 1 / bifrost_ready 0")
	}

	// Draining again is harmless.
	d2, err := http.Post(ts.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	d2.Body.Close()
	if d2.StatusCode != http.StatusOK {
		t.Fatalf("second POST /drain: %d", d2.StatusCode)
	}
}

// TestShutdownReadyzDegradedDisk proves readiness is more than the drain
// bit: a quarantined disk tier flips /readyz to 503 with the
// "disk_degraded" reason while liveness stays green.
func TestShutdownReadyzDegradedDisk(t *testing.T) {
	ds, err := farm.NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := farmtest.NewFaultStore(ds, farmtest.FaultPolicy{ErrRate: 1, Seed: 9})
	fm := farm.New(2, farm.WithDiskStore(farm.NewRetryStore(fs, farmtest.TestRetryPolicy())))
	ts := httptest.NewServer(NewServer(fm))
	t.Cleanup(func() { ts.Close(); fm.Close() })

	// Trip the disk breaker (TripAfter 3) — jobs still succeed.
	for i := 0; i < 6; i++ {
		resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader(dryBody(300+i, "")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d during disk outage: %d", i, resp.StatusCode)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with a degraded disk: %d, want 200 (still alive)", hresp.StatusCode)
	}

	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready ReadyResponse
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("readyz with a degraded disk: %d %+v", rresp.StatusCode, ready)
	}
	found := false
	for _, r := range ready.Reasons {
		if r == "disk_degraded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("readyz reasons %v missing disk_degraded", ready.Reasons)
	}
}
