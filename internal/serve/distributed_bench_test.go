package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/farm"
)

// quietLogger keeps the per-request log lines out of benchmark output.
func quietLogger() ServerOption {
	return WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
}

// BenchmarkDistributedSweep measures the PR 8 tentpole: jobs/sec of a
// mapping sweep through the HTTP serve layer, single node vs a coordinator
// sharding the same sweep across two in-process peer nodes.
//
//	single   — one node with NumCPU/2 farm workers, driven over NDJSON
//	two_node — a coordinator consistent-hashing the sweep across two peer
//	           nodes of NumCPU/2 workers each (2x the simulation capacity,
//	           plus one wire hop per job)
//
// Every job is a distinct seed (result-cache misses by construction), so
// the benchmark measures real simulation throughput plus dispatch
// overhead. Responses are byte-identical between variants — the
// coordinator tests pin that — so jobs/s is the only thing that moves;
// near-linear scaling (two_node ≈ 2x single) is the acceptance target,
// with the gap bounding the coordinator's per-job overhead.
func BenchmarkDistributedSweep(b *testing.B) {
	workers := runtime.NumCPU() / 2
	if workers < 1 {
		workers = 1
	}
	mappings := [][]int{}
	for tk := 1; tk <= 14; tk++ {
		mappings = append(mappings, []int{3, 3, 1, tk, 1, 1, 1, 1})
	}
	for _, tk := range []int{1, 2} {
		mappings = append(mappings, []int{3, 3, 1, tk, 1, 1, 1, 2})
	}
	sweep := func(iter int) *bytes.Buffer {
		var body bytes.Buffer
		enc := json.NewEncoder(&body)
		for j, m := range mappings {
			enc.Encode(JobRequest{
				Arch: ArchSpec{Controller: "maeri"},
				Op:   "conv2d", Conv: &ConvSpec{C: 64, H: 6, K: 64, R: 3, Pad: 1},
				Mapping: m,
				Seed:    int64(1000*iter + j), // distinct: no result-cache hits
			})
		}
		return &body
	}
	drive := func(b *testing.B, url string) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(url+"/batch", "application/x-ndjson", sweep(i))
			if err != nil {
				b.Fatal(err)
			}
			dec := json.NewDecoder(resp.Body)
			rows := 0
			for {
				var jr JobResponse
				if err := dec.Decode(&jr); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
				if jr.Error != "" {
					b.Fatalf("row %d: %s (code %s)", rows, jr.Error, jr.Code)
				}
				rows++
			}
			resp.Body.Close()
			if rows != len(mappings) {
				b.Fatalf("got %d rows, want %d", rows, len(mappings))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*len(mappings))/b.Elapsed().Seconds(), "jobs/s")
	}

	b.Run("single", func(b *testing.B) {
		fm := farm.New(workers)
		defer fm.Close()
		ts := httptest.NewServer(NewServer(fm, quietLogger()))
		defer ts.Close()
		drive(b, ts.URL)
	})

	b.Run(fmt.Sprintf("two_node_%dw_each", workers), func(b *testing.B) {
		var peers []Peer
		for i := 0; i < 2; i++ {
			fm := farm.New(workers)
			defer fm.Close()
			ts := httptest.NewServer(NewServer(fm, quietLogger()))
			defer ts.Close()
			peers = append(peers, Peer{Name: fmt.Sprintf("w%d", i), URL: ts.URL})
		}
		coordFarm := farm.New(1) // fallback only; peers do the simulating
		defer coordFarm.Close()
		coord := httptest.NewServer(NewServer(coordFarm, WithPeers(peers), quietLogger()))
		defer coord.Close()
		drive(b, coord.URL)
	})
}
