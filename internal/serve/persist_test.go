package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
)

// persistBatch is a small sweep covering both operators, all three
// architectures and a duplicate (which must coalesce).
const persistBatch = `{"jobs": [
	{"arch": {"controller": "maeri", "ms_size": 128}, "op": "conv2d",
	 "conv": {"c": 2, "h": 10, "k": 4, "r": 3}, "mapping": [3, 3, 1, 2, 1, 1, 1, 1], "seed": 1},
	{"arch": {"controller": "sigma", "sparsity": 50}, "op": "conv2d",
	 "conv": {"c": 2, "h": 8, "k": 4, "r": 3}, "seed": 2},
	{"arch": {"controller": "tpu"}, "op": "dense", "dense": {"k": 32, "n": 16}, "seed": 3},
	{"arch": {"controller": "maeri"}, "op": "dense", "dense": {"k": 16, "n": 8}, "dry_run": true},
	{"arch": {"controller": "maeri", "ms_size": 128}, "op": "conv2d",
	 "conv": {"c": 2, "h": 10, "k": 4, "r": 3}, "mapping": [3, 3, 1, 2, 1, 1, 1, 1], "seed": 1}
]}`

const persistBatchUnique = 4 // distinct jobs in persistBatch

func postBatch(t *testing.T, url, body string) BatchResponse {
	t.Helper()
	resp, err := http.Post(url+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	for i, r := range batch.Results {
		if r.Error != "" {
			t.Fatalf("result %d: %s", i, r.Error)
		}
	}
	return batch
}

// diffResponses compares everything deterministic about two responses; the
// Cached flag and timing are transport state.
func diffResponses(t *testing.T, context string, a, b []JobResponse) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", context, len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Errorf("%s: result %d keys differ: %s vs %s", context, i, a[i].Key, b[i].Key)
		}
		if *a[i].Stats != *b[i].Stats {
			t.Errorf("%s: result %d stats differ:\n  %+v\n  %+v", context, i, *a[i].Stats, *b[i].Stats)
		}
		if fmt.Sprint(a[i].OutputShape) != fmt.Sprint(b[i].OutputShape) {
			t.Errorf("%s: result %d shapes differ: %v vs %v", context, i, a[i].OutputShape, b[i].OutputShape)
		}
		if a[i].OutputSum != b[i].OutputSum {
			t.Errorf("%s: result %d output sums differ: %v vs %v", context, i, a[i].OutputSum, b[i].OutputSum)
		}
	}
}

// TestColdProcessServesWarmDiskCache is the PR's acceptance scenario: a
// server whose farm points at a warm -cache-dir answers a previously
// computed /batch request with zero simulator executions — every submission
// a disk hit, zero misses — and byte-identical responses.
func TestColdProcessServesWarmDiskCache(t *testing.T) {
	dir := t.TempDir()
	open := func() (*httptest.Server, *farm.Farm) {
		ds, err := farm.NewDiskStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		fm := farm.New(2, farm.WithDiskStore(ds))
		return httptest.NewServer(NewServer(fm)), fm
	}

	// "Process" 1: compute and persist.
	ts1, fm1 := open()
	warm := postBatch(t, ts1.URL, persistBatch)
	ts1.Close()
	fm1.Close()
	if warm.Stats.Completed != persistBatchUnique {
		t.Fatalf("warm process completed %d simulations, want %d", warm.Stats.Completed, persistBatchUnique)
	}

	// "Process" 2: a cold farm on the warm directory.
	ts2, fm2 := open()
	defer ts2.Close()
	defer fm2.Close()
	cold := postBatch(t, ts2.URL, persistBatch)
	diffResponses(t, "cold replay vs warm", warm.Results, cold.Results)
	for i, r := range cold.Results {
		if !r.Cached {
			t.Errorf("cold result %d not served from cache", i)
		}
	}
	st := cold.Stats
	if st.Misses != 0 || st.Completed != 0 {
		t.Fatalf("cold process ran simulations: %+v", st)
	}
	if st.DiskHits != persistBatchUnique {
		t.Fatalf("disk hits = %d, want %d: %+v", st.DiskHits, persistBatchUnique, st)
	}
	if st.Disk == nil || st.Disk.Hits != persistBatchUnique || st.Disk.Bytes == 0 {
		t.Fatalf("per-tier disk stats missing or wrong: %+v", st.Disk)
	}

	// The responses must also match a fresh farmless reference, via the
	// shared differential harness.
	var reqs BatchRequest
	if err := json.Unmarshal([]byte(persistBatch), &reqs); err != nil {
		t.Fatal(err)
	}
	jobs := make([]farm.Job, len(reqs.Jobs))
	for i, r := range reqs.Jobs {
		job, err := r.Job()
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	fresh := farmtest.RunFresh(t, jobs)
	for i, res := range fresh {
		if res.Stats != *cold.Results[i].Stats {
			t.Errorf("cold result %d diverged from the fresh reference:\n  fresh: %+v\n  cold:  %+v",
				i, res.Stats, *cold.Results[i].Stats)
		}
		if res.Out != nil {
			var sum float64
			for _, v := range res.Out.Data() {
				sum += float64(v)
			}
			if sum != cold.Results[i].OutputSum {
				t.Errorf("cold result %d output sum %v, fresh reference %v", i, cold.Results[i].OutputSum, sum)
			}
		}
	}

	// /stats must expose the per-tier counters over HTTP.
	resp, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var httpStats farm.Stats
	if err := json.NewDecoder(resp.Body).Decode(&httpStats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if httpStats.Disk == nil || httpStats.Disk.Hits != persistBatchUnique {
		t.Fatalf("/stats did not report the disk tier: %+v", httpStats)
	}
}

// TestServeBoundedCacheStillCorrect runs the same batch twice against a
// server whose memory tier holds a single entry: most of the second pass is
// recomputed (or disk-served) and responses must stay byte-identical.
func TestServeBoundedCacheStillCorrect(t *testing.T) {
	ds, err := farm.NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fm := farm.New(2, farm.WithMaxEntries(1), farm.WithDiskStore(ds))
	ts := httptest.NewServer(NewServer(fm))
	defer ts.Close()
	defer fm.Close()

	first := postBatch(t, ts.URL, persistBatch)
	second := postBatch(t, ts.URL, persistBatch)
	diffResponses(t, "bounded second pass", first.Results, second.Results)
	st := second.Stats
	if st.Memory.Evictions == 0 {
		t.Fatalf("one-entry memory tier never evicted: %+v", st)
	}
	if st.CacheEntries > 1 {
		t.Fatalf("memory tier over bound: %+v", st)
	}
	// The disk tier backs up what memory evicts: the second pass must not
	// have re-simulated anything.
	if st.Completed != persistBatchUnique {
		t.Fatalf("evicted entries were re-simulated instead of disk-served: %+v", st)
	}
}

// TestExecWorkersEndpoint proves the ROADMAP follow-up: responses computed
// with parallel intra-job arithmetic are byte-identical to serial ones —
// across the per-request field, the server-wide default, and the shared
// cache entry.
func TestExecWorkersEndpoint(t *testing.T) {
	// A SIGMA conv exercises the GEMM-lowered path ExecWorkers controls.
	req := func(workers string) string {
		return `{"arch": {"controller": "sigma"}, "op": "conv2d",
			"conv": {"c": 4, "h": 12, "k": 8, "r": 3}, "seed": 9` + workers + `}`
	}

	// Independent farms so each side computes fresh.
	serialFarm := farm.New(1)
	defer serialFarm.Close()
	serialSrv := httptest.NewServer(NewServer(serialFarm))
	defer serialSrv.Close()
	parallelFarm := farm.New(1)
	defer parallelFarm.Close()
	parallelSrv := httptest.NewServer(NewServer(parallelFarm, WithExecWorkers(4)))
	defer parallelSrv.Close()

	post := func(url, body string) JobResponse {
		t.Helper()
		resp, err := http.Post(url+"/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		if jr.Error != "" {
			t.Fatal(jr.Error)
		}
		return jr
	}

	serial := post(serialSrv.URL, req(""))
	viaDefault := post(parallelSrv.URL, req("")) // server default: 4 workers
	viaField := post(serialSrv.URL, req(`, "exec_workers": -1`))

	diffResponses(t, "server-default parallel vs serial", []JobResponse{serial}, []JobResponse{viaDefault})
	if viaDefault.Cached {
		t.Fatal("parallel server computed nothing (unexpected cache hit)")
	}
	// exec_workers is excluded from the cache key: the GOMAXPROCS request
	// on the serial server must be served from the entry the serial request
	// wrote, byte-identically.
	if !viaField.Cached {
		t.Fatal("exec_workers split the cache key")
	}
	diffResponses(t, "per-request parallel vs serial", []JobResponse{serial}, []JobResponse{viaField})
}
