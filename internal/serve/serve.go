// Package serve implements the bifrost-serve batch simulation service: an
// HTTP + JSON-lines front end over the simulation farm. It follows the
// proven cosimulation-service shape — simulators as pluggable services
// behind a line-oriented JSON protocol — so heavy sweeps can be driven
// remotely, batched, deduplicated and cached:
//
//	POST /simulate  one job  (JSON object  → JSON object)
//	POST /batch     a sweep  (JSON {"jobs": [...]} → {"results": [...]},
//	                or NDJSON: one job per line → one result per line)
//	GET  /stats     farm scheduler + cache metrics
//	GET  /healthz   liveness probe
//
// Operand tensors are generated server-side from the request seed, so a job
// is a small, reproducible description — the same request always hits the
// same content-addressed cache entry, including entries persisted to disk
// by a previous process (bifrost-serve -cache-dir): a restarted server
// answers previously computed requests byte-identically with zero
// simulator executions.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/farm"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// ArchSpec selects and overrides a hardware configuration. Controller
// accepts the short names (maeri, sigma, tpu) or the full STONNE
// controller_type strings; zero-valued fields keep the paper's defaults.
type ArchSpec struct {
	Controller string `json:"controller"`
	MSSize     int    `json:"ms_size,omitempty"`
	MSRows     int    `json:"ms_rows,omitempty"`
	MSCols     int    `json:"ms_cols,omitempty"`
	DNBw       int    `json:"dn_bw,omitempty"`
	RNBw       int    `json:"rn_bw,omitempty"`
	Sparsity   int    `json:"sparsity,omitempty"`
}

// Config resolves the spec into a validated HWConfig.
func (a ArchSpec) Config() (config.HWConfig, error) {
	var ct config.ControllerType
	switch strings.ToLower(a.Controller) {
	case "", "maeri", strings.ToLower(string(config.MAERIDenseWorkload)):
		ct = config.MAERIDenseWorkload
	case "sigma", strings.ToLower(string(config.SIGMASparseGEMM)):
		ct = config.SIGMASparseGEMM
	case "tpu", strings.ToLower(string(config.TPUOSDense)):
		ct = config.TPUOSDense
	default:
		return config.HWConfig{}, fmt.Errorf("unknown controller %q (want maeri, sigma or tpu)", a.Controller)
	}
	cfg := config.Default(ct)
	if a.MSSize > 0 {
		cfg.MSSize = a.MSSize
	}
	if a.MSRows > 0 {
		cfg.MSRows = a.MSRows
	}
	if a.MSCols > 0 {
		cfg.MSCols = a.MSCols
	}
	if a.DNBw > 0 {
		cfg.DNBandwidth = a.DNBw
	}
	if a.RNBw > 0 {
		cfg.RNBandwidth = a.RNBw
	}
	if a.Sparsity > 0 {
		cfg.SparsityRatio = a.Sparsity
	}
	cfg = cfg.Normalize()
	return cfg, cfg.Validate()
}

// ConvSpec is the convolution geometry of a request (Table II taxonomy).
type ConvSpec struct {
	N      int `json:"n,omitempty"`
	C      int `json:"c"`
	H      int `json:"h"`
	W      int `json:"w"`
	K      int `json:"k"`
	R      int `json:"r"`
	S      int `json:"s"`
	G      int `json:"g,omitempty"`
	Stride int `json:"stride,omitempty"`
	Pad    int `json:"pad,omitempty"`
}

// DenseSpec is the dense geometry of a request: M batches, K input neurons,
// N output neurons.
type DenseSpec struct {
	M int `json:"m,omitempty"`
	K int `json:"k"`
	N int `json:"n"`
}

// JobRequest describes one simulation. Operands are generated from Seed.
type JobRequest struct {
	Arch ArchSpec `json:"arch"`
	// Op is "conv2d" or "dense".
	Op    string     `json:"op"`
	Conv  *ConvSpec  `json:"conv,omitempty"`
	Dense *DenseSpec `json:"dense,omitempty"`
	// Mapping is the MAERI conv tile tuple [T_R,T_S,T_C,T_K,T_G,T_N,T_X,T_Y];
	// empty selects the basic mapping.
	Mapping []int `json:"mapping,omitempty"`
	// FCMapping is the dense tile tuple [T_S,T_K,T_N]; empty selects basic.
	FCMapping []int `json:"fc_mapping,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	// DryRun runs the counters-only MAERI measurement (no operands).
	DryRun bool `json:"dry_run,omitempty"`
	// ExecWorkers is the intra-job worker count for the exact arithmetic of
	// GEMM-lowered convolutions (SIGMA / TPU): 0 inherits the server
	// default, 1 forces the serial kernel, > 1 parallelises column blocks,
	// < 0 selects GOMAXPROCS. Responses are byte-identical for every value
	// (the accumulation order never changes), so it does not participate in
	// the cache key: serial and parallel requests share entries.
	ExecWorkers int `json:"exec_workers,omitempty"`
}

// Job compiles the request into a farm job.
func (r JobRequest) Job() (farm.Job, error) {
	cfg, err := r.Arch.Config()
	if err != nil {
		return farm.Job{}, err
	}
	j := farm.Job{HW: cfg, Seed: r.Seed, DryRun: r.DryRun, ExecWorkers: r.ExecWorkers}
	switch r.Op {
	case "conv2d":
		if r.Conv == nil {
			return farm.Job{}, fmt.Errorf("conv2d job needs a conv geometry")
		}
		c := *r.Conv
		if c.N == 0 {
			c.N = 1
		}
		if c.G == 0 {
			c.G = 1
		}
		if c.W == 0 {
			c.W = c.H // square input shorthand
		}
		if c.S == 0 {
			c.S = c.R // square kernel shorthand
		}
		d := tensor.ConvDims{N: c.N, C: c.C, H: c.H, W: c.W, K: c.K, R: c.R, S: c.S,
			G: c.G, StrideH: c.Stride, StrideW: c.Stride, PadH: c.Pad, PadW: c.Pad}
		if err := d.Resolve(); err != nil {
			return farm.Job{}, err
		}
		j.Kind = farm.Conv2D
		j.Dims = d
		j.ConvMapping = mapping.Basic()
		if len(r.Mapping) > 0 {
			if len(r.Mapping) != 8 {
				return farm.Job{}, fmt.Errorf("conv mapping needs 8 tiles, got %d", len(r.Mapping))
			}
			m := r.Mapping
			j.ConvMapping = mapping.ConvMapping{TR: m[0], TS: m[1], TC: m[2], TK: m[3],
				TG: m[4], TN: m[5], TX: m[6], TY: m[7]}
		}
		if !r.DryRun {
			j.Input = tensor.RandomUniform(r.Seed, 1, d.N, d.C, d.H, d.W)
			kernel := tensor.RandomUniform(r.Seed+100, 1, d.K, d.C/d.G, d.R, d.S)
			if cfg.SparsityRatio > 0 {
				tensor.Prune(kernel, float64(cfg.SparsityRatio)/100)
			}
			j.Weights = kernel
		}
	case "dense":
		if r.Dense == nil {
			return farm.Job{}, fmt.Errorf("dense job needs a dense geometry")
		}
		dn := *r.Dense
		if dn.M == 0 {
			dn.M = 1
		}
		if dn.K <= 0 || dn.N <= 0 {
			return farm.Job{}, fmt.Errorf("dense job needs positive k and n, got %d and %d", dn.K, dn.N)
		}
		j.Kind = farm.Dense
		j.M, j.K, j.N = dn.M, dn.K, dn.N
		j.FCMapping = mapping.BasicFC()
		if len(r.FCMapping) > 0 {
			if len(r.FCMapping) != 3 {
				return farm.Job{}, fmt.Errorf("fc mapping needs 3 tiles, got %d", len(r.FCMapping))
			}
			j.FCMapping = mapping.FCMapping{TS: r.FCMapping[0], TK: r.FCMapping[1], TN: r.FCMapping[2]}
		}
		if !r.DryRun {
			j.Input = tensor.RandomUniform(r.Seed, 1, dn.M, dn.K)
			weights := tensor.RandomUniform(r.Seed+100, 1, dn.N, dn.K)
			if cfg.SparsityRatio > 0 {
				tensor.Prune(weights, float64(cfg.SparsityRatio)/100)
			}
			j.Weights = weights
		}
	default:
		return farm.Job{}, fmt.Errorf("unknown op %q (want conv2d or dense)", r.Op)
	}
	return j, nil
}

// JobResponse is what one simulation reports back.
type JobResponse struct {
	// Key is the job's content-addressed cache key.
	Key string `json:"key,omitempty"`
	// Cached reports whether the result came from the farm's cache.
	Cached bool `json:"cached"`
	// Stats are the simulation counters (omitted on error).
	Stats *stats.Stats `json:"stats,omitempty"`
	// OutputShape and OutputSum summarise the output tensor so sweeps can
	// check reproducibility without shipping whole tensors.
	OutputShape []int   `json:"output_shape,omitempty"`
	OutputSum   float64 `json:"output_sum,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Error       string  `json:"error,omitempty"`
}

// Server routes simulation requests into a farm.
type Server struct {
	farm        *farm.Farm
	mux         *http.ServeMux
	execWorkers int
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithExecWorkers sets the default JobRequest.ExecWorkers applied to
// requests that leave the field unset (0). The server default keeps 0
// meaning the serial kernel, matching the farm's own default.
func WithExecWorkers(n int) ServerOption { return func(s *Server) { s.execWorkers = n } }

// NewServer returns an http.Handler serving the bifrost-serve API on the
// given farm.
func NewServer(f *farm.Farm, opts ...ServerOption) *Server {
	s := &Server{farm: f, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST /simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// run executes one request through the farm and shapes the response.
func (s *Server) run(req JobRequest) JobResponse {
	start := time.Now()
	if req.ExecWorkers == 0 {
		req.ExecWorkers = s.execWorkers
	}
	job, err := req.Job()
	if err != nil {
		return JobResponse{Error: err.Error(), ElapsedMS: msSince(start)}
	}
	res, err := s.farm.Do(job)
	if err != nil {
		key, _ := job.Key() // best effort: name the job even on failure
		return JobResponse{Key: key, Error: err.Error(), ElapsedMS: msSince(start)}
	}
	resp := JobResponse{Key: res.Key, Cached: res.Hit, Stats: &res.Stats, ElapsedMS: msSince(start)}
	if res.Out != nil {
		resp.OutputShape = res.Out.Shape()
		var sum float64
		for _, v := range res.Out.Data() {
			sum += float64(v)
		}
		resp.OutputSum = sum
	}
	return resp
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

// encBufPool recycles the JSON encode buffers: every response (and every
// NDJSON result line) is encoded into a pooled buffer and written in one
// call, so the steady-state encode path allocates no per-response buffers.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, JobResponse{Error: "decoding job: " + err.Error()})
		return
	}
	resp := s.run(req)
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// BatchRequest is the JSON form of a sweep.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// BatchResponse carries sweep results in submission order plus a stats
// snapshot taken after the sweep.
type BatchResponse struct {
	Results []JobResponse `json:"results"`
	Stats   farm.Stats    `json:"stats"`
}

// handleBatch accepts either a JSON {"jobs": [...]} body or NDJSON (one job
// per line, Content-Type application/x-ndjson) and executes the whole sweep
// concurrently through the farm. NDJSON requests stream NDJSON responses,
// one line per job, in order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ctype, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	ndjson := ctype == "application/x-ndjson" || ctype == "application/jsonlines"

	var reqs []JobRequest
	if ndjson {
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			var req JobRequest
			if err := json.Unmarshal([]byte(text), &req); err != nil {
				writeJSON(w, http.StatusBadRequest, JobResponse{Error: fmt.Sprintf("line %d: %v", line, err)})
				return
			}
			reqs = append(reqs, req)
		}
		if err := sc.Err(); err != nil {
			writeJSON(w, http.StatusBadRequest, JobResponse{Error: err.Error()})
			return
		}
	} else {
		var batch BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			writeJSON(w, http.StatusBadRequest, JobResponse{Error: "decoding batch: " + err.Error()})
			return
		}
		reqs = batch.Jobs
	}

	if ndjson {
		s.streamBatch(w, reqs)
		return
	}

	// Fan the sweep out, but bound the in-flight requests: the farm caps
	// simulation concurrency, while this semaphore caps how many jobs have
	// their operand tensors materialised at once — without it a huge sweep
	// would allocate every operand up front regardless of worker count.
	results := make([]JobResponse, len(reqs))
	sem := make(chan struct{}, 2*s.farm.Workers())
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, req JobRequest) {
			defer func() { <-sem; wg.Done() }()
			results[i] = s.run(req)
		}(i, req)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results, Stats: s.farm.Stats()})
}

// streamBatch executes an NDJSON sweep with the same bounded fan-out as the
// JSON path, but streams the response: each result line is encoded through
// a pooled buffer, written as soon as it and all its predecessors are done
// (lines stay in submission order — the NDJSON contract), and flushed
// per-result, so a slow sweep delivers results as they complete instead of
// buffering the whole batch.
func (s *Server) streamBatch(w http.ResponseWriter, reqs []JobRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)

	results := make([]JobResponse, len(reqs))
	done := make(chan int, len(reqs))
	sem := make(chan struct{}, 2*s.farm.Workers())
	go func() {
		for i, req := range reqs {
			sem <- struct{}{}
			go func(i int, req JobRequest) {
				defer func() { <-sem }()
				results[i] = s.run(req)
				done <- i
			}(i, req)
		}
	}()

	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	ready := make([]bool, len(reqs))
	written := 0
	for range reqs {
		ready[<-done] = true
		flushed := false
		for written < len(results) && ready[written] {
			buf.Reset()
			if err := json.NewEncoder(buf).Encode(results[written]); err != nil {
				// The response is already streaming; all we can do is emit
				// an error line in place of the result.
				fmt.Fprintf(buf, "{\"error\":%q}\n", err.Error())
			}
			w.Write(buf.Bytes())
			written++
			flushed = true
		}
		if flushed && fl != nil {
			fl.Flush()
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.farm.Stats())
}
