// Package serve implements the bifrost-serve batch simulation service: an
// HTTP + JSON-lines front end over the simulation farm. It follows the
// proven cosimulation-service shape — simulators as pluggable services
// behind a line-oriented JSON protocol — so heavy sweeps can be driven
// remotely, batched, deduplicated and cached:
//
//	POST /simulate      one job  (JSON object  → JSON object)
//	POST /batch         a sweep  (JSON {"jobs": [...]} → {"results": [...]},
//	                    or NDJSON: one job per line → one result per line);
//	                    ?sweep_id=<id> makes the sweep resumable: it keeps
//	                    computing after a client disconnect, journals every
//	                    completed row, and &resume=true replays journaled
//	                    rows from cache and streams only the remainder
//	GET  /stats         farm scheduler + cache metrics + telemetry rollups
//	GET  /metrics       Prometheus text exposition of every metric family
//	GET  /version       build, toolchain, SIMD level and configured bounds
//	GET  /debug/traces  bounded ring of recent per-job lifecycle traces
//	GET  /healthz       liveness probe (503 once draining)
//	GET  /readyz        readiness probe (draining, disk degraded, queue full)
//	POST /drain         flip to draining: refuse new work, finish the queue
//
// Operand tensors are generated server-side from the request seed, so a job
// is a small, reproducible description — the same request always hits the
// same content-addressed cache entry, including entries persisted to disk
// by a previous process (bifrost-serve -cache-dir): a restarted server
// answers previously computed requests byte-identically with zero
// simulator executions.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/farm"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// ArchSpec selects and overrides a hardware configuration. Controller
// accepts the short names (maeri, sigma, tpu) or the full STONNE
// controller_type strings; zero-valued fields keep the paper's defaults.
type ArchSpec struct {
	Controller string `json:"controller"`
	MSSize     int    `json:"ms_size,omitempty"`
	MSRows     int    `json:"ms_rows,omitempty"`
	MSCols     int    `json:"ms_cols,omitempty"`
	DNBw       int    `json:"dn_bw,omitempty"`
	RNBw       int    `json:"rn_bw,omitempty"`
	Sparsity   int    `json:"sparsity,omitempty"`
}

// Config resolves the spec into a validated HWConfig.
func (a ArchSpec) Config() (config.HWConfig, error) {
	var ct config.ControllerType
	switch strings.ToLower(a.Controller) {
	case "", "maeri", strings.ToLower(string(config.MAERIDenseWorkload)):
		ct = config.MAERIDenseWorkload
	case "sigma", strings.ToLower(string(config.SIGMASparseGEMM)):
		ct = config.SIGMASparseGEMM
	case "tpu", strings.ToLower(string(config.TPUOSDense)):
		ct = config.TPUOSDense
	default:
		return config.HWConfig{}, fmt.Errorf("unknown controller %q (want maeri, sigma or tpu)", a.Controller)
	}
	cfg := config.Default(ct)
	if a.MSSize > 0 {
		cfg.MSSize = a.MSSize
	}
	if a.MSRows > 0 {
		cfg.MSRows = a.MSRows
	}
	if a.MSCols > 0 {
		cfg.MSCols = a.MSCols
	}
	if a.DNBw > 0 {
		cfg.DNBandwidth = a.DNBw
	}
	if a.RNBw > 0 {
		cfg.RNBandwidth = a.RNBw
	}
	if a.Sparsity > 0 {
		cfg.SparsityRatio = a.Sparsity
	}
	cfg = cfg.Normalize()
	return cfg, cfg.Validate()
}

// ConvSpec is the convolution geometry of a request (Table II taxonomy).
type ConvSpec struct {
	N      int `json:"n,omitempty"`
	C      int `json:"c"`
	H      int `json:"h"`
	W      int `json:"w"`
	K      int `json:"k"`
	R      int `json:"r"`
	S      int `json:"s"`
	G      int `json:"g,omitempty"`
	Stride int `json:"stride,omitempty"`
	Pad    int `json:"pad,omitempty"`
}

// DenseSpec is the dense geometry of a request: M batches, K input neurons,
// N output neurons.
type DenseSpec struct {
	M int `json:"m,omitempty"`
	K int `json:"k"`
	N int `json:"n"`
}

// JobRequest describes one simulation. Operands are generated from Seed.
type JobRequest struct {
	Arch ArchSpec `json:"arch"`
	// Op is "conv2d" or "dense".
	Op    string     `json:"op"`
	Conv  *ConvSpec  `json:"conv,omitempty"`
	Dense *DenseSpec `json:"dense,omitempty"`
	// Mapping is the MAERI conv tile tuple [T_R,T_S,T_C,T_K,T_G,T_N,T_X,T_Y];
	// empty selects the basic mapping.
	Mapping []int `json:"mapping,omitempty"`
	// FCMapping is the dense tile tuple [T_S,T_K,T_N]; empty selects basic.
	FCMapping []int `json:"fc_mapping,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	// DryRun runs the counters-only MAERI measurement (no operands).
	DryRun bool `json:"dry_run,omitempty"`
	// ExecWorkers is the intra-job worker count for the exact arithmetic of
	// GEMM-lowered convolutions (SIGMA / TPU): 0 inherits the server
	// default, 1 forces the serial kernel, > 1 parallelises column blocks,
	// < 0 selects GOMAXPROCS. Responses are byte-identical for every value
	// (the accumulation order never changes), so it does not participate in
	// the cache key: serial and parallel requests share entries.
	ExecWorkers int `json:"exec_workers,omitempty"`
	// Trace echoes a per-job lifecycle trace in the response: where the
	// job's wall-clock time went (enqueue wait, dedup, cache lookups,
	// compute, persist) and which tier answered it. Tracing never changes
	// results or cache keys; the server's -trace flag turns it on for
	// every request.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMS bounds the job in milliseconds: a job still unanswered when
	// the timeout passes fails with a deadline error (HTTP 504) instead of
	// occupying the queue. 0 inherits the server's -job-timeout default;
	// a negative value disables the deadline for this job. Timeouts never
	// change results or cache keys — only whether one is produced.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Job compiles the request into a farm job.
func (r JobRequest) Job() (farm.Job, error) {
	cfg, err := r.Arch.Config()
	if err != nil {
		return farm.Job{}, err
	}
	j := farm.Job{HW: cfg, Seed: r.Seed, DryRun: r.DryRun, ExecWorkers: r.ExecWorkers, Trace: r.Trace}
	switch r.Op {
	case "conv2d":
		if r.Conv == nil {
			return farm.Job{}, fmt.Errorf("conv2d job needs a conv geometry")
		}
		c := *r.Conv
		if c.N == 0 {
			c.N = 1
		}
		if c.G == 0 {
			c.G = 1
		}
		if c.W == 0 {
			c.W = c.H // square input shorthand
		}
		if c.S == 0 {
			c.S = c.R // square kernel shorthand
		}
		d := tensor.ConvDims{N: c.N, C: c.C, H: c.H, W: c.W, K: c.K, R: c.R, S: c.S,
			G: c.G, StrideH: c.Stride, StrideW: c.Stride, PadH: c.Pad, PadW: c.Pad}
		if err := d.Resolve(); err != nil {
			return farm.Job{}, err
		}
		j.Kind = farm.Conv2D
		j.Dims = d
		j.ConvMapping = mapping.Basic()
		if len(r.Mapping) > 0 {
			if len(r.Mapping) != 8 {
				return farm.Job{}, fmt.Errorf("conv mapping needs 8 tiles, got %d", len(r.Mapping))
			}
			m := r.Mapping
			j.ConvMapping = mapping.ConvMapping{TR: m[0], TS: m[1], TC: m[2], TK: m[3],
				TG: m[4], TN: m[5], TX: m[6], TY: m[7]}
		}
		if !r.DryRun {
			j.Input = tensor.RandomUniform(r.Seed, 1, d.N, d.C, d.H, d.W)
			kernel := tensor.RandomUniform(r.Seed+100, 1, d.K, d.C/d.G, d.R, d.S)
			if cfg.SparsityRatio > 0 {
				tensor.Prune(kernel, float64(cfg.SparsityRatio)/100)
			}
			j.Weights = kernel
		}
	case "dense":
		if r.Dense == nil {
			return farm.Job{}, fmt.Errorf("dense job needs a dense geometry")
		}
		dn := *r.Dense
		if dn.M == 0 {
			dn.M = 1
		}
		if dn.K <= 0 || dn.N <= 0 {
			return farm.Job{}, fmt.Errorf("dense job needs positive k and n, got %d and %d", dn.K, dn.N)
		}
		j.Kind = farm.Dense
		j.M, j.K, j.N = dn.M, dn.K, dn.N
		j.FCMapping = mapping.BasicFC()
		if len(r.FCMapping) > 0 {
			if len(r.FCMapping) != 3 {
				return farm.Job{}, fmt.Errorf("fc mapping needs 3 tiles, got %d", len(r.FCMapping))
			}
			j.FCMapping = mapping.FCMapping{TS: r.FCMapping[0], TK: r.FCMapping[1], TN: r.FCMapping[2]}
		}
		if !r.DryRun {
			j.Input = tensor.RandomUniform(r.Seed, 1, dn.M, dn.K)
			weights := tensor.RandomUniform(r.Seed+100, 1, dn.N, dn.K)
			if cfg.SparsityRatio > 0 {
				tensor.Prune(weights, float64(cfg.SparsityRatio)/100)
			}
			j.Weights = weights
		}
	default:
		return farm.Job{}, fmt.Errorf("unknown op %q (want conv2d or dense)", r.Op)
	}
	return j, nil
}

// JobResponse is what one simulation reports back.
type JobResponse struct {
	// Key is the job's content-addressed cache key.
	Key string `json:"key,omitempty"`
	// Cached reports whether the result came from the farm's cache.
	Cached bool `json:"cached"`
	// Stats are the simulation counters (omitted on error).
	Stats *stats.Stats `json:"stats,omitempty"`
	// OutputShape and OutputSum summarise the output tensor so sweeps can
	// check reproducibility without shipping whole tensors.
	OutputShape []int   `json:"output_shape,omitempty"`
	OutputSum   float64 `json:"output_sum,omitempty"`
	// ElapsedMS is the request's server-side wall clock in float
	// milliseconds — float so sub-millisecond analytic dry runs report
	// their real cost instead of truncating to 0.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the job's lifecycle trace, present when the request set
	// "trace": true or the server runs with -trace.
	Trace *telemetry.Trace `json:"trace,omitempty"`
	// Peer names the node that executed the job when a coordinator
	// dispatched it across the ring; empty for locally executed jobs.
	Peer  string `json:"peer,omitempty"`
	Error string `json:"error,omitempty"`
	// Code, Retryable and RetryAfterMS make error rows machine-actionable,
	// which matters on the streamed NDJSON path where there is no HTTP
	// status per row: Code is the taxonomy bucket ("queue_full",
	// "deadline", "unavailable", "peer_unavailable", "invalid"), Retryable
	// says whether resubmitting the identical job can succeed, and
	// RetryAfterMS carries the backpressure hint that the single-job path
	// delivers via the Retry-After header.
	Code         string `json:"code,omitempty"`
	Retryable    bool   `json:"retryable,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`

	// err keeps the typed error for HTTP status mapping (429 on
	// backpressure, 504 on deadline, 503 on shutdown); Error carries its
	// message to the client.
	err error
}

// classify maps a job error onto the machine-readable taxonomy shared by
// the single-job status mapping and the streamed NDJSON error rows, so a
// sweep client can switch on the same codes whichever endpoint it used.
func classify(err error) (code string, status int, retryable bool) {
	switch {
	case err == nil:
		return "", http.StatusOK, false
	case errors.Is(err, farm.ErrQueueFull):
		// Backpressure: rejected before costing anything; retry after the
		// queue drains.
		return "queue_full", http.StatusTooManyRequests, true
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline", http.StatusGatewayTimeout, true
	case errors.Is(err, errPeerUnavailable):
		return "peer_unavailable", http.StatusBadGateway, true
	case errors.Is(err, farm.ErrFarmClosed), errors.Is(err, context.Canceled):
		return "unavailable", http.StatusServiceUnavailable, true
	default:
		// Malformed geometry, unknown op, bad mapping: resubmitting the
		// same job can only fail the same way.
		return "invalid", http.StatusUnprocessableEntity, false
	}
}

// annotate fills the taxonomy fields of an error response from its typed
// error, including the millisecond form of the backpressure hint.
func (s *Server) annotate(resp JobResponse) JobResponse {
	if resp.err == nil {
		return resp
	}
	code, _, retryable := classify(resp.err)
	resp.Code, resp.Retryable = code, retryable
	if errors.Is(resp.err, farm.ErrQueueFull) {
		resp.RetryAfterMS = 1000 * s.retryAfterSeconds()
	}
	return resp
}

// Server routes simulation requests into a farm.
type Server struct {
	farm        *farm.Farm
	mux         *http.ServeMux
	execWorkers int
	jobTimeout  time.Duration

	logger   *slog.Logger
	traceAll bool
	slowJob  time.Duration
	ring     *telemetry.TraceRing

	peerList   []Peer
	peerClient *http.Client
	coord      *coordinator
	peerCfg    peerConfig

	sweepDir string
	sweeps   *sweepRegistry

	repl  *farm.ReplicatedStore
	scrub *farm.Scrubber

	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once

	inflight   *telemetry.Gauge
	reqSeconds map[string]*telemetry.Histogram
	started    time.Time
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithExecWorkers sets the default JobRequest.ExecWorkers applied to
// requests that leave the field unset (0). The server default keeps 0
// meaning the serial kernel, matching the farm's own default.
func WithExecWorkers(n int) ServerOption { return func(s *Server) { s.execWorkers = n } }

// WithJobTimeout sets the default per-job deadline applied to requests that
// leave timeout_ms unset (0 disables the default). A job that outlives its
// deadline fails with HTTP 504; if it was still queued the farm removes it
// so it never occupies a worker.
func WithJobTimeout(d time.Duration) ServerOption { return func(s *Server) { s.jobTimeout = d } }

// WithLogger sets the structured request logger (default slog.Default()).
func WithLogger(l *slog.Logger) ServerOption { return func(s *Server) { s.logger = l } }

// WithTraceAll echoes a lifecycle trace in every job response, as if each
// request had set "trace": true. Tracing never changes results or keys.
func WithTraceAll(on bool) ServerOption { return func(s *Server) { s.traceAll = on } }

// WithSlowJobThreshold logs a warning with the full lifecycle trace for
// any job slower than d (0 disables). The trace is collected for every job
// while enabled, whether or not the client asked for one, but echoed only
// on request.
func WithSlowJobThreshold(d time.Duration) ServerOption { return func(s *Server) { s.slowJob = d } }

// WithTraceRing sets the ring backing GET /debug/traces. When unset, the
// server uses the farm's ring (farm.WithTraceRing); with neither, the
// endpoint reports zero traces.
func WithTraceRing(r *telemetry.TraceRing) ServerOption { return func(s *Server) { s.ring = r } }

// WithSweepDir sets the directory where resumable sweeps journal their
// completed rows, surviving process restarts. Empty keeps journals
// in-process only: sweeps still survive client disconnects and stay
// resumable for the life of the server, but not across a restart.
func WithSweepDir(dir string) ServerOption { return func(s *Server) { s.sweepDir = dir } }

// WithReplicatedStore hands the server the farm's replicated result tier so
// it can surface replication health: the replica/rebalance metric families
// on /metrics, the replication_degraded readiness reason, and the
// coordinator probe loop's liveness hints into the replica ring.
func WithReplicatedStore(rs *farm.ReplicatedStore) ServerOption {
	return func(s *Server) { s.repl = rs }
}

// WithScrubber hands the server the disk scrubber so its counters ride
// /metrics. Lifecycle stays with the caller (main stops it on drain).
func WithScrubber(sc *farm.Scrubber) ServerOption {
	return func(s *Server) { s.scrub = sc }
}

// NewServer returns an http.Handler serving the bifrost-serve API on the
// given farm.
func NewServer(f *farm.Farm, opts ...ServerOption) *Server {
	s := &Server{farm: f, mux: http.NewServeMux(), started: time.Now(), drainCh: make(chan struct{})}
	s.peerCfg = defaultPeerConfig()
	for _, opt := range opts {
		opt(s)
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	if s.ring == nil {
		s.ring = f.Ring()
	}
	s.sweeps = newSweepRegistry(s.sweepDir)
	if len(s.peerList) > 0 {
		s.coord = newCoordinator(s, s.peerList, s.peerClient)
	}
	reg := telemetry.Default()
	s.inflight = reg.Gauge("bifrost_http_in_flight",
		"HTTP requests currently being served.")
	s.reqSeconds = make(map[string]*telemetry.Histogram)
	s.route("POST", "/simulate", s.handleSimulate)
	s.route("POST", "/batch", s.handleBatch)
	s.route("POST", "/drain", s.handleDrain)
	s.route("GET", "/stats", s.handleStats)
	s.route("GET", "/metrics", s.handleMetrics)
	s.route("GET", "/version", s.handleVersion)
	s.route("GET", "/debug/traces", s.handleTraces)
	s.route("GET", "/healthz", s.handleHealthz)
	s.route("GET", "/readyz", s.handleReadyz)
	// The peer wire protocol: this node's result cache, readable and
	// writable by other nodes under the versioned codec handshake.
	s.mux.Handle("/peer/", farm.PeerHandler(f))
	return s
}

// Close releases the server's background resources (the coordinator's
// health-probe loop). The farm is owned by the caller and not touched.
func (s *Server) Close() {
	if s.coord != nil {
		s.coord.stop()
	}
}

// BeginDrain flips the node into draining: liveness stays up long enough
// for load balancers to observe readiness going false, /healthz and
// /readyz report 503, new work is refused with the machine-readable
// "draining" code, and /stats advertises the state so coordinators remove
// this node from their rings before a single dispatch fails. Queued work
// is unaffected — the caller finishes it via farm.Shutdown. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainRequested returns a channel closed when the node begins draining —
// main selects on it next to the signal channel so POST /drain and SIGTERM
// share one shutdown path.
func (s *Server) DrainRequested() <-chan struct{} { return s.drainCh }

// DrainResponse is the POST /drain payload: the work still owed at the
// moment the node flipped.
type DrainResponse struct {
	Draining bool  `json:"draining"`
	Queued   int64 `json:"queued"`
	Pending  int64 `json:"pending"`
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.BeginDrain()
	st := s.farm.Stats()
	writeJSON(w, http.StatusOK, DrainResponse{Draining: true, Queued: st.Queued, Pending: st.Pending})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		// Liveness goes false on drain so plain health-checking load
		// balancers (no readiness notion) also stop routing here.
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// readiness distinguishes "alive" from "should receive new work": a
// draining node, a node whose disk tier is quarantined, one at its queue
// bound, or one that cannot reach R replica owners is alive but not ready.
func (s *Server) readiness() (bool, []string) {
	var reasons []string
	if s.Draining() {
		reasons = append(reasons, "draining")
	}
	st := s.farm.Stats()
	if st.Disk != nil && st.Disk.Degraded {
		reasons = append(reasons, "disk_degraded")
	}
	if lim := s.farm.Limits(); lim.MaxQueue > 0 && st.Queued >= int64(lim.MaxQueue) {
		reasons = append(reasons, "queue_saturated")
	}
	if s.repl != nil && s.repl.ReplicationDegraded() {
		// Fewer than R owners reachable: new results can't reach their full
		// replica count, so route fresh work to nodes whose durability is
		// intact.
		reasons = append(reasons, "replication_degraded")
	}
	return len(reasons) == 0, reasons
}

// ReadyResponse is the GET /readyz payload.
type ReadyResponse struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, reasons := s.readiness()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, ReadyResponse{Ready: ready, Reasons: reasons})
}

// refuseDraining answers new work on a draining node: 503 with the
// machine-readable code so sweep clients retry against another node.
func (s *Server) refuseDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable,
		JobResponse{Error: "node is draining", Code: "draining", Retryable: true})
}

// fanout bounds a batch's concurrent in-flight jobs. Twice the worker pool
// keeps every worker fed while the next jobs' operand tensors materialise,
// but the width is clamped to the queue bound: a fan-out wider than the
// queue admits would manufacture ErrQueueFull rows for jobs whose caller
// was blocked right here, ready to wait.
func (s *Server) fanout() int {
	n := 2 * s.farm.Workers()
	if lim := s.farm.Limits(); lim.MaxQueue > 0 && n > lim.MaxQueue {
		n = lim.MaxQueue
	}
	if n < 1 {
		n = 1
	}
	return n
}

// route registers an instrumented endpoint: per-endpoint latency
// histogram, in-flight gauge and a structured request log line.
func (s *Server) route(method, path string, h http.HandlerFunc) {
	hist := telemetry.Default().Histogram("bifrost_http_request_seconds",
		"HTTP request latency per endpoint.",
		nil, telemetry.Label{Name: "endpoint", Value: path})
	s.reqSeconds[path] = hist
	s.mux.HandleFunc(method+" "+path, s.instrument(path, hist, h))
}

// statusRecorder captures the response status and size for the request
// log. It forwards Flush so the NDJSON streaming path keeps streaming.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps a handler with the request telemetry: latency
// histogram, in-flight gauge, structured log line. Scrape and liveness
// endpoints log at Debug so a tight scrape loop does not drown real
// traffic in the log.
func (s *Server) instrument(endpoint string, hist *telemetry.Histogram, h http.HandlerFunc) http.HandlerFunc {
	level := slog.LevelInfo
	if endpoint == "/healthz" || endpoint == "/readyz" || endpoint == "/metrics" {
		level = slog.LevelDebug
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.inflight.Dec()
		elapsed := time.Since(start)
		hist.Observe(elapsed.Seconds())
		s.logger.LogAttrs(r.Context(), level, "request",
			slog.String("method", r.Method),
			slog.String("path", endpoint),
			slog.Int("status", rec.status),
			slog.Float64("elapsed_ms", telemetry.MS(elapsed)),
			slog.Int64("bytes", rec.bytes),
		)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// run executes one request through the farm and shapes the response. ctx is
// the request context: a client that disconnects mid-sweep cancels its
// still-queued jobs so they never occupy a worker.
func (s *Server) run(ctx context.Context, req JobRequest) JobResponse {
	start := time.Now()
	if req.ExecWorkers == 0 {
		req.ExecWorkers = s.execWorkers
	}
	// echoTrace controls what the client sees; the job is additionally
	// traced when slow-job logging needs the data.
	echoTrace := req.Trace || s.traceAll
	req.Trace = echoTrace || s.slowJob > 0
	job, err := req.Job()
	if err != nil {
		return s.annotate(JobResponse{Error: err.Error(), ElapsedMS: msSince(start), err: err})
	}
	switch {
	case req.TimeoutMS > 0:
		job.Deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	case req.TimeoutMS == 0:
		job.Deadline = s.jobTimeout
	}
	if job.Deadline > 0 {
		// Bound the wait as well as the queue time: a job already executing
		// when the deadline passes keeps running (its result still feeds the
		// cache and any other waiters), but this caller gets its 504 on time.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Deadline)
		defer cancel()
	}
	res, err := s.farm.DoCtx(ctx, job)
	elapsed := time.Since(start)
	if err != nil {
		key, _ := job.Key() // best effort: name the job even on failure
		return s.annotate(JobResponse{Key: key, Error: err.Error(), ElapsedMS: telemetry.MS(elapsed), err: err})
	}
	if s.slowJob > 0 && elapsed >= s.slowJob {
		s.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow job",
			slog.String("key", res.Key),
			slog.String("op", req.Op),
			slog.String("controller", req.Arch.Controller),
			slog.Bool("cached", res.Hit),
			slog.Float64("elapsed_ms", telemetry.MS(elapsed)),
			slog.Any("trace", res.Trace),
		)
	}
	resp := JobResponse{Key: res.Key, Cached: res.Hit, Stats: &res.Stats, ElapsedMS: telemetry.MS(elapsed)}
	if echoTrace {
		resp.Trace = res.Trace
	}
	if res.Out != nil {
		resp.OutputShape = res.Out.Shape()
		var sum float64
		for _, v := range res.Out.Data() {
			sum += float64(v)
		}
		resp.OutputSum = sum
	}
	return resp
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

// encBufPool recycles the JSON encode buffers: every response (and every
// NDJSON result line) is encoded into a pooled buffer and written in one
// call, so the steady-state encode path allocates no per-response buffers.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.refuseDraining(w)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, JobResponse{Error: "decoding job: " + err.Error()})
		return
	}
	resp := s.dispatch(r.Context(), req)
	status := http.StatusOK
	if resp.err != nil {
		_, status, _ = classify(resp.err)
		if resp.RetryAfterMS > 0 {
			// The header form of the hint; a queue this deep drains at
			// roughly worker rate, so the value scales with the depth.
			w.Header().Set("Retry-After", fmt.Sprintf("%d", resp.RetryAfterMS/1000))
		}
	}
	writeJSON(w, status, resp)
}

// dispatch routes one request: through the coordinator's peer ring when
// configured, straight into the local farm otherwise.
func (s *Server) dispatch(ctx context.Context, req JobRequest) JobResponse {
	if s.coord != nil {
		return s.coord.run(ctx, req)
	}
	return s.run(ctx, req)
}

// retryAfterSeconds derives the 429 Retry-After hint from the live queue
// depth: an empty-ish queue suggests an immediate retry, a deep one scales
// the wait with how many worker-rounds it takes to drain, capped so a
// pathological backlog never tells clients to go away for minutes.
func (s *Server) retryAfterSeconds() int64 {
	st := s.farm.Stats()
	workers := int64(st.Workers)
	if workers < 1 {
		workers = 1
	}
	secs := 1 + st.Queued/(4*workers)
	if secs > 30 {
		secs = 30
	}
	return secs
}

// BatchRequest is the JSON form of a sweep.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// BatchResponse carries sweep results in submission order plus a stats
// snapshot taken after the sweep.
type BatchResponse struct {
	Results []JobResponse `json:"results"`
	Stats   farm.Stats    `json:"stats"`
}

// handleBatch accepts either a JSON {"jobs": [...]} body or NDJSON (one job
// per line, Content-Type application/x-ndjson) and executes the whole sweep
// concurrently through the farm. NDJSON requests stream NDJSON responses,
// one line per job, in order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.refuseDraining(w)
		return
	}
	ctype, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	ndjson := ctype == "application/x-ndjson" || ctype == "application/jsonlines"

	query := r.URL.Query()
	sweepID := query.Get("sweep_id")
	resume := false
	if v := query.Get("resume"); v != "" {
		var err error
		if resume, err = strconv.ParseBool(v); err != nil {
			writeJSON(w, http.StatusBadRequest, JobResponse{Error: "resume must be a boolean: " + err.Error()})
			return
		}
	}
	if resume && sweepID == "" {
		writeJSON(w, http.StatusBadRequest, JobResponse{Error: "resume=true needs a sweep_id"})
		return
	}

	var reqs []JobRequest
	if ndjson {
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			var req JobRequest
			if err := json.Unmarshal([]byte(text), &req); err != nil {
				writeJSON(w, http.StatusBadRequest, JobResponse{Error: fmt.Sprintf("line %d: %v", line, err)})
				return
			}
			reqs = append(reqs, req)
		}
		if err := sc.Err(); err != nil {
			writeJSON(w, http.StatusBadRequest, JobResponse{Error: err.Error()})
			return
		}
	} else {
		var batch BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			writeJSON(w, http.StatusBadRequest, JobResponse{Error: "decoding batch: " + err.Error()})
			return
		}
		reqs = batch.Jobs
	}

	if sweepID != "" {
		run, err := s.attachSweep(sweepID, reqs, resume)
		if err != nil {
			writeJSON(w, http.StatusConflict, JobResponse{Error: err.Error(), Code: "sweep_conflict"})
			return
		}
		if ndjson {
			s.streamSweep(w, r.Context(), run)
		} else {
			s.collectSweep(w, r.Context(), run)
		}
		return
	}

	if ndjson {
		s.streamBatch(w, r.Context(), reqs)
		return
	}

	// Fan the sweep out, but bound the in-flight requests: the farm caps
	// simulation concurrency, while this semaphore caps how many jobs have
	// their operand tensors materialised at once — without it a huge sweep
	// would allocate every operand up front regardless of worker count.
	// The request context rides along: a client that disconnects cancels
	// every still-queued job of its sweep, freeing the farm for others.
	results := make([]JobResponse, len(reqs))
	sem := make(chan struct{}, s.fanout())
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, req JobRequest) {
			defer func() { <-sem; wg.Done() }()
			results[i] = s.dispatch(r.Context(), req)
		}(i, req)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Results: results, Stats: s.farm.Stats()})
}

// streamBatch executes an NDJSON sweep with the same bounded fan-out as the
// JSON path, but streams the response: each result line is encoded through
// a pooled buffer, written as soon as it and all its predecessors are done
// (lines stay in submission order — the NDJSON contract), and flushed
// per-result, so a slow sweep delivers results as they complete instead of
// buffering the whole batch.
func (s *Server) streamBatch(w http.ResponseWriter, ctx context.Context, reqs []JobRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)

	results := make([]JobResponse, len(reqs))
	done := make(chan int, len(reqs))
	sem := make(chan struct{}, s.fanout())
	go func() {
		for i, req := range reqs {
			sem <- struct{}{}
			go func(i int, req JobRequest) {
				defer func() { <-sem }()
				results[i] = s.dispatch(ctx, req)
				done <- i
			}(i, req)
		}
	}()

	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	ready := make([]bool, len(reqs))
	written := 0
	for range reqs {
		ready[<-done] = true
		flushed := false
		for written < len(results) && ready[written] {
			buf.Reset()
			if err := json.NewEncoder(buf).Encode(results[written]); err != nil {
				// The response is already streaming; all we can do is emit
				// an error line in place of the result.
				fmt.Fprintf(buf, "{\"error\":%q}\n", err.Error())
			}
			w.Write(buf.Bytes())
			written++
			flushed = true
		}
		if flushed && fl != nil {
			fl.Flush()
		}
	}
}

// Ratios summarises every cache tier as a single hit fraction.
type Ratios struct {
	// Farm is the fraction of submissions answered without a simulator
	// execution (cache hits plus single-flight attaches).
	Farm float64 `json:"farm"`
	// Memory and Disk are the per-tier lookup hit ratios.
	Memory float64 `json:"memory"`
	Disk   float64 `json:"disk,omitempty"`
	// Pack is the packed-operand cache's hit ratio.
	Pack float64 `json:"pack"`
}

// StatsResponse is the extended GET /stats payload: the farm's raw counter
// snapshot (unchanged shape — existing clients keep decoding it) plus the
// telemetry rollups layered on top.
type StatsResponse struct {
	farm.Stats
	// Ratios are the derived per-tier hit fractions.
	Ratios Ratios `json:"ratios"`
	// Phases summarises the per-phase job lifecycle histograms
	// (enqueue_wait, dedup, mem_lookup, disk_lookup, compute, persist).
	Phases map[string]telemetry.HistogramSummary `json:"phases,omitempty"`
	// Compute summarises simulator compute time per controller.
	Compute map[string]telemetry.HistogramSummary `json:"compute,omitempty"`
	// Requests summarises HTTP latency per endpoint.
	Requests map[string]telemetry.HistogramSummary `json:"requests,omitempty"`
	// Limits are the farm's configured bounds.
	Limits farm.Limits `json:"limits"`
	// TracesRecorded counts lifecycle traces captured into the debug ring.
	TracesRecorded uint64  `json:"traces_recorded"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	// Draining reports that this node has begun draining; a coordinator's
	// stats scrape uses it to pull the node off the ring before any
	// dispatch to it can fail.
	Draining bool `json:"draining"`
	// ActiveSweeps counts resumable sweeps currently executing (including
	// sweeps whose client has disconnected).
	ActiveSweeps int `json:"active_sweeps"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.farm.Stats()
	resp := StatsResponse{
		Stats: st,
		Ratios: Ratios{
			Farm:   st.HitRate(),
			Memory: st.Memory.HitRatio(),
			Pack:   telemetry.Ratio(st.Pack.Hits, st.Pack.Misses),
		},
		Phases:         farm.PhaseSummaries(),
		Compute:        api.ComputeSummaries(),
		Requests:       make(map[string]telemetry.HistogramSummary, len(s.reqSeconds)),
		Limits:         s.farm.Limits(),
		TracesRecorded: s.ring.Total(),
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Draining:       s.Draining(),
		ActiveSweeps:   s.sweeps.activeSweeps(),
	}
	if st.Disk != nil {
		resp.Ratios.Disk = st.Disk.HitRatio()
	}
	for path, hist := range s.reqSeconds {
		resp.Requests[path] = hist.Summary()
	}
	writeJSON(w, http.StatusOK, resp)
}

// MetricsHandler returns the Prometheus scrape handler standalone, so main
// can also mount it on the pprof side port.
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.handleMetrics) }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.Default().WritePrometheus(w)
	s.writeFarmMetrics(w)
	if s.coord != nil {
		s.coord.writeMetrics(w)
	}
}

// writeFarmMetrics renders the farm's counter snapshot as exposition
// families at scrape time. These values are owned by the farm's Stats
// accounting; deriving them per scrape keeps /metrics and /stats exactly
// consistent without double-counting state in the registry.
// bit01 renders a boolean as a 0/1 gauge value.
func bit01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) writeFarmMetrics(w io.Writer) {
	st := s.farm.Stats()
	one := func(v float64) []telemetry.Sample { return []telemetry.Sample{{Value: v}} }

	telemetry.WriteSamples(w, "bifrost_farm_workers", "Configured worker pool size.", "gauge", one(float64(st.Workers))...)
	telemetry.WriteSamples(w, "bifrost_farm_busy_workers", "Workers executing a job right now.", "gauge", one(float64(st.BusyWorkers))...)
	telemetry.WriteSamples(w, "bifrost_farm_queue_depth", "Jobs waiting for a worker.", "gauge", one(float64(st.Queued))...)
	telemetry.WriteSamples(w, "bifrost_farm_pending_jobs", "Jobs queued or running.", "gauge", one(float64(st.Pending))...)

	telemetry.WriteSamples(w, "bifrost_farm_submitted_total", "Jobs handed to the farm.", "counter", one(float64(st.Submitted))...)
	telemetry.WriteSamples(w, "bifrost_farm_completed_total", "Simulator executions finished.", "counter", one(float64(st.Completed))...)
	telemetry.WriteSamples(w, "bifrost_farm_failed_total", "Simulator executions failed.", "counter", one(float64(st.Failed))...)
	telemetry.WriteSamples(w, "bifrost_farm_panics_total", "Simulator panics recovered into per-job errors.", "counter", one(float64(st.Panics))...)
	telemetry.WriteSamples(w, "bifrost_farm_cancelled_total", "Jobs cancelled, deadline-expired or abandoned by shutdown before execution.", "counter", one(float64(st.Cancelled))...)
	telemetry.WriteSamples(w, "bifrost_farm_rejected_total", "Submissions refused by the queue bound (backpressure).", "counter", one(float64(st.Rejected))...)
	telemetry.WriteSamples(w, "bifrost_farm_hits_total", "Submissions served from cache.", "counter", one(float64(st.Hits))...)
	telemetry.WriteSamples(w, "bifrost_farm_disk_hits_total", "Cache hits answered by the disk tier.", "counter", one(float64(st.DiskHits))...)
	telemetry.WriteSamples(w, "bifrost_farm_misses_total", "Submissions that required a simulation.", "counter", one(float64(st.Misses))...)
	telemetry.WriteSamples(w, "bifrost_farm_deduped_total", "Submissions attached to an in-flight execution.", "counter", one(float64(st.Deduped))...)
	telemetry.WriteSamples(w, "bifrost_farm_hit_ratio", "Fraction of submissions answered without an execution.", "gauge", one(st.HitRate())...)

	tier := func(name string) []telemetry.Label { return []telemetry.Label{{Name: "tier", Value: name}} }
	tiers := []struct {
		labels []telemetry.Label
		st     farm.StoreStats
	}{{tier("memory"), st.Memory}}
	if st.Disk != nil {
		tiers = append(tiers, struct {
			labels []telemetry.Label
			st     farm.StoreStats
		}{tier("disk"), *st.Disk})
	}
	family := func(suffix, help, typ string, pick func(farm.StoreStats) float64) {
		samples := make([]telemetry.Sample, len(tiers))
		for i, t := range tiers {
			samples[i] = telemetry.Sample{Labels: t.labels, Value: pick(t.st)}
		}
		telemetry.WriteSamples(w, "bifrost_store_"+suffix, help, typ, samples...)
	}
	family("entries", "Results held by the tier.", "gauge", func(s farm.StoreStats) float64 { return float64(s.Entries) })
	family("bytes", "Resident bytes held by the tier.", "gauge", func(s farm.StoreStats) float64 { return float64(s.Bytes) })
	family("hits_total", "Tier lookup hits.", "counter", func(s farm.StoreStats) float64 { return float64(s.Hits) })
	family("misses_total", "Tier lookup misses.", "counter", func(s farm.StoreStats) float64 { return float64(s.Misses) })
	family("puts_total", "Results stored into the tier.", "counter", func(s farm.StoreStats) float64 { return float64(s.Puts) })
	family("evictions_total", "Entries evicted to honour the tier's bounds.", "counter", func(s farm.StoreStats) float64 { return float64(s.Evictions) })
	family("corrupt_total", "Entries dropped as corrupt.", "counter", func(s farm.StoreStats) float64 { return float64(s.Corrupt) })
	family("errors_total", "Tier I/O errors.", "counter", func(s farm.StoreStats) float64 { return float64(s.Errors) })
	family("hit_ratio", "Tier lookup hit ratio.", "gauge", farm.StoreStats.HitRatio)
	if st.Disk != nil {
		d := *st.Disk
		telemetry.WriteSamples(w, "bifrost_farm_disk_errors_total",
			"Disk tier I/O failures: failed reads and writes plus failed deletes of corrupt or evicted entries.",
			"counter", one(float64(d.Errors+d.DeleteErrors))...)
		telemetry.WriteSamples(w, "bifrost_farm_disk_retries_total",
			"Disk operations re-attempted after a transient failure.",
			"counter", one(float64(d.Retries))...)
		telemetry.WriteSamples(w, "bifrost_farm_disk_breaker_trips_total",
			"Times the disk tier's health breaker opened.",
			"counter", one(float64(d.Trips))...)
		degraded := 0.0
		if d.Degraded {
			degraded = 1
		}
		telemetry.WriteSamples(w, "bifrost_farm_disk_degraded",
			"1 while the disk tier is quarantined (farm serving memory-only).",
			"gauge", one(degraded)...)
	}

	if s.repl != nil {
		rp := s.repl.ReplicaStats()
		telemetry.WriteSamples(w, "bifrost_replica_members",
			"Remote replica targets configured.",
			"gauge", one(float64(rp.Members))...)
		telemetry.WriteSamples(w, "bifrost_replica_healthy",
			"Remote replica targets currently accepting traffic.",
			"gauge", one(float64(rp.Healthy))...)
		telemetry.WriteSamples(w, "bifrost_replica_writes_total",
			"Successful remote replica writes (Put fan-out).",
			"counter", one(float64(rp.Writes))...)
		telemetry.WriteSamples(w, "bifrost_replica_failures_total",
			"Failed remote replica writes.",
			"counter", one(float64(rp.Failures))...)
		telemetry.WriteSamples(w, "bifrost_replica_repairs_total",
			"Replica writes performed by read-repair (a hit healed into tiers that missed).",
			"counter", one(float64(rp.Repairs))...)
		telemetry.WriteSamples(w, "bifrost_replica_rebalanced_total",
			"Keys streamed to new owners by anti-entropy after ring churn.",
			"counter", one(float64(rp.Rebalanced))...)
		telemetry.WriteSamples(w, "bifrost_replication_degraded",
			"1 while fewer than R replica owners are reachable.",
			"gauge", one(bit01(rp.Degraded))...)
	}
	if s.scrub != nil {
		sc := s.scrub.Stats()
		telemetry.WriteSamples(w, "bifrost_scrub_scanned_total",
			"Disk entries whose CRC frames the scrubber re-verified.",
			"counter", one(float64(sc.Scanned))...)
		telemetry.WriteSamples(w, "bifrost_scrub_corrupt_total",
			"Entries the scrubber found corrupt and deleted.",
			"counter", one(float64(sc.Corrupt))...)
		telemetry.WriteSamples(w, "bifrost_scrub_repaired_total",
			"Corrupt entries refilled from a replica instead of recomputed.",
			"counter", one(float64(sc.Repaired))...)
	}

	pk := st.Pack
	telemetry.WriteSamples(w, "bifrost_pack_cache_entries", "Packed operands held.", "gauge", one(float64(pk.Entries))...)
	telemetry.WriteSamples(w, "bifrost_pack_cache_bytes", "Resident packed-operand bytes.", "gauge", one(float64(pk.Bytes))...)
	telemetry.WriteSamples(w, "bifrost_pack_cache_hits_total", "Packed-operand reuse hits.", "counter", one(float64(pk.Hits))...)
	telemetry.WriteSamples(w, "bifrost_pack_cache_misses_total", "Packed-operand misses.", "counter", one(float64(pk.Misses))...)
	telemetry.WriteSamples(w, "bifrost_pack_cache_evictions_total", "Packed operands evicted.", "counter", one(float64(pk.Evictions))...)
	telemetry.WriteSamples(w, "bifrost_pack_cache_hit_ratio", "Packed-operand hit ratio.", "gauge", one(telemetry.Ratio(pk.Hits, pk.Misses))...)

	telemetry.WriteSamples(w, "bifrost_traces_recorded_total", "Lifecycle traces captured into the debug ring.", "counter", one(float64(s.ring.Total()))...)

	ready, _ := s.readiness()
	telemetry.WriteSamples(w, "bifrost_draining",
		"1 while the node is draining (new work refused, queued work finishing).",
		"gauge", one(bit01(s.Draining()))...)
	telemetry.WriteSamples(w, "bifrost_ready",
		"1 while the node is ready for new work (not draining, disk tier healthy, queue below bound).",
		"gauge", one(bit01(ready))...)
	telemetry.WriteSamples(w, "bifrost_active_sweeps",
		"Resumable sweeps currently executing.",
		"gauge", one(float64(s.sweeps.activeSweeps()))...)
	telemetry.WriteSamples(w, "bifrost_sweep_rows_replayed_total",
		"Sweep rows answered from the journal and cache instead of recomputing.",
		"counter", one(float64(s.sweeps.replayed.Load()))...)
}

// VersionInfo is the GET /version payload.
type VersionInfo struct {
	Module      string      `json:"module,omitempty"`
	Version     string      `json:"version,omitempty"`
	GoVersion   string      `json:"go_version"`
	VCSRevision string      `json:"vcs_revision,omitempty"`
	VCSTime     string      `json:"vcs_time,omitempty"`
	SIMD        string      `json:"simd"`
	ExecWorkers int         `json:"exec_workers"`
	Farm        farm.Limits `json:"farm"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	info := VersionInfo{
		GoVersion:   runtime.Version(),
		SIMD:        tensor.SIMDLevel(),
		ExecWorkers: s.execWorkers,
		Farm:        s.farm.Limits(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		info.Version = bi.Main.Version
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				info.VCSRevision = kv.Value
			case "vcs.time":
				info.VCSTime = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// TracesResponse is the GET /debug/traces payload: the ring's retained
// lifecycle traces, newest first.
type TracesResponse struct {
	Total  uint64             `json:"total"`
	Traces []*telemetry.Trace `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, TracesResponse{Total: s.ring.Total(), Traces: s.ring.Snapshot()})
}
