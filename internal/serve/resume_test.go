package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
)

// encodeNDJSON renders a sweep as an NDJSON request body.
func encodeNDJSON(t *testing.T, reqs []JobRequest) *bytes.Buffer {
	t.Helper()
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, r := range reqs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return &body
}

// postSweepNDJSON drives reqs through /batch with the given query string
// and returns the streamed rows.
func postSweepNDJSON(t *testing.T, base, query string, reqs []JobRequest) []JobResponse {
	t.Helper()
	resp, err := http.Post(base+"/batch?"+query, "application/x-ndjson", encodeNDJSON(t, reqs))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch %s: HTTP %d: %s", query, resp.StatusCode, b)
	}
	var out []JobResponse
	dec := json.NewDecoder(resp.Body)
	for {
		var jr JobResponse
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		out = append(out, jr)
	}
	return out
}

// assertSweepRows asserts byte-identity in the coordinator tests' sense:
// same keys, same counters, same output checksums, no error rows.
func assertSweepRows(t *testing.T, context string, want, got []JobResponse) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", context, len(got), len(want))
	}
	for i := range want {
		if got[i].Error != "" {
			t.Fatalf("%s: row %d failed: %s (code %s)", context, i, got[i].Error, got[i].Code)
		}
		if got[i].Key != want[i].Key {
			t.Errorf("%s: row %d key %s, want %s", context, i, got[i].Key, want[i].Key)
		}
		if *got[i].Stats != *want[i].Stats {
			t.Errorf("%s: row %d stats diverge:\n got %+v\nwant %+v", context, i, *got[i].Stats, *want[i].Stats)
		}
		if got[i].OutputSum != want[i].OutputSum {
			t.Errorf("%s: row %d output checksum %v, want %v", context, i, got[i].OutputSum, want[i].OutputSum)
		}
	}
}

// waitSweepsIdle polls /stats until no sweep is executing.
func waitSweepsIdle(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.ActiveSweeps == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("sweep still active after 30s")
}

// TestChaosSweepDisconnectResumeRestart is the tentpole's client-failure
// proof: a resumable sweep loses its client after three rows, the server
// finishes and journals the rest on its own, a reconnect replays the whole
// sweep byte-identically with zero recomputation — and so does a cold
// process restarted over the same cache and journal directories.
func TestChaosSweepDisconnectResumeRestart(t *testing.T) {
	reqs := sweepRequests()
	single, _ := newTestServer(t)
	want := runSweepNDJSON(t, single.URL, reqs)

	root := t.TempDir()
	cacheDir, sweepDir := filepath.Join(root, "cache"), filepath.Join(root, "sweeps")
	boot := func() (*httptest.Server, *Server, *farm.Farm) {
		ds, err := farm.NewDiskStore(cacheDir, 0)
		if err != nil {
			t.Fatal(err)
		}
		fm := farm.New(2, farm.WithDiskStore(ds))
		srv := NewServer(fm, WithSweepDir(sweepDir))
		return httptest.NewServer(srv), srv, fm
	}
	ts, _, fm := boot()

	// Phase 1: start the sweep, take three rows, drop the connection.
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/batch?sweep_id=pr9", encodeNDJSON(t, reqs))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep start: HTTP %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 3; i++ {
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading streamed row %d: %v", i, err)
		}
		var jr JobResponse
		if err := json.Unmarshal(line, &jr); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if jr.Error != "" {
			t.Fatalf("row %d failed before the disconnect: %s", i, jr.Error)
		}
	}
	cancel()
	resp.Body.Close()

	// The server must finish the sweep with no client attached.
	waitSweepsIdle(t, ts.URL)

	// Phase 2: reconnect on the same process — the journal answers every
	// row from cache; the JSON collect path must agree with the stream.
	execBefore := fm.Stats().Completed
	if execBefore != int64(len(reqs)) {
		t.Fatalf("detached sweep executed %d simulations, want %d", execBefore, len(reqs))
	}
	var batch BatchRequest
	batch.Jobs = reqs
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	jresp, err := http.Post(ts.URL+"/batch?sweep_id=pr9&resume=true", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br2 BatchResponse
	if err := json.NewDecoder(jresp.Body).Decode(&br2); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	assertSweepRows(t, "same-process resume", want, br2.Results)
	if got := fm.Stats().Completed; got != execBefore {
		t.Fatalf("resume recomputed: %d executions, want %d", got, execBefore)
	}

	// Phase 3: cold restart over the same directories — byte-identical,
	// zero simulator executions, every row replayed from the journal.
	ts.Close()
	fm.Close()
	ts2, srv2, fm2 := boot()
	t.Cleanup(func() { ts2.Close(); fm2.Close() })
	got := postSweepNDJSON(t, ts2.URL, "sweep_id=pr9&resume=true", reqs)
	assertSweepRows(t, "post-restart resume", want, got)
	if n := fm2.Stats().Completed; n != 0 {
		t.Fatalf("restarted resume executed %d simulations, want 0", n)
	}
	if n := srv2.sweeps.replayed.Load(); n != int64(len(reqs)) {
		t.Fatalf("restarted resume replayed %d rows from the journal, want %d", n, len(reqs))
	}
	for i, row := range got {
		if !row.Cached {
			t.Errorf("post-restart row %d not served from cache", i)
		}
	}
}

// TestChaosSweepConflictAndFreshStart pins the registry's id semantics: a
// second client cannot steal a live id without resume, a resume must agree
// on the row count, and resubmitting a finished id without resume starts
// over instead of replaying the stale journal.
func TestChaosSweepConflictAndFreshStart(t *testing.T) {
	ds, err := farm.NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// A slow disk tier (50ms per touch, one worker) keeps the first sweep
	// deterministically active while the conflicting requests land.
	fs := farmtest.NewFaultStore(ds, farmtest.FaultPolicy{Latency: 50 * time.Millisecond})
	fm := farm.New(1, farm.WithDiskStore(fs))
	srv := NewServer(fm)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); fm.Close() })

	reqs := sweepRequests()
	done := make(chan []JobResponse, 1)
	go func() { done <- postSweepNDJSON(t, ts.URL, "sweep_id=busy", reqs) }()

	deadline := time.Now().Add(30 * time.Second)
	for srv.sweeps.activeSweeps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never became active")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Same id, no resume: refused while the sweep runs.
	resp, err := http.Post(ts.URL+"/batch?sweep_id=busy", "application/x-ndjson", encodeNDJSON(t, reqs))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || jr.Code != "sweep_conflict" {
		t.Fatalf("live-id steal: HTTP %d code %q, want 409 sweep_conflict", resp.StatusCode, jr.Code)
	}

	// Resume with a different row count: also refused.
	resp, err = http.Post(ts.URL+"/batch?sweep_id=busy&resume=true", "application/x-ndjson", encodeNDJSON(t, reqs[:2]))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("row-count mismatch: HTTP %d, want 409", resp.StatusCode)
	}

	first := <-done
	for i, row := range first {
		if row.Error != "" {
			t.Fatalf("row %d of the contested sweep failed: %s", i, row.Error)
		}
	}

	// Finished id, resume: replayed without recomputation.
	execBefore := fm.Stats().Completed
	srv.sweeps.replayed.Store(0)
	resumed := postSweepNDJSON(t, ts.URL, "sweep_id=busy&resume=true", reqs)
	assertSweepRows(t, "finished-id resume", first, resumed)
	if got := fm.Stats().Completed; got != execBefore {
		t.Fatalf("finished-id resume recomputed: %d executions, want %d", got, execBefore)
	}
	if srv.sweeps.replayed.Load() == 0 {
		t.Error("finished-id resume replayed nothing from the journal")
	}

	// Finished id, no resume: the journal is discarded and rows go back
	// through dispatch (the farm cache may still answer them — but never
	// the journal).
	srv.sweeps.replayed.Store(0)
	fresh := postSweepNDJSON(t, ts.URL, "sweep_id=busy", reqs)
	assertSweepRows(t, "fresh start under a reused id", first, fresh)
	if n := srv.sweeps.replayed.Load(); n != 0 {
		t.Fatalf("fresh start replayed %d rows from a journal it should have discarded", n)
	}
}

// TestSweepRequestValidation covers the query-parameter contract.
func TestSweepRequestValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"resume=true", http.StatusBadRequest},              // resume without an id
		{"sweep_id=x&resume=banana", http.StatusBadRequest}, // non-boolean resume
	} {
		resp, err := http.Post(ts.URL+"/batch?"+tc.query, "application/json", bytes.NewReader([]byte(`{"jobs":[]}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("batch?%s: HTTP %d, want %d", tc.query, resp.StatusCode, tc.want)
		}
	}
}
