package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/farm"
)

// Resumable sweeps. A /batch request carrying ?sweep_id=<id> detaches the
// sweep's execution from the request: the server computes every row to
// completion even if the client disconnects mid-stream, and journals each
// completed row's farm key (farm.SweepLog — CRC-framed appends beside the
// disk store's atomic-rename result files). A reconnect with &resume=true
// attaches to the still-running sweep, or — after a crash or restart —
// replays every journaled row straight from the result cache and computes
// only the remainder. Either way the client's view is byte-identical to an
// uninterrupted run: rows are keyed by content, so a replayed row carries
// exactly the bytes the original execution produced.

// maxCompletedSweeps bounds the in-memory journal fallback used when the
// server runs without a sweep directory: finished sweeps stay resumable
// in-process, oldest forgotten first.
const maxCompletedSweeps = 1024

// sweepRegistry tracks the node's running sweeps and, without a journal
// directory, an in-memory record of recently finished ones.
type sweepRegistry struct {
	dir string

	replayed atomic.Int64 // rows answered from a journal across all sweeps

	mu        sync.Mutex
	active    map[string]*sweepRun
	completed map[string]map[int]string
	order     []string // completed ids, oldest first
}

func newSweepRegistry(dir string) *sweepRegistry {
	return &sweepRegistry{
		dir:       dir,
		active:    make(map[string]*sweepRun),
		completed: make(map[string]map[int]string),
	}
}

// sweepRun is one sweep's execution state. rows[i] is written exactly once,
// before ready[i] closes; done closes after every row is written, so readers
// ordering on those channels never race the writers.
type sweepRun struct {
	id      string
	journal map[int]string // rows journaled by a previous run of this id
	rows    []JobResponse
	ready   []chan struct{}
	done    chan struct{}

	replayed atomic.Int64 // rows answered from the journal + cache

	mu  sync.Mutex
	log *farm.SweepLog // nil when the registry has no directory
	mem map[int]string // journal mirror for the in-memory fallback
}

// record journals one completed row. Journal writes are best-effort: a
// failed append costs only the ability to replay this row after a crash —
// the row's result itself already rides the cache tiers.
func (run *sweepRun) record(row int, key string) {
	run.mu.Lock()
	defer run.mu.Unlock()
	if run.log != nil {
		run.log.Record(row, key)
	}
	run.mem[row] = key
}

// attachSweep resolves a sweep_id submission to its run: attaching to a
// live run on resume, replaying a finished journal into a new run, or
// starting from scratch. The returned run is always executing (or already
// complete); callers just stream its rows.
func (s *Server) attachSweep(id string, reqs []JobRequest, resume bool) (*sweepRun, error) {
	reg := s.sweeps
	reg.mu.Lock()
	defer reg.mu.Unlock()

	if run, ok := reg.active[id]; ok {
		if !resume {
			return nil, fmt.Errorf("sweep %q is still running; reconnect with resume=true or choose a new id", id)
		}
		if len(run.rows) != len(reqs) {
			return nil, fmt.Errorf("sweep %q is running with %d rows but the resume sent %d", id, len(run.rows), len(reqs))
		}
		return run, nil
	}

	journal := make(map[int]string)
	var log *farm.SweepLog
	if reg.dir != "" {
		if !resume {
			// Starting over under a reused id: the stale journal must not
			// answer the new sweep's rows.
			if err := farm.RemoveSweepLog(reg.dir, id); err != nil {
				return nil, fmt.Errorf("resetting sweep journal: %w", err)
			}
		}
		var err error
		log, err = farm.OpenSweepLog(reg.dir, id)
		if err != nil {
			return nil, err
		}
		if resume {
			journal = log.Rows()
		}
	} else if resume {
		for row, key := range reg.completed[id] {
			journal[row] = key
		}
	}

	// The run's journal mirror starts from the replayed rows so a sweep
	// resumed twice still knows every completed row.
	mem := make(map[int]string, len(journal))
	for row, key := range journal {
		mem[row] = key
	}
	run := &sweepRun{
		id:      id,
		journal: journal,
		rows:    make([]JobResponse, len(reqs)),
		ready:   make([]chan struct{}, len(reqs)),
		done:    make(chan struct{}),
		log:     log,
		mem:     mem,
	}
	for i := range run.ready {
		run.ready[i] = make(chan struct{})
	}
	reg.active[id] = run
	go s.runSweep(run, reqs)
	return run, nil
}

// runSweep executes a sweep detached from any request context, with the
// same bounded fan-out as an attached batch.
func (s *Server) runSweep(run *sweepRun, reqs []JobRequest) {
	sem := make(chan struct{}, s.fanout())
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, req JobRequest) {
			defer func() { <-sem; wg.Done() }()
			run.rows[i] = s.sweepRow(run, i, req)
			close(run.ready[i])
		}(i, reqs[i])
	}
	wg.Wait()
	s.sweeps.finish(run)
}

// sweepRow answers one row: from the journal + cache when a previous run
// already computed it, through the normal dispatch path otherwise. Error
// rows are never journaled — a resume retries them.
func (s *Server) sweepRow(run *sweepRun, i int, req JobRequest) JobResponse {
	if key, ok := run.journal[i]; ok {
		if resp, ok := s.replayRow(req, key); ok {
			run.replayed.Add(1)
			s.sweeps.replayed.Add(1)
			return resp
		}
	}
	resp := s.dispatch(context.Background(), req)
	if resp.err == nil && resp.Error == "" && resp.Key != "" {
		run.record(i, resp.Key)
	}
	return resp
}

// replayRow serves a journaled row from the result cache. The journaled key
// must equal the key of the job the client re-sent for this row — a client
// reusing a sweep id for a different sweep gets its rows recomputed, never
// a wrong cached answer. Recomputing the key costs the row's operand
// generation but no simulation, and a cache miss (evicted entry) simply
// falls back to a normal dispatch.
func (s *Server) replayRow(req JobRequest, key string) (JobResponse, bool) {
	start := time.Now()
	if req.ExecWorkers == 0 {
		req.ExecWorkers = s.execWorkers
	}
	req.Trace = false
	job, err := req.Job()
	if err != nil {
		return JobResponse{}, false
	}
	k, err := job.Key()
	if err != nil || k != key {
		return JobResponse{}, false
	}
	res, ok := s.farm.CacheGet(key)
	if !ok {
		return JobResponse{}, false
	}
	resp := JobResponse{Key: key, Cached: true, Stats: &res.Stats, ElapsedMS: msSince(start)}
	if res.Out != nil {
		resp.OutputShape = res.Out.Shape()
		var sum float64
		for _, v := range res.Out.Data() {
			sum += float64(v)
		}
		resp.OutputSum = sum
	}
	return resp, true
}

// finish retires a completed run: the journal file stays on disk for a
// later resume, while the directory-less fallback keeps the row map in
// memory under the completed-sweep bound.
func (reg *sweepRegistry) finish(run *sweepRun) {
	run.mu.Lock()
	if run.log != nil {
		run.log.Close()
		run.log = nil
	}
	mem := run.mem
	run.mu.Unlock()

	reg.mu.Lock()
	delete(reg.active, run.id)
	if reg.dir == "" {
		if _, ok := reg.completed[run.id]; !ok {
			reg.order = append(reg.order, run.id)
		}
		reg.completed[run.id] = mem
		for len(reg.order) > maxCompletedSweeps {
			delete(reg.completed, reg.order[0])
			reg.order = reg.order[1:]
		}
	}
	reg.mu.Unlock()
	close(run.done)
}

// activeSweeps reports how many sweeps are currently executing.
func (reg *sweepRegistry) activeSweeps() int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.active)
}

// streamSweep streams a run's rows as NDJSON in submission order, flushing
// per row. A vanished client ends the stream but never the sweep: the run
// keeps computing and journaling, and a resume replays what it missed.
func (s *Server) streamSweep(w http.ResponseWriter, ctx context.Context, run *sweepRun) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	for i := range run.rows {
		select {
		case <-run.ready[i]:
		case <-ctx.Done():
			return
		}
		buf.Reset()
		if err := json.NewEncoder(buf).Encode(run.rows[i]); err != nil {
			fmt.Fprintf(buf, "{\"error\":%q}\n", err.Error())
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

// collectSweep waits for the whole run and answers with the JSON batch
// shape. A client gone before completion changes nothing for the sweep.
func (s *Server) collectSweep(w http.ResponseWriter, ctx context.Context, run *sweepRun) {
	select {
	case <-run.done:
	case <-ctx.Done():
		return
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: run.rows, Stats: s.farm.Stats()})
}
