package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/farm"
	"repro/internal/telemetry"
)

// Coordinator mode turns a bifrost-serve node into the front of a
// distributed farm: each job's content-addressed key is consistent-hashed
// onto a ring of peer nodes, the job is forwarded to its owner's /simulate
// endpoint, and the response streams back through the normal single-job and
// NDJSON batch paths. Placement is deterministic (farm.Ring), so every
// coordinator over the same peer set routes every key identically and a
// sharded sweep stays byte-identical to a single-node run.
//
// Failure handling mirrors the local disk tier's:
//
//	peer down      → per-peer breaker trips after a failure streak; the
//	                 peer is quarantined and probed on a timer
//	quarantined    → its shard is redistributed deterministically to the
//	                 next owners on the ring, then to the local farm
//	peer at bound  → its 429 propagates to the client with Retry-After
//	                 intact (backpressure is an answer, not a failure)
//	peer draining  → its /stats advertises the drain; the scrape pulls it
//	                 off the ring before a single dispatch can fail, and
//	                 the health probes re-admit it when it comes back
//	peer stalled   → with -hedge-after set, a dispatch that outlives the
//	                 threshold races a second request to the next owner;
//	                 first answer wins, the loser is cancelled
//	all peers gone → the local farm executes everything; a coordinator
//	                 degrades to a correct single node
//
// The coordinator also scrapes each peer's /stats on a short TTL: queue
// depth drives placement (a peer at its queue bound is skipped before the
// wire round-trip, not after), and the scraped gauges are re-exported on
// /metrics under a peer label. When probing is enabled, a background loop
// additionally hits each peer's /healthz so a dead or recovered node flips
// down/up without waiting for a real dispatch to discover it.

// Peer names one remote bifrost-serve node in the coordinator's ring.
type Peer struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// errPeerUnavailable classifies a job whose owning peers all failed and
// whose local fallback was impossible; in practice the local farm absorbs
// the job, so clients only see this code if dispatch fails before any
// execution.
var errPeerUnavailable = errors.New("serve: no peer could execute the job")

// WithPeers configures coordinator mode: jobs are consistent-hashed across
// the given peers, with the local farm as the deterministic last resort.
// An empty slice leaves the server a plain single node.
func WithPeers(peers []Peer) ServerOption {
	return func(s *Server) { s.peerList = append([]Peer(nil), peers...) }
}

// WithPeerClient substitutes the HTTP client the coordinator dials peers
// with — the seam the chaos tests use to inject transport faults.
func WithPeerClient(c *http.Client) ServerOption {
	return func(s *Server) {
		if c != nil {
			s.peerClient = c
		}
	}
}

// WithHedgeAfter enables hedged dispatch: a peer request still unanswered
// after d races a second request to the next ring owner; the first answer
// wins and the loser is cancelled. Content-addressed keys make the hedge
// free of correctness risk — both peers compute (or cache-hit) the same
// bytes. 0 disables hedging.
func WithHedgeAfter(d time.Duration) ServerOption {
	return func(s *Server) { s.peerCfg.HedgeAfter = d }
}

// WithPeerTimeout bounds how long a peer may hold a dispatch before
// answering headers. It replaces a blanket client timeout: dials are
// bounded separately and response bodies may stream as long as they need,
// so the timeout is purely "how long may a peer think".
func WithPeerTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.peerCfg.Timeout = d
		}
	}
}

// WithPeerStatsTTL bounds how stale the scraped placement stats may be.
func WithPeerStatsTTL(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.peerCfg.StatsTTL = d
		}
	}
}

// WithPeerProbes starts a background loop probing each peer's /healthz
// every interval: consecutive failures flip the peer down (off the ring),
// a success flips it back up — so membership tracks reality instead of
// being discovered one failed dispatch at a time. 0 disables the loop.
func WithPeerProbes(every time.Duration) ServerOption {
	return func(s *Server) { s.peerCfg.ProbeEvery = every }
}

// peerConfig collects the coordinator's tunables, all flag-settable.
type peerConfig struct {
	HedgeAfter time.Duration // 0: no hedging
	Timeout    time.Duration // peer response-header bound
	StatsTTL   time.Duration // placement-stats staleness bound
	ProbeEvery time.Duration // 0: no active health probes
}

func defaultPeerConfig() peerConfig {
	return peerConfig{Timeout: 2 * time.Minute, StatsTTL: 2 * time.Second}
}

const (
	// peerTripAfter consecutive forwarding failures quarantine a peer.
	peerTripAfter = 3
	// peerProbeEvery is the quarantined peer's re-probe interval: one real
	// job per interval is risked against it; success re-admits it.
	peerProbeEvery = 2 * time.Second
	// peerDialTimeout bounds connection establishment to a peer; an
	// unreachable node fails over in seconds, not minutes.
	peerDialTimeout = 5 * time.Second
	// healthProbeTimeout bounds one active /healthz probe.
	healthProbeTimeout = 2 * time.Second
	// probeDownAfter consecutive failed health probes take a peer off the
	// ring; the first success puts it back.
	probeDownAfter = 2
)

// coordinator owns the ring, the per-peer health and the dispatch loop.
type coordinator struct {
	s      *Server
	cfg    peerConfig
	ring   *farm.Ring
	client *http.Client
	peers  map[string]*peerState
	names  []string // stable sorted peer names for metrics

	localFallbacks atomic.Int64
	hedges         atomic.Int64
	hedgeWins      atomic.Int64

	stopOnce sync.Once
	stopCh   chan struct{}
}

// peerState is one peer's breaker, scrape cache and counters.
type peerState struct {
	name, url string

	mu          sync.Mutex
	failures    int       // consecutive forwarding failures
	quarantined bool      // breaker open
	nextProbe   time.Time // earliest next probe while quarantined
	trips       int64
	draining    bool // peer advertised a drain via /stats or /healthz
	down        bool // active health probes flipped the peer off the ring
	probeFails  int  // consecutive failed health probes

	statsAt time.Time
	statsOK bool
	stats   peerScrape

	dispatched atomic.Int64 // jobs this peer answered (any terminal status)
	failovers  atomic.Int64 // jobs moved off this peer after it failed
	skipped    atomic.Int64 // placements skipped: quarantine, queue bound, drain
}

// peerScrape is the slice of a peer's /stats the coordinator acts on.
type peerScrape struct {
	Queued      int64 `json:"queued"`
	BusyWorkers int64 `json:"busy_workers"`
	Workers     int   `json:"workers"`
	Draining    bool  `json:"draining"`
	Ratios      struct {
		Memory float64 `json:"memory"`
		Disk   float64 `json:"disk"`
	} `json:"ratios"`
	Limits struct {
		MaxQueue int `json:"max_queue"`
	} `json:"limits"`
}

func newCoordinator(s *Server, peers []Peer, client *http.Client) *coordinator {
	cfg := s.peerCfg
	if client == nil {
		// Dial and response-header bounds instead of a blanket timeout: a
		// hung or unreachable peer fails over fast, while a legitimately
		// long simulation may stream its (already started) response body
		// for as long as it needs.
		client = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: peerDialTimeout}).DialContext,
			ResponseHeaderTimeout: cfg.Timeout,
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       90 * time.Second,
		}}
	}
	c := &coordinator{
		s:      s,
		cfg:    cfg,
		ring:   farm.NewRing(0),
		client: client,
		peers:  make(map[string]*peerState, len(peers)),
		stopCh: make(chan struct{}),
	}
	for _, p := range peers {
		if p.Name == "" || p.URL == "" {
			continue
		}
		c.ring.Add(p.Name)
		c.peers[p.Name] = &peerState{name: p.Name, url: p.URL}
		c.names = append(c.names, p.Name)
	}
	sort.Strings(c.names)
	if cfg.ProbeEvery > 0 {
		go c.probeLoop()
	}
	return c
}

// stop ends the coordinator's background probe loop.
func (c *coordinator) stop() { c.stopOnce.Do(func() { close(c.stopCh) }) }

// admit reports whether a peer may receive a job right now: always when
// healthy, once per probe interval when quarantined.
func (ps *peerState) admit(now time.Time) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.quarantined {
		return true
	}
	if !now.Before(ps.nextProbe) {
		ps.nextProbe = now.Add(peerProbeEvery) // claim this probe slot
		return true
	}
	return false
}

// ok records a successful exchange, closing an open breaker.
func (ps *peerState) ok() {
	ps.mu.Lock()
	ps.failures = 0
	ps.quarantined = false
	ps.mu.Unlock()
}

// fail records a forwarding failure, quarantining the peer at the streak
// threshold.
func (ps *peerState) fail(now time.Time) {
	ps.mu.Lock()
	ps.failures++
	if ps.failures >= peerTripAfter && !ps.quarantined {
		ps.quarantined = true
		ps.trips++
	}
	if ps.quarantined {
		ps.nextProbe = now.Add(peerProbeEvery)
	}
	ps.mu.Unlock()
}

// barred reports whether the peer is out of placement entirely: draining
// or probed down. Unlike the breaker (which risks one real job per probe
// interval), a barred peer receives nothing until the health probes or a
// fresh scrape clear it.
func (ps *peerState) barred() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.draining || ps.down
}

// syncRing reconciles the peer's ring membership with its state: on the
// ring iff neither draining nor down. The same liveness feeds the
// replicated result tier when this node has one and knows the peer as a
// replica — the probe loop's verdict beats waiting for the replica
// breaker to trip on traffic.
func (c *coordinator) syncRing(ps *peerState) {
	ps.mu.Lock()
	want := !ps.draining && !ps.down
	ps.mu.Unlock()
	if want {
		c.ring.Add(ps.name)
	} else {
		c.ring.Remove(ps.name)
	}
	if repl := c.s.repl; repl != nil && repl.HasMember(ps.name) {
		repl.SetMemberActive(ps.name, want)
	}
}

// noteDraining applies a drain advertisement scraped from the peer's
// /stats, proactively removing (or re-admitting) it from the ring.
func (c *coordinator) noteDraining(ps *peerState, draining bool) {
	ps.mu.Lock()
	changed := ps.draining != draining
	ps.draining = draining
	ps.mu.Unlock()
	if changed {
		c.syncRing(ps)
	}
}

// overloaded consults the peer's scraped stats: a peer already at its queue
// bound would only answer 429, so the coordinator routes past it — the same
// redistribution path a dead peer takes, driven by backpressure telemetry
// instead of a breaker.
func (c *coordinator) overloaded(ps *peerState) bool {
	st, ok := c.scrape(ps)
	return ok && st.Limits.MaxQueue > 0 && st.Queued >= int64(st.Limits.MaxQueue)
}

// scrape returns the peer's stats, refreshing over the wire at most once
// per TTL. A failed scrape is not breaker food — placement just proceeds
// without the hint. A successful scrape also carries the peer's draining
// advertisement, which drives ring membership.
func (c *coordinator) scrape(ps *peerState) (peerScrape, bool) {
	ps.mu.Lock()
	if time.Since(ps.statsAt) < c.cfg.StatsTTL {
		st, ok := ps.stats, ps.statsOK
		ps.mu.Unlock()
		return st, ok
	}
	ps.statsAt = time.Now() // claim the refresh before releasing the lock
	ps.mu.Unlock()

	var st peerScrape
	ok := false
	resp, err := c.client.Get(ps.url + "/stats")
	if err == nil {
		if resp.StatusCode == http.StatusOK &&
			json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st) == nil {
			ok = true
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	ps.mu.Lock()
	ps.stats, ps.statsOK = st, ok
	ps.mu.Unlock()
	if ok {
		c.noteDraining(ps, st.Draining)
	}
	return st, ok
}

// probeLoop actively probes every peer's /healthz on a timer, flipping
// peers down after consecutive failures and back up on the first success —
// so a restarted or recovered node rejoins the ring without waiting for a
// placement to happen to scrape it.
func (c *coordinator) probeLoop() {
	t := time.NewTicker(c.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			for _, name := range c.names {
				c.probe(c.peers[name])
			}
		}
	}
}

// probe runs one active health check against a peer. A 200 clears both the
// down and draining marks (a draining node answers 503, so a healthy
// answer is proof the drain ended); anything else counts toward down.
func (c *coordinator) probe(ps *peerState) {
	ctx, cancel := context.WithTimeout(context.Background(), healthProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ps.url+"/healthz", nil)
	if err != nil {
		return
	}
	healthy := false
	if resp, err := c.client.Do(req); err == nil {
		healthy = resp.StatusCode == http.StatusOK
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	ps.mu.Lock()
	if healthy {
		ps.probeFails = 0
		ps.down = false
		ps.draining = false
	} else {
		ps.probeFails++
		if ps.probeFails >= probeDownAfter {
			ps.down = true
		}
	}
	ps.mu.Unlock()
	c.syncRing(ps)
}

// placeable decides whether a placement may try this peer right now, and
// accounts the skip if not. overloaded runs first so its scrape can learn
// a drain advertisement this very placement acts on.
func (c *coordinator) placeable(ps *peerState, now time.Time) bool {
	if !ps.admit(now) || c.overloaded(ps) || ps.barred() {
		ps.skipped.Add(1)
		return false
	}
	return true
}

// run dispatches one request across the ring. The job's content key decides
// its owner; owners are tried in the ring's deterministic failover order,
// skipping quarantined, queue-bound and draining peers; if every owner is
// out, the local farm executes the job — the coordinator never refuses
// work a single node could do.
func (c *coordinator) run(ctx context.Context, req JobRequest) JobResponse {
	start := time.Now()
	job, err := req.Job()
	if err != nil {
		return c.s.annotate(JobResponse{Error: err.Error(), ElapsedMS: msSince(start), err: err})
	}
	key, err := job.Key()
	if err != nil {
		return c.s.annotate(JobResponse{Error: err.Error(), ElapsedMS: msSince(start), err: err})
	}

	owners := c.ring.Owners(key, c.ring.Len())
	if c.cfg.HedgeAfter > 0 {
		return c.runHedged(ctx, req, key, owners, start)
	}

	now := time.Now()
	for _, name := range owners {
		ps := c.peers[name]
		if !c.placeable(ps, now) {
			continue
		}
		resp, terminal := c.forward(ctx, ps, req, key, start)
		if terminal {
			return resp
		}
		ps.failovers.Add(1)
		if ctx.Err() != nil {
			// The client is gone; walking more owners only burns peers.
			return c.s.annotate(JobResponse{Key: key, Error: ctx.Err().Error(), ElapsedMS: msSince(start), err: ctx.Err()})
		}
	}

	// Redistribution's last hop: the shard lands on the local farm.
	c.localFallbacks.Add(1)
	return c.s.run(ctx, req)
}

// runHedged is the dispatch loop with hedging enabled: the primary owner
// gets the job, and if it has not answered within the hedge threshold the
// next placeable owner races it. The first terminal answer wins and every
// other attempt is cancelled; a non-terminal failure is replaced by the
// next candidate immediately. Content addressing makes the race safe —
// whichever peer answers, the bytes are identical.
func (c *coordinator) runHedged(ctx context.Context, req JobRequest, key string, owners []string, start time.Time) JobResponse {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels every losing attempt

	type attempt struct {
		resp     JobResponse
		terminal bool
		ps       *peerState
		hedged   bool
	}
	results := make(chan attempt, len(owners)+1)
	next, inflight := 0, 0
	launch := func(hedged bool) bool {
		now := time.Now()
		for next < len(owners) {
			ps := c.peers[owners[next]]
			next++
			if !c.placeable(ps, now) {
				continue
			}
			inflight++
			go func(ps *peerState, hedged bool) {
				resp, terminal := c.forward(hctx, ps, req, key, start)
				results <- attempt{resp: resp, terminal: terminal, ps: ps, hedged: hedged}
			}(ps, hedged)
			return true
		}
		return false
	}

	if !launch(false) {
		c.localFallbacks.Add(1)
		return c.s.run(ctx, req)
	}
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	hedged := false
	for inflight > 0 {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				if launch(true) {
					c.hedges.Add(1)
				}
			}
		case a := <-results:
			inflight--
			if a.terminal {
				if a.hedged {
					c.hedgeWins.Add(1)
					if a.resp.Trace != nil {
						a.resp.Trace.Hedged = true
					}
				}
				return a.resp
			}
			a.ps.failovers.Add(1)
			if ctx.Err() != nil {
				return c.s.annotate(JobResponse{Key: key, Error: ctx.Err().Error(), ElapsedMS: msSince(start), err: ctx.Err()})
			}
			// Replace the failed attempt so the job keeps the same number
			// of irons in the fire.
			launch(a.hedged)
		}
	}
	c.localFallbacks.Add(1)
	return c.s.run(ctx, req)
}

// forward sends the job to one peer and shapes the reply. terminal=false
// means the peer could not answer (network failure or 5xx) and the caller
// should fail over; every real answer — success, backpressure, deadline,
// invalid job — is terminal and propagates. A failure caused by our own
// context (client gone, or a hedge race this attempt lost) is not breaker
// food: the peer did nothing wrong.
func (c *coordinator) forward(ctx context.Context, ps *peerState, req JobRequest, key string, start time.Time) (JobResponse, bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return c.s.annotate(JobResponse{Key: key, Error: err.Error(), ElapsedMS: msSince(start), err: err}), true
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ps.url+"/simulate", bytes.NewReader(body))
	if err != nil {
		return JobResponse{}, false
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() == nil {
			ps.fail(time.Now())
		}
		return JobResponse{}, false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 4096))
		hresp.Body.Close()
	}()

	var resp JobResponse
	decodeErr := json.NewDecoder(io.LimitReader(hresp.Body, 64<<20)).Decode(&resp)

	switch {
	case hresp.StatusCode == http.StatusOK:
		if decodeErr != nil {
			if ctx.Err() == nil {
				ps.fail(time.Now())
			}
			return JobResponse{}, false
		}
		ps.ok()
	case hresp.StatusCode == http.StatusTooManyRequests:
		// The peer is healthy and saying "not now": backpressure propagates
		// to the client as-is, hint included, rather than pile the load
		// onto the next owner and melt the ring one peer at a time.
		ps.ok()
		resp.err = farm.ErrQueueFull
		if resp.Error == "" {
			resp.Error = farm.ErrQueueFull.Error()
		}
		resp = c.s.annotate(resp)
		if resp.RetryAfterMS == 0 {
			resp.RetryAfterMS = 1000
		}
	case hresp.StatusCode == http.StatusGatewayTimeout:
		ps.ok()
		resp.err = context.DeadlineExceeded
		resp = c.s.annotate(resp)
	case hresp.StatusCode == http.StatusUnprocessableEntity:
		// The job itself is bad; every peer would refuse it identically.
		ps.ok()
		if resp.Error == "" {
			resp.Error = fmt.Sprintf("peer %s: HTTP %d", ps.name, hresp.StatusCode)
		}
		resp.err = errors.New(resp.Error)
		resp = c.s.annotate(resp)
	case hresp.StatusCode == http.StatusServiceUnavailable && resp.Code == "draining":
		// The peer told us it is draining mid-flight: remember it so the
		// next placement skips it, and fail this job over without feeding
		// the breaker — a draining node is healthy, just leaving.
		c.noteDraining(ps, true)
		return JobResponse{}, false
	default:
		// Other 5xx, or garbage: this peer cannot answer.
		if ctx.Err() == nil {
			ps.fail(time.Now())
		}
		return JobResponse{}, false
	}

	ps.dispatched.Add(1)
	resp.Peer = ps.name
	if resp.Trace != nil {
		// One trace per hop: wrap the executing node's trace in this hop's,
		// so the client sees dispatch + wire time around remote queue wait,
		// lookups and compute.
		resp.Trace = &telemetry.Trace{
			Key:     resp.Key,
			Source:  "peer",
			Peer:    ps.name,
			Remote:  resp.Trace,
			TotalMS: telemetry.MS(time.Since(start)),
		}
	}
	resp.ElapsedMS = msSince(start)
	return resp, true
}

// writeMetrics appends the coordinator's exposition families: ring and
// hedge counters, per-peer dispatch counters and health, plus the scraped
// placement gauges under the same peer label. Per-peer families cover every
// configured peer, including ones currently off the ring — that is exactly
// when an operator needs to see them.
func (c *coordinator) writeMetrics(w io.Writer) {
	one := func(v float64) []telemetry.Sample { return []telemetry.Sample{{Value: v}} }
	telemetry.WriteSamples(w, "bifrost_coordinator_ring_members",
		"Peers currently on the coordinator's hash ring.", "gauge", one(float64(c.ring.Len()))...)
	telemetry.WriteSamples(w, "bifrost_coordinator_local_fallbacks_total",
		"Jobs the local farm absorbed because every owning peer was unavailable.", "counter",
		one(float64(c.localFallbacks.Load()))...)
	telemetry.WriteSamples(w, "bifrost_peer_hedges_total",
		"Hedged second dispatches issued after the hedge threshold.", "counter",
		one(float64(c.hedges.Load()))...)
	telemetry.WriteSamples(w, "bifrost_peer_hedge_wins_total",
		"Hedged dispatches that answered before the primary.", "counter",
		one(float64(c.hedgeWins.Load()))...)

	perPeer := func(suffix, help, typ string, pick func(*peerState) float64) {
		samples := make([]telemetry.Sample, 0, len(c.names))
		for _, n := range c.names {
			samples = append(samples, telemetry.Sample{
				Labels: []telemetry.Label{{Name: "peer", Value: n}},
				Value:  pick(c.peers[n]),
			})
		}
		telemetry.WriteSamples(w, suffix, help, typ, samples...)
	}
	perPeer("bifrost_peer_up", "1 while the peer is admitted, 0 while quarantined, down or draining.", "gauge", func(ps *peerState) float64 {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		if ps.quarantined || ps.down || ps.draining {
			return 0
		}
		return 1
	})
	perPeer("bifrost_peer_draining", "1 while the peer advertises a drain.", "gauge", func(ps *peerState) float64 {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		if ps.draining {
			return 1
		}
		return 0
	})
	perPeer("bifrost_peer_dispatched_total", "Jobs this peer answered terminally.", "counter",
		func(ps *peerState) float64 { return float64(ps.dispatched.Load()) })
	perPeer("bifrost_peer_failovers_total", "Jobs moved off this peer after it failed.", "counter",
		func(ps *peerState) float64 { return float64(ps.failovers.Load()) })
	perPeer("bifrost_peer_skipped_total", "Placements that skipped this peer (quarantine, queue bound or drain).", "counter",
		func(ps *peerState) float64 { return float64(ps.skipped.Load()) })
	perPeer("bifrost_peer_breaker_trips_total", "Times this peer's breaker opened.", "counter", func(ps *peerState) float64 {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		return float64(ps.trips)
	})
	scraped := func(pick func(peerScrape) float64) func(*peerState) float64 {
		return func(ps *peerState) float64 {
			ps.mu.Lock()
			defer ps.mu.Unlock()
			if !ps.statsOK {
				return 0
			}
			return pick(ps.stats)
		}
	}
	perPeer("bifrost_peer_queue_depth", "Scraped queue depth at this peer.", "gauge",
		scraped(func(st peerScrape) float64 { return float64(st.Queued) }))
	perPeer("bifrost_peer_busy_workers", "Scraped busy workers at this peer.", "gauge",
		scraped(func(st peerScrape) float64 { return float64(st.BusyWorkers) }))
	perPeer("bifrost_peer_mem_hit_ratio", "Scraped memory-tier hit ratio at this peer.", "gauge",
		scraped(func(st peerScrape) float64 { return st.Ratios.Memory }))
	perPeer("bifrost_peer_disk_hit_ratio", "Scraped disk-tier hit ratio at this peer.", "gauge",
		scraped(func(st peerScrape) float64 { return st.Ratios.Disk }))
}
