package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/farm"
	"repro/internal/telemetry"
)

// Coordinator mode turns a bifrost-serve node into the front of a
// distributed farm: each job's content-addressed key is consistent-hashed
// onto a ring of peer nodes, the job is forwarded to its owner's /simulate
// endpoint, and the response streams back through the normal single-job and
// NDJSON batch paths. Placement is deterministic (farm.Ring), so every
// coordinator over the same peer set routes every key identically and a
// sharded sweep stays byte-identical to a single-node run.
//
// Failure handling mirrors the local disk tier's:
//
//	peer down      → per-peer breaker trips after a failure streak; the
//	                 peer is quarantined and probed on a timer
//	quarantined    → its shard is redistributed deterministically to the
//	                 next owners on the ring, then to the local farm
//	peer at bound  → its 429 propagates to the client with Retry-After
//	                 intact (backpressure is an answer, not a failure)
//	all peers gone → the local farm executes everything; a coordinator
//	                 degrades to a correct single node
//
// The coordinator also scrapes each peer's /stats on a short TTL: queue
// depth drives placement (a peer at its queue bound is skipped before the
// wire round-trip, not after), and the scraped gauges are re-exported on
// /metrics under a peer label.

// Peer names one remote bifrost-serve node in the coordinator's ring.
type Peer struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// errPeerUnavailable classifies a job whose owning peers all failed and
// whose local fallback was impossible; in practice the local farm absorbs
// the job, so clients only see this code if dispatch fails before any
// execution.
var errPeerUnavailable = errors.New("serve: no peer could execute the job")

// WithPeers configures coordinator mode: jobs are consistent-hashed across
// the given peers, with the local farm as the deterministic last resort.
// An empty slice leaves the server a plain single node.
func WithPeers(peers []Peer) ServerOption {
	return func(s *Server) { s.peerList = append([]Peer(nil), peers...) }
}

// WithPeerClient substitutes the HTTP client the coordinator dials peers
// with — the seam the chaos tests use to inject transport faults.
func WithPeerClient(c *http.Client) ServerOption {
	return func(s *Server) {
		if c != nil {
			s.peerClient = c
		}
	}
}

const (
	// peerTripAfter consecutive forwarding failures quarantine a peer.
	peerTripAfter = 3
	// peerProbeEvery is the quarantined peer's re-probe interval: one real
	// job per interval is risked against it; success re-admits it.
	peerProbeEvery = 2 * time.Second
	// peerStatsTTL bounds how stale the scraped placement stats may be.
	peerStatsTTL = 2 * time.Second
)

// coordinator owns the ring, the per-peer health and the dispatch loop.
type coordinator struct {
	s      *Server
	ring   *farm.Ring
	client *http.Client
	peers  map[string]*peerState

	localFallbacks atomic.Int64
}

// peerState is one peer's breaker, scrape cache and counters.
type peerState struct {
	name, url string

	mu          sync.Mutex
	failures    int       // consecutive forwarding failures
	quarantined bool      // breaker open
	nextProbe   time.Time // earliest next probe while quarantined
	trips       int64

	statsAt time.Time
	statsOK bool
	stats   peerScrape

	dispatched atomic.Int64 // jobs this peer answered (any terminal status)
	failovers  atomic.Int64 // jobs moved off this peer after it failed
	skipped    atomic.Int64 // placements skipped: quarantine or queue bound
}

// peerScrape is the slice of a peer's /stats the coordinator acts on.
type peerScrape struct {
	Queued      int64 `json:"queued"`
	BusyWorkers int64 `json:"busy_workers"`
	Workers     int   `json:"workers"`
	Ratios      struct {
		Memory float64 `json:"memory"`
		Disk   float64 `json:"disk"`
	} `json:"ratios"`
	Limits struct {
		MaxQueue int `json:"max_queue"`
	} `json:"limits"`
}

func newCoordinator(s *Server, peers []Peer, client *http.Client) *coordinator {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	c := &coordinator{s: s, ring: farm.NewRing(0), client: client, peers: make(map[string]*peerState, len(peers))}
	for _, p := range peers {
		if p.Name == "" || p.URL == "" {
			continue
		}
		c.ring.Add(p.Name)
		c.peers[p.Name] = &peerState{name: p.Name, url: p.URL}
	}
	return c
}

// admit reports whether a peer may receive a job right now: always when
// healthy, once per probe interval when quarantined.
func (ps *peerState) admit(now time.Time) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.quarantined {
		return true
	}
	if !now.Before(ps.nextProbe) {
		ps.nextProbe = now.Add(peerProbeEvery) // claim this probe slot
		return true
	}
	return false
}

// ok records a successful exchange, closing an open breaker.
func (ps *peerState) ok() {
	ps.mu.Lock()
	ps.failures = 0
	ps.quarantined = false
	ps.mu.Unlock()
}

// fail records a forwarding failure, quarantining the peer at the streak
// threshold.
func (ps *peerState) fail(now time.Time) {
	ps.mu.Lock()
	ps.failures++
	if ps.failures >= peerTripAfter && !ps.quarantined {
		ps.quarantined = true
		ps.trips++
	}
	if ps.quarantined {
		ps.nextProbe = now.Add(peerProbeEvery)
	}
	ps.mu.Unlock()
}

// overloaded consults the peer's scraped stats: a peer already at its queue
// bound would only answer 429, so the coordinator routes past it — the same
// redistribution path a dead peer takes, driven by backpressure telemetry
// instead of a breaker.
func (c *coordinator) overloaded(ps *peerState) bool {
	st, ok := c.scrape(ps)
	return ok && st.Limits.MaxQueue > 0 && st.Queued >= int64(st.Limits.MaxQueue)
}

// scrape returns the peer's stats, refreshing over the wire at most once
// per TTL. A failed scrape is not breaker food — placement just proceeds
// without the hint.
func (c *coordinator) scrape(ps *peerState) (peerScrape, bool) {
	ps.mu.Lock()
	if time.Since(ps.statsAt) < peerStatsTTL {
		st, ok := ps.stats, ps.statsOK
		ps.mu.Unlock()
		return st, ok
	}
	ps.statsAt = time.Now() // claim the refresh before releasing the lock
	ps.mu.Unlock()

	var st peerScrape
	ok := false
	resp, err := c.client.Get(ps.url + "/stats")
	if err == nil {
		if resp.StatusCode == http.StatusOK &&
			json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st) == nil {
			ok = true
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	ps.mu.Lock()
	ps.stats, ps.statsOK = st, ok
	ps.mu.Unlock()
	return st, ok
}

// run dispatches one request across the ring. The job's content key decides
// its owner; owners are tried in the ring's deterministic failover order,
// skipping quarantined and queue-bound peers; if every owner is out, the
// local farm executes the job — the coordinator never refuses work a
// single node could do.
func (c *coordinator) run(ctx context.Context, req JobRequest) JobResponse {
	start := time.Now()
	job, err := req.Job()
	if err != nil {
		return c.s.annotate(JobResponse{Error: err.Error(), ElapsedMS: msSince(start), err: err})
	}
	key, err := job.Key()
	if err != nil {
		return c.s.annotate(JobResponse{Error: err.Error(), ElapsedMS: msSince(start), err: err})
	}

	now := time.Now()
	for _, name := range c.ring.Owners(key, c.ring.Len()) {
		ps := c.peers[name]
		if !ps.admit(now) || c.overloaded(ps) {
			ps.skipped.Add(1)
			continue
		}
		resp, terminal := c.forward(ctx, ps, req, key, start)
		if terminal {
			return resp
		}
		ps.failovers.Add(1)
		if ctx.Err() != nil {
			// The client is gone; walking more owners only burns peers.
			return c.s.annotate(JobResponse{Key: key, Error: ctx.Err().Error(), ElapsedMS: msSince(start), err: ctx.Err()})
		}
	}

	// Redistribution's last hop: the shard lands on the local farm.
	c.localFallbacks.Add(1)
	resp := c.s.run(ctx, req)
	return resp
}

// forward sends the job to one peer and shapes the reply. terminal=false
// means the peer could not answer (network failure or 5xx) and the caller
// should fail over; every real answer — success, backpressure, deadline,
// invalid job — is terminal and propagates.
func (c *coordinator) forward(ctx context.Context, ps *peerState, req JobRequest, key string, start time.Time) (JobResponse, bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return c.s.annotate(JobResponse{Key: key, Error: err.Error(), ElapsedMS: msSince(start), err: err}), true
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ps.url+"/simulate", bytes.NewReader(body))
	if err != nil {
		return JobResponse{}, false
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		ps.fail(time.Now())
		return JobResponse{}, false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 4096))
		hresp.Body.Close()
	}()

	var resp JobResponse
	decodeErr := json.NewDecoder(io.LimitReader(hresp.Body, 64<<20)).Decode(&resp)

	switch {
	case hresp.StatusCode == http.StatusOK:
		if decodeErr != nil {
			ps.fail(time.Now())
			return JobResponse{}, false
		}
		ps.ok()
	case hresp.StatusCode == http.StatusTooManyRequests:
		// The peer is healthy and saying "not now": backpressure propagates
		// to the client as-is, hint included, rather than pile the load
		// onto the next owner and melt the ring one peer at a time.
		ps.ok()
		resp.err = farm.ErrQueueFull
		if resp.Error == "" {
			resp.Error = farm.ErrQueueFull.Error()
		}
		resp = c.s.annotate(resp)
		if resp.RetryAfterMS == 0 {
			resp.RetryAfterMS = 1000
		}
	case hresp.StatusCode == http.StatusGatewayTimeout:
		ps.ok()
		resp.err = context.DeadlineExceeded
		resp = c.s.annotate(resp)
	case hresp.StatusCode == http.StatusUnprocessableEntity:
		// The job itself is bad; every peer would refuse it identically.
		ps.ok()
		if resp.Error == "" {
			resp.Error = fmt.Sprintf("peer %s: HTTP %d", ps.name, hresp.StatusCode)
		}
		resp.err = errors.New(resp.Error)
		resp = c.s.annotate(resp)
	default:
		// 503 (draining), other 5xx, or garbage: this peer cannot answer.
		ps.fail(time.Now())
		return JobResponse{}, false
	}

	ps.dispatched.Add(1)
	resp.Peer = ps.name
	if resp.Trace != nil {
		// One trace per hop: wrap the executing node's trace in this hop's,
		// so the client sees dispatch + wire time around remote queue wait,
		// lookups and compute.
		resp.Trace = &telemetry.Trace{
			Key:     resp.Key,
			Source:  "peer",
			Peer:    ps.name,
			Remote:  resp.Trace,
			TotalMS: telemetry.MS(time.Since(start)),
		}
	}
	resp.ElapsedMS = msSince(start)
	return resp, true
}

// writeMetrics appends the coordinator's exposition families: per-peer
// dispatch counters and health, plus the scraped placement gauges under the
// same peer label.
func (c *coordinator) writeMetrics(w io.Writer) {
	one := func(v float64) []telemetry.Sample { return []telemetry.Sample{{Value: v}} }
	telemetry.WriteSamples(w, "bifrost_coordinator_ring_members",
		"Peers currently on the coordinator's hash ring.", "gauge", one(float64(c.ring.Len()))...)
	telemetry.WriteSamples(w, "bifrost_coordinator_local_fallbacks_total",
		"Jobs the local farm absorbed because every owning peer was unavailable.", "counter",
		one(float64(c.localFallbacks.Load()))...)

	names := c.ring.Members()
	perPeer := func(suffix, help, typ string, pick func(*peerState) float64) {
		samples := make([]telemetry.Sample, 0, len(names))
		for _, n := range names {
			samples = append(samples, telemetry.Sample{
				Labels: []telemetry.Label{{Name: "peer", Value: n}},
				Value:  pick(c.peers[n]),
			})
		}
		telemetry.WriteSamples(w, suffix, help, typ, samples...)
	}
	perPeer("bifrost_peer_up", "1 while the peer is admitted, 0 while quarantined.", "gauge", func(ps *peerState) float64 {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		if ps.quarantined {
			return 0
		}
		return 1
	})
	perPeer("bifrost_peer_dispatched_total", "Jobs this peer answered terminally.", "counter",
		func(ps *peerState) float64 { return float64(ps.dispatched.Load()) })
	perPeer("bifrost_peer_failovers_total", "Jobs moved off this peer after it failed.", "counter",
		func(ps *peerState) float64 { return float64(ps.failovers.Load()) })
	perPeer("bifrost_peer_skipped_total", "Placements that skipped this peer (quarantine or queue bound).", "counter",
		func(ps *peerState) float64 { return float64(ps.skipped.Load()) })
	perPeer("bifrost_peer_breaker_trips_total", "Times this peer's breaker opened.", "counter", func(ps *peerState) float64 {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		return float64(ps.trips)
	})
	scraped := func(pick func(peerScrape) float64) func(*peerState) float64 {
		return func(ps *peerState) float64 {
			ps.mu.Lock()
			defer ps.mu.Unlock()
			if !ps.statsOK {
				return 0
			}
			return pick(ps.stats)
		}
	}
	perPeer("bifrost_peer_queue_depth", "Scraped queue depth at this peer.", "gauge",
		scraped(func(st peerScrape) float64 { return float64(st.Queued) }))
	perPeer("bifrost_peer_busy_workers", "Scraped busy workers at this peer.", "gauge",
		scraped(func(st peerScrape) float64 { return float64(st.BusyWorkers) }))
	perPeer("bifrost_peer_mem_hit_ratio", "Scraped memory-tier hit ratio at this peer.", "gauge",
		scraped(func(st peerScrape) float64 { return st.Ratios.Memory }))
	perPeer("bifrost_peer_disk_hit_ratio", "Scraped disk-tier hit ratio at this peer.", "gauge",
		scraped(func(st peerScrape) float64 { return st.Ratios.Disk }))
}
