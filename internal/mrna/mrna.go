// Package mrna reimplements the role of the mRNA mapping tool (Zhao et al.,
// ISPASS 2019): a specialised, architecture-aware mapper for MAERI that
// produces efficient dataflow mappings analytically, without running a
// simulation — "mRNA uses domain knowledge about MAERI to generate an
// efficient dataflow mapping, while AutoTVM optimizes the dataflow purely
// based on metrics from iterative simulations ... mRNA is more efficient
// taking minutes rather than hours" (§VIII-B).
//
// The domain knowledge encoded here is MAERI's cost structure: virtual
// neurons of size T_R·T_S·T_C reduce spatially in the ART, replicated VNs
// share weights and inputs by multicast, the distribution network delivers
// dn_bw distinct values per cycle, and the reduction network drains rn_bw
// psums per cycle. The mapper enumerates a pruned candidate set and ranks
// it with a closed-form cycle estimate matching the simulator's cost
// accounting (full-tile approximation).
package mrna

import (
	"fmt"
	"sort"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// Goal selects the optimisation objective. mRNA in the paper optimises
// total cycle count; utilisation is provided for exploration.
type Goal int

// Optimisation goals.
const (
	MinimizeCycles Goal = iota
	MaximizeUtilization
)

// Mapper generates mappings for one hardware configuration.
type Mapper struct {
	cfg  config.HWConfig
	goal Goal
}

// NewMapper validates the configuration (must be MAERI) and returns a
// mapper.
func NewMapper(cfg config.HWConfig, goal Goal) (*Mapper, error) {
	cfg = cfg.Normalize()
	if cfg.Controller != config.MAERIDenseWorkload {
		return nil, fmt.Errorf("mrna: mRNA only targets MAERI, got %s", cfg.Controller)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Mapper{cfg: cfg, goal: goal}, nil
}

func ceilDiv(a, b int) int64 { return int64((a + b - 1) / b) }

func span(outTile, filterTile, stride int) int {
	if stride >= filterTile {
		return outTile * filterTile
	}
	return (outTile-1)*stride + filterTile
}

// EstimateConvCycles is the analytical cost model for a conv mapping: the
// same per-step accounting the simulator performs, under a full-tile
// approximation (edge tiles assumed full). It is exact when every tile
// divides its dimension.
func (m *Mapper) EstimateConvCycles(d tensor.ConvDims, t mapping.ConvMapping) (int64, error) {
	if err := t.Validate(d, m.cfg.MSSize); err != nil {
		return 0, err
	}
	dn, rn := int64(m.cfg.DNBandwidth), int64(m.cfg.RNBandwidth)
	vn := int64(t.VNSize())
	nv := int64(t.NumVNs())

	redTiles := ceilDiv(d.C/d.G, t.TC) * ceilDiv(d.R, t.TR) * ceilDiv(d.S, t.TS)
	kgTiles := ceilDiv(d.G, t.TG) * ceilDiv(d.N, t.TN) * ceilDiv(d.K/d.G, t.TK)
	weightCyclesPer := (vn*int64(t.TK)*int64(t.TG) + dn - 1) / dn

	stepsPerWT := ceilDiv(d.P(), t.TX) * ceilDiv(d.Q(), t.TY)
	inputs := int64(t.TN*t.TG*t.TC) * int64(span(t.TX, t.TR, d.StrideH)) * int64(span(t.TY, t.TS, d.StrideW))

	// First reduction tile: fresh outputs, no read-back. Remaining tiles
	// accumulate: with the buffer the collection bus carries a
	// read-modify-write per VN; without it the partial recirculates through
	// the distribution network.
	inFirst := (inputs + dn - 1) / dn
	drainFirst := (nv + rn - 1) / rn
	perStepFirst := max(inFirst, drainFirst, 1)
	inAcc, drainAcc := inFirst, drainFirst
	if m.cfg.AccumBuffer {
		drainAcc = (2*nv + rn - 1) / rn
	} else {
		inAcc = (inputs + nv + dn - 1) / dn
	}
	perStepAcc := max(inAcc, drainAcc, 1)
	perTileGroup := redTiles*weightCyclesPer + stepsPerWT*(perStepFirst+(redTiles-1)*perStepAcc)
	return kgTiles*perTileGroup + 8, nil
}

// EstimateFCCycles is the analytical cost model for an FC mapping: weights
// are single-use, so the T_S×T_K weight tile streams alongside the T_K
// inputs every step.
func (m *Mapper) EstimateFCCycles(batches, inNeurons, outNeurons int, t mapping.FCMapping) (int64, error) {
	if err := t.Validate(batches, inNeurons, outNeurons, m.cfg.MSSize); err != nil {
		return 0, err
	}
	dn, rn := int64(m.cfg.DNBandwidth), int64(m.cfg.RNBandwidth)
	nv := int64(t.TS * t.TN)
	elems := int64(t.TS*t.TK + t.TN*t.TK)
	redTiles := ceilDiv(inNeurons, t.TK)
	sTiles := ceilDiv(outNeurons, t.TS) * ceilDiv(batches, t.TN)

	inFirst := (elems + dn - 1) / dn
	drainFirst := (nv + rn - 1) / rn
	perStepFirst := max(inFirst, drainFirst, 1)
	inAcc, drainAcc := inFirst, drainFirst
	if m.cfg.AccumBuffer {
		drainAcc = (2*nv + rn - 1) / rn
	} else {
		inAcc = (elems + nv + dn - 1) / dn
	}
	perStepAcc := max(inAcc, drainAcc, 1)
	return sTiles*(perStepFirst+(redTiles-1)*perStepAcc) + 8, nil
}

// convCandidates enumerates a pruned tile set: full-or-unit filter tiles
// (mRNA maps whole filter rows/columns onto the ART), divisor/power-of-two
// channel and output tiles, bounded output-plane tiles.
func convCandidates(d tensor.ConvDims, msSize int) []mapping.ConvMapping {
	trOpts := uniqueInts([]int{1, d.R})
	tsOpts := uniqueInts([]int{1, d.S})
	tcOpts := divisorPow2(d.C/d.G, msSize)
	tkOpts := divisorPow2(d.K/d.G, msSize)
	tgOpts := []int{1}
	if d.G > 1 {
		tgOpts = divisorPow2(d.G, msSize)
	}
	txOpts := divisorPow2(d.P(), 16)
	tyOpts := divisorPow2(d.Q(), 16)
	var out []mapping.ConvMapping
	for _, tr := range trOpts {
		for _, ts := range tsOpts {
			for _, tc := range tcOpts {
				for _, tk := range tkOpts {
					for _, tg := range tgOpts {
						for _, tx := range txOpts {
							for _, ty := range tyOpts {
								m := mapping.ConvMapping{TR: tr, TS: ts, TC: tc, TK: tk, TG: tg, TN: 1, TX: tx, TY: ty}
								if m.Multipliers() <= msSize {
									out = append(out, m)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

func uniqueInts(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if v >= 1 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// divisorPow2 returns the divisors of dim and the powers of two, capped.
func divisorPow2(dim, cap int) []int {
	if cap > dim {
		cap = dim
	}
	set := map[int]bool{1: true}
	for v := 1; v*v <= dim; v++ {
		if dim%v == 0 {
			if v <= cap {
				set[v] = true
			}
			if dim/v <= cap {
				set[dim/v] = true
			}
		}
	}
	for v := 2; v <= cap; v *= 2 {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// MapConv returns mRNA's mapping for a convolution, with the predicted
// cycle count.
func (m *Mapper) MapConv(d tensor.ConvDims) (mapping.ConvMapping, int64, error) {
	if err := d.Resolve(); err != nil {
		return mapping.ConvMapping{}, 0, err
	}
	best := mapping.Basic()
	bestCost := int64(-1)
	var bestUtil float64 = -1
	for _, cand := range convCandidates(d, m.cfg.MSSize) {
		cycles, err := m.EstimateConvCycles(d, cand)
		if err != nil {
			continue
		}
		switch m.goal {
		case MinimizeCycles:
			if bestCost < 0 || cycles < bestCost || (cycles == bestCost && cand.Multipliers() > best.Multipliers()) {
				best, bestCost = cand, cycles
			}
		case MaximizeUtilization:
			util := float64(d.MACs()) / (float64(cycles) * float64(m.cfg.MSSize))
			if util > bestUtil {
				best, bestUtil, bestCost = cand, util, cycles
			}
		}
	}
	if bestCost < 0 {
		return mapping.ConvMapping{}, 0, fmt.Errorf("mrna: no feasible conv mapping for %d multipliers", m.cfg.MSSize)
	}
	return best, bestCost, nil
}

// MapFC returns mRNA's mapping for a fully connected layer, with the
// predicted cycle count. It exhaustively scores all T_S×T_K combinations
// that fit the array — cheap because the model is closed-form, which is
// exactly why "mRNA is more efficient, taking minutes rather than hours".
func (m *Mapper) MapFC(batches, inNeurons, outNeurons int) (mapping.FCMapping, int64, error) {
	if batches < 1 || inNeurons < 1 || outNeurons < 1 {
		return mapping.FCMapping{}, 0, fmt.Errorf("mrna: invalid dense geometry %d×%d→%d", batches, inNeurons, outNeurons)
	}
	best := mapping.BasicFC()
	bestCost := int64(-1)
	maxTS := min(m.cfg.MSSize, outNeurons)
	for ts := 1; ts <= maxTS; ts++ {
		maxTK := min(m.cfg.MSSize/ts, inNeurons)
		for tk := 1; tk <= maxTK; tk++ {
			cand := mapping.FCMapping{TS: ts, TK: tk, TN: 1}
			cycles, err := m.EstimateFCCycles(batches, inNeurons, outNeurons, cand)
			if err != nil {
				continue
			}
			if bestCost < 0 || cycles < bestCost || (cycles == bestCost && cand.Multipliers() > best.Multipliers()) {
				best, bestCost = cand, cycles
			}
		}
	}
	if bestCost < 0 {
		return mapping.FCMapping{}, 0, fmt.Errorf("mrna: no feasible FC mapping for %d multipliers", m.cfg.MSSize)
	}
	return best, bestCost, nil
}
