package mrna

import (
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

func newMapper(t *testing.T) *Mapper {
	t.Helper()
	m, err := NewMapper(config.Default(config.MAERIDenseWorkload), MinimizeCycles)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMapperRejectsNonMAERI(t *testing.T) {
	if _, err := NewMapper(config.Default(config.SIGMASparseGEMM), MinimizeCycles); err == nil {
		t.Fatal("SIGMA must be rejected: mRNA is MAERI-specific")
	}
	bad := config.Default(config.MAERIDenseWorkload)
	bad.MSSize = 9
	if _, err := NewMapper(bad, MinimizeCycles); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestMapFCUsesSpatialReduction(t *testing.T) {
	m := newMapper(t)
	// AlexNet FC layers (Table VI): mRNA mappings vary per layer and always
	// use T_K > 1 (spatial reduction), unlike the psum-tuned AutoTVM ones.
	for _, layer := range []struct{ k, s int }{{9216, 4096}, {4096, 4096}, {4096, 1000}} {
		fc, cycles, err := m.MapFC(1, layer.k, layer.s)
		if err != nil {
			t.Fatal(err)
		}
		if fc.TK <= 1 {
			t.Fatalf("K=%d: mRNA should use spatial reduction, got %s", layer.k, fc)
		}
		if fc.TS <= 1 {
			t.Fatalf("K=%d: mRNA should parallelise output neurons, got %s", layer.k, fc)
		}
		if fc.Multipliers() > 128 {
			t.Fatalf("mapping %s exceeds the array", fc)
		}
		if cycles <= 0 {
			t.Fatal("no cycle estimate")
		}
	}
}

func TestMapFCBeatsAutoTVMStyleMapping(t *testing.T) {
	// The Figure 12b claim: the mRNA mapping needs far fewer cycles than the
	// psum-tuned (T_S=20, T_K=1) mapping — the paper reports 67% fewer.
	m := newMapper(t)
	cfg := config.Default(config.MAERIDenseWorkload)
	eng, err := maeri.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.DryRun = true
	in := tensor.New(1, 1024)
	w := tensor.New(512, 1024)
	fc, _, err := m.MapFC(1, 1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	_, mrnaStats, err := eng.Dense(in, w, fc)
	if err != nil {
		t.Fatal(err)
	}
	_, autotvmStats, err := eng.Dense(in, w, mapping.FCMapping{TS: 20, TK: 1, TN: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mrnaStats.Cycles) / float64(autotvmStats.Cycles)
	if ratio > 0.7 {
		t.Fatalf("mRNA/AutoTVM cycle ratio = %.2f, want well below 1 (paper: ≈0.33)", ratio)
	}
}

func TestEstimateFCCyclesTracksSimulation(t *testing.T) {
	// The analytical model must rank mappings like the simulator does and be
	// exact for divisor tiles.
	m := newMapper(t)
	cfg := config.Default(config.MAERIDenseWorkload)
	eng, err := maeri.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.DryRun = true
	in := tensor.New(1, 256)
	w := tensor.New(128, 256)
	for _, fc := range []mapping.FCMapping{
		{TS: 16, TK: 8, TN: 1},
		{TS: 8, TK: 16, TN: 1},
		{TS: 4, TK: 4, TN: 1},
		{TS: 20, TK: 1, TN: 1},
	} {
		est, err := m.EstimateFCCycles(1, 256, 128, fc)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := eng.Dense(in, w, fc)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(est) / float64(st.Cycles)
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("mapping %s: estimate %d vs simulated %d (ratio %.2f)", fc, est, st.Cycles, ratio)
		}
	}
}

func TestMapConvBeatsBasic(t *testing.T) {
	m := newMapper(t)
	d := tensor.ConvDims{N: 1, C: 16, H: 16, W: 16, K: 32, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	conv, est, err := m.MapConv(d)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Multipliers() > 128 {
		t.Fatalf("mapping %s exceeds the array", conv)
	}
	cfg := config.Default(config.MAERIDenseWorkload)
	eng, err := maeri.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.DryRun = true
	_, mrnaStats, err := eng.Conv2D(nil, nil, d, conv)
	if err != nil {
		t.Fatal(err)
	}
	_, basicStats, err := eng.Conv2D(nil, nil, d, mapping.Basic())
	if err != nil {
		t.Fatal(err)
	}
	if mrnaStats.Cycles*10 > basicStats.Cycles {
		t.Fatalf("mRNA conv mapping (%d cycles) should be ≥10× faster than basic (%d)", mrnaStats.Cycles, basicStats.Cycles)
	}
	// Estimate must be in the simulator's ballpark.
	ratio := float64(est) / float64(mrnaStats.Cycles)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("conv estimate %d vs simulated %d (ratio %.2f)", est, mrnaStats.Cycles, ratio)
	}
}

func TestMapConvGrouped(t *testing.T) {
	m := newMapper(t)
	d := tensor.ConvDims{N: 1, C: 8, H: 13, W: 13, K: 16, R: 3, S: 3, G: 2, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	conv, _, err := m.MapConv(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := conv.Validate(d, 128); err != nil {
		t.Fatalf("mRNA produced an invalid mapping: %v", err)
	}
}

func TestMapConvSmallArray(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	cfg.MSSize = 8
	m, err := NewMapper(cfg, MinimizeCycles)
	if err != nil {
		t.Fatal(err)
	}
	d := tensor.ConvDims{N: 1, C: 2, H: 10, W: 10, K: 4, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	conv, _, err := m.MapConv(d)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Multipliers() > 8 {
		t.Fatalf("mapping %s exceeds an 8-multiplier array", conv)
	}
}

func TestUtilizationGoal(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	m, err := NewMapper(cfg, MaximizeUtilization)
	if err != nil {
		t.Fatal(err)
	}
	d := tensor.ConvDims{N: 1, C: 16, H: 16, W: 16, K: 32, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	conv, _, err := m.MapConv(d)
	if err != nil {
		t.Fatal(err)
	}
	// A utilisation-optimal mapping should occupy a large part of the array.
	if conv.Multipliers() < 64 {
		t.Fatalf("utilisation goal picked only %d multipliers", conv.Multipliers())
	}
}

func TestMapFCValidation(t *testing.T) {
	m := newMapper(t)
	if _, _, err := m.MapFC(0, 10, 10); err == nil {
		t.Fatal("invalid geometry must be rejected")
	}
}
