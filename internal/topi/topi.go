// Package topi is the Go equivalent of TVM's Tensor Operator Inventory: the
// CPU reference implementations of every operator the graph executor may
// encounter. Layers not offloaded to a simulated accelerator run here, and
// simulator outputs are verified against these implementations — the same
// role TVM codegen plays for Bifrost ("DNN layers not accelerated ... are
// executed using an implementation from TVM, which allows end-to-end
// evaluation and easy verification of correctness").
package topi

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Conv2DNCHW computes a 2-D convolution for an NCHW input and KCRS kernel
// via im2col + GEMM, handling groups, stride, padding and dilation.
func Conv2DNCHW(in, kernel *tensor.Tensor, d tensor.ConvDims) (*tensor.Tensor, error) {
	if err := d.Resolve(); err != nil {
		return nil, err
	}
	if !tensor.ShapeEq(in.Shape(), []int{d.N, d.C, d.H, d.W}) {
		return nil, fmt.Errorf("topi: input shape %v does not match dims NCHW=[%d %d %d %d]", in.Shape(), d.N, d.C, d.H, d.W)
	}
	if !tensor.ShapeEq(kernel.Shape(), []int{d.K, d.C / d.G, d.R, d.S}) {
		return nil, fmt.Errorf("topi: kernel shape %v does not match dims KCRS=[%d %d %d %d]", kernel.Shape(), d.K, d.C/d.G, d.R, d.S)
	}
	p, q := d.P(), d.Q()
	out := tensor.New(d.N, d.K, p, q)
	kg := d.K / d.G
	for g := 0; g < d.G; g++ {
		cols := tensor.Im2Col(in, d, g)
		km := groupKernelMatrix(kernel, d, g)
		prod := tensor.GEMM(km, cols) // kg × (N·P·Q)
		for k := 0; k < kg; k++ {
			for n := 0; n < d.N; n++ {
				for y := 0; y < p; y++ {
					for x := 0; x < q; x++ {
						out.Set(prod.At(k, (n*p+y)*q+x), n, g*kg+k, y, x)
					}
				}
			}
		}
	}
	return out, nil
}

// groupKernelMatrix flattens the kernels of group g. The kernel tensor is
// stored as [K, C/G, R, S]; group g owns output channels [g·K/G, (g+1)·K/G).
func groupKernelMatrix(kernel *tensor.Tensor, d tensor.ConvDims, g int) *tensor.Tensor {
	kg := d.K / d.G
	cg := d.C / d.G
	out := tensor.New(kg, cg*d.R*d.S)
	for k := 0; k < kg; k++ {
		for c := 0; c < cg; c++ {
			for r := 0; r < d.R; r++ {
				for s := 0; s < d.S; s++ {
					out.Set(kernel.At(g*kg+k, c, r, s), k, (c*d.R+r)*d.S+s)
				}
			}
		}
	}
	return out
}

// Conv2DNHWC computes a 2-D convolution for an NHWC input and RSCK kernel.
// It is implemented by converting to the NCHW path, which keeps a single
// verified arithmetic kernel; the layouts only affect memory order.
func Conv2DNHWC(in, kernel *tensor.Tensor, d tensor.ConvDims) (*tensor.Tensor, error) {
	nchwIn := tensor.NHWCToNCHW(in)
	kcrs := tensor.RSCKToKCRS(kernel)
	out, err := Conv2DNCHW(nchwIn, kcrs, d)
	if err != nil {
		return nil, err
	}
	return tensor.NCHWToNHWC(out), nil
}

// Dense computes out = in × Wᵀ for in of shape [N, K] and weights of shape
// [S, K] (S output neurons), the layout used by PyTorch's nn.Linear.
func Dense(in, weights *tensor.Tensor) (*tensor.Tensor, error) {
	if in.Rank() != 2 || weights.Rank() != 2 {
		return nil, fmt.Errorf("topi: dense requires 2-D input and weights, got %v, %v", in.Shape(), weights.Shape())
	}
	if in.Dim(1) != weights.Dim(1) {
		return nil, fmt.Errorf("topi: dense reduction mismatch: input %v vs weights %v", in.Shape(), weights.Shape())
	}
	return tensor.GEMM(in, weights.Transpose(1, 0)), nil
}

// BiasAdd adds a per-channel bias. For rank-4 tensors the channel axis is 1
// (NCHW); for rank-2 tensors it is the last axis.
func BiasAdd(in, bias *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	switch in.Rank() {
	case 4:
		n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
		if bias.Size() != c {
			return nil, fmt.Errorf("topi: bias size %d does not match channels %d", bias.Size(), c)
		}
		for in4 := 0; in4 < n; in4++ {
			for ic := 0; ic < c; ic++ {
				b := bias.Data()[ic]
				base := (in4*c + ic) * h * w
				for i := 0; i < h*w; i++ {
					out.Data()[base+i] += b
				}
			}
		}
	case 2:
		n, c := in.Dim(0), in.Dim(1)
		if bias.Size() != c {
			return nil, fmt.Errorf("topi: bias size %d does not match features %d", bias.Size(), c)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < c; j++ {
				out.Data()[i*c+j] += bias.Data()[j]
			}
		}
	default:
		return nil, fmt.Errorf("topi: bias_add unsupported for rank %d", in.Rank())
	}
	return out, nil
}

// ReLU applies max(0, x) element-wise.
func ReLU(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	for i, v := range out.Data() {
		if v < 0 {
			out.Data()[i] = 0
		}
	}
	return out
}

// Sigmoid applies 1/(1+e^-x) element-wise.
func Sigmoid(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	for i, v := range out.Data() {
		out.Data()[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

// Tanh applies tanh element-wise.
func Tanh(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	for i, v := range out.Data() {
		out.Data()[i] = float32(math.Tanh(float64(v)))
	}
	return out
}

// PoolKind selects max or average pooling.
type PoolKind int

// Pooling kinds.
const (
	MaxPool PoolKind = iota
	AvgPool
)

// Pool2D applies 2-D pooling over an NCHW tensor.
func Pool2D(in *tensor.Tensor, kind PoolKind, kernel, stride, pad int) (*tensor.Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("topi: pool2d requires NCHW input, got %v", in.Shape())
	}
	if kernel <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("topi: invalid pool params kernel=%d stride=%d pad=%d", kernel, stride, pad)
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	p := (h+2*pad-kernel)/stride + 1
	q := (w+2*pad-kernel)/stride + 1
	if p <= 0 || q <= 0 {
		return nil, fmt.Errorf("topi: pool output would be empty")
	}
	out := tensor.New(n, c, p, q)
	for in4 := 0; in4 < n; in4++ {
		for ic := 0; ic < c; ic++ {
			for y := 0; y < p; y++ {
				for x := 0; x < q; x++ {
					var acc float64
					count := 0
					best := math.Inf(-1)
					for ky := 0; ky < kernel; ky++ {
						for kx := 0; kx < kernel; kx++ {
							iy := y*stride - pad + ky
							ix := x*stride - pad + kx
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							v := float64(in.At(in4, ic, iy, ix))
							acc += v
							count++
							if v > best {
								best = v
							}
						}
					}
					var v float64
					if kind == MaxPool {
						if count == 0 {
							best = 0
						}
						v = best
					} else {
						if count > 0 {
							v = acc / float64(count)
						}
					}
					out.Set(float32(v), in4, ic, y, x)
				}
			}
		}
	}
	return out, nil
}

// Softmax applies a numerically stable softmax over the last axis.
func Softmax(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	last := in.Dim(in.Rank() - 1)
	rows := in.Size() / last
	for r := 0; r < rows; r++ {
		row := out.Data()[r*last : (r+1)*last]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxV))
			row[i] = float32(e)
			sum += e
		}
		for i := range row {
			row[i] = float32(float64(row[i]) / sum)
		}
	}
	return out
}

// LRN applies AlexNet-style local response normalisation across channels:
// b[c] = a[c] / (k + alpha/size · Σ a[c']²)^beta over a window of `size`
// channels centred at c.
func LRN(in *tensor.Tensor, size int, alpha, beta, k float64) (*tensor.Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("topi: lrn requires NCHW input, got %v", in.Shape())
	}
	if size <= 0 {
		return nil, fmt.Errorf("topi: lrn size must be positive")
	}
	n, c, h, w := in.Dim(0), in.Dim(1), in.Dim(2), in.Dim(3)
	out := tensor.New(n, c, h, w)
	half := size / 2
	for in4 := 0; in4 < n; in4++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for ic := 0; ic < c; ic++ {
					var sq float64
					for j := max(0, ic-half); j <= min(c-1, ic+half); j++ {
						v := float64(in.At(in4, j, y, x))
						sq += v * v
					}
					denom := math.Pow(k+alpha/float64(size)*sq, beta)
					out.Set(float32(float64(in.At(in4, ic, y, x))/denom), in4, ic, y, x)
				}
			}
		}
	}
	return out, nil
}

// Flatten collapses all dimensions after the first into one.
func Flatten(in *tensor.Tensor) *tensor.Tensor {
	if in.Rank() < 2 {
		return in.Clone()
	}
	rest := in.Size() / in.Dim(0)
	return in.Clone().Reshape(in.Dim(0), rest)
}

// Add computes element-wise addition of equally shaped tensors.
func Add(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if !tensor.ShapeEq(a.Shape(), b.Shape()) {
		return nil, fmt.Errorf("topi: add shape mismatch %v vs %v", a.Shape(), b.Shape())
	}
	out := a.Clone()
	for i, v := range b.Data() {
		out.Data()[i] += v
	}
	return out, nil
}

// BatchNormInference applies y = gamma·(x-mean)/sqrt(var+eps) + beta per
// channel of an NCHW tensor.
func BatchNormInference(in, gamma, beta, mean, variance *tensor.Tensor, eps float64) (*tensor.Tensor, error) {
	if in.Rank() != 4 {
		return nil, fmt.Errorf("topi: batch_norm requires NCHW input, got %v", in.Shape())
	}
	c := in.Dim(1)
	for _, p := range []*tensor.Tensor{gamma, beta, mean, variance} {
		if p.Size() != c {
			return nil, fmt.Errorf("topi: batch_norm parameter size %d does not match channels %d", p.Size(), c)
		}
	}
	out := in.Clone()
	n, h, w := in.Dim(0), in.Dim(2), in.Dim(3)
	for in4 := 0; in4 < n; in4++ {
		for ic := 0; ic < c; ic++ {
			scale := float64(gamma.Data()[ic]) / math.Sqrt(float64(variance.Data()[ic])+eps)
			shift := float64(beta.Data()[ic]) - scale*float64(mean.Data()[ic])
			base := (in4*c + ic) * h * w
			for i := 0; i < h*w; i++ {
				out.Data()[base+i] = float32(scale*float64(out.Data()[base+i]) + shift)
			}
		}
	}
	return out, nil
}
