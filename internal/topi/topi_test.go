package topi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestConv2DNCHWKnownValues(t *testing.T) {
	// 1×1×3×3 input, 1×1×2×2 kernel of ones: each output is the window sum.
	in := tensor.FromData([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	k := tensor.FromData([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	d := tensor.ConvDims{N: 1, C: 1, H: 3, W: 3, K: 1, R: 2, S: 2}
	out, err := Conv2DNCHW(in, k, d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 16, 24, 28}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConv2DNCHWStridePad(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	k := tensor.FromData([]float32{1}, 1, 1, 1, 1)
	d := tensor.ConvDims{N: 1, C: 1, H: 2, W: 2, K: 1, R: 1, S: 1, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	out, err := Conv2DNCHW(in, k, d)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(out.Shape(), []int{1, 1, 2, 2}) {
		t.Fatalf("shape = %v", out.Shape())
	}
	// Padded corners hit zeros except the centre elements.
	want := []float32{0, 0, 0, 4}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConv2DShapeValidation(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 2, H: 4, W: 4, K: 3, R: 2, S: 2}
	if _, err := Conv2DNCHW(tensor.New(1, 1, 4, 4), tensor.New(3, 2, 2, 2), d); err == nil {
		t.Fatal("wrong input shape must error")
	}
	if _, err := Conv2DNCHW(tensor.New(1, 2, 4, 4), tensor.New(3, 1, 2, 2), d); err == nil {
		t.Fatal("wrong kernel shape must error")
	}
}

func TestConv2DGroupedEqualsPerGroupConv(t *testing.T) {
	// A grouped conv must equal running each group as an independent conv.
	d := tensor.ConvDims{N: 1, C: 4, H: 5, W: 5, K: 6, R: 3, S: 3, G: 2}
	in := tensor.RandomUniform(1, 1, 1, 4, 5, 5)
	ker := tensor.RandomUniform(2, 1, 6, 2, 3, 3)
	out, err := Conv2DNCHW(in, ker, d)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		sub := tensor.New(1, 2, 5, 5)
		for c := 0; c < 2; c++ {
			for y := 0; y < 5; y++ {
				for x := 0; x < 5; x++ {
					sub.Set(in.At(0, g*2+c, y, x), 0, c, y, x)
				}
			}
		}
		kSub := tensor.New(3, 2, 3, 3)
		for k := 0; k < 3; k++ {
			for c := 0; c < 2; c++ {
				for r := 0; r < 3; r++ {
					for s := 0; s < 3; s++ {
						kSub.Set(ker.At(g*3+k, c, r, s), k, c, r, s)
					}
				}
			}
		}
		dg := tensor.ConvDims{N: 1, C: 2, H: 5, W: 5, K: 3, R: 3, S: 3}
		want, err := Conv2DNCHW(sub, kSub, dg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			for y := 0; y < want.Dim(2); y++ {
				for x := 0; x < want.Dim(3); x++ {
					if math.Abs(float64(out.At(0, g*3+k, y, x)-want.At(0, k, y, x))) > 1e-4 {
						t.Fatalf("group %d mismatch at k=%d y=%d x=%d", g, k, y, x)
					}
				}
			}
		}
	}
}

func TestConv2DNHWCMatchesNCHW(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := tensor.ConvDims{
			N: 1, C: 1 + rng.Intn(3), H: 4 + rng.Intn(5), W: 4 + rng.Intn(5),
			K: 1 + rng.Intn(4), R: 1 + rng.Intn(3), S: 1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2), StrideW: 1 + rng.Intn(2), PadH: rng.Intn(2), PadW: rng.Intn(2),
		}
		if err := d.Resolve(); err != nil {
			return true
		}
		in := tensor.RandomUniform(seed, 1, d.N, d.C, d.H, d.W)
		ker := tensor.RandomUniform(seed+1, 1, d.K, d.C, d.R, d.S)
		a, err := Conv2DNCHW(in, ker, d)
		if err != nil {
			return false
		}
		b, err := Conv2DNHWC(tensor.NCHWToNHWC(in), tensor.KCRSToRSCK(ker), d)
		if err != nil {
			return false
		}
		return tensor.AllClose(a, tensor.NHWCToNCHW(b), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseKnownValues(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3}, 1, 3)
	w := tensor.FromData([]float32{1, 0, 0, 0, 1, 1}, 2, 3)
	out, err := Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 1 || out.At(0, 1) != 5 {
		t.Fatalf("dense = %v", out.Data())
	}
}

func TestDenseValidation(t *testing.T) {
	if _, err := Dense(tensor.New(1, 3), tensor.New(2, 4)); err == nil {
		t.Fatal("reduction mismatch must error")
	}
	if _, err := Dense(tensor.New(3), tensor.New(2, 3)); err == nil {
		t.Fatal("rank mismatch must error")
	}
}

func TestBiasAdd4D(t *testing.T) {
	in := tensor.New(1, 2, 2, 2)
	bias := tensor.FromData([]float32{10, 20}, 2)
	out, err := BiasAdd(in, bias)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 1, 1) != 10 || out.At(0, 1, 0, 0) != 20 {
		t.Fatalf("bias_add = %v", out.Data())
	}
}

func TestBiasAdd2D(t *testing.T) {
	in := tensor.New(2, 3)
	bias := tensor.FromData([]float32{1, 2, 3}, 3)
	out, err := BiasAdd(in, bias)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(1, 2) != 3 || out.At(0, 0) != 1 {
		t.Fatalf("bias_add = %v", out.Data())
	}
}

func TestBiasAddSizeMismatch(t *testing.T) {
	if _, err := BiasAdd(tensor.New(1, 2, 2, 2), tensor.New(3)); err == nil {
		t.Fatal("bias size mismatch must error")
	}
	if _, err := BiasAdd(tensor.New(2), tensor.New(2)); err == nil {
		t.Fatal("rank-1 input must error")
	}
}

func TestReLU(t *testing.T) {
	in := tensor.FromData([]float32{-1, 0, 2}, 3)
	out := ReLU(in)
	if out.At(0) != 0 || out.At(1) != 0 || out.At(2) != 2 {
		t.Fatalf("relu = %v", out.Data())
	}
	if in.At(0) != -1 {
		t.Fatal("relu must not mutate input")
	}
}

func TestSigmoidTanhRange(t *testing.T) {
	in := tensor.RandomUniform(1, 10, 100)
	for _, v := range Sigmoid(in).Data() {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid out of range: %v", v)
		}
	}
	for _, v := range Tanh(in).Data() {
		if v < -1 || v > 1 {
			t.Fatalf("tanh out of range: %v", v)
		}
	}
}

func TestMaxPool(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 1, 4, 4)
	out, err := Pool2D(in, MaxPool, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("maxpool[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestAvgPool(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out, err := Pool2D(in, AvgPool, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 2.5 {
		t.Fatalf("avgpool = %v", out.Data())
	}
}

func TestPoolOverlapping(t *testing.T) {
	// AlexNet uses 3×3 pooling with stride 2 (overlapping).
	in := tensor.RandomUniform(5, 1, 1, 1, 7, 7)
	out, err := Pool2D(in, MaxPool, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(out.Shape(), []int{1, 1, 3, 3}) {
		t.Fatalf("shape = %v", out.Shape())
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := Pool2D(tensor.New(2, 2), MaxPool, 2, 2, 0); err == nil {
		t.Fatal("rank-2 input must error")
	}
	if _, err := Pool2D(tensor.New(1, 1, 4, 4), MaxPool, 0, 2, 0); err == nil {
		t.Fatal("zero kernel must error")
	}
	if _, err := Pool2D(tensor.New(1, 1, 2, 2), MaxPool, 5, 1, 0); err == nil {
		t.Fatal("empty output must error")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		in := tensor.RandomUniform(seed, 5, 3, 7)
		out := Softmax(in)
		for r := 0; r < 3; r++ {
			var sum float64
			for c := 0; c < 7; c++ {
				v := float64(out.At(r, c))
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	in := tensor.FromData([]float32{1000, 1001}, 1, 2)
	out := Softmax(in)
	if math.IsNaN(float64(out.At(0, 0))) || math.IsInf(float64(out.At(0, 1)), 0) {
		t.Fatalf("softmax unstable: %v", out.Data())
	}
}

func TestLRNIdentityWhenAlphaZero(t *testing.T) {
	in := tensor.RandomUniform(2, 1, 1, 4, 3, 3)
	out, err := LRN(in, 5, 0, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(in, out) > 1e-6 {
		t.Fatal("alpha=0, k=1 LRN must be identity")
	}
}

func TestLRNReducesMagnitude(t *testing.T) {
	in := tensor.New(1, 3, 1, 1)
	in.Fill(2)
	out, err := LRN(in, 3, 1, 0.75, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if out.At(0, c, 0, 0) >= in.At(0, c, 0, 0) {
			t.Fatal("LRN with positive alpha must shrink values here")
		}
	}
}

func TestLRNValidation(t *testing.T) {
	if _, err := LRN(tensor.New(2, 2), 5, 1e-4, 0.75, 2); err == nil {
		t.Fatal("rank-2 input must error")
	}
	if _, err := LRN(tensor.New(1, 1, 2, 2), 0, 1e-4, 0.75, 2); err == nil {
		t.Fatal("size 0 must error")
	}
}

func TestFlatten(t *testing.T) {
	in := tensor.New(2, 3, 4)
	out := Flatten(in)
	if !tensor.ShapeEq(out.Shape(), []int{2, 12}) {
		t.Fatalf("shape = %v", out.Shape())
	}
}

func TestAdd(t *testing.T) {
	a := tensor.FromData([]float32{1, 2}, 2)
	b := tensor.FromData([]float32{3, 4}, 2)
	out, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0) != 4 || out.At(1) != 6 {
		t.Fatalf("add = %v", out.Data())
	}
	if _, err := Add(a, tensor.New(3)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestBatchNormInference(t *testing.T) {
	in := tensor.FromData([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	gamma := tensor.FromData([]float32{2}, 1)
	beta := tensor.FromData([]float32{1}, 1)
	mean := tensor.FromData([]float32{2}, 1)
	variance := tensor.FromData([]float32{4}, 1)
	out, err := BatchNormInference(in, gamma, beta, mean, variance, 0)
	if err != nil {
		t.Fatal(err)
	}
	// y = 2*(x-2)/2 + 1 = x - 1
	want := []float32{0, 1, 2, 3}
	for i, v := range out.Data() {
		if math.Abs(float64(v-want[i])) > 1e-5 {
			t.Fatalf("bn[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestBatchNormValidation(t *testing.T) {
	p1 := tensor.New(1)
	p2 := tensor.New(2)
	if _, err := BatchNormInference(tensor.New(2, 2), p1, p1, p1, p1, 1e-5); err == nil {
		t.Fatal("rank-2 input must error")
	}
	if _, err := BatchNormInference(tensor.New(1, 1, 2, 2), p2, p1, p1, p1, 1e-5); err == nil {
		t.Fatal("parameter size mismatch must error")
	}
}
