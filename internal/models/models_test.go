package models

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestAlexNetShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("building full AlexNet weights takes ~0.5s")
	}
	g := AlexNet(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(g.Outputs[0].OutShape, []int{1, 1000}) {
		t.Fatalf("AlexNet output shape = %v, want [1 1000]", g.Outputs[0].OutShape)
	}
	// Spot-check canonical intermediate shapes.
	want := map[string][]int{
		"conv1":   {1, 96, 55, 55},
		"pool1":   {1, 96, 27, 27},
		"conv2":   {1, 256, 27, 27},
		"pool2":   {1, 256, 13, 13},
		"conv3":   {1, 384, 13, 13},
		"conv4":   {1, 384, 13, 13},
		"conv5":   {1, 256, 13, 13},
		"pool5":   {1, 256, 6, 6},
		"flatten": {1, 9216},
		"fc6":     {1, 4096},
		"fc7":     {1, 4096},
		"fc8":     {1, 1000},
	}
	for _, n := range g.Nodes() {
		if w, ok := want[n.Name]; ok {
			if !tensor.ShapeEq(n.OutShape, w) {
				t.Fatalf("node %q shape = %v, want %v", n.Name, n.OutShape, w)
			}
		}
	}
}

func TestAlexNetLayersMatchPaper(t *testing.T) {
	layers := AlexNetLayers()
	if len(layers) != 8 {
		t.Fatalf("AlexNet has %d offloadable layers, want 8", len(layers))
	}
	// 5 convs then 3 FCs (the per-layer workloads of Figs 9, 11, 12).
	for i, l := range layers[:5] {
		if l.Op != graph.OpConv2D {
			t.Fatalf("layer %d should be conv, got %s", i, l.Op)
		}
	}
	for i, l := range layers[5:] {
		if l.Op != graph.OpDense {
			t.Fatalf("fc layer %d should be dense, got %s", i, l.Op)
		}
	}
	if layers[0].Conv.P() != 55 {
		t.Fatalf("conv1 P = %d, want 55", layers[0].Conv.P())
	}
	if layers[5].K != 9216 || layers[5].N != 4096 {
		t.Fatalf("fc1 = %dx%d, want 9216x4096", layers[5].K, layers[5].N)
	}
	// MAC counts: conv layers dominate; fc1 is the largest dense layer.
	if layers[0].MACs() != int64(96*55*55*11*11*3) {
		t.Fatalf("conv1 MACs = %d", layers[0].MACs())
	}
	if layers[5].MACs() != int64(9216*4096) {
		t.Fatalf("fc1 MACs = %d", layers[5].MACs())
	}
}

func TestAlexNetLayersMatchExtraction(t *testing.T) {
	if testing.Short() {
		t.Skip("building full AlexNet weights takes ~1.2s")
	}
	// The hand-written layer table must agree with what ExtractLayers pulls
	// out of the actual AlexNet graph.
	g := AlexNet(3)
	extracted, err := ExtractLayers(g)
	if err != nil {
		t.Fatal(err)
	}
	table := AlexNetLayers()
	if len(extracted) != len(table) {
		t.Fatalf("extracted %d layers, table has %d", len(extracted), len(table))
	}
	for i := range table {
		e, w := extracted[i], table[i]
		if e.Op != w.Op {
			t.Fatalf("layer %d op %s != %s", i, e.Op, w.Op)
		}
		if e.MACs() != w.MACs() {
			t.Fatalf("layer %d (%s) MACs %d != %d", i, w.Name, e.MACs(), w.MACs())
		}
	}
}

func TestAlexNetMiniLayersShape(t *testing.T) {
	layers := AlexNetMiniLayers()
	if len(layers) != 8 {
		t.Fatalf("mini AlexNet has %d layers, want 8", len(layers))
	}
	full := AlexNetLayers()
	for i := range layers {
		if layers[i].Op != full[i].Op {
			t.Fatalf("mini layer %d op mismatch", i)
		}
		if layers[i].MACs() >= full[i].MACs() {
			t.Fatalf("mini layer %d must be smaller than full", i)
		}
	}
	// Kernel geometry preserved.
	for i := 0; i < 5; i++ {
		if layers[i].Conv.R != full[i].Conv.R || layers[i].Conv.StrideH != full[i].Conv.StrideH {
			t.Fatalf("mini conv%d must keep kernel size and stride", i+1)
		}
	}
}

func TestLeNet5Runs(t *testing.T) {
	g := LeNet5(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ex := &graph.Executor{Graph: g}
	outs, err := ex.Run(map[string]*tensor.Tensor{"data": tensor.RandomUniform(1, 1, 1, 1, 28, 28)})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(outs[0].Shape(), []int{1, 10}) {
		t.Fatalf("LeNet output = %v", outs[0].Shape())
	}
}

func TestMLPRuns(t *testing.T) {
	g := MLP(1, 16, 32, 4)
	ex := &graph.Executor{Graph: g}
	outs, err := ex.Run(map[string]*tensor.Tensor{"data": tensor.RandomUniform(1, 1, 1, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(outs[0].Shape(), []int{1, 4}) {
		t.Fatalf("MLP output = %v", outs[0].Shape())
	}
}

func TestTinyCNNRuns(t *testing.T) {
	g := TinyCNN(1)
	ex := &graph.Executor{Graph: g}
	outs, err := ex.Run(map[string]*tensor.Tensor{"data": tensor.RandomUniform(1, 1, 1, 2, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(outs[0].Shape(), []int{1, 8}) {
		t.Fatalf("TinyCNN output = %v", outs[0].Shape())
	}
}

func TestExtractLayersLeNet(t *testing.T) {
	layers, err := ExtractLayers(LeNet5(1))
	if err != nil {
		t.Fatal(err)
	}
	// 2 convs + 3 dense.
	convs, denses := 0, 0
	for _, l := range layers {
		switch l.Op {
		case graph.OpConv2D:
			convs++
		case graph.OpDense:
			denses++
		}
	}
	if convs != 2 || denses != 3 {
		t.Fatalf("LeNet layers: %d convs, %d denses", convs, denses)
	}
}

func TestLayerSpecString(t *testing.T) {
	layers := AlexNetLayers()
	if s := layers[0].String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := layers[5].String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestWeightsDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("building full AlexNet weights twice takes ~2.5s")
	}
	a, b := AlexNet(5), AlexNet(5)
	var wa, wb *tensor.Tensor
	for _, n := range a.Nodes() {
		if n.Name == "conv1.weight" {
			wa = n.Value
		}
	}
	for _, n := range b.Nodes() {
		if n.Name == "conv1.weight" {
			wb = n.Value
		}
	}
	if wa == nil || wb == nil {
		t.Fatal("conv1.weight not found")
	}
	if tensor.MaxAbsDiff(wa, wb) != 0 {
		t.Fatal("same seed must give identical weights")
	}
}

func TestMiniResNetRuns(t *testing.T) {
	g := MiniResNet(1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ex := &graph.Executor{Graph: g}
	outs, err := ex.Run(map[string]*tensor.Tensor{"data": tensor.RandomUniform(1, 1, 1, 8, 16, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(outs[0].Shape(), []int{1, 10}) {
		t.Fatalf("MiniResNet output = %v", outs[0].Shape())
	}
}
