// Package models provides the model zoo used throughout the evaluation. The
// centrepiece is AlexNet with the exact layer geometry of Krizhevsky et al.
// (the paper's benchmark workload); LeNet-5, a two-layer MLP and a tiny CNN
// round out the zoo for tests and examples. Weights are seeded random —
// cycle counts depend only on layer geometry and (for SIGMA) on sparsity,
// which is applied by magnitude pruning.
package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// LayerSpec describes a single offloadable layer extracted from a model, the
// unit of per-layer benchmarking in §VIII of the paper.
type LayerSpec struct {
	Name string
	Op   graph.OpKind // OpConv2D or OpDense

	// Conv geometry (valid when Op == OpConv2D).
	Conv tensor.ConvDims

	// Dense geometry (valid when Op == OpDense): M batches, K input
	// neurons, N output neurons.
	M, K, N int
}

// MACs returns the layer's multiply-accumulate count.
func (l LayerSpec) MACs() int64 {
	if l.Op == graph.OpConv2D {
		return l.Conv.MACs()
	}
	return int64(l.M) * int64(l.K) * int64(l.N)
}

// String renders a compact description for reports.
func (l LayerSpec) String() string {
	if l.Op == graph.OpConv2D {
		c := l.Conv
		return fmt.Sprintf("%s conv K=%d C=%d %dx%d/%d HW=%dx%d G=%d", l.Name, c.K, c.C, c.R, c.S, c.StrideH, c.H, c.W, c.G)
	}
	return fmt.Sprintf("%s dense %dx%d->%d", l.Name, l.M, l.K, l.N)
}

// AlexNet builds the canonical AlexNet inference graph (batch 1, 227×227
// input, grouped conv2/4/5 as in the original two-GPU layout). Weight
// tensors are seeded from `seed`.
func AlexNet(seed int64) *graph.Graph {
	g := graph.New("alexnet")
	x := g.Input("data", 1, 3, 227, 227)

	conv := func(name string, x *graph.Node, k, c, r, stride, pad, groups int, s int64) *graph.Node {
		w := g.Constant(name+".weight", tensor.RandomNormal(s, 0.05, k, c/groups, r, r))
		b := g.Constant(name+".bias", tensor.RandomNormal(s+1, 0.05, k))
		y := g.Conv2D(name, x, w, graph.Attrs{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad, Groups: groups})
		return g.ReLU(name+".relu", g.BiasAdd(name+".biasadd", y, b))
	}
	dense := func(name string, x *graph.Node, in, out int, s int64) *graph.Node {
		w := g.Constant(name+".weight", tensor.RandomNormal(s, 0.02, out, in))
		b := g.Constant(name+".bias", tensor.RandomNormal(s+1, 0.02, out))
		return g.BiasAdd(name+".biasadd", g.Dense(name, x, w), b)
	}

	// Features.
	y := conv("conv1", x, 96, 3, 11, 4, 0, 1, seed)
	y = g.LRN("lrn1", y, 5, 1e-4, 0.75, 2)
	y = g.MaxPool2D("pool1", y, 3, 2, 0)
	y = conv("conv2", y, 256, 96, 5, 1, 2, 2, seed+10)
	y = g.LRN("lrn2", y, 5, 1e-4, 0.75, 2)
	y = g.MaxPool2D("pool2", y, 3, 2, 0)
	y = conv("conv3", y, 384, 256, 3, 1, 1, 1, seed+20)
	y = conv("conv4", y, 384, 384, 3, 1, 1, 2, seed+30)
	y = conv("conv5", y, 256, 384, 3, 1, 1, 2, seed+40)
	y = g.MaxPool2D("pool5", y, 3, 2, 0)

	// Classifier.
	y = g.Flatten("flatten", y)
	y = g.Dropout("drop6", y, 0.5)
	y = g.ReLU("fc6.relu", dense("fc6", y, 256*6*6, 4096, seed+50))
	y = g.Dropout("drop7", y, 0.5)
	y = g.ReLU("fc7.relu", dense("fc7", y, 4096, 4096, seed+60))
	y = dense("fc8", y, 4096, 1000, seed+70)
	y = g.Softmax("prob", y)
	g.MarkOutput(y)
	return g
}

// AlexNetLayers returns the 5 convolutional and 3 fully connected layer
// geometries of AlexNet, the per-layer workloads of Figures 9, 11, 12 and
// Table VI.
func AlexNetLayers() []LayerSpec {
	mk := func(name string, k, c, r, h, stride, pad, groups int) LayerSpec {
		d := tensor.ConvDims{N: 1, C: c, H: h, W: h, K: k, R: r, S: r, G: groups,
			StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
		if err := d.Resolve(); err != nil {
			panic(fmt.Sprintf("models: AlexNet layer %s: %v", name, err))
		}
		return LayerSpec{Name: name, Op: graph.OpConv2D, Conv: d}
	}
	return []LayerSpec{
		mk("conv1", 96, 3, 11, 227, 4, 0, 1),
		mk("conv2", 256, 96, 5, 27, 1, 2, 2),
		mk("conv3", 384, 256, 3, 13, 1, 1, 1),
		mk("conv4", 384, 384, 3, 13, 1, 1, 2),
		mk("conv5", 256, 384, 3, 13, 1, 1, 2),
		{Name: "fc1", Op: graph.OpDense, M: 1, K: 9216, N: 4096},
		{Name: "fc2", Op: graph.OpDense, M: 1, K: 4096, N: 4096},
		{Name: "fc3", Op: graph.OpDense, M: 1, K: 4096, N: 1000},
	}
}

// AlexNetMiniLayers returns geometry-faithful but scaled-down versions of
// the AlexNet layers, keeping kernel sizes, strides and grouping while
// shrinking channel counts and spatial extents. Used by `go test` benchmarks
// where the full layers would take minutes per mapping.
func AlexNetMiniLayers() []LayerSpec {
	mk := func(name string, k, c, r, h, stride, pad, groups int) LayerSpec {
		d := tensor.ConvDims{N: 1, C: c, H: h, W: h, K: k, R: r, S: r, G: groups,
			StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
		if err := d.Resolve(); err != nil {
			panic(fmt.Sprintf("models: AlexNet-mini layer %s: %v", name, err))
		}
		return LayerSpec{Name: name, Op: graph.OpConv2D, Conv: d}
	}
	return []LayerSpec{
		mk("conv1", 12, 3, 11, 59, 4, 0, 1),
		mk("conv2", 32, 12, 5, 13, 1, 2, 2),
		mk("conv3", 48, 32, 3, 7, 1, 1, 1),
		mk("conv4", 48, 48, 3, 7, 1, 1, 2),
		mk("conv5", 32, 48, 3, 7, 1, 1, 2),
		{Name: "fc1", Op: graph.OpDense, M: 1, K: 288, N: 128},
		{Name: "fc2", Op: graph.OpDense, M: 1, K: 128, N: 128},
		{Name: "fc3", Op: graph.OpDense, M: 1, K: 128, N: 40},
	}
}

// LeNet5 builds a LeNet-5 style CNN for 1×28×28 inputs.
func LeNet5(seed int64) *graph.Graph {
	g := graph.New("lenet5")
	x := g.Input("data", 1, 1, 28, 28)
	w1 := g.Constant("conv1.weight", tensor.RandomNormal(seed, 0.1, 6, 1, 5, 5))
	y := g.Conv2D("conv1", x, w1, graph.Attrs{PadH: 2, PadW: 2})
	y = g.Tanh("tanh1", y)
	y = g.AvgPool2D("pool1", y, 2, 2, 0)
	w2 := g.Constant("conv2.weight", tensor.RandomNormal(seed+1, 0.1, 16, 6, 5, 5))
	y = g.Conv2D("conv2", y, w2, graph.Attrs{})
	y = g.Tanh("tanh2", y)
	y = g.AvgPool2D("pool2", y, 2, 2, 0)
	y = g.Flatten("flatten", y)
	w3 := g.Constant("fc1.weight", tensor.RandomNormal(seed+2, 0.1, 120, 400))
	y = g.Tanh("tanh3", g.Dense("fc1", y, w3))
	w4 := g.Constant("fc2.weight", tensor.RandomNormal(seed+3, 0.1, 84, 120))
	y = g.Tanh("tanh4", g.Dense("fc2", y, w4))
	w5 := g.Constant("fc3.weight", tensor.RandomNormal(seed+4, 0.1, 10, 84))
	y = g.Softmax("prob", g.Dense("fc3", y, w5))
	g.MarkOutput(y)
	return g
}

// MLP builds a small two-hidden-layer perceptron for flat inputs.
func MLP(seed int64, in, hidden, out int) *graph.Graph {
	g := graph.New("mlp")
	x := g.Input("data", 1, in)
	w1 := g.Constant("fc1.weight", tensor.RandomNormal(seed, 0.1, hidden, in))
	y := g.ReLU("relu1", g.Dense("fc1", x, w1))
	w2 := g.Constant("fc2.weight", tensor.RandomNormal(seed+1, 0.1, hidden, hidden))
	y = g.ReLU("relu2", g.Dense("fc2", y, w2))
	w3 := g.Constant("fc3.weight", tensor.RandomNormal(seed+2, 0.1, out, hidden))
	y = g.Softmax("prob", g.Dense("fc3", y, w3))
	g.MarkOutput(y)
	return g
}

// TinyCNN builds a minimal conv+dense network used by fast end-to-end tests.
func TinyCNN(seed int64) *graph.Graph {
	g := graph.New("tinycnn")
	x := g.Input("data", 1, 2, 10, 10)
	w1 := g.Constant("conv1.weight", tensor.RandomNormal(seed, 0.2, 4, 2, 3, 3))
	b1 := g.Constant("conv1.bias", tensor.RandomNormal(seed+1, 0.2, 4))
	y := g.ReLU("relu1", g.BiasAdd("conv1.biasadd", g.Conv2D("conv1", x, w1, graph.Attrs{PadH: 1, PadW: 1}), b1))
	y = g.MaxPool2D("pool1", y, 2, 2, 0)
	y = g.Flatten("flatten", y)
	w2 := g.Constant("fc1.weight", tensor.RandomNormal(seed+2, 0.2, 8, 100))
	y = g.Softmax("prob", g.Dense("fc1", y, w2))
	g.MarkOutput(y)
	return g
}

// ExtractLayers walks a shape-inferred graph and returns the LayerSpec of
// every conv2d and dense node, in topological order. This is how the bench
// harness derives per-layer workloads from an arbitrary imported model.
func ExtractLayers(g *graph.Graph) ([]LayerSpec, error) {
	if err := g.InferShapes(); err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	var out []LayerSpec
	for _, n := range order {
		switch n.Op {
		case graph.OpConv2D:
			d, err := graph.ConvDimsOf(n)
			if err != nil {
				return nil, err
			}
			out = append(out, LayerSpec{Name: n.Name, Op: graph.OpConv2D, Conv: d})
		case graph.OpDense:
			in, w := n.Inputs[0].OutShape, n.Inputs[1].OutShape
			out = append(out, LayerSpec{Name: n.Name, Op: graph.OpDense, M: in[0], K: in[1], N: w[0]})
		}
	}
	return out, nil
}

// TinyCNNNHWC builds the TinyCNN with NHWC activations and RSCK kernels —
// the TensorFlow-default layouts (§V-B). It exercises Bifrost's second
// convolution entry point (tvm.contrib.stonne.conv2d.nhwc in the paper).
func TinyCNNNHWC(seed int64) *graph.Graph {
	g := graph.New("tinycnn-nhwc")
	x := g.Input("data", 1, 10, 10, 2)                                           // NHWC
	w1 := g.Constant("conv1.weight", tensor.RandomNormal(seed, 0.2, 3, 3, 2, 4)) // RSCK
	y := g.Conv2D("conv1", x, w1, graph.Attrs{PadH: 1, PadW: 1, DataLayout: tensor.NHWC})
	y = g.ReLU("relu1", y)
	y = g.Flatten("flatten", y)
	w2 := g.Constant("fc1.weight", tensor.RandomNormal(seed+2, 0.2, 8, 400))
	y = g.Softmax("prob", g.Dense("fc1", y, w2))
	g.MarkOutput(y)
	return g
}

// MiniResNet builds a small residual CNN (two conv blocks with identity
// skip connections and batch norm) for 1×8×16×16 inputs. It exercises the
// element-wise add and batch-norm folding paths end to end.
func MiniResNet(seed int64) *graph.Graph {
	g := graph.New("miniresnet")
	x := g.Input("data", 1, 8, 16, 16)
	block := func(name string, x *graph.Node, c int, s int64) *graph.Node {
		w := g.Constant(name+".weight", tensor.RandomNormal(s, 0.1, c, c, 3, 3))
		y := g.Conv2D(name+".conv", x, w, graph.Attrs{PadH: 1, PadW: 1})
		gamma := g.Constant(name+".gamma", onesTensor(c))
		beta := g.Constant(name+".beta", tensor.New(c))
		mean := g.Constant(name+".mean", tensor.New(c))
		variance := g.Constant(name+".var", onesTensor(c))
		y = g.BatchNorm(name+".bn", y, gamma, beta, mean, variance, 1e-5)
		y = g.Add(name+".skip", y, x)
		return g.ReLU(name+".relu", y)
	}
	y := block("block1", x, 8, seed)
	y = block("block2", y, 8, seed+10)
	y = g.AvgPool2D("pool", y, 4, 4, 0)
	y = g.Flatten("flatten", y)
	w := g.Constant("fc.weight", tensor.RandomNormal(seed+20, 0.1, 10, 8*4*4))
	y = g.Softmax("prob", g.Dense("fc", y, w))
	g.MarkOutput(y)
	return g
}

func onesTensor(n int) *tensor.Tensor {
	t := tensor.New(n)
	t.Fill(1)
	return t
}
