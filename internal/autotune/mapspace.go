package autotune

import (
	"sort"
	"sync"

	"repro/internal/stonne/config"
	"repro/internal/stonne/energy"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// enginePool amortises engine construction (config validation plus any
// fabric state) across the thousands of measurements a tuning run makes.
// Engines are not safe for concurrent use, so concurrent MeasureFunc calls
// — e.g. under ParallelMeasurer — each check out their own engine.
func enginePool(cfg config.HWConfig) *sync.Pool {
	return &sync.Pool{New: func() any {
		eng, err := maeri.NewEngine(cfg)
		if err != nil {
			return (*maeri.Engine)(nil)
		}
		eng.DryRun = true
		return eng
	}}
}

// tileCandidates returns the knob values for one tile dimension: every
// value when the dimension is small, otherwise the divisors of the
// dimension plus the powers of two, capped at `limit`. This mirrors how
// AutoTVM schedules declare tile knobs (a handful of meaningful options per
// axis — the paper's example assumes ~10 options per tile).
func tileCandidates(dim, limit int) []int {
	if limit > dim {
		limit = dim
	}
	if limit < 1 {
		limit = 1
	}
	if dim <= 12 {
		out := make([]int, 0, limit)
		for v := 1; v <= limit; v++ {
			out = append(out, v)
		}
		return out
	}
	set := map[int]bool{1: true}
	for v := 1; v*v <= dim; v++ {
		if dim%v == 0 {
			if v <= limit {
				set[v] = true
			}
			if dim/v <= limit {
				set[dim/v] = true
			}
		}
	}
	for v := 2; v <= limit; v *= 2 {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ConvMappingSpace builds the knob space for a MAERI convolution mapping
// (the eight Table IV tiles; T_N is pinned to 1 and T_G to the
// group-or-one choice).
func ConvMappingSpace(d tensor.ConvDims, msSize int) (*Space, error) {
	if err := d.Resolve(); err != nil {
		return nil, err
	}
	tg := []int{1}
	if d.G > 1 {
		tg = tileCandidates(d.G, msSize)
	}
	return &Space{Knobs: []Knob{
		{Name: "T_R", Values: tileCandidates(d.R, msSize)},
		{Name: "T_S", Values: tileCandidates(d.S, msSize)},
		{Name: "T_C", Values: tileCandidates(d.C/d.G, msSize)},
		{Name: "T_K", Values: tileCandidates(d.K/d.G, msSize)},
		{Name: "T_G", Values: tg},
		{Name: "T_N", Values: []int{1}},
		{Name: "T_X", Values: tileCandidates(d.P(), msSize)},
		{Name: "T_Y", Values: tileCandidates(d.Q(), msSize)},
	}}, nil
}

// FCMappingSpace builds the knob space for a MAERI fully connected mapping
// (Table V). The T_S range follows the space the paper's AutoTVM module
// searched (its published mappings max out at T_S = 20) and T_K spans up to
// 16 input neurons per virtual neuron.
func FCMappingSpace(inNeurons, outNeurons, msSize int) *Space {
	rangeVals := func(limit int) []int {
		out := make([]int, 0, limit)
		for v := 1; v <= limit; v++ {
			out = append(out, v)
		}
		return out
	}
	return &Space{Knobs: []Knob{
		{Name: "T_S", Values: rangeVals(min(20, msSize, outNeurons))},
		{Name: "T_K", Values: rangeVals(min(16, msSize, inNeurons))},
		{Name: "T_N", Values: []int{1}},
	}}
}

// ConvMappingOf decodes a configuration drawn from ConvMappingSpace.
func ConvMappingOf(c Config) mapping.ConvMapping {
	return mapping.ConvMapping{
		TR: c.Get("T_R"), TS: c.Get("T_S"), TC: c.Get("T_C"), TK: c.Get("T_K"),
		TG: c.Get("T_G"), TN: c.Get("T_N"), TX: c.Get("T_X"), TY: c.Get("T_Y"),
	}
}

// FCMappingOf decodes a configuration drawn from FCMappingSpace.
func FCMappingOf(c Config) mapping.FCMapping {
	return mapping.FCMapping{TS: c.Get("T_S"), TK: c.Get("T_K"), TN: c.Get("T_N")}
}

// ConvPsumCost measures a conv mapping by its psum count with the step
// count as tie-break — the cheap tuning signal of §VII-B ("a process that
// takes less than a second" per configuration).
func ConvPsumCost(d tensor.ConvDims, msSize int) MeasureFunc {
	return func(c Config) Cost {
		m := ConvMappingOf(c)
		if err := m.Validate(d, msSize); err != nil {
			return Infeasible
		}
		psums, err := maeri.CountConvPsums(d, m)
		if err != nil {
			return Infeasible
		}
		return Cost{Primary: float64(psums), Secondary: float64(m.Steps(d))}
	}
}

// FCPsumCost is the dense-layer analogue of ConvPsumCost.
func FCPsumCost(batches, inNeurons, outNeurons, msSize int) MeasureFunc {
	return func(c Config) Cost {
		m := FCMappingOf(c)
		if err := m.Validate(batches, inNeurons, outNeurons, msSize); err != nil {
			return Infeasible
		}
		psums := maeri.CountFCPsums(batches, inNeurons, outNeurons, m)
		return Cost{Primary: float64(psums), Secondary: float64(m.Steps(batches, inNeurons, outNeurons))}
	}
}

// ConvCycleCost measures a conv mapping by simulated cycle count (dry-run
// MAERI simulation: exact counters, no arithmetic). Dry runs use the
// analytical engine — per-tile-size-class closed forms instead of the
// O(steps) loop nest — so the cycles target is now nearly as cheap as the
// psums target and usable on ResNet-scale layers, not just the paper's
// small Figure 10 workload. Set maeri.Engine.Reference to force the
// step-loop reference implementation when validating the model.
func ConvCycleCost(cfg config.HWConfig, d tensor.ConvDims) MeasureFunc {
	pool := enginePool(cfg)
	return func(c Config) Cost {
		m := ConvMappingOf(c)
		if err := m.Validate(d, cfg.MSSize); err != nil {
			return Infeasible
		}
		eng := pool.Get().(*maeri.Engine)
		if eng == nil {
			return Infeasible
		}
		defer pool.Put(eng)
		_, st, err := eng.Conv2D(nil, nil, d, m)
		if err != nil {
			return Infeasible
		}
		return Cost{Primary: float64(st.Cycles)}
	}
}

// FCCycleCost measures an FC mapping by simulated cycle count.
func FCCycleCost(cfg config.HWConfig, batches, inNeurons, outNeurons int) MeasureFunc {
	in := tensor.New(batches, inNeurons)
	w := tensor.New(outNeurons, inNeurons)
	pool := enginePool(cfg)
	return func(c Config) Cost {
		m := FCMappingOf(c)
		if err := m.Validate(batches, inNeurons, outNeurons, cfg.MSSize); err != nil {
			return Infeasible
		}
		eng := pool.Get().(*maeri.Engine)
		if eng == nil {
			return Infeasible
		}
		defer pool.Put(eng)
		_, st, err := eng.Dense(in, w, m)
		if err != nil {
			return Infeasible
		}
		return Cost{Primary: float64(st.Cycles)}
	}
}

// ConvEnergyCost measures a conv mapping by estimated energy (the paper's
// future-work tuning target, §IX), via a dry-run simulation and the
// event-based energy model.
func ConvEnergyCost(cfg config.HWConfig, d tensor.ConvDims, model energy.Model) MeasureFunc {
	pool := enginePool(cfg)
	return func(c Config) Cost {
		m := ConvMappingOf(c)
		if err := m.Validate(d, cfg.MSSize); err != nil {
			return Infeasible
		}
		eng := pool.Get().(*maeri.Engine)
		if eng == nil {
			return Infeasible
		}
		defer pool.Put(eng)
		_, st, err := eng.Conv2D(nil, nil, d, m)
		if err != nil {
			return Infeasible
		}
		return Cost{Primary: model.Estimate(st).TotalPJ(), Secondary: float64(st.Cycles)}
	}
}

// ConvEDPCost measures a conv mapping by energy-delay product.
func ConvEDPCost(cfg config.HWConfig, d tensor.ConvDims, model energy.Model) MeasureFunc {
	pool := enginePool(cfg)
	return func(c Config) Cost {
		m := ConvMappingOf(c)
		if err := m.Validate(d, cfg.MSSize); err != nil {
			return Infeasible
		}
		eng := pool.Get().(*maeri.Engine)
		if eng == nil {
			return Infeasible
		}
		defer pool.Put(eng)
		_, st, err := eng.Conv2D(nil, nil, d, m)
		if err != nil {
			return Infeasible
		}
		return Cost{Primary: model.EDP(st)}
	}
}
