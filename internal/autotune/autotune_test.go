package autotune

import (
	"math"
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

func simpleSpace() *Space {
	return &Space{Knobs: []Knob{
		{Name: "a", Values: []int{1, 2, 4, 8}},
		{Name: "b", Values: []int{1, 3, 5}},
		{Name: "c", Values: []int{2, 7}},
	}}
}

// quadCost has a unique global optimum at a=4, b=3, c=7.
func quadCost(c Config) Cost {
	da := float64(c.Get("a") - 4)
	db := float64(c.Get("b") - 3)
	dc := float64(c.Get("c") - 7)
	return Cost{Primary: da*da + db*db + dc*dc}
}

func TestSpaceSizeAndAt(t *testing.T) {
	s := simpleSpace()
	if s.Size() != 24 {
		t.Fatalf("size = %d, want 24", s.Size())
	}
	seen := make(map[string]bool)
	for i := int64(0); i < s.Size(); i++ {
		seen[s.At(i).String()] = true
	}
	if len(seen) != 24 {
		t.Fatalf("At enumerated %d distinct configs, want 24", len(seen))
	}
}

func TestSpaceAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	simpleSpace().At(24)
}

func TestConfigGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	simpleSpace().At(0).Get("nope")
}

func TestCostOrdering(t *testing.T) {
	a := Cost{Primary: 1, Secondary: 9}
	b := Cost{Primary: 2, Secondary: 0}
	c := Cost{Primary: 1, Secondary: 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("primary must dominate")
	}
	if !c.Less(a) {
		t.Fatal("secondary must break ties")
	}
	if !Infeasible.IsInfeasible() || a.IsInfeasible() {
		t.Fatal("infeasible detection broken")
	}
}

func TestGridSearchFindsGlobalOptimum(t *testing.T) {
	res, err := GridSearch{}.Tune(simpleSpace(), quadCost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost.Primary != 0 {
		t.Fatalf("grid best cost = %v, want 0", res.Best.Cost)
	}
	if res.Measured != 24 {
		t.Fatalf("grid measured %d, want 24", res.Measured)
	}
	worst, ok := Worst(res)
	if !ok || worst.Cost.Primary <= res.Best.Cost.Primary {
		t.Fatalf("worst trial %v must exceed best", worst.Cost)
	}
}

func TestRandomSearchConvergesOnSmallSpace(t *testing.T) {
	res, err := RandomSearch{}.Tune(simpleSpace(), quadCost, Options{Trials: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost.Primary != 0 {
		t.Fatalf("random search over the whole space missed the optimum: %v", res.Best.Cost)
	}
}

func TestRandomSearchNeedsBudget(t *testing.T) {
	if _, err := (RandomSearch{}).Tune(simpleSpace(), quadCost, Options{}); err == nil {
		t.Fatal("zero budget must error")
	}
}

func TestEarlyStopping(t *testing.T) {
	res, err := RandomSearch{}.Tune(simpleSpace(), quadCost, Options{Trials: 1000, EarlyStopping: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && res.Measured >= 24 {
		t.Fatalf("early stopping never fired: measured %d", res.Measured)
	}
}

func TestAllInfeasibleErrors(t *testing.T) {
	bad := func(Config) Cost { return Infeasible }
	if _, err := (GridSearch{}).Tune(simpleSpace(), bad, Options{}); err == nil {
		t.Fatal("all-infeasible space must error")
	}
	if _, err := (RandomSearch{}).Tune(simpleSpace(), bad, Options{Trials: 30, Seed: 1}); err == nil {
		t.Fatal("all-infeasible space must error")
	}
}

func bigSpace() *Space {
	vals := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	return &Space{Knobs: []Knob{
		{Name: "a", Values: vals(12)},
		{Name: "b", Values: vals(12)},
		{Name: "c", Values: vals(12)},
		{Name: "d", Values: vals(12)},
	}}
}

// ridgeCost rewards a·b close to 64 and penalises large c, d.
func ridgeCost(c Config) Cost {
	prod := float64(c.Get("a") * c.Get("b"))
	return Cost{Primary: math.Abs(prod-64) + 0.5*float64(c.Get("c")) + 0.25*float64(c.Get("d"))}
}

func TestGATunerBeatsRandomOnStructuredSurface(t *testing.T) {
	opts := Options{Trials: 400, Seed: 7}
	ga, err := GATuner{}.Tune(bigSpace(), ridgeCost, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: a·b = 64, c = d = 1 → cost 0.75.
	if ga.Best.Cost.Primary > 3 {
		t.Fatalf("GA best %v too far from optimum 0.75", ga.Best.Cost)
	}
}

func TestXGBTunerFindsGoodConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("300 model-guided trials take ~0.1s")
	}
	opts := Options{Trials: 300, Seed: 11}
	xgb, err := XGBTuner{}.Tune(bigSpace(), ridgeCost, opts)
	if err != nil {
		t.Fatal(err)
	}
	if xgb.Best.Cost.Primary > 3 {
		t.Fatalf("XGB best %v too far from optimum 0.75", xgb.Best.Cost)
	}
}

func TestTunersDeterministicPerSeed(t *testing.T) {
	a, err := XGBTuner{}.Tune(bigSpace(), ridgeCost, Options{Trials: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := XGBTuner{}.Tune(bigSpace(), ridgeCost, Options{Trials: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Config.String() != b.Best.Config.String() {
		t.Fatal("same seed must reproduce the same search")
	}
}

func TestTileCandidates(t *testing.T) {
	small := tileCandidates(5, 128)
	if len(small) != 5 || small[0] != 1 || small[4] != 5 {
		t.Fatalf("small dim candidates = %v", small)
	}
	big := tileCandidates(96, 128)
	for _, v := range big {
		if v > 96 || v < 1 {
			t.Fatalf("candidate %d out of range", v)
		}
		if 96%v != 0 && v&(v-1) != 0 {
			t.Fatalf("candidate %d is neither a divisor of 96 nor a power of two", v)
		}
	}
	capped := tileCandidates(96, 16)
	for _, v := range capped {
		if v > 16 {
			t.Fatalf("candidate %d exceeds cap", v)
		}
	}
}

func TestFCMappingSpaceTableVIBehaviour(t *testing.T) {
	// The central Table VI reproduction: grid search on the psum target must
	// maximise T_S and minimise T_K ("the AutoTVM module always maximizes
	// the T_S tile ... while always minimizing T_N and T_K when the
	// optimization target is minimizing psums").
	const ms = 128
	for _, layer := range []struct{ k, s int }{{9216, 4096}, {4096, 4096}, {4096, 1000}} {
		space := FCMappingSpace(layer.k, layer.s, ms)
		res, err := GridSearch{}.Tune(space, FCPsumCost(1, layer.k, layer.s, ms), Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := FCMappingOf(res.Best.Config)
		if m.TK != 1 || m.TN != 1 {
			t.Fatalf("K=%d S=%d: best mapping %s should minimise T_K and T_N", layer.k, layer.s, m)
		}
		if m.TS != 20 {
			t.Fatalf("K=%d S=%d: best T_S = %d, want the space maximum 20", layer.k, layer.s, m.TS)
		}
		if res.Best.Cost.Primary != 0 {
			t.Fatalf("psum-optimal cost should be 0 psums, got %v", res.Best.Cost)
		}
	}
}

func TestConvMappingSpacePsumTuning(t *testing.T) {
	// Conv analogue: psum-optimal mappings keep the reduction tiles at 1 and
	// maximise parallel outputs.
	d := tensor.ConvDims{N: 1, C: 16, H: 14, W: 14, K: 32, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	space, err := ConvMappingSpace(d, 128)
	if err != nil {
		t.Fatal(err)
	}
	res, err := XGBTuner{}.Tune(space, ConvPsumCost(d, 128), Options{Trials: 600, EarlyStopping: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := ConvMappingOf(res.Best.Config)
	if res.Best.Cost.Primary != 0 {
		t.Fatalf("psum tuning should reach 0 spatial psums, got %v (mapping %s)", res.Best.Cost, m)
	}
	if m.TR != 1 || m.TS != 1 || m.TC != 1 {
		t.Fatalf("psum-optimal conv mapping must have VN size 1, got %s", m)
	}
	if m.NumVNs() < 32 {
		t.Fatalf("psum-optimal conv mapping should maximise parallelism, got %d VNs", m.NumVNs())
	}
}

func TestConvCycleCostMatchesSimulation(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 2, H: 10, W: 10, K: 4, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	cfg := config.Default(config.MAERIDenseWorkload)
	space, err := ConvMappingSpace(d, cfg.MSSize)
	if err != nil {
		t.Fatal(err)
	}
	measure := ConvCycleCost(cfg, d)
	// An invalid mapping must be infeasible, a valid one finite.
	grid, err := GridSearch{}.Tune(space, measure, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if grid.Best.Cost.IsInfeasible() {
		t.Fatal("cycle grid search found nothing feasible")
	}
	worst, ok := Worst(grid)
	if !ok {
		t.Fatal("no worst trial")
	}
	// Figure 10 premise: optimal and suboptimal mappings differ widely.
	if worst.Cost.Primary < 4*grid.Best.Cost.Primary {
		t.Fatalf("optimal %v vs suboptimal %v should differ by ≥4×", grid.Best.Cost, worst.Cost)
	}
}

func TestFCCycleCost(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	measure := FCCycleCost(cfg, 1, 256, 64)
	space := FCMappingSpace(256, 64, cfg.MSSize)
	res, err := GridSearch{}.Tune(space, measure, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := FCMappingOf(res.Best.Config)
	// Cycle-optimal FC mappings use spatial reduction (T_K > 1), unlike
	// psum-optimal ones — the crux of the Figure 12b gap.
	if m.TK == 1 {
		t.Fatalf("cycle-optimal FC mapping should use T_K > 1, got %s", m)
	}
}
