// Package autotune reproduces Bifrost's AutoTVM module (§VII): a knob-based
// configuration-space search where, instead of schedule transformations,
// the tunable parameters are hardware-accelerator dataflow tiles, and the
// optimisation target is a deterministic simulator metric — cycles or
// psums — rather than wall-clock latency ("latency is however not an
// appropriate optimization cost function when using STONNE", §VII-B).
//
// Four tuners are provided, matching the ones the paper names: exhaustive
// grid search, random search, a genetic-algorithm tuner (GATuner) and a
// gradient-boosted-trees tuner (XGBTuner) backed by internal/xgboost.
package autotune

import (
	"fmt"
	"math"
	"math/rand"
)

// Knob is one tunable parameter and its legal values.
type Knob struct {
	Name   string
	Values []int
}

// Space is the Cartesian configuration space of several knobs.
type Space struct {
	Knobs []Knob
}

// Size returns the number of points in the space.
func (s *Space) Size() int64 {
	n := int64(1)
	for _, k := range s.Knobs {
		n *= int64(len(k.Values))
	}
	return n
}

// Config is one point in a Space: the chosen value per knob, aligned with
// Space.Knobs.
type Config struct {
	space  *Space
	values []int
}

// Get returns the value of the named knob. It panics on unknown names,
// which are programming errors.
func (c Config) Get(name string) int {
	for i, k := range c.space.Knobs {
		if k.Name == name {
			return c.values[i]
		}
	}
	panic(fmt.Sprintf("autotune: unknown knob %q", name))
}

// Values returns the raw knob values in Space order.
func (c Config) Values() []int { return c.values }

// String renders "name=value" pairs.
func (c Config) String() string {
	out := ""
	for i, k := range c.space.Knobs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k.Name, c.values[i])
	}
	return out
}

// At decodes a flat index (mixed-radix) into a Config.
func (s *Space) At(idx int64) Config {
	if idx < 0 || idx >= s.Size() {
		panic(fmt.Sprintf("autotune: index %d out of range for space of %d", idx, s.Size()))
	}
	values := make([]int, len(s.Knobs))
	for i := len(s.Knobs) - 1; i >= 0; i-- {
		n := int64(len(s.Knobs[i].Values))
		values[i] = s.Knobs[i].Values[idx%n]
		idx /= n
	}
	return Config{space: s, values: values}
}

// indexOfGenome converts per-knob option indices to a Config.
func (s *Space) fromGenome(genome []int) Config {
	values := make([]int, len(s.Knobs))
	for i, g := range genome {
		values[i] = s.Knobs[i].Values[g]
	}
	return Config{space: s, values: values}
}

// Cost is a lexicographic objective: Primary is the tuning target (psums or
// cycles) and Secondary breaks ties (the step count — fewer steps means
// more parallelism). Infeasible configurations have infinite cost.
type Cost struct {
	Primary   float64
	Secondary float64
}

// Infeasible marks configurations rejected by mapping validation.
var Infeasible = Cost{math.Inf(1), math.Inf(1)}

// Less orders costs lexicographically.
func (c Cost) Less(o Cost) bool {
	if c.Primary != o.Primary {
		return c.Primary < o.Primary
	}
	return c.Secondary < o.Secondary
}

// IsInfeasible reports whether the cost marks an invalid configuration.
func (c Cost) IsInfeasible() bool { return math.IsInf(c.Primary, 1) }

// MeasureFunc evaluates one configuration. Implementations are expected to
// be deterministic ("as STONNE is cycle-accurate both of these metrics are
// deterministic and multiple measurements are not needed", §VII-B).
type MeasureFunc func(Config) Cost

// Trial is one measured configuration.
type Trial struct {
	Config Config
	Cost   Cost
}

// Result summarises a tuning run.
type Result struct {
	Best     Trial
	Trials   []Trial
	Measured int
	// Converged reports whether early stopping fired before the trial
	// budget was exhausted (AutoTVM's "early stopping" utility, §VIII-B).
	Converged bool
}

// Measurer evaluates whole batches of configurations, possibly
// concurrently — e.g. through the simulation farm. Implementations must
// return costs aligned with cfgs and must be deterministic per
// configuration; the tuners then record results in submission order, which
// keeps a batched search bit-identical to the serial one.
type Measurer interface {
	MeasureBatch(cfgs []Config) []Cost
}

// Options bound a tuning run.
type Options struct {
	// Trials is the measurement budget (ignored by GridSearch, which
	// always visits the whole space).
	Trials int
	// EarlyStopping stops the run after this many measurements without
	// improvement; 0 disables it.
	EarlyStopping int
	Seed          int64

	// Measurer, when set, evaluates measurement batches (typically in
	// parallel via the simulation farm); the per-config MeasureFunc is then
	// only the serial fallback. Results are identical either way — only
	// wall-clock time changes.
	Measurer Measurer
}

// measureEach evaluates cfgs and feeds each cost to record in order,
// stopping (and returning true) as soon as record asks to. With a Measurer
// the whole batch is evaluated up front — possibly concurrently — and only
// the recording stops early; without one, each configuration is measured
// and recorded one at a time, so early stopping never pays for
// measurements the serial tuners would not have run.
func (o Options) measureEach(f MeasureFunc, cfgs []Config, record func(i int, c Cost) bool) bool {
	if o.Measurer != nil {
		for i, c := range o.Measurer.MeasureBatch(cfgs) {
			if record(i, c) {
				return true
			}
		}
		return false
	}
	for i, cfg := range cfgs {
		if record(i, f(cfg)) {
			return true
		}
	}
	return false
}

// measureChunk is the batch granularity the tuners use when a Measurer is
// present; large enough to keep a worker pool busy, small enough that early
// stopping does not overshoot by much.
const measureChunk = 64

// Tuner is a search strategy over a Space.
type Tuner interface {
	Tune(space *Space, measure MeasureFunc, opts Options) (Result, error)
}

// tracker accumulates trials and handles early stopping.
type tracker struct {
	result    Result
	sinceBest int
	stop      int
	hasBest   bool
}

func newTracker(stop int) *tracker { return &tracker{stop: stop} }

// record returns true when the search should stop.
func (t *tracker) record(tr Trial) bool {
	t.result.Trials = append(t.result.Trials, tr)
	t.result.Measured++
	if !tr.Cost.IsInfeasible() && (!t.hasBest || tr.Cost.Less(t.result.Best.Cost)) {
		t.result.Best = tr
		t.hasBest = true
		t.sinceBest = 0
		return false
	}
	t.sinceBest++
	if t.stop > 0 && t.sinceBest >= t.stop {
		t.result.Converged = true
		return true
	}
	return false
}

func (t *tracker) finish() (Result, error) {
	if !t.hasBest {
		return t.result, fmt.Errorf("autotune: no feasible configuration found in %d measurements", t.result.Measured)
	}
	return t.result, nil
}

// GridSearch exhaustively measures every configuration — the strategy used
// for Figure 10's globally optimal/suboptimal mappings ("an exhaustive
// grid-search over the whole mapping space").
type GridSearch struct{}

// Tune implements Tuner.
func (GridSearch) Tune(space *Space, measure MeasureFunc, opts Options) (Result, error) {
	tr := newTracker(0) // exhaustive: ignore early stopping and budget
	size := space.Size()
	for start := int64(0); start < size; start += measureChunk {
		end := start + measureChunk
		if end > size {
			end = size
		}
		cfgs := make([]Config, 0, end-start)
		for i := start; i < end; i++ {
			cfgs = append(cfgs, space.At(i))
		}
		opts.measureEach(measure, cfgs, func(i int, cost Cost) bool {
			tr.record(Trial{Config: cfgs[i], Cost: cost})
			return false // exhaustive: never stop early
		})
	}
	return tr.finish()
}

// Worst returns the highest-cost feasible trial of a result — the
// "suboptimal mapping" curve of Figure 10.
func Worst(r Result) (Trial, bool) {
	var worst Trial
	found := false
	for _, t := range r.Trials {
		if t.Cost.IsInfeasible() {
			continue
		}
		if !found || worst.Cost.Less(t.Cost) {
			worst = t
			found = true
		}
	}
	return worst, found
}

// RandomSearch samples configurations uniformly without replacement (up to
// the trial budget).
type RandomSearch struct{}

// Tune implements Tuner.
func (RandomSearch) Tune(space *Space, measure MeasureFunc, opts Options) (Result, error) {
	if opts.Trials <= 0 {
		return Result{}, fmt.Errorf("autotune: random search needs a positive trial budget")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := newTracker(opts.EarlyStopping)
	seen := make(map[int64]bool)
	size := space.Size()
	for tr.result.Measured < opts.Trials && int64(len(seen)) < size {
		// Draw the next chunk of unseen indices; the rng sequence is the
		// same as drawing one at a time, so batched and serial runs record
		// identical trial sequences.
		chunk := opts.Trials - tr.result.Measured
		if chunk > measureChunk {
			chunk = measureChunk
		}
		cfgs := make([]Config, 0, chunk)
		for len(cfgs) < chunk && int64(len(seen)) < size {
			var idx int64
			for {
				idx = rng.Int63n(size)
				if !seen[idx] {
					seen[idx] = true
					break
				}
			}
			cfgs = append(cfgs, space.At(idx))
		}
		if opts.measureEach(measure, cfgs, func(i int, cost Cost) bool {
			return tr.record(Trial{Config: cfgs[i], Cost: cost})
		}) {
			return tr.finish()
		}
	}
	return tr.finish()
}
