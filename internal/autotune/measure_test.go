package autotune

import (
	"reflect"
	"testing"

	"repro/internal/farm"
	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

// resultsEqual compares two tuning results trial by trial.
func resultsEqual(t *testing.T, name string, a, b Result) {
	t.Helper()
	if a.Measured != b.Measured || a.Converged != b.Converged {
		t.Fatalf("%s: measured/converged diverged: %d/%v vs %d/%v",
			name, a.Measured, a.Converged, b.Measured, b.Converged)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("%s: trial counts diverged: %d vs %d", name, len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if !reflect.DeepEqual(a.Trials[i].Config.Values(), b.Trials[i].Config.Values()) ||
			a.Trials[i].Cost != b.Trials[i].Cost {
			t.Fatalf("%s: trial %d diverged: %v %v vs %v %v", name, i,
				a.Trials[i].Config, a.Trials[i].Cost, b.Trials[i].Config, b.Trials[i].Cost)
		}
	}
	if !reflect.DeepEqual(a.Best.Config.Values(), b.Best.Config.Values()) || a.Best.Cost != b.Best.Cost {
		t.Fatalf("%s: best diverged: %v vs %v", name, a.Best.Config, b.Best.Config)
	}
}

// TestBatchedTunersMatchSerial runs every tuner on a real cycle-cost space
// serially, through ParallelMeasurer and through the farm, and requires the
// full trial logs to be bit-identical — the batched paths may only change
// wall-clock time, never results.
func TestBatchedTunersMatchSerial(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	cfg.MSSize = 16
	d := tensor.ConvDims{N: 1, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	space, err := ConvMappingSpace(d, cfg.MSSize)
	if err != nil {
		t.Fatal(err)
	}
	measure := ConvCycleCost(cfg, d)

	f := farm.New(4)
	defer f.Close()

	tuners := map[string]Tuner{
		"grid":   GridSearch{},
		"random": RandomSearch{},
		"ga":     GATuner{},
		"xgb":    XGBTuner{},
	}
	for name, tuner := range tuners {
		opts := Options{Trials: 120, EarlyStopping: 40, Seed: 3}
		serial, err := tuner.Tune(space, measure, opts)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		opts.Measurer = ParallelMeasurer(4, measure)
		parallel, err := tuner.Tune(space, measure, opts)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		resultsEqual(t, name+"/parallel", serial, parallel)

		opts.Measurer = FarmConvCycleMeasurer(f, cfg, d)
		farmed, err := tuner.Tune(space, measure, opts)
		if err != nil {
			t.Fatalf("%s farm: %v", name, err)
		}
		resultsEqual(t, name+"/farm", serial, farmed)
	}

	st := f.Stats()
	if st.Submitted == 0 {
		t.Fatal("farm measurer never submitted a job")
	}
	// Four tuners over one space revisit many configurations; the
	// content-addressed cache must have absorbed repeats.
	if st.Hits == 0 {
		t.Fatalf("no cache hits across repeated tuner runs: %+v", st)
	}
}

// TestFarmMeasurerWarmDiskReplay tunes against a disk-backed farm, closes
// it, and re-tunes through a cold farm on the same directory: the trial log
// must be bit-identical and the second search must run zero simulations —
// persistent caching makes repeated tuning sweeps (the common case across
// tuner comparisons and re-runs) free.
func TestFarmMeasurerWarmDiskReplay(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	cfg.MSSize = 16
	d := tensor.ConvDims{N: 1, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	space, err := ConvMappingSpace(d, cfg.MSSize)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	openFarm := func() *farm.Farm {
		ds, err := farm.NewDiskStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return farm.New(4, farm.WithDiskStore(ds))
	}

	warm := openFarm()
	opts := Options{Trials: 120, EarlyStopping: 40, Seed: 3, Measurer: FarmConvCycleMeasurer(warm, cfg, d)}
	first, err := GridSearch{}.Tune(space, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm.Close()

	cold := openFarm()
	defer cold.Close()
	opts.Measurer = FarmConvCycleMeasurer(cold, cfg, d)
	second, err := GridSearch{}.Tune(space, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "grid/disk-replay", first, second)
	st := cold.Stats()
	if st.Completed != 0 || st.Misses != 0 {
		t.Fatalf("cold tuning run re-simulated: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("cold tuning run never hit the disk tier: %+v", st)
	}
}

// TestFarmFCCycleMeasurerMatchesSerial checks the dense path against
// FCCycleCost on the full FC space.
func TestFarmFCCycleMeasurerMatchesSerial(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	space := FCMappingSpace(64, 32, cfg.MSSize)
	serialMeasure := FCCycleCost(cfg, 1, 64, 32)

	f := farm.New(4)
	defer f.Close()
	opts := Options{}
	serial, err := GridSearch{}.Tune(space, serialMeasure, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Measurer = FarmFCCycleMeasurer(f, cfg, 1, 64, 32)
	farmed, err := GridSearch{}.Tune(space, serialMeasure, opts)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "fc-grid", serial, farmed)
}
