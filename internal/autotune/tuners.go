package autotune

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/xgboost"
)

// GATuner is the genetic-algorithm tuner the paper cites (GATuner): a
// population of knob-index genomes evolved with tournament selection,
// uniform crossover, point mutation and elitism.
type GATuner struct {
	Population int     // population size (default 32)
	Elite      int     // genomes carried over unchanged (default 4)
	Mutation   float64 // per-gene mutation probability (default 0.1)
}

// Tune implements Tuner.
func (g GATuner) Tune(space *Space, measure MeasureFunc, opts Options) (Result, error) {
	if opts.Trials <= 0 {
		return Result{}, fmt.Errorf("autotune: GA tuner needs a positive trial budget")
	}
	pop := g.Population
	if pop <= 0 {
		pop = 32
	}
	elite := g.Elite
	if elite <= 0 {
		elite = 4
	}
	if elite > pop/2 {
		elite = pop / 2
	}
	mutation := g.Mutation
	if mutation <= 0 {
		mutation = 0.1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := newTracker(opts.EarlyStopping)

	type individual struct {
		genome []int
		cost   Cost
	}
	randGenome := func() []int {
		genome := make([]int, len(space.Knobs))
		for i, k := range space.Knobs {
			genome[i] = rng.Intn(len(k.Values))
		}
		return genome
	}
	cache := make(map[string]Cost)
	evaluate := func(genome []int) (Cost, bool) {
		cfg := space.fromGenome(genome)
		key := cfg.String()
		if c, ok := cache[key]; ok {
			return c, false
		}
		c := measure(cfg)
		cache[key] = c
		stop := tr.record(Trial{Config: cfg, Cost: c})
		return c, stop
	}

	population := make([]individual, pop)
	stopped := false
	for i := range population {
		population[i].genome = randGenome()
		var stop bool
		population[i].cost, stop = evaluate(population[i].genome)
		if stop || tr.result.Measured >= opts.Trials {
			stopped = true
			break
		}
	}
	for !stopped && tr.result.Measured < opts.Trials {
		sort.SliceStable(population, func(i, j int) bool { return population[i].cost.Less(population[j].cost) })
		next := make([]individual, 0, pop)
		next = append(next, population[:elite]...)
		tournament := func() individual {
			a, b := population[rng.Intn(pop)], population[rng.Intn(pop)]
			if a.cost.Less(b.cost) {
				return a
			}
			return b
		}
		for len(next) < pop {
			p1, p2 := tournament(), tournament()
			child := make([]int, len(space.Knobs))
			for i := range child {
				if rng.Intn(2) == 0 {
					child[i] = p1.genome[i]
				} else {
					child[i] = p2.genome[i]
				}
				if rng.Float64() < mutation {
					child[i] = rng.Intn(len(space.Knobs[i].Values))
				}
			}
			cost, stop := evaluate(child)
			next = append(next, individual{genome: child, cost: cost})
			if stop || tr.result.Measured >= opts.Trials {
				stopped = true
				break
			}
		}
		for len(next) < pop {
			next = append(next, population[len(next)])
		}
		population = next
	}
	return tr.finish()
}

// XGBTuner is the model-guided tuner: it trains a gradient-boosted-trees
// cost model on the measurements so far, scores a large pool of random
// candidates with the model, and measures only the most promising batch —
// AutoTVM's transfer-learning loop with our from-scratch XGBoost.
type XGBTuner struct {
	BatchSize int            // measurements per round (default 16)
	PoolSize  int            // model-scored candidates per round (default 256)
	Params    xgboost.Params // zero value → xgboost.DefaultParams()
}

// Tune implements Tuner.
func (x XGBTuner) Tune(space *Space, measure MeasureFunc, opts Options) (Result, error) {
	if opts.Trials <= 0 {
		return Result{}, fmt.Errorf("autotune: XGB tuner needs a positive trial budget")
	}
	batch := x.BatchSize
	if batch <= 0 {
		batch = 16
	}
	pool := x.PoolSize
	if pool <= 0 {
		pool = 256
	}
	params := x.Params
	if params.Rounds == 0 {
		params = xgboost.DefaultParams()
		params.Rounds = 30
	}
	params.Seed = opts.Seed
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := newTracker(opts.EarlyStopping)
	size := space.Size()

	seen := make(map[int64]bool)
	var features [][]float64
	var targets []float64
	var maxSecondary float64 = 1

	featurize := func(cfg Config) []float64 {
		vals := cfg.Values()
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i] = float64(v)
		}
		return out
	}
	// scalarize folds the lexicographic cost into one regression target,
	// keeping Primary dominant: Secondary/(2·maxSecondary) < 1 never crosses
	// integer Primary gaps.
	scalarize := func(c Cost) float64 {
		if c.IsInfeasible() {
			return 0 // handled separately; never reaches the model
		}
		return c.Primary + c.Secondary/(2*maxSecondary)
	}

	measureIdx := func(idx int64) bool {
		seen[idx] = true
		cfg := space.At(idx)
		cost := measure(cfg)
		stop := tr.record(Trial{Config: cfg, Cost: cost})
		if !cost.IsInfeasible() {
			if cost.Secondary > maxSecondary {
				maxSecondary = cost.Secondary
			}
			features = append(features, featurize(cfg))
			targets = append(targets, 0) // rewritten below, once maxSecondary is known
		}
		return stop
	}

	randomUnseen := func() (int64, bool) {
		if int64(len(seen)) >= size {
			return 0, false
		}
		for tries := 0; tries < 64; tries++ {
			idx := rng.Int63n(size)
			if !seen[idx] {
				return idx, true
			}
		}
		for idx := int64(0); idx < size; idx++ {
			if !seen[idx] {
				return idx, true
			}
		}
		return 0, false
	}

	// Warm-up: two batches of random measurements.
	for i := 0; i < 2*batch && tr.result.Measured < opts.Trials; i++ {
		idx, ok := randomUnseen()
		if !ok {
			break
		}
		if measureIdx(idx) {
			return tr.finish()
		}
	}

	for tr.result.Measured < opts.Trials && int64(len(seen)) < size {
		// Refresh regression targets with the current maxSecondary scale.
		ti := 0
		for _, trial := range tr.result.Trials {
			if trial.Cost.IsInfeasible() {
				continue
			}
			targets[ti] = scalarize(trial.Cost)
			ti++
		}
		var model *xgboost.Model
		if len(features) >= 4 {
			var err error
			model, err = xgboost.Train(features, targets, params)
			if err != nil {
				return tr.result, fmt.Errorf("autotune: training cost model: %w", err)
			}
		}
		// Score a pool of unseen candidates.
		type scored struct {
			idx  int64
			pred float64
		}
		candidates := make([]scored, 0, pool)
		for i := 0; i < pool; i++ {
			idx, ok := randomUnseen()
			if !ok {
				break
			}
			s := scored{idx: idx}
			if model != nil {
				s.pred = model.Predict(featurize(space.At(idx)))
			} else {
				s.pred = rng.Float64()
			}
			candidates = append(candidates, s)
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].pred < candidates[j].pred })
		picked := 0
		for _, c := range candidates {
			if picked >= batch || tr.result.Measured >= opts.Trials {
				break
			}
			if seen[c.idx] {
				continue
			}
			picked++
			if measureIdx(c.idx) {
				return tr.finish()
			}
		}
		if picked == 0 {
			break
		}
	}
	return tr.finish()
}
