package autotune

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/xgboost"
)

// GATuner is the genetic-algorithm tuner the paper cites (GATuner): a
// population of knob-index genomes evolved with tournament selection,
// uniform crossover, point mutation and elitism.
type GATuner struct {
	Population int     // population size (default 32)
	Elite      int     // genomes carried over unchanged (default 4)
	Mutation   float64 // per-gene mutation probability (default 0.1)
}

// Tune implements Tuner.
func (g GATuner) Tune(space *Space, measure MeasureFunc, opts Options) (Result, error) {
	if opts.Trials <= 0 {
		return Result{}, fmt.Errorf("autotune: GA tuner needs a positive trial budget")
	}
	pop := g.Population
	if pop <= 0 {
		pop = 32
	}
	elite := g.Elite
	if elite <= 0 {
		elite = 4
	}
	if elite > pop/2 {
		elite = pop / 2
	}
	mutation := g.Mutation
	if mutation <= 0 {
		mutation = 0.1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := newTracker(opts.EarlyStopping)

	type individual struct {
		genome []int
		cost   Cost
	}
	randGenome := func() []int {
		genome := make([]int, len(space.Knobs))
		for i, k := range space.Knobs {
			genome[i] = rng.Intn(len(k.Values))
		}
		return genome
	}
	cache := make(map[string]Cost)
	// evaluateBatch costs a slice of genomes: measurements happen as one
	// batch (parallel under a Measurer), but results are recorded in genome
	// order and duplicates resolve through the cache exactly as a
	// one-at-a-time evaluation would, so the trial log is identical to the
	// serial tuner's. Costs are aligned with genomes; stopped reports
	// whether early stopping or the trial budget fired partway (the
	// remaining costs are still filled, but never recorded).
	evaluateBatch := func(genomes [][]int) (costs []Cost, stopped bool) {
		costs = make([]Cost, len(genomes))
		keys := make([]string, len(genomes))
		var toMeasure []Config
		var toMeasureKeys []string
		pending := make(map[string]bool) // keys already queued in this batch
		for i, g := range genomes {
			cfg := space.fromGenome(g)
			keys[i] = cfg.String()
			if _, ok := cache[keys[i]]; ok || pending[keys[i]] {
				continue
			}
			pending[keys[i]] = true
			toMeasure = append(toMeasure, cfg)
			toMeasureKeys = append(toMeasureKeys, keys[i])
		}
		// Never measure past the trial budget: everything beyond it could
		// not be recorded anyway (the serial path stops itself via the
		// record callback, but a batch Measurer would pay for the whole
		// slice up front).
		if remaining := opts.Trials - tr.result.Measured; len(toMeasure) > remaining {
			toMeasure = toMeasure[:remaining]
			toMeasureKeys = toMeasureKeys[:remaining]
		}
		// First occurrences appear in genome order, so recording in
		// toMeasure order reproduces the serial tuner's trial log; cached
		// duplicates never record, exactly as before.
		stopped = opts.measureEach(measure, toMeasure, func(i int, c Cost) bool {
			cache[toMeasureKeys[i]] = c
			return tr.record(Trial{Config: toMeasure[i], Cost: c}) || tr.result.Measured >= opts.Trials
		})
		for i := range genomes {
			// Zero-value costs for configs skipped by an early stop are
			// never used: stopped ends the generation loop.
			costs[i] = cache[keys[i]]
		}
		return costs, stopped
	}

	population := make([]individual, pop)
	genomes := make([][]int, pop)
	for i := range genomes {
		genomes[i] = randGenome()
		population[i].genome = genomes[i]
	}
	costs, stopped := evaluateBatch(genomes)
	for i := range population {
		population[i].cost = costs[i]
	}
	for !stopped && tr.result.Measured < opts.Trials {
		sort.SliceStable(population, func(i, j int) bool { return population[i].cost.Less(population[j].cost) })
		next := make([]individual, 0, pop)
		next = append(next, population[:elite]...)
		tournament := func() individual {
			a, b := population[rng.Intn(pop)], population[rng.Intn(pop)]
			if a.cost.Less(b.cost) {
				return a
			}
			return b
		}
		children := make([][]int, 0, pop-len(next))
		for n := len(next); n < pop; n++ {
			p1, p2 := tournament(), tournament()
			child := make([]int, len(space.Knobs))
			for i := range child {
				if rng.Intn(2) == 0 {
					child[i] = p1.genome[i]
				} else {
					child[i] = p2.genome[i]
				}
				if rng.Float64() < mutation {
					child[i] = rng.Intn(len(space.Knobs[i].Values))
				}
			}
			children = append(children, child)
		}
		costs, stopped = evaluateBatch(children)
		for i, child := range children {
			next = append(next, individual{genome: child, cost: costs[i]})
		}
		population = next
	}
	return tr.finish()
}

// XGBTuner is the model-guided tuner: it trains a gradient-boosted-trees
// cost model on the measurements so far, scores a large pool of random
// candidates with the model, and measures only the most promising batch —
// AutoTVM's transfer-learning loop with our from-scratch XGBoost.
type XGBTuner struct {
	BatchSize int            // measurements per round (default 16)
	PoolSize  int            // model-scored candidates per round (default 256)
	Params    xgboost.Params // zero value → xgboost.DefaultParams()
}

// Tune implements Tuner.
func (x XGBTuner) Tune(space *Space, measure MeasureFunc, opts Options) (Result, error) {
	if opts.Trials <= 0 {
		return Result{}, fmt.Errorf("autotune: XGB tuner needs a positive trial budget")
	}
	batch := x.BatchSize
	if batch <= 0 {
		batch = 16
	}
	pool := x.PoolSize
	if pool <= 0 {
		pool = 256
	}
	params := x.Params
	if params.Rounds == 0 {
		params = xgboost.DefaultParams()
		params.Rounds = 30
	}
	params.Seed = opts.Seed
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := newTracker(opts.EarlyStopping)
	size := space.Size()

	seen := make(map[int64]bool)
	var features [][]float64
	var targets []float64
	var maxSecondary float64 = 1

	featurize := func(cfg Config) []float64 {
		vals := cfg.Values()
		out := make([]float64, len(vals))
		for i, v := range vals {
			out[i] = float64(v)
		}
		return out
	}
	// scalarize folds the lexicographic cost into one regression target,
	// keeping Primary dominant: Secondary/(2·maxSecondary) < 1 never crosses
	// integer Primary gaps.
	scalarize := func(c Cost) float64 {
		if c.IsInfeasible() {
			return 0 // handled separately; never reaches the model
		}
		return c.Primary + c.Secondary/(2*maxSecondary)
	}

	// measureIdxs costs a batch of already-reserved indices (parallel under
	// a Measurer) and records the results in order, so the trial log is
	// identical to measuring one index at a time. It returns true when
	// early stopping fired.
	measureIdxs := func(idxs []int64) bool {
		cfgs := make([]Config, len(idxs))
		for i, idx := range idxs {
			cfgs[i] = space.At(idx)
		}
		return opts.measureEach(measure, cfgs, func(i int, cost Cost) bool {
			stop := tr.record(Trial{Config: cfgs[i], Cost: cost})
			if !cost.IsInfeasible() {
				if cost.Secondary > maxSecondary {
					maxSecondary = cost.Secondary
				}
				features = append(features, featurize(cfgs[i]))
				targets = append(targets, 0) // rewritten below, once maxSecondary is known
			}
			return stop
		})
	}

	randomUnseen := func() (int64, bool) {
		if int64(len(seen)) >= size {
			return 0, false
		}
		for tries := 0; tries < 64; tries++ {
			idx := rng.Int63n(size)
			if !seen[idx] {
				return idx, true
			}
		}
		for idx := int64(0); idx < size; idx++ {
			if !seen[idx] {
				return idx, true
			}
		}
		return 0, false
	}

	// Warm-up: two batches of random measurements.
	var warm []int64
	for i := 0; i < 2*batch && tr.result.Measured+len(warm) < opts.Trials; i++ {
		idx, ok := randomUnseen()
		if !ok {
			break
		}
		seen[idx] = true
		warm = append(warm, idx)
	}
	if measureIdxs(warm) {
		return tr.finish()
	}

	for tr.result.Measured < opts.Trials && int64(len(seen)) < size {
		// Refresh regression targets with the current maxSecondary scale.
		ti := 0
		for _, trial := range tr.result.Trials {
			if trial.Cost.IsInfeasible() {
				continue
			}
			targets[ti] = scalarize(trial.Cost)
			ti++
		}
		var model *xgboost.Model
		if len(features) >= 4 {
			var err error
			model, err = xgboost.Train(features, targets, params)
			if err != nil {
				return tr.result, fmt.Errorf("autotune: training cost model: %w", err)
			}
		}
		// Score a pool of unseen candidates.
		type scored struct {
			idx  int64
			pred float64
		}
		candidates := make([]scored, 0, pool)
		for i := 0; i < pool; i++ {
			idx, ok := randomUnseen()
			if !ok {
				break
			}
			s := scored{idx: idx}
			if model != nil {
				s.pred = model.Predict(featurize(space.At(idx)))
			} else {
				s.pred = rng.Float64()
			}
			candidates = append(candidates, s)
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].pred < candidates[j].pred })
		var picked []int64
		for _, c := range candidates {
			if len(picked) >= batch || tr.result.Measured+len(picked) >= opts.Trials {
				break
			}
			if seen[c.idx] {
				continue
			}
			seen[c.idx] = true
			picked = append(picked, c.idx)
		}
		if measureIdxs(picked) {
			return tr.finish()
		}
		if len(picked) == 0 {
			break
		}
	}
	return tr.finish()
}
