package autotune

import (
	"runtime"
	"sync"

	"repro/internal/farm"
	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

// ParallelMeasurer fans a batch out over a pool of goroutines calling f.
// Use it for cheap, pure measure functions (the psums target) that are not
// worth routing through the simulation farm; workers <= 0 selects
// GOMAXPROCS. f must be safe for concurrent use — every shipped MeasureFunc
// is: the psum costs are pure functions and the cycle/energy costs check a
// private engine out of a sync.Pool per call.
func ParallelMeasurer(workers int, f MeasureFunc) Measurer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return parallelMeasurer{workers: workers, f: f}
}

type parallelMeasurer struct {
	workers int
	f       MeasureFunc
}

func (p parallelMeasurer) MeasureBatch(cfgs []Config) []Cost {
	costs := make([]Cost, len(cfgs))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	n := p.workers
	if n > len(cfgs) {
		n = len(cfgs)
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(cfgs) {
					return
				}
				costs[i] = p.f(cfgs[i])
			}
		}()
	}
	wg.Wait()
	return costs
}

// FarmConvCycleMeasurer measures conv mappings by simulated cycle count
// through the simulation farm: feasible configurations become dry-run jobs
// that execute concurrently across the farm's workers, and repeated
// configurations — common across tuner generations and repeated sweeps —
// are served from the content-addressed cache. Dry-run jobs take the
// analytical fast path (closed-form per tile-size class), so each
// measurement is O(boundary classes) rather than O(steps). Costs are
// identical to ConvCycleCost's.
func FarmConvCycleMeasurer(f *farm.Farm, cfg config.HWConfig, d tensor.ConvDims) Measurer {
	return farmCycleMeasurer{
		farm: f,
		job: func(c Config) (farm.Job, bool) {
			m := ConvMappingOf(c)
			if err := m.Validate(d, cfg.MSSize); err != nil {
				return farm.Job{}, false
			}
			return farm.Job{HW: cfg, Kind: farm.Conv2D, Dims: d, ConvMapping: m, DryRun: true}, true
		},
	}
}

// FarmFCCycleMeasurer is the dense-layer analogue of FarmConvCycleMeasurer,
// matching FCCycleCost.
func FarmFCCycleMeasurer(f *farm.Farm, cfg config.HWConfig, batches, inNeurons, outNeurons int) Measurer {
	return farmCycleMeasurer{
		farm: f,
		job: func(c Config) (farm.Job, bool) {
			m := FCMappingOf(c)
			if err := m.Validate(batches, inNeurons, outNeurons, cfg.MSSize); err != nil {
				return farm.Job{}, false
			}
			return farm.Job{HW: cfg, Kind: farm.Dense, FCMapping: m,
				M: batches, K: inNeurons, N: outNeurons, DryRun: true}, true
		},
	}
}

type farmCycleMeasurer struct {
	farm *farm.Farm
	job  func(Config) (farm.Job, bool)
}

func (fm farmCycleMeasurer) MeasureBatch(cfgs []Config) []Cost {
	costs := make([]Cost, len(cfgs))
	futures := make([]*farm.Future, len(cfgs))
	for i, c := range cfgs {
		j, ok := fm.job(c)
		if !ok {
			costs[i] = Infeasible
			continue
		}
		futures[i] = fm.farm.Submit(j)
	}
	for i, fu := range futures {
		if fu == nil {
			continue
		}
		res, err := fu.Wait()
		if err != nil {
			costs[i] = Infeasible
			continue
		}
		costs[i] = Cost{Primary: float64(res.Stats.Cycles)}
	}
	return costs
}
