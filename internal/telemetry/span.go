package telemetry

import (
	"sync"
	"time"
)

// Phase is one stage of a job's lifecycle through the farm. The phases are
// ordered the way a cache-missing job experiences them: it waits in the
// queue, pays the single-flight bookkeeping, is looked up in the memory and
// disk tiers, computed, and persisted back into the tiers.
type Phase uint8

// Lifecycle phases.
const (
	PhaseEnqueueWait Phase = iota // queued, waiting for a worker
	PhaseDedup                    // single-flight lookup/attach bookkeeping
	PhaseMemLookup                // memory-tier probe
	PhaseDiskLookup               // disk-tier probe
	PhaseCompute                  // simulator execution
	PhasePersist                  // write-back into the cache tiers
	NumPhases
)

var phaseNames = [NumPhases]string{
	"enqueue_wait", "dedup", "mem_lookup", "disk_lookup", "compute", "persist",
}

// String returns the phase's snake_case name, used as the phase label value
// and the /stats summary key.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Span records one job's per-phase wall-clock durations. Spans are
// fixed-size structs recycled through a pool: Begin takes one from the pool
// zeroed, End returns it, and the record path (Observe) is allocation-free,
// which is what lets every farm job carry a span without disturbing the
// allocation-free steady state.
//
// A span is owned by a single job execution; Observe and Take are not safe
// for concurrent use on the same span.
type Span struct {
	start time.Time
	durs  [NumPhases]time.Duration
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// BeginSpan takes a zeroed span from the pool, stamped with its start time.
func BeginSpan() *Span {
	s := spanPool.Get().(*Span)
	s.start = time.Now()
	for i := range s.durs {
		s.durs[i] = 0
	}
	return s
}

// EndSpan returns a span to the pool. The span must not be used afterwards.
func EndSpan(s *Span) {
	if s != nil {
		spanPool.Put(s)
	}
}

// Observe accumulates d into phase p (multiple observations add up: a
// persist that writes two tiers records both).
func (s *Span) Observe(p Phase, d time.Duration) {
	if s != nil && p < NumPhases {
		s.durs[p] += d
	}
}

// Duration returns the accumulated time in phase p.
func (s *Span) Duration(p Phase) time.Duration {
	if s == nil || p >= NumPhases {
		return 0
	}
	return s.durs[p]
}

// Start returns the span's begin time.
func (s *Span) Start() time.Time { return s.start }

// PhaseHistograms is one latency histogram per lifecycle phase, registered
// as a single family distinguished by the phase label. ObserveSpan rolls a
// finished span into them.
type PhaseHistograms struct {
	hists [NumPhases]*Histogram
}

// NewPhaseHistograms registers (or retrieves) the per-phase histogram
// family under name in reg.
func NewPhaseHistograms(reg *Registry, name, help string) *PhaseHistograms {
	ph := &PhaseHistograms{}
	for p := Phase(0); p < NumPhases; p++ {
		ph.hists[p] = reg.Histogram(name, help, nil, Label{Name: "phase", Value: p.String()})
	}
	return ph
}

// Observe records d into phase p's histogram.
func (ph *PhaseHistograms) Observe(p Phase, d time.Duration) {
	if ph != nil && p < NumPhases {
		ph.hists[p].Observe(d.Seconds())
	}
}

// ObserveSpan rolls every non-zero phase of s into the histograms.
func (ph *PhaseHistograms) ObserveSpan(s *Span) {
	if ph == nil || s == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		if d := s.durs[p]; d > 0 {
			ph.hists[p].Observe(d.Seconds())
		}
	}
}

// Summaries returns the per-phase rollups keyed by phase name, for the
// /stats endpoint.
func (ph *PhaseHistograms) Summaries() map[string]HistogramSummary {
	out := make(map[string]HistogramSummary, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		out[p.String()] = ph.hists[p].Summary()
	}
	return out
}

// Trace is the JSON echo of a finished span: where a job's wall-clock time
// went and which tier answered it. It is transport state — per submission,
// never cached or persisted — and is only materialised when a caller asks
// for it (the "trace": true request flag, the server-wide -trace default,
// or slow-job logging), so the untraced hot path allocates nothing.
type Trace struct {
	// Key is the job's content-addressed cache key.
	Key string `json:"key,omitempty"`
	// Source says which path produced the result: "memory", "disk",
	// "compute", "dedup" (attached to an identical in-flight execution),
	// "error", "panic" (a simulator panic recovered into a per-job error)
	// or "cancelled" (removed from the queue by cancellation, deadline
	// expiry or shutdown before a worker executed it).
	Source string `json:"source"`
	// Error is the job's failure message, present only for failed, panicked
	// or cancelled submissions.
	Error string `json:"error,omitempty"`
	// Per-phase wall-clock durations in milliseconds; zero phases are
	// omitted (a memory hit has no compute phase).
	EnqueueWaitMS float64 `json:"enqueue_wait_ms,omitempty"`
	DedupMS       float64 `json:"dedup_ms,omitempty"`
	MemLookupMS   float64 `json:"mem_lookup_ms,omitempty"`
	DiskLookupMS  float64 `json:"disk_lookup_ms,omitempty"`
	ComputeMS     float64 `json:"compute_ms,omitempty"`
	PersistMS     float64 `json:"persist_ms,omitempty"`
	// TotalMS is the span's begin-to-finish wall clock, a superset of the
	// phase durations (scheduling gaps between phases count toward the
	// total only).
	TotalMS float64 `json:"total_ms"`
	// Peer and Remote describe a coordinator hop: Peer names the node the
	// job was dispatched to and Remote is the lifecycle trace that node
	// reported, so a remote job's response carries one trace per hop — the
	// coordinator's (dispatch overhead, wire time) wrapping the executing
	// node's (queue wait, lookups, compute). Both are empty for local jobs.
	Peer   string `json:"peer,omitempty"`
	Remote *Trace `json:"remote,omitempty"`
	// Hedged marks a coordinator hop won by a hedged second dispatch: the
	// primary owner outlived the hedge threshold and this peer answered
	// first. The result bytes are identical either way.
	Hedged bool `json:"hedged,omitempty"`
}

// MS converts a duration to float64 milliseconds, the unit every trace and
// summary field uses (float, so sub-millisecond analytic runs never
// truncate to 0).
func MS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ms(d time.Duration) float64 { return MS(d) }

// Take materialises the span into a freshly allocated Trace, stamped with
// the job key, result source and total wall-clock time since the span
// began. The span itself stays usable (and poolable) afterwards.
func (s *Span) Take(key, source string) *Trace {
	t := &Trace{
		Key:           key,
		Source:        source,
		EnqueueWaitMS: ms(s.durs[PhaseEnqueueWait]),
		DedupMS:       ms(s.durs[PhaseDedup]),
		MemLookupMS:   ms(s.durs[PhaseMemLookup]),
		DiskLookupMS:  ms(s.durs[PhaseDiskLookup]),
		ComputeMS:     ms(s.durs[PhaseCompute]),
		PersistMS:     ms(s.durs[PhasePersist]),
		TotalMS:       ms(time.Since(s.start)),
	}
	return t
}

// TraceRing is a bounded ring of recent traces for the /debug/traces
// endpoint: the last N traces the farm produced, newest first, with a
// monotone total so a poller can tell how many it missed.
type TraceRing struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int
	total uint64
}

// NewTraceRing returns a ring keeping the most recent n traces (n < 1
// selects 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]*Trace, n)}
}

// Add records a trace, evicting the oldest when full. Nil traces are
// ignored.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many traces were ever added.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the buffered traces, newest first.
func (r *TraceRing) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + 2*len(r.buf)) % len(r.buf)
		if r.buf[idx] == nil {
			break
		}
		out = append(out, r.buf[idx])
	}
	return out
}
