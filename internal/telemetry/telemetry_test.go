package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the Prometheus text exposition format: family
// ordering, HELP/TYPE lines, label rendering, cumulative histogram buckets
// and the _sum/_count series. Any format drift breaks real scrapers, so
// the expected output is compared verbatim.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs_total", "Jobs submitted.", Label{"kind", "conv2d"})
	c.Add(3)
	reg.Counter("jobs_total", "Jobs submitted.", Label{"kind", "dense"}).Inc()
	g := reg.Gauge("queue_depth", "Jobs waiting.")
	g.Set(2.5)
	reg.GaugeFunc("workers", "Worker count.", func() float64 { return 4 })
	h := reg.Histogram("latency_seconds", "Job latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs submitted.
# TYPE jobs_total counter
jobs_total{kind="conv2d"} 3
jobs_total{kind="dense"} 1
# HELP latency_seconds Job latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="10"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 101.05
latency_seconds_count 4
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 2.5
# HELP workers Worker count.
# TYPE workers gauge
workers 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteSamples pins the hand-rendered family format used for
// stats-snapshot-derived metrics.
func TestWriteSamples(t *testing.T) {
	var sb strings.Builder
	err := WriteSamples(&sb, "store_hits_total", "Tier hits.", "counter",
		Sample{Labels: []Label{{"tier", "memory"}}, Value: 7},
		Sample{Labels: []Label{{"tier", "disk"}}, Value: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP store_hits_total Tier hits.
# TYPE store_hits_total counter
store_hits_total{tier="memory"} 7
store_hits_total{tier="disk"} 2
`
	if got := sb.String(); got != want {
		t.Errorf("samples drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries pins the le contract: a value exactly on a
// bound counts in that bound's bucket (v <= bound), the next representable
// value above it in the next bucket, and values beyond the last bound in
// +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	h := newHistogram(bounds)
	h.Observe(0.001)                            // exactly on bound 0 → bucket 0
	h.Observe(math.Nextafter(0.001, 1))         // just above → bucket 1
	h.Observe(0.01)                             // on bound 1 → bucket 1
	h.Observe(0.1)                              // on bound 2 → bucket 2
	h.Observe(math.Nextafter(0.1, 1))           // just above last bound → +Inf
	h.Observe(0)                                // below everything → bucket 0
	h.Observe(math.Inf(1))                      // +Inf value → +Inf bucket
	wantCounts := []uint64{2, 2, 1, 2}          // per-bucket, non-cumulative
	snap := h.Snapshot()
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d: count %d, want %d (all: %v)", i, snap.Counts[i], want, snap.Counts)
		}
	}
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
}

// TestHistogramQuantile checks the interpolated estimate on a known shape.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all mass in the first bucket
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %v, want within (0, 1]", q)
	}
	// Mass beyond the last bound clamps to the largest finite bound.
	h2 := newHistogram([]float64{1, 2, 4})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 4 {
		t.Errorf("+Inf-bucket p99 = %v, want clamp to 4", q)
	}
	// Empty histogram.
	if q := newHistogram([]float64{1}).Snapshot().Quantile(0.9); q != 0 {
		t.Errorf("empty p90 = %v, want 0", q)
	}
}

// TestHistogramSummary checks the millisecond rollup.
func TestHistogramSummary(t *testing.T) {
	h := newHistogram(DefBuckets)
	h.Observe(0.010)
	h.Observe(0.030)
	s := h.Summary()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if math.Abs(s.SumMS-40) > 1e-9 {
		t.Errorf("sum = %v ms, want 40", s.SumMS)
	}
	if math.Abs(s.MeanMS-20) > 1e-9 {
		t.Errorf("mean = %v ms, want 20", s.MeanMS)
	}
}

// TestRegistrationIdempotent checks that re-registering a series returns
// the same metric, which is what lets independent layers share handles by
// name alone.
func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "X.", Label{"k", "v"})
	b := reg.Counter("x_total", "X.", Label{"k", "v"})
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	if reg.Counter("x_total", "X.", Label{"k", "w"}) == a {
		t.Error("distinct labels returned the same counter")
	}
	h1 := reg.Histogram("h_seconds", "H.", []float64{1, 2})
	h2 := reg.Histogram("h_seconds", "H.", nil)
	if h1 != h2 {
		t.Error("histogram re-registration returned a distinct histogram")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "X.", Label{"k", "v"})
}

// TestConcurrentRecordAndScrape hammers every metric kind from many
// goroutines while scraping concurrently; run under -race this proves the
// record and exposition paths are data-race-free, and afterwards the
// totals must be exact (no lost updates).
func TestConcurrentRecordAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "C.")
	g := reg.Gauge("g", "G.")
	h := reg.Histogram("h_seconds", "H.", nil)
	ph := NewPhaseHistograms(reg, "p_seconds", "P.")
	ring := NewTraceRing(64)

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := BeginSpan()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) * 1e-6)
				ph.Observe(Phase(i%int(NumPhases)), 1)
				if i%500 == 0 {
					ring.Add(s.Take("k", "compute"))
				}
			}
			EndSpan(s)
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			ring.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := h.Snapshot().Count; got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestRecordPathAllocFree pins every hot-path record operation to zero
// allocations: these run per job (and per histogram observation inside the
// engines), so a single allocation here would undo the allocation-free
// steady state.
func TestRecordPathAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "C.")
	g := reg.Gauge("g", "G.")
	h := reg.Histogram("h_seconds", "H.", nil)
	ph := NewPhaseHistograms(reg, "p_seconds", "P.")

	if a := testing.AllocsPerRun(100, func() { c.Inc() }); a > 0 {
		t.Errorf("Counter.Inc allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(100, func() { g.Set(1); g.Add(2) }); a > 0 {
		t.Errorf("Gauge Set/Add allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(100, func() { h.Observe(3e-5) }); a > 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		s := BeginSpan()
		s.Observe(PhaseCompute, 42)
		s.Observe(PhasePersist, 7)
		ph.ObserveSpan(s)
		EndSpan(s)
	}); a > 0 {
		t.Errorf("span begin/observe/rollup/end allocates %.1f/op", a)
	}
}

// TestTraceRing checks bounded eviction, newest-first order and the
// monotone total.
func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d entries", len(got))
	}
	for i := 1; i <= 5; i++ {
		r.Add(&Trace{Key: string(rune('a' + i - 1))})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	if snap[0].Key != "e" || snap[1].Key != "d" || snap[2].Key != "c" {
		t.Errorf("ring order = %q,%q,%q, want e,d,c", snap[0].Key, snap[1].Key, snap[2].Key)
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
	var nilRing *TraceRing
	nilRing.Add(&Trace{}) // nil receivers are no-ops
	if nilRing.Snapshot() != nil || nilRing.Total() != 0 {
		t.Error("nil ring is not inert")
	}
}

// TestSpanTake checks the trace materialisation, including zero-phase
// omission via the accumulated durations.
func TestSpanTake(t *testing.T) {
	s := BeginSpan()
	s.Observe(PhaseCompute, 2e6)  // 2ms
	s.Observe(PhasePersist, 5e5)  // 0.5ms
	s.Observe(PhasePersist, 5e5)  // accumulates → 1ms
	tr := s.Take("key123", "compute")
	EndSpan(s)
	if tr.Key != "key123" || tr.Source != "compute" {
		t.Errorf("identity fields: %+v", tr)
	}
	if tr.ComputeMS != 2 || tr.PersistMS != 1 {
		t.Errorf("phase durations: compute %v persist %v, want 2 and 1", tr.ComputeMS, tr.PersistMS)
	}
	if tr.EnqueueWaitMS != 0 || tr.DiskLookupMS != 0 {
		t.Errorf("untouched phases non-zero: %+v", tr)
	}
	if tr.TotalMS < 0 {
		t.Errorf("total %v < 0", tr.TotalMS)
	}
}

// TestRatio pins the guarded division.
func TestRatio(t *testing.T) {
	if r := Ratio(0, 0); r != 0 {
		t.Errorf("Ratio(0,0) = %v", r)
	}
	if r := Ratio(3, 1); r != 0.75 {
		t.Errorf("Ratio(3,1) = %v", r)
	}
}
