// Package telemetry is the dependency-free metrics layer behind the
// simulation stack's observability: atomic counters, gauges, fixed-bucket
// latency histograms with sharded atomic cells, Prometheus text exposition,
// and per-job lifecycle spans (span.go). Everything is stdlib-only and
// allocation-free on the record path — Observe/Add/Set never allocate and
// never take a lock — so the farm's steady-state hot paths stay at ~0
// allocs/op with telemetry enabled (pinned by allocs_test.go at the repo
// root).
//
// Metrics register into a Registry under a family name plus an optional
// fixed label set. Registration is idempotent: requesting an already
// registered (name, labels) series returns the existing metric, so any
// layer that knows a series' name can obtain a handle to it without
// threading pointers through constructors — the farm registers its phase
// histograms once at package init, and the serve layer re-requests the same
// handles to build /stats summaries.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one fixed name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// kind is the Prometheus metric type of a family.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is a programmer error and ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable value that can go up and down. Stored as float64 bits
// so Set is a single atomic store and Add a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc and Dec shift the gauge by ±1 (the in-flight-requests idiom).
func (g *Gauge) Inc() { g.Add(1) }

// Dec shifts the gauge by -1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning the stack's full dynamic range: sub-microsecond analytic dry
// runs through multi-second reference simulations.
var DefBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	2.5e-3, 10e-3, 50e-3, 250e-3, 1, 5, 30,
}

// histShards is the number of independently updated cells per bucket. A
// small power of two is enough: the goal is not perfect spread but keeping
// GOMAXPROCS workers from hammering one cache line.
const histShards = 8

// histShard is one shard's cells, padded so concurrent shards never share
// a cache line through the struct header.
type histShard struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-added
	buckets []atomic.Uint64
	_       [24]byte
}

// Histogram is a fixed-bucket latency histogram: cumulative-on-read bucket
// counts, a sum and a count, each split across histShards sharded atomic
// cells so concurrent Observe calls from many workers do not serialise on
// shared cache lines. Observe is lock-free and allocation-free.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf implied
	shards [histShards]histShard
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing: %v", bounds))
		}
	}
	h := &Histogram{bounds: b}
	for i := range h.shards {
		h.shards[i].buckets = make([]atomic.Uint64, len(b)+1)
	}
	return h
}

// Observe records one value (seconds, for latency histograms). A value v
// lands in the first bucket whose upper bound satisfies v <= bound — the
// Prometheus le (less-or-equal) contract — or the implicit +Inf bucket.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	// Shard selection uses the runtime's per-thread fast random source:
	// no lock, no allocation, and adjacent observations from different
	// workers overwhelmingly land on different cells.
	s := &h.shards[rand.Uint32()&(histShards-1)]
	s.buckets[idx].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
}

// HistogramSnapshot is an aggregated point-in-time view of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds; Counts[i] is the
	// number of observations <= Bounds[i] exclusive of earlier buckets
	// (non-cumulative), with Counts[len(Bounds)] the +Inf bucket.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot aggregates the shards. Concurrent Observe calls may be torn
// across cells (a count landing without its sum yet), which is the usual
// and accepted scrape-time race for lock-free histograms.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		s := &h.shards[i]
		for j := range snap.Counts {
			snap.Counts[j] += s.buckets[j].Load()
		}
		snap.Count += s.count.Load()
		snap.Sum += math.Float64frombits(s.sumBits.Load())
	}
	return snap
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank, the same estimate Prometheus'
// histogram_quantile computes. Returns 0 for an empty histogram; ranks in
// the +Inf bucket clamp to the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket: clamp
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramSummary is the JSON-friendly rollup the /stats endpoint serves:
// count, totals and estimated quantiles, all in milliseconds.
type HistogramSummary struct {
	Count  uint64  `json:"count"`
	SumMS  float64 `json:"sum_ms"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Summary aggregates the histogram into a HistogramSummary.
func (h *Histogram) Summary() HistogramSummary {
	snap := h.Snapshot()
	sum := HistogramSummary{
		Count: snap.Count,
		SumMS: snap.Sum * 1e3,
		P50MS: snap.Quantile(0.50) * 1e3,
		P90MS: snap.Quantile(0.90) * 1e3,
		P99MS: snap.Quantile(0.99) * 1e3,
	}
	if snap.Count > 0 {
		sum.MeanMS = sum.SumMS / float64(snap.Count)
	}
	return sum
}

// metric is one registered series.
type metric struct {
	name   string
	help   string
	kind   kind
	labels []Label
	lstr   string // canonical rendered label set, e.g. {tier="memory"}

	counter *Counter
	gauge   *Gauge
	gfunc   func() float64
	hist    *Histogram
}

// Registry holds registered metrics and renders them in Prometheus text
// exposition format. The zero value is not usable; use NewRegistry or the
// process-wide Default registry.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric // name + canonical labels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every layer registers into and
// the /metrics endpoint exposes.
func Default() *Registry { return defaultRegistry }

// labelString renders a label set canonically (given order, quoted values).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the existing series for (name, labels) when present —
// registration is idempotent — or inserts the one built by mk. A name
// re-registered with a different metric type panics: that is always a
// programming error and silently returning a mismatched handle would
// corrupt the exposition.
func (r *Registry) register(name, help string, k kind, labels []Label, mk func() *metric) *metric {
	key := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", key, k, m.kind))
		}
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, k
	m.labels = append([]Label(nil), labels...)
	m.lstr = labelString(labels)
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or retrieves) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge registers (or retrieves) a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge series whose value is computed at scrape time.
// Re-registering replaces nothing: the first registered function wins,
// matching the idempotence of the other constructors.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func() *metric {
		return &metric{gfunc: f}
	})
}

// Histogram registers (or retrieves) a histogram series with the given
// bucket upper bounds (nil selects DefBuckets). Retrieval ignores bounds:
// the first registration fixes them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, help, kindHistogram, labels, func() *metric {
		return &metric{hist: newHistogram(bounds)}
	}).hist
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4): families sorted by name, HELP/TYPE
// emitted once per family, series sorted by label set, histograms expanded
// into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].lstr < ms[j].lstr
	})

	var sb strings.Builder
	prevFamily := ""
	for _, m := range ms {
		if m.name != prevFamily {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
			prevFamily = m.name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&sb, "%s%s %d\n", m.name, m.lstr, m.counter.Value())
		case kindGauge:
			v := 0.0
			if m.gfunc != nil {
				v = m.gfunc()
			} else {
				v = m.gauge.Value()
			}
			fmt.Fprintf(&sb, "%s%s %s\n", m.name, m.lstr, formatValue(v))
		case kindHistogram:
			writeHistogram(&sb, m)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeHistogram expands one histogram series into its exposition lines.
func writeHistogram(sb *strings.Builder, m *metric) {
	snap := m.hist.Snapshot()
	var cum uint64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		fmt.Fprintf(sb, "%s_bucket%s %d\n", m.name, withLE(m.labels, formatValue(bound)), cum)
	}
	cum += snap.Counts[len(snap.Bounds)]
	fmt.Fprintf(sb, "%s_bucket%s %d\n", m.name, withLE(m.labels, "+Inf"), cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", m.name, m.lstr, formatValue(snap.Sum))
	fmt.Fprintf(sb, "%s_count%s %d\n", m.name, m.lstr, snap.Count)
}

// withLE renders a label set with the le label appended.
func withLE(labels []Label, le string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{Name: "le", Value: le})
	return labelString(all)
}

// Sample is one hand-rendered series value: WriteSamples lets a layer emit
// scrape-time metrics derived from an existing stats snapshot (the farm's
// counters, cache tier sizes) without registering stateful metrics for
// values another subsystem already tracks.
type Sample struct {
	Labels []Label
	Value  float64
}

// WriteSamples renders one family of samples in exposition format. typ is
// "counter" or "gauge".
func WriteSamples(w io.Writer, name, help, typ string, samples ...Sample) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		fmt.Fprintf(&sb, "%s%s %s\n", name, labelString(s.Labels), formatValue(s.Value))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Ratio is the guarded hit-ratio helper every tier rollup uses: hits over
// hits+misses, 0 when nothing was looked up.
func Ratio(hits, misses int64) float64 {
	if hits+misses <= 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
