package importer

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/tensor"
)

const tinyModel = `{
 "name": "tiny",
 "nodes": [
  {"name": "data", "op": "input", "shape": [1, 2, 6, 6]},
  {"name": "w", "op": "constant", "shape": [3, 2, 3, 3]},
  {"name": "conv", "op": "conv2d", "inputs": ["data", "w"], "strides": [1, 1], "padding": [1, 1]},
  {"name": "relu", "op": "relu", "inputs": ["conv"]},
  {"name": "pool", "op": "max_pool2d", "inputs": ["relu"], "kernel": 2, "stride": 2},
  {"name": "flat", "op": "flatten", "inputs": ["pool"]},
  {"name": "fw", "op": "constant", "shape": [4, 27]},
  {"name": "fc", "op": "dense", "inputs": ["flat", "fw"]},
  {"name": "prob", "op": "softmax", "inputs": ["fc"]}
 ],
 "outputs": ["prob"]
}`

func TestLoadTinyModel(t *testing.T) {
	g, err := Load(strings.NewReader(tinyModel))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "tiny" {
		t.Fatalf("name = %q", g.Name)
	}
	if len(g.Outputs) != 1 || !tensor.ShapeEq(g.Outputs[0].OutShape, []int{1, 4}) {
		t.Fatalf("output shape = %v", g.Outputs[0].OutShape)
	}
	ex := &graph.Executor{Graph: g}
	outs, err := ex.Run(map[string]*tensor.Tensor{"data": tensor.RandomUniform(1, 1, 1, 2, 6, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(outs[0].Shape(), []int{1, 4}) {
		t.Fatalf("executed output shape = %v", outs[0].Shape())
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":          `{`,
		"unknown op":        `{"name":"x","nodes":[{"name":"a","op":"frobnicate"}],"outputs":[]}`,
		"unknown input ref": `{"name":"x","nodes":[{"name":"a","op":"relu","inputs":["nope"]}],"outputs":["a"]}`,
		"missing shape":     `{"name":"x","nodes":[{"name":"a","op":"input"}],"outputs":["a"]}`,
		"dup name":          `{"name":"x","nodes":[{"name":"a","op":"input","shape":[1]},{"name":"a","op":"input","shape":[1]}],"outputs":["a"]}`,
		"unknown output":    `{"name":"x","nodes":[{"name":"a","op":"input","shape":[1]}],"outputs":["b"]}`,
		"no outputs":        `{"name":"x","nodes":[{"name":"a","op":"input","shape":[1]}],"outputs":[]}`,
		"conv arity":        `{"name":"x","nodes":[{"name":"a","op":"input","shape":[1,1,4,4]},{"name":"c","op":"conv2d","inputs":["a"]}],"outputs":["c"]}`,
		"unknown field":     `{"name":"x","zorp":1,"nodes":[],"outputs":[]}`,
	}
	for label, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: expected error", label)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := models.TinyCNN(42)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomUniform(5, 1, 1, 2, 10, 10)
	run := func(g *graph.Graph) *tensor.Tensor {
		ex := &graph.Executor{Graph: g}
		outs, err := ex.Run(map[string]*tensor.Tensor{"data": in})
		if err != nil {
			t.Fatal(err)
		}
		return outs[0]
	}
	a, b := run(g), run(g2)
	if !tensor.AllClose(a, b, 1e-6) {
		t.Fatalf("round-trip changed semantics: max diff %v", tensor.MaxAbsDiff(a, b))
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	g := models.MLP(1, 8, 16, 4)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatalf("node count %d != %d", g2.NumNodes(), g.NumNodes())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestRoundTripLeNetStructure(t *testing.T) {
	g := models.LeNet5(7)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := models.ExtractLayers(g)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := models.ExtractLayers(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(l1) != len(l2) {
		t.Fatalf("layer count %d != %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i].String() != l2[i].String() {
			t.Fatalf("layer %d: %q != %q", i, l1[i], l2[i])
		}
	}
}
