// Package importer serialises graphs to and from a JSON interchange format.
// It is this reproduction's stand-in for TVM's model importers: where
// Bifrost accepts PyTorch/TensorFlow/ONNX models through TVM's frontends,
// this repo accepts any model expressed in (or exported to) the JSON schema
// below, exercising the same parse → IR → execute pipeline.
package importer

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// fileModel is the top-level JSON document.
type fileModel struct {
	Name    string     `json:"name"`
	Nodes   []fileNode `json:"nodes"`
	Outputs []string   `json:"outputs"`
}

// fileNode is a single operator in the JSON document. Inputs refer to node
// names, which therefore must be unique.
type fileNode struct {
	Name   string    `json:"name"`
	Op     string    `json:"op"`
	Inputs []string  `json:"inputs,omitempty"`
	Shape  []int     `json:"shape,omitempty"` // input/constant shape
	Data   []float32 `json:"data,omitempty"`  // constant payload; zeros if omitted

	Strides []int   `json:"strides,omitempty"`
	Padding []int   `json:"padding,omitempty"`
	Groups  int     `json:"groups,omitempty"`
	Layout  string  `json:"layout,omitempty"`
	Kernel  int     `json:"kernel,omitempty"`
	Stride  int     `json:"stride,omitempty"`
	Pad     int     `json:"pad,omitempty"`
	Size    int     `json:"size,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
	Beta    float64 `json:"beta,omitempty"`
	Bias    float64 `json:"bias,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
}

// Load reads a JSON model from r and builds a validated graph with inferred
// shapes.
func Load(r io.Reader) (*graph.Graph, error) {
	var fm fileModel
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fm); err != nil {
		return nil, fmt.Errorf("importer: decoding model: %w", err)
	}
	g := graph.New(fm.Name)
	byName := make(map[string]*graph.Node, len(fm.Nodes))
	resolve := func(owner string, names []string) ([]*graph.Node, error) {
		out := make([]*graph.Node, len(names))
		for i, nm := range names {
			n, ok := byName[nm]
			if !ok {
				return nil, fmt.Errorf("importer: node %q references unknown input %q", owner, nm)
			}
			out[i] = n
		}
		return out, nil
	}
	for _, fn := range fm.Nodes {
		if _, dup := byName[fn.Name]; dup {
			return nil, fmt.Errorf("importer: duplicate node name %q", fn.Name)
		}
		ins, err := resolve(fn.Name, fn.Inputs)
		if err != nil {
			return nil, err
		}
		var node *graph.Node
		switch graph.OpKind(fn.Op) {
		case graph.OpInput:
			if len(fn.Shape) == 0 {
				return nil, fmt.Errorf("importer: input %q missing shape", fn.Name)
			}
			node = g.Input(fn.Name, fn.Shape...)
		case graph.OpConstant:
			if len(fn.Shape) == 0 {
				return nil, fmt.Errorf("importer: constant %q missing shape", fn.Name)
			}
			var t *tensor.Tensor
			if fn.Data != nil {
				t = tensor.FromData(fn.Data, fn.Shape...)
			} else {
				t = tensor.New(fn.Shape...)
			}
			node = g.Constant(fn.Name, t)
		case graph.OpConv2D:
			if len(ins) != 2 {
				return nil, fmt.Errorf("importer: conv2d %q needs 2 inputs", fn.Name)
			}
			a := graph.Attrs{Groups: fn.Groups, DataLayout: tensor.Layout(fn.Layout)}
			if len(fn.Strides) == 2 {
				a.StrideH, a.StrideW = fn.Strides[0], fn.Strides[1]
			}
			if len(fn.Padding) == 2 {
				a.PadH, a.PadW = fn.Padding[0], fn.Padding[1]
			}
			node = g.Conv2D(fn.Name, ins[0], ins[1], a)
		case graph.OpDense:
			if len(ins) != 2 {
				return nil, fmt.Errorf("importer: dense %q needs 2 inputs", fn.Name)
			}
			node = g.Dense(fn.Name, ins[0], ins[1])
		case graph.OpBiasAdd:
			if len(ins) != 2 {
				return nil, fmt.Errorf("importer: bias_add %q needs 2 inputs", fn.Name)
			}
			node = g.BiasAdd(fn.Name, ins[0], ins[1])
		case graph.OpReLU:
			node = g.ReLU(fn.Name, ins[0])
		case graph.OpSigmoid:
			node = g.Sigmoid(fn.Name, ins[0])
		case graph.OpTanh:
			node = g.Tanh(fn.Name, ins[0])
		case graph.OpMaxPool:
			node = g.MaxPool2D(fn.Name, ins[0], fn.Kernel, fn.Stride, fn.Pad)
		case graph.OpAvgPool:
			node = g.AvgPool2D(fn.Name, ins[0], fn.Kernel, fn.Stride, fn.Pad)
		case graph.OpSoftmax:
			node = g.Softmax(fn.Name, ins[0])
		case graph.OpLRN:
			node = g.LRN(fn.Name, ins[0], fn.Size, fn.Alpha, fn.Beta, fn.Bias)
		case graph.OpFlatten:
			node = g.Flatten(fn.Name, ins[0])
		case graph.OpAdd:
			if len(ins) != 2 {
				return nil, fmt.Errorf("importer: add %q needs 2 inputs", fn.Name)
			}
			node = g.Add(fn.Name, ins[0], ins[1])
		case graph.OpBatchNorm:
			if len(ins) != 5 {
				return nil, fmt.Errorf("importer: batch_norm %q needs 5 inputs", fn.Name)
			}
			node = g.BatchNorm(fn.Name, ins[0], ins[1], ins[2], ins[3], ins[4], fn.Epsilon)
		case graph.OpDropout:
			node = g.Dropout(fn.Name, ins[0], fn.Rate)
		default:
			return nil, fmt.Errorf("importer: unknown op %q in node %q", fn.Op, fn.Name)
		}
		byName[fn.Name] = node
	}
	for _, nm := range fm.Outputs {
		n, ok := byName[nm]
		if !ok {
			return nil, fmt.Errorf("importer: unknown output %q", nm)
		}
		g.MarkOutput(n)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := g.InferShapes(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadFile reads a JSON model from disk.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes a graph to w in the JSON interchange format, embedding
// constant payloads.
func Save(w io.Writer, g *graph.Graph) error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	fm := fileModel{Name: g.Name}
	for _, n := range order {
		fn := fileNode{Name: n.Name, Op: string(n.Op)}
		for _, in := range n.Inputs {
			fn.Inputs = append(fn.Inputs, in.Name)
		}
		switch n.Op {
		case graph.OpInput:
			fn.Shape = n.OutShape
		case graph.OpConstant:
			fn.Shape = n.Value.Shape()
			fn.Data = n.Value.Data()
		case graph.OpConv2D:
			fn.Strides = []int{n.Attrs.StrideH, n.Attrs.StrideW}
			fn.Padding = []int{n.Attrs.PadH, n.Attrs.PadW}
			fn.Groups = n.Attrs.Groups
			fn.Layout = string(n.Attrs.DataLayout)
		case graph.OpMaxPool, graph.OpAvgPool:
			fn.Kernel, fn.Stride, fn.Pad = n.Attrs.PoolKernel, n.Attrs.PoolStride, n.Attrs.PoolPad
		case graph.OpLRN:
			fn.Size, fn.Alpha, fn.Beta, fn.Bias = n.Attrs.LRNSize, n.Attrs.LRNAlpha, n.Attrs.LRNBeta, n.Attrs.LRNBias
		case graph.OpBatchNorm:
			fn.Epsilon = n.Attrs.Epsilon
		case graph.OpDropout:
			fn.Rate = n.Attrs.Rate
		}
		fm.Nodes = append(fm.Nodes, fn)
	}
	for _, out := range g.Outputs {
		fm.Outputs = append(fm.Outputs, out.Name)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fm)
}

// SaveFile writes a graph to disk in the JSON interchange format.
func SaveFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Save(f, g)
}
