package maeri

import (
	"sync"

	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// This file implements the full-accuracy fused fast path: the arithmetic
// half of a non-dry simulation, decoupled from the counters. A default
// (non-Reference) full-accuracy run computes its Stats through the PR 2
// analytical models (analytic.go) and its output tensor through the kernels
// here — the step loop in maeri.go is never entered.
//
// Bitwise equality with the step-loop reference is the contract. The step
// loop's arithmetic has one property the fast path must reproduce exactly,
// because float32 addition is not associative: each output element is
// accumulated per *reduction tile* — a fresh accumulator per (c0, r0, s0)
// (conv) or k0 (dense) tile, summed in ascending (c, r, s) / k order within
// the tile and then added onto the output — with the tiles visited in
// lexicographic order. The fused kernels therefore iterate the same tile
// decomposition in the same order and keep one fresh accumulator per tile;
// only the loops *around* that chain (which outputs are computed together)
// are reorganised for locality and vectorisation-friendly inner loops. Two
// further reference behaviours are preserved: out-of-bounds (padding) taps
// are skipped entirely, and skipping a zero input activation is a bitwise
// no-op (the products it would contribute are ±0, and an accumulator
// starting at +0 can never become −0 under round-to-nearest), which lets
// the fused conv kernel exploit activation sparsity for free. The extended
// equiv_test.go suite pins output bytes, not just Stats.

// redTile is one (c0, r0, s0) reduction-space tile of a conv mapping.
type redTile struct {
	c0, tc, r0, tr, s0, ts int
}

// convScratch is the reusable working state of one fusedConv call,
// recycled through a pool so the steady-state fused path allocates nothing:
// tile tables, tap lists, gather buffers and the per-tile panel tracking.
type convScratch struct {
	tiles     []redTile
	taps      []convTap
	ivs       []float32
	kofs      []int
	panels    [][]float32
	panelSigs [][2]int
	// sharedPanels records that panels currently reference cache-owned
	// (immutable) slices; the next cacheless call must drop them instead of
	// overwriting them in place.
	sharedPanels bool
}

var convScratchPool = sync.Pool{New: func() any { return &convScratch{} }}

// convRedTiles enumerates the reduction tiles in the step loop's visit
// order: c0 outermost, then r0, then s0, appending into tiles (reused
// scratch).
func convRedTiles(d tensor.ConvDims, m mapping.ConvMapping, tiles []redTile) []redTile {
	cg := d.C / d.G
	for c0 := 0; c0 < cg; c0 += m.TC {
		tc := eff(c0, m.TC, cg)
		for r0 := 0; r0 < d.R; r0 += m.TR {
			tr := eff(r0, m.TR, d.R)
			for s0 := 0; s0 < d.S; s0 += m.TS {
				tiles = append(tiles, redTile{c0, tc, r0, tr, s0, eff(s0, m.TS, d.S)})
			}
		}
	}
	return tiles
}

// convTap is one in-bounds (c, r, s) reduction tap of a tile, resolved for a
// fixed (n, x): the kernel row it multiplies by and where its input row
// starts. The horizontal coordinate stays symbolic (ix = y·StrideW − PadW +
// dx) so one tap list serves the whole output row.
type convTap struct {
	kerOff int // kernel offset of the tap's K extent (group base included)
	inOff  int // input offset of (n, iy, ·, gc); add ix·C for a column
	dx     int // the tap's s coordinate
}

// fusedConv computes the exact NPQK output of Conv2D(in NHWC, kernel RSCK)
// under the given mapping, bit-identical to the step-loop reference
// (convStep), without simulating steps. It is an implicit GEMM over the
// mapping-ordered reduction axis, shaped like the packed GEMM micro-kernel:
// for each output position, eight output channels accumulate per reduction
// tile — the reference's fresh per-tile accumulator — while the tile's taps
// stream by in ascending (c, r, s) order, and the accumulator block is then
// added onto the output. Out-of-bounds taps are skipped exactly as the
// reference skips them; where taps are dropped or kept differently across
// the two column paths below, the difference is always a ±0 product — a
// bitwise no-op.
//
// Columns split into two paths per (x, tile):
//
//   - interior columns (every tap's window in bounds): the tile's kernel
//     rows are packed once into a contiguous [K-block][tap][8] panel —
//     cached across output rows and batches until the tile's valid-R window
//     changes — and tensor.PanelDot8 (AVX where available) streams the
//     gathered activations against it;
//   - boundary columns: taps are gathered per column with bounds checks and
//     zero-activation skips, and a pure-Go eight-accumulator kernel walks
//     the kernel rows in place.
func fusedConv(in, kernel *tensor.Tensor, d tensor.ConvDims, m mapping.ConvMapping, pc *tensor.PackCache) *tensor.Tensor {
	p, q := d.P(), d.Q()
	cg, kg := d.C/d.G, d.K/d.G
	out := tensor.NewPooled(d.N, p, q, d.K)
	inD, kerD, outD := in.Data(), kernel.Data(), out.Data()

	scratch := convScratchPool.Get().(*convScratch)
	defer convScratchPool.Put(scratch)
	tiles := convRedTiles(d, m, scratch.tiles[:0])
	scratch.tiles = tiles

	taps := scratch.taps[:0]
	ivs := scratch.ivs   // per-position gathered activations, tap order
	kofs := scratch.kofs // matching kernel row offsets
	// Per-tile kernel panels, tracked until the tile's valid-R window (or
	// group) changes — (first kerOff, tap count) determines both. Interior
	// output rows therefore repack nothing; together the panel pointers
	// reference at most one reordered copy of one group's kernel. With a
	// PackCache the panels themselves are content-keyed and shared across
	// calls: a sweep job whose weights (and tile decomposition) match an
	// earlier job's reuses its packed panels instead of rebuilding them.
	if cap(scratch.panels) < len(tiles) {
		scratch.panels = make([][]float32, len(tiles))
		scratch.panelSigs = make([][2]int, len(tiles))
	}
	if scratch.sharedPanels || pc != nil {
		// Cache-owned slices are immutable; they must never be reused as
		// packing scratch (and scratch capacity is useless to a cache-fed
		// call). Clear the whole backing slice — a shorter call must not
		// leave shared slices hiding past its own tile count.
		for i := range scratch.panels {
			scratch.panels[i] = nil
		}
	}
	scratch.sharedPanels = pc != nil
	panels := scratch.panels[:len(tiles)]
	panelSigs := scratch.panelSigs[:len(tiles)]
	for i := range panelSigs {
		panelSigs[i] = [2]int{-1, -1}
	}
	nblocks := kg / 8
	wC := d.W * d.C
	kerHash := [32]byte{}
	if pc != nil {
		kerHash = kernel.ContentHash()
	}
	for g := 0; g < d.G; g++ {
		kBase := g * kg
		var baseHash [32]byte
		if pc != nil {
			// The panel bytes are a pure function of the kernel contents,
			// the tile decomposition (geometry + reduction tiling), the
			// group's K base and the per-group K extent kg (which sets the
			// panel's K-block count — two group counts can share identical
			// kernel bytes but need different panel lengths); sig (first
			// kernel offset, tap count) pins the valid-R window within a
			// tile. Everything not carried in the per-tile key parameters
			// folds into the hash here.
			baseHash = tensor.CombineHash(kerHash,
				d.R, d.S, cg, d.K, kg, kBase, m.TC, m.TR, m.TS)
		}
		for n := 0; n < d.N; n++ {
			nIn := n * d.H * wC
			for x := 0; x < p; x++ {
				outX := (n*p+x)*q*d.K + kBase
				for ti, t := range tiles {
					// Resolve the tile's in-bounds taps for this output row,
					// in the reference's ascending (c, r, s) order.
					taps = taps[:0]
					for c := t.c0; c < t.c0+t.tc; c++ {
						gc := g*cg + c
						for r := t.r0; r < t.r0+t.tr; r++ {
							iy := x*d.StrideH - d.PadH + r
							if iy < 0 || iy >= d.H {
								continue
							}
							for s := t.s0; s < t.s0+t.ts; s++ {
								taps = append(taps, convTap{
									kerOff: ((r*d.S+s)*cg+c)*d.K + kBase,
									inOff:  nIn + iy*wC + gc,
									dx:     s,
								})
							}
						}
					}
					nt := len(taps)
					if nt == 0 {
						continue
					}
					if cap(ivs) < nt {
						ivs = make([]float32, nt)
						kofs = make([]int, nt)
					}

					// Interior column range: every tap's ix in bounds.
					dxMin, dxMax := t.s0, t.s0+t.ts-1
					yLo := 0
					if d.PadW > dxMin {
						yLo = (d.PadW - dxMin + d.StrideW - 1) / d.StrideW
					}
					yHi := 0
					if lim := d.W - 1 + d.PadW - dxMax; lim >= 0 {
						yHi = min(q, lim/d.StrideW+1)
					}
					if yLo > yHi {
						yLo = yHi
					}

					var panel []float32
					if nblocks > 0 && yLo < yHi {
						// Pack (or reuse) the tile's kernel panel. With a
						// PackCache the panel is looked up content-keyed and
						// published immutably on a miss, so identical-weight
						// jobs share one packed copy; without one it is
						// per-call scratch, overwritten in place.
						sig := [2]int{taps[0].kerOff, nt}
						if panelSigs[ti] != sig {
							need := nblocks * nt * 8
							if pc != nil {
								key := tensor.PackKey{Op: "maeri/conv-panel/v1",
									Hash: baseHash, P: [6]int{ti, sig[0], sig[1]}}
								if ct, ok := pc.Get(key); ok {
									panel = ct.Data()
								} else {
									ct := tensor.New(need)
									panel = ct.Data()
									packConvPanel(panel, kerD, taps, nblocks, nt)
									pc.Put(key, ct)
								}
							} else {
								panel = panels[ti]
								if cap(panel) < need {
									panel = make([]float32, need)
								}
								panel = panel[:need:need]
								packConvPanel(panel, kerD, taps, nblocks, nt)
							}
							panels[ti] = panel
							panelSigs[ti] = sig
						} else {
							panel = panels[ti]
						}
					}

					for y := yLo; y < yHi; y++ {
						// Interior: gather every tap unchecked (zeros kept —
						// their products are ±0, as in the reference) and
						// stream the packed panel.
						ix0 := y*d.StrideW - d.PadW
						iva := ivs[:nt:nt]
						for t2, tp := range taps {
							iva[t2] = inD[tp.inOff+(ix0+tp.dx)*d.C]
						}
						outY := outX + y*d.K
						if nblocks > 0 {
							tensor.PanelDot8(nt, nblocks, iva, panel, outD[outY:outY+nblocks*8])
						}
						for k0 := nblocks * 8; k0 < kg; k0++ { // K remainder
							var acc float32
							for t2, iv := range iva {
								acc += iv * kerD[taps[t2].kerOff+k0]
							}
							outD[outY+k0] += acc
						}
					}

					for _, yr := range [2][2]int{{0, yLo}, {yHi, q}} {
						boundaryY(yr[0], yr[1], d, taps, ivs, kofs, inD, kerD, outD, outX, kg)
					}
				}
			}
		}
	}
	// Hand the grown working slices back to the pooled scratch so the next
	// call starts at full capacity.
	scratch.taps, scratch.ivs, scratch.kofs = taps, ivs, kofs
	return out
}

// packConvPanel fills panel (nblocks·nt·8 values, [K-block][tap][8] layout)
// with the tap kernel rows of one reduction tile.
func packConvPanel(panel []float32, kerD []float32, taps []convTap, nblocks, nt int) {
	for kb := 0; kb < nblocks; kb++ {
		row := panel[kb*nt*8:]
		for t2, tp := range taps {
			copy(row[t2*8:t2*8+8], kerD[tp.kerOff+kb*8:tp.kerOff+kb*8+8])
		}
	}
}

// boundaryY handles the output columns whose window leaves the input: taps
// are gathered per column with bounds checks and zero skips, then an
// eight-accumulator register kernel walks the kernel rows in place.
func boundaryY(y0, y1 int, d tensor.ConvDims, taps []convTap, ivs []float32, kofs []int,
	inD, kerD, outD []float32, outX, kg int) {
	for y := y0; y < y1; y++ {
		// Gather this position's live taps once — bounds
		// checks and zero skips are paid per position, not
		// per K block — preserving ascending (c, r, s)
		// order.
		ix0 := y*d.StrideW - d.PadW
		nv := 0
		for _, tp := range taps {
			ix := ix0 + tp.dx
			if ix < 0 || ix >= d.W {
				continue
			}
			iv := inD[tp.inOff+ix*d.C]
			if iv == 0 {
				continue // ±0 products: bitwise no-op
			}
			ivs[nv] = iv
			kofs[nv] = tp.kerOff
			nv++
		}
		if nv == 0 {
			continue
		}
		liveIvs := ivs[:nv:nv]
		liveKofs := kofs[:nv:nv]
		outY := outX + y*d.K
		k0 := 0
		for ; k0+8 <= kg; k0 += 8 {
			var a0, a1, a2, a3, a4, a5, a6, a7 float32
			t := 0
			for ; t+1 < nv; t += 2 { // taps unrolled ×2; adds stay in tap order
				iv0, iv1 := liveIvs[t], liveIvs[t+1]
				ko0 := liveKofs[t] + k0
				ko1 := liveKofs[t+1] + k0
				kr0 := kerD[ko0 : ko0+8 : ko0+8]
				kr1 := kerD[ko1 : ko1+8 : ko1+8]
				a0 += iv0 * kr0[0]
				a1 += iv0 * kr0[1]
				a2 += iv0 * kr0[2]
				a3 += iv0 * kr0[3]
				a4 += iv0 * kr0[4]
				a5 += iv0 * kr0[5]
				a6 += iv0 * kr0[6]
				a7 += iv0 * kr0[7]
				a0 += iv1 * kr1[0]
				a1 += iv1 * kr1[1]
				a2 += iv1 * kr1[2]
				a3 += iv1 * kr1[3]
				a4 += iv1 * kr1[4]
				a5 += iv1 * kr1[5]
				a6 += iv1 * kr1[6]
				a7 += iv1 * kr1[7]
			}
			if t < nv {
				iv := liveIvs[t]
				ko := liveKofs[t] + k0
				kr := kerD[ko : ko+8 : ko+8]
				a0 += iv * kr[0]
				a1 += iv * kr[1]
				a2 += iv * kr[2]
				a3 += iv * kr[3]
				a4 += iv * kr[4]
				a5 += iv * kr[5]
				a6 += iv * kr[6]
				a7 += iv * kr[7]
			}
			// The reference's `outD[oi] += acc` per step.
			dst := outD[outY+k0 : outY+k0+8 : outY+k0+8]
			dst[0] += a0
			dst[1] += a1
			dst[2] += a2
			dst[3] += a3
			dst[4] += a4
			dst[5] += a5
			dst[6] += a6
			dst[7] += a7
		}
		for ; k0 < kg; k0++ { // K remainder, scalar accumulators
			var acc float32
			for t, iv := range liveIvs {
				acc += iv * kerD[liveKofs[t]+k0]
			}
			outD[outY+k0] += acc
		}
	}
}

// fusedDense computes the exact [batches, outN] dense output (input
// [batches, inN] × weights [outN, inN]), bit-identical to the step-loop
// reference: per output element, one fresh accumulator per K tile (the
// mapping's T_K decomposition, ascending), summed in ascending k within the
// tile and added onto the output. Output neurons are processed four at a
// time so each input activation is loaded once per four dot products.
func fusedDense(in, weights *tensor.Tensor, m mapping.FCMapping) *tensor.Tensor {
	batches, inN := in.Dim(0), in.Dim(1)
	outN := weights.Dim(0)
	out := tensor.NewPooled(batches, outN)
	inD, wD, outD := in.Data(), weights.Data(), out.Data()

	for n := 0; n < batches; n++ {
		inRow := inD[n*inN : (n+1)*inN : (n+1)*inN]
		outRow := outD[n*outN : (n+1)*outN : (n+1)*outN]
		s0 := 0
		for ; s0+3 < outN; s0 += 4 {
			w0 := wD[s0*inN : (s0+1)*inN : (s0+1)*inN]
			w1 := wD[(s0+1)*inN : (s0+2)*inN : (s0+2)*inN]
			w2 := wD[(s0+2)*inN : (s0+3)*inN : (s0+3)*inN]
			w3 := wD[(s0+3)*inN : (s0+4)*inN : (s0+4)*inN]
			for k0 := 0; k0 < inN; k0 += m.TK {
				tk := eff(k0, m.TK, inN)
				var a0, a1, a2, a3 float32
				for k := k0; k < k0+tk; k++ {
					iv := inRow[k]
					a0 += iv * w0[k]
					a1 += iv * w1[k]
					a2 += iv * w2[k]
					a3 += iv * w3[k]
				}
				outRow[s0] += a0
				outRow[s0+1] += a1
				outRow[s0+2] += a2
				outRow[s0+3] += a3
			}
		}
		for ; s0 < outN; s0++ {
			wRow := wD[s0*inN : (s0+1)*inN : (s0+1)*inN]
			for k0 := 0; k0 < inN; k0 += m.TK {
				tk := eff(k0, m.TK, inN)
				var acc float32
				for k := k0; k < k0+tk; k++ {
					acc += inRow[k] * wRow[k]
				}
				outRow[s0] += acc
			}
		}
	}
	return out
}
