package maeri

import (
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// The equivalence suite proves the analytical dry-run engine bit-identical
// to the step-loop reference across a grid of geometries, mappings and
// hardware configurations — including boundary-heavy tiles (dimensions not
// divisible by their tile), grouped convolutions and strided layers.

func maeriCfg(msSize, dnBW, rnBW int, accum bool, rn config.ReduceNetworkType) config.HWConfig {
	cfg := config.Default(config.MAERIDenseWorkload)
	cfg.MSSize = msSize
	cfg.DNBandwidth = dnBW
	cfg.RNBandwidth = rnBW
	cfg.AccumBuffer = accum
	cfg.ReduceNetwork = rn
	return cfg.Normalize()
}

func TestAnalyticConvMatchesReference(t *testing.T) {
	dims := []tensor.ConvDims{
		{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, PadH: 1, PadW: 1},
		{N: 2, C: 6, H: 7, W: 9, K: 4, R: 3, S: 3},
		{N: 1, C: 8, H: 11, W: 11, K: 8, R: 3, S: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{N: 1, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, G: 2, PadH: 1, PadW: 1},
		{N: 3, C: 6, H: 9, W: 9, K: 6, R: 5, S: 5, G: 3, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2},
		{N: 1, C: 5, H: 13, W: 13, K: 7, R: 1, S: 1},
	}
	maps := []mapping.ConvMapping{
		{TR: 1, TS: 1, TC: 1, TK: 1, TG: 1, TN: 1, TX: 1, TY: 1},
		{TR: 3, TS: 3, TC: 1, TK: 2, TG: 1, TN: 1, TX: 2, TY: 2},
		{TR: 2, TS: 2, TC: 3, TK: 1, TG: 1, TN: 1, TX: 3, TY: 2}, // boundary-heavy: 2∤3, 3∤8
		{TR: 1, TS: 3, TC: 2, TK: 3, TG: 1, TN: 1, TX: 4, TY: 3}, // boundary on C, K, X, Y
		{TR: 3, TS: 1, TC: 1, TK: 2, TG: 2, TN: 1, TX: 2, TY: 5}, // G tile > 1
	}
	cfgs := []config.HWConfig{
		maeriCfg(256, 4, 4, true, config.ASNetwork),
		maeriCfg(256, 1, 1, false, config.ASNetwork),
		maeriCfg(256, 8, 2, true, config.FENetwork),
		maeriCfg(256, 2, 8, false, config.FENetwork),
	}
	for _, d := range dims {
		for _, m := range maps {
			if err := m.Validate(d, 256); err != nil {
				continue // mapping not legal for this geometry; skip
			}
			for _, cfg := range cfgs {
				eng, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				eng.DryRun = true
				_, fast, err := eng.Conv2D(nil, nil, d, m)
				if err != nil {
					t.Fatalf("analytic: %v", err)
				}
				eng.Reference = true
				_, ref, err := eng.Conv2D(nil, nil, d, m)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				if fast != ref {
					t.Errorf("dims=%+v mapping=[%s] accum=%v dn=%d rn=%d %s:\n analytic %+v\n reference %+v",
						d, m, cfg.AccumBuffer, cfg.DNBandwidth, cfg.RNBandwidth, cfg.ReduceNetwork, fast, ref)
				}
			}
		}
	}
}

func TestAnalyticDenseMatchesReference(t *testing.T) {
	type geo struct{ m, k, n int }
	geos := []geo{
		{1, 256, 64},
		{3, 100, 37}, // boundary on every axis for most tiles
		{2, 17, 5},
	}
	maps := []mapping.FCMapping{
		{TS: 1, TN: 1, TK: 1},
		{TS: 4, TN: 1, TK: 8},
		{TS: 5, TN: 1, TK: 3}, // boundary-heavy
		{TS: 2, TN: 2, TK: 7},
	}
	cfgs := []config.HWConfig{
		maeriCfg(256, 4, 4, true, config.ASNetwork),
		maeriCfg(256, 1, 2, false, config.FENetwork),
		maeriCfg(256, 8, 1, true, config.FENetwork),
	}
	for _, g := range geos {
		in := tensor.New(g.m, g.k)
		w := tensor.New(g.n, g.k)
		for _, m := range maps {
			if err := m.Validate(g.m, g.k, g.n, 256); err != nil {
				continue
			}
			for _, cfg := range cfgs {
				eng, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				eng.DryRun = true
				_, fast, err := eng.Dense(in, w, m)
				if err != nil {
					t.Fatalf("analytic: %v", err)
				}
				eng.Reference = true
				_, ref, err := eng.Dense(in, w, m)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				if fast != ref {
					t.Errorf("geo=%+v mapping=%s cfg=%+v:\n analytic %+v\n reference %+v", g, m, cfg, fast, ref)
				}
			}
		}
	}
}

// TestFusedConvMatchesStepLoop proves the full-accuracy fused fast path —
// analytic counters plus the fused arithmetic kernel — bit-identical (Stats
// AND output bytes) to the step-loop reference across geometries, mappings
// and hardware configurations, including boundary-heavy tiles, groups,
// strides and padding (where the reference skips out-of-window taps).
func TestFusedConvMatchesStepLoop(t *testing.T) {
	dims := []tensor.ConvDims{
		{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, PadH: 1, PadW: 1},
		{N: 2, C: 6, H: 7, W: 9, K: 4, R: 3, S: 3},
		{N: 1, C: 8, H: 11, W: 11, K: 8, R: 3, S: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{N: 1, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, G: 2, PadH: 1, PadW: 1},
		{N: 3, C: 6, H: 9, W: 9, K: 6, R: 5, S: 5, G: 3, StrideH: 2, StrideW: 2, PadH: 2, PadW: 2},
		{N: 1, C: 5, H: 13, W: 13, K: 7, R: 1, S: 1},
	}
	maps := []mapping.ConvMapping{
		{TR: 1, TS: 1, TC: 1, TK: 1, TG: 1, TN: 1, TX: 1, TY: 1},
		{TR: 3, TS: 3, TC: 1, TK: 2, TG: 1, TN: 1, TX: 2, TY: 2},
		{TR: 2, TS: 2, TC: 3, TK: 1, TG: 1, TN: 1, TX: 3, TY: 2}, // boundary-heavy reduction tiles
		{TR: 1, TS: 3, TC: 2, TK: 3, TG: 1, TN: 1, TX: 4, TY: 3},
		{TR: 3, TS: 1, TC: 1, TK: 2, TG: 2, TN: 1, TX: 2, TY: 5},
	}
	cfg := maeriCfg(256, 4, 4, true, config.ASNetwork)
	for di, d := range dims {
		dd := d
		if err := dd.Resolve(); err != nil {
			t.Fatal(err)
		}
		in := tensor.RandomUniform(int64(100+di), 1, dd.N, dd.H, dd.W, dd.C)
		ker := tensor.RandomUniform(int64(200+di), 1, dd.R, dd.S, dd.C/dd.G, dd.K)
		// Zeros in the activations exercise the fused kernel's sparse skip
		// (a bitwise no-op the reference performs as ±0 additions).
		tensor.Prune(in, 0.25)
		for _, m := range maps {
			if err := m.Validate(dd, 256); err != nil {
				continue
			}
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fusedOut, fused, err := eng.Conv2D(in, ker, dd, m)
			if err != nil {
				t.Fatalf("fused: %v", err)
			}
			eng.Reference = true
			refOut, ref, err := eng.Conv2D(in, ker, dd, m)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if fused != ref {
				t.Errorf("dims=%+v mapping=[%s]: fused stats diverge:\n fused %+v\n ref   %+v", d, m, fused, ref)
			}
			if i := tensor.FirstBitDiff(refOut, fusedOut); i >= 0 {
				t.Errorf("dims=%+v mapping=[%s]: fused output diverges at element %d: %v vs %v",
					d, m, i, fusedOut.Data()[i], refOut.Data()[i])
			}
		}
	}
}

// TestFusedDenseMatchesStepLoop is the dense-layer analogue: output bytes
// and Stats of the fused path must match the step loop for every K tiling.
func TestFusedDenseMatchesStepLoop(t *testing.T) {
	type geo struct{ m, k, n int }
	geos := []geo{
		{1, 256, 64},
		{3, 100, 37},
		{2, 17, 5}, // output neurons not a multiple of the 4-wide micro-block
	}
	maps := []mapping.FCMapping{
		{TS: 1, TN: 1, TK: 1},
		{TS: 4, TN: 1, TK: 8},
		{TS: 5, TN: 1, TK: 3},
		{TS: 2, TN: 2, TK: 7},
	}
	cfg := maeriCfg(256, 4, 4, true, config.ASNetwork)
	for gi, g := range geos {
		in := tensor.RandomUniform(int64(300+gi), 1, g.m, g.k)
		w := tensor.RandomUniform(int64(400+gi), 1, g.n, g.k)
		for _, m := range maps {
			if err := m.Validate(g.m, g.k, g.n, 256); err != nil {
				continue
			}
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fusedOut, fused, err := eng.Dense(in, w, m)
			if err != nil {
				t.Fatalf("fused: %v", err)
			}
			eng.Reference = true
			refOut, ref, err := eng.Dense(in, w, m)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if fused != ref {
				t.Errorf("geo=%+v mapping=%s: fused stats diverge:\n fused %+v\n ref   %+v", g, m, fused, ref)
			}
			if i := tensor.FirstBitDiff(refOut, fusedOut); i >= 0 {
				t.Errorf("geo=%+v mapping=%s: fused output diverges at element %d: %v vs %v",
					g, m, i, fusedOut.Data()[i], refOut.Data()[i])
			}
		}
	}
}

// TestDryRunMatchesFullRun ties the dry-run paths to the full-accuracy
// simulation: the counters must be identical whether or not arithmetic is
// performed.
func TestDryRunMatchesFullRun(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 6, H: 9, W: 9, K: 4, R: 3, S: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := mapping.ConvMapping{TR: 2, TS: 3, TC: 4, TK: 3, TG: 1, TN: 1, TX: 2, TY: 3}
	cfg := maeriCfg(512, 4, 4, true, config.ASNetwork)
	in := tensor.RandomUniform(42, 1, 1, 9, 9, 6)
	ker := tensor.RandomUniform(7, 1, 3, 3, 6, 4)

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := eng.Conv2D(in, ker, d, m)
	if err != nil {
		t.Fatal(err)
	}
	eng.DryRun = true
	_, dry, err := eng.Conv2D(nil, nil, d, m)
	if err != nil {
		t.Fatal(err)
	}
	if dry != full {
		t.Errorf("dry-run stats diverge from full run:\n dry  %+v\n full %+v", dry, full)
	}
}

// TestEngineReuse exercises the fabric-reuse path: repeated calls on one
// engine must report the same stats as fresh engines (counters reset).
func TestEngineReuse(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := mapping.ConvMapping{TR: 3, TS: 3, TC: 2, TK: 2, TG: 1, TN: 1, TX: 2, TY: 2}
	cfg := maeriCfg(256, 4, 4, false, config.ASNetwork)
	in := tensor.RandomUniform(1, 1, 1, 8, 8, 4)
	ker := tensor.RandomUniform(2, 1, 3, 3, 4, 4)

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out1, st1, err := eng.Conv2D(in, ker, d, m)
	if err != nil {
		t.Fatal(err)
	}
	out2, st2, err := eng.Conv2D(in, ker, d, m)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Errorf("second call on reused engine reported different stats:\n first  %+v\n second %+v", st1, st2)
	}
	if tensor.MaxAbsDiff(out1, out2) != 0 {
		t.Error("second call on reused engine produced different outputs")
	}
}
