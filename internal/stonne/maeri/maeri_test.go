package maeri

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// cm builds a keyed ConvMapping in Table IV order.
func cm(tr, ts, tc, tk, tg, tn, tx, ty int) mapping.ConvMapping {
	return mapping.ConvMapping{TR: tr, TS: ts, TC: tc, TK: tk, TG: tg, TN: tn, TX: tx, TY: ty}
}

// fm builds a keyed FCMapping in Table VI order (T_S, T_K, T_N).
func fm(ts, tk, tn int) mapping.FCMapping {
	return mapping.FCMapping{TS: ts, TK: tk, TN: tn}
}

func testConfig(ms int) config.HWConfig {
	c := config.Default(config.MAERIDenseWorkload)
	c.MSSize = ms
	return c
}

func mustEngine(t *testing.T, cfg config.HWConfig) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runConv simulates a conv on MAERI and compares with the CPU reference.
func runConv(t *testing.T, e *Engine, d tensor.ConvDims, m mapping.ConvMapping, seed int64) int64 {
	t.Helper()
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	inNCHW := tensor.RandomUniform(seed, 1, d.N, d.C, d.H, d.W)
	kerKCRS := tensor.RandomUniform(seed+1, 1, d.K, d.C/d.G, d.R, d.S)
	out, st, err := e.Conv2D(tensor.NCHWToNHWC(inNCHW), kerKCRS.Transpose(2, 3, 1, 0), d, m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := topi.Conv2DNCHW(inNCHW, kerKCRS, d)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.NPQKToNKPQ(out)
	if !tensor.AllClose(want, got, 1e-3) {
		t.Fatalf("MAERI conv output wrong (mapping %s): max diff %v", m, tensor.MaxAbsDiff(want, got))
	}
	if st.MACs != d.MACs() {
		t.Fatalf("MACs = %d, want %d", st.MACs, d.MACs())
	}
	if st.Cycles <= 0 {
		t.Fatal("cycles must be positive")
	}
	return st.Cycles
}

func TestConvCorrectBasicMapping(t *testing.T) {
	e := mustEngine(t, testConfig(128))
	d := tensor.ConvDims{N: 1, C: 2, H: 10, W: 10, K: 4, R: 3, S: 3}
	runConv(t, e, d, mapping.Basic(), 1)
}

func TestConvCorrectAcrossMappings(t *testing.T) {
	e := mustEngine(t, testConfig(128))
	d := tensor.ConvDims{N: 1, C: 4, H: 9, W: 9, K: 6, R: 3, S: 3, PadH: 1, PadW: 1}
	maps := []mapping.ConvMapping{
		cm(1, 1, 1, 1, 1, 1, 1, 1),
		cm(3, 3, 1, 2, 1, 1, 2, 2),
		cm(1, 1, 4, 6, 1, 1, 2, 1),
		cm(3, 3, 4, 3, 1, 1, 1, 1),
		cm(2, 2, 2, 2, 1, 1, 2, 2),
		cm(3, 1, 2, 1, 1, 1, 3, 3), // uneven tiles exercise edge handling
	}
	for i, m := range maps {
		runConv(t, e, d, m, int64(10+i))
	}
}

func TestConvCorrectGroupsAndStride(t *testing.T) {
	e := mustEngine(t, testConfig(128))
	d := tensor.ConvDims{N: 1, C: 4, H: 11, W: 11, K: 6, R: 3, S: 3, G: 2, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	for i, m := range []mapping.ConvMapping{
		cm(1, 1, 1, 1, 1, 1, 1, 1),
		cm(3, 3, 2, 3, 1, 1, 1, 2),
		cm(1, 3, 2, 1, 2, 1, 2, 1), // T_G = 2
	} {
		runConv(t, e, d, m, int64(30+i))
	}
}

func TestConvCorrectPropertyRandomMappings(t *testing.T) {
	e := mustEngine(t, testConfig(256))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := tensor.ConvDims{
			N: 1, C: 1 + rng.Intn(4), H: 5 + rng.Intn(5), W: 5 + rng.Intn(5),
			K: 1 + rng.Intn(5), R: 1 + rng.Intn(3), S: 1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2), StrideW: 1 + rng.Intn(2), PadH: rng.Intn(2), PadW: rng.Intn(2),
		}
		if err := d.Resolve(); err != nil {
			return true
		}
		m := mapping.ConvMapping{
			TR: 1 + rng.Intn(d.R), TS: 1 + rng.Intn(d.S), TC: 1 + rng.Intn(d.C),
			TK: 1 + rng.Intn(d.K), TG: 1, TN: 1,
			TX: 1 + rng.Intn(d.P()), TY: 1 + rng.Intn(d.Q()),
		}
		if m.Multipliers() > 256 {
			return true
		}
		inNCHW := tensor.RandomUniform(seed, 1, d.N, d.C, d.H, d.W)
		ker := tensor.RandomUniform(seed+1, 1, d.K, d.C, d.R, d.S)
		out, st, err := e.Conv2D(tensor.NCHWToNHWC(inNCHW), ker.Transpose(2, 3, 1, 0), d, m)
		if err != nil {
			return false
		}
		want, err := topi.Conv2DNCHW(inNCHW, ker, d)
		if err != nil {
			return false
		}
		if !tensor.AllClose(want, tensor.NPQKToNKPQ(out), 1e-3) {
			return false
		}
		// Psum closed form must match the simulated count.
		psums, err := CountConvPsums(d, m)
		if err != nil {
			return false
		}
		return psums == st.SpatialPsums
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConvMoreMultipliersFewerCycles(t *testing.T) {
	// With a good mapping, the multiplier count is inversely correlated
	// with cycles (the optimal-mapping curve of Figure 10).
	d := tensor.ConvDims{N: 1, C: 2, H: 10, W: 10, K: 8, R: 3, S: 3}
	cycles8 := runConv(t, mustEngine(t, testConfig(8)), d, cm(1, 1, 2, 2, 1, 1, 2, 1), 5)
	cycles128 := runConv(t, mustEngine(t, testConfig(128)), d, cm(3, 3, 2, 4, 1, 1, 1, 1), 5)
	if cycles128*2 >= cycles8 {
		t.Fatalf("128 multipliers (%d cycles) should be much faster than 8 (%d cycles)", cycles128, cycles8)
	}
}

func TestConvBasicMappingMuchSlower(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 2, H: 10, W: 10, K: 8, R: 3, S: 3}
	e := mustEngine(t, testConfig(128))
	basic := runConv(t, e, d, mapping.Basic(), 7)
	tuned := runConv(t, e, d, cm(3, 3, 2, 2, 1, 1, 2, 1), 7)
	if basic < tuned*8 {
		t.Fatalf("basic mapping (%d cycles) should be ≥8× slower than a dense mapping (%d cycles)", basic, tuned)
	}
}

func TestConvNoAccumBufferCostsBandwidth(t *testing.T) {
	// Without the accumulation buffer, partial sums recirculate through the
	// distribution network; small-VN mappings must get slower.
	d := tensor.ConvDims{N: 1, C: 8, H: 8, W: 8, K: 4, R: 3, S: 3}
	m := cm(1, 1, 1, 4, 1, 1, 4, 4) // VN=1: every step re-accumulates
	withAB := testConfig(64)
	withoutAB := testConfig(64)
	withoutAB.AccumBuffer = false
	withoutAB.DNBandwidth = 8
	withAB.DNBandwidth = 8
	a := runConv(t, mustEngine(t, withAB), d, m, 9)
	b := runConv(t, mustEngine(t, withoutAB), d, m, 9)
	if b <= a {
		t.Fatalf("no-accum-buffer run (%d cycles) must be slower than with buffer (%d cycles)", b, a)
	}
}

func TestConvMappingValidationEnforced(t *testing.T) {
	e := mustEngine(t, testConfig(8))
	d := tensor.ConvDims{N: 1, C: 2, H: 6, W: 6, K: 4, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 6, 6, 2)
	ker := tensor.New(3, 3, 2, 4)
	// 3×3×2 = 18 multipliers > 8 available.
	if _, _, err := e.Conv2D(in, ker, d, cm(3, 3, 2, 1, 1, 1, 1, 1)); err == nil {
		t.Fatal("mapping exceeding the multiplier budget must be rejected")
	}
	// Tile exceeding its dimension.
	if _, _, err := e.Conv2D(in, ker, d, cm(4, 1, 1, 1, 1, 1, 1, 1)); err == nil {
		t.Fatal("T_R > R must be rejected")
	}
}

func TestConvShapeValidation(t *testing.T) {
	e := mustEngine(t, testConfig(128))
	d := tensor.ConvDims{N: 1, C: 2, H: 6, W: 6, K: 4, R: 3, S: 3}
	if _, _, err := e.Conv2D(tensor.New(1, 2, 6, 6), tensor.New(3, 3, 2, 4), d, mapping.Basic()); err == nil {
		t.Fatal("NCHW input passed as NHWC must be rejected")
	}
	if _, _, err := e.Conv2D(tensor.New(1, 6, 6, 2), tensor.New(4, 2, 3, 3), d, mapping.Basic()); err == nil {
		t.Fatal("KCRS kernel passed as RSCK must be rejected")
	}
}

func TestDenseCorrect(t *testing.T) {
	e := mustEngine(t, testConfig(128))
	in := tensor.RandomUniform(1, 1, 1, 50)
	w := tensor.RandomUniform(2, 1, 30, 50)
	want, err := topi.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []mapping.FCMapping{
		fm(1, 1, 1),
		fm(20, 1, 1),
		fm(12, 8, 1),
		fm(7, 9, 1), // uneven tiles
		fm(30, 4, 1),
	} {
		got, st, err := e.Dense(in, w, m)
		if err != nil {
			t.Fatalf("mapping %s: %v", m, err)
		}
		if !tensor.AllClose(want, got, 1e-3) {
			t.Fatalf("mapping %s: wrong output, max diff %v", m, tensor.MaxAbsDiff(want, got))
		}
		if st.MACs != 50*30 {
			t.Fatalf("MACs = %d", st.MACs)
		}
		if psums := CountFCPsums(1, 50, 30, m); psums != st.SpatialPsums {
			t.Fatalf("mapping %s: closed-form psums %d != simulated %d", m, psums, st.SpatialPsums)
		}
	}
}

func TestDenseBasicVsTunedSpeedup(t *testing.T) {
	// The Figure 11b effect: parallel output neurons beat the basic mapping.
	e := mustEngine(t, testConfig(128))
	in := tensor.RandomUniform(1, 1, 1, 256)
	w := tensor.RandomUniform(2, 1, 128, 256)
	_, basic, err := e.Dense(in, w, mapping.BasicFC())
	if err != nil {
		t.Fatal(err)
	}
	_, tuned, err := e.Dense(in, w, mapping.FCMapping{TS: 20, TN: 1, TK: 1})
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(basic.Cycles) / float64(tuned.Cycles)
	if speedup < 5 || speedup > 40 {
		t.Fatalf("tuned-FC speedup = %.1f×, want order-10× (paper reports ~11×)", speedup)
	}
}

func TestDenseBalancedBeatsPsumOptimal(t *testing.T) {
	// The Figure 12b / Table VI effect: an mRNA-style balanced mapping
	// (spatial reduction + parallel neurons) needs fewer cycles than the
	// psum-minimising T_K=1 mapping.
	e := mustEngine(t, testConfig(128))
	in := tensor.RandomUniform(1, 1, 1, 512)
	w := tensor.RandomUniform(2, 1, 256, 512)
	_, autotvm, err := e.Dense(in, w, mapping.FCMapping{TS: 20, TN: 1, TK: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, mrna, err := e.Dense(in, w, mapping.FCMapping{TS: 14, TN: 1, TK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if mrna.Cycles >= autotvm.Cycles {
		t.Fatalf("balanced mapping (%d cycles) must beat psum-optimal (%d cycles)", mrna.Cycles, autotvm.Cycles)
	}
	// But the psum-optimal mapping must indeed have fewer psums.
	if autotvm.SpatialPsums >= mrna.SpatialPsums {
		t.Fatalf("T_K=1 mapping must minimise psums: %d vs %d", autotvm.SpatialPsums, mrna.SpatialPsums)
	}
}

func TestDenseValidation(t *testing.T) {
	e := mustEngine(t, testConfig(8))
	in := tensor.New(1, 10)
	w := tensor.New(5, 10)
	if _, _, err := e.Dense(in, w, mapping.FCMapping{TS: 5, TN: 1, TK: 4}); err == nil {
		t.Fatal("mapping exceeding multipliers must be rejected")
	}
	if _, _, err := e.Dense(in, tensor.New(5, 11), mapping.BasicFC()); err == nil {
		t.Fatal("reduction mismatch must be rejected")
	}
	if _, _, err := e.Dense(tensor.New(10), w, mapping.BasicFC()); err == nil {
		t.Fatal("rank-1 input must be rejected")
	}
}

func TestDryRunMatchesFullRunCounters(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 3, H: 8, W: 8, K: 4, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := cm(3, 3, 1, 2, 1, 1, 2, 1)
	in := tensor.RandomUniform(1, 1, 1, 8, 8, 3)
	ker := tensor.RandomUniform(2, 1, 3, 3, 3, 4)
	full := mustEngine(t, testConfig(128))
	_, a, err := full.Conv2D(in, ker, d, m)
	if err != nil {
		t.Fatal(err)
	}
	dry := mustEngine(t, testConfig(128))
	dry.DryRun = true
	_, b, err := dry.Conv2D(in, ker, d, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.SpatialPsums != b.SpatialPsums || a.MACs != b.MACs || a.Steps != b.Steps {
		t.Fatalf("dry-run counters differ: %+v vs %+v", a, b)
	}
}

func TestNewEngineRejectsBadConfig(t *testing.T) {
	cfg := testConfig(128)
	cfg.Controller = config.SIGMASparseGEMM
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("non-MAERI controller must be rejected")
	}
	cfg = testConfig(100) // not a power of two
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("invalid ms_size must be rejected")
	}
}

func TestUniqueSpan(t *testing.T) {
	cases := []struct{ out, filter, stride, want int }{
		{4, 3, 1, 6},  // overlapping windows share taps
		{4, 3, 3, 12}, // exactly abutting
		{4, 3, 4, 12}, // gaps: no sharing
		{1, 5, 1, 5},
		{5, 1, 1, 5},
		{3, 2, 2, 6},
	}
	for _, c := range cases {
		if got := uniqueSpan(c.out, c.filter, c.stride); got != c.want {
			t.Fatalf("uniqueSpan(%d,%d,%d) = %d, want %d", c.out, c.filter, c.stride, got, c.want)
		}
	}
}

func TestCountConvPsumsBasicIsZero(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 3, H: 10, W: 10, K: 8, R: 3, S: 3}
	psums, err := CountConvPsums(d, mapping.Basic())
	if err != nil {
		t.Fatal(err)
	}
	if psums != 0 {
		t.Fatalf("basic mapping has no spatial reduction: psums = %d, want 0", psums)
	}
	// Full reduction tile: psums = outputs × (C·R·S − 1).
	full := cm(3, 3, 3, 1, 1, 1, 1, 1)
	psums, err = CountConvPsums(d, full)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	want := int64(8*d.P()*d.Q()) * int64(3*3*3-1)
	if psums != want {
		t.Fatalf("full-VN psums = %d, want %d", psums, want)
	}
}

func TestCountFCPsumsEdges(t *testing.T) {
	if p := CountFCPsums(1, 100, 50, mapping.FCMapping{TS: 10, TN: 1, TK: 1}); p != 0 {
		t.Fatalf("T_K=1 psums = %d, want 0", p)
	}
	if p := CountFCPsums(1, 100, 50, mapping.FCMapping{TS: 1, TN: 1, TK: 100}); p != int64(50*99) {
		t.Fatalf("full-K psums = %d, want %d", p, 50*99)
	}
}
