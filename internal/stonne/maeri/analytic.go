package maeri

import (
	"repro/internal/stonne/config"
	"repro/internal/stonne/fabric"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// This file implements the analytical dry-run engine: the closed-form
// evaluation of the step-loop cost model in maeri.go.
//
// The key observation is that the per-step cost of the temporal loop nest is
// a pure function of the *effective* tile sizes of the step (and of whether
// the step belongs to the first reduction tile of its weight block). Along
// each loop axis the effective size takes at most two values — the full tile
// for interior steps and the remainder for the single boundary tile — so the
// whole nest decomposes into at most 2^axes size classes. Computing each
// class's cost once and multiplying by the class count reproduces the
// reference loop's Stats bit for bit (all accounting is integer) in
// O(boundary classes) instead of O(steps).

// axClass is one effective-size class along a loop axis: `count` tiles of
// `size` iterations each. Index 0 is always the interior class (the full
// tile — mapping validation guarantees tile ≤ dim, so the first tile of an
// axis is always interior); the optional index 1 is the boundary remainder.
type axClass struct {
	size  int
	count int64
}

// axClassSet is the decomposition of one axis: at most an interior class
// and a boundary remainder. A fixed-size value type keeps the analytic
// engine allocation-free (it runs once per job on the steady-state path).
type axClassSet struct {
	cls [2]axClass
	n   int
}

// all returns the populated classes.
func (s *axClassSet) all() []axClass { return s.cls[:s.n] }

// axClasses decomposes one axis of the loop nest into its size classes.
func axClasses(dim, tile int) axClassSet {
	s := axClassSet{cls: [2]axClass{{size: tile, count: int64(dim / tile)}}, n: 1}
	if rem := dim % tile; rem > 0 {
		s.cls[1] = axClass{size: rem, count: 1}
		s.n = 2
	}
	return s
}

// ceilDiv is the cycle cost of moving n elements over a bandwidth-bw link,
// mirroring DistributionNetwork.Deliver / ReductionNetwork.Drain.
func ceilDiv(n, bw int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + bw - 1) / bw
}

// treeDepth returns the drain pipeline depth for the configured reduction
// network, matching the Depth of the fabric the reference loop builds.
func (e *Engine) treeDepth(vnSize int) int64 {
	kind := fabric.ART
	if e.cfg.ReduceNetwork == config.FENetwork {
		kind = fabric.FEN
	}
	rn := fabric.ReductionNetwork{Kind: kind}
	return int64(rn.Depth(vnSize))
}

// analyticConv computes the Stats of a dry-run Conv2D in closed form,
// bit-identical to the step-loop reference.
func (e *Engine) analyticConv(d tensor.ConvDims, m mapping.ConvMapping) stats.Stats {
	p, q := d.P(), d.Q()
	cg, kg := d.C/d.G, d.K/d.G
	dnBW, rnBW := int64(e.cfg.DNBandwidth), int64(e.cfg.RNBandwidth)
	present := e.cfg.AccumBuffer

	gCls := axClasses(d.G, m.TG)
	nCls := axClasses(d.N, m.TN)
	kCls := axClasses(kg, m.TK)
	cCls := axClasses(cg, m.TC)
	rCls := axClasses(d.R, m.TR)
	sCls := axClasses(d.S, m.TS)
	xCls := axClasses(p, m.TX)
	yCls := axClasses(q, m.TY)

	var st stats.Stats
	st.Multipliers = e.cfg.MSSize
	var cycles, dnElems int64

	for _, gc := range gCls.all() {
		for _, nc := range nCls.all() {
			for _, kc := range kCls.all() {
				// Count of (g, n, k) weight blocks in this replication class.
				cgnk := gc.count * nc.count * kc.count
				for ci, cc := range cCls.all() {
					for ri, rc := range rCls.all() {
						for si, sc := range sCls.all() {
							redTiles := cgnk * cc.count * rc.count * sc.count
							vn := rc.size * sc.size * cc.size
							weights := int64(vn * kc.size * gc.size)
							cycles += redTiles * ceilDiv(weights, dnBW)
							dnElems += redTiles * weights
							st.WeightLoads += redTiles * weights

							// Exactly one reduction tile per (g, n, k) block
							// is the first (redIdx == 1): the all-interior
							// class along c, r and s.
							var firstTiles int64
							if ci == 0 && ri == 0 && si == 0 {
								firstTiles = cgnk
							}
							restTiles := redTiles - firstTiles

							for _, xc := range xCls.all() {
								for _, yc := range yCls.all() {
									stepsPer := xc.count * yc.count
									nv := int64(kc.size * gc.size * nc.size * xc.size * yc.size)
									rows := uniqueSpan(xc.size, rc.size, d.StrideH)
									cols := uniqueSpan(yc.size, sc.size, d.StrideW)
									inputs := int64(nc.size * gc.size * cc.size * rows * cols)
									var psums int64
									if vn > 1 {
										psums = int64(vn-1) * nv
									}
									macs := nv * int64(vn)

									for _, fr := range [2]struct {
										first bool
										tiles int64
									}{{true, firstTiles}, {false, restTiles}} {
										if fr.tiles == 0 {
											continue
										}
										steps := fr.tiles * stepsPer
										var recirc int64
										if !fr.first && !present {
											recirc = nv
										}
										inCycles := ceilDiv(inputs+recirc, dnBW)
										collect := nv
										if !fr.first && present {
											collect *= 2
										}
										step := max(inCycles, ceilDiv(collect, rnBW), 1)
										cycles += steps * step
										dnElems += steps * (inputs + recirc)
										st.InputLoads += steps * inputs
										st.SpatialPsums += steps * psums
										st.Steps += steps
										st.MACs += steps * macs
										st.AccumWrites += steps * nv
									}
								}
							}
						}
					}
				}
			}
		}
	}
	cycles += e.treeDepth(m.VNSize()) + 1
	st.Cycles = cycles
	st.DNElements = dnElems
	st.Outputs = int64(d.N) * int64(p) * int64(q) * int64(d.K)
	return st
}

// analyticDense computes the Stats of a dry-run Dense in closed form,
// bit-identical to the step-loop reference.
func (e *Engine) analyticDense(batches, inN, outN int, m mapping.FCMapping) stats.Stats {
	dnBW, rnBW := int64(e.cfg.DNBandwidth), int64(e.cfg.RNBandwidth)
	present := e.cfg.AccumBuffer

	sCls := axClasses(outN, m.TS)
	nCls := axClasses(batches, m.TN)
	kCls := axClasses(inN, m.TK)

	var st stats.Stats
	st.Multipliers = e.cfg.MSSize
	var cycles, dnElems int64

	for _, sc := range sCls.all() {
		for _, nc := range nCls.all() {
			csn := sc.count * nc.count
			for ki, kc := range kCls.all() {
				kTiles := csn * kc.count
				// The first K tile of every (s, n) block is the interior
				// class (redIdx == 1): one firstRed tile per block.
				var firstTiles int64
				if ki == 0 {
					firstTiles = csn
				}
				restTiles := kTiles - firstTiles

				nv := int64(sc.size * nc.size)
				wElems := int64(sc.size * kc.size)
				iElems := int64(nc.size * kc.size)
				var psums int64
				if kc.size > 1 {
					psums = int64(kc.size-1) * nv
				}
				macs := nv * int64(kc.size)

				for _, fr := range [2]struct {
					first bool
					tiles int64
				}{{true, firstTiles}, {false, restTiles}} {
					if fr.tiles == 0 {
						continue
					}
					var recirc int64
					if !fr.first && !present {
						recirc = nv
					}
					inCycles := ceilDiv(wElems+iElems+recirc, dnBW)
					collect := nv
					if !fr.first && present {
						collect *= 2
					}
					step := max(inCycles, ceilDiv(collect, rnBW), 1)
					cycles += fr.tiles * step
					dnElems += fr.tiles * (wElems + iElems + recirc)
					st.WeightLoads += fr.tiles * wElems
					st.InputLoads += fr.tiles * iElems
					st.SpatialPsums += fr.tiles * psums
					st.Steps += fr.tiles
					st.MACs += fr.tiles * macs
					st.AccumWrites += fr.tiles * nv
				}
			}
		}
	}
	cycles += e.treeDepth(m.VNSize()) + 1
	st.Cycles = cycles
	st.DNElements = dnElems
	st.Outputs = int64(batches) * int64(outN)
	return st
}
