// Package maeri simulates the MAERI architecture (Kwon et al., ASPLOS 2018)
// as implemented in STONNE: a linear array of multiplier switches fed by a
// chubby-tree distribution network and reduced by an augmented reduction
// tree (ART) or fold-enabled network (FEN), with an optional accumulation
// buffer.
//
// The simulation is cycle-stepped at tile granularity: a dataflow mapping
// (Tables IV/V) partitions the layer's iteration space into steps; within a
// step the configured virtual neurons each perform one spatial reduction,
// and the step's cycle cost is the maximum of its distribution-network
// occupancy (unique values ÷ dn_bw, multicast free), its reduction-network
// drain (virtual neurons ÷ rn_bw) and one compute cycle — the networks
// pipeline across steps exactly as MAERI's fabrics do. Weight reloads on
// weight-tile changes are not overlapped. Outputs are computed exactly and
// are verified against the CPU operator inventory in tests.
package maeri

import (
	"fmt"

	"repro/internal/stonne/config"
	"repro/internal/stonne/fabric"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// Engine simulates one MAERI instance. Engines are cheap: Bifrost creates a
// new instance per offloaded layer ("Create a new instance of STONNE", §V).
// An Engine reuses its fabric models across calls and is therefore not safe
// for concurrent use; create one engine per goroutine.
type Engine struct {
	cfg config.HWConfig

	// DryRun skips output arithmetic while keeping every counter exact;
	// cycle counts do not depend on operand values for the dense MAERI
	// pipeline. Used by mapping search loops.
	//
	// Counters and arithmetic are decoupled (PR 4): by default neither dry
	// nor full-accuracy runs enter the step loop. Stats always come from
	// the analytical fast path — interior tile steps with identical
	// effective tile sizes have identical cost, so the loop nest collapses
	// to at most two size classes per axis, O(boundary classes) instead of
	// O(steps) — and a full-accuracy run computes its output tensor through
	// the fused arithmetic kernels (fused.go), which reproduce the step
	// loop's per-reduction-tile accumulation order exactly. Both halves are
	// bit-identical to the reference (proven by the equivalence tests).
	DryRun bool

	// Reference forces the step-loop reference implementation — counters
	// and, for full-accuracy runs, arithmetic. It exists to validate the
	// analytical engine and the fused arithmetic and to reproduce their
	// derivation; production paths leave it false.
	Reference bool

	// Pack, when set, shares packed kernel panels across engines through a
	// content-keyed cache: fused convolutions whose weights and tile
	// decomposition match a previous run's reuse its panels instead of
	// repacking them. Outputs are bitwise identical with or without it, so
	// it never participates in result cache keys.
	Pack *tensor.PackCache

	// Fabrics are created lazily on the first full-accuracy call and reset
	// (counters zeroed) on each subsequent call, avoiding the per-call
	// allocation churn tuner loops used to pay. The analytical dry-run path
	// needs no fabric objects at all.
	dn *fabric.DistributionNetwork
	rn *fabric.ReductionNetwork
	ab *fabric.AccumulationBuffer
}

// eff clamps a tile that would run past its dimension: the effective size
// of the tile starting at base. Shared by the conv and dense loop nests and
// by the analytical engine's class decomposition.
func eff(base, tile, dim int) int {
	if base+tile > dim {
		return dim - base
	}
	return tile
}

// NewEngine validates the hardware configuration and returns an engine.
func NewEngine(cfg config.HWConfig) (*Engine, error) {
	if cfg.Controller != config.MAERIDenseWorkload {
		return nil, fmt.Errorf("maeri: controller_type must be MAERI_DENSE_WORKLOAD, got %s", cfg.Controller)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// fabrics returns the engine's fabric models, creating them on first use
// and resetting their counters on every call thereafter.
func (e *Engine) fabrics() (*fabric.DistributionNetwork, *fabric.ReductionNetwork, *fabric.AccumulationBuffer, error) {
	if e.dn == nil {
		dn, err := fabric.NewDistributionNetwork(e.cfg.DNBandwidth)
		if err != nil {
			return nil, nil, nil, err
		}
		kind := fabric.ART
		if e.cfg.ReduceNetwork == config.FENetwork {
			kind = fabric.FEN
		}
		rn, err := fabric.NewReductionNetwork(kind, e.cfg.RNBandwidth)
		if err != nil {
			return nil, nil, nil, err
		}
		e.dn, e.rn, e.ab = dn, rn, fabric.NewAccumulationBuffer(e.cfg.AccumBuffer)
		return e.dn, e.rn, e.ab, nil
	}
	e.dn.Reset()
	e.rn.Reset()
	e.ab.Reset()
	return e.dn, e.rn, e.ab, nil
}

// uniqueSpan returns the number of distinct input coordinates touched along
// one spatial axis by an output tile of `outTile` positions with the given
// stride and a filter tile of `filterTile` taps: overlapping windows share
// rows/columns, disjoint windows do not.
func uniqueSpan(outTile, filterTile, stride int) int {
	if stride >= filterTile {
		return outTile * filterTile
	}
	return (outTile-1)*stride + filterTile
}

// Conv2D executes a convolution on the simulated MAERI. The input must be
// NHWC and the kernel RSCK (MAERI's native layouts, §V-B-1); the output is
// produced in NPQK order. Kernel shape is [R, S, C/G, K].
func (e *Engine) Conv2D(in, kernel *tensor.Tensor, d tensor.ConvDims, m mapping.ConvMapping) (*tensor.Tensor, stats.Stats, error) {
	if err := d.Resolve(); err != nil {
		return nil, stats.Stats{}, err
	}
	if d.DilationH != 1 || d.DilationW != 1 {
		return nil, stats.Stats{}, fmt.Errorf("maeri: dilation is not supported")
	}
	if err := m.Validate(d, e.cfg.MSSize); err != nil {
		return nil, stats.Stats{}, err
	}
	if !e.DryRun {
		if !tensor.ShapeEq(in.Shape(), []int{d.N, d.H, d.W, d.C}) {
			return nil, stats.Stats{}, fmt.Errorf("maeri: input shape %v is not NHWC [%d %d %d %d]", in.Shape(), d.N, d.H, d.W, d.C)
		}
		if !tensor.ShapeEq(kernel.Shape(), []int{d.R, d.S, d.C / d.G, d.K}) {
			return nil, stats.Stats{}, fmt.Errorf("maeri: kernel shape %v is not RSCK [%d %d %d %d]", kernel.Shape(), d.R, d.S, d.C/d.G, d.K)
		}
	}
	if !e.Reference {
		// Fused fast path: analytic counters, and for full-accuracy runs
		// the fused arithmetic kernel — the step loop is never entered.
		st := e.analyticConv(d, m)
		if e.DryRun {
			return nil, st, nil
		}
		return fusedConv(in, kernel, d, m, e.Pack), st, nil
	}
	dn, rn, ab, err := e.fabrics()
	if err != nil {
		return nil, stats.Stats{}, err
	}

	p, q := d.P(), d.Q()
	cg, kg := d.C/d.G, d.K/d.G
	var out *tensor.Tensor
	if !e.DryRun {
		out = tensor.New(d.N, p, q, d.K)
	}
	var st stats.Stats
	st.Multipliers = e.cfg.MSSize

	var cycles int64

	// Temporal loop nest. The reduction-space tiles (c, r, s) and the
	// replication tiles (g, n, k) change the stationary weights; the output
	// tiles (x, y) are swept innermost so weights are reused across the
	// whole output plane — MAERI's weight-stationary sweep.
	for g0 := 0; g0 < d.G; g0 += m.TG {
		tg := eff(g0, m.TG, d.G)
		for n0 := 0; n0 < d.N; n0 += m.TN {
			tn := eff(n0, m.TN, d.N)
			for k0 := 0; k0 < kg; k0 += m.TK {
				tk := eff(k0, m.TK, kg)
				redIdx := 0
				for c0 := 0; c0 < cg; c0 += m.TC {
					tc := eff(c0, m.TC, cg)
					for r0 := 0; r0 < d.R; r0 += m.TR {
						tr := eff(r0, m.TR, d.R)
						for s0 := 0; s0 < d.S; s0 += m.TS {
							ts := eff(s0, m.TS, d.S)
							redIdx++
							firstRed := redIdx == 1
							vn := tr * ts * tc

							// Weight reload: one weight per multiplier of
							// every distinct (k, g) VN; VNs replicated over
							// x/y/n receive the same weights by multicast.
							weights := int64(vn * tk * tg)
							cycles += dn.Deliver(weights)
							st.WeightLoads += weights

							for x0 := 0; x0 < p; x0 += m.TX {
								tx := eff(x0, m.TX, p)
								for y0 := 0; y0 < q; y0 += m.TY {
									ty := eff(y0, m.TY, q)
									nv := int64(tk * tg * tn * tx * ty)

									// Distribution: unique input elements in
									// the step (channel × overlapping
									// spatial windows × batch × group);
									// multicast across the K tile is free.
									rows := uniqueSpan(tx, tr, d.StrideH)
									cols := uniqueSpan(ty, ts, d.StrideW)
									inputs := int64(tn * tg * tc * rows * cols)
									recirc := ab.Accumulate(nv, firstRed)
									inCycles := dn.Deliver(inputs + recirc)
									st.InputLoads += inputs

									// Reduction: each VN spatially combines
									// its vn partial products. Accumulating
									// steps read the previous partial back
									// through the collection bus, doubling
									// its traffic (a read-modify-write per
									// VN when the buffer is present).
									st.SpatialPsums += rn.ReduceMany(vn, nv)
									collect := nv
									if !firstRed && ab.Present {
										collect *= 2
									}
									drainCycles := rn.Drain(collect)

									step := max(inCycles, drainCycles, 1)
									cycles += step
									st.Steps++
									st.MACs += nv * int64(vn)
									st.AccumWrites += nv

									if !e.DryRun {
										e.convStep(out, in, kernel, d, g0, tg, n0, tn, k0, tk, c0, tc, r0, tr, s0, ts, x0, tx, y0, ty)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	// Pipeline drain: the last step's values traverse the adder tree and
	// the collection bus.
	cycles += int64(rn.Depth(m.VNSize())) + 1
	st.Cycles = cycles
	st.DNElements = dn.Elements
	st.Outputs = int64(d.N) * int64(p) * int64(q) * int64(d.K)
	return out, st, nil
}

// convStep performs the exact arithmetic of one tile step, accumulating
// partial sums into the NPQK output. k and c indices are group-local. It
// indexes the flat storage directly: this loop runs once per MAC of the
// layer and dominates simulation time for large models.
func (e *Engine) convStep(out, in, kernel *tensor.Tensor, d tensor.ConvDims,
	g0, tg, n0, tn, k0, tk, c0, tc, r0, tr, s0, ts, x0, tx, y0, ty int) {
	cg, kg := d.C/d.G, d.K/d.G
	p, q := d.P(), d.Q()
	inD, kerD, outD := in.Data(), kernel.Data(), out.Data()
	for g := g0; g < g0+tg; g++ {
		for n := n0; n < n0+tn; n++ {
			for k := k0; k < k0+tk; k++ {
				gk := g*kg + k
				for x := x0; x < x0+tx; x++ {
					for y := y0; y < y0+ty; y++ {
						var acc float32
						for c := c0; c < c0+tc; c++ {
							gc := g*cg + c
							for r := r0; r < r0+tr; r++ {
								iy := x*d.StrideH - d.PadH + r
								if iy < 0 || iy >= d.H {
									continue
								}
								inRow := ((n*d.H+iy)*d.W)*d.C + gc
								kerRow := (r*d.S*cg+c)*d.K + gk
								for s := s0; s < s0+ts; s++ {
									ix := y*d.StrideW - d.PadW + s
									if ix < 0 || ix >= d.W {
										continue
									}
									acc += inD[inRow+ix*d.C] * kerD[kerRow+s*cg*d.K]
								}
							}
						}
						oi := ((n*p+x)*q+y)*d.K + gk
						outD[oi] += acc
					}
				}
			}
		}
	}
}

// Dense executes a fully connected layer on the simulated MAERI: the input
// is [M, K] (M batches of K input neurons), weights are [S, K] (S output
// neurons) and the output is [M, S]. Unlike convolution there is no weight
// reuse, so every step streams its T_S × T_K weight tile through the
// distribution network alongside the T_K input activations.
func (e *Engine) Dense(in, weights *tensor.Tensor, m mapping.FCMapping) (*tensor.Tensor, stats.Stats, error) {
	var batches, inN, outN int
	if e.DryRun {
		if in == nil || weights == nil {
			return nil, stats.Stats{}, fmt.Errorf("maeri: dry-run dense still requires shape-bearing tensors")
		}
	}
	if in.Rank() != 2 || weights.Rank() != 2 {
		return nil, stats.Stats{}, fmt.Errorf("maeri: dense requires 2-D input and weights, got %v and %v", in.Shape(), weights.Shape())
	}
	batches, inN = in.Dim(0), in.Dim(1)
	outN = weights.Dim(0)
	if weights.Dim(1) != inN {
		return nil, stats.Stats{}, fmt.Errorf("maeri: dense reduction mismatch: input %v vs weights %v", in.Shape(), weights.Shape())
	}
	if err := m.Validate(batches, inN, outN, e.cfg.MSSize); err != nil {
		return nil, stats.Stats{}, err
	}
	if !e.Reference {
		st := e.analyticDense(batches, inN, outN, m)
		if e.DryRun {
			return nil, st, nil
		}
		return fusedDense(in, weights, m), st, nil
	}
	dn, rn, ab, err := e.fabrics()
	if err != nil {
		return nil, stats.Stats{}, err
	}

	var out *tensor.Tensor
	if !e.DryRun {
		out = tensor.New(batches, outN)
	}
	var st stats.Stats
	st.Multipliers = e.cfg.MSSize
	var cycles int64

	for s0 := 0; s0 < outN; s0 += m.TS {
		ts := eff(s0, m.TS, outN)
		for n0 := 0; n0 < batches; n0 += m.TN {
			tn := eff(n0, m.TN, batches)
			redIdx := 0
			for k0 := 0; k0 < inN; k0 += m.TK {
				tk := eff(k0, m.TK, inN)
				redIdx++
				nv := int64(ts * tn)

				// Weights are single-use: T_S × T_K fresh values per step.
				// Inputs multicast across the T_S output-neuron VNs.
				wElems := int64(ts * tk)
				iElems := int64(tn * tk)
				firstRed := redIdx == 1
				recirc := ab.Accumulate(nv, firstRed)
				inCycles := dn.Deliver(wElems + iElems + recirc)
				st.WeightLoads += wElems
				st.InputLoads += iElems

				st.SpatialPsums += rn.ReduceMany(tk, nv)
				collect := nv
				if !firstRed && ab.Present {
					collect *= 2 // accumulation read-modify-write
				}
				drainCycles := rn.Drain(collect)

				step := max(inCycles, drainCycles, 1)
				cycles += step
				st.Steps++
				st.MACs += nv * int64(tk)
				st.AccumWrites += nv

				if !e.DryRun {
					inD, wD, outD := in.Data(), weights.Data(), out.Data()
					for n := n0; n < n0+tn; n++ {
						for s := s0; s < s0+ts; s++ {
							var acc float32
							inRow, wRow := inD[n*inN:], wD[s*inN:]
							for k := k0; k < k0+tk; k++ {
								acc += inRow[k] * wRow[k]
							}
							outD[n*outN+s] += acc
						}
					}
				}
			}
		}
	}
	cycles += int64(rn.Depth(m.VNSize())) + 1
	st.Cycles = cycles
	st.DNElements = dn.Elements
	st.Outputs = int64(batches) * int64(outN)
	return out, st, nil
}

// CountConvPsums returns, in closed form, the spatial-psum metric a full
// simulation of the mapping would report. Deriving it: every MAC feeds the
// reduction tree, and each virtual-neuron reduction of v values performs
// v − 1 additions, so psums = Σ_steps Σ_VN (vnEff − 1) = MACs − (number of
// VN-reductions) = MACs − outputs × (reduction-space tile count). The paper
// relies on this being computable "in less than a second" (§VII-B) — this
// is the fast tuning signal.
func CountConvPsums(d tensor.ConvDims, m mapping.ConvMapping) (int64, error) {
	if err := d.Resolve(); err != nil {
		return 0, err
	}
	ceil := func(a, b int) int64 { return int64((a + b - 1) / b) }
	outputs := int64(d.N) * int64(d.K) * int64(d.P()) * int64(d.Q())
	redTiles := ceil(d.C/d.G, m.TC) * ceil(d.R, m.TR) * ceil(d.S, m.TS)
	return d.MACs() - outputs*redTiles, nil
}

// CountFCPsums is the dense-layer analogue of CountConvPsums.
func CountFCPsums(batches, inNeurons, outNeurons int, m mapping.FCMapping) int64 {
	macs := int64(batches) * int64(inNeurons) * int64(outNeurons)
	redTiles := int64((inNeurons + m.TK - 1) / m.TK)
	return macs - int64(batches)*int64(outNeurons)*redTiles
}
