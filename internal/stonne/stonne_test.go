package stonne

import (
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
	"repro/internal/topi"
)

func TestNewAllControllers(t *testing.T) {
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense} {
		s, err := New(config.Default(ct))
		if err != nil {
			t.Fatalf("New(%s): %v", ct, err)
		}
		if s.Config().Controller != ct {
			t.Fatalf("controller = %s", s.Config().Controller)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	c := config.Default(config.MAERIDenseWorkload)
	c.MSSize = 5
	if _, err := New(c); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	c = config.Default(config.MAERIDenseWorkload)
	c.Controller = "NOPE"
	if _, err := New(c); err == nil {
		t.Fatal("unknown controller must be rejected")
	}
}

func TestSupportsDirectConv(t *testing.T) {
	m, _ := New(config.Default(config.MAERIDenseWorkload))
	s, _ := New(config.Default(config.SIGMASparseGEMM))
	p, _ := New(config.Default(config.TPUOSDense))
	if !m.SupportsDirectConv() || s.SupportsDirectConv() || p.SupportsDirectConv() {
		t.Fatal("only MAERI executes convolutions natively")
	}
}

func TestConv2DDispatch(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	inNCHW := tensor.RandomUniform(1, 1, 1, 2, 8, 8)
	kerKCRS := tensor.RandomUniform(2, 1, 4, 2, 3, 3)
	m, _ := New(config.Default(config.MAERIDenseWorkload))
	out, st, err := m.Conv2D(tensor.NCHWToNHWC(inNCHW), kerKCRS.Transpose(2, 3, 1, 0), d, mapping.Basic())
	if err != nil {
		t.Fatal(err)
	}
	want, err := topi.Conv2DNCHW(inNCHW, kerKCRS, d)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, tensor.NPQKToNKPQ(out), 1e-3) {
		t.Fatal("façade conv output wrong")
	}
	if st.Cycles == 0 {
		t.Fatal("no cycles reported")
	}
	// Non-MAERI architectures must refuse direct convolution.
	s, _ := New(config.Default(config.SIGMASparseGEMM))
	if _, _, err := s.Conv2D(nil, nil, d, mapping.Basic()); err == nil {
		t.Fatal("SIGMA must reject direct convolution")
	}
}

func TestDenseDispatchAllArchitectures(t *testing.T) {
	in := tensor.RandomUniform(1, 1, 1, 32)
	w := tensor.RandomUniform(2, 1, 16, 32)
	want, err := topi.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense} {
		s, err := New(config.Default(ct))
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := s.Dense(in, w, mapping.FCMapping{TS: 4, TN: 1, TK: 4})
		if err != nil {
			t.Fatalf("%s dense: %v", ct, err)
		}
		if !tensor.AllClose(want, got, 1e-3) {
			t.Fatalf("%s dense wrong: max diff %v", ct, tensor.MaxAbsDiff(want, got))
		}
		if st.Cycles <= 0 {
			t.Fatalf("%s reported no cycles", ct)
		}
	}
}

func TestGEMMDispatch(t *testing.T) {
	a := tensor.RandomUniform(1, 1, 8, 16)
	b := tensor.RandomUniform(2, 1, 16, 4)
	want := tensor.GEMM(a, b)
	for _, ct := range []config.ControllerType{config.SIGMASparseGEMM, config.TPUOSDense} {
		s, _ := New(config.Default(ct))
		got, _, err := s.GEMM(a, b)
		if err != nil {
			t.Fatalf("%s GEMM: %v", ct, err)
		}
		if !tensor.AllClose(want, got, 1e-3) {
			t.Fatalf("%s GEMM wrong", ct)
		}
	}
	m, _ := New(config.Default(config.MAERIDenseWorkload))
	if _, _, err := m.GEMM(a, b); err == nil {
		t.Fatal("MAERI façade must reject raw GEMM")
	}
}
