package magma

import (
	"testing"
	"testing/quick"

	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(config.Default(config.SIGMASparseGEMM))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineRejectsOtherFabrics(t *testing.T) {
	if _, err := NewEngine(config.Default(config.MAERIDenseWorkload)); err == nil {
		t.Fatal("MAERI config must be rejected")
	}
	bad := config.Default(config.SIGMASparseGEMM)
	bad.MSSize = 7
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("invalid fabric must be rejected")
	}
}

func TestSpMSpMCorrect(t *testing.T) {
	e := newEngine(t)
	a := tensor.RandomUniform(1, 1, 16, 32)
	tensor.Prune(a, 0.6)
	b := tensor.RandomUniform(2, 1, 32, 12)
	tensor.Prune(b, 0.4)
	got, st, err := e.SpMSpM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.GEMM(a, b)
	if !tensor.AllClose(want, got, 1e-3) {
		t.Fatalf("SpMSpM wrong: max diff %v", tensor.MaxAbsDiff(want, got))
	}
	// MACs must count only matched nonzero pairs.
	var pairs int64
	for r := 0; r < 16; r++ {
		for kk := 0; kk < 32; kk++ {
			if a.At(r, kk) == 0 {
				continue
			}
			for col := 0; col < 12; col++ {
				if b.At(kk, col) != 0 {
					pairs++
				}
			}
		}
	}
	if st.MACs != pairs {
		t.Fatalf("MACs = %d, want matched pairs %d", st.MACs, pairs)
	}
	dense := int64(16 * 32 * 12)
	if st.MACs >= dense {
		t.Fatal("sparse execution must skip work")
	}
}

func TestSpMSpMProperty(t *testing.T) {
	e := newEngine(t)
	f := func(seed int64) bool {
		s := 1 + int(uint(seed)%20)
		k := 1 + int(uint(seed>>8)%24)
		m := 1 + int(uint(seed>>16)%10)
		a := tensor.RandomUniform(seed, 1, s, k)
		tensor.Prune(a, float64(uint(seed>>24)%90)/100)
		b := tensor.RandomUniform(seed+1, 1, k, m)
		tensor.Prune(b, float64(uint(seed>>32)%90)/100)
		got, _, err := e.SpMSpM(a, b)
		if err != nil {
			return false
		}
		return tensor.AllClose(tensor.GEMM(a, b), got, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingSparsityReducesCycles(t *testing.T) {
	// The SpMSpM advantage over SIGMA: sparsity in the *streaming* operand
	// also cuts cycles, because the bitmap intersection skips unmatched
	// fetches.
	e := newEngine(t)
	a := tensor.RandomUniform(1, 1, 64, 256)
	tensor.Prune(a, 0.5)
	dense := tensor.RandomUniform(2, 1, 256, 32)
	for i, v := range dense.Data() {
		if v == 0 {
			dense.Data()[i] = 0.1
		}
	}
	sparse := dense.Clone()
	tensor.Prune(sparse, 0.7)
	_, stDense, err := e.SpMSpM(a, dense)
	if err != nil {
		t.Fatal(err)
	}
	_, stSparse, err := e.SpMSpM(a, sparse)
	if err != nil {
		t.Fatal(err)
	}
	if stSparse.Cycles >= stDense.Cycles {
		t.Fatalf("streaming sparsity must cut cycles: %d vs %d", stSparse.Cycles, stDense.Cycles)
	}
	if stSparse.MACs >= stDense.MACs {
		t.Fatal("streaming sparsity must cut MACs")
	}
}

func TestBothOperandsZero(t *testing.T) {
	e := newEngine(t)
	out, st, err := e.SpMSpM(tensor.New(4, 8), tensor.New(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st.MACs != 0 {
		t.Fatalf("all-zero SpMSpM did %d MACs", st.MACs)
	}
	for _, v := range out.Data() {
		if v != 0 {
			t.Fatal("output must be zero")
		}
	}
}

func TestValidation(t *testing.T) {
	e := newEngine(t)
	if _, _, err := e.SpMSpM(tensor.New(2, 3), tensor.New(4, 2)); err == nil {
		t.Fatal("inner dim mismatch must be rejected")
	}
	if _, _, err := e.SpMSpM(tensor.New(6), tensor.New(6, 1)); err == nil {
		t.Fatal("1-D operand must be rejected")
	}
}

func TestCompressOperands(t *testing.T) {
	a := tensor.RandomUniform(1, 1, 8, 8)
	tensor.Prune(a, 0.5)
	b := tensor.RandomUniform(2, 1, 8, 8)
	aBM, bBM, err := CompressOperands(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if aBM.NNZ() != a.NNZ() || bBM.NNZ() != b.NNZ() {
		t.Fatal("bitmap NNZ mismatch")
	}
	if _, _, err := CompressOperands(tensor.New(2, 2, 2), b); err == nil {
		t.Fatal("3-D operand must be rejected")
	}
}
