// Package magma implements the paper's second future-work item: "add
// support for more operators such as sparse-dense matrix multiplication
// [19], which would allow other accelerator designs like MAGMA to be
// evaluated" (§IX). MAGMA-class accelerators execute SpMSpM — both the
// stationary and the streaming operand are sparse — so the engine here
// generalises SIGMA's design: both matrices are bitmap-compressed, the
// memory controller packs stationary nonzeros into rounds, and during
// streaming only the input elements whose reduction coordinate matches a
// stationary nonzero are fetched (bitmap intersection), so cycles scale
// with the *matched* nonzero pairs rather than with either operand alone.
package magma

import (
	"fmt"

	"repro/internal/stonne/config"
	"repro/internal/stonne/fabric"
	"repro/internal/stonne/sigma"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// Engine simulates one MAGMA-class SpMSpM instance. It reuses the
// SIGMA_SPARSE_GEMM hardware configuration (linear multiplier network,
// FAN-style reduction): the architectures differ in controller capability,
// not fabric geometry.
type Engine struct {
	cfg config.HWConfig
}

// NewEngine validates the configuration and returns an engine.
func NewEngine(cfg config.HWConfig) (*Engine, error) {
	if cfg.Controller != config.SIGMASparseGEMM {
		return nil, fmt.Errorf("magma: the SpMSpM engine uses the SIGMA_SPARSE_GEMM fabric configuration, got %s", cfg.Controller)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// SpMSpM computes out = a × b for a [S, K] and b [K, M], skipping every
// multiplication where either operand is zero. It returns the dense [S, M]
// product and the simulation statistics; MACs counts only matched nonzero
// pairs.
func (e *Engine) SpMSpM(a, b *tensor.Tensor) (*tensor.Tensor, stats.Stats, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, stats.Stats{}, fmt.Errorf("magma: SpMSpM requires 2-D operands, got %v × %v", a.Shape(), b.Shape())
	}
	s, k := a.Dim(0), a.Dim(1)
	k2, m := b.Dim(0), b.Dim(1)
	if k != k2 {
		return nil, stats.Stats{}, fmt.Errorf("magma: inner dimensions differ: %v × %v", a.Shape(), b.Shape())
	}
	dn, err := fabric.NewDistributionNetwork(e.cfg.DNBandwidth)
	if err != nil {
		return nil, stats.Stats{}, err
	}
	rn, err := fabric.NewReductionNetwork(fabric.FEN, e.cfg.RNBandwidth)
	if err != nil {
		return nil, stats.Stats{}, err
	}
	ab := fabric.NewAccumulationBuffer(e.cfg.AccumBuffer)

	type nonzero struct {
		row, k int
		v      float32
	}
	var nz []nonzero
	aD := a.Data()
	for r := 0; r < s; r++ {
		for c := 0; c < k; c++ {
			if v := aD[r*k+c]; v != 0 {
				nz = append(nz, nonzero{row: r, k: c, v: v})
			}
		}
	}
	// Column-sparsity index of b: nonzero (k, value) pairs per column.
	bD := b.Data()
	bNNZ := make([][]bool, k)
	for kk := 0; kk < k; kk++ {
		bNNZ[kk] = make([]bool, m)
		for col := 0; col < m; col++ {
			bNNZ[kk][col] = bD[kk*m+col] != 0
		}
	}

	out := tensor.New(s, m)
	outD := out.Data()
	var st stats.Stats
	st.Multipliers = e.cfg.MSSize
	st.Outputs = int64(s) * int64(m)
	var cycles int64
	ms := e.cfg.MSSize

	seenRow := make([]bool, s)
	for base := 0; base < len(nz); base += ms {
		chunk := nz[base:min(base+ms, len(nz))]
		cycles += dn.Deliver(int64(len(chunk)))
		st.WeightLoads += int64(len(chunk))

		// Distinct k coordinates and row segments of the chunk.
		kList := make([]int, 0, len(chunk))
		lastK := -1
		segments := 0
		lastRow := -1
		continued := int64(0)
		for _, el := range chunk {
			if el.k != lastK {
				kList = append(kList, el.k)
				lastK = el.k
			}
			if el.row != lastRow {
				segments++
				lastRow = el.row
				if seenRow[el.row] {
					continued++
				}
				seenRow[el.row] = true
			}
		}

		for col := 0; col < m; col++ {
			// Bitmap intersection: only streaming elements that are
			// themselves nonzero AND match a stationary k are fetched.
			matched := 0
			for _, kk := range kList {
				if bNNZ[kk][col] {
					matched++
				}
			}
			if matched == 0 {
				continue // the controller skips the column outright
			}
			inCycles := dn.Deliver(int64(matched))
			ab.Accumulate(int64(segments)-continued, true)
			recirc := ab.Accumulate(continued, false)
			if recirc > 0 {
				inCycles += dn.Deliver(recirc)
			}
			// MACs and psums: matched pairs only.
			pairs := 0
			for _, el := range chunk {
				if bNNZ[el.k][col] {
					outD[el.row*m+col] += el.v * bD[el.k*m+col]
					pairs++
				}
			}
			st.MACs += int64(pairs)
			segPsums := int64(pairs - segments)
			if segPsums < 0 {
				segPsums = 0
			}
			rn.Psums += segPsums
			st.SpatialPsums += segPsums
			drain := rn.Drain(int64(segments))
			cycles += max(inCycles, drain, 1)
			st.Steps++
			st.AccumWrites += int64(segments)
			st.InputLoads += int64(matched)
		}
	}
	cycles += int64(rn.Depth(min(ms, k))) + 1
	st.Cycles = cycles
	st.DNElements = dn.Elements
	return out, st, nil
}

// CompressOperands returns the bitmap encodings the memory controller
// builds for both operands — exposed for inspection and tests; the bitmaps
// are the out-of-band metadata that makes the k-coordinate intersection
// free of value traffic.
func CompressOperands(a, b *tensor.Tensor) (*sigma.Bitmap, *sigma.Bitmap, error) {
	aBM, err := sigma.CompressBitmap(a)
	if err != nil {
		return nil, nil, err
	}
	bBM, err := sigma.CompressBitmap(b)
	if err != nil {
		return nil, nil, err
	}
	return aBM, bBM, nil
}
