// Package energy implements the energy/EDP extension the paper leaves as
// future work: "The STONNE project is integrating power and area metrics,
// which Bifrost will support when they are available" (§I) and "we would
// like to extend Bifrost to support AutoTVM tuning using other optimization
// targets such as energy efficiency" (§IX).
//
// The model is event-based: every counter the simulator already reports
// (MACs, distribution-network elements, spatial psums, accumulation-buffer
// accesses) is weighted by a per-event energy. The default coefficients
// follow the relative magnitudes commonly used for 45 nm accelerator
// estimates (Horowitz, ISSCC 2014): a 32-bit multiply-add ≈ 4× an on-chip
// network hop ≈ 1/6 of an SRAM access. Absolute joules are not meaningful
// for a simulated design; ratios between configurations are.
package energy

import (
	"fmt"

	"repro/internal/stonne/stats"
)

// Model holds per-event energies in picojoules.
type Model struct {
	MACpJ        float64 // one multiply-accumulate
	DNElementpJ  float64 // one scalar through the distribution network
	RNAddpJ      float64 // one adder firing in the reduction network
	AccumRWpJ    float64 // one accumulation-buffer read or write
	SRAMElempJ   float64 // one global-buffer element read/written
	StaticPerCyc float64 // leakage per cycle for the whole array
}

// Default45nm returns the default coefficient set.
func Default45nm() Model {
	return Model{
		MACpJ:        3.1,  // 32-bit int MAC ≈ 3.1 pJ
		DNElementpJ:  0.8,  // on-chip tree hop burst
		RNAddpJ:      0.9,  // adder switch firing
		AccumRWpJ:    1.2,  // small SRAM access
		SRAMElempJ:   6.0,  // global buffer access
		StaticPerCyc: 0.45, // leakage
	}
}

// Breakdown is the per-component energy of one layer execution.
type Breakdown struct {
	ComputePJ      float64
	DistributionPJ float64
	ReductionPJ    float64
	AccumBufferPJ  float64
	GlobalBufferPJ float64
	StaticPJ       float64
}

// TotalPJ returns the summed energy in picojoules.
func (b Breakdown) TotalPJ() float64 {
	return b.ComputePJ + b.DistributionPJ + b.ReductionPJ + b.AccumBufferPJ + b.GlobalBufferPJ + b.StaticPJ
}

// String renders the breakdown in nanojoules.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.1fnJ (compute=%.1f dn=%.1f rn=%.1f accum=%.1f sram=%.1f static=%.1f)",
		b.TotalPJ()/1e3, b.ComputePJ/1e3, b.DistributionPJ/1e3, b.ReductionPJ/1e3,
		b.AccumBufferPJ/1e3, b.GlobalBufferPJ/1e3, b.StaticPJ/1e3)
}

// Estimate converts a simulation's counters into an energy breakdown.
func (m Model) Estimate(s stats.Stats) Breakdown {
	return Breakdown{
		ComputePJ:      m.MACpJ * float64(s.MACs),
		DistributionPJ: m.DNElementpJ * float64(s.DNElements),
		ReductionPJ:    m.RNAddpJ * float64(s.SpatialPsums),
		AccumBufferPJ:  m.AccumRWpJ * 2 * float64(s.AccumWrites),
		GlobalBufferPJ: m.SRAMElempJ * (float64(s.InputLoads) + float64(s.WeightLoads) + float64(s.Outputs)),
		StaticPJ:       m.StaticPerCyc * float64(s.Cycles) * float64(s.Multipliers) / 128,
	}
}

// EDP returns the energy-delay product (pJ × cycles), the standard combined
// efficiency metric for accelerator design points.
func (m Model) EDP(s stats.Stats) float64 {
	return m.Estimate(s).TotalPJ() * float64(s.Cycles)
}
