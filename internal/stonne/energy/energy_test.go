package energy

import (
	"strings"
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

func TestEstimateBreakdown(t *testing.T) {
	m := Default45nm()
	s := stats.Stats{MACs: 1000, DNElements: 500, SpatialPsums: 300, AccumWrites: 100, InputLoads: 200, WeightLoads: 100, Outputs: 50, Cycles: 64, Multipliers: 128}
	b := m.Estimate(s)
	if b.ComputePJ != 3100 {
		t.Fatalf("compute = %v", b.ComputePJ)
	}
	if b.TotalPJ() <= b.ComputePJ {
		t.Fatal("total must include all components")
	}
	if !strings.Contains(b.String(), "total=") {
		t.Fatal("breakdown must render")
	}
}

func TestZeroStatsZeroEnergy(t *testing.T) {
	if got := Default45nm().Estimate(stats.Stats{}).TotalPJ(); got != 0 {
		t.Fatalf("zero stats energy = %v", got)
	}
}

func TestEDPOrdersDesignPoints(t *testing.T) {
	m := Default45nm()
	fast := stats.Stats{MACs: 1000, Cycles: 10, Multipliers: 128}
	slow := stats.Stats{MACs: 1000, Cycles: 1000, Multipliers: 128}
	if m.EDP(fast) >= m.EDP(slow) {
		t.Fatal("same work in fewer cycles must have lower EDP")
	}
}

func TestSpatialReductionSavesReductionEnergyButCostsAdds(t *testing.T) {
	// Physical sanity on real simulations: a full-VN mapping does all its
	// accumulation in the tree (high RN energy, few accum-buffer accesses);
	// a VN=1 mapping does the opposite.
	cfg := config.Default(config.MAERIDenseWorkload)
	eng, err := maeri.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.DryRun = true
	d := tensor.ConvDims{N: 1, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	_, fullVN, err := eng.Conv2D(nil, nil, d, mapping.ConvMapping{TR: 3, TS: 3, TC: 8, TK: 1, TG: 1, TN: 1, TX: 1, TY: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, unitVN, err := eng.Conv2D(nil, nil, d, mapping.ConvMapping{TR: 1, TS: 1, TC: 1, TK: 8, TG: 1, TN: 1, TX: 3, TY: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := Default45nm()
	bFull, bUnit := m.Estimate(fullVN), m.Estimate(unitVN)
	if bFull.ReductionPJ <= bUnit.ReductionPJ {
		t.Fatal("full-VN mapping must spend more reduction energy")
	}
	if bFull.AccumBufferPJ >= bUnit.AccumBufferPJ {
		t.Fatal("unit-VN mapping must spend more accumulation-buffer energy")
	}
	// Compute energy is mapping-invariant (same MACs).
	if bFull.ComputePJ != bUnit.ComputePJ {
		t.Fatal("compute energy must not depend on the mapping")
	}
}

func TestStaticScalesWithArray(t *testing.T) {
	m := Default45nm()
	small := stats.Stats{Cycles: 1000, Multipliers: 8}
	big := stats.Stats{Cycles: 1000, Multipliers: 256}
	if m.Estimate(small).StaticPJ >= m.Estimate(big).StaticPJ {
		t.Fatal("static energy must scale with array size")
	}
}
