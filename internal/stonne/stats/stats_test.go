package stats

import (
	"strings"
	"testing"
)

func TestUtilization(t *testing.T) {
	s := Stats{MACs: 640, Cycles: 10, Multipliers: 128}
	if got := s.Utilization(); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if (Stats{}).Utilization() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
	if (Stats{MACs: 1, Cycles: 1}).Utilization() != 0 {
		t.Fatal("zero multipliers must not divide by zero")
	}
}

func TestAddAggregates(t *testing.T) {
	a := Stats{Cycles: 10, MACs: 100, SpatialPsums: 5, AccumWrites: 2, DNElements: 50,
		WeightLoads: 20, InputLoads: 30, Steps: 4, Outputs: 8, Multipliers: 64}
	b := Stats{Cycles: 5, MACs: 50, SpatialPsums: 1, AccumWrites: 1, DNElements: 25,
		WeightLoads: 10, InputLoads: 15, Steps: 2, Outputs: 4, Multipliers: 128}
	a.Add(b)
	if a.Cycles != 15 || a.MACs != 150 || a.SpatialPsums != 6 || a.DNElements != 75 {
		t.Fatalf("aggregate wrong: %+v", a)
	}
	if a.WeightLoads != 30 || a.InputLoads != 45 || a.Steps != 6 || a.Outputs != 12 || a.AccumWrites != 3 {
		t.Fatalf("aggregate wrong: %+v", a)
	}
	if a.Multipliers != 128 {
		t.Fatalf("Add must keep the larger array size, got %d", a.Multipliers)
	}
}

func TestString(t *testing.T) {
	s := Stats{Cycles: 7, MACs: 13, SpatialPsums: 3, Steps: 2, Multipliers: 8}
	out := s.String()
	for _, want := range []string{"cycles=7", "macs=13", "psums=3", "steps=2", "util="} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q missing %q", out, want)
		}
	}
}
