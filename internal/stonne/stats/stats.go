// Package stats defines the metrics a STONNE simulation reports. Cycles and
// psums are the two optimisation targets Bifrost exposes to AutoTVM
// (§VII-B); the remaining counters support utilisation analysis and the
// ablation benchmarks.
package stats

import (
	"fmt"
	"strings"
)

// Stats aggregates the counters of one simulated layer execution.
type Stats struct {
	// Cycles is the simulated clock-cycle count, the primary performance
	// metric of the paper.
	Cycles int64

	// MACs is the number of multiply-accumulate operations performed.
	MACs int64

	// SpatialPsums counts partial sums that flowed through the spatial
	// reduction network (the tuning metric: "STONNE calculates the required
	// amount of partial sums to execute the whole layer", §VII-B).
	SpatialPsums int64

	// AccumWrites counts partial results written to the accumulation buffer
	// (or recirculated when the buffer is absent).
	AccumWrites int64

	// DNElements counts scalar values injected into the distribution
	// network (weights + inputs + recirculated psums); multicast counts once.
	DNElements int64

	// WeightLoads and InputLoads split DNElements by kind.
	WeightLoads int64
	InputLoads  int64

	// Steps is the number of tile iterations executed.
	Steps int64

	// Outputs is the number of final output elements produced.
	Outputs int64

	// Multipliers is the array size used, for utilisation computation.
	Multipliers int
}

// Utilization returns MACs / (Cycles × Multipliers), the fraction of
// multiplier-cycles that performed useful work.
func (s Stats) Utilization() float64 {
	if s.Cycles == 0 || s.Multipliers == 0 {
		return 0
	}
	return float64(s.MACs) / (float64(s.Cycles) * float64(s.Multipliers))
}

// Add accumulates other into s, keeping the larger multiplier count. It is
// used to aggregate per-layer stats into a whole-model report.
func (s *Stats) Add(other Stats) {
	s.Cycles += other.Cycles
	s.MACs += other.MACs
	s.SpatialPsums += other.SpatialPsums
	s.AccumWrites += other.AccumWrites
	s.DNElements += other.DNElements
	s.WeightLoads += other.WeightLoads
	s.InputLoads += other.InputLoads
	s.Steps += other.Steps
	s.Outputs += other.Outputs
	if other.Multipliers > s.Multipliers {
		s.Multipliers = other.Multipliers
	}
}

// String renders a single-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d macs=%d psums=%d steps=%d util=%.1f%%",
		s.Cycles, s.MACs, s.SpatialPsums, s.Steps, 100*s.Utilization())
	return b.String()
}
