// Package config models STONNE's hardware configuration unit. It defines
// every option in Table III of the Bifrost paper together with the validity
// rules that Bifrost's simulator configurator enforces ("Bifrost eliminates
// undefined behavior from occurring in STONNE by preventing developers from
// providing invalid hardware configurations", §VI).
package config

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"os"
	"strconv"
	"strings"
)

// ControllerType selects the simulated accelerator architecture.
type ControllerType string

// Architectures available in STONNE and exposed through Bifrost.
const (
	MAERIDenseWorkload ControllerType = "MAERI_DENSE_WORKLOAD"
	SIGMASparseGEMM    ControllerType = "SIGMA_SPARSE_GEMM"
	TPUOSDense         ControllerType = "TPU_OS_DENSE"
)

// NetworkType selects the multiplier-switch network organisation.
type NetworkType string

// Multiplier network organisations.
const (
	Linear NetworkType = "LINEAR"  // MAERI and SIGMA: a linear array of multiplier switches
	OSMesh NetworkType = "OS_MESH" // TPU: a grid with a weight-stationary dataflow
)

// ReduceNetworkType selects the reduction network implementation.
type ReduceNetworkType string

// Reduction networks.
const (
	ASNetwork  ReduceNetworkType = "ASNETWORK"  // MAERI's ART (augmented reduction tree)
	FENetwork  ReduceNetworkType = "FENETWORK"  // the STIFT fold-enabled network
	TemporalRN ReduceNetworkType = "TEMPORALRN" // TPU's temporal reduction
)

// HWConfig is a complete hardware configuration for a simulated accelerator,
// mirroring Table III.
type HWConfig struct {
	Controller    ControllerType
	MSNetwork     NetworkType
	MSSize        int // multipliers for LINEAR networks (power of two, ≥ 8)
	MSRows        int // mesh rows for OS_MESH (power of two)
	MSCols        int // mesh columns for OS_MESH (power of two)
	DNBandwidth   int // distribution network elements/cycle (power of two)
	RNBandwidth   int // reduction network elements/cycle (power of two)
	ReduceNetwork ReduceNetworkType
	SparsityRatio int  // percent in [0,100]; SIGMA only
	AccumBuffer   bool // accumulation buffer present
}

// Default returns the baseline configuration the paper evaluates: a
// 128-multiplier accelerator with 64-wide distribution and reduction
// networks and an accumulation buffer.
func Default(ct ControllerType) HWConfig {
	c := HWConfig{
		Controller:    ct,
		MSNetwork:     Linear,
		MSSize:        128,
		DNBandwidth:   64,
		RNBandwidth:   64,
		ReduceNetwork: ASNetwork,
		AccumBuffer:   true,
	}
	if ct == TPUOSDense {
		c.MSNetwork = OSMesh
		c.MSRows, c.MSCols = 8, 8
		c.MSSize = 0
		c.ReduceNetwork = TemporalRN
		c.DNBandwidth = c.MSRows + c.MSCols
		c.RNBandwidth = c.MSRows * c.MSCols
	}
	return c
}

func isPow2(x int) bool { return x > 0 && bits.OnesCount(uint(x)) == 1 }

// Validate enforces the Table III rules plus the per-architecture
// constraints from §VI of the paper.
func (c HWConfig) Validate() error {
	switch c.Controller {
	case MAERIDenseWorkload, SIGMASparseGEMM:
		if c.MSNetwork != Linear {
			return fmt.Errorf("config: %s requires ms_network_type=LINEAR, got %s", c.Controller, c.MSNetwork)
		}
		if c.MSSize < 8 || !isPow2(c.MSSize) {
			return fmt.Errorf("config: ms_size must be a power of two ≥ 8, got %d", c.MSSize)
		}
		if c.ReduceNetwork == TemporalRN {
			return fmt.Errorf("config: %s cannot use the TEMPORALRN reduction network", c.Controller)
		}
	case TPUOSDense:
		if c.MSNetwork != OSMesh {
			return fmt.Errorf("config: TPU_OS_DENSE requires ms_network_type=OS_MESH, got %s", c.MSNetwork)
		}
		if !isPow2(c.MSRows) || !isPow2(c.MSCols) {
			return fmt.Errorf("config: ms_rows (%d) and ms_cols (%d) must be powers of two", c.MSRows, c.MSCols)
		}
		if c.ReduceNetwork != TemporalRN {
			return fmt.Errorf("config: TPU_OS_DENSE requires reduce_network_type=TEMPORALRN, got %s", c.ReduceNetwork)
		}
		if !c.AccumBuffer {
			return fmt.Errorf("config: the TPU's rigid dataflow requires the accumulation buffer")
		}
		if c.DNBandwidth != c.MSRows+c.MSCols {
			return fmt.Errorf("config: TPU requires dn_bw = ms_rows + ms_cols = %d, got %d", c.MSRows+c.MSCols, c.DNBandwidth)
		}
		if c.RNBandwidth != c.MSRows*c.MSCols {
			return fmt.Errorf("config: TPU requires rn_bw = ms_rows × ms_cols = %d, got %d", c.MSRows*c.MSCols, c.RNBandwidth)
		}
	default:
		return fmt.Errorf("config: unknown controller_type %q", c.Controller)
	}
	if !isPow2(c.DNBandwidth) {
		return fmt.Errorf("config: dn_bw must be a power of two, got %d", c.DNBandwidth)
	}
	if !isPow2(c.RNBandwidth) {
		return fmt.Errorf("config: rn_bw must be a power of two, got %d", c.RNBandwidth)
	}
	switch c.ReduceNetwork {
	case ASNetwork, FENetwork, TemporalRN:
	default:
		return fmt.Errorf("config: unknown reduce_network_type %q", c.ReduceNetwork)
	}
	if c.SparsityRatio < 0 || c.SparsityRatio > 100 {
		return fmt.Errorf("config: sparsity_ratio must be in [0,100], got %d", c.SparsityRatio)
	}
	if c.SparsityRatio != 0 && c.Controller != SIGMASparseGEMM {
		return fmt.Errorf("config: sparsity_ratio is only used by SIGMA_SPARSE_GEMM")
	}
	return nil
}

// Normalize returns a copy of c with the TPU's derived bandwidths corrected,
// mirroring Bifrost's behaviour of fixing improperly configured distribution
// and reduction networks instead of rejecting them ("Bifrost enforces the
// TPU restriction and will correct improperly configured ... networks").
func (c HWConfig) Normalize() HWConfig {
	if c.Controller == TPUOSDense {
		c.MSNetwork = OSMesh
		c.ReduceNetwork = TemporalRN
		c.AccumBuffer = true
		if c.MSRows > 0 && c.MSCols > 0 {
			c.DNBandwidth = c.MSRows + c.MSCols
			c.RNBandwidth = c.MSRows * c.MSCols
		}
	}
	return c
}

// Multipliers returns the total number of multiply-accumulate units.
func (c HWConfig) Multipliers() int {
	if c.MSNetwork == OSMesh {
		return c.MSRows * c.MSCols
	}
	return c.MSSize
}

// WriteTo serialises the configuration in STONNE's "key=value" config-file
// format, the artefact Bifrost generates automatically for the user
// (architecture.create_config_file() in Listing 1).
func (c HWConfig) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "controller_type=%s\n", c.Controller)
	fmt.Fprintf(&b, "ms_network_type=%s\n", c.MSNetwork)
	fmt.Fprintf(&b, "ms_size=%d\n", c.MSSize)
	fmt.Fprintf(&b, "ms_rows=%d\n", c.MSRows)
	fmt.Fprintf(&b, "ms_cols=%d\n", c.MSCols)
	fmt.Fprintf(&b, "dn_bw=%d\n", c.DNBandwidth)
	fmt.Fprintf(&b, "rn_bw=%d\n", c.RNBandwidth)
	fmt.Fprintf(&b, "reduce_network_type=%s\n", c.ReduceNetwork)
	fmt.Fprintf(&b, "sparsity_ratio=%d\n", c.SparsityRatio)
	fmt.Fprintf(&b, "accumulation_buffer=%t\n", c.AccumBuffer)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteFile writes the configuration file to disk.
func (c HWConfig) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = c.WriteTo(f)
	return err
}

// Read parses a configuration in the "key=value" format produced by WriteTo.
func Read(r io.Reader) (HWConfig, error) {
	var c HWConfig
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, value, ok := strings.Cut(text, "=")
		if !ok {
			return c, fmt.Errorf("config: line %d: missing '=' in %q", line, text)
		}
		key, value = strings.TrimSpace(key), strings.TrimSpace(value)
		atoi := func() (int, error) {
			v, err := strconv.Atoi(value)
			if err != nil {
				return 0, fmt.Errorf("config: line %d: %q is not an integer", line, value)
			}
			return v, nil
		}
		var err error
		switch key {
		case "controller_type":
			c.Controller = ControllerType(value)
		case "ms_network_type":
			c.MSNetwork = NetworkType(value)
		case "ms_size":
			c.MSSize, err = atoi()
		case "ms_rows":
			c.MSRows, err = atoi()
		case "ms_cols":
			c.MSCols, err = atoi()
		case "dn_bw":
			c.DNBandwidth, err = atoi()
		case "rn_bw":
			c.RNBandwidth, err = atoi()
		case "reduce_network_type":
			c.ReduceNetwork = ReduceNetworkType(value)
		case "sparsity_ratio":
			c.SparsityRatio, err = atoi()
		case "accumulation_buffer":
			c.AccumBuffer, err = strconv.ParseBool(value)
			if err != nil {
				err = fmt.Errorf("config: line %d: %q is not a bool", line, value)
			}
		default:
			err = fmt.Errorf("config: line %d: unknown key %q", line, key)
		}
		if err != nil {
			return c, err
		}
	}
	if err := sc.Err(); err != nil {
		return c, err
	}
	return c, nil
}

// ReadFile parses a configuration file from disk.
func ReadFile(path string) (HWConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return HWConfig{}, err
	}
	defer f.Close()
	return Read(f)
}
