package config

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultsValidate(t *testing.T) {
	for _, ct := range []ControllerType{MAERIDenseWorkload, SIGMASparseGEMM, TPUOSDense} {
		if err := Default(ct).Validate(); err != nil {
			t.Fatalf("Default(%s) invalid: %v", ct, err)
		}
	}
}

// TestTableIIIMSSizeRule checks ms_size ∈ {x | x ≥ 8 ∧ log₂x ∈ ℤ}.
func TestTableIIIMSSizeRule(t *testing.T) {
	for _, ms := range []int{8, 16, 32, 64, 128, 256, 512} {
		c := Default(MAERIDenseWorkload)
		c.MSSize = ms
		if err := c.Validate(); err != nil {
			t.Fatalf("ms_size=%d should be valid: %v", ms, err)
		}
	}
	for _, ms := range []int{0, 1, 4, 7, 12, 100, -8} {
		c := Default(MAERIDenseWorkload)
		c.MSSize = ms
		if err := c.Validate(); err == nil {
			t.Fatalf("ms_size=%d should be rejected", ms)
		}
	}
}

// TestTableIIIBandwidthRules checks dn_bw and rn_bw must be powers of two.
func TestTableIIIBandwidthRules(t *testing.T) {
	c := Default(MAERIDenseWorkload)
	c.DNBandwidth = 48
	if err := c.Validate(); err == nil {
		t.Fatal("non-power-of-two dn_bw should be rejected")
	}
	c = Default(MAERIDenseWorkload)
	c.RNBandwidth = 100
	if err := c.Validate(); err == nil {
		t.Fatal("non-power-of-two rn_bw should be rejected")
	}
}

// TestTableIIISparsityRule checks sparsity_ratio ∈ [0, 100], SIGMA only.
func TestTableIIISparsityRule(t *testing.T) {
	c := Default(SIGMASparseGEMM)
	for _, s := range []int{0, 50, 100} {
		c.SparsityRatio = s
		if err := c.Validate(); err != nil {
			t.Fatalf("sparsity %d should be valid: %v", s, err)
		}
	}
	for _, s := range []int{-1, 101} {
		c.SparsityRatio = s
		if err := c.Validate(); err == nil {
			t.Fatalf("sparsity %d should be rejected", s)
		}
	}
	m := Default(MAERIDenseWorkload)
	m.SparsityRatio = 50
	if err := m.Validate(); err == nil {
		t.Fatal("sparsity on MAERI should be rejected")
	}
}

func TestNetworkTypeRules(t *testing.T) {
	c := Default(MAERIDenseWorkload)
	c.MSNetwork = OSMesh
	if err := c.Validate(); err == nil {
		t.Fatal("MAERI must use LINEAR")
	}
	c = Default(TPUOSDense)
	c.MSNetwork = Linear
	if err := c.Validate(); err == nil {
		t.Fatal("TPU must use OS_MESH")
	}
}

func TestTPUDerivedBandwidths(t *testing.T) {
	c := Default(TPUOSDense)
	if c.DNBandwidth != c.MSRows+c.MSCols {
		t.Fatalf("default TPU dn_bw = %d, want rows+cols = %d", c.DNBandwidth, c.MSRows+c.MSCols)
	}
	if c.RNBandwidth != c.MSRows*c.MSCols {
		t.Fatalf("default TPU rn_bw = %d, want rows×cols = %d", c.RNBandwidth, c.MSRows*c.MSCols)
	}
	c.DNBandwidth = 128
	if err := c.Validate(); err == nil {
		t.Fatal("wrong TPU dn_bw must be rejected by Validate")
	}
	// Normalize corrects it instead of rejecting (the paper's "Bifrost ...
	// will correct improperly configured distribution and reduction
	// networks").
	n := c.Normalize()
	if err := n.Validate(); err != nil {
		t.Fatalf("Normalize should fix the TPU bandwidths: %v", err)
	}
}

func TestTPURequiresAccumBufferAndTemporalRN(t *testing.T) {
	c := Default(TPUOSDense)
	c.AccumBuffer = false
	if err := c.Validate(); err == nil {
		t.Fatal("TPU without accumulation buffer must be rejected")
	}
	c = Default(TPUOSDense)
	c.ReduceNetwork = ASNetwork
	if err := c.Validate(); err == nil {
		t.Fatal("TPU with ASNETWORK must be rejected")
	}
	m := Default(MAERIDenseWorkload)
	m.ReduceNetwork = TemporalRN
	if err := m.Validate(); err == nil {
		t.Fatal("MAERI with TEMPORALRN must be rejected")
	}
}

func TestReduceNetworkOptions(t *testing.T) {
	for _, rn := range []ReduceNetworkType{ASNetwork, FENetwork} {
		c := Default(MAERIDenseWorkload)
		c.ReduceNetwork = rn
		if err := c.Validate(); err != nil {
			t.Fatalf("%s should be valid for MAERI: %v", rn, err)
		}
	}
	c := Default(MAERIDenseWorkload)
	c.ReduceNetwork = "BOGUS"
	if err := c.Validate(); err == nil {
		t.Fatal("unknown reduce network must be rejected")
	}
}

func TestUnknownController(t *testing.T) {
	c := Default(MAERIDenseWorkload)
	c.Controller = "EYERISS"
	if err := c.Validate(); err == nil {
		t.Fatal("unknown controller must be rejected")
	}
}

func TestMultipliers(t *testing.T) {
	if got := Default(MAERIDenseWorkload).Multipliers(); got != 128 {
		t.Fatalf("MAERI multipliers = %d", got)
	}
	if got := Default(TPUOSDense).Multipliers(); got != 64 {
		t.Fatalf("TPU multipliers = %d", got)
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arch.cfg")
	c := Default(SIGMASparseGEMM)
	c.SparsityRatio = 50
	c.MSSize = 256
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestReadParsing(t *testing.T) {
	src := `
# comment line
controller_type=MAERI_DENSE_WORKLOAD
ms_network_type = LINEAR
ms_size= 64

dn_bw =16
rn_bw=16
reduce_network_type=FENETWORK
sparsity_ratio=0
accumulation_buffer=true
`
	c, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.MSSize != 64 || c.ReduceNetwork != FENetwork || !c.AccumBuffer {
		t.Fatalf("parsed %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	for label, src := range map[string]string{
		"no equals":   "ms_size 64\n",
		"bad int":     "ms_size=sixty-four\n",
		"bad bool":    "accumulation_buffer=si\n",
		"unknown key": "frequency=2GHz\n",
	} {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: expected parse error", label)
		}
	}
}
