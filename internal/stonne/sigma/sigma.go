// Package sigma simulates the SIGMA architecture (Qin et al., HPCA 2020) as
// implemented in STONNE: a sparse GEMM accelerator whose Flex-DPE
// multipliers hold bitmap-compressed nonzero stationary elements while the
// streaming matrix is broadcast through a flexible distribution network and
// reduced by a FAN tree able to reduce arbitrary-size groups.
//
// SIGMA has no user-visible mapping: "the memory controller automatically
// tiles the matrix depending on the level of sparsity" (§V-A). The memory
// controller model here packs the stationary matrix's nonzeros into rounds
// of ms_size elements — denser matrices need more rounds, so cycles scale
// with the nonzero count, which is exactly the Figure 9 effect.
package sigma

import (
	"fmt"

	"repro/internal/stonne/config"
	"repro/internal/stonne/fabric"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// Engine simulates one SIGMA instance. An Engine reuses its fabric models
// across calls and is therefore not safe for concurrent use; create one
// engine per goroutine.
type Engine struct {
	cfg config.HWConfig

	// DryRun skips output arithmetic while keeping every counter exact.
	// SIGMA's per-column costs are identical across the streaming matrix's
	// columns, so the dry run folds the column loop into a multiplication
	// and needs only the stationary operand — O(nnz) instead of
	// O(nnz × columns).
	//
	// Counters and arithmetic are decoupled (PR 4): by default full-accuracy
	// runs also skip the chunk-by-chunk simulation loop — Stats come from
	// the O(nnz) GEMMStats pass and the output from the fast GEMM kernel,
	// both bit-identical to the reference (the chunk loop adds every
	// stationary nonzero's product directly onto its output element in
	// ascending-K order, exactly the chain tensor.GEMM computes).
	DryRun bool

	// Reference forces the chunk-by-chunk simulation loop — counters and,
	// for full-accuracy runs, arithmetic. It exists to validate the fused
	// fast path and to reproduce its derivation.
	Reference bool

	// Pack, when set, lets the fused GEMM route reuse content-keyed packed
	// operand panels across engines. Outputs are bitwise identical with or
	// without it.
	Pack *tensor.PackCache

	dn *fabric.DistributionNetwork
	rn *fabric.ReductionNetwork
	ab *fabric.AccumulationBuffer
}

// fabrics returns the engine's fabric models, creating them on first use
// and resetting their counters on every call thereafter.
func (e *Engine) fabrics() (*fabric.DistributionNetwork, *fabric.ReductionNetwork, *fabric.AccumulationBuffer, error) {
	if e.dn == nil {
		dn, err := fabric.NewDistributionNetwork(e.cfg.DNBandwidth)
		if err != nil {
			return nil, nil, nil, err
		}
		rn, err := fabric.NewReductionNetwork(fabric.FEN, e.cfg.RNBandwidth)
		if err != nil {
			return nil, nil, nil, err
		}
		e.dn, e.rn, e.ab = dn, rn, fabric.NewAccumulationBuffer(e.cfg.AccumBuffer)
		return e.dn, e.rn, e.ab, nil
	}
	e.dn.Reset()
	e.rn.Reset()
	e.ab.Reset()
	return e.dn, e.rn, e.ab, nil
}

// NewEngine validates the hardware configuration and returns an engine.
func NewEngine(cfg config.HWConfig) (*Engine, error) {
	if cfg.Controller != config.SIGMASparseGEMM {
		return nil, fmt.Errorf("sigma: controller_type must be SIGMA_SPARSE_GEMM, got %s", cfg.Controller)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// nonzero is one stationary element: value, its row and its reduction
// coordinate (the shared K dimension).
type nonzero struct {
	row, k int
	v      float32
}

// Bitmap is the compressed representation of a stationary matrix: one bit
// per element plus the packed nonzero values, the ECC-style format SIGMA's
// memory controller builds before filling the Flex-DPEs.
type Bitmap struct {
	Rows, Cols int
	Bits       []uint64
	Values     []float32
}

// CompressBitmap builds the bitmap encoding of a 2-D tensor.
func CompressBitmap(t *tensor.Tensor) (*Bitmap, error) {
	if t.Rank() != 2 {
		return nil, fmt.Errorf("sigma: bitmap compression requires a 2-D tensor, got %v", t.Shape())
	}
	rows, cols := t.Dim(0), t.Dim(1)
	b := &Bitmap{Rows: rows, Cols: cols, Bits: make([]uint64, (rows*cols+63)/64)}
	for i, v := range t.Data() {
		if v != 0 {
			b.Bits[i/64] |= 1 << (i % 64)
			b.Values = append(b.Values, v)
		}
	}
	return b, nil
}

// NNZ returns the number of nonzero elements.
func (b *Bitmap) NNZ() int { return len(b.Values) }

// Decompress reconstructs the dense tensor.
func (b *Bitmap) Decompress() *tensor.Tensor {
	t := tensor.New(b.Rows, b.Cols)
	vi := 0
	for i := range t.Data() {
		if b.Bits[i/64]&(1<<(i%64)) != 0 {
			t.Data()[i] = b.Values[vi]
			vi++
		}
	}
	return t
}

// GEMM computes out = stationary × streaming for stationary [S, K] and
// streaming [K, M], skipping multiplications by stationary zeros (sparse
// inference, feature iv of Table I). It returns the [S, M] product and the
// simulation statistics.
func (e *Engine) GEMM(stationary, streaming *tensor.Tensor) (*tensor.Tensor, stats.Stats, error) {
	if stationary.Rank() != 2 || streaming.Rank() != 2 {
		return nil, stats.Stats{}, fmt.Errorf("sigma: GEMM requires 2-D operands, got %v × %v", stationary.Shape(), streaming.Shape())
	}
	s, k := stationary.Dim(0), stationary.Dim(1)
	k2, m := streaming.Dim(0), streaming.Dim(1)
	if k != k2 {
		return nil, stats.Stats{}, fmt.Errorf("sigma: GEMM inner dimensions differ: %v × %v", stationary.Shape(), streaming.Shape())
	}
	if !e.Reference {
		// Fused fast path: O(nnz) analytic counters, and for full-accuracy
		// runs the fast GEMM kernel — the chunk loop is never entered. The
		// reference arithmetic accumulates each output element directly,
		// one add per stationary nonzero in ascending K (chunk boundaries
		// never regroup the chain), so tensor.GEMM — whose sparse route
		// skips the zero rows the chunk loop never materialised, a bitwise
		// no-op — reproduces the output bytes exactly.
		st, err := e.GEMMStats(stationary, m)
		if err != nil || e.DryRun {
			return nil, st, err
		}
		return tensor.GEMMCached(stationary, streaming, e.Pack), st, nil
	}
	dn, rn, ab, err := e.fabrics()
	if err != nil {
		return nil, stats.Stats{}, err
	}

	// The memory controller compresses the stationary operand. Metadata
	// (bitmap) travels out of band; only values use multiplier slots.
	var nz []nonzero
	stD := stationary.Data()
	for r := 0; r < s; r++ {
		for c := 0; c < k; c++ {
			if v := stD[r*k+c]; v != 0 {
				nz = append(nz, nonzero{row: r, k: c, v: v})
			}
		}
	}

	out := tensor.New(s, m)
	outD := out.Data()
	strD := streaming.Data()
	var st stats.Stats
	st.Multipliers = e.cfg.MSSize
	st.Outputs = int64(s) * int64(m)
	var cycles int64
	ms := e.cfg.MSSize

	seenRow := make([]int, s) // round stamp per row, to detect continued rows
	for i := range seenRow {
		seenRow[i] = -1
	}
	round := 0
	for base := 0; base < len(nz); base += ms {
		chunk := nz[base:min(base+ms, len(nz))]

		// Stationary fill: the chunk's values stream through the
		// distribution network into the Flex-DPEs.
		cycles += dn.Deliver(int64(len(chunk)))
		st.WeightLoads += int64(len(chunk))

		// Chunk shape: distinct streaming coordinates (multicast across
		// rows sharing a k) and row segments (each segment is one FAN
		// reduction group; segments continuing a previous round's row must
		// re-accumulate).
		uniqueK := 0
		lastK := -1
		segments := 0
		lastRow := -1
		continued := int64(0)
		for _, el := range chunk {
			if el.k != lastK {
				uniqueK++
				lastK = el.k
			}
			if el.row != lastRow {
				segments++
				lastRow = el.row
				if seenRow[el.row] >= 0 {
					continued++
				}
				seenRow[el.row] = round
			}
		}

		// Streaming phase: for every output column, deliver the uniqueK
		// streaming elements (multicast across row groups), reduce each row
		// segment through the FAN tree, and drain the segment results.
		segPsums := int64(len(chunk) - segments) // v−1 adds per segment, summed
		for col := 0; col < m; col++ {
			inCycles := dn.Deliver(int64(uniqueK))
			ab.Accumulate(int64(segments)-continued, true)
			recirc := ab.Accumulate(continued, false)
			if recirc > 0 {
				inCycles += dn.Deliver(recirc)
			}
			rn.Psums += segPsums
			st.SpatialPsums += segPsums
			drain := rn.Drain(int64(segments))
			cycles += max(inCycles, drain, 1)
			st.Steps++
			st.MACs += int64(len(chunk))
			st.AccumWrites += int64(segments)
			st.InputLoads += int64(uniqueK)

			// Exact arithmetic for this chunk/column.
			for _, el := range chunk {
				outD[el.row*m+col] += el.v * strD[el.k*m+col]
			}
		}
		round++
	}
	// FAN pipeline drain for the widest segment (bounded by the chunk).
	cycles += int64(rn.Depth(min(ms, k))) + 1
	st.Cycles = cycles
	st.DNElements = dn.Elements
	return out, st, nil
}

// GEMMStats computes the statistics of GEMM(stationary, streaming) for a
// streaming operand of `streamCols` columns without performing arithmetic
// and without materialising the streaming matrix at all — SIGMA's cycle
// and traffic counters depend only on the stationary operand's nonzero
// structure and the column count. The memory-controller chunking of the
// full simulation is replayed in a single O(nnz) pass over the stationary
// matrix: every column of a chunk costs the same, so the per-column cost is
// computed once and multiplied by streamCols. Stats are bit-identical to
// the full simulation's (proven by the equivalence tests).
func (e *Engine) GEMMStats(stationary *tensor.Tensor, streamCols int) (stats.Stats, error) {
	if stationary.Rank() != 2 {
		return stats.Stats{}, fmt.Errorf("sigma: GEMMStats requires a 2-D stationary operand, got %v", stationary.Shape())
	}
	if streamCols < 0 {
		return stats.Stats{}, fmt.Errorf("sigma: GEMMStats streaming column count must be ≥ 0, got %d", streamCols)
	}
	s, k := stationary.Dim(0), stationary.Dim(1)
	m := int64(streamCols)
	dnBW, rnBW := int64(e.cfg.DNBandwidth), int64(e.cfg.RNBandwidth)
	present := e.cfg.AccumBuffer
	ms := e.cfg.MSSize

	var st stats.Stats
	st.Multipliers = ms
	st.Outputs = int64(s) * m
	var cycles, dnElems int64

	ceil := func(n, bw int64) int64 {
		if n <= 0 {
			return 0
		}
		return (n + bw - 1) / bw
	}

	// flush accounts for one full or final chunk of the stationary fill.
	flush := func(chunkLen, uniqueK, segments, continued int64) {
		cycles += ceil(chunkLen, dnBW) // stationary fill
		dnElems += chunkLen
		st.WeightLoads += chunkLen
		var recirc int64
		if !present {
			recirc = continued
		}
		inCycles := ceil(uniqueK, dnBW)
		if recirc > 0 {
			inCycles += ceil(recirc, dnBW)
		}
		segPsums := chunkLen - segments
		drain := ceil(segments, rnBW)
		cycles += m * max(inCycles, drain, 1)
		dnElems += m * (uniqueK + recirc)
		st.SpatialPsums += m * segPsums
		st.Steps += m
		st.MACs += m * chunkLen
		st.AccumWrites += m * segments
		st.InputLoads += m * uniqueK
	}

	// One streaming pass over the stationary matrix replays the chunking.
	stD := stationary.Data()
	seenRow := make([]bool, s)
	var chunkLen, uniqueK, segments, continued int64
	lastK, lastRow := -1, -1
	for r := 0; r < s; r++ {
		for c := 0; c < k; c++ {
			if stD[r*k+c] == 0 {
				continue
			}
			if chunkLen == int64(ms) {
				flush(chunkLen, uniqueK, segments, continued)
				chunkLen, uniqueK, segments, continued = 0, 0, 0, 0
				lastK, lastRow = -1, -1
			}
			chunkLen++
			if c != lastK {
				uniqueK++
				lastK = c
			}
			if r != lastRow {
				segments++
				lastRow = r
				if seenRow[r] {
					continued++
				}
				seenRow[r] = true
			}
		}
	}
	if chunkLen > 0 {
		flush(chunkLen, uniqueK, segments, continued)
	}

	// FAN pipeline drain for the widest segment (bounded by the chunk).
	rn := fabric.ReductionNetwork{Kind: fabric.FEN}
	cycles += int64(rn.Depth(min(ms, k))) + 1
	st.Cycles = cycles
	st.DNElements = dnElems
	return st, nil
}

// Dense executes a fully connected layer (input [M, K] × weights [S, K] →
// [M, S]) with the weights stationary, the orientation SIGMA uses for
// sparse DNN inference.
func (e *Engine) Dense(in, weights *tensor.Tensor) (*tensor.Tensor, stats.Stats, error) {
	if in.Rank() != 2 || weights.Rank() != 2 {
		return nil, stats.Stats{}, fmt.Errorf("sigma: dense requires 2-D input and weights, got %v and %v", in.Shape(), weights.Shape())
	}
	if in.Dim(1) != weights.Dim(1) {
		return nil, stats.Stats{}, fmt.Errorf("sigma: dense reduction mismatch: input %v vs weights %v", in.Shape(), weights.Shape())
	}
	if e.DryRun {
		st, err := e.GEMMStats(weights, in.Dim(0))
		return nil, st, err
	}
	var inT *tensor.Tensor
	if e.Reference {
		// The reference chunk loop keeps a private copy to stay conservative.
		inT = in.Transpose(1, 0)
	} else {
		// The fused route never mutates operands, so the transposed input
		// can be shared content-keyed across the jobs of a sweep (the same
		// activation is typically submitted under many mappings/configs).
		inT = tensor.Transpose2DCached(in, e.Pack)
	}
	prod, st, err := e.GEMM(weights, inT) // [S, M]
	if err != nil {
		return nil, stats.Stats{}, err
	}
	out := prod.Transpose(1, 0)
	prod.Release() // transient [S, M] intermediate, pooled on the fused route
	return out, st, nil
}
