package sigma

import (
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

// TestGEMMStatsMatchesSimulation proves the O(nnz) stats pass bit-identical
// to the full chunk-by-chunk simulation across sparsity levels, accumulation
// buffer settings and awkward (non-multiple-of-ms_size) shapes.
func TestGEMMStatsMatchesSimulation(t *testing.T) {
	type geo struct{ s, k, m int }
	geos := []geo{
		{8, 16, 5},
		{13, 29, 7}, // rows spanning chunk boundaries
		{4, 4, 1},
		{31, 9, 12},
	}
	sparsities := []float64{0, 0.3, 0.9, 1}
	for _, accum := range []bool{true, false} {
		for _, g := range geos {
			for si, sp := range sparsities {
				cfg := config.Default(config.SIGMASparseGEMM)
				cfg.AccumBuffer = accum
				cfg = cfg.Normalize()
				stationary := tensor.RandomUniform(int64(100*si+g.s), 1, g.s, g.k)
				tensor.Prune(stationary, sp)
				streaming := tensor.RandomUniform(7, 1, g.k, g.m)

				full, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				full.Reference = true
				wantOut, want, err := full.GEMM(stationary, streaming)
				if err != nil {
					t.Fatal(err)
				}

				// The default full-accuracy path is now fused: analytic
				// counters + fast GEMM arithmetic, never the chunk loop.
				// Stats AND output bytes must match the reference.
				fusedEng, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				fusedOut, fused, err := fusedEng.GEMM(stationary, streaming)
				if err != nil {
					t.Fatal(err)
				}
				if fused != want {
					t.Errorf("geo=%+v sparsity=%.1f accum=%v: fused stats diverge:\n fused %+v\n ref   %+v", g, sp, accum, fused, want)
				}
				if i := tensor.FirstBitDiff(wantOut, fusedOut); i >= 0 {
					t.Errorf("geo=%+v sparsity=%.1f accum=%v: fused output diverges at element %d: %v vs %v",
						g, sp, accum, i, fusedOut.Data()[i], wantOut.Data()[i])
				}
				got, err := full.GEMMStats(stationary, g.m)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("geo=%+v sparsity=%.1f accum=%v:\n stats pass %+v\n simulation %+v", g, sp, accum, got, want)
				}

				// The dry-run engine takes the same fast path.
				dry, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				dry.DryRun = true
				out, dryStats, err := dry.GEMM(stationary, streaming)
				if err != nil {
					t.Fatal(err)
				}
				if out != nil {
					t.Error("dry-run GEMM returned an output tensor")
				}
				if dryStats != want {
					t.Errorf("geo=%+v sparsity=%.1f accum=%v: dry-run stats diverge:\n dry %+v\n sim %+v", g, sp, accum, dryStats, want)
				}
			}
		}
	}
}

// TestDenseDryRun checks the dense dry-run shortcut against the full path.
func TestDenseDryRun(t *testing.T) {
	cfg := config.Default(config.SIGMASparseGEMM).Normalize()
	in := tensor.RandomUniform(3, 1, 4, 32)
	w := tensor.RandomUniform(4, 1, 10, 32)
	tensor.Prune(w, 0.5)

	full, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := full.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	dry, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dry.DryRun = true
	out, got, err := dry.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Error("dry-run dense returned an output tensor")
	}
	if got != want {
		t.Errorf("dense dry-run stats diverge:\n dry %+v\n sim %+v", got, want)
	}
}
