package sigma

import (
	"testing"
	"testing/quick"

	"repro/internal/stonne/config"
	"repro/internal/tensor"
	"repro/internal/topi"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(config.Default(config.SIGMASparseGEMM))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineRejectsWrongController(t *testing.T) {
	if _, err := NewEngine(config.Default(config.MAERIDenseWorkload)); err == nil {
		t.Fatal("MAERI config must be rejected")
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		w := tensor.RandomNormal(seed, 1, 13, 17)
		tensor.Prune(w, 0.6)
		b, err := CompressBitmap(w)
		if err != nil {
			return false
		}
		if b.NNZ() != w.NNZ() {
			return false
		}
		return tensor.MaxAbsDiff(w, b.Decompress()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapValidation(t *testing.T) {
	if _, err := CompressBitmap(tensor.New(2, 2, 2)); err == nil {
		t.Fatal("3-D tensor must be rejected")
	}
}

func TestGEMMCorrectDense(t *testing.T) {
	e := newEngine(t)
	a := tensor.RandomUniform(1, 1, 12, 30)
	b := tensor.RandomUniform(2, 1, 30, 9)
	got, st, err := e.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.GEMM(a, b)
	if !tensor.AllClose(want, got, 1e-3) {
		t.Fatalf("SIGMA GEMM wrong: max diff %v", tensor.MaxAbsDiff(want, got))
	}
	if st.MACs != int64(12*30*9) {
		t.Fatalf("dense MACs = %d, want %d", st.MACs, 12*30*9)
	}
}

func TestGEMMCorrectSparse(t *testing.T) {
	e := newEngine(t)
	a := tensor.RandomUniform(3, 1, 20, 40)
	tensor.Prune(a, 0.5)
	b := tensor.RandomUniform(4, 1, 40, 7)
	got, st, err := e.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.GEMM(a, b)
	if !tensor.AllClose(want, got, 1e-3) {
		t.Fatalf("sparse GEMM wrong: max diff %v", tensor.MaxAbsDiff(want, got))
	}
	// Zeros must be skipped: MACs = nnz × N.
	if st.MACs != int64(a.NNZ()*7) {
		t.Fatalf("sparse MACs = %d, want nnz×N = %d", st.MACs, a.NNZ()*7)
	}
}

func TestSparsityReducesCycles(t *testing.T) {
	// The Figure 9 effect: 50% pruning should cut cycles roughly in half.
	e := newEngine(t)
	b := tensor.RandomUniform(5, 1, 256, 16)
	dense := tensor.RandomUniform(6, 1, 128, 256)
	for i := range dense.Data() {
		if dense.Data()[i] == 0 {
			dense.Data()[i] = 0.1 // ensure fully dense baseline
		}
	}
	_, stDense, err := e.GEMM(dense, b)
	if err != nil {
		t.Fatal(err)
	}
	pruned := dense.Clone()
	tensor.Prune(pruned, 0.5)
	_, stSparse, err := e.GEMM(pruned, b)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(stSparse.Cycles) / float64(stDense.Cycles)
	if ratio < 0.35 || ratio > 0.75 {
		t.Fatalf("50%% sparsity cycle ratio = %.2f, want ≈0.5 (paper: 44-54%% fewer cycles)", ratio)
	}
}

func TestHigherSparsityMonotone(t *testing.T) {
	e := newEngine(t)
	b := tensor.RandomUniform(7, 1, 128, 8)
	prev := int64(1 << 62)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		w := tensor.RandomUniform(8, 1, 64, 128)
		tensor.Prune(w, frac)
		_, st, err := e.GEMM(w, b)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles > prev {
			t.Fatalf("cycles must not increase with sparsity: %d after %d at %.2f", st.Cycles, prev, frac)
		}
		prev = st.Cycles
	}
}

func TestGEMMPropertyMatchesReference(t *testing.T) {
	e := newEngine(t)
	f := func(seed int64) bool {
		s := 1 + int(uint(seed)%23)
		k := 1 + int(uint(seed>>8)%31)
		m := 1 + int(uint(seed>>16)%11)
		a := tensor.RandomUniform(seed, 1, s, k)
		tensor.Prune(a, float64(uint(seed>>24)%80)/100)
		b := tensor.RandomUniform(seed+1, 1, k, m)
		got, _, err := e.GEMM(a, b)
		if err != nil {
			return false
		}
		return tensor.AllClose(tensor.GEMM(a, b), got, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGEMMValidation(t *testing.T) {
	e := newEngine(t)
	if _, _, err := e.GEMM(tensor.New(2, 3), tensor.New(4, 2)); err == nil {
		t.Fatal("inner dim mismatch must be rejected")
	}
	if _, _, err := e.GEMM(tensor.New(6), tensor.New(6, 1)); err == nil {
		t.Fatal("1-D operand must be rejected")
	}
}

func TestDenseMatchesTopi(t *testing.T) {
	e := newEngine(t)
	in := tensor.RandomUniform(1, 1, 3, 64)
	w := tensor.RandomUniform(2, 1, 32, 64)
	tensor.Prune(w, 0.4)
	want, err := topi.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := e.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, got, 1e-3) {
		t.Fatalf("SIGMA dense wrong: max diff %v", tensor.MaxAbsDiff(want, got))
	}
	if st.Outputs != 32*3 {
		t.Fatalf("outputs = %d", st.Outputs)
	}
}

func TestAllZeroStationary(t *testing.T) {
	e := newEngine(t)
	a := tensor.New(8, 8) // all zeros: nothing to load or compute
	b := tensor.RandomUniform(1, 1, 8, 4)
	got, st, err := e.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.MACs != 0 {
		t.Fatalf("all-zero stationary should do 0 MACs, did %d", st.MACs)
	}
	for _, v := range got.Data() {
		if v != 0 {
			t.Fatal("output must be zero")
		}
	}
}
