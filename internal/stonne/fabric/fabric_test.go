package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestDistributionNetworkCycles(t *testing.T) {
	dn, err := NewDistributionNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	if c := dn.Deliver(16); c != 1 {
		t.Fatalf("16 elems over bw 16 = %d cycles, want 1", c)
	}
	if c := dn.Deliver(17); c != 2 {
		t.Fatalf("17 elems over bw 16 = %d cycles, want 2", c)
	}
	if c := dn.Deliver(0); c != 0 {
		t.Fatalf("0 elems = %d cycles, want 0", c)
	}
	if dn.Elements != 33 || dn.Cycles != 3 {
		t.Fatalf("counters: %d elems, %d cycles", dn.Elements, dn.Cycles)
	}
}

func TestDistributionNetworkValidation(t *testing.T) {
	if _, err := NewDistributionNetwork(0); err == nil {
		t.Fatal("zero bandwidth must be rejected")
	}
}

func TestReductionNetworkPsums(t *testing.T) {
	rn, err := NewReductionNetwork(ART, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p := rn.Reduce(1); p != 0 {
		t.Fatalf("VN of 1 produces %d psums, want 0", p)
	}
	if p := rn.Reduce(8); p != 7 {
		t.Fatalf("VN of 8 produces %d psums, want 7", p)
	}
	if p := rn.ReduceMany(4, 10); p != 30 {
		t.Fatalf("10 VNs of 4 produce %d psums, want 30", p)
	}
	if rn.Psums != 37 {
		t.Fatalf("accumulated psums = %d", rn.Psums)
	}
}

func TestReductionNetworkDepth(t *testing.T) {
	fen, _ := NewReductionNetwork(FEN, 8)
	cases := []struct{ vn, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {128, 7},
	}
	for _, c := range cases {
		if got := fen.Depth(c.vn); got != c.want {
			t.Fatalf("FEN Depth(%d) = %d, want %d", c.vn, got, c.want)
		}
	}
	tm, _ := NewReductionNetwork(Temporal, 8)
	if tm.Depth(64) != 0 {
		t.Fatal("temporal reduction has no spatial tree depth")
	}
}

func TestARTFoldingPenalty(t *testing.T) {
	// The ART pays one forwarding hop for non-power-of-two VN sizes; the
	// fold-enabled network does not (the FENETWORK-vs-ASNETWORK distinction).
	art, _ := NewReductionNetwork(ART, 8)
	fen, _ := NewReductionNetwork(FEN, 8)
	for _, vn := range []int{2, 4, 8, 16, 64} { // powers of two: identical
		if art.Depth(vn) != fen.Depth(vn) {
			t.Fatalf("pow2 VN %d: ART %d != FEN %d", vn, art.Depth(vn), fen.Depth(vn))
		}
	}
	for _, vn := range []int{3, 5, 9, 18, 100} { // folded: ART one deeper
		if art.Depth(vn) != fen.Depth(vn)+1 {
			t.Fatalf("folded VN %d: ART %d, FEN %d, want +1", vn, art.Depth(vn), fen.Depth(vn))
		}
	}
}

func TestReductionNetworkDrain(t *testing.T) {
	rn, _ := NewReductionNetwork(FEN, 4)
	if c := rn.Drain(4); c != 1 {
		t.Fatalf("drain 4 over bw 4 = %d cycles", c)
	}
	if c := rn.Drain(5); c != 2 {
		t.Fatalf("drain 5 over bw 4 = %d cycles", c)
	}
}

func TestAccumulationBufferRecirculation(t *testing.T) {
	with := NewAccumulationBuffer(true)
	if r := with.Accumulate(10, true); r != 0 {
		t.Fatalf("first step recirculated %d", r)
	}
	if r := with.Accumulate(10, false); r != 0 {
		t.Fatal("buffer present: no recirculation")
	}
	if with.Reads != 10 || with.Writes != 20 {
		t.Fatalf("reads=%d writes=%d", with.Reads, with.Writes)
	}
	without := NewAccumulationBuffer(false)
	if r := without.Accumulate(10, true); r != 0 {
		t.Fatal("first step never recirculates")
	}
	if r := without.Accumulate(10, false); r != 10 {
		t.Fatalf("no buffer: recirculated %d, want 10", r)
	}
	if without.Recirculated() != 10 {
		t.Fatalf("Recirculated() = %d", without.Recirculated())
	}
}

func TestSystolicMeshMatchesGEMM(t *testing.T) {
	// Property: the ticked mesh must compute exact tile products.
	f := func(seed int64) bool {
		rows, cols, k := 4, 6, 9
		mesh, err := NewSystolicMesh(rows, cols)
		if err != nil {
			return false
		}
		a := tensor.RandomUniform(seed, 1, rows, k)
		b := tensor.RandomUniform(seed+1, 1, k, cols)
		out, cycles := mesh.MultiplyTile(a.Data(), b.Data(), k)
		if cycles != int64(k+rows+cols-2)+1 {
			return false
		}
		want := tensor.GEMM(a, b)
		got := tensor.FromData(out, rows, cols)
		return tensor.AllClose(want, got, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSystolicMeshSkewAlignment(t *testing.T) {
	// A 2×2 mesh with k=1: out[r][c] = a[r]·b[c]; checks that operands meet
	// at the right PE despite the skew.
	mesh, err := NewSystolicMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := mesh.MultiplyTile([]float32{2, 3}, []float32{5, 7}, 1)
	want := []float32{10, 14, 15, 21}
	for i, v := range out {
		if v != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestSystolicMeshValidation(t *testing.T) {
	if _, err := NewSystolicMesh(0, 4); err == nil {
		t.Fatal("zero rows must be rejected")
	}
	mesh, _ := NewSystolicMesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched operand size")
		}
	}()
	mesh.MultiplyTile([]float32{1}, []float32{1, 2}, 1)
}

func TestSystolicMeshResetBetweenTiles(t *testing.T) {
	mesh, _ := NewSystolicMesh(2, 2)
	mesh.MultiplyTile([]float32{1, 1}, []float32{1, 1}, 1)
	out, _ := mesh.MultiplyTile([]float32{0, 0}, []float32{0, 0}, 1)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("accumulator %d not reset: %v", i, v)
		}
	}
}
