// Package fabric implements the microarchitectural components shared by the
// simulated accelerators (Figure 1 of the paper): the distribution network
// that delivers inputs and weights to the multiplier switches, the
// reduction networks (MAERI's ART, the STIFT-style fold-enabled network and
// the TPU's temporal reduction), the accumulation buffer, and a
// cycle-ticked systolic mesh. The MAERI/SIGMA controllers drive these
// components step by step; the TPU mesh is ticked cycle by cycle.
package fabric

import (
	"fmt"
	"math/bits"
)

// DistributionNetwork models MAERI's chubby-tree distribution fabric: up to
// Bandwidth distinct scalar values can be injected per cycle, and each value
// may be multicast to any set of multiplier switches at no extra cost (the
// tree replicates it on the way down).
type DistributionNetwork struct {
	Bandwidth int

	// Counters.
	Elements int64
	Cycles   int64
}

// NewDistributionNetwork validates the bandwidth and returns the network.
func NewDistributionNetwork(bandwidth int) (*DistributionNetwork, error) {
	if bandwidth < 1 {
		return nil, fmt.Errorf("fabric: distribution bandwidth must be ≥ 1, got %d", bandwidth)
	}
	return &DistributionNetwork{Bandwidth: bandwidth}, nil
}

// Reset clears the counters so the network can be reused for a new layer.
func (d *DistributionNetwork) Reset() {
	d.Elements, d.Cycles = 0, 0
}

// Deliver accounts for the distribution of `unique` distinct values and
// returns the number of cycles the transfer occupies the network.
func (d *DistributionNetwork) Deliver(unique int64) int64 {
	if unique <= 0 {
		return 0
	}
	cycles := (unique + int64(d.Bandwidth) - 1) / int64(d.Bandwidth)
	d.Elements += unique
	d.Cycles += cycles
	return cycles
}

// ReduceKind selects the reduction network implementation.
type ReduceKind int

// Reduction network kinds.
const (
	ART      ReduceKind = iota // MAERI's augmented reduction tree (ASNETWORK)
	FEN                        // STIFT fold-enabled network (FENETWORK)
	Temporal                   // TPU temporal reduction (TEMPORALRN)
)

// ReductionNetwork models the spatial reduction fabric: a pipelined adder
// tree that combines the partial products of each virtual neuron and drains
// up to Bandwidth partial sums per cycle to the collector.
type ReductionNetwork struct {
	Kind      ReduceKind
	Bandwidth int

	// Counters.
	Psums  int64 // partial values combined spatially (the psum metric)
	Drains int64 // results handed to the collection bus
	Cycles int64
}

// NewReductionNetwork validates the bandwidth and returns the network.
func NewReductionNetwork(kind ReduceKind, bandwidth int) (*ReductionNetwork, error) {
	if bandwidth < 1 {
		return nil, fmt.Errorf("fabric: reduction bandwidth must be ≥ 1, got %d", bandwidth)
	}
	return &ReductionNetwork{Kind: kind, Bandwidth: bandwidth}, nil
}

// Reset clears the counters so the network can be reused for a new layer.
func (r *ReductionNetwork) Reset() {
	r.Psums, r.Drains, r.Cycles = 0, 0, 0
}

// Depth returns the pipeline depth (in cycles) of the tree for a virtual
// neuron of the given size: ⌈log2(vn)⌉ adder levels. The temporal network
// has no spatial tree. For virtual-neuron sizes that are not a power of
// two, MAERI's ART needs one extra forwarding-link hop to merge the folded
// sub-trees, which the STIFT fold-enabled network (FEN) performs inside its
// spatio-temporal levels — the microarchitectural difference between the
// ASNETWORK and FENETWORK options of Table III.
func (r *ReductionNetwork) Depth(vnSize int) int {
	if r.Kind == Temporal || vnSize <= 1 {
		return 0
	}
	depth := bits.Len(uint(vnSize - 1))
	if r.Kind == ART && vnSize&(vnSize-1) != 0 {
		depth++
	}
	return depth
}

// Reduce combines vnSize partial products into one result through the tree.
// It returns the values-combined count added to the psum metric
// (vnSize − 1 adder firings per result). The ART and FEN trees both support
// arbitrary VN sizes via forwarding links, so the count is identical; they
// differ in Depth pipelining for folded (non-power-of-two) configurations,
// which FEN handles without the extra forwarding level ART needs.
func (r *ReductionNetwork) Reduce(vnSize int) int64 {
	if vnSize <= 1 {
		return 0
	}
	p := int64(vnSize - 1)
	r.Psums += p
	return p
}

// ReduceMany is the bulk form of Reduce: `count` virtual neurons of the
// given size reduce simultaneously. It returns the psums added.
func (r *ReductionNetwork) ReduceMany(vnSize int, count int64) int64 {
	if vnSize <= 1 || count <= 0 {
		return 0
	}
	p := int64(vnSize-1) * count
	r.Psums += p
	return p
}

// Drain accounts for handing `results` psums to the collection bus and
// returns the cycles consumed.
func (r *ReductionNetwork) Drain(results int64) int64 {
	if results <= 0 {
		return 0
	}
	cycles := (results + int64(r.Bandwidth) - 1) / int64(r.Bandwidth)
	r.Drains += results
	r.Cycles += cycles
	return cycles
}

// AccumulationBuffer models the psum buffer behind the reduction network.
// With the buffer present, temporal accumulation is a local read-modify-
// write; without it, every non-final partial must be recirculated through
// the distribution network, costing distribution bandwidth (the behaviour
// that makes accumulation-buffer-less MAERI mappings with small VNs slow).
type AccumulationBuffer struct {
	Present bool

	Writes       int64
	Reads        int64
	recirculated int64
}

// NewAccumulationBuffer returns a buffer model.
func NewAccumulationBuffer(present bool) *AccumulationBuffer {
	return &AccumulationBuffer{Present: present}
}

// Reset clears the counters so the buffer can be reused for a new layer.
func (a *AccumulationBuffer) Reset() {
	a.Writes, a.Reads, a.recirculated = 0, 0, 0
}

// Accumulate records `n` partial results being accumulated. `first` marks
// the first reduction step of these outputs (no previous partial exists);
// on every other step the previous partial is read back. It returns the
// number of values that must be recirculated through the distribution
// network, which is zero when the buffer is present (the read is a local
// read-modify-write) and n otherwise.
func (a *AccumulationBuffer) Accumulate(n int64, first bool) int64 {
	a.Writes += n
	if first {
		return 0
	}
	a.Reads += n
	if a.Present {
		return 0
	}
	a.recirculated += n
	return n
}

// Recirculated returns the count of psums recirculated through the
// distribution network because no accumulation buffer was present.
func (a *AccumulationBuffer) Recirculated() int64 { return a.recirculated }
