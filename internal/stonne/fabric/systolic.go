package fabric

import "fmt"

// SystolicMesh is a cycle-ticked output-stationary systolic array of
// Rows × Cols processing elements organised as the TPU's OS_MESH network:
// operand A streams in from the left edge (one value per row per cycle,
// skewed), operand B streams in from the top edge (one value per column per
// cycle, skewed), and each PE multiplies the operands passing through it and
// accumulates into a stationary register. Unlike the MAERI/SIGMA step
// models, the mesh is simulated PE-by-PE every cycle.
type SystolicMesh struct {
	Rows, Cols int

	// Per-PE pipeline registers and accumulators, row-major.
	aReg, bReg, acc []float32

	// Cycle counter since Reset.
	Cycle int64
}

// NewSystolicMesh builds a mesh of the given dimensions.
func NewSystolicMesh(rows, cols int) (*SystolicMesh, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("fabric: systolic mesh needs positive dims, got %dx%d", rows, cols)
	}
	n := rows * cols
	return &SystolicMesh{
		Rows: rows, Cols: cols,
		aReg: make([]float32, n), bReg: make([]float32, n), acc: make([]float32, n),
	}, nil
}

// Reset clears accumulators and pipeline registers for a new output tile.
func (m *SystolicMesh) Reset() {
	for i := range m.acc {
		m.acc[i], m.aReg[i], m.bReg[i] = 0, 0, 0
	}
}

// Tick advances the array one cycle. aIn[r] is the value entering row r from
// the left; bIn[c] is the value entering column c from the top. Values
// propagate right/down one PE per cycle; each PE accumulates
// aReg×bReg after the shift, so operands injected with the standard skew
// meet at the correct PE.
func (m *SystolicMesh) Tick(aIn, bIn []float32) {
	if len(aIn) != m.Rows || len(bIn) != m.Cols {
		panic(fmt.Sprintf("fabric: Tick edge sizes %d/%d do not match mesh %dx%d", len(aIn), len(bIn), m.Rows, m.Cols))
	}
	// Shift right: process columns from the last to the first.
	for r := 0; r < m.Rows; r++ {
		base := r * m.Cols
		for c := m.Cols - 1; c > 0; c-- {
			m.aReg[base+c] = m.aReg[base+c-1]
		}
		m.aReg[base] = aIn[r]
	}
	// Shift down: process rows from the last to the first.
	for c := 0; c < m.Cols; c++ {
		for r := m.Rows - 1; r > 0; r-- {
			m.bReg[r*m.Cols+c] = m.bReg[(r-1)*m.Cols+c]
		}
		m.bReg[c] = bIn[c]
	}
	// MAC.
	for i := range m.acc {
		m.acc[i] += m.aReg[i] * m.bReg[i]
	}
	m.Cycle++
}

// Acc returns the accumulator of PE (r, c).
func (m *SystolicMesh) Acc(r, c int) float32 { return m.acc[r*m.Cols+c] }

// MultiplyTile computes the output-stationary product of a (Rows × K) tile
// of A with a (K × Cols) tile of B, feeding the edges with the canonical
// skew: row r's stream is delayed by r cycles and column c's by c cycles.
// It returns the accumulated Rows × Cols outputs (row-major) and the number
// of cycles consumed: K + Rows + Cols − 2 ticks until the last operand pair
// meets at the bottom-right PE, plus one drain cycle.
//
// a is indexed a[r*k+i]; b is indexed b[i*Cols+c]. Rows/Cols smaller than
// the mesh are handled by the caller passing zero-padded tiles.
func (m *SystolicMesh) MultiplyTile(a, b []float32, k int) ([]float32, int64) {
	if len(a) != m.Rows*k || len(b) != k*m.Cols {
		panic(fmt.Sprintf("fabric: MultiplyTile operand sizes %d/%d do not match mesh %dx%d, k=%d", len(a), len(b), m.Rows, m.Cols, k))
	}
	m.Reset()
	total := k + m.Rows + m.Cols - 2
	aIn := make([]float32, m.Rows)
	bIn := make([]float32, m.Cols)
	for t := 0; t < total; t++ {
		for r := 0; r < m.Rows; r++ {
			i := t - r // skew: row r delayed r cycles
			if i >= 0 && i < k {
				aIn[r] = a[r*k+i]
			} else {
				aIn[r] = 0
			}
		}
		for c := 0; c < m.Cols; c++ {
			i := t - c
			if i >= 0 && i < k {
				bIn[c] = b[i*m.Cols+c]
			} else {
				bIn[c] = 0
			}
		}
		m.Tick(aIn, bIn)
	}
	out := make([]float32, m.Rows*m.Cols)
	copy(out, m.acc)
	return out, int64(total) + 1 // +1 drain cycle into the accumulation buffer
}
