// Package stonne is the façade over the simulated accelerator controllers:
// it dispatches layer executions to the MAERI, SIGMA or TPU engine selected
// by the hardware configuration, presenting the single interface the
// STONNE-Bifrost API layer programs against. It corresponds to the STONNE
// simulator that Bifrost configures and invokes once per offloaded layer.
package stonne

import (
	"fmt"

	"repro/internal/stonne/config"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/sigma"
	"repro/internal/stonne/stats"
	"repro/internal/stonne/tpu"
	"repro/internal/tensor"
)

// Simulator is one configured STONNE instance. Bifrost creates a fresh
// instance per offloaded layer (§V step 3 of the paper).
type Simulator struct {
	cfg config.HWConfig

	maeriEng *maeri.Engine
	sigmaEng *sigma.Engine
	tpuEng   *tpu.Engine
}

// New validates the configuration and instantiates the selected controller.
func New(cfg config.HWConfig) (*Simulator, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg}
	var err error
	switch cfg.Controller {
	case config.MAERIDenseWorkload:
		s.maeriEng, err = maeri.NewEngine(cfg)
	case config.SIGMASparseGEMM:
		s.sigmaEng, err = sigma.NewEngine(cfg)
	case config.TPUOSDense:
		s.tpuEng, err = tpu.NewEngine(cfg)
	default:
		err = fmt.Errorf("stonne: unknown controller_type %q", cfg.Controller)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Config returns the (normalised) hardware configuration.
func (s *Simulator) Config() config.HWConfig { return s.cfg }

// SetReference forces (or releases) the step-loop / cycle-ticked reference
// implementation of whichever engine the simulator drives. By default every
// engine runs its fused fast path — analytic counters plus fast arithmetic —
// which is bit-identical to the reference (Stats and output bytes; the
// engines' equivalence suites enforce it), so Reference exists only to
// validate the fast paths and to reproduce their derivation. It returns s
// for chaining.
func (s *Simulator) SetReference(on bool) *Simulator {
	switch {
	case s.maeriEng != nil:
		s.maeriEng.Reference = on
	case s.sigmaEng != nil:
		s.sigmaEng.Reference = on
	case s.tpuEng != nil:
		s.tpuEng.Reference = on
	}
	return s
}

// SetPackCache shares a content-keyed pack cache with the simulator's
// engine: packed weight panels, kernel matrices and layout transposes are
// then reused across simulator instances that hold the same operands —
// the allocation-free steady state of a sweep over fixed network weights.
// Counters and output bytes are bitwise identical with or without a cache
// (the pack reuse changes where packed bytes come from, never what they
// are), so the cache, like Reference, never participates in result cache
// keys. It returns s for chaining.
func (s *Simulator) SetPackCache(pc *tensor.PackCache) *Simulator {
	switch {
	case s.maeriEng != nil:
		s.maeriEng.Pack = pc
	case s.sigmaEng != nil:
		s.sigmaEng.Pack = pc
	case s.tpuEng != nil:
		s.tpuEng.Pack = pc
	}
	return s
}

// SupportsDirectConv reports whether the architecture executes convolutions
// natively. SIGMA and the TPU only support GEMM, so the API layer lowers
// their convolutions via im2col (§V-B-2/3).
func (s *Simulator) SupportsDirectConv() bool { return s.maeriEng != nil }

// Conv2D executes a convolution natively on MAERI (NHWC input, RSCK
// kernel, NPQK output). Other architectures return an error; their
// convolutions must be lowered to GEMM by the API layer.
func (s *Simulator) Conv2D(in, kernel *tensor.Tensor, d tensor.ConvDims, m mapping.ConvMapping) (*tensor.Tensor, stats.Stats, error) {
	if s.maeriEng == nil {
		return nil, stats.Stats{}, fmt.Errorf("stonne: %s does not support direct convolution; lower to GEMM", s.cfg.Controller)
	}
	return s.maeriEng.Conv2D(in, kernel, d, m)
}

// Dense executes a fully connected layer: input [M, K] × weights [S, K] →
// [M, S]. The FC mapping applies to MAERI only: "in SIGMA architectures the
// memory controller automatically tiles the matrix depending on the level
// of sparsity; and since the TPU has a fixed dataflow architecture, the
// tiling can not be changed" (§V-A).
func (s *Simulator) Dense(in, weights *tensor.Tensor, m mapping.FCMapping) (*tensor.Tensor, stats.Stats, error) {
	switch {
	case s.maeriEng != nil:
		return s.maeriEng.Dense(in, weights, m)
	case s.sigmaEng != nil:
		return s.sigmaEng.Dense(in, weights)
	default:
		return s.tpuEng.Dense(in, weights)
	}
}

// GEMM executes a plain matrix multiply (a [M,K] × b [K,N] → [M,N]) on a
// GEMM-capable architecture (SIGMA, TPU). MAERI workloads should use Conv2D
// or Dense, which carry the dataflow mapping.
func (s *Simulator) GEMM(a, b *tensor.Tensor) (*tensor.Tensor, stats.Stats, error) {
	switch {
	case s.sigmaEng != nil:
		return s.sigmaEng.GEMM(a, b)
	case s.tpuEng != nil:
		return s.tpuEng.GEMM(a, b)
	default:
		return nil, stats.Stats{}, fmt.Errorf("stonne: MAERI has no raw GEMM entry point; use Dense with an FC mapping")
	}
}

// GEMMStats computes the statistics of GEMM(stationary, streaming) for a
// streaming operand of streamCols columns without running arithmetic and
// without the streaming matrix ever being materialised: SIGMA's counters
// depend only on the stationary operand's nonzero structure and the column
// count, the TPU's only on the shapes. Stats are bit-identical to GEMM's.
// This is what lets the API layer lower convolutions without building the
// im2col matrix.
func (s *Simulator) GEMMStats(stationary *tensor.Tensor, streamCols int) (stats.Stats, error) {
	switch {
	case s.sigmaEng != nil:
		return s.sigmaEng.GEMMStats(stationary, streamCols)
	case s.tpuEng != nil:
		if stationary.Rank() != 2 {
			return stats.Stats{}, fmt.Errorf("stonne: GEMMStats requires a 2-D stationary operand, got %v", stationary.Shape())
		}
		return s.tpuEng.GEMMStats(stationary.Dim(0), stationary.Dim(1), streamCols)
	default:
		return stats.Stats{}, fmt.Errorf("stonne: MAERI has no raw GEMM entry point; use Dense with an FC mapping")
	}
}
