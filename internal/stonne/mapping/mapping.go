// Package mapping models the dataflow mapping (tile) configurations of
// reconfigurable accelerators — Tables IV and V of the Bifrost paper. A
// mapping is "a specific instance of a dataflow": it partitions a layer's
// iteration space into tiles that are mapped spatially onto the multiplier
// array, and it determines both the virtual-neuron structure configured into
// the reduction tree and the number of sequential steps.
package mapping

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvMapping is a tile configuration for a convolution on MAERI
// (Table IV). T_R×T_S×T_C multipliers form one virtual neuron (VN): they
// compute partial products that the reduction tree combines spatially. The
// remaining tiles replicate VNs across filters (T_K), groups (T_G), batch
// (T_N) and output positions (T_X, T_Y).
type ConvMapping struct {
	TR, TS, TC, TK, TG, TN, TX, TY int
}

// Basic returns the all-ones mapping Bifrost generates when the user does
// not provide one — valid for every architecture but very inefficient
// ("Execution using this mapping will be inefficient, but it makes it
// possible for researchers to quickly evaluate an architecture", §VII-C).
func Basic() ConvMapping { return ConvMapping{1, 1, 1, 1, 1, 1, 1, 1} }

// VNSize returns the number of multipliers per virtual neuron.
func (m ConvMapping) VNSize() int { return m.TR * m.TS * m.TC }

// NumVNs returns the number of virtual neurons mapped simultaneously.
func (m ConvMapping) NumVNs() int { return m.TK * m.TG * m.TN * m.TX * m.TY }

// Multipliers returns the total number of multipliers the mapping occupies.
func (m ConvMapping) Multipliers() int { return m.VNSize() * m.NumVNs() }

// String renders the tile tuple in Table IV order.
func (m ConvMapping) String() string {
	return fmt.Sprintf("T_R=%d T_S=%d T_C=%d T_K=%d T_G=%d T_N=%d T_X=%d T_Y=%d",
		m.TR, m.TS, m.TC, m.TK, m.TG, m.TN, m.TX, m.TY)
}

// Validate checks the mapping against a layer geometry and a multiplier
// budget. Every tile must be positive, no tile may exceed its dimension, the
// batch tile must be 1 (STONNE supports only N=1), and the spatial footprint
// must fit in the array.
func (m ConvMapping) Validate(d tensor.ConvDims, msSize int) error {
	if err := d.Resolve(); err != nil {
		return err
	}
	type bound struct {
		name      string
		tile, dim int
	}
	bounds := []bound{
		{"T_R", m.TR, d.R}, {"T_S", m.TS, d.S}, {"T_C", m.TC, d.C / d.G},
		{"T_K", m.TK, d.K / d.G}, {"T_G", m.TG, d.G}, {"T_N", m.TN, d.N},
		{"T_X", m.TX, d.P()}, {"T_Y", m.TY, d.Q()},
	}
	for _, b := range bounds {
		if b.tile < 1 {
			return fmt.Errorf("mapping: %s must be ≥ 1, got %d", b.name, b.tile)
		}
		if b.tile > b.dim {
			return fmt.Errorf("mapping: %s=%d exceeds its dimension %d", b.name, b.tile, b.dim)
		}
	}
	if m.TN != 1 {
		return fmt.Errorf("mapping: STONNE only supports T_N=1, got %d", m.TN)
	}
	if need := m.Multipliers(); need > msSize {
		return fmt.Errorf("mapping: needs %d multipliers but the array has %d", need, msSize)
	}
	return nil
}

// Steps returns the number of sequential tile iterations needed to cover the
// full convolution iteration space.
func (m ConvMapping) Steps(d tensor.ConvDims) int64 {
	ceil := func(a, b int) int64 { return int64((a + b - 1) / b) }
	return ceil(d.R, m.TR) * ceil(d.S, m.TS) * ceil(d.C/d.G, m.TC) *
		ceil(d.K/d.G, m.TK) * ceil(d.G, m.TG) * ceil(d.N, m.TN) *
		ceil(d.P(), m.TX) * ceil(d.Q(), m.TY)
}

// FCMapping is a tile configuration for a fully connected (dense) layer on
// MAERI (Table V): T_S output neurons × T_N batches of virtual neurons,
// each spatially reducing T_K input neurons.
type FCMapping struct {
	TS, TN, TK int
}

// BasicFC returns the all-ones default FC mapping.
func BasicFC() FCMapping { return FCMapping{1, 1, 1} }

// VNSize returns the multipliers per virtual neuron (the spatial reduction
// width over input neurons).
func (m FCMapping) VNSize() int { return m.TK }

// NumVNs returns the number of simultaneously mapped virtual neurons.
func (m FCMapping) NumVNs() int { return m.TS * m.TN }

// Multipliers returns the mapping's total multiplier footprint.
func (m FCMapping) Multipliers() int { return m.VNSize() * m.NumVNs() }

// String renders the tuple in the order used by Table VI: T_S, T_K, T_N.
func (m FCMapping) String() string {
	return fmt.Sprintf("%d, %d, %d", m.TS, m.TK, m.TN)
}

// Validate checks the FC mapping against a dense layer of M batches,
// K input neurons and N output neurons.
func (m FCMapping) Validate(batches, inNeurons, outNeurons, msSize int) error {
	if m.TS < 1 || m.TN < 1 || m.TK < 1 {
		return fmt.Errorf("mapping: FC tiles must be ≥ 1, got %s", m)
	}
	if m.TS > outNeurons {
		return fmt.Errorf("mapping: T_S=%d exceeds output neurons %d", m.TS, outNeurons)
	}
	if m.TK > inNeurons {
		return fmt.Errorf("mapping: T_K=%d exceeds input neurons %d", m.TK, inNeurons)
	}
	if m.TN != 1 {
		return fmt.Errorf("mapping: STONNE only supports T_N=1, got %d", m.TN)
	}
	if m.TN > batches {
		return fmt.Errorf("mapping: T_N=%d exceeds batches %d", m.TN, batches)
	}
	if need := m.Multipliers(); need > msSize {
		return fmt.Errorf("mapping: needs %d multipliers but the array has %d", need, msSize)
	}
	return nil
}

// Steps returns the number of sequential tile iterations for the dense
// layer.
func (m FCMapping) Steps(batches, inNeurons, outNeurons int) int64 {
	ceil := func(a, b int) int64 { return int64((a + b - 1) / b) }
	return ceil(outNeurons, m.TS) * ceil(inNeurons, m.TK) * ceil(batches, m.TN)
}
