package mapping

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func dims(t *testing.T) tensor.ConvDims {
	t.Helper()
	d := tensor.ConvDims{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBasicMappingValid(t *testing.T) {
	d := dims(t)
	m := Basic()
	if err := m.Validate(d, 8); err != nil {
		t.Fatal(err)
	}
	if m.Multipliers() != 1 || m.VNSize() != 1 || m.NumVNs() != 1 {
		t.Fatalf("basic mapping footprint: %d mults", m.Multipliers())
	}
}

func TestConvMappingFootprint(t *testing.T) {
	m := ConvMapping{TR: 3, TS: 3, TC: 2, TK: 4, TG: 1, TN: 1, TX: 1, TY: 2}
	if m.VNSize() != 18 {
		t.Fatalf("VNSize = %d", m.VNSize())
	}
	if m.NumVNs() != 8 {
		t.Fatalf("NumVNs = %d", m.NumVNs())
	}
	if m.Multipliers() != 144 {
		t.Fatalf("Multipliers = %d", m.Multipliers())
	}
}

func TestConvMappingValidation(t *testing.T) {
	d := dims(t)
	cases := []struct {
		name string
		m    ConvMapping
		ms   int
	}{
		{"zero tile", ConvMapping{0, 1, 1, 1, 1, 1, 1, 1}, 128},
		{"T_R too big", ConvMapping{4, 1, 1, 1, 1, 1, 1, 1}, 128},
		{"T_C too big", ConvMapping{1, 1, 9, 1, 1, 1, 1, 1}, 128},
		{"T_N not one", ConvMapping{1, 1, 1, 1, 1, 2, 1, 1}, 128},
		{"budget", ConvMapping{3, 3, 8, 2, 1, 1, 1, 1}, 128},
		{"T_X too big", ConvMapping{1, 1, 1, 1, 1, 1, 17, 1}, 128},
	}
	for _, c := range cases {
		if err := c.m.Validate(d, c.ms); err == nil {
			t.Fatalf("%s: expected validation error", c.name)
		}
	}
	good := ConvMapping{TR: 3, TS: 3, TC: 2, TK: 4, TG: 1, TN: 1, TX: 1, TY: 1}
	if err := good.Validate(d, 128); err != nil {
		t.Fatal(err)
	}
}

func TestConvStepsCoversIterationSpace(t *testing.T) {
	d := dims(t)
	// Basic mapping: one MAC per step ⇒ steps = total MACs.
	if got := Basic().Steps(d); got != d.MACs() {
		t.Fatalf("basic steps = %d, want MACs = %d", got, d.MACs())
	}
	// A mapping that covers everything spatially in reduction space.
	m := ConvMapping{TR: 3, TS: 3, TC: 8, TK: 1, TG: 1, TN: 1, TX: 1, TY: 1}
	want := int64(16 * 16 * 16) // K × P × Q
	if got := m.Steps(d); got != want {
		t.Fatalf("steps = %d, want %d", got, want)
	}
}

func TestConvStepsTimesFootprintBoundsMACs(t *testing.T) {
	// Property: steps × multipliers ≥ MACs (tiles may be partially filled
	// at the edges but never skip work).
	d := dims(t)
	f := func(tr, ts, tc, tk, tx, ty uint8) bool {
		m := ConvMapping{
			TR: 1 + int(tr)%3, TS: 1 + int(ts)%3, TC: 1 + int(tc)%8,
			TK: 1 + int(tk)%16, TG: 1, TN: 1, TX: 1 + int(tx)%16, TY: 1 + int(ty)%16,
		}
		return m.Steps(d)*int64(m.Multipliers()) >= d.MACs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFCMappingValidation(t *testing.T) {
	if err := BasicFC().Validate(1, 100, 50, 8); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name                 string
		m                    FCMapping
		batches, in, out, ms int
	}{
		{"zero tile", FCMapping{0, 1, 1}, 1, 100, 50, 128},
		{"T_S too big", FCMapping{51, 1, 1}, 1, 100, 50, 128},
		{"T_K too big", FCMapping{1, 1, 101}, 1, 100, 50, 128},
		{"T_N not one", FCMapping{1, 2, 1}, 2, 100, 50, 128},
		{"budget", FCMapping{20, 1, 10}, 1, 100, 50, 128},
	}
	for _, c := range cases {
		if err := c.m.Validate(c.batches, c.in, c.out, c.ms); err == nil {
			t.Fatalf("%s: expected validation error", c.name)
		}
	}
}

func TestFCSteps(t *testing.T) {
	m := FCMapping{TS: 10, TN: 1, TK: 4}
	// ceil(50/10) × ceil(100/4) × 1 = 5 × 25.
	if got := m.Steps(1, 100, 50); got != 125 {
		t.Fatalf("steps = %d, want 125", got)
	}
	if got := BasicFC().Steps(1, 100, 50); got != 5000 {
		t.Fatalf("basic steps = %d, want 5000", got)
	}
}

func TestFCStringTableVIOrder(t *testing.T) {
	// Table VI prints mappings as "T_S, T_K, T_N".
	m := FCMapping{TS: 12, TN: 1, TK: 8}
	if got := m.String(); got != "12, 8, 1" {
		t.Fatalf("String() = %q, want \"12, 8, 1\"", got)
	}
}

func TestConvStringMentionsAllTiles(t *testing.T) {
	s := Basic().String()
	for _, tile := range []string{"T_R", "T_S", "T_C", "T_K", "T_G", "T_N", "T_X", "T_Y"} {
		if !contains(s, tile) {
			t.Fatalf("String() = %q missing %s", s, tile)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
