package tpu

import (
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

// TestGEMMStatsMatchesMesh proves the closed-form stats bit-identical to
// the cycle-ticked mesh simulation, including shapes that leave boundary
// tiles on both output axes.
func TestGEMMStatsMatchesMesh(t *testing.T) {
	type geo struct{ m, k, n int }
	geos := []geo{
		{8, 8, 8},
		{13, 5, 9}, // boundary tiles on both axes
		{1, 17, 1},
		{20, 3, 33},
	}
	cfg := config.Default(config.TPUOSDense).Normalize()
	for _, g := range geos {
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a := tensor.RandomUniform(int64(g.m), 1, g.m, g.k)
		b := tensor.RandomUniform(int64(g.n), 1, g.k, g.n)
		eng.Reference = true
		wantOut, want, err := eng.GEMM(a, b)
		if err != nil {
			t.Fatal(err)
		}

		// The default full-accuracy path is now fused: closed-form counters
		// + fast GEMM arithmetic, never the cycle-ticked mesh. Stats AND
		// output bytes must match the mesh.
		fusedEng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fusedOut, fused, err := fusedEng.GEMM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if fused != want {
			t.Errorf("geo=%+v: fused stats diverge:\n fused %+v\n mesh %+v", g, fused, want)
		}
		if i := tensor.FirstBitDiff(wantOut, fusedOut); i >= 0 {
			t.Errorf("geo=%+v: fused output diverges at element %d: %v vs %v",
				g, i, fusedOut.Data()[i], wantOut.Data()[i])
		}
		got, err := eng.GEMMStats(g.m, g.k, g.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("geo=%+v:\n closed form %+v\n mesh %+v", g, got, want)
		}

		dry, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dry.DryRun = true
		out, dryStats, err := dry.GEMM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			t.Error("dry-run GEMM returned an output tensor")
		}
		if dryStats != want {
			t.Errorf("geo=%+v: dry-run stats diverge:\n dry %+v\n mesh %+v", g, dryStats, want)
		}
	}
}
