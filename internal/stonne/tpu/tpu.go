// Package tpu simulates STONNE's fixed systolic-array architecture
// (TPU_OS_DENSE): an OS_MESH of ms_rows × ms_cols processing elements with a
// rigid dataflow and a mandatory accumulation buffer. Unlike the MAERI and
// SIGMA step models, the mesh here is simulated cycle by cycle, PE by PE,
// through fabric.SystolicMesh — operands physically propagate through the
// pipeline registers with the canonical skew.
//
// The TPU has no mapping space: "since the TPU has a fixed dataflow
// architecture, the tiling can not be changed" (§V-A).
package tpu

import (
	"fmt"

	"repro/internal/stonne/config"
	"repro/internal/stonne/fabric"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// Engine simulates one TPU instance. An Engine reuses its systolic mesh
// across calls and is therefore not safe for concurrent use; create one
// engine per goroutine.
type Engine struct {
	cfg config.HWConfig

	// DryRun skips the cycle-ticked mesh while keeping every counter exact:
	// the OS_MESH's per-tile cost is a closed-form function of the tile
	// geometry, so the whole GEMM collapses to a handful of tile classes.
	//
	// Counters and arithmetic are decoupled (PR 4): by default full-accuracy
	// runs also skip the cycle-ticked mesh — Stats come from the closed
	// form and the output from the fast GEMM kernel, both bit-identical to
	// the mesh (each PE accumulates its output element's products in
	// ascending-K order with ±0 no-ops while operands are in flight,
	// exactly the chain tensor.GEMM computes).
	DryRun bool

	// Reference forces the cycle-ticked mesh — counters and, for
	// full-accuracy runs, arithmetic. It exists to validate the fused fast
	// path and to reproduce its derivation.
	Reference bool

	// Pack, when set, shares content-keyed derived operands across engines:
	// the dense lowering's transposed weight matrix and the fused GEMM's
	// packed B-panels are built once per distinct operand instead of once
	// per job. Outputs are bitwise identical with or without it.
	Pack *tensor.PackCache

	mesh *fabric.SystolicMesh
}

// NewEngine validates the hardware configuration and returns an engine.
func NewEngine(cfg config.HWConfig) (*Engine, error) {
	cfg = cfg.Normalize()
	if cfg.Controller != config.TPUOSDense {
		return nil, fmt.Errorf("tpu: controller_type must be TPU_OS_DENSE, got %s", cfg.Controller)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// GEMM computes out = a × b for a [M, K] and b [K, N] on the systolic mesh.
// The output is tiled into ms_rows × ms_cols blocks; each block is computed
// output-stationary with operands streamed through the skewed edges.
func (e *Engine) GEMM(a, b *tensor.Tensor) (*tensor.Tensor, stats.Stats, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, stats.Stats{}, fmt.Errorf("tpu: GEMM requires 2-D operands, got %v × %v", a.Shape(), b.Shape())
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		return nil, stats.Stats{}, fmt.Errorf("tpu: GEMM inner dimensions differ: %v × %v", a.Shape(), b.Shape())
	}
	if !e.Reference {
		// Fused fast path: closed-form counters, and for full-accuracy runs
		// the fast GEMM kernel — the mesh is never ticked. A mesh PE's
		// accumulator sums a[r,i]·b[i,c] for i ascending (the skew aligns
		// both operands on the same index; out-of-range ticks multiply
		// zero-fed registers, contributing ±0 no-ops), so tensor.GEMM
		// reproduces the output bytes exactly.
		st, err := e.GEMMStats(m, k, n)
		if err != nil || e.DryRun {
			return nil, st, err
		}
		return tensor.GEMMCached(a, b, e.Pack), st, nil
	}
	rows, cols := e.cfg.MSRows, e.cfg.MSCols
	if e.mesh == nil || e.mesh.Rows != rows || e.mesh.Cols != cols {
		mesh, err := fabric.NewSystolicMesh(rows, cols)
		if err != nil {
			return nil, stats.Stats{}, err
		}
		e.mesh = mesh
	}
	mesh := e.mesh
	out := tensor.New(m, n)
	var st stats.Stats
	st.Multipliers = rows * cols
	st.Outputs = int64(m) * int64(n)
	st.MACs = int64(m) * int64(k) * int64(n)

	aTile := make([]float32, rows*k)
	bTile := make([]float32, k*cols)
	var cycles int64
	for r0 := 0; r0 < m; r0 += rows {
		tr := min(rows, m-r0)
		// Zero-padded A tile.
		for i := range aTile {
			aTile[i] = 0
		}
		for r := 0; r < tr; r++ {
			copy(aTile[r*k:(r+1)*k], a.Data()[(r0+r)*k:(r0+r+1)*k])
		}
		for c0 := 0; c0 < n; c0 += cols {
			tc := min(cols, n-c0)
			for i := range bTile {
				bTile[i] = 0
			}
			for kk := 0; kk < k; kk++ {
				copy(bTile[kk*cols:kk*cols+tc], b.Data()[kk*n+c0:kk*n+c0+tc])
			}
			tileOut, tileCycles, elems := runTile(mesh, aTile, bTile, k, tr, tc)
			cycles += tileCycles
			st.DNElements += elems
			st.InputLoads += elems
			st.AccumWrites += int64(tr) * int64(tc)
			st.Steps++
			for r := 0; r < tr; r++ {
				for c := 0; c < tc; c++ {
					out.Set(tileOut[r*cols+c], r0+r, c0+c)
				}
			}
		}
	}
	st.Cycles = cycles
	return out, st, nil
}

// runTile drives the mesh through one output tile and returns the
// accumulators, the cycles consumed and the edge elements delivered.
func runTile(mesh *fabric.SystolicMesh, aTile, bTile []float32, k, tr, tc int) ([]float32, int64, int64) {
	outs, cycles := mesh.MultiplyTile(aTile, bTile, k)
	// Edge traffic: each of the tr active rows and tc active columns
	// receives k operands over the run.
	elems := int64(k) * int64(tr+tc)
	return outs, cycles, elems
}

// GEMMStats computes the statistics of an [M, K] × [K, N] GEMM in closed
// form, without ticking the mesh: every output tile costs
// K + Rows + Cols − 1 cycles regardless of how much of the mesh it covers
// (zero-padded lanes tick like active ones), and the edge traffic of a tile
// is k × (active rows + active columns), which takes at most four distinct
// values across the tile grid. Stats are bit-identical to the cycle-ticked
// simulation's (proven by the equivalence tests).
func (e *Engine) GEMMStats(m, k, n int) (stats.Stats, error) {
	if m < 1 || k < 1 || n < 1 {
		return stats.Stats{}, fmt.Errorf("tpu: GEMMStats needs positive dims, got %d×%d×%d", m, k, n)
	}
	rows, cols := e.cfg.MSRows, e.cfg.MSCols
	if rows < 1 || cols < 1 {
		return stats.Stats{}, fmt.Errorf("tpu: mesh needs positive dims, got %dx%d", rows, cols)
	}
	var st stats.Stats
	st.Multipliers = rows * cols
	st.Outputs = int64(m) * int64(n)
	st.MACs = int64(m) * int64(k) * int64(n)

	// Tile classes along each output axis: interior tiles cover the full
	// mesh extent, the optional boundary tile covers the remainder.
	type class struct {
		size  int
		count int64
	}
	classes := func(dim, tile int) []class {
		cls := []class{}
		if full := dim / tile; full > 0 {
			cls = append(cls, class{size: tile, count: int64(full)})
		}
		if rem := dim % tile; rem > 0 {
			cls = append(cls, class{size: rem, count: 1})
		}
		return cls
	}
	tileCycles := int64(k + rows + cols - 2 + 1) // skewed drain + 1 write-back
	var cycles int64
	for _, rc := range classes(m, rows) {
		for _, cc := range classes(n, cols) {
			count := rc.count * cc.count
			cycles += count * tileCycles
			elems := int64(k) * int64(rc.size+cc.size)
			st.DNElements += count * elems
			st.InputLoads += count * elems
			st.AccumWrites += count * int64(rc.size) * int64(cc.size)
			st.Steps += count
		}
	}
	st.Cycles = cycles
	return st, nil
}

// Dense executes a fully connected layer: input [M, K] × weights [S, K] →
// [M, S]. The TPU multiplies data × weightsᵀ.
func (e *Engine) Dense(in, weights *tensor.Tensor) (*tensor.Tensor, stats.Stats, error) {
	if in.Rank() != 2 || weights.Rank() != 2 {
		return nil, stats.Stats{}, fmt.Errorf("tpu: dense requires 2-D input and weights, got %v and %v", in.Shape(), weights.Shape())
	}
	if in.Dim(1) != weights.Dim(1) {
		return nil, stats.Stats{}, fmt.Errorf("tpu: dense reduction mismatch: input %v vs weights %v", in.Shape(), weights.Shape())
	}
	var wt *tensor.Tensor
	if e.Reference {
		// The reference mesh keeps a private copy to stay conservative.
		wt = weights.Transpose(1, 0)
	} else {
		// The fused route never mutates operands, so the transposed weight
		// matrix can be shared content-keyed across jobs.
		wt = tensor.Transpose2DCached(weights, e.Pack)
	}
	return e.GEMM(in, wt)
}
