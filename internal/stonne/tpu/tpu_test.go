package tpu

import (
	"testing"
	"testing/quick"

	"repro/internal/stonne/config"
	"repro/internal/tensor"
	"repro/internal/topi"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(config.Default(config.TPUOSDense))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineRejectsWrongController(t *testing.T) {
	if _, err := NewEngine(config.Default(config.MAERIDenseWorkload)); err == nil {
		t.Fatal("MAERI config must be rejected")
	}
}

func TestNewEngineNormalizesBandwidths(t *testing.T) {
	cfg := config.Default(config.TPUOSDense)
	cfg.DNBandwidth = 512 // wrong on purpose: Bifrost corrects it
	if _, err := NewEngine(cfg); err != nil {
		t.Fatalf("engine should normalise TPU bandwidths: %v", err)
	}
}

func TestGEMMCorrectExactTiles(t *testing.T) {
	e := newEngine(t) // 8×8 mesh
	a := tensor.RandomUniform(1, 1, 8, 20)
	b := tensor.RandomUniform(2, 1, 20, 8)
	got, st, err := e.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(tensor.GEMM(a, b), got, 1e-3) {
		t.Fatalf("TPU GEMM wrong: max diff %v", tensor.MaxAbsDiff(tensor.GEMM(a, b), got))
	}
	// One tile: k + rows + cols − 2 + 1 cycles.
	if want := int64(20 + 8 + 8 - 2 + 1); st.Cycles != want {
		t.Fatalf("cycles = %d, want %d", st.Cycles, want)
	}
	if st.Steps != 1 {
		t.Fatalf("steps = %d, want 1 tile", st.Steps)
	}
}

func TestGEMMCorrectRaggedTiles(t *testing.T) {
	e := newEngine(t)
	// 11×23 output: 2×3 = 6 partial tiles on an 8×8 mesh.
	a := tensor.RandomUniform(3, 1, 11, 13)
	b := tensor.RandomUniform(4, 1, 13, 23)
	got, st, err := e.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(tensor.GEMM(a, b), got, 1e-3) {
		t.Fatal("ragged-tile TPU GEMM wrong")
	}
	if st.Steps != 6 {
		t.Fatalf("steps = %d, want 6 tiles", st.Steps)
	}
}

func TestGEMMProperty(t *testing.T) {
	e := newEngine(t)
	f := func(seed int64) bool {
		m := 1 + int(uint(seed)%20)
		k := 1 + int(uint(seed>>8)%25)
		n := 1 + int(uint(seed>>16)%20)
		a := tensor.RandomUniform(seed, 1, m, k)
		b := tensor.RandomUniform(seed+1, 1, k, n)
		got, _, err := e.GEMM(a, b)
		if err != nil {
			return false
		}
		return tensor.AllClose(tensor.GEMM(a, b), got, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGEMMValidation(t *testing.T) {
	e := newEngine(t)
	if _, _, err := e.GEMM(tensor.New(2, 3), tensor.New(4, 2)); err == nil {
		t.Fatal("inner dim mismatch must be rejected")
	}
	if _, _, err := e.GEMM(tensor.New(6), tensor.New(6, 1)); err == nil {
		t.Fatal("1-D operand must be rejected")
	}
}

func TestDenseMatchesTopi(t *testing.T) {
	e := newEngine(t)
	in := tensor.RandomUniform(1, 1, 2, 40)
	w := tensor.RandomUniform(2, 1, 24, 40)
	want, err := topi.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, got, 1e-3) {
		t.Fatalf("TPU dense wrong: max diff %v", tensor.MaxAbsDiff(want, got))
	}
	if _, _, err := e.Dense(in, tensor.New(24, 41)); err == nil {
		t.Fatal("reduction mismatch must be rejected")
	}
}

func TestBiggerMeshFewerCycles(t *testing.T) {
	small, err := NewEngine(func() config.HWConfig {
		c := config.Default(config.TPUOSDense)
		c.MSRows, c.MSCols = 4, 4
		return c.Normalize()
	}())
	if err != nil {
		t.Fatal(err)
	}
	big := newEngine(t) // 8×8
	a := tensor.RandomUniform(1, 1, 32, 32)
	b := tensor.RandomUniform(2, 1, 32, 32)
	_, stSmall, err := small.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, stBig, err := big.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stBig.Cycles >= stSmall.Cycles {
		t.Fatalf("8×16 mesh (%d cycles) must beat 4×4 (%d cycles)", stBig.Cycles, stSmall.Cycles)
	}
}
