package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// cpuRun executes a graph entirely on the CPU inventory for comparison.
func cpuRun(t *testing.T, g *graph.Graph, feeds map[string]*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	ex := &graph.Executor{Graph: g}
	outs, err := ex.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	return outs[0]
}

func TestSessionRunsTinyCNNOnAllArchitectures(t *testing.T) {
	in := tensor.RandomUniform(9, 1, 1, 2, 10, 10)
	feeds := map[string]*tensor.Tensor{"data": in}
	want := cpuRun(t, models.TinyCNN(42), feeds)
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense} {
		s, err := NewSession(config.Default(ct))
		if err != nil {
			t.Fatal(err)
		}
		s.Verify = true
		outs, err := s.Run(models.TinyCNN(42), feeds)
		if err != nil {
			t.Fatalf("%s: %v", ct, err)
		}
		if !tensor.AllClose(want, outs[0], 1e-3) {
			t.Fatalf("%s: end-to-end output differs from CPU: max diff %v", ct, tensor.MaxAbsDiff(want, outs[0]))
		}
		recs := s.Records()
		if len(recs) != 2 { // conv1 + fc1
			t.Fatalf("%s: %d layer records, want 2", ct, len(recs))
		}
		total := s.TotalStats()
		if total.Cycles <= 0 || total.MACs <= 0 {
			t.Fatalf("%s: empty totals %+v", ct, total)
		}
	}
}

// TestSessionReferenceBitIdentical proves the end-to-end fused fast path
// against the step-loop reference at the session level: same model, same
// feeds, Reference toggled — outputs and every per-layer record must be
// bit-identical on all three architectures.
func TestSessionReferenceBitIdentical(t *testing.T) {
	in := tensor.RandomUniform(9, 1, 1, 2, 10, 10)
	feeds := map[string]*tensor.Tensor{"data": in}
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense} {
		fused, err := NewSession(config.Default(ct))
		if err != nil {
			t.Fatal(err)
		}
		fusedOuts, err := fused.Run(models.TinyCNN(42), feeds)
		if err != nil {
			t.Fatalf("%s fused: %v", ct, err)
		}
		ref, err := NewSession(config.Default(ct))
		if err != nil {
			t.Fatal(err)
		}
		ref.Reference = true
		refOuts, err := ref.Run(models.TinyCNN(42), feeds)
		if err != nil {
			t.Fatalf("%s reference: %v", ct, err)
		}
		if i := tensor.FirstBitDiff(refOuts[0], fusedOuts[0]); i >= 0 {
			t.Errorf("%s: fused output diverges from step loop at element %d", ct, i)
		}
		fr, rr := fused.Records(), ref.Records()
		if len(fr) != len(rr) {
			t.Fatalf("%s: %d fused records vs %d reference records", ct, len(fr), len(rr))
		}
		for i := range fr {
			if fr[i].Stats != rr[i].Stats {
				t.Errorf("%s: layer %q stats diverge:\n fused %+v\n ref   %+v", ct, fr[i].Name, fr[i].Stats, rr[i].Stats)
			}
		}
	}
}

func TestSessionRunsLeNetOnMAERI(t *testing.T) {
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	s.Verify = true
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(1, 1, 1, 1, 28, 28)}
	g := models.LeNet5(7)
	want := cpuRun(t, models.LeNet5(7), feeds)
	outs, err := s.Run(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, outs[0], 1e-3) {
		t.Fatalf("LeNet output differs: max diff %v", tensor.MaxAbsDiff(want, outs[0]))
	}
	if len(s.Records()) != 5 { // 2 convs + 3 dense
		t.Fatalf("%d records, want 5", len(s.Records()))
	}
}

func TestPerLayerMappingOverrides(t *testing.T) {
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	tuned := mapping.ConvMapping{TR: 3, TS: 3, TC: 2, TK: 2, TG: 1, TN: 1, TX: 2, TY: 1}
	s.ConvMappings["conv1"] = tuned
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(3, 1, 1, 2, 10, 10)}
	if _, err := s.Run(models.TinyCNN(1), feeds); err != nil {
		t.Fatal(err)
	}
	withOverride := s.Records()[0].Stats.Cycles

	s2, _ := NewSession(config.Default(config.MAERIDenseWorkload))
	if _, err := s2.Run(models.TinyCNN(1), feeds); err != nil {
		t.Fatal(err)
	}
	basic := s2.Records()[0].Stats.Cycles
	if withOverride >= basic {
		t.Fatalf("tuned mapping (%d cycles) must beat basic (%d cycles)", withOverride, basic)
	}
	if !strings.Contains(s.Records()[0].Mapping, "T_K=2") {
		t.Fatalf("record should carry the mapping: %q", s.Records()[0].Mapping)
	}
}

func TestDefaultMappingApplied(t *testing.T) {
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	def := mapping.FCMapping{TS: 4, TN: 1, TK: 4}
	s.DefaultFCMapping = &def
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(3, 1, 1, 2, 10, 10)}
	if _, err := s.Run(models.TinyCNN(1), feeds); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range s.Records() {
		if r.Op == "dense" && strings.Contains(r.Mapping, "4, 4, 1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("default FC mapping not applied: %+v", s.Records())
	}
}

func TestOffloadToggles(t *testing.T) {
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	s.OffloadConv = false
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(3, 1, 1, 2, 10, 10)}
	if _, err := s.Run(models.TinyCNN(1), feeds); err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Records() {
		if r.Op == "conv2d" {
			t.Fatal("conv must not be offloaded when disabled")
		}
	}
	if len(s.Records()) != 1 {
		t.Fatalf("%d records, want 1 (dense only)", len(s.Records()))
	}
}

func TestSIGMASparsityPruningAffectsCycles(t *testing.T) {
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(3, 1, 1, 2, 10, 10)}
	run := func(sparsity int) int64 {
		cfg := config.Default(config.SIGMASparseGEMM)
		cfg.SparsityRatio = sparsity
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(models.TinyCNN(1), feeds); err != nil {
			t.Fatal(err)
		}
		return s.TotalStats().Cycles
	}
	dense := run(0)
	sparse := run(50)
	if sparse >= dense {
		t.Fatalf("50%% sparsity (%d cycles) must be faster than dense (%d cycles)", sparse, dense)
	}
}

func TestNewSessionRejectsInvalidConfig(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	cfg.MSSize = 12
	if _, err := NewSession(cfg); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestInvalidMappingSurfacesError(t *testing.T) {
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	s.ConvMappings["conv1"] = mapping.ConvMapping{TR: 9, TS: 9, TC: 9, TK: 9, TG: 1, TN: 1, TX: 1, TY: 1}
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(3, 1, 1, 2, 10, 10)}
	if _, err := s.Run(models.TinyCNN(1), feeds); err == nil {
		t.Fatal("invalid mapping must abort the run")
	}
}

func TestReportMentionsLayersAndTotals(t *testing.T) {
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(3, 1, 1, 2, 10, 10)}
	if _, err := s.Run(models.TinyCNN(1), feeds); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	for _, want := range []string{"conv1", "fc1", "total:", "MAERI"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestRunResetsRecords(t *testing.T) {
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(3, 1, 1, 2, 10, 10)}
	if _, err := s.Run(models.TinyCNN(1), feeds); err != nil {
		t.Fatal(err)
	}
	n := len(s.Records())
	if _, err := s.Run(models.TinyCNN(1), feeds); err != nil {
		t.Fatal(err)
	}
	if len(s.Records()) != n {
		t.Fatalf("records accumulated across runs: %d vs %d", len(s.Records()), n)
	}
}

func TestNHWCModelOffload(t *testing.T) {
	// A TensorFlow-layout model must take the conv2d.nhwc path and still
	// match the CPU execution on every architecture.
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(11, 1, 1, 10, 10, 2)}
	want := cpuRun(t, models.TinyCNNNHWC(4), feeds)
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense} {
		s, err := NewSession(config.Default(ct))
		if err != nil {
			t.Fatal(err)
		}
		s.Verify = true
		outs, err := s.Run(models.TinyCNNNHWC(4), feeds)
		if err != nil {
			t.Fatalf("%s: %v", ct, err)
		}
		if !tensor.AllClose(want, outs[0], 1e-3) {
			t.Fatalf("%s: NHWC model output differs: max diff %v", ct, tensor.MaxAbsDiff(want, outs[0]))
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	// Sanity check that Verify is not vacuous: an impossible tolerance must
	// still pass (outputs are exact), while the mechanism is exercised.
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	s.Verify = true
	s.VerifyTolerance = 1e-9 // float32 sums differ by rounding only
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(3, 1, 1, 2, 10, 10)}
	if _, err := s.Run(models.TinyCNN(1), feeds); err != nil {
		// Rounding order may legitimately exceed 1e-9; accept either
		// outcome but require the error to identify the layer.
		if !strings.Contains(err.Error(), "verification failed") {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
}

func TestMiniResNetOffloadWithBNFolding(t *testing.T) {
	// The residual model exercises batch-norm folding (the BN sits between
	// the offloaded conv and the skip add) plus the element-wise Add on the
	// CPU path, with offloaded convs on MAERI.
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(13, 1, 1, 8, 16, 16)}
	want := cpuRun(t, models.MiniResNet(2), feeds)
	s, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	s.Verify = true
	outs, err := s.Run(models.MiniResNet(2), feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, outs[0], 1e-3) {
		t.Fatalf("residual model differs: max diff %v", tensor.MaxAbsDiff(want, outs[0]))
	}
	// 2 convs + 1 dense offloaded.
	if len(s.Records()) != 3 {
		t.Fatalf("records = %d, want 3", len(s.Records()))
	}
}
