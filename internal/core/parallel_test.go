package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/farm"
	"repro/internal/graph"
	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

// branchyModel builds a two-branch CNN whose conv layers are offloaded, so
// the wavefront executor has real accelerator work to run concurrently.
func branchyModel() (*graph.Graph, map[string]*tensor.Tensor) {
	g := graph.New("branchy")
	in := g.Input("data", 1, 2, 10, 10)
	var branches []*graph.Node
	for i := 0; i < 2; i++ {
		w := g.Constant(fmt.Sprintf("w%d", i), tensor.RandomUniform(int64(20+i), 1, 4, 2, 3, 3))
		c := g.Conv2D(fmt.Sprintf("conv%d", i), in, w, graph.Attrs{PadH: 1, PadW: 1})
		branches = append(branches, g.ReLU(fmt.Sprintf("relu%d", i), c))
	}
	sum := g.Add("sum", branches[0], branches[1])
	g.MarkOutput(sum)
	return g, map[string]*tensor.Tensor{"data": tensor.RandomUniform(5, 1, 1, 2, 10, 10)}
}

// TestSessionParallelExecBitIdentical proves a wavefront-scheduled session
// (with and without a farm) produces bitwise-identical outputs and the same
// per-layer records, in the same order, as the serial session.
func TestSessionParallelExecBitIdentical(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	serial, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, feeds := branchyModel()
	want, err := serial.Run(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	recs := serial.Records()

	fm := farm.New(4)
	defer fm.Close()
	for _, withFarm := range []bool{false, true} {
		par, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par.ExecWorkers = 4
		if withFarm {
			par.WithFarm(fm)
		}
		g2, feeds2 := branchyModel()
		got, err := par.Run(g2, feeds2)
		if err != nil {
			t.Fatalf("farm=%v: %v", withFarm, err)
		}
		for i := range want[0].Data() {
			if got[0].Data()[i] != want[0].Data()[i] {
				t.Fatalf("farm=%v: element %d = %v, want %v (not bitwise identical)",
					withFarm, i, got[0].Data()[i], want[0].Data()[i])
			}
		}
		gotRecs := par.Records()
		if !reflect.DeepEqual(recs, gotRecs) {
			t.Fatalf("farm=%v: records diverge:\n serial   %v\n parallel %v", withFarm, recs, gotRecs)
		}
	}
}
