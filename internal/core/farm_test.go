package core

import (
	"testing"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
	"repro/internal/models"
	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

// TestSessionWithFarmBitIdentical runs the same model with and without the
// farm on every architecture and requires bit-identical outputs and
// per-layer records — the farm may only change wall-clock time and cache
// statistics, never results.
func TestSessionWithFarmBitIdentical(t *testing.T) {
	f := farm.New(4)
	defer f.Close()
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(9, 1, 1, 2, 10, 10)}
	for _, ct := range []config.ControllerType{
		config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense,
	} {
		cfg := config.Default(ct)
		if ct == config.SIGMASparseGEMM {
			cfg.SparsityRatio = 50
		}
		serial, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial.Verify = true
		serialOut, err := serial.Run(models.TinyCNN(42), feeds)
		if err != nil {
			t.Fatalf("%s serial: %v", ct, err)
		}

		farmed, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		farmed.Verify = true
		farmed.WithFarm(f)
		farmedOut, err := farmed.Run(models.TinyCNN(42), feeds)
		if err != nil {
			t.Fatalf("%s farmed: %v", ct, err)
		}

		if len(serialOut) != len(farmedOut) {
			t.Fatalf("%s: output counts differ", ct)
		}
		for i := range serialOut {
			if !tensor.AllClose(serialOut[i], farmedOut[i], 0) {
				t.Fatalf("%s: output %d not bit-identical (max diff %v)",
					ct, i, tensor.MaxAbsDiff(serialOut[i], farmedOut[i]))
			}
		}
		sr, fr := serial.Records(), farmed.Records()
		if len(sr) != len(fr) {
			t.Fatalf("%s: record counts differ: %d vs %d", ct, len(sr), len(fr))
		}
		for i := range sr {
			if sr[i] != fr[i] {
				t.Fatalf("%s: layer record %d differs:\n  serial: %v\n  farmed: %v", ct, i, sr[i], fr[i])
			}
		}
	}
}

// TestSessionRepeatRunsHitCache re-runs a session sharing a farm and checks
// the second run is served entirely from the cache.
func TestSessionRepeatRunsHitCache(t *testing.T) {
	f := farm.New(2)
	defer f.Close()
	sess, err := NewSession(config.Default(config.MAERIDenseWorkload))
	if err != nil {
		t.Fatal(err)
	}
	sess.WithFarm(f)
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(9, 1, 1, 2, 10, 10)}
	if _, err := sess.Run(models.TinyCNN(42), feeds); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := f.Stats().Misses
	if _, err := sess.Run(models.TinyCNN(42), feeds); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Misses != missesAfterFirst {
		t.Fatalf("second identical run re-simulated: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("second identical run produced no cache hits: %+v", st)
	}
}

// TestSessionDifferentialHarness runs the shared differential job table at
// the core layer: the session-facing farm paths must agree byte-for-byte
// with fresh, warm-memory and cold-disk execution.
func TestSessionDifferentialHarness(t *testing.T) {
	farmtest.AssertEquivalent(t, farmtest.Jobs())
}

// TestColdSessionReplaysWarmDiskCache is the end-to-end persistence check
// at the session layer: a session in a "new process" (a fresh farm on a
// warm cache directory) must replay a whole model with zero simulator
// executions and bit-identical outputs and per-layer records.
func TestColdSessionReplaysWarmDiskCache(t *testing.T) {
	dir := t.TempDir()
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(9, 1, 1, 2, 10, 10)}
	openFarm := func() *farm.Farm {
		ds, err := farm.NewDiskStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return farm.New(2, farm.WithDiskStore(ds))
	}
	run := func(f *farm.Farm) (*Session, []*tensor.Tensor) {
		sess, err := NewSession(config.Default(config.MAERIDenseWorkload))
		if err != nil {
			t.Fatal(err)
		}
		sess.WithFarm(f)
		outs, err := sess.Run(models.TinyCNN(42), feeds)
		if err != nil {
			t.Fatal(err)
		}
		return sess, outs
	}

	warmFarm := openFarm()
	warmSess, warmOuts := run(warmFarm)
	warmFarm.Close()

	coldFarm := openFarm()
	defer coldFarm.Close()
	coldSess, coldOuts := run(coldFarm)

	for i := range warmOuts {
		if !tensor.AllClose(warmOuts[i], coldOuts[i], 0) {
			t.Fatalf("output %d not bit-identical across the process boundary (max diff %v)",
				i, tensor.MaxAbsDiff(warmOuts[i], coldOuts[i]))
		}
	}
	wr, cr := warmSess.Records(), coldSess.Records()
	if len(wr) != len(cr) {
		t.Fatalf("record counts differ: %d vs %d", len(wr), len(cr))
	}
	for i := range wr {
		if wr[i] != cr[i] {
			t.Fatalf("layer record %d differs across the process boundary:\n  warm: %v\n  cold: %v", i, wr[i], cr[i])
		}
	}
	st := coldFarm.Stats()
	if st.Misses != 0 || st.Completed != 0 {
		t.Fatalf("cold session re-simulated: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("cold session did not hit the disk tier: %+v", st)
	}
}
