// Package core implements the Bifrost engine — the paper's primary
// contribution: an end-to-end runner that takes any model expressed in the
// graph IR, offloads its conv2d and dense layers to a simulated
// reconfigurable accelerator through the STONNE-Bifrost API, executes every
// other operator on the CPU inventory, and records per-layer simulation
// metrics. It plays the roles of the paper's "Simulator Configurator"
// (validating hardware configurations), "Mapping Configurator" (per-layer
// dataflow mappings with automatic defaults) and transparent runner
// (Listing 1: a whole model executes with no modification).
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/api"
	"repro/internal/farm"
	"repro/internal/graph"
	"repro/internal/passes"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// Session is one configured Bifrost run context. The zero value is not
// usable; construct with NewSession.
type Session struct {
	cfg config.HWConfig

	// OffloadConv and OffloadDense select which operator kinds are sent to
	// the accelerator; everything else always runs on the CPU target.
	OffloadConv  bool
	OffloadDense bool

	// Verify cross-checks every offloaded layer against the CPU operator
	// inventory ("allows end-to-end evaluation and easy verification of
	// correctness", §I). Verification failures abort the run.
	Verify bool

	// VerifyTolerance is the relative tolerance used by Verify (default 1e-3).
	VerifyTolerance float64

	// Per-layer mapping overrides, keyed by node name. Layers without an
	// entry fall back to the defaults, and finally to the basic mapping.
	ConvMappings map[string]mapping.ConvMapping
	FCMappings   map[string]mapping.FCMapping

	// Optional defaults applied to layers without a named override.
	DefaultConvMapping *mapping.ConvMapping
	DefaultFCMapping   *mapping.FCMapping

	// ExecWorkers configures the graph executor: 0 or 1 runs nodes
	// serially; > 1 enables wavefront scheduling so independent branches
	// of the model execute concurrently (each offloaded layer submitting
	// its own simulation, which a farm then runs in parallel); < 0 selects
	// GOMAXPROCS. Outputs and the per-layer record set are bit-identical
	// to serial execution; records are reported in topological order
	// either way.
	ExecWorkers int

	// Reference forces every offloaded layer through the step-loop /
	// cycle-ticked reference engines instead of the default fused fast path
	// (analytic counters + fast arithmetic). Outputs, records and cache
	// keys are identical either way — the flag exists to validate the fast
	// path end to end and to measure its speedup.
	Reference bool

	farm *farm.Farm

	// pack is the session's content-keyed cache of derived operand forms,
	// used by the inline (farmless) execution path so repeated runs of the
	// same model — or weight-sharing layers within one run — pack each
	// derived form once. Farmed layers use the farm's shared cache instead.
	// Results are byte-identical with or without it.
	pack *tensor.PackCache

	recmu   sync.Mutex
	records []api.LayerRecord
}

// NewSession validates the hardware configuration (the simulator
// configurator "ensures that only valid hardware configurations for
// simulation are specified") and returns a ready session.
func NewSession(cfg config.HWConfig) (*Session, error) {
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Session{
		cfg:             cfg,
		OffloadConv:     true,
		OffloadDense:    true,
		VerifyTolerance: 1e-3,
		ConvMappings:    make(map[string]mapping.ConvMapping),
		FCMappings:      make(map[string]mapping.FCMapping),
		pack:            tensor.NewPackCache(tensor.DefaultPackCacheEntries, tensor.DefaultPackCacheBytes),
	}, nil
}

// Config returns the session's normalised hardware configuration.
func (s *Session) Config() config.HWConfig { return s.cfg }

// WithFarm routes every offloaded layer through the given simulation farm:
// each layer is submitted as a job, so identical simulations — across runs,
// sessions or concurrent requests sharing the farm — are deduplicated and
// served from the content-addressed cache. A farm with a persistent tier
// (farm.WithDiskStore) extends that across processes: a cold session
// replaying a model against a warm cache directory executes zero
// simulations. Outputs, per-layer records and their ordering are
// bit-identical to the farmless path; only wall-clock time and cache
// statistics change. Passing nil restores direct execution. It returns s
// for chaining.
func (s *Session) WithFarm(f *farm.Farm) *Session {
	s.farm = f
	return s
}

// Farm returns the farm configured with WithFarm, or nil.
func (s *Session) Farm() *farm.Farm { return s.farm }

// Records returns the per-layer simulation records of the last Run.
func (s *Session) Records() []api.LayerRecord { return s.records }

// TotalStats aggregates the records of the last Run.
func (s *Session) TotalStats() stats.Stats {
	var total stats.Stats
	for _, r := range s.records {
		total.Add(r.Stats)
	}
	return total
}

// convMappingFor resolves the dataflow mapping for a conv node: named
// override → session default → automatically generated basic mapping
// ("Bifrost will automatically generate an unoptimized default mapping if
// none is provided", §VIII-B).
func (s *Session) convMappingFor(name string) mapping.ConvMapping {
	if m, ok := s.ConvMappings[name]; ok {
		return m
	}
	if s.DefaultConvMapping != nil {
		return *s.DefaultConvMapping
	}
	return mapping.Basic()
}

func (s *Session) fcMappingFor(name string) mapping.FCMapping {
	if m, ok := s.FCMappings[name]; ok {
		return m
	}
	if s.DefaultFCMapping != nil {
		return *s.DefaultFCMapping
	}
	return mapping.BasicFC()
}

// maybePrune applies SIGMA's sparsity_ratio to a weight tensor by magnitude
// pruning a copy; other architectures pass weights through untouched.
func (s *Session) maybePrune(w *tensor.Tensor) *tensor.Tensor {
	if s.cfg.Controller != config.SIGMASparseGEMM || s.cfg.SparsityRatio == 0 {
		return w
	}
	pruned := w.Clone()
	tensor.Prune(pruned, float64(s.cfg.SparsityRatio)/100)
	return pruned
}

// Run optimises the graph with the standard pass pipeline and executes it
// end to end, offloading supported layers to the simulated accelerator.
// It mirrors Listing 1: the caller provides an unmodified model and feeds.
func (s *Session) Run(g *graph.Graph, feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := passes.Standard(g); err != nil {
		return nil, err
	}
	s.records = s.records[:0]
	ex := &graph.Executor{Graph: g, Offload: s.offload, Workers: s.ExecWorkers}
	outs, err := ex.Run(feeds)
	if err != nil {
		return nil, err
	}
	if s.ExecWorkers > 1 || s.ExecWorkers < 0 {
		// Wavefront execution appends records in completion order; restore
		// the deterministic topological order serial execution reports.
		order, err := g.TopoSort()
		if err != nil {
			return nil, err
		}
		pos := make(map[string]int, len(order))
		for i, n := range order {
			pos[n.Name] = i
		}
		sort.SliceStable(s.records, func(i, j int) bool { return pos[s.records[i].Name] < pos[s.records[j].Name] })
	}
	return outs, nil
}

// offload is the graph.OffloadFunc that redirects conv2d and dense nodes to
// the STONNE-Bifrost API.
func (s *Session) offload(n *graph.Node, ins []*tensor.Tensor) (*tensor.Tensor, bool, error) {
	switch n.Op {
	case graph.OpConv2D:
		if !s.OffloadConv {
			return nil, false, nil
		}
		return s.offloadConv(n, ins)
	case graph.OpDense:
		if !s.OffloadDense {
			return nil, false, nil
		}
		return s.offloadDense(n, ins)
	}
	return nil, false, nil
}

func (s *Session) offloadConv(n *graph.Node, ins []*tensor.Tensor) (*tensor.Tensor, bool, error) {
	d, err := graph.ConvDimsOf(n)
	if err != nil {
		return nil, false, err
	}
	kernel := s.maybePrune(ins[1])
	m := s.convMappingFor(n.Name)
	// One job description for both paths: the farm schedules, caches and
	// deduplicates it; without a farm the same job runs inline, so the two
	// paths cannot drift apart.
	job := farm.Job{
		HW: s.cfg, Kind: farm.Conv2D, Layout: n.Attrs.DataLayout,
		Dims: d, ConvMapping: m, Input: ins[0], Weights: kernel,
		Reference: s.Reference,
	}
	var res farm.Result
	if s.farm != nil {
		res, err = s.farm.Do(job)
	} else {
		res, err = farm.Run(job.WithPackCache(s.pack))
	}
	if err != nil {
		return nil, false, fmt.Errorf("offloading conv2d %q: %w", n.Name, err)
	}
	out, st := res.Out, res.Stats
	if s.Verify {
		var want *tensor.Tensor
		if n.Attrs.DataLayout == tensor.NHWC {
			want, err = topi.Conv2DNHWC(ins[0], kernel, d)
		} else {
			want, err = topi.Conv2DNCHW(ins[0], kernel, d)
		}
		if err != nil {
			return nil, false, err
		}
		if !tensor.AllClose(want, out, s.VerifyTolerance) {
			return nil, false, fmt.Errorf("verification failed for conv2d %q: max diff %v", n.Name, tensor.MaxAbsDiff(want, out))
		}
	}
	s.recmu.Lock()
	s.records = append(s.records, api.LayerRecord{
		Name: n.Name, Op: "conv2d", Arch: s.cfg.Controller, Mapping: m.String(), Stats: st,
	})
	s.recmu.Unlock()
	return out, true, nil
}

func (s *Session) offloadDense(n *graph.Node, ins []*tensor.Tensor) (*tensor.Tensor, bool, error) {
	weights := s.maybePrune(ins[1])
	m := s.fcMappingFor(n.Name)
	job := farm.Job{HW: s.cfg, Kind: farm.Dense, FCMapping: m, Input: ins[0], Weights: weights, Reference: s.Reference}
	var res farm.Result
	var err error
	if s.farm != nil {
		res, err = s.farm.Do(job)
	} else {
		res, err = farm.Run(job.WithPackCache(s.pack))
	}
	if err != nil {
		return nil, false, fmt.Errorf("offloading dense %q: %w", n.Name, err)
	}
	out, st := res.Out, res.Stats
	if s.Verify {
		want, err := topi.Dense(ins[0], weights)
		if err != nil {
			return nil, false, err
		}
		if !tensor.AllClose(want, out, s.VerifyTolerance) {
			return nil, false, fmt.Errorf("verification failed for dense %q: max diff %v", n.Name, tensor.MaxAbsDiff(want, out))
		}
	}
	s.recmu.Lock()
	s.records = append(s.records, api.LayerRecord{
		Name: n.Name, Op: "dense", Arch: s.cfg.Controller, Mapping: "T_S, T_K, T_N = " + m.String(), Stats: st,
	})
	s.recmu.Unlock()
	return out, true, nil
}

// Report renders a per-layer table of the last Run plus totals.
func (s *Session) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bifrost report — %s (%d multipliers, dn_bw=%d, rn_bw=%d)\n",
		s.cfg.Controller, s.cfg.Multipliers(), s.cfg.DNBandwidth, s.cfg.RNBandwidth)
	recs := append([]api.LayerRecord(nil), s.records...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Stats.Cycles > recs[j].Stats.Cycles })
	for _, r := range recs {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	fmt.Fprintf(&b, "  total: %s\n", s.TotalStats())
	return b.String()
}
