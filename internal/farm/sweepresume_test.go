package farm_test

import (
	"testing"

	"repro/internal/farm/farmtest"
)

// TestChaosJournalResume drives the farmtest crash/resume pass: a sweep
// journaled half-way and finished by two successive cold processes must be
// byte-identical to an uninterrupted run with zero recomputation of
// journaled rows.
func TestChaosJournalResume(t *testing.T) {
	farmtest.AssertJournalResume(t)
}
