package farm

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The peer wire protocol makes one node's result cache readable and
// writable by another, speaking the exact versioned frame format the disk
// tier persists (codec.go) under the exact content-addressed keys the farm
// derives (key.go):
//
//	GET /peer/codec          → 200, JSON PeerCodecInfo (the handshake)
//	GET /peer/result/{key}   → 200 octet-stream frame | 404 miss | 412 version skew
//	PUT /peer/result/{key}   → 204 stored | 412 version skew | 422 bad frame
//
// Every result exchange carries the sender's codec and key versions in
// headers; either side that sees a mismatch refuses the exchange with 412
// rather than decode bytes under the wrong rules or file results under keys
// the other side never derives. The client (PeerStore) additionally
// handshakes via /peer/codec before its first exchange and downgrades a
// mismatched peer to always-miss — version skew during a rolling upgrade
// degrades throughput, never correctness.

// PeerCodecInfo is the handshake payload: the versions a node speaks.
type PeerCodecInfo struct {
	CodecVersion int    `json:"codec_version"`
	KeyVersion   string `json:"key_version"`
}

const (
	peerCodecHeader = "X-Bifrost-Codec"
	peerKeyHeader   = "X-Bifrost-Key-Version"

	// peerMaxFrameBytes bounds a result frame on the wire; a frame near this
	// size would be a multi-GB output tensor, far past anything the farm
	// simulates.
	peerMaxFrameBytes = 256 << 20
)

// setPeerVersionHeaders stamps a message with the local protocol versions.
func setPeerVersionHeaders(h http.Header) {
	h.Set(peerCodecHeader, strconv.Itoa(CodecVersion))
	h.Set(peerKeyHeader, KeyVersion)
}

// peerVersionsMatch reports whether a message's version headers agree with
// the local ones. Absent headers count as a match: the handshake endpoint
// is the authoritative check, the headers are a per-exchange tripwire for
// peers that restarted with a new version mid-conversation.
func peerVersionsMatch(h http.Header) bool {
	if v := h.Get(peerCodecHeader); v != "" && v != strconv.Itoa(CodecVersion) {
		return false
	}
	if v := h.Get(peerKeyHeader); v != "" && v != KeyVersion {
		return false
	}
	return true
}

// isResultKey reports whether key has the shape Job.Key() produces: 64
// lowercase hex characters. The handler rejects anything else before it
// touches the cache, so a peer cannot probe with arbitrary strings.
func isResultKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	_, err := hex.DecodeString(key)
	return err == nil && strings.ToLower(key) == key
}

// PeerHandler serves the peer wire protocol over f's result cache. It is an
// http.Handler with its own routing for the /peer/ endpoints; the serve
// layer mounts it on the main mux, and tests mount it directly on an
// httptest server. Lookups and stores are confined to this node's own
// tiers (memory plus the disk tier's local half): a peer asking "do you
// have this" must never trigger a further peer lookup from here, and a
// replica frame pushed by a peer must never fan back out — either would
// turn the replication graph into a cycle.
func PeerHandler(f *Farm) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /peer/codec", func(w http.ResponseWriter, r *http.Request) {
		setPeerVersionHeaders(w.Header())
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(PeerCodecInfo{CodecVersion: CodecVersion, KeyVersion: KeyVersion})
	})

	mux.HandleFunc("GET /peer/result/{key}", func(w http.ResponseWriter, r *http.Request) {
		setPeerVersionHeaders(w.Header())
		if !peerVersionsMatch(r.Header) {
			http.Error(w, "peer codec/key version mismatch", http.StatusPreconditionFailed)
			return
		}
		key := r.PathValue("key")
		if !isResultKey(key) {
			http.Error(w, "malformed result key", http.StatusBadRequest)
			return
		}
		res, ok := f.cacheGetLocal(key)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		frame := EncodeResult(res)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
		w.Write(frame)
	})

	mux.HandleFunc("PUT /peer/result/{key}", func(w http.ResponseWriter, r *http.Request) {
		setPeerVersionHeaders(w.Header())
		if !peerVersionsMatch(r.Header) {
			http.Error(w, "peer codec/key version mismatch", http.StatusPreconditionFailed)
			return
		}
		key := r.PathValue("key")
		if !isResultKey(key) {
			http.Error(w, "malformed result key", http.StatusBadRequest)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, peerMaxFrameBytes+1))
		if err != nil {
			http.Error(w, "reading frame: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > peerMaxFrameBytes {
			http.Error(w, "result frame too large", http.StatusRequestEntityTooLarge)
			return
		}
		res, err := DecodeResult(body)
		if err != nil {
			// The frame validated nowhere — CRC, magic or structure failed —
			// so the replica is refused; the sender's copy is what's damaged.
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		f.cachePutLocal(key, res)
		w.WriteHeader(http.StatusNoContent)
	})

	return mux
}

// PeerStore is a remote result-cache tier: a farm.Store whose entries live
// in another node's cache, reached over the peer wire protocol. It slots
// anywhere a Store does — a coordinator composes Memory→Peer the way a
// single node composes Memory→Disk — and implements FallibleStore so
// NewRetryStore gives an unreachable peer the same treatment as a failing
// disk: bounded retries, quarantine after a failure streak, half-open
// probes until it recovers.
//
// Failure taxonomy, matching the Store contract:
//   - network error or 5xx    → GetErr/PutErr error (retry/quarantine food)
//   - 404                     → clean miss (and proof the peer is healthy)
//   - corrupt or short frame  → clean miss, counted in Stats().Corrupt
//   - version skew (412 or a
//     failed handshake match) → permanent miss until re-handshake; not a
//     fault, so it never trips the breaker
type PeerStore struct {
	base   string // peer base URL, no trailing slash
	client *http.Client

	// Handshake state. hsMu is held across the handshake request itself so
	// concurrent first lookups collapse into one probe.
	hsMu        sync.Mutex
	hsKnown     bool
	hsCompat    bool
	hsChecked   time.Time
	recheckSkew time.Duration // how often a mismatched peer is re-probed

	statsMu sync.Mutex
	stats   StoreStats
}

// PeerStoreOption configures a PeerStore.
type PeerStoreOption func(*PeerStore)

// WithPeerHTTPClient substitutes the HTTP client — the seam the chaos
// harness uses to inject network faults at the transport level.
func WithPeerHTTPClient(c *http.Client) PeerStoreOption {
	return func(p *PeerStore) {
		if c != nil {
			p.client = c
		}
	}
}

// WithPeerRecheck sets how often a version-mismatched peer is re-probed via
// the handshake (default 30s) — long enough that a skewed peer costs ~zero,
// short enough that finishing its upgrade brings it back without a restart.
func WithPeerRecheck(d time.Duration) PeerStoreOption {
	return func(p *PeerStore) {
		if d > 0 {
			p.recheckSkew = d
		}
	}
}

// NewPeerStore returns a Store backed by the peer at baseURL (scheme and
// host, e.g. "http://node2:8080"). The handshake is lazy: the first
// operation performs it, and until a handshake succeeds compatibly the
// store answers every lookup with a miss.
func NewPeerStore(baseURL string, opts ...PeerStoreOption) *PeerStore {
	p := &PeerStore{
		base:        strings.TrimRight(baseURL, "/"),
		client:      &http.Client{Timeout: 30 * time.Second},
		recheckSkew: 30 * time.Second,
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// URL returns the peer's base URL.
func (p *PeerStore) URL() string { return p.base }

// handshake ensures the peer's versions are known, re-probing a mismatched
// peer at most once per recheck interval. It returns whether the peer is
// compatible; a network failure during the handshake is returned as an
// error (the peer is unreachable, not incompatible) and leaves the state
// unknown so the next operation retries.
func (p *PeerStore) handshake() (bool, error) {
	p.hsMu.Lock()
	defer p.hsMu.Unlock()
	if p.hsKnown {
		if p.hsCompat {
			return true, nil
		}
		if time.Since(p.hsChecked) < p.recheckSkew {
			return false, nil
		}
	}
	resp, err := p.client.Get(p.base + "/peer/codec")
	if err != nil {
		return false, fmt.Errorf("peer %s: handshake: %w", p.base, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("peer %s: handshake: HTTP %d", p.base, resp.StatusCode)
	}
	var info PeerCodecInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&info); err != nil {
		return false, fmt.Errorf("peer %s: handshake: %w", p.base, err)
	}
	p.hsKnown = true
	p.hsChecked = time.Now()
	p.hsCompat = info.CodecVersion == CodecVersion && info.KeyVersion == KeyVersion
	return p.hsCompat, nil
}

// markSkewed records a 412 seen mid-conversation: the peer changed versions
// after a compatible handshake (restart during an upgrade), so it goes back
// to the mismatched state until the next re-probe.
func (p *PeerStore) markSkewed() {
	p.hsMu.Lock()
	p.hsKnown = true
	p.hsCompat = false
	p.hsChecked = time.Now()
	p.hsMu.Unlock()
}

func (p *PeerStore) count(f func(*StoreStats)) {
	p.statsMu.Lock()
	f(&p.stats)
	p.statsMu.Unlock()
}

// GetErr implements FallibleStore: fetch the frame from the peer and decode
// it under the shared codec. See the type comment for the failure taxonomy.
func (p *PeerStore) GetErr(key string) (Result, bool, error) {
	compat, err := p.handshake()
	if err != nil {
		p.count(func(s *StoreStats) { s.Errors++; s.Misses++ })
		return Result{}, false, err
	}
	if !compat {
		p.count(func(s *StoreStats) { s.Misses++ })
		return Result{}, false, nil
	}
	req, err := http.NewRequest(http.MethodGet, p.base+"/peer/result/"+key, nil)
	if err != nil {
		return Result{}, false, err
	}
	setPeerVersionHeaders(req.Header)
	resp, err := p.client.Do(req)
	if err != nil {
		p.count(func(s *StoreStats) { s.Errors++; s.Misses++ })
		return Result{}, false, fmt.Errorf("peer %s: get: %w", p.base, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		p.count(func(s *StoreStats) { s.Misses++ })
		return Result{}, false, nil
	case http.StatusPreconditionFailed:
		p.markSkewed()
		p.count(func(s *StoreStats) { s.Misses++ })
		return Result{}, false, nil
	default:
		p.count(func(s *StoreStats) { s.Errors++; s.Misses++ })
		return Result{}, false, fmt.Errorf("peer %s: get: HTTP %d", p.base, resp.StatusCode)
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, peerMaxFrameBytes+1))
	if err != nil {
		p.count(func(s *StoreStats) { s.Errors++; s.Misses++ })
		return Result{}, false, fmt.Errorf("peer %s: get: reading frame: %w", p.base, err)
	}
	res, err := DecodeResult(frame)
	if err != nil {
		// The connection worked; the bytes are damaged. Same policy as a
		// corrupt disk entry: a clean miss, recomputed locally, and the
		// damage never propagates because the CRC caught it.
		p.count(func(s *StoreStats) { s.Corrupt++; s.Misses++ })
		return Result{}, false, nil
	}
	p.count(func(s *StoreStats) { s.Hits++ })
	return res, true, nil
}

// PutErr implements FallibleStore: replicate the result to the peer. A
// version-skewed peer drops the write without error (its cache simply won't
// hold our entries); an unreachable one reports the failure for the retry
// wrapper to handle.
func (p *PeerStore) PutErr(key string, res Result) error {
	compat, err := p.handshake()
	if err != nil {
		p.count(func(s *StoreStats) { s.Errors++ })
		return err
	}
	if !compat {
		return nil
	}
	req, err := http.NewRequest(http.MethodPut, p.base+"/peer/result/"+key, bytes.NewReader(EncodeResult(res)))
	if err != nil {
		return err
	}
	setPeerVersionHeaders(req.Header)
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		p.count(func(s *StoreStats) { s.Errors++ })
		return fmt.Errorf("peer %s: put: %w", p.base, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		p.count(func(s *StoreStats) { s.Puts++ })
		return nil
	case http.StatusPreconditionFailed:
		p.markSkewed()
		return nil
	case http.StatusUnprocessableEntity:
		// The peer's CRC check rejected our frame: it was damaged in
		// transit. Count it; the retry wrapper re-sends a fresh encoding.
		p.count(func(s *StoreStats) { s.Corrupt++; s.Errors++ })
		return fmt.Errorf("peer %s: put: frame rejected as corrupt", p.base)
	default:
		p.count(func(s *StoreStats) { s.Errors++ })
		return fmt.Errorf("peer %s: put: HTTP %d", p.base, resp.StatusCode)
	}
}

// Get implements Store, absorbing transport errors as misses per the Store
// contract. Compose with NewRetryStore to get retries and quarantine
// instead of a raw miss per failure.
func (p *PeerStore) Get(key string) (Result, bool) {
	res, ok, _ := p.GetErr(key)
	return res, ok
}

// Put implements Store, absorbing transport errors.
func (p *PeerStore) Put(key string, res Result) { _ = p.PutErr(key, res) }

// Compatible reports the last handshake outcome: false either before any
// successful handshake or after one that found version skew.
func (p *PeerStore) Compatible() bool {
	p.hsMu.Lock()
	defer p.hsMu.Unlock()
	return p.hsKnown && p.hsCompat
}

// Stats implements Store. Entries/Bytes stay zero: the tier's contents
// live on the peer, which reports them in its own /stats.
func (p *PeerStore) Stats() StoreStats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.stats
}

// Close implements Store, releasing idle connections to the peer.
func (p *PeerStore) Close() error {
	p.client.CloseIdleConnections()
	return nil
}
