package farm

import (
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// traceTestJob returns a small dry-run job (counters only, fast) with the
// Trace flag as given.
func traceTestJob(trace bool) Job {
	d := tensor.ConvDims{N: 1, C: 4, H: 10, W: 10, K: 8, R: 3, S: 3}
	return Job{
		HW: config.Default(config.MAERIDenseWorkload), Kind: Conv2D, DryRun: true,
		Dims:        d,
		ConvMapping: mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 2, TG: 1, TN: 1, TX: 1, TY: 1},
		Trace:       trace,
	}
}

// TestTraceFlagExcludedFromKey pins the contract that tracing is
// observation only: traced and untraced submissions of the same job share
// one cache entry.
func TestTraceFlagExcludedFromKey(t *testing.T) {
	plain, err := traceTestJob(false).Key()
	if err != nil {
		t.Fatal(err)
	}
	traced, err := traceTestJob(true).Key()
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Fatalf("Trace flag leaked into the key: %q vs %q", plain, traced)
	}
}

// TestJobTraceLifecycle runs the same job fresh, warm and deduped and
// checks the trace each path reports: source, key, phase presence, and
// that untraced submissions carry no trace at all.
func TestJobTraceLifecycle(t *testing.T) {
	ring := telemetry.NewTraceRing(16)
	f := New(2, WithTraceRing(ring))
	defer f.Close()

	// Fresh execution: the trace must come from the compute path with a
	// compute phase recorded.
	res, err := f.Do(traceTestJob(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("traced fresh run returned no trace")
	}
	if res.Trace.Source != "compute" {
		t.Errorf("fresh trace source = %q, want compute", res.Trace.Source)
	}
	if res.Trace.Key != res.Key {
		t.Errorf("trace key %q != result key %q", res.Trace.Key, res.Key)
	}
	if res.Trace.ComputeMS <= 0 {
		t.Errorf("fresh trace compute phase = %v ms, want > 0", res.Trace.ComputeMS)
	}
	if res.Trace.TotalMS < res.Trace.ComputeMS {
		t.Errorf("total %v ms < compute %v ms", res.Trace.TotalMS, res.Trace.ComputeMS)
	}

	// Warm memory hit: source memory, with the lookup phase stamped.
	res2, err := f.Do(traceTestJob(true))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Hit {
		t.Fatal("second submission missed the cache")
	}
	if res2.Trace == nil || res2.Trace.Source != "memory" {
		t.Fatalf("warm trace = %+v, want source memory", res2.Trace)
	}
	if res2.Trace.ComputeMS != 0 {
		t.Errorf("memory hit reported compute time %v ms", res2.Trace.ComputeMS)
	}

	// Untraced submission: no trace in the result even though the farm has
	// a ring (the ring records executions; memory hits stay traceless).
	res3, err := f.Do(traceTestJob(false))
	if err != nil {
		t.Fatal(err)
	}
	if res3.Trace != nil {
		t.Errorf("untraced submission carried a trace: %+v", res3.Trace)
	}

	// The ring saw the execution and the traced hit, newest first.
	snap := ring.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ring holds %d traces, want 2 (execution + traced hit): %+v", len(snap), snap)
	}
	if snap[0].Source != "memory" || snap[1].Source != "compute" {
		t.Errorf("ring order = %q,%q, want memory,compute", snap[0].Source, snap[1].Source)
	}
}

// TestTraceDiskHit checks that a cold farm replaying a warm disk directory
// reports disk-sourced traces with a disk-lookup phase.
func TestTraceDiskHit(t *testing.T) {
	dir := t.TempDir()
	open := func() *Farm {
		ds, err := NewDiskStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return New(2, WithDiskStore(ds))
	}
	warm := open()
	if _, err := warm.Do(traceTestJob(false)); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	cold := open()
	defer cold.Close()
	res, err := cold.Do(traceTestJob(true))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Fatal("cold replay was not a hit")
	}
	if res.Trace == nil || res.Trace.Source != "disk" {
		t.Fatalf("cold replay trace = %+v, want source disk", res.Trace)
	}
	if res.Trace.DiskLookupMS <= 0 {
		t.Errorf("disk hit has no disk-lookup phase: %+v", res.Trace)
	}
	if res.Trace.PersistMS <= 0 {
		t.Errorf("disk hit did not record the memory promotion as persist: %+v", res.Trace)
	}
}

// TestTraceNotCached proves traces are per-submission transport state: a
// stored result never carries the trace of the submission that computed it.
func TestTraceNotCached(t *testing.T) {
	f := New(1)
	defer f.Close()
	if _, err := f.Do(traceTestJob(true)); err != nil {
		t.Fatal(err)
	}
	// An untraced warm submission must see a trace-free result even though
	// the populating submission was traced.
	res, err := f.Do(traceTestJob(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("cached result leaked the populating submission's trace: %+v", res.Trace)
	}
}

// TestStatsSchedulerGauges checks the new scheduler fields and Limits.
func TestStatsSchedulerGauges(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	f := New(3, WithMaxEntries(10), WithMaxBytes(1<<20), WithDiskStore(ds))
	defer f.Close()
	if _, err := f.Do(traceTestJob(false)); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.BusyWorkers != 0 || st.Queued != 0 {
		t.Errorf("idle farm reports busy=%d queued=%d", st.BusyWorkers, st.Queued)
	}
	l := f.Limits()
	if l.Workers != 3 || l.MemMaxEntries != 10 || l.MemMaxBytes != 1<<20 {
		t.Errorf("limits = %+v", l)
	}
	if !l.Disk || l.DiskMaxBytes != 1<<20 || l.DiskDir == "" {
		t.Errorf("disk limits = %+v", l)
	}
	if r := st.Memory.HitRatio(); r != 0 {
		t.Errorf("memory hit ratio after a single miss = %v, want 0", r)
	}
	if _, err := f.Do(traceTestJob(false)); err != nil {
		t.Fatal(err)
	}
	// A missing submission probes the memory tier twice (optimistic Get
	// plus the under-lock re-check), so one miss + one hit is 1 hit in 3
	// lookups.
	if r := f.Stats().Memory.HitRatio(); r != 1.0/3 {
		t.Errorf("memory hit ratio after miss+hit = %v, want 1/3", r)
	}
}

// TestPhaseSummaries checks the process-wide rollup accessor exposes every
// phase.
func TestPhaseSummaries(t *testing.T) {
	f := New(1)
	defer f.Close()
	if _, err := f.Do(traceTestJob(false)); err != nil {
		t.Fatal(err)
	}
	sums := PhaseSummaries()
	for _, phase := range []string{"enqueue_wait", "dedup", "mem_lookup", "disk_lookup", "compute", "persist"} {
		if _, ok := sums[phase]; !ok {
			t.Errorf("phase %q missing from summaries", phase)
		}
	}
	if sums["compute"].Count == 0 {
		t.Error("compute phase never observed despite an executed job")
	}
}
