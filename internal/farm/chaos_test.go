package farm_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/telemetry"
)

// dryJob returns a cheap counters-only job with a content key unique to n,
// so queue-behaviour tests control exactly which submissions dedup.
func dryJob(n int) farm.Job {
	return farm.Job{
		HW: config.Default(config.MAERIDenseWorkload), Kind: farm.Dense, DryRun: true,
		M: 1, K: 32, N: 8 + n, FCMapping: mapping.BasicFC(),
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(tb testing.TB, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			tb.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosDiskFaultRates is the acceptance sweep: a disk tier failing 25%,
// 50% or 100% of its operations — with corruption and latency mixed in —
// must cost only retries and recomputation, never a byte of the results.
func TestChaosDiskFaultRates(t *testing.T) {
	cases := []struct {
		name   string
		policy farmtest.FaultPolicy
	}{
		{"quarter", farmtest.FaultPolicy{ErrRate: 0.25, Seed: 1}},
		{"half_with_corruption", farmtest.FaultPolicy{ErrRate: 0.5, CorruptRate: 0.25, Seed: 2}},
		{"slow_corrupt_reads", farmtest.FaultPolicy{CorruptRate: 0.5, Latency: 200 * time.Microsecond, Seed: 3}},
		{"total_outage", farmtest.FaultPolicy{ErrRate: 1, Seed: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			farmtest.AssertFaultTolerant(t, tc.policy)
		})
	}
}

// TestChaosDiskQuarantineRecovery drives the breaker's full cycle: a total
// disk outage trips it (the farm goes degraded but keeps answering
// correctly), and once the injection stops, a probe closes it and the disk
// tier resumes serving hits.
func TestChaosDiskQuarantineRecovery(t *testing.T) {
	jobs := farmtest.Jobs()
	want := farmtest.RunFresh(t, jobs)

	ds, err := farm.NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := farmtest.NewFaultStore(ds, farmtest.FaultPolicy{ErrRate: 1, Seed: 7})
	rs := farm.NewRetryStore(fs, farmtest.TestRetryPolicy())
	fm := farm.New(4, farm.WithDiskStore(rs))
	defer fm.Close()

	broken, err := fm.DoBatch(jobs)
	if err != nil {
		t.Fatalf("sweep during outage: %v", err)
	}
	farmtest.AssertSameResults(t, "sweep during outage vs fresh", want, broken)
	st := fm.Stats()
	if st.Disk == nil || !st.Disk.Degraded {
		t.Fatalf("total outage did not quarantine the disk tier: %+v", st.Disk)
	}
	if st.Disk.Trips == 0 {
		t.Errorf("breaker never recorded a trip: %+v", st.Disk)
	}

	// Repair the disk. The next admitted probe closes the breaker; keep
	// poking the tier until one is admitted (ProbeEvery spacing).
	fs.SetPolicy(farmtest.FaultPolicy{})
	waitUntil(t, "breaker to close after repair", func() bool {
		rs.Get(strings.Repeat("0", 64)) // any well-formed key probes health
		return !rs.Degraded()
	})

	// Recovered: fresh submissions persist again, and a cold farm sharing
	// the directory replays them from disk — proof the tier really is back.
	extra := dryJob(1001)
	if _, err := fm.Do(extra); err != nil {
		t.Fatalf("post-recovery job: %v", err)
	}
	waitUntil(t, "post-recovery result to land on disk", func() bool {
		return ds.Stats().Puts > 0
	})

	key, err := extra.Key()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Get(key); !ok {
		t.Errorf("post-recovery result never reached the repaired disk tier")
	}
	if st := fm.Stats(); st.Disk.Degraded {
		t.Errorf("farm still reports a degraded disk tier after recovery: %+v", st.Disk)
	}
}

// TestFaultPanicIsolation proves one poisoned job cannot take down the
// farm: a simulator panic is recovered into that job's own *PanicError —
// stack attached, counter bumped, trace annotated — while every other job
// of the sweep completes byte-identically and the process survives.
func TestFaultPanicIsolation(t *testing.T) {
	ring := telemetry.NewTraceRing(64)
	fm := farm.New(2, farm.WithTraceRing(ring))
	defer fm.Close()

	bad := dryJob(2001).WithFaultHook(func() { panic("injected chaos panic") })
	_, err := fm.Do(bad)
	if err == nil {
		t.Fatal("panicking job returned no error")
	}
	var pe *farm.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking job failed with %T, want *farm.PanicError: %v", err, err)
	}
	if pe.Value != "injected chaos panic" {
		t.Errorf("panic value = %v, want the injected one", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "chaos_test") {
		t.Errorf("panic stack does not reach the injection site:\n%s", pe.Stack)
	}

	// The farm (and its workers) survived: a healthy sweep still runs.
	jobs := farmtest.Jobs()
	want := farmtest.RunFresh(t, jobs)
	got, err := fm.DoBatch(jobs)
	if err != nil {
		t.Fatalf("healthy sweep after panic: %v", err)
	}
	farmtest.AssertSameResults(t, "sweep after panic vs fresh", want, got)

	st := fm.Stats()
	if st.Panics != 1 {
		t.Errorf("Stats.Panics = %d, want 1", st.Panics)
	}
	if st.Failed != 1 {
		t.Errorf("Stats.Failed = %d, want 1 (only the poisoned job)", st.Failed)
	}

	var panicTrace *telemetry.Trace
	for _, tr := range ring.Snapshot() {
		if tr.Source == "panic" {
			panicTrace = tr
			break
		}
	}
	if panicTrace == nil {
		t.Fatal("no trace with source \"panic\" recorded")
	}
	if !strings.Contains(panicTrace.Error, "injected chaos panic") {
		t.Errorf("panic trace error %q does not carry the panic message", panicTrace.Error)
	}
}

// TestFaultCancellationFreesQueuedJobs proves a disconnected client's jobs
// stop consuming the farm: with the only worker pinned, cancelling the
// waiters of queued jobs removes them from the queue before any worker
// picks them up, and the pinned job's eventual completion is unaffected.
func TestFaultCancellationFreesQueuedJobs(t *testing.T) {
	fm := farm.New(1)
	defer fm.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := dryJob(3000).WithFaultHook(func() { close(started); <-release })
	blockerFut := fm.Submit(blocker)
	<-started // the single worker is now pinned

	ctx, cancel := context.WithCancel(context.Background())
	const queued = 8
	futures := make([]*farm.Future, queued)
	for i := 0; i < queued; i++ {
		futures[i] = fm.SubmitCtx(ctx, dryJob(3001+i))
	}
	waitUntil(t, "jobs to queue behind the pinned worker", func() bool {
		return fm.Stats().Queued == queued
	})

	cancel()
	for i, fut := range futures {
		if _, err := fut.WaitCtx(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("queued job %d: err = %v, want context.Canceled", i, err)
		}
	}
	waitUntil(t, "cancelled jobs to leave the queue", func() bool {
		return fm.Stats().Queued == 0
	})
	st := fm.Stats()
	if st.Cancelled != queued {
		t.Errorf("Stats.Cancelled = %d, want %d", st.Cancelled, queued)
	}

	close(release)
	if _, err := blockerFut.Wait(); err != nil {
		t.Errorf("pinned job failed: %v", err)
	}
	// Nothing cancelled ever executed.
	if st := fm.Stats(); st.Completed != 1 {
		t.Errorf("Stats.Completed = %d, want 1 (the pinned job only)", st.Completed)
	}
}

// TestFaultDeadlineExpiresQueuedJob proves Job.Deadline bounds queue time:
// a job stuck behind a pinned worker past its deadline is removed and fails
// with context.DeadlineExceeded without ever executing — and the deadline,
// like every fault-tolerance knob, stays out of the content key.
func TestFaultDeadlineExpiresQueuedJob(t *testing.T) {
	plain := dryJob(4000)
	deadlined := plain
	deadlined.Deadline = 5 * time.Millisecond
	pk, err1 := plain.Key()
	dk, err2 := deadlined.Key()
	if err1 != nil || err2 != nil || pk != dk {
		t.Fatalf("Deadline leaked into the content key: %q (err %v) vs %q (err %v)", pk, err1, dk, err2)
	}

	fm := farm.New(1)
	defer fm.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	fm.Submit(dryJob(4001).WithFaultHook(func() { close(started); <-release }))
	<-started

	fut := fm.Submit(deadlined)
	time.Sleep(10 * time.Millisecond) // let the deadline lapse while queued
	close(release)
	if _, err := fut.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired job: err = %v, want context.DeadlineExceeded", err)
	}
	st := fm.Stats()
	if st.Cancelled != 1 {
		t.Errorf("Stats.Cancelled = %d, want 1", st.Cancelled)
	}
	if st.Completed != 1 {
		t.Errorf("Stats.Completed = %d, want 1 (the pinned job only)", st.Completed)
	}
}

// TestChaosBackpressureQueueBound proves WithMaxQueue fails fast: at the
// bound, Submit rejects with ErrQueueFull without enqueuing, and once the
// queue drains the farm accepts work again.
func TestChaosBackpressureQueueBound(t *testing.T) {
	const bound = 2
	fm := farm.New(1, farm.WithMaxQueue(bound))
	defer fm.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	fm.Submit(dryJob(5000).WithFaultHook(func() { close(started); <-release }))
	<-started

	accepted := make([]*farm.Future, bound)
	for i := 0; i < bound; i++ {
		accepted[i] = fm.Submit(dryJob(5001 + i))
	}
	waitUntil(t, "queue to fill to its bound", func() bool {
		return fm.Stats().Queued == bound
	})

	if _, err := fm.Submit(dryJob(5100)).Wait(); !errors.Is(err, farm.ErrQueueFull) {
		t.Errorf("submit over the bound: err = %v, want ErrQueueFull", err)
	}
	st := fm.Stats()
	if st.Rejected != 1 {
		t.Errorf("Stats.Rejected = %d, want 1", st.Rejected)
	}
	if st.Queued != bound {
		t.Errorf("rejected submission changed the queue: depth %d, want %d", st.Queued, bound)
	}
	if fm.Limits().MaxQueue != bound {
		t.Errorf("Limits.MaxQueue = %d, want %d", fm.Limits().MaxQueue, bound)
	}

	// Drain, then verify the farm accepts and executes again.
	close(release)
	for i, fut := range accepted {
		if _, err := fut.Wait(); err != nil {
			t.Errorf("bounded-queue job %d failed: %v", i, err)
		}
	}
	if _, err := fm.Do(dryJob(5200)); err != nil {
		t.Errorf("submit after drain: %v", err)
	}
}
