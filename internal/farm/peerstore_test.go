package farm_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farm"
)

// newPeerPair stands up a backing farm, mounts its PeerHandler on an
// httptest server, and returns a PeerStore pointed at it. The caller owns
// the cleanup of all three.
func newPeerPair(t *testing.T, opts ...farm.PeerStoreOption) (*farm.Farm, *httptest.Server, *farm.PeerStore) {
	t.Helper()
	backing := farm.New(2)
	srv := httptest.NewServer(farm.PeerHandler(backing))
	ps := farm.NewPeerStore(srv.URL, opts...)
	t.Cleanup(func() {
		ps.Close()
		srv.Close()
		backing.Close()
	})
	return backing, srv, ps
}

// TestPeerStoreRoundTrip exercises the happy path end to end: a result
// computed on the backing node is fetched through the wire byte-identically,
// and a Put replicates an entry the backing node then serves from cache.
func TestPeerStoreRoundTrip(t *testing.T) {
	backing, _, ps := newPeerPair(t)

	job := dryJob(1)
	want, err := backing.Do(job)
	if err != nil {
		t.Fatalf("backing Do: %v", err)
	}
	key, err := job.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}

	got, ok, err := ps.GetErr(key)
	if err != nil || !ok {
		t.Fatalf("GetErr(%s) = ok=%v err=%v, want hit", key[:12], ok, err)
	}
	if got.Stats != want.Stats {
		t.Errorf("remote result stats diverge:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
	if !ps.Compatible() {
		t.Error("handshake did not mark the peer compatible")
	}

	// Replicate a second result upward and confirm the peer holds it.
	job2 := dryJob(2)
	res2, err := farm.Run(job2)
	if err != nil {
		t.Fatalf("local simulate: %v", err)
	}
	key2, _ := job2.Key()
	if err := ps.PutErr(key2, res2); err != nil {
		t.Fatalf("PutErr: %v", err)
	}
	if back, ok := backing.CacheGet(key2); !ok || back.Stats != res2.Stats {
		t.Fatalf("replicated entry not served by peer cache: ok=%v", ok)
	}

	st := ps.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Errors != 0 {
		t.Errorf("peer stats = %+v, want 1 hit, 1 put, 0 errors", st)
	}
}

// TestPeerStoreMissAndMalformedKey pins the clean-miss paths: an absent key
// is a miss without error, and the handler refuses keys that are not
// 64-char lowercase hex before touching the cache.
func TestPeerStoreMissAndMalformedKey(t *testing.T) {
	_, srv, ps := newPeerPair(t)

	absent := strings.Repeat("ab", 32)
	if _, ok, err := ps.GetErr(absent); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v, want clean miss", ok, err)
	}

	for _, bad := range []string{"shortkey", strings.Repeat("g", 64), strings.Repeat("AB", 32)} {
		resp, err := http.Get(srv.URL + "/peer/result/" + bad)
		if err != nil {
			t.Fatalf("GET malformed key: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("key %q: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestPeerStoreHandshakeMismatch points a PeerStore at a peer speaking a
// different codec version: every lookup must answer miss — never decode —
// with no error (skew is not a fault), and a Put must be dropped.
func TestPeerStoreHandshakeMismatch(t *testing.T) {
	var hits atomic.Int64
	skewed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/peer/codec" {
			fmt.Fprintf(w, `{"codec_version":%d,"key_version":%q}`, farm.CodecVersion+1, farm.KeyVersion)
			return
		}
		hits.Add(1) // result traffic must never reach a mismatched peer
		w.Write([]byte("garbage the client must not decode"))
	}))
	defer skewed.Close()

	ps := farm.NewPeerStore(skewed.URL, farm.WithPeerRecheck(time.Hour))
	defer ps.Close()

	key := strings.Repeat("ab", 32)
	for i := 0; i < 3; i++ {
		if _, ok, err := ps.GetErr(key); ok || err != nil {
			t.Fatalf("mismatched peer lookup %d: ok=%v err=%v, want errorless miss", i, ok, err)
		}
	}
	if err := ps.PutErr(key, farm.Result{}); err != nil {
		t.Fatalf("mismatched peer put: %v, want dropped without error", err)
	}
	if ps.Compatible() {
		t.Error("Compatible() = true for a version-skewed peer")
	}
	if n := hits.Load(); n != 0 {
		t.Errorf("%d result requests leaked to a mismatched peer", n)
	}
}

// TestPeerStoreMidConversationSkew upgrades the peer underneath an already
// compatible PeerStore: the 412 tripwire on the next exchange must downgrade
// the client back to always-miss instead of erroring.
func TestPeerStoreMidConversationSkew(t *testing.T) {
	var skew atomic.Bool
	backing := farm.New(1)
	defer backing.Close()
	inner := farm.PeerHandler(backing)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if skew.Load() && strings.HasPrefix(r.URL.Path, "/peer/result/") {
			w.WriteHeader(http.StatusPreconditionFailed)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	ps := farm.NewPeerStore(srv.URL, farm.WithPeerRecheck(time.Hour))
	defer ps.Close()

	key := strings.Repeat("cd", 32)
	if _, ok, err := ps.GetErr(key); ok || err != nil {
		t.Fatalf("pre-skew lookup: ok=%v err=%v", ok, err)
	}
	if !ps.Compatible() {
		t.Fatal("handshake should have succeeded pre-skew")
	}

	skew.Store(true)
	if _, ok, err := ps.GetErr(key); ok || err != nil {
		t.Fatalf("lookup during skew: ok=%v err=%v, want errorless miss", ok, err)
	}
	if ps.Compatible() {
		t.Error("412 mid-conversation did not downgrade the peer")
	}
}

// TestPeerStoreCorruptFrameIsCleanMiss serves a damaged frame: the CRC
// catches it, the lookup is a miss (counted as corrupt), and no error feeds
// the breaker — matching the disk tier's corrupt-entry policy.
func TestPeerStoreCorruptFrameIsCleanMiss(t *testing.T) {
	res, err := farm.Run(dryJob(3))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	frame := farm.EncodeResult(res)
	frame[len(frame)-6] ^= 0x40 // flip a payload bit under the CRC

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/peer/codec" {
			fmt.Fprintf(w, `{"codec_version":%d,"key_version":%q}`, farm.CodecVersion, farm.KeyVersion)
			return
		}
		w.Write(frame)
	}))
	defer srv.Close()

	ps := farm.NewPeerStore(srv.URL)
	defer ps.Close()
	if _, ok, err := ps.GetErr(strings.Repeat("ef", 32)); ok || err != nil {
		t.Fatalf("corrupt frame: ok=%v err=%v, want clean miss", ok, err)
	}
	if st := ps.Stats(); st.Corrupt != 1 {
		t.Errorf("stats = %+v, want Corrupt=1", st)
	}
}

// TestPeerStoreBehindRetryStore composes the tentpole stack: an unreachable
// peer behind NewRetryStore trips the breaker into quarantine (instant
// misses, no hammering), and a half-open probe brings it back once the peer
// recovers.
func TestPeerStoreBehindRetryStore(t *testing.T) {
	backing, srv, _ := newPeerPair(t)
	var down atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		resp, err := http.Get(srv.URL + r.URL.Path)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		if resp.StatusCode == http.StatusOK {
			buf := make([]byte, 1<<16)
			for {
				n, err := resp.Body.Read(buf)
				if n > 0 {
					w.Write(buf[:n])
				}
				if err != nil {
					break
				}
			}
		}
	}))
	defer proxy.Close()

	policy := farm.RetryPolicy{
		MaxRetries: 1, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond,
		TripAfter: 2, ProbeEvery: 10 * time.Millisecond,
	}
	rs := farm.NewRetryStore(farm.NewPeerStore(proxy.URL), policy)
	defer rs.Close()

	job := dryJob(4)
	want, err := backing.Do(job)
	if err != nil {
		t.Fatalf("backing Do: %v", err)
	}
	key, _ := job.Key()

	if res, ok := rs.Get(key); !ok || res.Stats != want.Stats {
		t.Fatalf("healthy peer through RetryStore: ok=%v", ok)
	}

	down.Store(true)
	for i := 0; i < 3 && !rs.Degraded(); i++ {
		rs.Get(key)
	}
	if !rs.Degraded() {
		t.Fatal("total peer outage did not quarantine the tier")
	}
	if res, ok := rs.Get(key); ok || res.Stats == want.Stats {
		t.Fatal("quarantined peer tier must answer an instant miss")
	}

	down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if res, ok := rs.Get(key); ok && res.Stats == want.Stats {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered peer never re-admitted by the breaker probe")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rs.Degraded() {
		t.Error("breaker still open after a successful probe")
	}
}

// TestPeerStoreUnreachableSurfacesError pins the FallibleStore contract for
// a peer that is simply gone: GetErr must return an error, not a silent
// miss, so the retry wrapper can see and count the failure.
func TestPeerStoreUnreachableSurfacesError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens here any more

	ps := farm.NewPeerStore(url, farm.WithPeerHTTPClient(&http.Client{Timeout: 200 * time.Millisecond}))
	defer ps.Close()
	if _, ok, err := ps.GetErr(strings.Repeat("01", 32)); ok || err == nil {
		t.Fatalf("dead peer: ok=%v err=%v, want surfaced error", ok, err)
	}
	if err := ps.PutErr(strings.Repeat("01", 32), farm.Result{}); err == nil {
		t.Fatal("dead peer put: want surfaced error")
	}
	if st := ps.Stats(); st.Errors < 2 {
		t.Errorf("stats = %+v, want at least 2 errors", st)
	}
}

// TestPeerHandlerRejectsSkewedWriter covers the server side of the
// tripwire: a writer advertising a different codec version gets 412 and the
// frame is never decoded or stored.
func TestPeerHandlerRejectsSkewedWriter(t *testing.T) {
	backing, srv, _ := newPeerPair(t)
	key := strings.Repeat("23", 32)

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/peer/result/"+key, strings.NewReader("junk"))
	req.Header.Set("X-Bifrost-Codec", "999")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("skewed PUT: HTTP %d, want 412", resp.StatusCode)
	}
	if _, ok := backing.CacheGet(key); ok {
		t.Fatal("skewed write reached the cache")
	}
}

// errAbort distinguishes transport aborts injected below.
var errAbort = errors.New("injected transport abort")

// TestPeerStoreTransportErrorTaxonomy drives one request through an
// aborting RoundTripper and confirms it surfaces as an error (breaker food)
// rather than a miss.
func TestPeerStoreTransportErrorTaxonomy(t *testing.T) {
	_, srv, _ := newPeerPair(t)
	var armed atomic.Bool
	client := &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if armed.Load() {
			return nil, errAbort
		}
		return http.DefaultTransport.RoundTrip(r)
	})}
	ps := farm.NewPeerStore(srv.URL, farm.WithPeerHTTPClient(client))
	defer ps.Close()

	key := strings.Repeat("45", 32)
	if _, ok, err := ps.GetErr(key); ok || err != nil {
		t.Fatalf("warmup miss: ok=%v err=%v", ok, err)
	}
	armed.Store(true)
	if _, _, err := ps.GetErr(key); !errors.Is(err, errAbort) {
		t.Fatalf("aborted transport: err=%v, want wrapped errAbort", err)
	}
}

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
