package farm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/farm"
)

// TestShutdownGracefulDrain proves the clean path: Shutdown with a generous
// deadline lets every accepted job finish, returns nil, and the farm then
// refuses new work with the ErrFarmClosed sentinel.
func TestShutdownGracefulDrain(t *testing.T) {
	fm := farm.New(2)
	const n = 16
	futures := make([]*farm.Future, n)
	for i := 0; i < n; i++ {
		futures[i] = fm.Submit(dryJob(6000 + i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fm.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	for i, fut := range futures {
		if _, err := fut.Wait(); err != nil {
			t.Errorf("job %d accepted before Shutdown failed: %v", i, err)
		}
	}
	if _, err := fm.Do(dryJob(6100)); !errors.Is(err, farm.ErrFarmClosed) {
		t.Errorf("submit after Shutdown: err = %v, want ErrFarmClosed", err)
	}
}

// TestShutdownDeadlineReleasesWaiters proves a drain that cannot finish in
// time still terminates: queued jobs are abandoned, their Wait callers are
// released with ErrFarmClosed instead of hanging forever, and Shutdown
// reports the unclean drain via ctx's error.
func TestShutdownDeadlineReleasesWaiters(t *testing.T) {
	fm := farm.New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	pinned := fm.Submit(dryJob(6200).WithFaultHook(func() { close(started); <-release }))
	<-started

	const queued = 4
	futures := make([]*farm.Future, queued)
	for i := 0; i < queued; i++ {
		futures[i] = fm.Submit(dryJob(6201 + i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- fm.Shutdown(ctx) }()

	// The deadline fires while the worker is pinned: every queued waiter
	// must come back with ErrFarmClosed, not hang.
	for i, fut := range futures {
		if _, err := fut.Wait(); !errors.Is(err, farm.ErrFarmClosed) {
			t.Errorf("abandoned job %d: err = %v, want ErrFarmClosed", i, err)
		}
	}

	// The execution already on the worker runs to completion once released.
	close(release)
	if _, err := pinned.Wait(); err != nil {
		t.Errorf("pinned job failed: %v", err)
	}
	if err := <-shutdownErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown error = %v, want context.DeadlineExceeded", err)
	}
	st := fm.Stats()
	if st.Cancelled != queued {
		t.Errorf("Stats.Cancelled = %d, want %d", st.Cancelled, queued)
	}
	if st.Completed != 1 {
		t.Errorf("Stats.Completed = %d, want 1 (the pinned job)", st.Completed)
	}
}

// TestShutdownAndCloseIdempotent proves every ordering of Close and
// Shutdown terminates: each is individually idempotent and they compose in
// either order without double-closing the cache tiers or deadlocking.
func TestShutdownAndCloseIdempotent(t *testing.T) {
	ctx := context.Background()

	fm := farm.New(2)
	if _, err := fm.Do(dryJob(6300)); err != nil {
		t.Fatal(err)
	}
	fm.Close()
	fm.Close()
	if err := fm.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown after Close: %v", err)
	}

	fm2 := farm.New(2)
	if err := fm2.Shutdown(ctx); err != nil {
		t.Errorf("first Shutdown: %v", err)
	}
	if err := fm2.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
	fm2.Close()

	if _, err := fm2.Do(dryJob(6301)); !errors.Is(err, farm.ErrFarmClosed) {
		t.Errorf("submit after Shutdown+Close: err = %v, want ErrFarmClosed", err)
	}
}

// TestShutdownSubmitCtxAlreadyCancelled proves a dead context never touches
// the queue: SubmitCtx resolves immediately with the context's error.
func TestShutdownSubmitCtxAlreadyCancelled(t *testing.T) {
	fm := farm.New(1)
	defer fm.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fm.SubmitCtx(ctx, dryJob(6400)).WaitCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled SubmitCtx: err = %v, want context.Canceled", err)
	}
	st := fm.Stats()
	if st.Queued != 0 || st.Pending != 0 {
		t.Errorf("pre-cancelled submission reached the scheduler: %+v", st)
	}
	if st.Cancelled != 1 {
		t.Errorf("Stats.Cancelled = %d, want 1", st.Cancelled)
	}
}
