package farm

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// replicaFixture builds a ReplicatedStore over a scripted local tier and
// scripted remote members a, b, c — plus the ring the test uses to predict
// ownership independently of the store's internals.
func replicaFixture(t *testing.T, replicas int) (*ReplicatedStore, *scriptedStore, map[string]*scriptedStore, *Ring) {
	t.Helper()
	local := newScriptedStore()
	peers := map[string]*scriptedStore{
		"a": newScriptedStore(),
		"b": newScriptedStore(),
		"c": newScriptedStore(),
	}
	members := []ReplicaMember{
		{Name: "a", Store: peers["a"]},
		{Name: "b", Store: peers["b"]},
		{Name: "c", Store: peers["c"]},
	}
	rs := NewReplicatedStore(local, "self", replicas, members,
		WithReplicaWatchInterval(time.Hour))
	t.Cleanup(func() { rs.Close() })
	ring := NewRing(0)
	for _, n := range []string{"self", "a", "b", "c"} {
		ring.Add(n)
	}
	return rs, local, peers, ring
}

// TestReplicatedRingPutFansOutToOwners pins the write path: every Put lands
// in the local tier plus exactly the key's first R distinct ring owners —
// no more (no N-squared cascade), no fewer (durability).
func TestReplicatedRingPutFansOutToOwners(t *testing.T) {
	rs, local, peers, ring := replicaFixture(t, 2)

	wantRemote := 0
	for i := 0; i < 40; i++ {
		key := storeKey(i)
		rs.Put(key, fakeResult(i, 4))
		owners := map[string]bool{}
		for _, n := range ring.Owners(key, 2) {
			owners[n] = true
		}
		if _, ok := local.Get(key); !ok {
			t.Fatalf("key %d missing from the local tier", i)
		}
		for name, p := range peers {
			_, has := p.Get(key)
			if owners[name] && !has {
				t.Errorf("key %d missing from owner %s", i, name)
			}
			if !owners[name] && has {
				t.Errorf("key %d leaked to non-owner %s", i, name)
			}
			if owners[name] {
				wantRemote++
			}
		}
	}
	st := rs.ReplicaStats()
	if st.Writes != int64(wantRemote) || st.Failures != 0 {
		t.Fatalf("replica counters: writes %d failures %d, want %d writes, 0 failures",
			st.Writes, st.Failures, wantRemote)
	}
	if st.Members != 3 || st.Healthy != 3 || st.Degraded {
		t.Fatalf("replica health: %+v, want 3/3 healthy, not degraded", st)
	}
}

// TestReplicatedRingReadRepair pins the quorum-free read path: a hit served
// by a later-ordered owner heals the local tier and every earlier owner
// that cleanly missed, asynchronously.
func TestReplicatedRingReadRepair(t *testing.T) {
	rs, local, peers, ring := replicaFixture(t, 2)

	// Find a key owned by two remote members — seed only the second owner,
	// so the read must fail over past a clean miss before it hits.
	var key, first, second string
	for i := 0; i < 4096; i++ {
		owners := ring.Owners(storeKey(i), 2)
		if owners[0] != "self" && owners[1] != "self" {
			key, first, second = storeKey(i), owners[0], owners[1]
			break
		}
	}
	if key == "" {
		t.Fatal("no key with two remote owners in 4096 candidates")
	}
	want := fakeResult(7, 4)
	peers[second].Put(key, want)

	res, ok := rs.Get(key)
	if !ok || res.Stats != want.Stats {
		t.Fatalf("read did not fail over to owner %s: ok=%v", second, ok)
	}
	rs.Flush()

	if _, ok := local.Get(key); !ok {
		t.Error("read-repair did not heal the local tier")
	}
	if _, ok := peers[first].Get(key); !ok {
		t.Errorf("read-repair did not heal earlier owner %s", first)
	}
	if st := rs.ReplicaStats(); st.Repairs < 2 {
		t.Errorf("repairs counter %d, want >= 2", st.Repairs)
	}

	// A total miss stays a miss: the farm recomputes, Get must not invent.
	if _, ok := rs.Get(storeKey(9999)); ok {
		t.Error("Get invented a result for a key no replica holds")
	}
}

// TestReplicatedRingDegraded pins the readiness signal: replication is
// degraded exactly while fewer than R of the key space's owners (self plus
// healthy members) are reachable.
func TestReplicatedRingDegraded(t *testing.T) {
	rs, _, _, _ := replicaFixture(t, 2)

	if rs.ReplicationDegraded() {
		t.Fatal("degraded with every member healthy")
	}
	rs.SetMemberActive("a", false)
	rs.SetMemberActive("b", false)
	if rs.ReplicationDegraded() {
		t.Fatal("degraded with one member left: self + c still cover R=2")
	}
	rs.SetMemberActive("c", false)
	if !rs.ReplicationDegraded() {
		t.Fatal("not degraded with every remote member down and R=2")
	}
	if st := rs.ReplicaStats(); st.Healthy != 0 || !st.Degraded {
		t.Fatalf("replica stats %+v, want 0 healthy, degraded", st)
	}
	rs.SetMemberActive("b", true)
	if rs.ReplicationDegraded() {
		t.Fatal("still degraded after a member recovered")
	}
}

// TestReplicatedRingRebalanceOnChurn pins anti-entropy: when a member
// rejoins the ring, every locally-held key whose ownership set gained the
// member is streamed to it — a replaced disk repopulates from its peers
// without a recompute.
func TestReplicatedRingRebalanceOnChurn(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := newScriptedStore(), newScriptedStore()
	rs := NewReplicatedStore(ds, "self", 2,
		[]ReplicaMember{{Name: "a", Store: a}, {Name: "b", Store: b}},
		WithReplicaWatchInterval(time.Hour), WithRebalanceRate(1<<20))
	defer rs.Close()

	// b is down while the sweep runs: every result lands on self and a only.
	rs.SetMemberActive("b", false)
	const n = 48
	for i := 0; i < n; i++ {
		rs.Put(storeKey(i), fakeResult(i, 4))
	}
	if _, ok := b.Get(storeKey(0)); ok {
		t.Fatal("inactive member received a replica write")
	}

	// b rejoins: the churn transition must stream it the keys it now owns.
	rs.SetMemberActive("b", true)
	full := NewRing(0)
	for _, name := range []string{"self", "a", "b"} {
		full.Add(name)
	}
	var expect []string
	for i := 0; i < n; i++ {
		for _, o := range full.Owners(storeKey(i), 2) {
			if o == "b" {
				expect = append(expect, storeKey(i))
			}
		}
	}
	if len(expect) == 0 {
		t.Fatal("degenerate fixture: b owns no keys")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		missing := 0
		for _, key := range expect {
			if _, ok := b.Get(key); !ok {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebalance stalled: %d of %d owed keys never reached b", missing, len(expect))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := rs.ReplicaStats(); st.Rebalanced < int64(len(expect)) {
		t.Errorf("rebalanced counter %d, want >= %d", st.Rebalanced, len(expect))
	}
}

// TestChaosScrubRepairsCorruptEntry pins the scrubber: an injected on-disk
// corruption is found by the CRC re-verification, the damaged frame is
// deleted, and the slot is refilled byte-identically from a replica.
func TestChaosScrubRepairsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	peer := newScriptedStore()
	rs := NewReplicatedStore(ds, "self", 2,
		[]ReplicaMember{{Name: "peer", Store: peer}},
		WithReplicaWatchInterval(time.Hour))
	defer rs.Close()

	key := storeKey(1)
	want := fakeResult(7, 8)
	rs.Put(key, want) // lands locally and on the replica (R=2 over 2 nodes)
	if _, ok := peer.Get(key); !ok {
		t.Fatal("replica never received the frame")
	}

	// Flip one byte of the stored frame: the next CRC check must fail.
	path := filepath.Join(dir, DiskFormatVersion, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	scr := NewScrubber(rs, 0, rs.GetRemote)
	defer scr.Stop()
	if n := scr.RunPass(); n != 1 {
		t.Fatalf("scrub pass scanned %d entries, want 1", n)
	}
	st := scr.Stats()
	if st.Scanned != 1 || st.Corrupt != 1 || st.Repaired != 1 {
		t.Fatalf("scrub stats %+v, want 1 scanned, 1 corrupt, 1 repaired", st)
	}

	got, ok := ds.Peek(key)
	if !ok {
		t.Fatal("repaired entry missing from disk")
	}
	if got.Stats != want.Stats {
		t.Fatalf("repaired stats %+v, want %+v", got.Stats, want.Stats)
	}
	if len(got.Out.Data()) != len(want.Out.Data()) {
		t.Fatalf("repaired tensor has %d elements, want %d", len(got.Out.Data()), len(want.Out.Data()))
	}
	for i := range want.Out.Data() {
		if got.Out.Data()[i] != want.Out.Data()[i] {
			t.Fatalf("repaired tensor diverges at element %d", i)
		}
	}

	// A clean second pass: nothing left to repair.
	if scr.RunPass(); scr.Stats().Corrupt != 1 {
		t.Fatalf("clean pass found new corruption: %+v", scr.Stats())
	}
}
