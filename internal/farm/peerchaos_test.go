package farm_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
)

// TestChaosPeerNetworkFaultRates is the distributed acceptance sweep: a
// peer tier whose network fails 25%, 50% or 100% of its round trips — with
// in-flight corruption and latency spikes mixed in — must cost only
// retries, quarantine and local recomputation, never a byte of the results.
func TestChaosPeerNetworkFaultRates(t *testing.T) {
	cases := []struct {
		name   string
		policy farmtest.FaultPolicy
	}{
		{"quarter", farmtest.FaultPolicy{ErrRate: 0.25, Seed: 11}},
		{"half_with_corruption", farmtest.FaultPolicy{ErrRate: 0.5, CorruptRate: 0.25, Seed: 12}},
		{"corrupt_frames_on_the_wire", farmtest.FaultPolicy{CorruptRate: 0.5, Seed: 13}},
		{"latency_spikes", farmtest.FaultPolicy{CorruptRate: 0.25, Latency: 200 * time.Microsecond, Seed: 14}},
		{"total_outage", farmtest.FaultPolicy{ErrRate: 1, Seed: 15}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			farmtest.AssertPeerFaultTolerant(t, tc.policy)
		})
	}
}

// TestRingChurnMidSweepByteIdentical runs the reference sweep while the
// ring loses and regains a member between (and during) passes, re-deriving
// each job's owner per pass. Whatever the churn does to placement, the
// results must stay byte-identical to single-node execution — ownership
// moves work around, never changes what the work computes.
func TestRingChurnMidSweepByteIdentical(t *testing.T) {
	jobs := farmtest.Jobs()
	want := farmtest.RunFresh(t, jobs)

	// Three "nodes", each its own farm: the ring decides which farm owns
	// each job, exactly as a coordinator would.
	nodes := map[string]*farm.Farm{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("node-%d", i)
		nodes[name] = farm.New(2)
		defer nodes[name].Close()
	}
	ring := farm.NewRing(0)
	for name := range nodes {
		ring.Add(name)
	}

	runSweep := func(pass string, churn func(i int)) {
		t.Helper()
		for i, j := range jobs {
			if churn != nil {
				churn(i)
			}
			key, err := j.Key()
			if err != nil {
				t.Fatalf("%s: job %d key: %v", pass, i, err)
			}
			owner := ring.Owner(key)
			res, err := nodes[owner].Do(j)
			if err != nil {
				t.Fatalf("%s: job %d on %s: %v", pass, i, owner, err)
			}
			if err := farmtest.DiffResults(want[i], res); err != nil {
				t.Errorf("%s: job %d on %s diverged: %v", pass, i, owner, err)
			}
		}
	}

	runSweep("full ring", nil)
	ring.Remove("node-1")
	runSweep("after losing node-1", nil)
	// Churn mid-sweep: node-1 rejoins halfway through the pass, so early
	// jobs place on the 2-member ring and late jobs on the 3-member one.
	runSweep("node-1 rejoining mid-sweep", func(i int) {
		if i == len(jobs)/2 {
			ring.Add("node-1")
		}
	})
}
