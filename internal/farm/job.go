// Package farm is the concurrent simulation farm: a worker-pool job
// scheduler that executes layer simulations across GOMAXPROCS workers,
// fronted by a content-addressed result cache so identical simulations are
// never run twice. Every layer Bifrost offloads spins up a fresh STONNE
// instance (§V step 3 of the paper) and the AutoTVM-style tuners re-simulate
// thousands of near-identical (architecture, layer, mapping) points — the
// farm deduplicates and parallelises both, and backs the bifrost-serve
// batch service.
package farm

import (
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/api"
	"repro/internal/stonne/config"
	"repro/internal/stonne/maeri"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Kind selects the simulated layer operator of a Job.
type Kind string

// Job kinds.
const (
	Conv2D Kind = "conv2d"
	Dense  Kind = "dense"
)

// Job is one layer simulation: a hardware configuration plus the layer
// geometry, dataflow mapping and operand tensors. Jobs are values — they
// carry everything needed to run the simulation, so identical jobs are
// interchangeable and their results cacheable under a content-addressed Key.
type Job struct {
	// HW is the accelerator configuration (normalised before execution and
	// hashing, so equivalent configurations share cache entries).
	HW config.HWConfig

	// Kind selects the operator: Conv2D or Dense.
	Kind Kind

	// Layout is the conv activation layout (tensor.NHWC or tensor.NCHW);
	// anything other than NHWC follows the NCHW path, mirroring the engine.
	Layout tensor.Layout

	// Dims is the convolution geometry (Kind == Conv2D).
	Dims tensor.ConvDims

	// ConvMapping is the MAERI conv tile configuration (Kind == Conv2D).
	ConvMapping mapping.ConvMapping

	// FCMapping is the MAERI dense tile configuration (Kind == Dense).
	FCMapping mapping.FCMapping

	// M, K, N give the dense geometry (batches, input neurons, output
	// neurons). Required for dry-run dense jobs; otherwise derived from the
	// operand tensors.
	M, K, N int

	// Input and Weights are the operand tensors. The farm treats them as
	// immutable; callers apply pruning before building the job (the key
	// then covers the pruned content together with HW.SparsityRatio).
	// Both may be nil for dry-run jobs.
	Input, Weights *tensor.Tensor

	// Seed identifies operands generated from a PRNG seed by the caller
	// (e.g. the bifrost-serve service). It participates in the key, so two
	// jobs with equal tensors but different declared seeds never collide.
	Seed int64

	// DryRun executes a counters-only MAERI simulation (exact cycles, no
	// arithmetic) — the measurement mode of the AutoTVM cycles target. Dry
	// runs take the analytical fast path: closed-form per-tile-size-class
	// cost, bit-identical to the step-loop reference.
	DryRun bool

	// ExecWorkers is the worker count for the exact arithmetic of
	// GEMM-lowered convolutions (SIGMA / TPU): 0 or 1 keeps the job-level
	// serial kernel, > 1 parallelises column blocks, < 0 selects
	// GOMAXPROCS. Outputs and counters are bitwise identical for every
	// value (tensor.ConvGEMMImplicit never reorders per-element
	// accumulation), so ExecWorkers deliberately does NOT participate in
	// Key(): serial and parallel submissions share one cache entry, on
	// every tier.
	ExecWorkers int

	// Reference forces the step-loop / cycle-ticked reference engines (and,
	// for GEMM-lowered convolutions, the materialised im2col lowering)
	// instead of the default fused fast path. Results are bitwise identical
	// either way — the engine equivalence suites and the farmtest
	// differential harness enforce it — so Reference, like ExecWorkers,
	// deliberately does NOT participate in Key(): a warm cache populated by
	// fused runs serves reference submissions and vice versa.
	//
	// The bitwise guarantee assumes finite operand values. The fused
	// kernels compute products the reference's skip-zero loops never
	// materialise; for finite data those are ±0 no-ops, but a 0 paired
	// with an Inf/NaN operand would make them NaN. Operands containing
	// non-finite values are outside the farm's contract.
	Reference bool

	// Trace requests a per-submission lifecycle trace in the Result: where
	// the job's wall-clock time went (enqueue wait, single-flight dedup,
	// memory/disk lookup, compute, persist) and which tier answered it.
	// Tracing observes execution, never results — byte-identical outputs
	// and counters either way, enforced by the farmtest differential
	// harness — so Trace, like ExecWorkers and Reference, deliberately
	// does NOT participate in Key(): traced and untraced submissions share
	// cache entries on every tier.
	Trace bool

	// Deadline bounds how long the job may wait in the farm's queue: a job
	// still queued when its deadline passes is removed before any worker
	// picks it up and fails with context.DeadlineExceeded. Zero means no
	// deadline. A deadline can only prevent a result from being computed,
	// never change one, so Deadline — like ExecWorkers, Reference and Trace
	// — deliberately does NOT participate in Key(): a deadlined submission
	// that completes shares its cache entry with unbounded ones.
	Deadline time.Duration

	// pack is the shared content-keyed cache of derived operand forms the
	// fused engines may reuse (packed weight panels, kernel matrices,
	// layout transposes). The farm threads its own cache through here on
	// execution; WithPackCache sets it for inline Run calls. Like
	// ExecWorkers and Reference it cannot change results — only where
	// derived bytes come from — so it does NOT participate in Key().
	pack *tensor.PackCache

	// fault, when set, is invoked at the start of the simulator execution —
	// the fault-injection seam the farmtest chaos harness uses to provoke
	// panics and stalls inside workers. It observes execution only: a
	// healthy job computes the same bytes with or without a hook, and like
	// pack it does NOT participate in Key().
	fault func()
}

// WithPackCache returns a copy of the job that will reuse derived operand
// forms from pc when executed inline with Run. Jobs submitted to a farm
// ignore this and use the farm's shared cache instead.
func (j Job) WithPackCache(pc *tensor.PackCache) Job {
	j.pack = pc
	return j
}

// WithFaultHook returns a copy of the job that calls fn when its simulator
// execution begins. It exists for fault-injection tests: a hook that panics
// exercises the farm's panic isolation, one that blocks holds a worker so
// queue behaviour (backpressure, cancellation, drain) can be driven
// deterministically. Production paths never set it.
func (j Job) WithFaultHook(fn func()) Job {
	j.fault = fn
	return j
}

// Result is what one executed job reports.
type Result struct {
	// Out is the layer output. Nil for dry-run jobs. Each caller receives
	// its own copy; mutating it does not poison the cache.
	Out *tensor.Tensor

	// Stats are the simulation counters.
	Stats stats.Stats

	// Hit reports whether the result was served from the content-addressed
	// cache instead of a fresh simulation.
	Hit bool

	// Key is the job's content-addressed cache key, filled in by the farm
	// (inline Run leaves it empty — no key is computed on that path).
	Key string

	// Trace is the job's lifecycle trace, filled in by the farm when the
	// job asked for one (Job.Trace) or the farm records recent traces
	// (WithTraceRing). Like Hit and Key it is per-submission transport
	// state: cache tiers store results without it and it is never
	// persisted to disk.
	Trace *telemetry.Trace
}

// PanicError is a simulator panic recovered into a per-job error: the
// panicking value plus the goroutine stack at the point of the panic. One
// poisoned (architecture, layer, mapping) point fails its own job with a
// *PanicError instead of taking down the process — and with it every other
// job of a sweep or every other client of a server.
type PanicError struct {
	// Value is the value the simulator panicked with.
	Value any
	// Stack is the goroutine stack captured inside the recovering deferral.
	Stack []byte
}

// Error implements error. The stack is included: a recovered panic is a
// simulator bug, and the trace is the only evidence left once the job's
// goroutine has moved on.
func (e *PanicError) Error() string {
	return fmt.Sprintf("farm: simulator panic: %v\n%s", e.Value, e.Stack)
}

// Run executes the job inline on the calling goroutine, with no farm, no
// cache and no concurrency. Farm workers and the serial fallback paths both
// funnel through here, which is what keeps farmed and serial runs
// bit-identical. A simulator panic is recovered into a *PanicError, so a
// poisoned job fails alone whether it runs inline or on a farm worker.
func Run(j Job) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return run(j)
}

func run(j Job) (Result, error) {
	if j.fault != nil {
		j.fault()
	}
	cfg := j.HW.Normalize()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if j.DryRun {
		return runDry(cfg, j)
	}
	switch j.Kind {
	case Conv2D:
		if j.Input == nil || j.Weights == nil {
			return Result{}, fmt.Errorf("farm: conv2d job needs input and weight tensors")
		}
		d := j.Dims
		if err := d.Resolve(); err != nil {
			return Result{}, err
		}
		var (
			out *tensor.Tensor
			st  stats.Stats
			err error
		)
		opt := api.Options{Workers: j.ExecWorkers, Reference: j.Reference, Pack: j.pack}
		if j.Layout == tensor.NHWC {
			out, st, err = api.Conv2DNHWCOpts(cfg, j.Input, j.Weights, d, j.ConvMapping, opt)
		} else {
			out, st, err = api.Conv2DNCHWOpts(cfg, j.Input, j.Weights, d, j.ConvMapping, opt)
		}
		if err != nil {
			return Result{}, err
		}
		return Result{Out: out, Stats: st}, nil
	case Dense:
		if j.Input == nil || j.Weights == nil {
			return Result{}, fmt.Errorf("farm: dense job needs input and weight tensors")
		}
		out, st, err := api.DenseOpts(cfg, j.Input, j.Weights, j.FCMapping, api.Options{Reference: j.Reference, Pack: j.pack})
		if err != nil {
			return Result{}, err
		}
		return Result{Out: out, Stats: st}, nil
	}
	return Result{}, fmt.Errorf("farm: unknown job kind %q", j.Kind)
}

// runDry executes the counters-only measurement path (MAERI only, matching
// the AutoTVM cycle-cost measure functions).
func runDry(cfg config.HWConfig, j Job) (Result, error) {
	eng, err := maeri.NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	eng.DryRun = true
	eng.Reference = j.Reference
	switch j.Kind {
	case Conv2D:
		d := j.Dims
		if err := d.Resolve(); err != nil {
			return Result{}, err
		}
		_, st, err := eng.Conv2D(nil, nil, d, j.ConvMapping)
		if err != nil {
			return Result{}, err
		}
		return Result{Stats: st}, nil
	case Dense:
		if j.M <= 0 || j.K <= 0 || j.N <= 0 {
			return Result{}, fmt.Errorf("farm: dry-run dense job needs M, K, N geometry, got %d×%d→%d", j.M, j.K, j.N)
		}
		in := tensor.New(j.M, j.K)
		w := tensor.New(j.N, j.K)
		_, st, err := eng.Dense(in, w, j.FCMapping)
		if err != nil {
			return Result{}, err
		}
		return Result{Stats: st}, nil
	}
	return Result{}, fmt.Errorf("farm: unknown job kind %q", j.Kind)
}
