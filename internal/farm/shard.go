package farm

import (
	"hash/maphash"
	"runtime"
)

// ShardedStore is an in-memory Store split into N independently locked
// MemoryStore shards selected by key prefix. Every farm submission takes
// the memory tier's lock at least once (the synchronous Get on Submit, the
// Put on completion); under a high-throughput sweep with many workers a
// single LRU lock serialises them. Sharding bounds that contention: keys —
// hex SHA-256, uniformly distributed — spread evenly, and each shard's
// bounds are a slice of the configured totals, so the per-shard
// entry/byte bounds always sum to exactly the configured maxEntries /
// maxBytes.
//
// The trade against a single MemoryStore is eviction granularity: LRU
// order is maintained per shard, so a skewed access pattern can evict an
// entry while another shard still holds colder ones. The total bounds are
// never exceeded.
type ShardedStore struct {
	shards []*MemoryStore
	seed   maphash.Seed
}

// shardPrefixLen is how much of the key selects the shard. Eight bytes of
// a hex SHA-256 key carry 32 uniformly random bits — plenty for any
// practical shard count.
const shardPrefixLen = 8

// NewShardedStore returns a store of n locked shards (n < 1 selects 1).
// maxEntries and maxBytes are totals, distributed across shards so the
// per-shard bounds sum exactly to them; <= 0 disables that bound.
func NewShardedStore(n, maxEntries int, maxBytes int64) *ShardedStore {
	if n < 1 {
		n = 1
	}
	s := &ShardedStore{shards: make([]*MemoryStore, n), seed: maphash.MakeSeed()}
	for i := range s.shards {
		entries := 0
		if maxEntries > 0 {
			entries = maxEntries / n
			if i < maxEntries%n {
				entries++
			}
		}
		var bytes int64
		if maxBytes > 0 {
			bytes = maxBytes / int64(n)
			if int64(i) < maxBytes%int64(n) {
				bytes++
			}
		}
		s.shards[i] = NewMemoryStore(entries, bytes)
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// shard maps a key to its owning shard by hashing the key prefix.
func (s *ShardedStore) shard(key string) *MemoryStore {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	p := key
	if len(p) > shardPrefixLen {
		p = p[:shardPrefixLen]
	}
	return s.shards[maphash.String(s.seed, p)%uint64(len(s.shards))]
}

// Get implements Store.
func (s *ShardedStore) Get(key string) (Result, bool) { return s.shard(key).Get(key) }

// Put implements Store.
func (s *ShardedStore) Put(key string, res Result) { s.shard(key).Put(key, res) }

// Stats implements Store, summing the per-shard counters.
func (s *ShardedStore) Stats() StoreStats {
	var total StoreStats
	for _, sh := range s.shards {
		st := sh.Stats()
		total.Entries += st.Entries
		total.Bytes += st.Bytes
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Puts += st.Puts
		total.Evictions += st.Evictions
		total.Corrupt += st.Corrupt
		total.Errors += st.Errors
	}
	return total
}

// Close implements Store.
func (s *ShardedStore) Close() error {
	for _, sh := range s.shards {
		sh.Close()
	}
	return nil
}

// defaultStoreShards picks the farm's default shard count: enough shards
// to decongest the memory tier on big machines, clamped so each shard of a
// bounded tier still holds a meaningful LRU (tiny bounds collapse to one
// shard, preserving exact global LRU semantics where tests and small
// deployments expect them).
func defaultStoreShards(maxEntries int, maxBytes int64) int {
	shards := runtime.GOMAXPROCS(0)
	if shards > 16 {
		shards = 16
	}
	if shards < 1 {
		shards = 1
	}
	// The byte floor is generous because a shard's byte bound caps the
	// largest result it can hold at maxBytes/shards: each shard must still
	// comfortably fit multi-megabyte conv outputs, or a result the
	// unsharded store cached fine would evict its whole shard and never
	// stay resident.
	const (
		minEntriesPerShard = 64
		minBytesPerShard   = 64 << 20
	)
	if maxEntries > 0 && maxEntries/minEntriesPerShard < shards {
		shards = maxEntries / minEntriesPerShard
	}
	if maxBytes > 0 && maxBytes/minBytesPerShard < int64(shards) {
		shards = int(maxBytes / minBytesPerShard)
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}
