package farm

import (
	"container/list"
	"sync"
)

// Store is one tier of the farm's result cache, keyed by Job.Key(). The farm
// composes two of them — a bounded in-memory tier consulted on Submit and a
// persistent disk tier consulted by the worker before simulating — but a
// Store is also usable standalone. Implementations must be safe for
// concurrent use.
//
// Get and Put carry Results whose Hit and Key fields are ignored: they are
// transport state the farm fills in per submission. Stored output tensors
// are treated as immutable by all parties (the farm hands callers clones).
type Store interface {
	// Get returns the result stored under key, if any. A lookup may refresh
	// the entry's recency (LRU tiers) and must never surface storage errors
	// — a damaged or unreadable entry is simply a miss.
	Get(key string) (Result, bool)

	// Put stores the result under key, evicting older entries as needed to
	// honour the tier's bounds. Put never fails from the caller's view;
	// storage errors are recorded in the tier's stats.
	Put(key string, res Result)

	// Stats returns a snapshot of the tier's counters.
	Stats() StoreStats

	// Close releases the tier's resources. The farm closes the stores it
	// was configured with when the farm itself is closed.
	Close() error
}

// FallibleStore is the optional error-surfacing capability of a Store. The
// plain Get/Put contract absorbs storage failures (a damaged entry is a
// miss, a failed write is a skipped write), which is right for the farm —
// but a reliability wrapper like RetryStore needs to see the failures to
// retry them and to track the tier's health. *DiskStore implements it;
// purely in-memory tiers, which cannot fail, do not.
type FallibleStore interface {
	// GetErr is Get with the storage error surfaced. A missing entry is
	// (Result{}, false, nil) — not an error; a corrupt entry that was
	// dropped for recompute is likewise a clean miss. err != nil means the
	// tier could not currently answer (I/O failure), and ok is false.
	GetErr(key string) (Result, bool, error)

	// PutErr is Put with the storage error surfaced: err != nil means the
	// result is not durably stored.
	PutErr(key string, res Result) error
}

// StoreStats is a snapshot of one cache tier's counters.
type StoreStats struct {
	// Entries and Bytes describe what the tier currently holds.
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count Get outcomes; Puts counts stores.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// Evictions counts entries removed to honour the tier's bounds.
	Evictions int64 `json:"evictions"`
	// Corrupt counts entries dropped because they failed validation
	// (truncated, bit-flipped or version-mismatched disk files).
	Corrupt int64 `json:"corrupt,omitempty"`
	// Errors counts I/O failures, each treated as a miss or a skipped
	// write, never surfaced to callers.
	Errors int64 `json:"errors,omitempty"`
	// DeleteErrors counts failed removals of corrupt or evicted entries —
	// entries that should be gone but may still occupy disk.
	DeleteErrors int64 `json:"delete_errors,omitempty"`
	// Retries counts operations a RetryStore wrapper re-attempted after a
	// transient failure; Trips counts the times its health breaker opened.
	Retries int64 `json:"retries,omitempty"`
	Trips   int64 `json:"trips,omitempty"`
	// Degraded reports a quarantined tier: its health breaker is open, so
	// lookups answer miss and writes are dropped until a probe succeeds.
	// The farm keeps answering — correctly, from memory and fresh
	// simulation — while the tier recovers.
	Degraded bool `json:"degraded,omitempty"`
}

// HitRatio returns the tier's hits over lookups (0 when never consulted) —
// the computed field the telemetry rollups and /stats expose.
func (s StoreStats) HitRatio() float64 {
	if s.Hits+s.Misses <= 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// MemoryStore is the in-memory tier: a map fronted by an LRU list, bounded
// by entry count and/or resident bytes. The zero bounds mean unbounded,
// which is the farm's default and matches the PR-1 cache semantics.
type MemoryStore struct {
	maxEntries int
	maxBytes   int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64
	stats StoreStats
}

// lruEntry is one cached result plus its accounting.
type lruEntry struct {
	key  string
	res  Result
	size int64
}

// NewMemoryStore returns an LRU-bounded in-memory store. maxEntries <= 0
// and maxBytes <= 0 each disable that bound.
func NewMemoryStore(maxEntries int, maxBytes int64) *MemoryStore {
	return &MemoryStore{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get implements Store, refreshing the entry's recency.
func (m *MemoryStore) Get(key string) (Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		m.stats.Misses++
		return Result{}, false
	}
	m.ll.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*lruEntry).res, true
}

// Put implements Store: insert (or refresh) the entry, then evict from the
// cold end until both bounds hold. A result larger than the byte bound on
// its own is evicted immediately — the bound is absolute, not best-effort.
func (m *MemoryStore) Put(key string, res Result) {
	res.Hit, res.Key, res.Trace = false, "", nil // canonical form: transport state is per-submission
	size := resultFootprint(res)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	if el, ok := m.items[key]; ok {
		e := el.Value.(*lruEntry)
		m.bytes += size - e.size
		e.res, e.size = res, size
		m.ll.MoveToFront(el)
	} else {
		m.items[key] = m.ll.PushFront(&lruEntry{key: key, res: res, size: size})
		m.bytes += size
	}
	for m.overBounds() {
		el := m.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*lruEntry)
		m.ll.Remove(el)
		delete(m.items, e.key)
		m.bytes -= e.size
		m.stats.Evictions++
	}
}

func (m *MemoryStore) overBounds() bool {
	if m.maxEntries > 0 && m.ll.Len() > m.maxEntries {
		return true
	}
	return m.maxBytes > 0 && m.bytes > m.maxBytes
}

// Keys returns the cached keys from most to least recently used — the
// eviction order read backwards. It exists for tests and diagnostics.
func (m *MemoryStore) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, m.ll.Len())
	for el := m.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry).key)
	}
	return keys
}

// Stats implements Store.
func (m *MemoryStore) Stats() StoreStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Entries = int64(m.ll.Len())
	st.Bytes = m.bytes
	return st
}

// Close implements Store; the memory tier has nothing to release.
func (m *MemoryStore) Close() error { return nil }
