package farm

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DiskStore is the persistent tier: one file per Job.Key() under a
// versioned directory (<root>/<DiskFormatVersion>/<key>), so results
// survive process restarts and a warm directory can serve a cold process
// without a single simulator execution.
//
// Writes are crash-safe — each entry is written to a temp file in the same
// directory and atomically renamed into place, so a reader (including one
// in another process sharing the directory) only ever sees complete frames.
// Reads are corruption-tolerant: a truncated, bit-flipped or
// version-mismatched file fails the frame checks in decodeResult, is
// deleted, and reports a miss, so the farm silently recomputes and rewrites
// the entry. Callers never see a storage error.
//
// When maxBytes > 0 the store evicts least-recently-used entries until the
// total size drops to ~90% of the bound (draining below the bound
// amortises eviction over many writes instead of paying it on every one).
type DiskStore struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	bytes   int64
	entries int64
	stats   StoreStats
	// index is the in-memory eviction index: per-entry size plus a logical
	// LRU clock over the keys this process has read or written. File
	// mtimes (refreshed on every hit) order entries across processes, but
	// their granularity can be coarser than a burst of writes, so within
	// one process the sequence number is authoritative; entries only known
	// from a previous process carry seq 0 and sort older, by mtime. The
	// index exists only when the store is bounded — an unbounded store
	// never evicts and keeps no per-key state at all.
	seq   int64
	index map[string]*diskEntry
}

// diskEntry is one entry's eviction bookkeeping.
type diskEntry struct {
	size  int64
	seq   int64     // logical recency; 0 = untouched since a previous process
	mtime time.Time // cross-process tiebreak for seq-0 entries
}

// NewDiskStore opens (or creates) a persistent result store rooted at dir.
// Entries live under the DiskFormatVersion subdirectory; a directory written
// by an incompatible version is simply ignored. Leftover temp files from a
// crashed writer are removed, and the current size is recomputed by
// scanning, so shared bookkeeping never drifts across restarts.
func NewDiskStore(dir string, maxBytes int64) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("farm: disk store needs a directory")
	}
	vdir := filepath.Join(dir, DiskFormatVersion)
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: creating disk store: %w", err)
	}
	ds := &DiskStore{dir: vdir, maxBytes: maxBytes}
	if maxBytes > 0 {
		ds.index = make(map[string]*diskEntry)
	}
	ents, err := os.ReadDir(vdir)
	if err != nil {
		return nil, fmt.Errorf("farm: scanning disk store: %w", err)
	}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if strings.HasPrefix(ent.Name(), tmpPrefix) {
			os.Remove(filepath.Join(vdir, ent.Name()))
			continue
		}
		if info, err := ent.Info(); err == nil {
			ds.bytes += info.Size()
			ds.entries++
			if ds.index != nil {
				ds.index[ent.Name()] = &diskEntry{size: info.Size(), mtime: info.ModTime()}
			}
		}
	}
	ds.mu.Lock()
	ds.evictLocked() // a lowered bound takes effect on open, not first Put
	ds.mu.Unlock()
	return ds, nil
}

// Dir returns the versioned directory entries are stored in.
func (ds *DiskStore) Dir() string { return ds.dir }

// MaxBytes returns the store's configured byte bound (0 = unbounded).
func (ds *DiskStore) MaxBytes() int64 { return ds.maxBytes }

const tmpPrefix = ".tmp-"

// validKey reports whether key is a farm cache key (64 lowercase hex
// characters) and therefore a safe file name. Anything else is refused,
// which also rules out path traversal through a crafted key.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (ds *DiskStore) path(key string) string { return filepath.Join(ds.dir, key) }

// Get implements Store. A hit refreshes the entry's modification time so
// LRU eviction sees it as recently used.
func (ds *DiskStore) Get(key string) (Result, bool) {
	res, ok, _ := ds.GetErr(key)
	return res, ok
}

// GetErr implements FallibleStore: like Get, but an I/O failure (anything
// other than a clean miss or a dropped corrupt entry) is returned so a
// reliability wrapper can retry it and track the tier's health.
func (ds *DiskStore) GetErr(key string) (Result, bool, error) {
	if !validKey(key) {
		ds.count(func(s *StoreStats) { s.Misses++ })
		return Result{}, false, nil
	}
	b, err := os.ReadFile(ds.path(key))
	if err != nil {
		ioErr := !os.IsNotExist(err)
		ds.count(func(s *StoreStats) {
			s.Misses++
			if ioErr {
				s.Errors++
			}
		})
		if ioErr {
			return Result{}, false, fmt.Errorf("farm: disk store read: %w", err)
		}
		return Result{}, false, nil
	}
	res, err := decodeResult(b)
	if err != nil {
		// Damaged entry: drop it so the recomputed result gets a clean slot.
		ds.remove(key)
		ds.count(func(s *StoreStats) { s.Misses++; s.Corrupt++ })
		return Result{}, false, nil
	}
	now := time.Now()
	os.Chtimes(ds.path(key), now, now) // best effort: cross-process LRU hint
	ds.mu.Lock()
	if ds.index != nil {
		ds.seq++
		ds.index[key] = &diskEntry{size: int64(len(b)), seq: ds.seq}
	}
	ds.stats.Hits++
	ds.mu.Unlock()
	return res, true, nil
}

// Put implements Store: encode, write to a temp file, fsync-free atomic
// rename, then evict cold entries if the byte bound is exceeded. Failures
// are recorded and swallowed — a result that could not be persisted is
// still served from memory.
func (ds *DiskStore) Put(key string, res Result) { ds.PutErr(key, res) }

// PutErr implements FallibleStore: like Put, but a write failure is
// returned so a reliability wrapper can retry it and track the tier's
// health.
func (ds *DiskStore) PutErr(key string, res Result) error {
	if !validKey(key) {
		return nil
	}
	res.Hit, res.Key = false, ""
	b := encodeResult(res)
	tmp, err := os.CreateTemp(ds.dir, tmpPrefix+"*")
	if err != nil {
		ds.count(func(s *StoreStats) { s.Errors++ })
		return fmt.Errorf("farm: disk store write: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		ds.count(func(s *StoreStats) { s.Errors++ })
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("farm: disk store write: %w", werr)
	}

	ds.mu.Lock()
	prev, statErr := os.Stat(ds.path(key))
	if err := os.Rename(tmp.Name(), ds.path(key)); err != nil {
		ds.mu.Unlock()
		os.Remove(tmp.Name())
		ds.count(func(s *StoreStats) { s.Errors++ })
		return fmt.Errorf("farm: disk store write: %w", err)
	}
	if statErr == nil {
		ds.bytes -= prev.Size()
	} else {
		ds.entries++
	}
	ds.bytes += int64(len(b))
	if ds.index != nil {
		ds.seq++
		ds.index[key] = &diskEntry{size: int64(len(b)), seq: ds.seq}
	}
	ds.stats.Puts++
	ds.evictLocked()
	ds.mu.Unlock()
	return nil
}

// evictLocked removes least-recently-used entries once the store exceeds
// its byte bound, draining down to ~90% of it so the O(index) sort is paid
// once per ~10% of write traffic rather than on every Put at a full steady
// state. It works entirely off the in-memory index — no directory rescan.
// ds.mu must be held.
func (ds *DiskStore) evictLocked() {
	if ds.maxBytes <= 0 || ds.bytes <= ds.maxBytes {
		return
	}
	target := ds.maxBytes - ds.maxBytes/10
	type victim struct {
		name string
		e    *diskEntry
	}
	victims := make([]victim, 0, len(ds.index))
	for name, e := range ds.index {
		victims = append(victims, victim{name, e})
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].e.seq != victims[j].e.seq {
			return victims[i].e.seq < victims[j].e.seq
		}
		return victims[i].e.mtime.Before(victims[j].e.mtime)
	})
	for _, v := range victims {
		if ds.bytes <= target {
			return
		}
		err := os.Remove(filepath.Join(ds.dir, v.name))
		if err == nil || os.IsNotExist(err) {
			// NotExist: another process already removed it; either way the
			// bytes it accounted for are gone.
			ds.bytes -= v.e.size
			ds.entries--
			delete(ds.index, v.name)
			if err == nil {
				ds.stats.Evictions++
			}
		} else {
			// The victim could not be deleted and still occupies disk. Keep
			// its accounting (the bytes really are still there) and record
			// the failure; the entry stays coldest and is retried by the
			// next eviction pass.
			ds.stats.DeleteErrors++
		}
	}
}

// remove deletes one entry and its accounting (used for corrupt files).
func (ds *DiskStore) remove(key string) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if info, err := os.Stat(ds.path(key)); err == nil {
		switch err := os.Remove(ds.path(key)); {
		case err == nil:
			ds.bytes -= info.Size()
			ds.entries--
			delete(ds.index, key)
		case !os.IsNotExist(err):
			// A corrupt entry that refuses to die: it will keep reading as a
			// miss, but the failed cleanup is worth surfacing.
			ds.stats.DeleteErrors++
		}
	}
}

// Entries streams decodable entries of the store to fn, least recently
// used first (by file mtime, the cross-process LRU clock), stopping early
// if fn returns false. newest > 0 restricts the stream to the newest that
// many entries, and newestBytes > 0 to the newest entries whose encoded
// files fit the byte budget (at least one) — both still delivered
// oldest-first among themselves — so a bounded consumer never pays reads it
// would immediately evict; non-positive limits stream everything. It reads
// the files directly — no recency refresh, no hit/miss accounting — so it
// is the right primitive for cache warming: a memory tier populated in
// this order ends with the most recently used entries at its hot end, and
// the store's statistics still describe only real lookup traffic. Corrupt
// files are skipped (and left for Get's delete-and-recompute path to
// reap). Safe to run concurrently with farm traffic.
func (ds *DiskStore) Entries(newest int, newestBytes int64, fn func(key string, res Result) bool) {
	files := ds.listFiles()
	if newest > 0 && len(files) > newest {
		files = files[len(files)-newest:]
	}
	if newestBytes > 0 {
		cut, budget := len(files), newestBytes
		for cut > 0 && budget >= files[cut-1].size {
			budget -= files[cut-1].size
			cut--
		}
		if cut == len(files) && cut > 0 {
			cut-- // always offer at least the newest entry
		}
		files = files[cut:]
	}
	for _, f := range files {
		b, err := os.ReadFile(filepath.Join(ds.dir, f.name))
		if err != nil {
			continue
		}
		res, err := decodeResult(b)
		if err != nil {
			continue
		}
		if !fn(f.name, res) {
			return
		}
	}
}

// diskFile is one stored entry's directory metadata, shared by the
// Entries/Keys iterators.
type diskFile struct {
	name  string
	size  int64
	mtime time.Time
}

// listFiles snapshots the store's entry files sorted oldest-mtime first —
// the shared listing step behind Entries and Keys. Temp files and anything
// that is not a well-formed key name are skipped.
func (ds *DiskStore) listFiles() []diskFile {
	ents, err := os.ReadDir(ds.dir)
	if err != nil {
		return nil
	}
	files := make([]diskFile, 0, len(ents))
	for _, ent := range ents {
		if ent.IsDir() || !validKey(ent.Name()) {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		files = append(files, diskFile{ent.Name(), info.Size(), info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	return files
}

// Keys streams the store's entry keys, oldest mtime first, stopping early
// if fn returns false. It reads only the directory — no file contents, no
// decode, no stats — so iterating a large store to compute ownership
// changes (the rebalancer) or schedule scrub passes costs one readdir.
// Names are a point-in-time snapshot: entries may vanish (eviction,
// corruption reaping) before fn sees them, so consumers must tolerate a
// subsequent miss.
func (ds *DiskStore) Keys(fn func(key string) bool) {
	for _, f := range ds.listFiles() {
		if !fn(f.name) {
			return
		}
	}
}

// Peek reads and decodes one entry without touching recency or hit/miss
// accounting — the read primitive for the rebalancer, which streams
// locally-held entries to new owners and must not promote them in the LRU
// or skew the store's lookup statistics. A corrupt entry reads as a plain
// miss and is left for Get/Scrub to reap.
func (ds *DiskStore) Peek(key string) (Result, bool) {
	if !validKey(key) {
		return Result{}, false
	}
	b, err := os.ReadFile(ds.path(key))
	if err != nil {
		return Result{}, false
	}
	res, err := decodeResult(b)
	if err != nil {
		return Result{}, false
	}
	return res, true
}

// ScrubOutcome is the result of re-verifying one stored entry's frame.
type ScrubOutcome int

const (
	// ScrubOK: the entry read back and its CRC frame verified.
	ScrubOK ScrubOutcome = iota
	// ScrubMissing: no entry under this key (evicted or never stored).
	ScrubMissing
	// ScrubCorrupt: the frame failed verification; the entry was deleted
	// and counted so a replica repair (or recompute) gets a clean slot.
	ScrubCorrupt
)

// Scrub re-verifies one entry's CRC frame in place. Unlike Get it does not
// refresh recency (a background integrity pass must not look like traffic
// to the LRU) and does not count a hit or miss; like Get, a damaged frame
// is deleted and counted as Corrupt so the slot is clean for repair.
func (ds *DiskStore) Scrub(key string) ScrubOutcome {
	if !validKey(key) {
		return ScrubMissing
	}
	b, err := os.ReadFile(ds.path(key))
	if err != nil {
		return ScrubMissing
	}
	if _, err := decodeResult(b); err != nil {
		ds.remove(key)
		ds.count(func(s *StoreStats) { s.Corrupt++ })
		return ScrubCorrupt
	}
	return ScrubOK
}

func (ds *DiskStore) count(f func(*StoreStats)) {
	ds.mu.Lock()
	f(&ds.stats)
	ds.mu.Unlock()
}

// Stats implements Store.
func (ds *DiskStore) Stats() StoreStats {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st := ds.stats
	st.Entries = ds.entries
	st.Bytes = ds.bytes
	return st
}

// Close implements Store. All writes are already durable (atomic renames),
// so there is nothing to flush.
func (ds *DiskStore) Close() error { return nil }
