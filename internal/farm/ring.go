package farm

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring over named peers: every job key maps to an
// owner, and adding or removing one peer remaps only the keys that peer
// owned (roughly 1/N of the space) instead of reshuffling the whole sweep.
// Positions are derived from SHA-256, so the mapping is deterministic
// across processes and platforms — two coordinators over the same member
// set dispatch every key identically, which is what keeps a sharded sweep
// byte-identical to a single-node run.
//
// A Ring is safe for concurrent use: the coordinator reads owners on every
// request while peer churn (join, drain, quarantine-driven removal)
// mutates membership.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted ascending by hash
	members  map[string]struct{}
}

// ringPoint is one virtual node: a position on the ring owned by a member.
type ringPoint struct {
	hash uint64
	name string
}

// DefaultRingReplicas is the virtual-node count per member: enough to keep
// the per-member share of the key space within a few percent of uniform for
// small clusters, cheap enough that churn stays microseconds.
const DefaultRingReplicas = 128

// NewRing returns an empty ring with the given virtual-node count per
// member (replicas < 1 selects DefaultRingReplicas).
func NewRing(replicas int) *Ring {
	if replicas < 1 {
		replicas = DefaultRingReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]struct{})}
}

// ringHash positions a string on the ring. SHA-256 (truncated to 64 bits)
// rather than a seeded runtime hash: positions must agree across processes.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// Add inserts a member (idempotent).
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; ok {
		return
	}
	r.members[name] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(name + "#" + strconv.Itoa(i)), name: name})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its virtual nodes (idempotent).
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; !ok {
		return
	}
	delete(r.members, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current member names, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key: the first virtual node at or after
// the key's position, wrapping around. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members in failover order: the key's
// owner first, then the successive distinct members walking the ring — the
// same order every coordinator derives, so redistribution of a failed
// peer's shard is deterministic too.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if _, dup := seen[p.name]; dup {
			continue
		}
		seen[p.name] = struct{}{}
		out = append(out, p.name)
	}
	return out
}
