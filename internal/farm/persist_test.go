package farm_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/farm"
	"repro/internal/farm/farmtest"
)

// TestDifferentialCacheFreshDiskEquivalence is the harness run on its own
// package: fresh inline runs, a warm in-memory farm and a cold farm
// replaying a warm disk directory must all produce byte-identical results.
func TestDifferentialCacheFreshDiskEquivalence(t *testing.T) {
	farmtest.AssertEquivalent(t, farmtest.Jobs())
}

// TestWarmPreloadsMemoryTier checks cache warming: a cold farm that Warms
// from a populated disk directory must answer every job from the memory
// tier — byte-identical results, zero disk probes, zero simulations.
func TestWarmPreloadsMemoryTier(t *testing.T) {
	jobs := farmtest.Jobs()
	want := farmtest.RunFresh(t, jobs)
	dir := t.TempDir()

	ds, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	populate := farm.New(2, farm.WithDiskStore(ds))
	if _, err := populate.DoBatch(jobs); err != nil {
		t.Fatal(err)
	}
	populate.Close()

	ds2, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := farm.New(2, farm.WithDiskStore(ds2))
	defer cold.Close()
	if n := cold.Warm(); n != len(jobs) {
		t.Fatalf("Warm() preloaded %d entries, want %d", n, len(jobs))
	}
	got, err := cold.DoBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	farmtest.AssertSameResults(t, "warmed farm replay vs fresh", want, got)
	st := cold.Stats()
	if st.Misses != 0 || st.Completed != 0 {
		t.Fatalf("warmed farm simulated: %+v", st)
	}
	if st.DiskHits != 0 {
		t.Fatalf("warmed farm probed disk %d times, want 0: %+v", st.DiskHits, st)
	}
	if st.Memory.Hits != int64(len(jobs)) {
		t.Fatalf("memory hits = %d, want %d: %+v", st.Memory.Hits, len(jobs), st)
	}
	// Warming reads files directly: the disk tier's lookup counters must
	// still describe only real traffic.
	if st.Disk == nil || st.Disk.Hits != 0 || st.Disk.Misses != 0 {
		t.Fatalf("warming disturbed disk lookup stats: %+v", st.Disk)
	}
}

// TestWarmRespectsMemoryBounds checks that warming an entry-bounded memory
// tier reads only the newest entries the tier can hold and keeps the bound.
func TestWarmRespectsMemoryBounds(t *testing.T) {
	jobs := farmtest.Jobs()
	dir := t.TempDir()
	ds, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	populate := farm.New(2, farm.WithDiskStore(ds))
	if _, err := populate.DoBatch(jobs); err != nil {
		t.Fatal(err)
	}
	populate.Close()

	const bound = 3
	ds2, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := farm.New(2, farm.WithDiskStore(ds2), farm.WithMaxEntries(bound))
	defer cold.Close()
	if n := cold.Warm(); n != bound {
		t.Fatalf("Warm() offered %d entries, want only the bound %d", n, bound)
	}
	if entries := cold.Stats().Memory.Entries; entries != bound {
		t.Fatalf("warmed memory tier holds %d entries, want the bound %d", entries, bound)
	}
}

// TestWarmRespectsByteBound checks that warming a byte-bounded memory tier
// reads only roughly the newest entries fitting the budget instead of
// streaming (and immediately evicting most of) the whole disk store.
func TestWarmRespectsByteBound(t *testing.T) {
	jobs := farmtest.Jobs()
	dir := t.TempDir()
	ds, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	populate := farm.New(2, farm.WithDiskStore(ds))
	if _, err := populate.DoBatch(jobs); err != nil {
		t.Fatal(err)
	}
	populate.Close()

	ds2, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A budget of one median entry: only a suffix of the store may be read.
	budget := ds2.Stats().Bytes / int64(len(jobs))
	cold := farm.New(2, farm.WithDiskStore(ds2), farm.WithMaxBytes(budget))
	defer cold.Close()
	if n := cold.Warm(); n <= 0 || n >= len(jobs) {
		t.Fatalf("Warm() offered %d entries under a ~1-entry byte budget, want 0 < n < %d", n, len(jobs))
	}
}

// TestWarmWithoutDiskTier is the degenerate case: nothing to warm from.
func TestWarmWithoutDiskTier(t *testing.T) {
	fm := farm.New(1)
	defer fm.Close()
	if n := fm.Warm(); n != 0 {
		t.Fatalf("Warm() on a memory-only farm returned %d, want 0", n)
	}
}

// TestDiskTierPromotesToMemory checks the two-level composition: after one
// disk hit the entry must be served from the memory tier, not re-read from
// disk.
func TestDiskTierPromotesToMemory(t *testing.T) {
	jobs := farmtest.Jobs()[:2]
	dir := t.TempDir()

	ds, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := farm.New(2, farm.WithDiskStore(ds))
	if _, err := warm.DoBatch(jobs); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	ds2, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := farm.New(2, farm.WithDiskStore(ds2))
	defer cold.Close()
	if _, err := cold.DoBatch(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.DoBatch(jobs); err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.DiskHits != int64(len(jobs)) {
		t.Fatalf("disk hits = %d, want %d (second pass must come from memory): %+v", st.DiskHits, len(jobs), st)
	}
	if st.Memory.Hits != int64(len(jobs)) {
		t.Fatalf("memory hits = %d, want %d: %+v", st.Memory.Hits, len(jobs), st)
	}
	if st.Misses != 0 || st.Completed != 0 {
		t.Fatalf("cold farm simulated: %+v", st)
	}
}

// TestEvictedEntriesRecomputeCorrectly bounds the memory tier below the job
// count with no disk tier: every entry is eventually evicted, recomputed on
// resubmission, and must still match the fresh reference byte-for-byte.
func TestEvictedEntriesRecomputeCorrectly(t *testing.T) {
	jobs := farmtest.Jobs()
	want := farmtest.RunFresh(t, jobs)

	f := farm.New(2, farm.WithMaxEntries(2))
	defer f.Close()
	first, err := f.DoBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	farmtest.AssertSameResults(t, "bounded farm first pass", want, first)
	second, err := f.DoBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	farmtest.AssertSameResults(t, "bounded farm recompute pass", want, second)

	st := f.Stats()
	if st.Memory.Evictions == 0 {
		t.Fatalf("no evictions with max entries 2 and %d jobs: %+v", len(jobs), st)
	}
	if st.CacheEntries > 2 {
		t.Fatalf("memory tier exceeded its bound: %d entries", st.CacheEntries)
	}
	// With the cache bounded to 2 of len(jobs) entries and two sequential
	// full passes, most of the second pass must have been recomputed.
	if st.Completed < int64(len(jobs))+1 {
		t.Fatalf("expected recomputation after eviction, completed = %d: %+v", st.Completed, st)
	}
}

// TestConcurrentSubmitEvictPersist hammers a farm whose memory tier is
// small and whose disk tier is byte-bounded, from many goroutines, under
// -race in CI: submissions, evictions on both tiers and persistence must
// not race, and every result must stay byte-identical to the reference.
func TestConcurrentSubmitEvictPersist(t *testing.T) {
	jobs := farmtest.Jobs()
	want := farmtest.RunFresh(t, jobs)

	ds, err := farm.NewDiskStore(t.TempDir(), 8<<10) // small: forces disk evictions
	if err != nil {
		t.Fatal(err)
	}
	f := farm.New(4, farm.WithMaxEntries(3), farm.WithDiskStore(ds))
	defer f.Close()

	const rounds = 8
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(jobs)
				res, err := f.Do(jobs[i])
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if err := farmtest.DiffResults(want[i], res); err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
				}
			}
		}(g)
	}
	wg.Wait()

	st := f.Stats()
	if st.Memory.Entries > 3 {
		t.Fatalf("memory tier exceeded its bound under concurrency: %+v", st.Memory)
	}
	if st.Disk == nil {
		t.Fatal("no disk tier stats")
	}
	if st.Disk.Bytes > 8<<10 {
		t.Fatalf("disk tier exceeded its byte bound: %+v", *st.Disk)
	}
}

// TestDiskStoreSurvivesProcessBoundary simulates the process boundary at
// the store level: write results through one store, open a second store on
// the same directory (as a new process would) and require byte-identical
// round trips plus correct size accounting from the directory rescan.
func TestDiskStoreSurvivesProcessBoundary(t *testing.T) {
	jobs := farmtest.Jobs()[:3]
	want := farmtest.RunFresh(t, jobs)
	dir := t.TempDir()

	a, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i], err = j.Key()
		if err != nil {
			t.Fatal(err)
		}
		a.Put(keys[i], want[i])
	}
	if st := a.Stats(); st.Entries != int64(len(jobs)) || st.Bytes == 0 {
		t.Fatalf("unexpected store stats after writes: %+v", st)
	}

	b, err := farm.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ast, bst := a.Stats(), b.Stats(); ast.Entries != bst.Entries || ast.Bytes != bst.Bytes {
		t.Fatalf("rescan accounting drifted: %+v vs %+v", ast, bst)
	}
	for i, key := range keys {
		res, ok := b.Get(key)
		if !ok {
			t.Fatalf("entry %d missing after reopen", i)
		}
		if err := farmtest.DiffResults(want[i], res); err != nil {
			t.Fatalf("entry %d not byte-identical after reopen: %v", i, err)
		}
	}

	// The versioned directory isolates formats: a store rooted elsewhere
	// sees nothing.
	other, err := farm.NewDiskStore(filepath.Join(dir, "elsewhere"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := other.Get(keys[0]); ok {
		t.Fatal("unrelated store served another directory's entry")
	}

	// Leftover temp files from a crashed writer are cleaned up on open.
	tmp := filepath.Join(b.Dir(), ".tmp-crashed")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := farm.NewDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("crashed temp file survived reopen")
	}
}
