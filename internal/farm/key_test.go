package farm

import (
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// convJob returns a fixed, fully deterministic conv job for key tests.
func convJob() Job {
	return Job{
		HW:     config.Default(config.MAERIDenseWorkload),
		Kind:   Conv2D,
		Layout: tensor.NCHW,
		Dims:   tensor.ConvDims{N: 1, C: 2, H: 10, W: 10, K: 4, R: 3, S: 3},
		ConvMapping: mapping.ConvMapping{
			TR: 3, TS: 3, TC: 1, TK: 2, TG: 1, TN: 1, TX: 1, TY: 1,
		},
		Input:   tensor.RandomUniform(7, 1, 1, 2, 10, 10),
		Weights: tensor.RandomUniform(8, 1, 4, 2, 3, 3),
		Seed:    7,
	}
}

func denseJob() Job {
	return Job{
		HW:        config.Default(config.MAERIDenseWorkload),
		Kind:      Dense,
		FCMapping: mapping.FCMapping{TS: 4, TK: 2, TN: 1},
		M:         1, K: 16, N: 8,
		DryRun: true,
		Seed:   1,
	}
}

func mustKey(t *testing.T, j Job) string {
	t.Helper()
	k, err := j.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyIdenticalJobsHashEqual(t *testing.T) {
	a, b := convJob(), convJob()
	if ka, kb := mustKey(t, a), mustKey(t, b); ka != kb {
		t.Fatalf("identical jobs hash differently:\n  %s\n  %s", ka, kb)
	}
	// Equal content in distinct tensors still hashes equal.
	c := convJob()
	c.Input = c.Input.Clone()
	c.Weights = c.Weights.Clone()
	if mustKey(t, c) != mustKey(t, a) {
		t.Fatal("cloned operands changed the key")
	}
}

func TestKeyNormalizedConfigsHashEqual(t *testing.T) {
	a := denseJob()
	b := denseJob()
	// Normalize() fixes the TPU's derived bandwidths; for MAERI it is the
	// identity, so exercise resolve-normalisation on conv dims instead:
	// G/stride/dilation defaults must hash like their explicit forms.
	ca, cb := convJob(), convJob()
	cb.Dims.G = 1
	cb.Dims.StrideH, cb.Dims.StrideW = 1, 1
	cb.Dims.DilationH, cb.Dims.DilationW = 1, 1
	if mustKey(t, ca) != mustKey(t, cb) {
		t.Fatal("defaulted conv dims hash differently from explicit ones")
	}
	if mustKey(t, a) != mustKey(t, b) {
		t.Fatal("identical dense jobs hash differently")
	}
}

func TestKeyFieldChangesChangeHash(t *testing.T) {
	base := mustKey(t, convJob())
	mutations := map[string]func(*Job){
		"mapping":  func(j *Job) { j.ConvMapping.TK = 4 },
		"ms_size":  func(j *Job) { j.HW.MSSize = 64 },
		"dn_bw":    func(j *Job) { j.HW.DNBandwidth = 16 },
		"layout":   func(j *Job) { j.Layout = tensor.NHWC },
		"dims":     func(j *Job) { j.Dims.K = 8 },
		"stride":   func(j *Job) { j.Dims.StrideH = 2 },
		"seed":     func(j *Job) { j.Seed = 99 },
		"dry_run":  func(j *Job) { j.DryRun = true },
		"kind":     func(j *Job) { j.Kind = Dense },
		"input":    func(j *Job) { j.Input = tensor.RandomUniform(99, 1, 1, 2, 10, 10) },
		"weights":  func(j *Job) { j.Weights.Data()[0] += 1 },
		"fc_tiles": func(j *Job) { j.FCMapping.TS = 9 },
	}
	for name, mutate := range mutations {
		j := convJob()
		mutate(&j)
		if j.Kind == Dense {
			// kind mutation: dense jobs don't resolve conv dims.
			j.Dims = tensor.ConvDims{}
			j.M, j.K, j.N = 1, 16, 8
			j.DryRun = true
		}
		if k := mustKey(t, j); k == base {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
	// Sparsity lives in the hardware configuration (SIGMA only).
	a := Job{HW: config.Default(config.SIGMASparseGEMM), Kind: Dense,
		Input: tensor.RandomUniform(1, 1, 1, 8), Weights: tensor.RandomUniform(2, 1, 4, 8)}
	b := a
	b.HW.SparsityRatio = 50
	if mustKey(t, a) == mustKey(t, b) {
		t.Error("mutating sparsity_ratio did not change the key")
	}
}

// TestKeyGoldenValues pins the exact hashes so a key is provably stable
// across processes, platforms and releases. If the canonical encoding ever
// changes, bump keyVersion and regenerate these values.
func TestKeyGoldenValues(t *testing.T) {
	golden := []struct {
		name string
		job  Job
		want string
	}{
		{"conv", convJob(), "a253119e62bb85994efc245062540b44ce7127dc875989900c09a29acc4b8db3"},
		{"dense-dry", denseJob(), "2d6ef9e26c66002872bae258a1a46c4bffaa7c3cfeab4a9c0735148cd7af4279"},
	}
	for _, g := range golden {
		if got := mustKey(t, g.job); got != g.want {
			t.Errorf("%s: key = %s, want %s", g.name, got, g.want)
		}
	}
}
