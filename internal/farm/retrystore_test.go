package farm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// scriptedStore is a FallibleStore whose next failures are scripted, so
// retry and breaker behaviour is tested without a real filesystem.
type scriptedStore struct {
	mu      sync.Mutex
	failGet int // fail this many upcoming GetErr calls
	failPut int
	gets    int
	puts    int
	data    map[string]Result
}

var errScripted = errors.New("scripted failure")

func newScriptedStore() *scriptedStore { return &scriptedStore{data: make(map[string]Result)} }

func (s *scriptedStore) GetErr(key string) (Result, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if s.failGet > 0 {
		s.failGet--
		return Result{}, false, errScripted
	}
	res, ok := s.data[key]
	return res, ok, nil
}

func (s *scriptedStore) PutErr(key string, res Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.failPut > 0 {
		s.failPut--
		return errScripted
	}
	s.data[key] = res
	return nil
}

func (s *scriptedStore) Get(key string) (Result, bool) { res, ok, _ := s.GetErr(key); return res, ok }
func (s *scriptedStore) Put(key string, res Result)    { s.PutErr(key, res) }
func (s *scriptedStore) Stats() StoreStats             { return StoreStats{} }
func (s *scriptedStore) Close() error                  { return nil }

func (s *scriptedStore) script(failGet, failPut int) {
	s.mu.Lock()
	s.failGet, s.failPut = failGet, failPut
	s.mu.Unlock()
}

func (s *scriptedStore) counts() (gets, puts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.puts
}

// testClockStore returns a RetryStore over a scripted inner store with a
// manual clock and recorded (not slept) back-off delays.
func testClockStore(policy RetryPolicy) (*RetryStore, *scriptedStore, *time.Time, *[]time.Duration) {
	inner := newScriptedStore()
	rs := NewRetryStore(inner, policy)
	now := time.Unix(1000, 0)
	var slept []time.Duration
	rs.now = func() time.Time { return now }
	rs.sleep = func(d time.Duration) { slept = append(slept, d) }
	return rs, inner, &now, &slept
}

func TestRetryStoreFaultRetriesTransientErrors(t *testing.T) {
	policy := RetryPolicy{MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 3 * time.Millisecond, TripAfter: 3, ProbeEvery: time.Second}
	rs, inner, _, slept := testClockStore(policy)

	inner.Put("k", Result{})
	inner.script(2, 0) // two transient failures, then success
	if _, ok := rs.Get("k"); !ok {
		t.Fatal("Get failed despite retries covering the transient errors")
	}
	if gets, _ := inner.counts(); gets != 3 {
		t.Errorf("inner saw %d gets, want 3 (1 + 2 retries)", gets)
	}
	// Exponential back-off from BaseDelay, capped at MaxDelay.
	if len(*slept) != 2 || (*slept)[0] != time.Millisecond || (*slept)[1] != 2*time.Millisecond {
		t.Errorf("back-off sequence = %v, want [1ms 2ms]", *slept)
	}
	if st := rs.Stats(); st.Retries != 2 || st.Trips != 0 || st.Degraded {
		t.Errorf("stats after recovered transient = %+v, want 2 retries, no trip", st)
	}

	inner.script(0, 1) // one transient put failure
	rs.Put("k2", Result{})
	if _, ok, _ := inner.GetErr("k2"); !ok {
		t.Error("retried Put never landed in the inner store")
	}
}

func TestRetryStoreFaultBreakerTripsQuarantinesAndProbes(t *testing.T) {
	policy := RetryPolicy{MaxRetries: 1, TripAfter: 2, ProbeEvery: time.Second}
	rs, inner, now, _ := testClockStore(policy)
	inner.Put("k", Result{})

	// Two operations exhaust their retries: the breaker trips.
	inner.script(4, 0)
	rs.Get("k")
	rs.Get("k")
	if !rs.Degraded() {
		t.Fatal("breaker did not open after TripAfter exhausted operations")
	}
	if st := rs.Stats(); st.Trips != 1 || !st.Degraded {
		t.Errorf("stats after trip = %+v, want 1 trip, degraded", st)
	}

	// Quarantined: operations answer instantly without touching the inner
	// store — an instant miss for Get, a dropped write for Put.
	gets0, puts0 := inner.counts()
	if _, ok := rs.Get("k"); ok {
		t.Error("quarantined Get returned a hit")
	}
	rs.Put("k3", Result{})
	if gets, puts := inner.counts(); gets != gets0 || puts != puts0 {
		t.Errorf("quarantined ops reached the inner store: %d/%d → %d/%d", gets0, puts0, gets, puts)
	}

	// After ProbeEvery one probe is admitted; a failing probe re-arms.
	*now = now.Add(policy.ProbeEvery)
	inner.script(2, 0)
	if _, ok := rs.Get("k"); ok {
		t.Error("failing probe returned a hit")
	}
	if !rs.Degraded() {
		t.Error("failed probe closed the breaker")
	}
	// The probe slot is claimed: a second operation in the same window
	// stays quarantined even though the inner store would now succeed.
	gets1, _ := inner.counts()
	rs.Get("k")
	if gets, _ := inner.counts(); gets != gets1 {
		t.Error("second operation inside one probe window reached the inner store")
	}

	// Next window: the disk has recovered, the probe succeeds, breaker
	// closes, and normal service resumes — hits and durable writes.
	*now = now.Add(policy.ProbeEvery)
	if _, ok := rs.Get("k"); !ok {
		t.Error("successful probe did not serve the hit")
	}
	if rs.Degraded() {
		t.Error("successful probe left the breaker open")
	}
	rs.Put("k4", Result{})
	if _, ok, _ := inner.GetErr("k4"); !ok {
		t.Error("post-recovery Put was dropped")
	}
}

func TestRetryStoreFaultCleanMissCountsAsHealthy(t *testing.T) {
	policy := RetryPolicy{MaxRetries: 0, TripAfter: 1, ProbeEvery: time.Second}
	rs, inner, now, _ := testClockStore(policy)

	inner.script(1, 0)
	rs.Get("k") // trips immediately (TripAfter 1, no retries)
	if !rs.Degraded() {
		t.Fatal("breaker did not trip")
	}
	// The probe is a miss — but a *clean* miss: the tier answered, so the
	// breaker closes.
	*now = now.Add(policy.ProbeEvery)
	if _, ok := rs.Get("missing"); ok {
		t.Error("miss probe returned a hit")
	}
	if rs.Degraded() {
		t.Error("clean miss did not close the breaker")
	}
}

func TestRetryStoreFaultCapabilityForwarding(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDiskStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rs := NewRetryStore(ds, DefaultRetryPolicy())
	defer rs.Close()

	if rs.Dir() != ds.Dir() {
		t.Errorf("Dir() = %q, want %q", rs.Dir(), ds.Dir())
	}
	if rs.MaxBytes() != ds.MaxBytes() {
		t.Errorf("MaxBytes() = %d, want %d", rs.MaxBytes(), ds.MaxBytes())
	}

	// The wrapped tier's entries stream through for Warm.
	rs.Put(testKey(1), Result{})
	streamed := 0
	rs.Entries(0, 0, func(string, Result) bool { streamed++; return true })
	if streamed != 1 {
		t.Errorf("Entries streamed %d entries, want 1", streamed)
	}

	// A farm configured with the wrapper reports the disk tier's limits.
	fm := New(1, WithDiskStore(rs))
	defer fm.Close()
	l := fm.Limits()
	if !l.Disk || l.DiskDir != ds.Dir() || l.DiskMaxBytes != ds.MaxBytes() {
		t.Errorf("farm limits lost the wrapped tier's identity: %+v", l)
	}
}

// TestRetryStoreFaultJitterSpreadsBackoffAndProbe pins the jitter contract:
// back-off delays and probe timing are spread by a factor in
// [1-Jitter, 1+Jitter], so a fleet whose breakers tripped together does not
// hammer a recovering tier in lockstep.
func TestRetryStoreFaultJitterSpreadsBackoffAndProbe(t *testing.T) {
	policy := RetryPolicy{
		MaxRetries: 1,
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   time.Second,
		TripAfter:  1,
		ProbeEvery: time.Second,
		Jitter:     0.5,
	}
	rs, inner, now, slept := testClockStore(policy)
	defer rs.Close()
	// Scripted randomness: 0 → factor 1-j, 1 → factor 1+j.
	rolls, i := []float64{0, 1, 0.5}, 0
	rs.rand = func() float64 { v := rolls[i%len(rolls)]; i++; return v }

	// Two scripted failures: one retry (jittered back-off), then the trip
	// (jittered probe deadline).
	inner.script(2, 0)
	if _, _, err := rs.GetErr(testKey(1)); err == nil {
		t.Fatal("scripted failure did not surface")
	}
	if len(*slept) != 1 || (*slept)[0] != 5*time.Millisecond {
		t.Fatalf("back-off slept %v, want [5ms] (10ms spread by factor 1-0.5)", *slept)
	}
	if !rs.Degraded() {
		t.Fatal("breaker did not trip after TripAfter=1")
	}

	// The probe deadline was jittered to now + 1.5s (1s by factor 1+0.5):
	// at +1.1s the tier must still refuse, at +1.5s it must probe.
	gets, _ := inner.counts()
	*now = now.Add(1100 * time.Millisecond)
	if _, _, err := rs.GetErr(testKey(1)); !errors.Is(err, ErrStoreQuarantined) {
		t.Fatalf("probe admitted before the jittered deadline: err=%v", err)
	}
	if g, _ := inner.counts(); g != gets {
		t.Fatalf("quarantined get touched the inner store (%d calls, was %d)", g, gets)
	}
	*now = now.Add(400 * time.Millisecond)
	if _, _, err := rs.GetErr(testKey(1)); err != nil {
		t.Fatalf("probe at the jittered deadline failed: %v", err)
	}
	if g, _ := inner.counts(); g != gets+1 {
		t.Fatalf("probe did not reach the inner store (%d calls, was %d)", g, gets)
	}
	if rs.Degraded() {
		t.Fatal("successful probe (clean miss) did not close the breaker")
	}
}

// TestRetryStoreFaultZeroJitterDeterministic pins that Jitter 0 keeps the
// historical deterministic timing — the rest of this suite relies on it.
func TestRetryStoreFaultZeroJitterDeterministic(t *testing.T) {
	policy := RetryPolicy{MaxRetries: 2, BaseDelay: 4 * time.Millisecond, MaxDelay: time.Second, TripAfter: 3, ProbeEvery: time.Second}
	rs, inner, _, slept := testClockStore(policy)
	defer rs.Close()
	rs.rand = func() float64 { t.Fatal("jitter 0 consulted the randomness source"); return 0 }
	inner.Put(testKey(2), Result{})
	inner.script(2, 0)
	if _, ok := rs.Get(testKey(2)); !ok {
		t.Fatal("get did not succeed on the third attempt")
	}
	if len(*slept) != 2 || (*slept)[0] != 4*time.Millisecond || (*slept)[1] != 8*time.Millisecond {
		t.Fatalf("back-off slept %v, want [4ms 8ms]", *slept)
	}
}

// TestRetryStoreFaultQuarantineSentinel pins the error taxonomy composing
// tiers rely on: an exhausted operation surfaces the underlying error, and
// a quarantined tier answers ErrStoreQuarantined on both halves.
func TestRetryStoreFaultQuarantineSentinel(t *testing.T) {
	policy := RetryPolicy{MaxRetries: 0, TripAfter: 1, ProbeEvery: time.Hour}
	rs, inner, _, _ := testClockStore(policy)
	defer rs.Close()

	inner.script(1, 0)
	if _, _, err := rs.GetErr(testKey(3)); !errors.Is(err, errScripted) {
		t.Fatalf("exhausted get surfaced %v, want the underlying error", err)
	}
	if _, _, err := rs.GetErr(testKey(3)); !errors.Is(err, ErrStoreQuarantined) {
		t.Fatalf("quarantined get surfaced %v, want ErrStoreQuarantined", err)
	}
	if err := rs.PutErr(testKey(3), Result{}); !errors.Is(err, ErrStoreQuarantined) {
		t.Fatalf("quarantined put surfaced %v, want ErrStoreQuarantined", err)
	}
	// The absorbing Store facade stays miss/drop semantics.
	if _, ok := rs.Get(testKey(3)); ok {
		t.Fatal("quarantined Get answered a hit")
	}
}

// testKey returns a well-formed (64 hex chars) cache key unique to n.
func testKey(n byte) string {
	const hex = "0123456789abcdef"
	b := make([]byte, 64)
	for i := range b {
		b[i] = hex[n%16]
	}
	return string(b)
}
