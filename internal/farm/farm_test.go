package farm

import (
	"sync"
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/tensor"
)

func TestRunMatchesDirectAPI(t *testing.T) {
	j := convJob()
	res, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out == nil || res.Stats.Cycles == 0 {
		t.Fatalf("conv job produced no output or zero cycles: %+v", res.Stats)
	}
	if got := res.Out.Shape(); got[1] != j.Dims.K {
		t.Fatalf("output shape %v does not match K=%d", got, j.Dims.K)
	}
}

func TestFarmCachesIdenticalJobs(t *testing.T) {
	f := New(2)
	defer f.Close()
	j := convJob()

	first, err := f.Do(j)
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit {
		t.Fatal("first execution reported a cache hit")
	}
	second, err := f.Do(j)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit {
		t.Fatal("second identical execution missed the cache")
	}
	if !tensor.AllClose(first.Out, second.Out, 0) {
		t.Fatal("cached result differs from fresh result")
	}
	if first.Stats != second.Stats {
		t.Fatalf("cached stats differ: %+v vs %+v", first.Stats, second.Stats)
	}

	st := f.Stats()
	if st.Submitted != 2 || st.Misses != 1 || st.Hits != 1 || st.Completed != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.CacheEntries)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

// TestFarmCachedOutputIsIsolated ensures a caller mutating a returned tensor
// cannot poison the cache.
func TestFarmCachedOutputIsIsolated(t *testing.T) {
	f := New(1)
	defer f.Close()
	j := convJob()
	a, err := f.Do(j)
	if err != nil {
		t.Fatal(err)
	}
	a.Out.Data()[0] = 12345
	b, err := f.Do(j)
	if err != nil {
		t.Fatal(err)
	}
	if b.Out.Data()[0] == 12345 {
		t.Fatal("mutating a returned tensor poisoned the cache")
	}
}

// TestFarmSingleFlight floods the farm with identical jobs from many
// goroutines and checks exactly one simulation ran.
func TestFarmSingleFlight(t *testing.T) {
	f := New(4)
	defer f.Close()
	j := convJob()
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	outs := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = f.Do(j)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !tensor.AllClose(outs[0].Out, outs[i].Out, 0) {
			t.Fatalf("submission %d returned a different result", i)
		}
	}
	st := f.Stats()
	if st.Completed != 1 {
		t.Fatalf("%d simulations ran for %d identical submissions, want 1", st.Completed, n)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Deduped != n-1 {
		t.Fatalf("hits+deduped = %d, want %d (stats: %+v)", st.Hits+st.Deduped, n-1, st)
	}
}

func TestFarmDoBatchPreservesOrder(t *testing.T) {
	f := New(4)
	defer f.Close()
	var jobs []Job
	for _, tk := range []int{1, 2, 4} {
		j := convJob()
		j.ConvMapping.TK = tk
		jobs = append(jobs, j)
	}
	// Duplicate the middle job: it must dedupe, not rerun.
	jobs = append(jobs, jobs[1])
	results, err := f.DoBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	// Distinct mappings must produce distinct cycle counts here, and the
	// duplicate must agree with its original — ordering is preserved.
	if results[1].Stats != results[3].Stats {
		t.Fatalf("duplicate job diverged: %+v vs %+v", results[1].Stats, results[3].Stats)
	}
	if results[0].Stats.Cycles == results[2].Stats.Cycles {
		t.Fatal("distinct mappings reported identical cycles; ordering likely broken")
	}
	if st := f.Stats(); st.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Completed)
	}
}

func TestFarmErrorsAreNotCached(t *testing.T) {
	f := New(1)
	defer f.Close()
	bad := Job{HW: config.Default(config.MAERIDenseWorkload), Kind: Conv2D} // no tensors
	if _, err := f.Do(bad); err == nil {
		t.Fatal("expected an error for a tensor-less conv job")
	}
	st := f.Stats()
	if st.Failed == 0 {
		t.Fatalf("failed = 0, want > 0: %+v", st)
	}
	if st.CacheEntries != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
}

func TestFarmSubmitAfterClose(t *testing.T) {
	f := New(1)
	f.Close()
	if _, err := f.Do(convJob()); err == nil {
		t.Fatal("expected an error submitting to a closed farm")
	}
}

func TestFarmDryRunDense(t *testing.T) {
	f := New(2)
	defer f.Close()
	res, err := f.Do(denseJob())
	if err != nil {
		t.Fatal(err)
	}
	if res.Out != nil {
		t.Fatal("dry-run job returned an output tensor")
	}
	if res.Stats.Cycles == 0 {
		t.Fatal("dry-run job reported zero cycles")
	}
}
