package farm

import (
	"os"
	"path/filepath"
	"testing"
)

func diskKeys(t *testing.T, ds *DiskStore) []string {
	t.Helper()
	ents, err := os.ReadDir(ds.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, e := range ents {
		keys = append(keys, e.Name())
	}
	return keys
}

// TestDiskStoreSkipsCorruptEntries damages on-disk entries every way a
// crash or bit rot can — truncation, a flipped payload bit, a flipped
// checksum bit, garbage, an empty file — and requires the store to treat
// each as a miss, delete it, and accept a clean rewrite. No error ever
// reaches the caller.
func TestDiskStoreSkipsCorruptEntries(t *testing.T) {
	res := fakeResult(7, 25)
	corruptions := map[string]func([]byte) []byte{
		"truncated-header":  func(b []byte) []byte { return b[:10] },
		"truncated-payload": func(b []byte) []byte { return b[:len(b)-9] },
		"payload-bit-flip":  func(b []byte) []byte { b[20] ^= 0x40; return b },
		"crc-bit-flip":      func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"bad-magic":         func(b []byte) []byte { b[0] = 'X'; return b },
		"bad-version":       func(b []byte) []byte { b[5] = 0xEE; return b },
		"empty":             func([]byte) []byte { return nil },
		"garbage":           func([]byte) []byte { return []byte("not a result frame at all") },
		"length-lies":       func(b []byte) []byte { b[8] ^= 0x02; return b },
	}
	i := 0
	for name, corrupt := range corruptions {
		i++
		key := storeKey(i)
		t.Run(name, func(t *testing.T) {
			ds, err := NewDiskStore(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			ds.Put(key, res)
			if _, ok := ds.Get(key); !ok {
				t.Fatal("clean entry unreadable")
			}
			path := filepath.Join(ds.Dir(), key)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(b), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := ds.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not deleted")
			}
			st := ds.Stats()
			if st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1: %+v", st.Corrupt, st)
			}
			if st.Entries != 0 {
				t.Fatalf("entry accounting wrong after corruption drop: %+v", st)
			}

			// The recomputed result rewrites cleanly and round-trips.
			ds.Put(key, res)
			got, ok := ds.Get(key)
			if !ok {
				t.Fatal("rewritten entry unreadable")
			}
			if got.Stats != res.Stats {
				t.Fatalf("rewritten entry differs: %+v vs %+v", got.Stats, res.Stats)
			}
		})
	}
}

// TestFarmRecoversFromDiskCorruption runs the corruption scenario through a
// whole farm: a damaged disk entry must be recomputed transparently and the
// rewritten file must serve the next cold farm.
func TestFarmRecoversFromDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	job := convJob()
	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}

	ds, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(1, WithDiskStore(ds))
	want, err := warm.Do(job)
	warm.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Bit-flip the persisted entry between processes.
	path := filepath.Join(ds.Dir(), key)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	ds2, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := New(1, WithDiskStore(ds2))
	got, err := cold.Do(job)
	if err != nil {
		t.Fatalf("corruption surfaced to the caller: %v", err)
	}
	if got.Hit {
		t.Fatal("corrupt entry was served as a cache hit")
	}
	if got.Stats != want.Stats {
		t.Fatalf("recomputed stats diverged: %+v vs %+v", got.Stats, want.Stats)
	}
	st := cold.Stats()
	if st.Disk == nil || st.Disk.Corrupt != 1 {
		t.Fatalf("corruption not recorded: %+v", st.Disk)
	}
	if st.Misses != 1 || st.Completed != 1 {
		t.Fatalf("expected exactly one recomputation: %+v", st)
	}
	cold.Close()

	// Third process: the rewrite must have healed the directory.
	ds3, err := NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	healed := New(1, WithDiskStore(ds3))
	defer healed.Close()
	res, err := healed.Do(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Stats != want.Stats {
		t.Fatalf("healed entry not served byte-identically: hit=%v stats=%+v", res.Hit, res.Stats)
	}
	if st := healed.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("healed replay stats: %+v", st)
	}
	if len(diskKeys(t, ds3)) != 1 {
		t.Fatalf("directory not clean: %v", diskKeys(t, ds3))
	}
}

// TestDiskStoreByteBoundEvictsOldest fills a byte-bounded store and checks
// oldest-first eviction with accurate accounting. Eviction drains to ~90%
// of the bound (amortisation), so crossing the bound removes the two
// oldest same-sized entries at a time here.
func TestDiskStoreByteBoundEvictsOldest(t *testing.T) {
	res := fakeResult(1, 100) // ~467-byte frames
	frame := int64(len(encodeResult(res)))
	ds, err := NewDiskStore(t.TempDir(), 3*frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ds.Put(storeKey(i), res)
		if st := ds.Stats(); st.Bytes > 3*frame {
			t.Fatalf("byte bound exceeded after put %d: %+v", i, st)
		}
	}
	st := ds.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2: %+v", st.Entries, st)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6: %+v", st.Evictions, st)
	}
	for _, i := range []int{6, 7} {
		if _, ok := ds.Get(storeKey(i)); !ok {
			t.Fatalf("recent entry %d was evicted", i)
		}
	}
	for i := 0; i < 6; i++ {
		if _, ok := ds.Get(storeKey(i)); ok {
			t.Fatalf("old entry %d survived", i)
		}
	}
	// A reopened bounded store rebuilds its eviction index from the scan
	// and keeps enforcing the bound (by mtime for inherited entries).
	reopened, err := NewDiskStore(filepath.Dir(ds.Dir()), 3*frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 14; i++ {
		reopened.Put(storeKey(i), res)
	}
	if st := reopened.Stats(); st.Bytes > 3*frame {
		t.Fatalf("reopened store broke the bound: %+v", st)
	}
}

// TestDiskStoreUnboundedKeepsNoIndex: the default unbounded configuration
// must not accrete per-key bookkeeping — long-running servers with many
// distinct jobs would otherwise leak memory proportional to job count.
func TestDiskStoreUnboundedKeepsNoIndex(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res := fakeResult(1, 10)
	for i := 0; i < 50; i++ {
		ds.Put(storeKey(i), res)
		if _, ok := ds.Get(storeKey(i)); !ok {
			t.Fatalf("entry %d unreadable", i)
		}
	}
	if ds.index != nil {
		t.Fatalf("unbounded store built an eviction index of %d entries", len(ds.index))
	}
	if st := ds.Stats(); st.Entries != 50 {
		t.Fatalf("entries = %d, want 50", st.Entries)
	}
}

func TestDiskStoreRejectsUnsafeKeys(t *testing.T) {
	ds, err := NewDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../../../etc/passwd",
		storeKey(1)[:63] + "Z", storeKey(1) + "0"} {
		ds.Put(key, fakeResult(1, 4))
		if _, ok := ds.Get(key); ok {
			t.Fatalf("unsafe key %q was accepted", key)
		}
	}
	if st := ds.Stats(); st.Entries != 0 || st.Puts != 0 {
		t.Fatalf("unsafe keys touched the store: %+v", st)
	}
}
