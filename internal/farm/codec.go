package farm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// DiskFormatVersion names the subdirectory a DiskStore keeps its entries
// under. It must be bumped together with either keyVersion (key.go) or
// codecVersion below: entries written under different key or encoding rules
// must never be visible to a store using the current ones. The golden key
// values in testdata/job_keys.golden pin today's keys, so a key change
// cannot land without failing tests until both versions move.
const DiskFormatVersion = "v1"

// Frame layout of one persisted result:
//
//	magic "BFRS" | u32 codecVersion | u64 payloadLen | payload | u32 crc32(payload)
//
// The payload is a fixed-order little-endian encoding of the Stats counters
// followed by the optional output tensor (shape + raw float32 bits), so a
// decoded Result is byte-identical to the encoded one: every counter is an
// exact integer and every tensor element round-trips through
// math.Float32bits losslessly.
const (
	codecMagic   = "BFRS"
	codecVersion = 1
)

// CodecVersion is the result-frame codec version, exported so the peer wire
// protocol can handshake on it: a peer speaking a different frame encoding
// must answer miss, never hand over bytes the other side would decode under
// the wrong rules.
const CodecVersion = codecVersion

// EncodeResult serialises a Result into the versioned CRC-framed byte form
// shared by the disk tier and the peer wire protocol.
func EncodeResult(res Result) []byte { return encodeResult(res) }

// DecodeResult parses an encoded result frame, verifying magic, version,
// length and checksum end to end; any damage returns an error, which
// callers treat as a cache miss.
func DecodeResult(b []byte) (Result, error) { return decodeResult(b) }

// encodeResult serialises a Result (Stats and output tensor; the Hit, Key
// and Trace fields are transport state owned by the farm and are not
// persisted).
func encodeResult(res Result) []byte {
	payloadLen := 10 * 8 // stats counters + multipliers
	payloadLen++         // hasOut flag
	if res.Out != nil {
		payloadLen += 8 + 8*res.Out.Rank() + 8 + 4*res.Out.Size()
	}
	buf := make([]byte, 0, 4+4+8+payloadLen+4)
	buf = append(buf, codecMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payloadLen))

	payloadStart := len(buf)
	st := res.Stats
	for _, v := range []int64{st.Cycles, st.MACs, st.SpatialPsums, st.AccumWrites,
		st.DNElements, st.WeightLoads, st.InputLoads, st.Steps, st.Outputs, int64(st.Multipliers)} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	if res.Out == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		shape := res.Out.Shape()
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(shape)))
		for _, d := range shape {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(d)))
		}
		data := res.Out.Data()
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(data)))
		for _, v := range data {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[payloadStart:]))
}

// decodeResult parses an encoded result, verifying the frame end to end.
// Any structural damage — short file, wrong magic or version, bad length,
// checksum mismatch, inconsistent tensor header — returns an error; callers
// treat that as a cache miss, never as a failure.
func decodeResult(b []byte) (Result, error) {
	const header = 4 + 4 + 8
	if len(b) < header {
		return Result{}, fmt.Errorf("farm: result frame too short (%d bytes)", len(b))
	}
	if string(b[:4]) != codecMagic {
		return Result{}, fmt.Errorf("farm: bad result magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != codecVersion {
		return Result{}, fmt.Errorf("farm: result codec version %d, want %d", v, codecVersion)
	}
	payloadLen := binary.LittleEndian.Uint64(b[8:16])
	// Bound payloadLen before any arithmetic: a corrupt length near 2^64
	// would otherwise wrap header+payloadLen+4 around and slice out of
	// bounds. Within [0, len(b)] every expression below is safe.
	if payloadLen > uint64(len(b)) || uint64(len(b)) != header+payloadLen+4 {
		return Result{}, fmt.Errorf("farm: result frame length %d does not match declared payload %d", len(b), payloadLen)
	}
	payload := b[header : header+payloadLen]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[header+payloadLen:]); got != want {
		return Result{}, fmt.Errorf("farm: result checksum mismatch (%08x != %08x)", got, want)
	}

	r := reader{b: payload}
	var res Result
	res.Stats = stats.Stats{
		Cycles: r.i64(), MACs: r.i64(), SpatialPsums: r.i64(), AccumWrites: r.i64(),
		DNElements: r.i64(), WeightLoads: r.i64(), InputLoads: r.i64(),
		Steps: r.i64(), Outputs: r.i64(), Multipliers: int(r.i64()),
	}
	hasOut := r.u8()
	if r.err != nil {
		return Result{}, r.err
	}
	switch hasOut {
	case 0:
		if len(r.b) != r.off {
			return Result{}, fmt.Errorf("farm: %d trailing payload bytes", len(r.b)-r.off)
		}
		return res, nil
	case 1:
	default:
		return Result{}, fmt.Errorf("farm: bad tensor flag %d", hasOut)
	}
	rank := r.i64()
	if r.err != nil || rank < 0 || rank > 16 {
		return Result{}, fmt.Errorf("farm: bad tensor rank %d", rank)
	}
	// Dimensions are bounded by the payload that must carry the elements
	// (4 bytes each), so the product cannot overflow and a corrupt header
	// cannot request a huge allocation: maxElems is at most payloadLen/4.
	maxElems := int64(len(r.b)-r.off) / 4
	shape := make([]int, rank)
	elems := int64(1)
	for i := range shape {
		d := r.i64()
		if r.err != nil || d < 0 || d > maxElems {
			return Result{}, fmt.Errorf("farm: bad tensor dimension %d", d)
		}
		shape[i] = int(d)
		if d > 0 && elems > maxElems/d {
			return Result{}, fmt.Errorf("farm: tensor shape %v overflows the payload", shape[:i+1])
		}
		elems *= d
	}
	n := r.i64()
	if r.err != nil || n != elems {
		return Result{}, fmt.Errorf("farm: tensor has %d elements, shape %v wants %d", n, shape, elems)
	}
	if rem := int64(len(r.b) - r.off); rem != 4*n {
		return Result{}, fmt.Errorf("farm: tensor payload is %d bytes, want %d", rem, 4*n)
	}
	data := make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.b[r.off+4*i:]))
	}
	res.Out = tensor.FromData(data, shape...)
	return res, nil
}

// reader is a bounds-checked little-endian payload cursor.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = fmt.Errorf("farm: truncated result payload at offset %d", r.off)
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.err = fmt.Errorf("farm: truncated result payload at offset %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// resultFootprint estimates the resident size of a cached result in bytes,
// used by the memory tier's byte bound. It tracks the dominant term (the
// output tensor's storage) plus a fixed overhead for the struct, shape and
// map/list bookkeeping.
func resultFootprint(res Result) int64 {
	n := int64(160)
	if res.Out != nil {
		n += int64(4*res.Out.Size()) + int64(8*res.Out.Rank())
	}
	return n
}
