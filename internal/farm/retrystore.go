package farm

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrStoreQuarantined is returned by GetErr/PutErr when the breaker is open
// and this operation was not admitted as a probe. Callers composing replicas
// can distinguish "tier is quarantined right now" from an operation that ran
// and failed.
var ErrStoreQuarantined = errors.New("farm: store quarantined by breaker")

// RetryPolicy configures a RetryStore: how hard it retries a transiently
// failing operation, and when repeated failure quarantines the tier.
type RetryPolicy struct {
	// MaxRetries is how many times a failed Get or Put is re-attempted
	// beyond the first try. 0 disables retries (the breaker still works).
	MaxRetries int

	// BaseDelay is the back-off before the first retry; each further retry
	// doubles it, capped at MaxDelay. A non-positive BaseDelay retries
	// immediately.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// TripAfter is how many consecutive operations must exhaust their
	// retries before the health breaker opens and quarantines the tier;
	// values < 1 trip on the first such failure.
	TripAfter int

	// ProbeEvery is how often an open breaker lets one real operation
	// through to probe the tier. A successful probe closes the breaker; a
	// failed one re-arms the timer. Non-positive values use 1s.
	ProbeEvery time.Duration

	// Jitter spreads backoff delays and probe timing by a random factor in
	// [1-Jitter, 1+Jitter], so a fleet of nodes whose breakers tripped
	// together doesn't retry or probe a recovering disk/peer in lockstep.
	// 0 disables jitter (deterministic timing, which the tests rely on);
	// values are clamped to [0, 1].
	Jitter float64
}

// DefaultRetryPolicy returns the policy bifrost-serve uses for its disk
// tier: a few quick retries (transient errors on a local filesystem either
// clear in milliseconds or not at all), a breaker that trips after three
// consecutively failed operations, and a probe every two seconds.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries: 2,
		BaseDelay:  2 * time.Millisecond,
		MaxDelay:   50 * time.Millisecond,
		TripAfter:  3,
		ProbeEvery: 2 * time.Second,
		Jitter:     0.2,
	}
}

// RetryStore wraps a fallible Store (typically a *DiskStore) with transient
// fault tolerance:
//
//   - A failed Get or Put is retried with bounded exponential back-off —
//     a brief I/O hiccup costs latency, never a recomputed or lost result.
//   - A tier that keeps failing is quarantined by a health breaker: after
//     TripAfter consecutive exhausted operations the store goes degraded,
//     answering every Get with an instant miss and dropping every Put, so a
//     dying disk cannot stall the farm's workers. The farm keeps producing
//     byte-identical results from its memory tier and fresh simulation.
//   - While degraded, one operation per ProbeEvery interval is let through
//     as a probe; the first success closes the breaker and the tier
//     resumes normal service, re-populated by the write-through traffic.
//
// If the wrapped store does not implement FallibleStore it cannot report
// failure, so RetryStore degenerates to a plain pass-through. The optional
// capabilities the farm probes for — entry streaming for Warm, Dir and
// MaxBytes for Limits — are forwarded to the wrapped store.
type RetryStore struct {
	inner  Store
	fal    FallibleStore // nil when inner cannot surface errors
	policy RetryPolicy

	// now, sleep and rand are the clock/randomness seams the fault-injection
	// tests use to drive breaker timing deterministically; production uses
	// the real ones.
	now   func() time.Time
	sleep func(time.Duration)
	rand  func() float64

	mu        sync.Mutex
	failures  int       // consecutive operations that exhausted their retries
	open      bool      // breaker state: open = quarantined
	nextProbe time.Time // earliest moment an open breaker admits a probe
	retries   int64
	trips     int64
}

// NewRetryStore wraps inner with policy. The wrapper owns inner: closing
// the RetryStore closes it.
func NewRetryStore(inner Store, policy RetryPolicy) *RetryStore {
	if policy.ProbeEvery <= 0 {
		policy.ProbeEvery = time.Second
	}
	if policy.Jitter < 0 {
		policy.Jitter = 0
	}
	if policy.Jitter > 1 {
		policy.Jitter = 1
	}
	fal, _ := inner.(FallibleStore)
	return &RetryStore{
		inner:  inner,
		fal:    fal,
		policy: policy,
		now:    time.Now,
		sleep:  time.Sleep,
		rand:   rand.Float64,
	}
}

// admit reports whether an operation may touch the wrapped store right now:
// always when the breaker is closed, and once per probe interval when open.
func (rs *RetryStore) admit() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.open {
		return true
	}
	if now := rs.now(); !now.Before(rs.nextProbe) {
		rs.nextProbe = now.Add(rs.jittered(rs.policy.ProbeEvery)) // claim this probe slot
		return true
	}
	return false
}

// ok records a successful operation (including a successful probe), closing
// the breaker and resetting the failure streak.
func (rs *RetryStore) ok() {
	rs.mu.Lock()
	rs.failures = 0
	rs.open = false
	rs.mu.Unlock()
}

// fail records an operation that exhausted its retries, tripping the
// breaker once the streak reaches the policy's threshold.
func (rs *RetryStore) fail() {
	rs.mu.Lock()
	rs.failures++
	trip := rs.policy.TripAfter
	if trip < 1 {
		trip = 1
	}
	if rs.failures >= trip && !rs.open {
		rs.open = true
		rs.trips++
	}
	if rs.open {
		rs.nextProbe = rs.now().Add(rs.jittered(rs.policy.ProbeEvery))
	}
	rs.mu.Unlock()
}

// backoff returns the delay before retry attempt (0-based), doubling from
// BaseDelay, capped at MaxDelay, spread by the policy's jitter.
func (rs *RetryStore) backoff(attempt int) time.Duration {
	d := rs.policy.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if rs.policy.MaxDelay > 0 && d >= rs.policy.MaxDelay {
			d = rs.policy.MaxDelay
			break
		}
	}
	if rs.policy.MaxDelay > 0 && d > rs.policy.MaxDelay {
		d = rs.policy.MaxDelay
	}
	return rs.jittered(d)
}

// jittered spreads d by a random factor in [1-Jitter, 1+Jitter]. With
// Jitter 0 it returns d unchanged.
func (rs *RetryStore) jittered(d time.Duration) time.Duration {
	j := rs.policy.Jitter
	if j <= 0 || d <= 0 {
		return d
	}
	f := 1 + j*(2*rs.rand()-1)
	return time.Duration(float64(d) * f)
}

// Degraded reports whether the breaker is open — the tier is quarantined
// and the farm is running memory-only.
func (rs *RetryStore) Degraded() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.open
}

// Get implements Store. A quarantined tier answers an instant miss; a
// clean miss (the key genuinely is not stored) counts as a healthy
// operation and closes an open breaker, because the tier proved it can
// answer.
func (rs *RetryStore) Get(key string) (Result, bool) {
	res, ok, _ := rs.GetErr(key)
	return res, ok
}

// GetErr implements FallibleStore, exposing to composing tiers (the
// replicated store counts per-replica failures) what Get absorbs: a
// quarantined tier answers ErrStoreQuarantined, and an operation that
// exhausts its retries answers the last underlying error.
func (rs *RetryStore) GetErr(key string) (Result, bool, error) {
	if rs.fal == nil {
		res, ok := rs.inner.Get(key)
		return res, ok, nil
	}
	if !rs.admit() {
		return Result{}, false, ErrStoreQuarantined
	}
	for attempt := 0; ; attempt++ {
		res, ok, err := rs.fal.GetErr(key)
		if err == nil {
			rs.ok()
			return res, ok, nil
		}
		if attempt >= rs.policy.MaxRetries {
			rs.fail()
			return Result{}, false, err
		}
		rs.count(func() { rs.retries++ })
		rs.sleep(rs.backoff(attempt))
	}
}

// Put implements Store. A quarantined tier drops the write — the result
// stays correct in the memory tier and is re-persisted by later traffic
// once the disk recovers.
func (rs *RetryStore) Put(key string, res Result) {
	rs.PutErr(key, res)
}

// PutErr implements FallibleStore; see GetErr for the error taxonomy.
func (rs *RetryStore) PutErr(key string, res Result) error {
	if rs.fal == nil {
		rs.inner.Put(key, res)
		return nil
	}
	if !rs.admit() {
		return ErrStoreQuarantined
	}
	for attempt := 0; ; attempt++ {
		err := rs.fal.PutErr(key, res)
		if err == nil {
			rs.ok()
			return nil
		}
		if attempt >= rs.policy.MaxRetries {
			rs.fail()
			return err
		}
		rs.count(func() { rs.retries++ })
		rs.sleep(rs.backoff(attempt))
	}
}

func (rs *RetryStore) count(f func()) {
	rs.mu.Lock()
	f()
	rs.mu.Unlock()
}

// Stats implements Store: the wrapped tier's counters annotated with the
// wrapper's retry, trip and quarantine state.
func (rs *RetryStore) Stats() StoreStats {
	st := rs.inner.Stats()
	rs.mu.Lock()
	st.Retries = rs.retries
	st.Trips = rs.trips
	st.Degraded = rs.open
	rs.mu.Unlock()
	return st
}

// Close implements Store, closing the wrapped tier.
func (rs *RetryStore) Close() error { return rs.inner.Close() }

// Entries forwards the Warm streaming capability when the wrapped store has
// it; a quarantined tier streams nothing (warming must not stall on a dying
// disk).
func (rs *RetryStore) Entries(newest int, newestBytes int64, fn func(key string, res Result) bool) {
	if rs.Degraded() {
		return
	}
	if lister, ok := rs.inner.(interface {
		Entries(newest int, newestBytes int64, fn func(key string, res Result) bool)
	}); ok {
		lister.Entries(newest, newestBytes, fn)
	}
}

// Keys forwards the key-iteration capability (rebalance/scrub source) when
// the wrapped store has it; a quarantined tier streams nothing.
func (rs *RetryStore) Keys(fn func(key string) bool) {
	if rs.Degraded() {
		return
	}
	if ks, ok := rs.inner.(interface {
		Keys(fn func(key string) bool)
	}); ok {
		ks.Keys(fn)
	}
}

// Peek forwards the stat-less read capability (rebalance source) when the
// wrapped store has it; a quarantined tier answers a miss.
func (rs *RetryStore) Peek(key string) (Result, bool) {
	if rs.Degraded() {
		return Result{}, false
	}
	if pk, ok := rs.inner.(interface {
		Peek(key string) (Result, bool)
	}); ok {
		return pk.Peek(key)
	}
	return Result{}, false
}

// Scrub forwards the frame-verification capability when the wrapped store
// has it; a quarantined tier reports the entry missing rather than touching
// a dying disk.
func (rs *RetryStore) Scrub(key string) ScrubOutcome {
	if rs.Degraded() {
		return ScrubMissing
	}
	if sc, ok := rs.inner.(interface{ Scrub(key string) ScrubOutcome }); ok {
		return sc.Scrub(key)
	}
	return ScrubMissing
}

// Dir forwards the wrapped store's directory for Limits reporting.
func (rs *RetryStore) Dir() string {
	if d, ok := rs.inner.(interface{ Dir() string }); ok {
		return d.Dir()
	}
	return ""
}

// MaxBytes forwards the wrapped store's byte bound for Limits reporting.
func (rs *RetryStore) MaxBytes() int64 {
	if mb, ok := rs.inner.(interface{ MaxBytes() int64 }); ok {
		return mb.MaxBytes()
	}
	return 0
}
