package farmtest

import (
	"testing"
	"time"

	"repro/internal/farm"
)

// TestRetryPolicy is the retry configuration the chaos suites run the farm
// under: the same shape as farm.DefaultRetryPolicy but with microsecond
// back-off and a fast probe, so a -race chaos run exercises the full
// retry → trip → quarantine → probe → recover cycle in milliseconds.
func TestRetryPolicy() farm.RetryPolicy {
	return farm.RetryPolicy{
		MaxRetries: 2,
		BaseDelay:  50 * time.Microsecond,
		MaxDelay:   time.Millisecond,
		TripAfter:  3,
		ProbeEvery: 10 * time.Millisecond,
	}
}

// AssertFaultTolerant proves the farm's central robustness guarantee: disk
// faults cost retries, quarantine and recomputation — never wrong bytes.
// It runs the standard job table through a farm whose disk tier misbehaves
// per policy (wrapped in a RetryStore, as bifrost-serve deploys it), twice,
// and asserts both passes byte-identical to fresh inline execution. With a
// total outage (ErrRate >= 1) it additionally asserts the health breaker
// actually tripped — the sweep must have survived quarantine, not luck.
func AssertFaultTolerant(tb testing.TB, policy FaultPolicy) {
	tb.Helper()
	jobs := Jobs()
	want := RunFresh(tb, jobs)

	ds, err := farm.NewDiskStore(tb.TempDir(), 0)
	if err != nil {
		tb.Fatalf("opening disk store: %v", err)
	}
	fs := NewFaultStore(ds, policy)
	fm := farm.New(4, farm.WithDiskStore(farm.NewRetryStore(fs, TestRetryPolicy())))
	defer fm.Close()

	first, err := fm.DoBatch(jobs)
	if err != nil {
		tb.Fatalf("faulted first pass (policy %+v): %v", policy, err)
	}
	AssertSameResults(tb, "faulted first pass vs fresh", want, first)

	second, err := fm.DoBatch(jobs)
	if err != nil {
		tb.Fatalf("faulted second pass (policy %+v): %v", policy, err)
	}
	AssertSameResults(tb, "faulted second pass vs fresh", want, second)

	st := fm.Stats()
	if st.Disk == nil {
		tb.Fatalf("farm lost its disk tier stats: %+v", st)
	}
	gets, puts, dropped := fs.Injected()
	if policy.ErrRate > 0 && gets+puts == 0 {
		tb.Errorf("policy %+v injected no faults over %d jobs", policy, 2*len(jobs))
	}
	// Only a pure-corruption policy reliably drops reads: when errors are
	// mixed in, the breaker may quarantine the tier before any read rolls
	// corrupt, and which draw lands on which operation is schedule-dependent.
	if policy.CorruptRate > 0 && policy.ErrRate == 0 && dropped == 0 {
		tb.Errorf("policy %+v dropped no reads over %d jobs", policy, 2*len(jobs))
	}
	if policy.ErrRate >= 1 && st.Disk.Trips == 0 {
		tb.Errorf("total disk outage never tripped the breaker: %+v", st.Disk)
	}
}
