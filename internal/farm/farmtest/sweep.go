package farmtest

import (
	"path/filepath"
	"testing"

	"repro/internal/farm"
)

// AssertJournalResume proves the crash/resume contract at the farm level:
// a sweep that journals its completed rows (farm.SweepLog) and then
// "crashes" mid-way is finished by a cold process over the same
// directories byte-identically, with zero simulator executions for the
// journaled rows — and once the journal is complete, a third process
// answers the whole sweep with zero executions. This is the primitive the
// serve layer's resumable /batch builds on.
func AssertJournalResume(tb testing.TB) {
	tb.Helper()
	jobs := Jobs()
	want := RunFresh(tb, jobs)
	root := tb.TempDir()
	cacheDir := filepath.Join(root, "cache")
	sweepDir := filepath.Join(root, "sweeps")
	const sweepID = "farmtest/journal-resume"
	half := len(jobs) / 2

	newFarm := func() *farm.Farm {
		ds, err := farm.NewDiskStore(cacheDir, 0)
		if err != nil {
			tb.Fatalf("disk store: %v", err)
		}
		return farm.New(2, farm.WithDiskStore(ds))
	}

	// First life: compute and journal the first half of the sweep, then
	// crash (close without finishing the rest).
	fm := newFarm()
	log, err := farm.OpenSweepLog(sweepDir, sweepID)
	if err != nil {
		tb.Fatal(err)
	}
	for i, j := range jobs[:half] {
		res, err := fm.Do(j)
		if err != nil {
			tb.Fatalf("first life, row %d: %v", i, err)
		}
		if err := DiffResults(want[i], res); err != nil {
			tb.Fatalf("first life, row %d: %v", i, err)
		}
		if err := log.Record(i, res.Key); err != nil {
			tb.Fatalf("journaling row %d: %v", i, err)
		}
	}
	log.Close()
	fm.Close()

	// Second life: a cold farm replays every journaled row straight from
	// the cache and simulates only the remainder.
	fm = newFarm()
	log, err = farm.OpenSweepLog(sweepDir, sweepID)
	if err != nil {
		tb.Fatal(err)
	}
	journal := log.Rows()
	if len(journal) != half {
		tb.Fatalf("journal replayed %d rows, want %d", len(journal), half)
	}
	for i, j := range jobs {
		var res farm.Result
		if key, ok := journal[i]; ok {
			k, err := j.Key()
			if err != nil {
				tb.Fatalf("keying row %d: %v", i, err)
			}
			if k != key {
				tb.Fatalf("journal row %d holds key %s, job keys to %s", i, key, k)
			}
			res, ok = fm.CacheGet(key)
			if !ok {
				tb.Fatalf("journaled row %d missing from the cold cache", i)
			}
		} else {
			var err error
			res, err = fm.Do(j)
			if err != nil {
				tb.Fatalf("second life, row %d: %v", i, err)
			}
			if err := log.Record(i, res.Key); err != nil {
				tb.Fatalf("journaling row %d: %v", i, err)
			}
		}
		if err := DiffResults(want[i], res); err != nil {
			tb.Fatalf("row %d diverged after resume: %v", i, err)
		}
	}
	if got, wantExec := fm.Stats().Completed, int64(len(jobs)-half); got != wantExec {
		tb.Fatalf("resume executed %d simulations, want exactly %d (journaled rows must not recompute)", got, wantExec)
	}
	log.Close()
	fm.Close()

	// Third life: the journal is complete — the whole sweep answers from
	// cache with zero simulator executions.
	fm = newFarm()
	defer fm.Close()
	log, err = farm.OpenSweepLog(sweepDir, sweepID)
	if err != nil {
		tb.Fatal(err)
	}
	defer log.Close()
	journal = log.Rows()
	if len(journal) != len(jobs) {
		tb.Fatalf("completed journal replayed %d rows, want %d", len(journal), len(jobs))
	}
	for i := range jobs {
		res, ok := fm.CacheGet(journal[i])
		if !ok {
			tb.Fatalf("completed row %d missing from the cold cache", i)
		}
		if err := DiffResults(want[i], res); err != nil {
			tb.Fatalf("row %d diverged on full replay: %v", i, err)
		}
	}
	if got := fm.Stats().Completed; got != 0 {
		tb.Fatalf("full replay executed %d simulations, want 0", got)
	}
}
