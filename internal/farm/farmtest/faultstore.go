package farmtest

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/farm"
)

// ErrInjected is the error every injected fault surfaces, so tests can tell
// deliberate failures from real ones with errors.Is.
var ErrInjected = errors.New("farmtest: injected fault")

// FaultPolicy says how a FaultStore misbehaves. Rates are probabilities in
// [0, 1] drawn from a seeded PRNG, so a chaos run is reproducible: the same
// policy over the same operation sequence injects the same faults.
type FaultPolicy struct {
	// ErrRate is the probability that an operation fails with ErrInjected
	// (a read before touching the store, a write instead of persisting).
	// 1.0 makes the tier completely unavailable.
	ErrRate float64
	// CorruptRate is the probability that a read is answered as a miss even
	// though the entry may exist — the caller-visible effect of a corrupt
	// frame, which the disk tier drops and reports as a clean miss. The
	// farm must recompute and still produce byte-identical results.
	CorruptRate float64
	// Latency is added to every operation that reaches the store, modelling
	// a slow or contended device.
	Latency time.Duration
	// Seed seeds the injection PRNG (0 is a valid, fixed seed).
	Seed int64
}

// FaultStore wraps a result-cache tier with deterministic fault injection:
// errors, dropped reads and latency, governed by a FaultPolicy that can be
// swapped at runtime (SetPolicy) to model a disk that fails and then
// recovers. It implements both the plain Store contract and the
// error-surfacing FallibleStore one, so it can stand in for a *DiskStore
// under a RetryStore and drive the breaker's trip/probe cycle.
type FaultStore struct {
	inner farm.Store
	fal   farm.FallibleStore // nil if inner cannot surface errors

	mu     sync.Mutex
	policy FaultPolicy
	rng    *rand.Rand

	injectedGets int64
	injectedPuts int64
	dropped      int64
}

// NewFaultStore wraps inner with policy. The wrapper owns inner: closing
// the FaultStore closes it.
func NewFaultStore(inner farm.Store, policy FaultPolicy) *FaultStore {
	fal, _ := inner.(farm.FallibleStore)
	return &FaultStore{
		inner:  inner,
		fal:    fal,
		policy: policy,
		rng:    rand.New(rand.NewSource(policy.Seed)),
	}
}

// SetPolicy swaps the fault policy — set a zero policy to "repair the
// disk" and watch the farm recover.
func (fs *FaultStore) SetPolicy(p FaultPolicy) {
	fs.mu.Lock()
	fs.policy = p
	fs.rng = rand.New(rand.NewSource(p.Seed))
	fs.mu.Unlock()
}

// Injected reports how many faults were injected: failed gets, failed puts
// and reads answered as artificial misses.
func (fs *FaultStore) Injected() (gets, puts, dropped int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injectedGets, fs.injectedPuts, fs.dropped
}

// roll decides one operation's fate under the current policy.
func (fs *FaultStore) roll(isGet bool) (fail, drop bool, latency time.Duration) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := fs.policy
	if p.ErrRate > 0 && fs.rng.Float64() < p.ErrRate {
		if isGet {
			fs.injectedGets++
		} else {
			fs.injectedPuts++
		}
		return true, false, p.Latency
	}
	if isGet && p.CorruptRate > 0 && fs.rng.Float64() < p.CorruptRate {
		fs.dropped++
		return false, true, p.Latency
	}
	return false, false, p.Latency
}

// GetErr implements farm.FallibleStore with faults injected.
func (fs *FaultStore) GetErr(key string) (farm.Result, bool, error) {
	fail, drop, latency := fs.roll(true)
	if latency > 0 {
		time.Sleep(latency)
	}
	if fail {
		return farm.Result{}, false, ErrInjected
	}
	if drop {
		return farm.Result{}, false, nil
	}
	if fs.fal != nil {
		return fs.fal.GetErr(key)
	}
	res, ok := fs.inner.Get(key)
	return res, ok, nil
}

// PutErr implements farm.FallibleStore with faults injected.
func (fs *FaultStore) PutErr(key string, res farm.Result) error {
	fail, _, latency := fs.roll(false)
	if latency > 0 {
		time.Sleep(latency)
	}
	if fail {
		return ErrInjected
	}
	if fs.fal != nil {
		return fs.fal.PutErr(key, res)
	}
	fs.inner.Put(key, res)
	return nil
}

// Get implements farm.Store: an injected fault reads as a miss.
func (fs *FaultStore) Get(key string) (farm.Result, bool) {
	res, ok, _ := fs.GetErr(key)
	return res, ok
}

// Put implements farm.Store: an injected fault drops the write.
func (fs *FaultStore) Put(key string, res farm.Result) { fs.PutErr(key, res) }

// Stats implements farm.Store.
func (fs *FaultStore) Stats() farm.StoreStats { return fs.inner.Stats() }

// Close implements farm.Store.
func (fs *FaultStore) Close() error { return fs.inner.Close() }

// Entries forwards the warm-streaming capability so a faulted tier still
// composes with farm.Warm (injection applies to lookups, not streaming).
func (fs *FaultStore) Entries(newest int, newestBytes int64, fn func(key string, res farm.Result) bool) {
	if lister, ok := fs.inner.(interface {
		Entries(newest int, newestBytes int64, fn func(key string, res farm.Result) bool)
	}); ok {
		lister.Entries(newest, newestBytes, fn)
	}
}
