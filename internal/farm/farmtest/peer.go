package farmtest

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/farm"
)

// FaultTransport injects network faults at the http.RoundTripper level —
// beneath the peer store, above the real transport — so the chaos suites
// exercise exactly what a flaky network does to the peer wire protocol:
// requests that never arrive, responses corrupted in flight, and latency
// spikes. Same policy shape and seeded-PRNG determinism as FaultStore.
//
// An ErrRate draw fails the round trip with ErrInjected (the peer never
// hears the request). A CorruptRate draw lets the exchange happen but flips
// a byte in the response body — which the result frame's CRC must catch,
// turning the damage into a clean miss, never wrong bytes.
type FaultTransport struct {
	inner http.RoundTripper

	mu     sync.Mutex
	policy FaultPolicy
	rng    *rand.Rand

	injected  int64
	corrupted int64
}

// NewFaultTransport wraps inner (nil selects http.DefaultTransport) with
// policy.
func NewFaultTransport(inner http.RoundTripper, policy FaultPolicy) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FaultTransport{
		inner:  inner,
		policy: policy,
		rng:    rand.New(rand.NewSource(policy.Seed)),
	}
}

// SetPolicy swaps the fault policy — a zero policy "repairs the network".
func (ft *FaultTransport) SetPolicy(p FaultPolicy) {
	ft.mu.Lock()
	ft.policy = p
	ft.rng = rand.New(rand.NewSource(p.Seed))
	ft.mu.Unlock()
}

// Injected reports how many round trips failed and how many responses were
// corrupted in flight.
func (ft *FaultTransport) Injected() (failed, corrupted int64) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.injected, ft.corrupted
}

// RoundTrip implements http.RoundTripper with faults injected.
func (ft *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	p := ft.policy
	fail := p.ErrRate > 0 && ft.rng.Float64() < p.ErrRate
	corrupt := !fail && p.CorruptRate > 0 && ft.rng.Float64() < p.CorruptRate
	if fail {
		ft.injected++
	}
	ft.mu.Unlock()

	if p.Latency > 0 {
		time.Sleep(p.Latency)
	}
	if fail {
		return nil, ErrInjected
	}
	resp, err := ft.inner.RoundTrip(req)
	if err != nil || !corrupt {
		return resp, err
	}
	// Corrupt the response in flight: read the body, flip one byte
	// somewhere past the frame header, hand back the damaged copy.
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if len(body) > 20 {
		body[len(body)/2] ^= 0x20
		ft.mu.Lock()
		ft.corrupted++
		ft.mu.Unlock()
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

// AssertPeerFaultTolerant proves the distributed analogue of
// AssertFaultTolerant: a remote peer tier misbehaving at the network level
// costs retries, quarantine and local recomputation — never wrong bytes.
//
// It stands up a healthy backing farm behind farm.PeerHandler, mounts it as
// a remote tier (PeerStore → RetryStore, as a coordinator deploys it) under
// a farm whose network misbehaves per policy, runs the standard job table
// twice, and asserts both passes byte-identical to fresh inline execution.
// With a total outage it additionally asserts the breaker tripped.
func AssertPeerFaultTolerant(tb testing.TB, policy FaultPolicy) {
	tb.Helper()
	jobs := Jobs()
	want := RunFresh(tb, jobs)

	backing := farm.New(2)
	defer backing.Close()
	srv := httptest.NewServer(farm.PeerHandler(backing))
	defer srv.Close()

	ft := NewFaultTransport(nil, policy)
	ps := farm.NewPeerStore(srv.URL, farm.WithPeerHTTPClient(&http.Client{
		Transport: ft,
		Timeout:   10 * time.Second,
	}))
	fm := farm.New(4, farm.WithDiskStore(farm.NewRetryStore(ps, TestRetryPolicy())))
	defer fm.Close()

	first, err := fm.DoBatch(jobs)
	if err != nil {
		tb.Fatalf("peer-faulted first pass (policy %+v): %v", policy, err)
	}
	AssertSameResults(tb, "peer-faulted first pass vs fresh", want, first)

	second, err := fm.DoBatch(jobs)
	if err != nil {
		tb.Fatalf("peer-faulted second pass (policy %+v): %v", policy, err)
	}
	AssertSameResults(tb, "peer-faulted second pass vs fresh", want, second)

	st := fm.Stats()
	if st.Disk == nil {
		tb.Fatalf("farm lost its remote tier stats: %+v", st)
	}
	if failed, _ := ft.Injected(); policy.ErrRate > 0 && failed == 0 {
		tb.Errorf("policy %+v injected no network faults over %d jobs", policy, 2*len(jobs))
	}
	if policy.ErrRate >= 1 && st.Disk.Trips == 0 {
		tb.Errorf("total network outage never tripped the breaker: %+v", st.Disk)
	}
	// Whatever the network did, the backing peer must never have been
	// poisoned: its cache still answers the sweep byte-identically.
	if policy.ErrRate < 1 {
		for i, j := range jobs {
			key, err := j.Key()
			if err != nil {
				tb.Fatalf("job %d key: %v", i, err)
			}
			if res, ok := backing.CacheGet(key); ok {
				if err := DiffResults(want[i], res); err != nil {
					tb.Errorf("backing peer's entry for job %d diverged: %v", i, err)
				}
			}
		}
	}
}
