// Package farmtest is the differential test harness for the simulation
// farm's result path: it runs one deterministic table of Conv2D and Dense
// jobs several ways — fresh inline execution, a warm in-memory cache, a
// warm disk cache replayed by a cold farm after Close, pack-cache and
// pooling-bypassed reruns, and a fully traced pass — and asserts the
// results are byte-identical everywhere. The farm, serve and core test
// suites all reuse it, so any drift between the execution path and either
// cache tier (a lossy codec, a stale format, a broken promotion), or any
// observability feature that leaks into results or keys, fails in three
// places at once.
package farmtest

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/farm"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Jobs returns a deterministic table of small simulation jobs spanning the
// three architectures, both conv layouts, basic and tiled mappings, SIGMA
// sparsity (with pre-pruned weights, mirroring core and serve) and the
// counters-only dry-run mode. Every job is fully seeded, so the table is
// identical across processes — which is what lets a cold process check
// itself against a warm directory written by another.
func Jobs() []farm.Job {
	conv := func(ct config.ControllerType, layout tensor.Layout, m mapping.ConvMapping, seed int64) farm.Job {
		cfg := config.Default(ct)
		d := tensor.ConvDims{N: 1, C: 2, H: 8, W: 8, K: 4, R: 3, S: 3}
		in := tensor.RandomUniform(seed, 1, 1, 2, 8, 8)
		if layout == tensor.NHWC {
			in = tensor.RandomUniform(seed, 1, 1, 8, 8, 2)
		}
		w := tensor.RandomUniform(seed+100, 1, 4, 2, 3, 3)
		if layout == tensor.NHWC {
			w = tensor.RandomUniform(seed+100, 1, 3, 3, 2, 4)
		}
		if ct == config.SIGMASparseGEMM {
			cfg.SparsityRatio = 50
			tensor.Prune(w, 0.5)
		}
		return farm.Job{HW: cfg, Kind: farm.Conv2D, Layout: layout, Dims: d,
			ConvMapping: m, Input: in, Weights: w, Seed: seed}
	}
	dense := func(ct config.ControllerType, m mapping.FCMapping, seed int64) farm.Job {
		cfg := config.Default(ct)
		w := tensor.RandomUniform(seed+100, 1, 8, 16)
		if ct == config.SIGMASparseGEMM {
			cfg.SparsityRatio = 50
			tensor.Prune(w, 0.5)
		}
		return farm.Job{HW: cfg, Kind: farm.Dense, FCMapping: m,
			Input: tensor.RandomUniform(seed, 1, 2, 16), Weights: w, Seed: seed}
	}
	tiled := mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 2, TG: 1, TN: 1, TX: 1, TY: 1}
	return []farm.Job{
		conv(config.MAERIDenseWorkload, tensor.NCHW, mapping.Basic(), 11),
		conv(config.MAERIDenseWorkload, tensor.NCHW, tiled, 12),
		conv(config.MAERIDenseWorkload, tensor.NHWC, tiled, 13),
		conv(config.SIGMASparseGEMM, tensor.NCHW, mapping.Basic(), 14),
		conv(config.TPUOSDense, tensor.NCHW, mapping.Basic(), 15),
		dense(config.MAERIDenseWorkload, mapping.BasicFC(), 21),
		dense(config.MAERIDenseWorkload, mapping.FCMapping{TS: 4, TK: 2, TN: 1}, 22),
		dense(config.SIGMASparseGEMM, mapping.BasicFC(), 23),
		dense(config.TPUOSDense, mapping.BasicFC(), 24),
		// Counters-only measurement jobs (the AutoTVM cycles target).
		{HW: config.Default(config.MAERIDenseWorkload), Kind: farm.Conv2D, DryRun: true,
			Dims:        tensor.ConvDims{N: 1, C: 4, H: 10, W: 10, K: 8, R: 3, S: 3},
			ConvMapping: tiled},
		{HW: config.Default(config.MAERIDenseWorkload), Kind: farm.Dense, DryRun: true,
			M: 1, K: 32, N: 16, FCMapping: mapping.FCMapping{TS: 8, TK: 4, TN: 1}},
	}
}

// RunFresh executes every job inline on the calling goroutine (farm.Run) —
// no farm, no cache — producing the reference results the cached paths are
// compared against. Jobs run the default fused fast path: analytic counters
// plus fast arithmetic, never a step loop.
func RunFresh(tb testing.TB, jobs []farm.Job) []farm.Result {
	tb.Helper()
	results := make([]farm.Result, len(jobs))
	for i, j := range jobs {
		res, err := farm.Run(j)
		if err != nil {
			tb.Fatalf("fresh run of job %d: %v", i, err)
		}
		results[i] = res
	}
	return results
}

// RunReference executes every job inline with Job.Reference set: the
// step-loop / cycle-ticked engines and, for GEMM-lowered convolutions, the
// materialised im2col lowering. This is the ground truth the fused fast
// path — and every cache tier replaying fused results — must match byte for
// byte.
func RunReference(tb testing.TB, jobs []farm.Job) []farm.Result {
	tb.Helper()
	results := make([]farm.Result, len(jobs))
	for i, j := range jobs {
		j.Reference = true
		res, err := farm.Run(j)
		if err != nil {
			tb.Fatalf("reference run of job %d: %v", i, err)
		}
		results[i] = res
	}
	return results
}

// DiffResults reports the first byte-level difference between two results'
// payloads — the simulation counters and the output tensor. The Hit and Key
// fields are transport state (which submission path produced the result)
// and are deliberately not compared.
func DiffResults(a, b farm.Result) error {
	if a.Stats != b.Stats {
		return fmt.Errorf("stats differ:\n  a: %+v\n  b: %+v", a.Stats, b.Stats)
	}
	if (a.Out == nil) != (b.Out == nil) {
		return fmt.Errorf("one result has an output tensor, the other does not (a: %v, b: %v)", a.Out != nil, b.Out != nil)
	}
	if a.Out == nil {
		return nil
	}
	if !tensor.ShapeEq(a.Out.Shape(), b.Out.Shape()) {
		return fmt.Errorf("output shapes differ: %v vs %v", a.Out.Shape(), b.Out.Shape())
	}
	ad, bd := a.Out.Data(), b.Out.Data()
	for i := range ad {
		if math.Float32bits(ad[i]) != math.Float32bits(bd[i]) {
			return fmt.Errorf("output element %d differs: %v (%08x) vs %v (%08x)",
				i, ad[i], math.Float32bits(ad[i]), bd[i], math.Float32bits(bd[i]))
		}
	}
	return nil
}

// AssertSameResults fails unless got matches want element-wise,
// byte-identically. context names the path under test in failures.
func AssertSameResults(tb testing.TB, context string, want, got []farm.Result) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: %d results, want %d", context, len(got), len(want))
	}
	for i := range want {
		if err := DiffResults(want[i], got[i]); err != nil {
			tb.Errorf("%s: job %d: %v", context, i, err)
		}
	}
}

// AssertEquivalent is the harness entry point: it proves the four result
// paths agree byte-for-byte on the given jobs.
//
//  1. reference — every job inline through the step-loop / cycle-ticked
//     engines (Job.Reference), the ground truth;
//  2. fresh — every job inline through farm.Run's default fused fast path;
//  3. warm memory — the same jobs twice through one farm, the second pass
//     required to be served entirely from the in-memory tier;
//  4. warm disk — a farm with a disk tier populates a directory and is
//     Closed; a second, cold farm on the same directory must replay every
//     job with zero simulator executions (disk hits only, no misses).
//
// Because paths 3 and 4 replay results computed by the fused path and are
// compared against path 1, the harness proves warm-cache replays of
// fused-path results byte-identical to step-loop results.
func AssertEquivalent(tb testing.TB, jobs []farm.Job) {
	tb.Helper()
	want := RunFresh(tb, jobs)
	AssertSameResults(tb, "fused fresh run vs step-loop reference", RunReference(tb, jobs), want)

	// Path 2: warm in-memory cache.
	fm := farm.New(4)
	first, err := fm.DoBatch(jobs)
	if err != nil {
		tb.Fatalf("in-memory first pass: %v", err)
	}
	second, err := fm.DoBatch(jobs)
	fm.Close()
	if err != nil {
		tb.Fatalf("in-memory warm pass: %v", err)
	}
	AssertSameResults(tb, "in-memory first pass vs fresh", want, first)
	AssertSameResults(tb, "in-memory warm pass vs fresh", want, second)
	for i, res := range second {
		if !res.Hit {
			tb.Errorf("in-memory warm pass: job %d was not a cache hit", i)
		}
	}

	// Path 3: warm disk cache replayed by a cold farm.
	dir := tb.TempDir()
	openFarm := func() *farm.Farm {
		ds, err := farm.NewDiskStore(dir, 0)
		if err != nil {
			tb.Fatalf("opening disk store: %v", err)
		}
		return farm.New(4, farm.WithDiskStore(ds))
	}
	warm := openFarm()
	populated, err := warm.DoBatch(jobs)
	warm.Close()
	if err != nil {
		tb.Fatalf("populating disk cache: %v", err)
	}
	AssertSameResults(tb, "disk populate pass vs fresh", want, populated)

	cold := openFarm()
	defer cold.Close()
	replayed, err := cold.DoBatch(jobs)
	if err != nil {
		tb.Fatalf("cold disk replay: %v", err)
	}
	AssertSameResults(tb, "cold disk replay vs fresh", want, replayed)
	for i, res := range replayed {
		if !res.Hit {
			tb.Errorf("cold disk replay: job %d was not a cache hit", i)
		}
	}
	st := cold.Stats()
	if st.Misses != 0 || st.Completed != 0 {
		tb.Errorf("cold disk replay ran simulations: %+v", st)
	}
	if st.DiskHits != int64(len(jobs)) {
		tb.Errorf("cold disk replay: disk hits = %d, want %d (stats: %+v)", st.DiskHits, len(jobs), st)
	}
	if st.Disk == nil || st.Disk.Hits != int64(len(jobs)) {
		tb.Errorf("cold disk replay: disk tier stats did not record the hits: %+v", st.Disk)
	}

	// Path 5: pack-cache reuse and arena pooling (PR 5). One shared
	// content-keyed cache, the jobs run twice inline — the first pass packs
	// and publishes every derived operand form, the second reuses them —
	// and once more with the tensor arenas bypassed. All three must match
	// the fresh (uncached, pooled-default) results byte-for-byte, and the
	// pack cache must never leak into the content-addressed job keys.
	pc := tensor.NewPackCache(0, 0)
	runPacked := func(context string) []farm.Result {
		results := make([]farm.Result, len(jobs))
		for i, j := range jobs {
			res, err := farm.Run(j.WithPackCache(pc))
			if err != nil {
				tb.Fatalf("%s: job %d: %v", context, i, err)
			}
			results[i] = res
		}
		return results
	}
	AssertSameResults(tb, "pack-cache cold pass vs fresh", want, runPacked("pack-cache cold pass"))
	AssertSameResults(tb, "pack-cache warm pass vs fresh", want, runPacked("pack-cache warm pass"))
	if pst := pc.Stats(); pst.Puts == 0 {
		tb.Errorf("pack cache was never populated across the job table: %+v", pst)
	}
	for i, j := range jobs {
		plain, err1 := j.Key()
		packed, err2 := j.WithPackCache(pc).Key()
		if err1 != nil || err2 != nil || plain != packed {
			tb.Errorf("job %d: pack cache leaked into the key: %q (err %v) vs %q (err %v)",
				i, plain, err1, packed, err2)
		}
	}

	prev := tensor.SetPooling(false)
	defer tensor.SetPooling(prev) // restore even when RunFresh fails the test
	unpooled := RunFresh(tb, jobs)
	AssertSameResults(tb, "pooling-bypassed run vs pooled fresh", want, unpooled)

	// Path 6: lifecycle tracing is observation only (PR 6). The same jobs
	// with Job.Trace set — through a traced farm feeding a trace ring — must
	// produce byte-identical results under the same content-addressed keys,
	// with every execution's trace captured.
	plainKeys := make([]string, len(jobs))
	for i, j := range jobs {
		k, err := j.Key()
		if err != nil {
			tb.Fatalf("keying job %d: %v", i, err)
		}
		plainKeys[i] = k
	}
	ring := telemetry.NewTraceRing(2 * len(jobs))
	traced := farm.New(4, farm.WithTraceRing(ring))
	defer traced.Close()
	tjobs := make([]farm.Job, len(jobs))
	for i, j := range jobs {
		j.Trace = true
		tjobs[i] = j
	}
	tracedResults, err := traced.DoBatch(tjobs)
	if err != nil {
		tb.Fatalf("traced pass: %v", err)
	}
	AssertSameResults(tb, "traced pass vs fresh", want, tracedResults)
	for i, res := range tracedResults {
		if res.Key != plainKeys[i] {
			tb.Errorf("job %d: tracing changed the key: %q vs %q", i, res.Key, plainKeys[i])
		}
		if res.Trace == nil {
			tb.Errorf("traced pass: job %d returned no trace", i)
		} else if res.Trace.Key != res.Key {
			tb.Errorf("job %d: trace key %q != result key %q", i, res.Trace.Key, res.Key)
		}
	}
	if got := ring.Total(); got != uint64(len(jobs)) {
		tb.Errorf("trace ring recorded %d traces, want %d", got, len(jobs))
	}
}
