package farm

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// ReplicatedStore makes the distributed result tier durable: every Put fans
// out to the first R distinct owners of the key on a consistent-hash ring
// over this node and its peers, so losing any single node's disk loses no
// results — the shard is served from its replicas, not recomputed.
//
//   - Writes are replicated, not quorum-gated: the local tier is written
//     synchronously (it is this node's own cache), remote owners get the
//     frame through their per-replica breaker (NewRetryStore), and a Put
//     succeeds as long as one copy lands. Failed replicas are counted and
//     healed later by read-repair or rebalance.
//   - Reads are quorum-free with read-repair: Get answers from the local
//     tier when it can, otherwise walks the key's owners in ring order. A
//     hit served by a non-primary replica is asynchronously written back to
//     the local tier and to every earlier-ordered owner that cleanly
//     missed, so transient outages heal on traffic. A total miss lets the
//     farm recompute, and the recompute's normal Put re-replicates it.
//   - Anti-entropy after ring churn: members go unhealthy when their
//     breaker opens (or the coordinator marks them inactive) and healthy
//     again when a probe succeeds; each transition rebuilds the ring and
//     starts a bounded, rate-limited, cancellable rebalance pass that
//     streams every locally-held key whose ownership set grew to its new
//     owners — a replaced node repopulates from its peers' disks without a
//     single recompute.
//
// The zero number of remote members degenerates to a plain wrapper around
// the local tier. A ReplicatedStore is safe for concurrent use.
type ReplicatedStore struct {
	local    Store  // this node's tier (RetryStore over DiskStore); may be nil
	selfName string // this node's ring identity; "" keeps self off the ring
	replicas int    // R: distinct owners per key, clamped to ring size

	members []*replicaMember

	ring   *Ring        // healthy members only; rebuilt on every transition
	ringMu sync.RWMutex // guards replacing rs.ring and the lastHealthy set

	lastHealthy map[string]bool // healthy-set snapshot behind the live ring

	repairPending  atomic.Int64 // repairs scheduled but not yet applied
	writes         atomic.Int64 // successful remote replica writes
	failures       atomic.Int64 // failed remote replica writes
	repairs        atomic.Int64 // replica writes performed by read-repair
	repairsDropped atomic.Int64 // read-repairs dropped at a full queue
	rebalanced     atomic.Int64 // keys streamed to new owners by anti-entropy

	repairCh  chan repairJob
	repairWG  sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}

	watchEvery    time.Duration
	rebalanceRate int // keys per second streamed by one rebalance pass

	rebalMu     sync.Mutex
	rebalCancel context.CancelFunc
	rebalWG     sync.WaitGroup
}

// replicaMember is one remote peer's replication state.
type replicaMember struct {
	name  string
	store Store
	fal   FallibleStore // nil when store cannot surface errors
	deg   func() bool   // breaker state (RetryStore.Degraded); nil = never
	act   atomic.Bool   // coordinator/probe-driven liveness
}

// ReplicaMember names one remote replica target, typically a *RetryStore
// wrapping a *PeerStore so the per-replica breaker quarantines a dead peer.
type ReplicaMember struct {
	Name  string
	Store Store
}

// ReplicatedOption configures a ReplicatedStore.
type ReplicatedOption func(*ReplicatedStore)

// WithReplicaWatchInterval sets how often member health (breaker state) is
// re-checked for ring churn. Tests drive it to milliseconds; production
// defaults to 1s.
func WithReplicaWatchInterval(d time.Duration) ReplicatedOption {
	return func(rs *ReplicatedStore) {
		if d > 0 {
			rs.watchEvery = d
		}
	}
}

// WithRebalanceRate bounds an anti-entropy pass to about n keys per second
// (default 128; n < 1 keeps the default). The pass is deliberately slow: it
// runs behind live traffic and must never saturate a recovering peer.
func WithRebalanceRate(n int) ReplicatedOption {
	return func(rs *ReplicatedStore) {
		if n >= 1 {
			rs.rebalanceRate = n
		}
	}
}

// defaultRepairQueue bounds the in-flight read-repair backlog; beyond it
// repairs are dropped and counted — repair is an optimisation, never worth
// blocking a read for.
const defaultRepairQueue = 256

// NewReplicatedStore builds the replicated tier. local is this node's own
// store (nil for a diskless node), selfName its ring identity (matching how
// peers name it, so every node derives the same owners; "" keeps this node
// off the ring and makes it write-through only), replicas the R in "first R
// distinct owners", and members the remote replica targets. The store owns
// local and every member store: Close closes them all.
func NewReplicatedStore(local Store, selfName string, replicas int, members []ReplicaMember, opts ...ReplicatedOption) *ReplicatedStore {
	if replicas < 1 {
		replicas = 2
	}
	rs := &ReplicatedStore{
		local:         local,
		selfName:      selfName,
		replicas:      replicas,
		closed:        make(chan struct{}),
		repairCh:      make(chan repairJob, defaultRepairQueue),
		watchEvery:    time.Second,
		rebalanceRate: 128,
		lastHealthy:   make(map[string]bool),
	}
	for _, m := range members {
		mem := &replicaMember{name: m.Name, store: m.Store}
		mem.fal, _ = m.Store.(FallibleStore)
		if d, ok := m.Store.(interface{ Degraded() bool }); ok {
			mem.deg = d.Degraded
		}
		mem.act.Store(true)
		rs.members = append(rs.members, mem)
	}
	for _, o := range opts {
		o(rs)
	}
	rs.ring = rs.buildRing(rs.healthySet())
	rs.lastHealthy = rs.healthySet()

	rs.repairWG.Add(1)
	go rs.repairLoop()
	if len(rs.members) > 0 {
		rs.repairWG.Add(1)
		go rs.watchLoop()
	}
	return rs
}

// healthy reports whether a member may receive replica traffic right now:
// marked active (coordinator probe) and not quarantined by its breaker.
func (m *replicaMember) healthy() bool {
	return m.act.Load() && (m.deg == nil || !m.deg())
}

// healthySet snapshots every member's health, keyed by name.
func (rs *ReplicatedStore) healthySet() map[string]bool {
	set := make(map[string]bool, len(rs.members))
	for _, m := range rs.members {
		set[m.name] = m.healthy()
	}
	return set
}

// buildRing constructs a ring over self plus the healthy members.
func (rs *ReplicatedStore) buildRing(healthy map[string]bool) *Ring {
	r := NewRing(0)
	if rs.selfName != "" {
		r.Add(rs.selfName)
	}
	for name, ok := range healthy {
		if ok {
			r.Add(name)
		}
	}
	return r
}

// member returns the named remote member, or nil.
func (rs *ReplicatedStore) member(name string) *replicaMember {
	for _, m := range rs.members {
		if m.name == name {
			return m
		}
	}
	return nil
}

// HasMember reports whether name is one of this store's remote replicas —
// the coordinator uses it to route probe-driven liveness only to stores
// that know the peer.
func (rs *ReplicatedStore) HasMember(name string) bool { return rs.member(name) != nil }

// SetMemberActive is the coordinator/probe hook: mark a member reachable or
// not. A transition rebuilds the ring and kicks an anti-entropy pass
// immediately rather than waiting for the watch tick.
func (rs *ReplicatedStore) SetMemberActive(name string, active bool) {
	m := rs.member(name)
	if m == nil {
		return
	}
	if m.act.Swap(active) != active {
		rs.refreshRing()
	}
}

// watchLoop re-checks member health on an interval, catching the churn the
// coordinator hook can't see: a breaker tripping on traffic, or a half-open
// probe succeeding against a recovered peer.
func (rs *ReplicatedStore) watchLoop() {
	defer rs.repairWG.Done()
	t := time.NewTicker(rs.watchEvery)
	defer t.Stop()
	for {
		select {
		case <-rs.closed:
			return
		case <-t.C:
			rs.refreshRing()
		}
	}
}

// refreshRing rebuilds the ring if the healthy set changed since the last
// build, and starts a rebalance pass for the transition. Cheap when nothing
// changed.
func (rs *ReplicatedStore) refreshRing() {
	now := rs.healthySet()
	rs.ringMu.Lock()
	if equalSet(rs.lastHealthy, now) {
		rs.ringMu.Unlock()
		return
	}
	rs.lastHealthy = now
	oldRing := rs.ring
	rs.ring = rs.buildRing(now)
	newRing := rs.ring
	rs.ringMu.Unlock()
	rs.startRebalance(oldRing, newRing)
}

func equalSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// currentRing returns the live ring snapshot.
func (rs *ReplicatedStore) currentRing() *Ring {
	rs.ringMu.RLock()
	defer rs.ringMu.RUnlock()
	return rs.ring
}

// owners returns the key's first R distinct owners on the live ring.
func (rs *ReplicatedStore) owners(key string) []string {
	return rs.currentRing().Owners(key, rs.replicas)
}

// Get implements Store: local tier first, then the key's owners in ring
// order. A hit served by a non-primary replica schedules an asynchronous
// read-repair to the local tier and every earlier-ordered owner that
// cleanly missed; a total miss lets the farm recompute (whose Put then
// re-replicates the result).
func (rs *ReplicatedStore) Get(key string) (Result, bool) {
	if rs.local != nil {
		if res, ok := rs.local.Get(key); ok {
			return res, true
		}
	}
	var missed []*replicaMember // owners that answered a clean miss before the hit
	for _, name := range rs.owners(key) {
		if name == rs.selfName {
			continue // the local tier already missed
		}
		m := rs.member(name)
		if m == nil || !m.healthy() {
			continue
		}
		res, ok, err := memberGet(m, key)
		if err != nil {
			continue // unreachable replica: not a miss, not repairable now
		}
		if !ok {
			missed = append(missed, m)
			continue
		}
		rs.scheduleRepair(key, res, missed)
		return res, true
	}
	return Result{}, false
}

// memberGet reads from one replica, distinguishing clean misses from
// transport failures when the member can report them.
func memberGet(m *replicaMember, key string) (Result, bool, error) {
	if m.fal != nil {
		return m.fal.GetErr(key)
	}
	res, ok := m.store.Get(key)
	return res, ok, nil
}

// Put implements Store: the local tier synchronously (this node's own
// cache), then the key's remote owners through their breakers. Per-replica
// failure is tolerated — the write needs one copy to land, and the counters
// plus later repair handle the rest.
func (rs *ReplicatedStore) Put(key string, res Result) {
	if rs.local != nil {
		rs.local.Put(key, res)
	}
	for _, name := range rs.owners(key) {
		if name == rs.selfName {
			continue // the synchronous local write is self's copy
		}
		m := rs.member(name)
		if m == nil || !m.healthy() {
			continue
		}
		if err := memberPut(m, key, res); err != nil {
			rs.failures.Add(1)
		} else {
			rs.writes.Add(1)
		}
	}
}

// memberPut writes to one replica, reporting failure when the member can.
func memberPut(m *replicaMember, key string, res Result) error {
	if m.fal != nil {
		return m.fal.PutErr(key, res)
	}
	m.store.Put(key, res)
	return nil
}

// GetLocal implements the farm's local-only lookup (the peer wire
// protocol's read half): a remote node asking "do you have this" must see
// only this node's own storage — answering from a third replica would
// bounce peer GETs around the ring forever.
func (rs *ReplicatedStore) GetLocal(key string) (Result, bool) {
	if rs.local == nil {
		return Result{}, false
	}
	return rs.local.Get(key)
}

// PutLocal implements the farm's local-only write (the peer wire protocol's
// write half): a replica frame pushed by a peer lands in this node's own
// storage and nowhere else — re-fanning it out would cascade one logical
// Put into N² replica writes.
func (rs *ReplicatedStore) PutLocal(key string, res Result) {
	if rs.local == nil {
		return
	}
	rs.local.Put(key, res)
}

// GetRemote consults only the key's remote replicas — the scrubber's repair
// source: after deleting a corrupt local entry the replacement must come
// from a peer's copy, never from the damaged local tier.
func (rs *ReplicatedStore) GetRemote(key string) (Result, bool) {
	for _, name := range rs.owners(key) {
		if name == rs.selfName {
			continue
		}
		m := rs.member(name)
		if m == nil || !m.healthy() {
			continue
		}
		if res, ok, err := memberGet(m, key); err == nil && ok {
			return res, true
		}
	}
	// Not an owner's key (ownership moved) or owners are down: any replica
	// that still holds a copy beats recomputing.
	for _, m := range rs.members {
		if !m.healthy() {
			continue
		}
		if res, ok, err := memberGet(m, key); err == nil && ok {
			return res, true
		}
	}
	return Result{}, false
}

// repairJob is one scheduled read-repair: write res under key to the local
// tier and to the owners that missed.
type repairJob struct {
	key     string
	res     Result
	targets []*replicaMember
}

// scheduleRepair enqueues an asynchronous write-back of a replica hit to
// the local tier and the cleanly-missed earlier owners. Never blocks: a
// full queue drops the repair and counts it — the next read will try again.
func (rs *ReplicatedStore) scheduleRepair(key string, res Result, missed []*replicaMember) {
	rs.repairPending.Add(1)
	select {
	case rs.repairCh <- repairJob{key: key, res: res, targets: missed}:
	case <-rs.closed:
		rs.repairPending.Add(-1)
	default:
		rs.repairPending.Add(-1)
		rs.repairsDropped.Add(1)
	}
}

// repairLoop is the single background writer draining scheduled repairs.
func (rs *ReplicatedStore) repairLoop() {
	defer rs.repairWG.Done()
	for {
		select {
		case <-rs.closed:
			return
		case job := <-rs.repairCh:
			if rs.local != nil {
				rs.local.Put(job.key, job.res)
				rs.repairs.Add(1)
			}
			for _, m := range job.targets {
				if !m.healthy() {
					continue
				}
				if err := memberPut(m, job.key, job.res); err != nil {
					rs.failures.Add(1)
				} else {
					rs.repairs.Add(1)
				}
			}
			rs.repairPending.Add(-1)
		}
	}
}

// keyLister is the local-store capability anti-entropy needs (DiskStore.Keys,
// forwarded by RetryStore).
type keyLister interface {
	Keys(fn func(key string) bool)
}

// peeker is the stat-less read capability the rebalancer streams from.
type peeker interface {
	Peek(key string) (Result, bool)
}

// startRebalance launches one anti-entropy pass for a ring transition,
// cancelling any pass still running from a previous transition (its
// remaining work is subsumed: the new pass diffs against the same local
// key set with the newest ring).
func (rs *ReplicatedStore) startRebalance(oldRing, newRing *Ring) {
	lister, okL := rs.local.(keyLister)
	pk, okP := rs.local.(peeker)
	if !okL || !okP {
		return
	}
	rs.rebalMu.Lock()
	if rs.rebalCancel != nil {
		rs.rebalCancel()
	}
	ctx, cancel := context.WithCancel(context.Background())
	rs.rebalCancel = cancel
	rs.rebalWG.Add(1)
	rs.rebalMu.Unlock()

	go func() {
		defer rs.rebalWG.Done()
		defer cancel()
		rs.rebalance(ctx, oldRing, newRing, lister, pk)
	}()
}

// rebalance streams every locally-held key whose ownership set gained a
// member to those new owners, paced to the configured rate so a recovering
// peer is repopulated without being saturated.
func (rs *ReplicatedStore) rebalance(ctx context.Context, oldRing, newRing *Ring, lister keyLister, pk peeker) {
	pace := time.Second / time.Duration(rs.rebalanceRate)
	lister.Keys(func(key string) bool {
		select {
		case <-ctx.Done():
			return false
		case <-rs.closed:
			return false
		default:
		}
		oldOwners := make(map[string]bool)
		for _, n := range oldRing.Owners(key, rs.replicas) {
			oldOwners[n] = true
		}
		moved, peeked := false, false
		var res Result
		for _, name := range newRing.Owners(key, rs.replicas) {
			if name == rs.selfName || oldOwners[name] {
				continue
			}
			m := rs.member(name)
			if m == nil || !m.healthy() {
				continue
			}
			if !peeked {
				var ok bool
				if res, ok = pk.Peek(key); !ok {
					break // entry vanished mid-pass (evicted); nothing to stream
				}
				peeked = true
			}
			if err := memberPut(m, key, res); err != nil {
				rs.failures.Add(1)
			} else {
				rs.rebalanced.Add(1)
				moved = true
			}
		}
		if moved && pace > 0 {
			select {
			case <-ctx.Done():
				return false
			case <-time.After(pace):
			}
		}
		return true
	})
}

// ReplicationDegraded reports whether fewer than R of the key space's
// potential owners (this node plus its members) are currently reachable —
// new writes cannot reach their full replica count, so the node should
// advertise not-ready and let traffic land where durability is intact.
func (rs *ReplicatedStore) ReplicationDegraded() bool {
	want := rs.replicas
	total := len(rs.members)
	if rs.selfName != "" || rs.local != nil {
		total++
	}
	if want > total {
		want = total
	}
	healthy := 0
	if rs.selfName != "" || rs.local != nil {
		healthy++ // the local tier is always reachable from here
	}
	for _, m := range rs.members {
		if m.healthy() {
			healthy++
		}
	}
	return healthy < want
}

// ReplicaStats is the replication tier's health and counter snapshot.
type ReplicaStats struct {
	Members        int   // configured remote replicas
	Healthy        int   // remote replicas currently accepting traffic
	Writes         int64 // successful remote replica writes
	Failures       int64 // failed remote replica writes
	Repairs        int64 // writes performed by read-repair
	RepairsDropped int64 // read-repairs dropped at a full queue
	Rebalanced     int64 // keys streamed to new owners by anti-entropy
	Degraded       bool  // fewer than R owners reachable
}

// ReplicaStats snapshots the replication counters for /metrics.
func (rs *ReplicatedStore) ReplicaStats() ReplicaStats {
	st := ReplicaStats{
		Members:        len(rs.members),
		Writes:         rs.writes.Load(),
		Failures:       rs.failures.Load(),
		Repairs:        rs.repairs.Load(),
		RepairsDropped: rs.repairsDropped.Load(),
		Rebalanced:     rs.rebalanced.Load(),
		Degraded:       rs.ReplicationDegraded(),
	}
	for _, m := range rs.members {
		if m.healthy() {
			st.Healthy++
		}
	}
	return st
}

// Stats implements Store: the local tier's counters (the farm reports this
// as its disk tier), annotated with replication degradation.
func (rs *ReplicatedStore) Stats() StoreStats {
	var st StoreStats
	if rs.local != nil {
		st = rs.local.Stats()
	}
	if rs.ReplicationDegraded() {
		st.Degraded = true
	}
	return st
}

// Close implements Store: stop the watcher, the repair worker and any
// rebalance in flight, then close the local tier and every member store.
func (rs *ReplicatedStore) Close() error {
	rs.closeOnce.Do(func() {
		close(rs.closed)
		rs.rebalMu.Lock()
		if rs.rebalCancel != nil {
			rs.rebalCancel()
		}
		rs.rebalMu.Unlock()
	})
	rs.rebalWG.Wait()
	rs.repairWG.Wait()
	var err error
	if rs.local != nil {
		err = rs.local.Close()
	}
	for _, m := range rs.members {
		if cerr := m.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Flush waits until every repair scheduled so far has been applied — a test
// seam (and drain aid) so read-repair effects can be observed
// deterministically.
func (rs *ReplicatedStore) Flush() {
	for rs.repairPending.Load() > 0 {
		select {
		case <-rs.closed:
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// Entries forwards the local tier's Warm streaming capability.
func (rs *ReplicatedStore) Entries(newest int, newestBytes int64, fn func(key string, res Result) bool) {
	if lister, ok := rs.local.(entryLister); ok {
		lister.Entries(newest, newestBytes, fn)
	}
}

// Keys forwards the local tier's key iterator (scrub scheduling).
func (rs *ReplicatedStore) Keys(fn func(key string) bool) {
	if lister, ok := rs.local.(keyLister); ok {
		lister.Keys(fn)
	}
}

// Scrub forwards a frame verification to the local tier.
func (rs *ReplicatedStore) Scrub(key string) ScrubOutcome {
	if sc, ok := rs.local.(interface{ Scrub(key string) ScrubOutcome }); ok {
		return sc.Scrub(key)
	}
	return ScrubMissing
}

// Dir forwards the local tier's directory for Limits reporting.
func (rs *ReplicatedStore) Dir() string {
	if d, ok := rs.local.(interface{ Dir() string }); ok {
		return d.Dir()
	}
	return ""
}

// MaxBytes forwards the local tier's byte bound for Limits reporting.
func (rs *ReplicatedStore) MaxBytes() int64 {
	if mb, ok := rs.local.(interface{ MaxBytes() int64 }); ok {
		return mb.MaxBytes()
	}
	return 0
}
