package farm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Farm is the concurrent simulation farm: a fixed pool of workers draining
// a FIFO job queue, fronted by a content-addressed result cache with
// single-flight deduplication — concurrent submissions of the same job
// share one execution, and repeated submissions are served from the cache
// without simulating at all.
//
// A Farm is safe for concurrent use by any number of goroutines and is
// typically shared: sessions, tuners and the bifrost-serve service can all
// point at one farm so their identical simulations coalesce.
type Farm struct {
	workers int

	qmu    sync.Mutex
	qcond  *sync.Cond
	queue  []*call
	closed bool
	wg     sync.WaitGroup

	cmu      sync.Mutex
	cache    map[string]Result
	inflight map[string]*call

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	deduped   atomic.Int64
	pending   atomic.Int64
}

// call is one in-flight execution, shared by every waiter that submitted an
// identical job while it was queued or running.
type call struct {
	job  Job
	key  string
	done chan struct{}
	res  Result
	err  error
}

// New returns a running farm with the given number of workers; workers <= 0
// selects GOMAXPROCS.
func New(workers int) *Farm {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := &Farm{
		workers:  workers,
		cache:    make(map[string]Result),
		inflight: make(map[string]*call),
	}
	f.qcond = sync.NewCond(&f.qmu)
	f.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go f.worker()
	}
	return f
}

// Workers returns the worker-pool size.
func (f *Farm) Workers() int { return f.workers }

// Close stops accepting jobs, waits for queued and running jobs to finish,
// and releases the workers. Submitting after Close returns an error.
func (f *Farm) Close() {
	f.qmu.Lock()
	if f.closed {
		f.qmu.Unlock()
		return
	}
	f.closed = true
	f.qcond.Broadcast()
	f.qmu.Unlock()
	f.wg.Wait()
}

func (f *Farm) worker() {
	defer f.wg.Done()
	for {
		f.qmu.Lock()
		for len(f.queue) == 0 && !f.closed {
			f.qcond.Wait()
		}
		if len(f.queue) == 0 && f.closed {
			f.qmu.Unlock()
			return
		}
		c := f.queue[0]
		f.queue = f.queue[1:]
		f.qmu.Unlock()
		f.exec(c)
	}
}

// exec runs one call, publishes its result to the cache and wakes every
// waiter.
func (f *Farm) exec(c *call) {
	c.res, c.err = Run(c.job)
	f.cmu.Lock()
	delete(f.inflight, c.key)
	if c.err == nil {
		f.cache[c.key] = c.res
	}
	f.cmu.Unlock()
	if c.err == nil {
		f.completed.Add(1)
	} else {
		f.failed.Add(1)
	}
	f.pending.Add(-1)
	close(c.done)
}

// Future is a handle to a submitted job. Wait blocks until the result is
// available; it may be called from any goroutine, any number of times.
type Future struct {
	c   *call
	key string
	res Result
	err error
}

// Wait blocks until the job finishes and returns its result. The returned
// output tensor is the caller's own copy.
func (fu *Future) Wait() (Result, error) {
	if fu.c != nil {
		<-fu.c.done
		fu.res, fu.err = fu.c.res, fu.c.err
		fu.c = nil
	}
	if fu.err != nil {
		return Result{}, fu.err
	}
	res := fu.res
	res.Key = fu.key
	if res.Out != nil {
		res.Out = res.Out.Clone()
	}
	return res, nil
}

func resolvedFuture(key string, res Result, err error) *Future {
	return &Future{key: key, res: res, err: err}
}

// Submit enqueues a job and returns immediately with a Future. Cache hits
// resolve instantly; a job identical to one already queued or running
// attaches to that execution instead of enqueueing a second one.
func (f *Farm) Submit(j Job) *Future {
	f.submitted.Add(1)
	key, err := j.Key()
	if err != nil {
		f.failed.Add(1)
		return resolvedFuture("", Result{}, err)
	}
	f.cmu.Lock()
	if res, ok := f.cache[key]; ok {
		f.cmu.Unlock()
		f.hits.Add(1)
		res.Hit = true
		return resolvedFuture(key, res, nil)
	}
	if c, ok := f.inflight[key]; ok {
		f.cmu.Unlock()
		f.deduped.Add(1)
		return &Future{c: c, key: key}
	}
	c := &call{job: j, key: key, done: make(chan struct{})}
	f.inflight[key] = c
	f.cmu.Unlock()
	f.misses.Add(1)

	f.qmu.Lock()
	if f.closed {
		f.qmu.Unlock()
		f.cmu.Lock()
		delete(f.inflight, key)
		f.cmu.Unlock()
		f.failed.Add(1)
		// Complete the call rather than abandoning it: a concurrent
		// identical Submit may already have attached to it as a waiter.
		c.err = fmt.Errorf("farm: submit on closed farm")
		close(c.done)
		return &Future{c: c, key: key}
	}
	f.pending.Add(1)
	f.queue = append(f.queue, c)
	f.qcond.Signal()
	f.qmu.Unlock()
	return &Future{c: c, key: key}
}

// Do submits a job and blocks until its result is ready.
func (f *Farm) Do(j Job) (Result, error) { return f.Submit(j).Wait() }

// DoBatch submits every job, waits for all of them, and returns the results
// in submission order. The error is the first failure encountered (in
// order); successful entries are still populated.
func (f *Farm) DoBatch(jobs []Job) ([]Result, error) {
	futures := make([]*Future, len(jobs))
	for i, j := range jobs {
		futures[i] = f.Submit(j)
	}
	results := make([]Result, len(jobs))
	var firstErr error
	for i, fu := range futures {
		res, err := fu.Wait()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("farm: job %d: %w", i, err)
		}
		results[i] = res
	}
	return results, firstErr
}

// Stats is a snapshot of the farm's scheduler and cache counters.
type Stats struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Submitted counts every job handed to Submit/Do/DoBatch.
	Submitted int64 `json:"submitted"`
	// Completed and Failed count finished executions (not cache hits).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Hits counts submissions served from the result cache; Misses counts
	// submissions that scheduled a fresh simulation; Deduped counts
	// submissions that attached to an identical in-flight execution.
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Deduped int64 `json:"deduped"`
	// Pending is the number of jobs currently queued or running.
	Pending int64 `json:"pending"`
	// CacheEntries is the number of distinct results held.
	CacheEntries int `json:"cache_entries"`
}

// HitRate returns the fraction of submissions that avoided a fresh
// simulation (cache hits plus single-flight attaches).
func (s Stats) HitRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Hits+s.Deduped) / float64(s.Submitted)
}

// Stats returns a consistent-enough snapshot of the counters.
func (f *Farm) Stats() Stats {
	f.cmu.Lock()
	entries := len(f.cache)
	f.cmu.Unlock()
	return Stats{
		Workers:      f.workers,
		Submitted:    f.submitted.Load(),
		Completed:    f.completed.Load(),
		Failed:       f.failed.Load(),
		Hits:         f.hits.Load(),
		Misses:       f.misses.Load(),
		Deduped:      f.deduped.Load(),
		Pending:      f.pending.Load(),
		CacheEntries: entries,
	}
}
