package farm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Sentinel errors the scheduler returns for submissions it will not run.
// Both are matched with errors.Is: the farm may wrap them with context.
var (
	// ErrFarmClosed fails submissions made after Close or Shutdown, and
	// releases waiters whose queued jobs were abandoned by a timed-out
	// Shutdown.
	ErrFarmClosed = errors.New("farm: closed")

	// ErrQueueFull fails submissions fast when the queue is at its
	// WithMaxQueue bound — the farm's backpressure signal. The job was not
	// enqueued; the caller should retry later or shed the work.
	ErrQueueFull = errors.New("farm: submit queue full")
)

// phaseSeconds is the process-wide per-phase latency histogram family every
// farm rolls its job spans into: one histogram per lifecycle phase
// (enqueue wait, single-flight dedup, memory lookup, disk lookup, compute,
// persist), registered on the default telemetry registry so the /metrics
// endpoint exposes them. Observation is lock-free and allocation-free, so
// it is always on.
var phaseSeconds = telemetry.NewPhaseHistograms(telemetry.Default(),
	"bifrost_farm_phase_seconds",
	"Per-phase job lifecycle latency through the simulation farm.")

// PhaseSummaries returns the process-wide per-phase latency rollups keyed
// by phase name, for the serve layer's /stats endpoint.
func PhaseSummaries() map[string]telemetry.HistogramSummary { return phaseSeconds.Summaries() }

// Farm is the concurrent simulation farm: a fixed pool of workers draining
// a FIFO job queue, fronted by a content-addressed two-tier result cache
// with single-flight deduplication — concurrent submissions of the same job
// share one execution, and repeated submissions are served from the cache
// without simulating at all.
//
// The memory tier (bounded with WithMaxEntries / WithMaxBytes) is consulted
// synchronously on Submit; the optional persistent tier (WithDiskStore) is
// probed by the worker that picks the job up, before it simulates, so a
// warm disk directory lets a cold process answer every repeated job with
// zero simulator executions. Disk hits are promoted back into the memory
// tier. Single-flight semantics span both tiers: concurrent identical
// submissions share one disk probe and at most one execution.
//
// A Farm is safe for concurrent use by any number of goroutines and is
// typically shared: sessions, tuners and the bifrost-serve service can all
// point at one farm so their identical simulations coalesce.
type Farm struct {
	workers    int
	maxEntries int
	maxBytes   int64
	maxQueue   int

	qmu   sync.Mutex
	qcond *sync.Cond
	// qspace wakes SubmitWait callers blocked on a full bounded queue; it is
	// signalled whenever a queue slot frees (dequeue, cancellation removal,
	// shutdown abandonment) and broadcast on close.
	qspace *sync.Cond
	queue  []*call
	closed bool
	wg     sync.WaitGroup

	// tiersOnce makes tier teardown idempotent across Close and Shutdown.
	tiersOnce sync.Once

	cmu      sync.Mutex
	mem      Store
	disk     Store
	inflight map[string]*call

	pack    *tensor.PackCache
	packSet bool

	// ring, when set, receives the lifecycle trace of every job a worker
	// executes (and of traced cache hits) for the /debug/traces endpoint.
	ring *telemetry.TraceRing

	// busy counts workers currently inside exec — the utilisation gauge.
	busy atomic.Int64

	// statsMu makes multi-counter transitions atomic with respect to Stats
	// snapshots: counter updates that must be observed together take the
	// read side (shared, so the hot path never serialises on it), Stats
	// takes the write side and therefore never observes a half-applied
	// transition.
	statsMu sync.RWMutex

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	deduped   atomic.Int64
	pending   atomic.Int64
	diskHits  atomic.Int64
	panics    atomic.Int64
	cancelled atomic.Int64
	rejected  atomic.Int64
}

// Option configures a Farm at construction time.
type Option func(*Farm)

// WithMaxEntries bounds the in-memory result tier to n entries, evicted in
// LRU order; n <= 0 (the default) leaves it unbounded.
func WithMaxEntries(n int) Option { return func(f *Farm) { f.maxEntries = n } }

// WithMaxBytes bounds the in-memory result tier to roughly b resident
// bytes of cached results, evicted in LRU order; b <= 0 (the default)
// leaves it unbounded.
func WithMaxBytes(b int64) Option { return func(f *Farm) { f.maxBytes = b } }

// WithMaxQueue bounds the job queue to n waiting jobs; when full, Submit
// fails fast with ErrQueueFull instead of accepting work the farm cannot
// serve, while SubmitWait (and therefore DoBatch) blocks until a slot
// frees. n <= 0 (the default) leaves the queue unbounded. Cache hits and
// single-flight attaches never consume queue slots, so a warm sweep is
// unaffected by the bound.
func WithMaxQueue(n int) Option { return func(f *Farm) { f.maxQueue = n } }

// WithMemoryStore replaces the in-memory tier wholesale (overriding
// WithMaxEntries / WithMaxBytes). The store is closed with the farm.
func WithMemoryStore(s Store) Option { return func(f *Farm) { f.mem = s } }

// WithDiskStore attaches a persistent tier — typically a *DiskStore —
// probed on memory misses before a job is simulated and written through on
// every fresh result. The store is closed with the farm.
func WithDiskStore(s Store) Option { return func(f *Farm) { f.disk = s } }

// WithPackCache replaces the farm's shared content-keyed pack cache —
// packed weight panels, kernel matrices and layout transposes reused
// across jobs with identical operands. nil disables pack reuse entirely.
// Pack reuse changes where derived bytes come from, never what they are:
// results and cache keys are byte-identical with any setting, so the cache
// (like Job.ExecWorkers and Job.Reference) does not participate in Key().
func WithPackCache(pc *tensor.PackCache) Option {
	return func(f *Farm) { f.pack, f.packSet = pc, true }
}

// WithTraceRing attaches a bounded ring of recent job traces: every job a
// worker executes (disk hit, fresh compute or failure) records its
// lifecycle trace there, as do cache-hit submissions that explicitly asked
// for tracing (Job.Trace). Memory hits without the flag stay traceless so
// the warm steady state allocates nothing. nil (the default) disables
// trace retention; per-phase histograms are recorded either way.
func WithTraceRing(r *telemetry.TraceRing) Option {
	return func(f *Farm) { f.ring = r }
}

// call is one in-flight execution, shared by every waiter that submitted an
// identical job while it was queued or running.
type call struct {
	job  Job
	key  string
	done chan struct{}
	res  Result
	err  error

	// span accumulates the job's per-phase timings from submission until
	// the worker finishes it; pooled, so the always-on tracing machinery
	// adds no steady-state allocations.
	span *telemetry.Span
	// enqueuedAt stamps the queue append; the dequeuing worker turns it
	// into the enqueue-wait phase.
	enqueuedAt time.Time
	// traced records whether any submission of this call asked for a
	// trace in the result; deduped waiters set it concurrently with the
	// executing worker reading it at finish, hence atomic.
	traced atomic.Bool

	// waiters counts the futures attached to this call. Context-less
	// submissions hold their reference forever; a context-aware waiter
	// releases it when its context fires. When the count reaches zero the
	// call is cancelled: pulled out of the queue (if still there) and
	// failed with context.Canceled, so abandoned work never occupies a
	// worker. Attach (under Farm.cmu) and the zero-check in detach (also
	// under cmu) serialise, so a cancel never races a fresh attach.
	waiters atomic.Int64
	// cancelled marks a call whose last waiter detached; a worker that
	// dequeues it reaps it instead of executing.
	cancelled atomic.Bool
	// deadline, when non-zero, is the instant the queued job expires; a
	// worker dequeuing it later reaps it with context.DeadlineExceeded.
	deadline time.Time
}

// New returns a running farm with the given number of workers; workers <= 0
// selects GOMAXPROCS. With no options the cache is a single unbounded
// in-memory tier, matching the farm's original semantics.
func New(workers int, opts ...Option) *Farm {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := &Farm{
		workers:  workers,
		inflight: make(map[string]*call),
	}
	for _, opt := range opts {
		opt(f)
	}
	if f.mem == nil {
		// The default memory tier is sharded by key prefix: per-shard LRU
		// bounds sum to the configured totals, and the per-shard locks keep
		// a many-worker sweep from serialising on one mutex.
		f.mem = NewShardedStore(defaultStoreShards(f.maxEntries, f.maxBytes), f.maxEntries, f.maxBytes)
	}
	if !f.packSet {
		f.pack = tensor.NewPackCache(tensor.DefaultPackCacheEntries, tensor.DefaultPackCacheBytes)
	}
	f.qcond = sync.NewCond(&f.qmu)
	f.qspace = sync.NewCond(&f.qmu)
	f.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go f.worker()
	}
	return f
}

// Workers returns the worker-pool size.
func (f *Farm) Workers() int { return f.workers }

// PackCache returns the farm's shared content-keyed pack cache (nil when
// disabled with WithPackCache(nil)).
func (f *Farm) PackCache() *tensor.PackCache { return f.pack }

// Ring returns the farm's recent-trace ring (nil unless WithTraceRing).
func (f *Farm) Ring() *telemetry.TraceRing { return f.ring }

// entryLister is the optional Store capability Warm needs: streaming the
// tier's entries in least-recently-used-first order, bounded to the newest
// N entries and/or the newest entries fitting a byte budget. *DiskStore
// implements it.
type entryLister interface {
	Entries(newest int, newestBytes int64, fn func(key string, res Result) bool)
}

// Warm preloads the persistent tier's entries into the memory tier, so a
// freshly started farm answers known sweeps from memory instead of paying a
// disk probe per first hit. Entries load least recently used first, leaving
// the most recently used ones at the memory LRU's hot end. A bounded memory
// tier (WithMaxEntries / WithMaxBytes) only reads roughly the newest
// entries it can actually hold (the byte bound compares encoded file sizes
// against the tier's resident-byte budget — close cousins, not equal — so
// the tier's own eviction still enforces the exact bound); a custom
// WithMemoryStore evicts the coldest as warming fills it. Returns the
// number of entries offered to the memory tier (0 when there is no
// persistent tier or it cannot enumerate). Warming is read-only with
// respect to the disk tier and safe to run concurrently with submissions.
func (f *Farm) Warm() int {
	lister, ok := f.disk.(entryLister)
	if !ok {
		return 0
	}
	n := 0
	lister.Entries(f.maxEntries, f.maxBytes, func(key string, res Result) bool {
		f.cmu.Lock()
		f.mem.Put(key, res)
		f.cmu.Unlock()
		n++
		return true
	})
	return n
}

// Close stops accepting jobs, waits for queued and running jobs to finish,
// releases the workers and closes the cache tiers. Results persisted to a
// disk tier remain on disk: a new farm opened on the same directory serves
// them without re-simulating. Close is idempotent, and submitting after it
// fails with ErrFarmClosed. For a drain bounded by a deadline, use
// Shutdown.
func (f *Farm) Close() {
	f.qmu.Lock()
	if f.closed {
		f.qmu.Unlock()
		f.wg.Wait() // joined, not skipped: a concurrent closer still drains
		f.closeTiers()
		return
	}
	f.closed = true
	f.qcond.Broadcast()
	f.qspace.Broadcast()
	f.qmu.Unlock()
	f.wg.Wait()
	f.closeTiers()
}

// Shutdown is the graceful drain: it stops accepting jobs, lets the workers
// finish everything already queued or running, then releases them and
// closes the cache tiers — a clean stop that loses no accepted work. If ctx
// fires first, the jobs still waiting in the queue are abandoned (their
// Wait callers are released with ErrFarmClosed), executions already on a
// worker run to completion (simulations cannot be interrupted), and ctx's
// error is returned to report the unclean drain. Shutdown is idempotent and
// composes with Close in either order.
func (f *Farm) Shutdown(ctx context.Context) error {
	f.qmu.Lock()
	f.closed = true
	f.qcond.Broadcast()
	f.qspace.Broadcast()
	f.qmu.Unlock()

	drained := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		// Deadline passed: pull the remaining queue out from under the
		// workers so each stops after its current job, and release every
		// waiter still parked on an abandoned call.
		f.qmu.Lock()
		abandoned := f.queue
		f.queue = nil
		f.qcond.Broadcast()
		f.qspace.Broadcast()
		f.qmu.Unlock()
		for _, c := range abandoned {
			f.reap(c, fmt.Errorf("shutdown deadline passed: %w", ErrFarmClosed))
		}
		<-drained
	}
	f.closeTiers()
	return err
}

// closeTiers closes the cache tiers exactly once across any interleaving of
// Close and Shutdown calls.
func (f *Farm) closeTiers() {
	f.tiersOnce.Do(func() {
		f.mem.Close()
		if f.disk != nil {
			f.disk.Close()
		}
	})
}

func (f *Farm) worker() {
	defer f.wg.Done()
	for {
		f.qmu.Lock()
		for len(f.queue) == 0 && !f.closed {
			f.qcond.Wait()
		}
		if len(f.queue) == 0 && f.closed {
			f.qmu.Unlock()
			return
		}
		c := f.queue[0]
		f.queue = f.queue[1:]
		f.qspace.Signal()
		f.qmu.Unlock()
		switch {
		case c.cancelled.Load():
			// Every waiter detached while the job was queued; the cancel
			// path did not find it in the queue in time, so reap it here.
			f.reap(c, context.Canceled)
		case !c.deadline.IsZero() && time.Now().After(c.deadline):
			f.reap(c, fmt.Errorf("farm: queued past its deadline: %w", context.DeadlineExceeded))
		default:
			f.exec(c)
		}
	}
}

// reap fails a call without executing it — cancellation, deadline expiry or
// an abandoned shutdown queue — releasing every waiter still blocked on it.
// Exactly one goroutine reaps a given call: removal from the queue (or the
// decision not to execute after dequeue) is the exclusive hand-off.
func (f *Farm) reap(c *call, err error) {
	f.cmu.Lock()
	if f.inflight[c.key] == c {
		delete(f.inflight, c.key)
	}
	f.cmu.Unlock()
	c.err = err
	f.finishSpan(c, "cancelled")
	f.statsMu.RLock()
	f.cancelled.Add(1)
	f.pending.Add(-1)
	f.statsMu.RUnlock()
	close(c.done)
}

// detach drops one waiter's reference to a call. When the last waiter
// leaves, the call is cancelled and — if it is still waiting in the queue —
// reaped immediately, so a disconnected client's jobs stop consuming
// workers before one ever picks them up. A call already being executed
// simply runs to completion (simulations cannot be interrupted); its result
// lands in the cache for whoever asks next.
func (f *Farm) detach(c *call) {
	if c.waiters.Add(-1) != 0 {
		return
	}
	f.cmu.Lock()
	if c.waiters.Load() != 0 {
		// A concurrent identical submission re-attached before the cancel
		// could be made definitive; the call stays live.
		f.cmu.Unlock()
		return
	}
	c.cancelled.Store(true)
	if f.inflight[c.key] == c {
		delete(f.inflight, c.key)
	}
	f.cmu.Unlock()

	f.qmu.Lock()
	removed := false
	for i, qc := range f.queue {
		if qc == c {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			removed = true
			f.qspace.Signal()
			break
		}
	}
	f.qmu.Unlock()
	if removed {
		f.reap(c, context.Canceled)
	}
	// Not in the queue: a worker already holds it and will either see the
	// cancelled flag at dispatch and reap it, or is mid-execution and will
	// finish normally.
}

// exec runs one call, publishes its result to the cache tiers and wakes
// every waiter. The persistent tier is probed first: a disk hit is promoted
// into the memory tier and served without simulating (and without counting
// a miss), which is what lets a cold process replay a warm cache with zero
// executions. Because exec runs once per key (single flight), the disk
// probe is deduplicated exactly like the execution it replaces.
func (f *Farm) exec(c *call) {
	f.busy.Add(1)
	defer f.busy.Add(-1)
	c.span.Observe(telemetry.PhaseEnqueueWait, time.Since(c.enqueuedAt))
	if f.disk != nil {
		t := time.Now()
		res, ok := f.disk.Get(c.key)
		c.span.Observe(telemetry.PhaseDiskLookup, time.Since(t))
		if ok {
			t = time.Now()
			f.cmu.Lock()
			if f.inflight[c.key] == c {
				delete(f.inflight, c.key)
			}
			f.mem.Put(c.key, res)
			f.cmu.Unlock()
			c.span.Observe(telemetry.PhasePersist, time.Since(t))
			res.Hit = true
			c.res = res
			f.finishSpan(c, "disk")
			f.statsMu.RLock()
			f.hits.Add(1)
			f.diskHits.Add(1)
			f.pending.Add(-1)
			f.statsMu.RUnlock()
			close(c.done)
			return
		}
	}
	f.count(&f.misses)
	job := c.job
	job.pack = f.pack // shared pack reuse; excluded from Key(), bit-identical results
	t := time.Now()
	c.res, c.err = Run(job)
	c.span.Observe(telemetry.PhaseCompute, time.Since(t))
	t = time.Now()
	f.cmu.Lock()
	if f.inflight[c.key] == c {
		delete(f.inflight, c.key)
	}
	if c.err == nil {
		f.mem.Put(c.key, c.res)
	}
	f.cmu.Unlock()
	if c.err == nil {
		if f.disk != nil {
			f.disk.Put(c.key, c.res)
		}
		c.span.Observe(telemetry.PhasePersist, time.Since(t))
		f.finishSpan(c, "compute")
		f.statsMu.RLock()
		f.completed.Add(1)
		f.pending.Add(-1)
		f.statsMu.RUnlock()
	} else {
		// A recovered simulator panic fails this job only: the worker
		// survives, the sweep continues, and the panic is counted and
		// annotated so the poisoned mapping is diagnosable after the fact.
		var pe *PanicError
		isPanic := errors.As(c.err, &pe)
		source := "error"
		if isPanic {
			source = "panic"
		}
		f.finishSpan(c, source)
		f.statsMu.RLock()
		f.failed.Add(1)
		if isPanic {
			f.panics.Add(1)
		}
		f.pending.Add(-1)
		f.statsMu.RUnlock()
	}
	close(c.done)
}

// finishSpan rolls the call's span into the per-phase histograms, echoes a
// trace when anyone asked for one (the job's Trace flag, a deduped traced
// waiter, or the farm's trace ring) and returns the span to its pool. Must
// run before the call's done channel closes so waiters observe the trace.
func (f *Farm) finishSpan(c *call, source string) {
	phaseSeconds.ObserveSpan(c.span)
	if f.ring != nil || c.traced.Load() {
		tr := c.span.Take(c.key, source)
		if c.err != nil {
			tr.Error = c.err.Error()
		}
		c.res.Trace = tr
		f.ring.Add(tr)
	}
	telemetry.EndSpan(c.span)
	c.span = nil
}

// Future is a handle to a submitted job. Wait blocks until the result is
// available; it may be called any number of times (sequentially — a Future
// is not safe for concurrent use, though distinct Futures for the same job
// are).
type Future struct {
	f   *Farm
	c   *call
	key string
	res Result
	err error
}

// Wait blocks until the job finishes and returns its result. The returned
// output tensor is the caller's own copy.
func (fu *Future) Wait() (Result, error) {
	if fu.c != nil {
		<-fu.c.done
		fu.res, fu.err = fu.c.res, fu.c.err
		fu.c = nil
	}
	if fu.err != nil {
		return Result{}, fu.err
	}
	res := fu.res
	res.Key = fu.key
	if res.Out != nil {
		res.Out = res.Out.Clone()
	}
	return res, nil
}

// WaitCtx blocks until the job finishes or ctx fires, whichever is first.
// A context cancellation is terminal for this future: it returns ctx's
// error and releases the future's interest in the job — when every waiter
// has detached, a still-queued job is removed from the queue before any
// worker picks it up, so cancelled sweeps free their queue slots instead of
// running to completion for nobody. An execution already on a worker is not
// interrupted; its result lands in the cache for future submissions.
func (fu *Future) WaitCtx(ctx context.Context) (Result, error) {
	if fu.c != nil {
		select {
		case <-fu.c.done:
			return fu.Wait()
		case <-ctx.Done():
			c := fu.c
			fu.c = nil
			fu.err = ctx.Err()
			if fu.f != nil {
				fu.f.detach(c)
			}
			return Result{}, fu.err
		}
	}
	return fu.Wait()
}

func resolvedFuture(key string, res Result, err error) *Future {
	return &Future{key: key, res: res, err: err}
}

// memHit resolves a submission served by the memory tier: the hit counter,
// the memory-lookup phase histogram, and — only when the job asked for a
// trace — a materialised Trace echoed in the result and recorded in the
// ring. Untraced warm hits allocate nothing beyond the Future itself.
func (f *Farm) memHit(j Job, key string, res Result, start time.Time, lookup time.Duration) *Future {
	f.count(&f.hits)
	phaseSeconds.Observe(telemetry.PhaseMemLookup, lookup)
	res.Hit = true
	if j.Trace {
		tr := &telemetry.Trace{
			Key:         key,
			Source:      "memory",
			MemLookupMS: telemetry.MS(lookup),
			TotalMS:     telemetry.MS(time.Since(start)),
		}
		res.Trace = tr
		f.ring.Add(tr)
	}
	return resolvedFuture(key, res, nil)
}

// Submit enqueues a job and returns immediately with a Future. Cache hits
// resolve instantly; a job identical to one already queued or running
// attaches to that execution instead of enqueueing a second one. When the
// queue is at its WithMaxQueue bound the submission fails fast with
// ErrQueueFull; a caller prepared to wait out the backpressure should use
// SubmitWait instead.
func (f *Farm) Submit(j Job) *Future { return f.submit(j, false) }

// SubmitWait enqueues like Submit but absorbs backpressure instead of
// surfacing it: when the queue is at its WithMaxQueue bound, SubmitWait
// blocks until a worker frees a slot (or the farm closes) rather than
// failing with ErrQueueFull. Cache hits and single-flight attaches still
// resolve instantly — they never consume queue slots. This is the
// submission pace DoBatch uses, so a bounded queue sheds concurrent
// overload without fast-failing the tail of a batch whose caller is
// blocked and ready to wait.
func (f *Farm) SubmitWait(j Job) *Future { return f.submit(j, true) }

func (f *Farm) submit(j Job, block bool) *Future {
	f.count(&f.submitted)
	key, err := j.Key()
	if err != nil {
		f.count(&f.failed)
		return resolvedFuture("", Result{}, err)
	}
	start := time.Now()
	// Fast path outside the farm-global mutex: the memory tier is
	// internally locked (sharded by key prefix), so submissions hitting a
	// warm cache never serialise on cmu — this is where the sharded
	// store's contention relief is actually realised.
	if res, ok := f.mem.Get(key); ok {
		return f.memHit(j, key, res, start, time.Since(start))
	}
	memLookup := time.Since(start)
	dedupStart := time.Now()
	f.cmu.Lock()
	// Re-check under the lock: exec publishes to the memory tier and
	// removes the in-flight entry while holding cmu, so a completion that
	// raced the optimistic miss above is visible in exactly one of the two
	// checks here.
	if res, ok := f.mem.Get(key); ok {
		f.cmu.Unlock()
		return f.memHit(j, key, res, start, memLookup)
	}
	if c, ok := f.inflight[key]; ok {
		c.waiters.Add(1) // under cmu, so it cannot race the cancel decision in detach
		f.cmu.Unlock()
		f.count(&f.deduped)
		// The dedup phase of an attaching submission is its single-flight
		// bookkeeping cost; the shared execution's phases are recorded by
		// the call it attached to.
		phaseSeconds.Observe(telemetry.PhaseDedup, time.Since(dedupStart))
		if j.Trace {
			c.traced.Store(true)
		}
		return &Future{f: f, c: c, key: key}
	}
	c := &call{job: j, key: key, done: make(chan struct{}), span: telemetry.BeginSpan()}
	c.waiters.Store(1)
	if j.Deadline > 0 {
		c.deadline = time.Now().Add(j.Deadline)
	}
	c.span.Observe(telemetry.PhaseMemLookup, memLookup)
	c.traced.Store(j.Trace)
	f.inflight[key] = c
	f.cmu.Unlock()
	c.span.Observe(telemetry.PhaseDedup, time.Since(dedupStart))

	f.qmu.Lock()
	if block {
		// Queue-paced submission: wait for a slot instead of rejecting. The
		// workers drain the queue independently of this goroutine, so the
		// wait always makes progress; a close releases every waiter.
		for !f.closed && f.maxQueue > 0 && len(f.queue) >= f.maxQueue {
			f.qspace.Wait()
		}
	}
	if f.closed || (f.maxQueue > 0 && len(f.queue) >= f.maxQueue) {
		rejected := !f.closed
		f.qmu.Unlock()
		f.cmu.Lock()
		if f.inflight[key] == c {
			delete(f.inflight, key)
		}
		f.cmu.Unlock()
		telemetry.EndSpan(c.span)
		c.span = nil
		// Complete the call rather than abandoning it: a concurrent
		// identical Submit may already have attached to it as a waiter.
		if rejected {
			f.count(&f.rejected)
			c.err = fmt.Errorf("%w: %d jobs queued", ErrQueueFull, f.maxQueue)
		} else {
			f.count(&f.failed)
			c.err = fmt.Errorf("submit rejected: %w", ErrFarmClosed)
		}
		close(c.done)
		return &Future{f: f, c: c, key: key}
	}
	f.count(&f.pending)
	c.enqueuedAt = time.Now()
	f.queue = append(f.queue, c)
	f.qcond.Signal()
	f.qmu.Unlock()
	return &Future{f: f, c: c, key: key}
}

// SubmitCtx enqueues a job bound to ctx: an already-cancelled context fails
// immediately without touching the queue, a context deadline tightens the
// job's own Deadline, and the returned future should be waited on with
// WaitCtx so cancellation releases the job's queue slot. Cache hits resolve
// instantly regardless of ctx, exactly like Submit.
func (f *Farm) SubmitCtx(ctx context.Context, j Job) *Future {
	if err := ctx.Err(); err != nil {
		f.count(&f.submitted)
		f.count(&f.cancelled)
		return resolvedFuture("", Result{}, err)
	}
	if d, ok := ctx.Deadline(); ok {
		if remaining := time.Until(d); j.Deadline <= 0 || remaining < j.Deadline {
			j.Deadline = remaining
		}
	}
	return f.Submit(j)
}

// CacheGet consults the farm's cache tiers without scheduling anything: the
// memory tier first, then the disk tier, promoting a disk hit into memory
// exactly like a worker would. It is the lookup behind the peer wire
// protocol (PeerHandler): a remote node asking "do you already have this
// result" must never trigger a local simulation.
func (f *Farm) CacheGet(key string) (Result, bool) {
	if res, ok := f.mem.Get(key); ok {
		return res, true
	}
	if f.disk != nil {
		if res, ok := f.disk.Get(key); ok {
			f.cmu.Lock()
			f.mem.Put(key, res)
			f.cmu.Unlock()
			return res, true
		}
	}
	return Result{}, false
}

// CachePut stores a result under key into every tier — the write half of
// the peer wire protocol, letting a remote node replicate a result it
// computed so later CacheGet probes here answer without simulating.
func (f *Farm) CachePut(key string, res Result) {
	f.cmu.Lock()
	f.mem.Put(key, res)
	f.cmu.Unlock()
	if f.disk != nil {
		f.disk.Put(key, res)
	}
}

// localStore is the optional capability a composed disk tier (a
// *ReplicatedStore) exposes so the peer wire protocol can be confined to
// this node's own storage: a peer's GET answered from a third replica
// would bounce lookups around the ring, and a peer's PUT fanned back out
// would cascade one logical write into N² replica writes.
type localStore interface {
	GetLocal(key string) (Result, bool)
	PutLocal(key string, res Result)
}

// cacheGetLocal is CacheGet restricted to this node's own tiers: memory,
// then the disk tier's local half when it distinguishes one. PeerHandler
// answers with it.
func (f *Farm) cacheGetLocal(key string) (Result, bool) {
	if res, ok := f.mem.Get(key); ok {
		return res, true
	}
	if f.disk == nil {
		return Result{}, false
	}
	var (
		res Result
		ok  bool
	)
	if ls, can := f.disk.(localStore); can {
		res, ok = ls.GetLocal(key)
	} else {
		res, ok = f.disk.Get(key)
	}
	if ok {
		f.cmu.Lock()
		f.mem.Put(key, res)
		f.cmu.Unlock()
	}
	return res, ok
}

// cachePutLocal is CachePut restricted to this node's own tiers — the
// landing half of replication. PeerHandler stores with it.
func (f *Farm) cachePutLocal(key string, res Result) {
	f.cmu.Lock()
	f.mem.Put(key, res)
	f.cmu.Unlock()
	if f.disk == nil {
		return
	}
	if ls, can := f.disk.(localStore); can {
		ls.PutLocal(key, res)
		return
	}
	f.disk.Put(key, res)
}

// Do submits a job and blocks until its result is ready.
func (f *Farm) Do(j Job) (Result, error) { return f.Submit(j).Wait() }

// DoCtx submits a job bound to ctx and blocks until its result is ready or
// ctx fires. Cancelling ctx frees the job's queue slot if no other waiter
// shares it; see Future.WaitCtx for the exact semantics.
func (f *Farm) DoCtx(ctx context.Context, j Job) (Result, error) {
	return f.SubmitCtx(ctx, j).WaitCtx(ctx)
}

// DoBatch submits every job, waits for all of them, and returns the results
// in submission order. The error is the first failure encountered (in
// order); successful entries are still populated.
//
// Submission runs at queue pace: with a WithMaxQueue bound configured,
// DoBatch blocks at the bound until a worker frees a slot instead of
// fast-failing the batch's tail with ErrQueueFull — the caller is already
// committed to waiting for the whole batch, so rejecting jobs it would
// happily wait for silently poisons sweeps. A batch of any size therefore
// completes with zero rejections on an otherwise idle farm; concurrent
// Submit traffic still sheds fast at the bound.
func (f *Farm) DoBatch(jobs []Job) ([]Result, error) {
	futures := make([]*Future, len(jobs))
	for i, j := range jobs {
		futures[i] = f.SubmitWait(j)
	}
	results := make([]Result, len(jobs))
	var firstErr error
	for i, fu := range futures {
		res, err := fu.Wait()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("farm: job %d: %w", i, err)
		}
		results[i] = res
	}
	return results, firstErr
}

// Stats is a snapshot of the farm's scheduler and cache counters.
type Stats struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Submitted counts every job handed to Submit/Do/DoBatch.
	Submitted int64 `json:"submitted"`
	// Completed and Failed count finished executions (not cache hits).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Panics is the subset of Failed caused by simulator panics the workers
	// recovered into per-job errors.
	Panics int64 `json:"panics"`
	// Cancelled counts jobs removed before execution: every waiter
	// detached (context cancellation), the queue deadline passed, or a
	// timed-out Shutdown abandoned them.
	Cancelled int64 `json:"cancelled"`
	// Rejected counts submissions refused fast with ErrQueueFull because
	// the queue was at its WithMaxQueue bound.
	Rejected int64 `json:"rejected"`
	// Hits counts submissions served from either cache tier without a
	// simulator execution; DiskHits is the subset answered by the
	// persistent tier. Misses counts jobs that had to be simulated; Deduped
	// counts submissions that attached to an identical in-flight execution.
	Hits     int64 `json:"hits"`
	DiskHits int64 `json:"disk_hits"`
	Misses   int64 `json:"misses"`
	Deduped  int64 `json:"deduped"`
	// Pending is the number of jobs currently queued or running.
	Pending int64 `json:"pending"`
	// BusyWorkers is how many workers are executing a job right now, and
	// Queued how many jobs are waiting for a worker — the scheduler's
	// utilisation and queue-depth gauges.
	BusyWorkers int64 `json:"busy_workers"`
	Queued      int64 `json:"queued"`
	// CacheEntries is the number of distinct results held in memory.
	CacheEntries int `json:"cache_entries"`
	// Memory and Disk are the per-tier cache counters (hits, evictions,
	// bytes, corrupt entries dropped); Disk is nil without a disk tier.
	Memory StoreStats  `json:"memory"`
	Disk   *StoreStats `json:"disk,omitempty"`
	// Pack counts the shared pack cache's derived-operand reuse (all zero
	// when pack reuse is disabled).
	Pack tensor.PackStats `json:"pack"`
}

// HitRate returns the fraction of submissions that avoided a fresh
// simulation (cache hits plus single-flight attaches).
func (s Stats) HitRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Hits+s.Deduped) / float64(s.Submitted)
}

// count applies a single-counter increment inside a statsMu read-section,
// so Stats — which takes the write side — always observes a consistent cut
// of the counter history. Read-sections are shared: concurrent submissions
// never serialise on it.
func (f *Farm) count(c *atomic.Int64) {
	f.statsMu.RLock()
	c.Add(1)
	f.statsMu.RUnlock()
}

// Stats returns a consistent snapshot of the counters: multi-counter
// transitions (a job finishing decrements Pending and increments Completed,
// a disk hit bumps Hits and DiskHits together) are never observed
// half-applied, so invariants like
// Hits + Deduped + Completed + Failed + Pending <= Submitted and
// DiskHits <= Hits hold in every snapshot, under any concurrency.
func (f *Farm) Stats() Stats {
	mem := f.mem.Stats()
	f.qmu.Lock()
	queued := int64(len(f.queue))
	f.qmu.Unlock()
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	st := Stats{
		Workers:      f.workers,
		Submitted:    f.submitted.Load(),
		Completed:    f.completed.Load(),
		Failed:       f.failed.Load(),
		Panics:       f.panics.Load(),
		Cancelled:    f.cancelled.Load(),
		Rejected:     f.rejected.Load(),
		Hits:         f.hits.Load(),
		DiskHits:     f.diskHits.Load(),
		Misses:       f.misses.Load(),
		Deduped:      f.deduped.Load(),
		Pending:      f.pending.Load(),
		BusyWorkers:  f.busy.Load(),
		Queued:       queued,
		CacheEntries: int(mem.Entries),
		Memory:       mem,
	}
	if f.disk != nil {
		disk := f.disk.Stats()
		st.Disk = &disk
	}
	st.Pack = f.pack.Stats()
	return st
}

// Limits describes the farm's configured capacity bounds — the /version
// endpoint's "how is this server configured" answer.
type Limits struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// MaxQueue bounds the job queue (0 = unbounded); at the bound, Submit
	// fails fast with ErrQueueFull.
	MaxQueue int `json:"max_queue"`
	// MemMaxEntries and MemMaxBytes bound the in-memory result tier
	// (0 = unbounded).
	MemMaxEntries int   `json:"mem_max_entries"`
	MemMaxBytes   int64 `json:"mem_max_bytes"`
	// Disk reports whether a persistent tier is attached; DiskMaxBytes is
	// its byte bound (0 = unbounded) and DiskDir its directory, when the
	// tier can report them.
	Disk         bool   `json:"disk"`
	DiskMaxBytes int64  `json:"disk_max_bytes,omitempty"`
	DiskDir      string `json:"disk_dir,omitempty"`
}

// Limits returns the farm's configured bounds.
func (f *Farm) Limits() Limits {
	l := Limits{
		Workers:       f.workers,
		MaxQueue:      f.maxQueue,
		MemMaxEntries: f.maxEntries,
		MemMaxBytes:   f.maxBytes,
	}
	if f.disk != nil {
		l.Disk = true
		if mb, ok := f.disk.(interface{ MaxBytes() int64 }); ok {
			l.DiskMaxBytes = mb.MaxBytes()
		}
		if d, ok := f.disk.(interface{ Dir() string }); ok {
			l.DiskDir = d.Dir()
		}
	}
	return l
}
