package farm

import (
	"sync"
	"sync/atomic"
	"time"
)

// scrubStore is what the scrubber needs from the tier it patrols: key
// iteration, in-place frame verification, and a local write to land a
// repaired copy. *DiskStore provides the first two directly; behind a
// *ReplicatedStore the same calls reach the local tier through its
// forwarders while repairs come from replicas.
type scrubStore interface {
	Keys(fn func(key string) bool)
	Scrub(key string) ScrubOutcome
}

// localPutter lands a repaired frame in the local tier only — on a
// ReplicatedStore the repaired copy must not fan back out to the replicas
// it just came from.
type localPutter interface {
	PutLocal(key string, res Result)
}

// Scrubber is the low-priority background integrity pass over the local
// result tier: every interval it walks the store's keys, re-verifies each
// entry's CRC frame, deletes what fails (the store counts it Corrupt), and
// — when a repair source is configured — pulls a replica's copy back into
// the freed slot. At-rest corruption (bit rot, torn writes from a crash,
// fsck truncation) is found and healed before a request ever reads the bad
// frame, turning what would be a recompute into a replica fetch.
type Scrubber struct {
	store  scrubStore
	repair func(key string) (Result, bool) // replica fetch; nil = delete only

	// pace bounds the scan rate (keys per second) so a pass over a large
	// store never competes with live traffic for disk bandwidth.
	pace time.Duration

	scanned  atomic.Int64
	corrupt  atomic.Int64
	repaired atomic.Int64
	passes   atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// scrubPaceKeysPerSecond is the fixed scan rate: deliberately slow — a
// 10k-entry store is fully verified in well under a scrub interval while
// the pass stays invisible next to request traffic.
const scrubPaceKeysPerSecond = 512

// NewScrubber starts a scrubber over store, running one pass every
// interval. repair, when non-nil, is consulted for every corrupt entry
// (typically ReplicatedStore.GetRemote) and its answer written back via the
// store's local-only put. Stop it with Stop; an interval <= 0 disables the
// ticker (passes then run only via RunPass, the test seam).
func NewScrubber(store scrubStore, interval time.Duration, repair func(key string) (Result, bool)) *Scrubber {
	s := &Scrubber{
		store:  store,
		repair: repair,
		pace:   time.Second / scrubPaceKeysPerSecond,
		stop:   make(chan struct{}),
	}
	if interval > 0 {
		s.wg.Add(1)
		go s.loop(interval)
	}
	return s
}

func (s *Scrubber) loop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.RunPass()
		}
	}
}

// RunPass walks the store once, verifying every entry. Corrupt entries are
// already deleted by the store's Scrub; a configured repair source refills
// the slot from a replica. Returns how many entries were scanned. Safe to
// call concurrently with live traffic (and, harmlessly, with the ticker).
func (s *Scrubber) RunPass() int {
	n := 0
	s.store.Keys(func(key string) bool {
		select {
		case <-s.stop:
			return false
		default:
		}
		n++
		s.scanned.Add(1)
		switch s.store.Scrub(key) {
		case ScrubCorrupt:
			s.corrupt.Add(1)
			if s.repair != nil {
				if res, ok := s.repair(key); ok {
					if lp, can := s.store.(localPutter); can {
						lp.PutLocal(key, res)
						s.repaired.Add(1)
					} else if st, can := s.store.(Store); can {
						st.Put(key, res)
						s.repaired.Add(1)
					}
				}
			}
		case ScrubMissing, ScrubOK:
		}
		if s.pace > 0 {
			select {
			case <-s.stop:
				return false
			case <-time.After(s.pace):
			}
		}
		return true
	})
	s.passes.Add(1)
	return n
}

// ScrubStats is the scrubber's counter snapshot for /metrics.
type ScrubStats struct {
	Scanned  int64 // entries verified across all passes
	Corrupt  int64 // entries that failed verification (deleted)
	Repaired int64 // corrupt entries refilled from a replica
	Passes   int64 // completed passes
}

// Stats snapshots the scrubber's counters.
func (s *Scrubber) Stats() ScrubStats {
	return ScrubStats{
		Scanned:  s.scanned.Load(),
		Corrupt:  s.corrupt.Load(),
		Repaired: s.repaired.Load(),
		Passes:   s.passes.Load(),
	}
}

// Stop halts the ticker and any pass in flight, then waits for them.
func (s *Scrubber) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}
