package farm_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/farm"
)

// TestDoBatchLargerThanQueueBound is the regression test for the batch
// backpressure bug: DoBatch used to submit every job before waiting, so with
// WithMaxQueue(n) any batch larger than n fast-failed its tail with
// ErrQueueFull even though the caller was blocked and ready to wait. DoBatch
// now submits at queue pace — a 64-job batch through a queue bounded at 4
// must complete with zero rejections.
func TestDoBatchLargerThanQueueBound(t *testing.T) {
	const bound, batch = 4, 64
	fm := farm.New(2, farm.WithMaxQueue(bound))
	defer fm.Close()

	jobs := make([]farm.Job, batch)
	for i := range jobs {
		jobs[i] = dryJob(i) // distinct keys: no dedup, every job queues
	}
	results, err := fm.DoBatch(jobs)
	if err != nil {
		t.Fatalf("DoBatch over a bounded queue: %v", err)
	}
	if len(results) != batch {
		t.Fatalf("got %d results, want %d", len(results), batch)
	}
	for i, res := range results {
		if res.Stats.Cycles <= 0 {
			t.Errorf("job %d: no cycles in result %+v", i, res.Stats)
		}
	}
	st := fm.Stats()
	if st.Rejected != 0 {
		t.Errorf("DoBatch manufactured %d ErrQueueFull rejections (stats: %+v)", st.Rejected, st)
	}
	if st.Completed != batch {
		t.Errorf("completed %d executions, want %d", st.Completed, batch)
	}
}

// TestSubmitStillFailsFastAtBound pins the other half of the contract:
// plain Submit keeps shedding load at the bound while a worker is wedged,
// so interactive traffic still gets its fast ErrQueueFull.
func TestSubmitStillFailsFastAtBound(t *testing.T) {
	release := make(chan struct{})
	fm := farm.New(1, farm.WithMaxQueue(1))
	defer fm.Close()
	defer close(release)

	// Wedge the single worker, then fill the one queue slot.
	blocked := fm.Submit(dryJob(0).WithFaultHook(func() { <-release }))
	waitForBusy(t, fm)
	queued := fm.Submit(dryJob(1))

	rejected := fm.Submit(dryJob(2))
	if _, err := rejected.Wait(); !errors.Is(err, farm.ErrQueueFull) {
		t.Fatalf("submit over the bound: err = %v, want ErrQueueFull", err)
	}
	_ = blocked
	_ = queued
}

// TestSubmitWaitReleasedByClose proves a SubmitWait blocked on a full queue
// does not hang a closing farm: it is released with ErrFarmClosed.
func TestSubmitWaitReleasedByClose(t *testing.T) {
	release := make(chan struct{})
	fm := farm.New(1, farm.WithMaxQueue(1))

	fm.Submit(dryJob(0).WithFaultHook(func() { <-release }))
	waitForBusy(t, fm)
	fm.Submit(dryJob(1)) // fills the queue

	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := fm.SubmitWait(dryJob(2)).Wait()
		errc <- err
	}()
	// Let the goroutine reach the qspace wait, then close underneath it.
	time.Sleep(20 * time.Millisecond)
	go fm.Close()
	close(release)
	wg.Wait()
	if err := <-errc; err != nil && !errors.Is(err, farm.ErrFarmClosed) {
		t.Fatalf("blocked SubmitWait after Close: err = %v, want nil or ErrFarmClosed", err)
	}
}

// waitForBusy spins until the farm reports a busy worker, so tests can
// deterministically wedge the pool before filling the queue.
func waitForBusy(t *testing.T, fm *farm.Farm) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fm.Stats().BusyWorkers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the wedged job")
		}
		time.Sleep(time.Millisecond)
	}
}
