package farm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSweepLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSweepLog(dir, "sweep-1")
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("fresh log has %d rows", l.Len())
	}
	want := map[int]string{0: testKey('a'), 3: testKey('b'), 7: testKey('c')}
	for row, key := range want {
		if err := l.Record(row, key); err != nil {
			t.Fatalf("record row %d: %v", row, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSweepLog(dir, "sweep-1")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Rows()
	if len(got) != len(want) {
		t.Fatalf("replayed %d rows, want %d", len(got), len(want))
	}
	for row, key := range want {
		if got[row] != key {
			t.Errorf("row %d replayed as %q, want %q", row, got[row], key)
		}
	}

	// A different sweep id must map to a different journal.
	other, err := OpenSweepLog(dir, "sweep-2")
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if other.Len() != 0 {
		t.Errorf("distinct sweep id shares a journal: %d rows", other.Len())
	}
}

func TestSweepLogRerecordKeepsLatest(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSweepLog(dir, "s")
	if err != nil {
		t.Fatal(err)
	}
	l.Record(2, testKey('a'))
	l.Record(2, testKey('d'))
	l.Close()

	re, err := OpenSweepLog(dir, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Rows()[2]; got != testKey('d') {
		t.Fatalf("row 2 replayed as %q, want the re-recorded key", got)
	}
}

func TestSweepLogTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSweepLog(dir, "crash")
	if err != nil {
		t.Fatal(err)
	}
	l.Record(0, testKey('a'))
	l.Record(1, testKey('b'))
	l.Close()

	// Simulate a crash mid-append: a torn partial frame at the tail.
	path := filepath.Join(dir, SweepLogName("crash"))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(b, []byte("torn-frame")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSweepLog(dir, "crash")
	if err != nil {
		t.Fatalf("reopening a torn journal: %v", err)
	}
	rows := re.Rows()
	if len(rows) != 2 || rows[0] != testKey('a') || rows[1] != testKey('b') {
		t.Fatalf("torn journal replayed %v, want the two intact rows", rows)
	}
	// The tail must have been truncated so new appends land on a frame
	// boundary and survive the next replay.
	if err := re.Record(2, testKey('c')); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := OpenSweepLog(dir, "crash")
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.Rows(); len(got) != 3 || got[2] != testKey('c') {
		t.Fatalf("post-truncate append did not replay: %v", got)
	}
}

func TestSweepLogCorruptFrameDropsTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSweepLog(dir, "flip")
	if err != nil {
		t.Fatal(err)
	}
	l.Record(0, testKey('a'))
	l.Record(1, testKey('b'))
	l.Record(2, testKey('c'))
	l.Close()

	path := filepath.Join(dir, SweepLogName("flip"))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[sweepRecordSize+10] ^= 0x40 // flip a bit inside the second frame
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSweepLog(dir, "flip")
	if err != nil {
		t.Fatalf("reopening a bit-flipped journal: %v", err)
	}
	defer re.Close()
	rows := re.Rows()
	if len(rows) != 1 || rows[0] != testKey('a') {
		t.Fatalf("bit-flipped journal replayed %v, want only the first intact row", rows)
	}
}

func TestSweepLogRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSweepLog(dir, "bad")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Record(-1, testKey('a')); err == nil {
		t.Error("negative row accepted")
	}
	if err := l.Record(0, "not-a-key"); err == nil {
		t.Error("malformed key accepted")
	}
	if err := l.Record(0, strings.Repeat("Z", 64)); err == nil {
		t.Error("non-hex key accepted")
	}
}

func TestRemoveSweepLog(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSweepLog(dir, "gone")
	if err != nil {
		t.Fatal(err)
	}
	l.Record(0, testKey('a'))
	l.Close()
	if err := RemoveSweepLog(dir, "gone"); err != nil {
		t.Fatal(err)
	}
	if err := RemoveSweepLog(dir, "gone"); err != nil {
		t.Fatalf("removing an absent journal: %v", err)
	}
	re, err := OpenSweepLog(dir, "gone")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 0 {
		t.Fatalf("removed journal still replays %d rows", re.Len())
	}
}

// TestSweepLogConcurrentRecordDuringRemove pins the crash-adjacent race the
// sweep registry can hit: one goroutine still appending rows while another
// removes the journal (a fresh non-resume start under the same id). Appends
// to the unlinked file must stay harmless — no error, no panic — and a
// reopen after the remove must see a clean, empty journal.
func TestSweepLogConcurrentRecordDuringRemove(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSweepLog(dir, "contested")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	start := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		<-start
		for i := 0; i < 500; i++ {
			if err := l.Record(i, testKey(byte(i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	close(start)
	if err := RemoveSweepLog(dir, "contested"); err != nil {
		t.Fatalf("remove with a live writer: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("append racing the remove: %v", err)
	}

	// The unlinked handle kept the writer harmless; a reopen starts clean.
	re, err := OpenSweepLog(dir, "contested")
	if err != nil {
		t.Fatal(err)
	}
	rows := re.Len()
	re.Close()
	RemoveSweepLog(dir, "contested")
	if rows != 0 {
		t.Fatalf("journal reopened after remove replays %d rows, want 0", rows)
	}
}
