package farm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"

	"repro/internal/stonne/stats"
	"repro/internal/tensor"
)

// fakeResult builds a distinguishable result whose footprint is dominated
// by an n-element output tensor.
func fakeResult(id int, n int) Result {
	out := tensor.New(n)
	for i := range out.Data() {
		out.Data()[i] = float32(id)
	}
	return Result{Out: out, Stats: stats.Stats{Cycles: int64(id), MACs: int64(n)}}
}

func storeKey(i int) string { return fmt.Sprintf("%064x", i) }

func TestMemoryStoreLRUOrderAndEntryBound(t *testing.T) {
	m := NewMemoryStore(3, 0)
	for i := 0; i < 3; i++ {
		m.Put(storeKey(i), fakeResult(i, 4))
	}
	// Touch key 0 so key 1 becomes the coldest.
	if _, ok := m.Get(storeKey(0)); !ok {
		t.Fatal("key 0 missing")
	}
	if got, want := fmt.Sprint(m.Keys()), fmt.Sprint([]string{storeKey(0), storeKey(2), storeKey(1)}); got != want {
		t.Fatalf("LRU order = %v, want %v", got, want)
	}
	m.Put(storeKey(3), fakeResult(3, 4))
	if _, ok := m.Get(storeKey(1)); ok {
		t.Fatal("coldest entry survived an over-bound insert")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := m.Get(storeKey(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	st := m.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestMemoryStoreByteBound(t *testing.T) {
	const perEntry = 160 + 4*100 + 8 // resultFootprint of a rank-1, 100-element output
	m := NewMemoryStore(0, 3*perEntry)
	for i := 0; i < 10; i++ {
		m.Put(storeKey(i), fakeResult(i, 100))
		if st := m.Stats(); st.Bytes > 3*perEntry {
			t.Fatalf("byte bound exceeded after insert %d: %+v", i, st)
		}
	}
	st := m.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3 under the byte bound", st.Entries)
	}
	if st.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", st.Evictions)
	}
	// The survivors are the three most recent.
	for _, i := range []int{7, 8, 9} {
		res, ok := m.Get(storeKey(i))
		if !ok {
			t.Fatalf("recent entry %d evicted", i)
		}
		if res.Stats.Cycles != int64(i) {
			t.Fatalf("entry %d carries the wrong result: %+v", i, res.Stats)
		}
	}
	// A single result larger than the whole bound is not retained: the
	// bound is absolute.
	m.Put(storeKey(99), fakeResult(99, 10_000))
	if st := m.Stats(); st.Bytes > 3*perEntry {
		t.Fatalf("oversized result broke the byte bound: %+v", st)
	}
	if _, ok := m.Get(storeKey(99)); ok {
		t.Fatal("oversized result was retained despite exceeding the bound")
	}
}

func TestMemoryStoreUpdateInPlace(t *testing.T) {
	m := NewMemoryStore(2, 0)
	m.Put(storeKey(1), fakeResult(1, 4))
	m.Put(storeKey(1), fakeResult(2, 8))
	st := m.Stats()
	if st.Entries != 1 {
		t.Fatalf("re-putting a key duplicated the entry: %+v", st)
	}
	if want := int64(160 + 4*8 + 8); st.Bytes != want {
		t.Fatalf("bytes = %d after in-place update, want %d", st.Bytes, want)
	}
	res, ok := m.Get(storeKey(1))
	if !ok || res.Stats.Cycles != 2 {
		t.Fatalf("in-place update lost the newer result: %+v", res.Stats)
	}
}

// TestStoreStripsTransportState: cached entries must be canonical — the Hit
// flag and Key of the submission that happened to populate them must not
// leak into later hits (cold and warm processes would otherwise diverge).
func TestStoreStripsTransportState(t *testing.T) {
	m := NewMemoryStore(0, 0)
	res := fakeResult(1, 4)
	res.Hit = true
	res.Key = "stale"
	m.Put(storeKey(1), res)
	got, ok := m.Get(storeKey(1))
	if !ok {
		t.Fatal("entry missing")
	}
	if got.Hit || got.Key != "" {
		t.Fatalf("transport state leaked into the cache: hit=%v key=%q", got.Hit, got.Key)
	}
}

// TestCodecRejectsCraftedFrames feeds decodeResult frames whose length
// fields are corrupted into overflow territory: each must return an error,
// never panic (a panicking decode would kill the farm worker goroutine and
// with it the whole process — the opposite of corruption tolerance) and
// never attempt a huge allocation.
func TestCodecRejectsCraftedFrames(t *testing.T) {
	le := binary.LittleEndian
	// refix recomputes the trailing CRC after a mutation, so decoding gets
	// past the checksum and actually exercises the structural guards.
	refix := func(b []byte) []byte {
		payloadLen := le.Uint64(b[8:16])
		le.PutUint32(b[16+payloadLen:], crc32.ChecksumIEEE(b[16:16+payloadLen]))
		return b
	}
	frames := map[string][]byte{
		// payloadLen ≈ 2^64 wraps header+payloadLen+4 around to len(b).
		"payload-len-wraps": func() []byte {
			b := []byte(codecMagic)
			b = le.AppendUint32(b, codecVersion)
			b = le.AppendUint64(b, ^uint64(3)) // 2^64 - 4
			return b
		}(),
		// Tensor element count 2^62 makes 4*n wrap to 0 and would ask
		// make() for an astronomical slice.
		"element-count-wraps": func() []byte {
			b := encodeResult(fakeResult(1, 1))
			// Payload starts at 16, stats are 80 bytes, flag 1 byte →
			// rank at 97, dim at 105, element count at 113.
			le.PutUint64(b[105:], uint64(1)<<62)
			le.PutUint64(b[113:], uint64(1)<<62)
			return refix(b)
		}(),
		"rank-wraps": func() []byte {
			b := encodeResult(fakeResult(1, 1))
			le.PutUint64(b[97:], ^uint64(0))
			return refix(b)
		}(),
	}
	for name, frame := range frames {
		if _, err := decodeResult(frame); err == nil {
			t.Errorf("%s: crafted frame decoded without error", name)
		}
	}
}

func TestCodecRoundTripIsLossless(t *testing.T) {
	cases := []Result{
		{Stats: stats.Stats{Cycles: 1<<62 + 3, MACs: -1, SpatialPsums: 7, AccumWrites: 9,
			DNElements: 11, WeightLoads: 13, InputLoads: 17, Steps: 19, Outputs: 23, Multipliers: 128}},
		fakeResult(42, 37),
		{Out: tensor.FromData([]float32{0, -0, 1.5e-42, 3.4e38, float32(1) / 3}, 5)},
		{Out: tensor.New(2, 0, 3)}, // zero-element, non-zero-rank shape
	}
	for i, want := range cases {
		got, err := decodeResult(encodeResult(want))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Stats != want.Stats {
			t.Fatalf("case %d: stats %+v, want %+v", i, got.Stats, want.Stats)
		}
		if (got.Out == nil) != (want.Out == nil) {
			t.Fatalf("case %d: output presence diverged", i)
		}
		if want.Out != nil {
			if !tensor.ShapeEq(got.Out.Shape(), want.Out.Shape()) {
				t.Fatalf("case %d: shape %v, want %v", i, got.Out.Shape(), want.Out.Shape())
			}
			for j := range want.Out.Data() {
				if got.Out.Data()[j] != want.Out.Data()[j] {
					t.Fatalf("case %d element %d: %v, want %v", i, j, got.Out.Data()[j], want.Out.Data()[j])
				}
			}
		}
	}
}
