package farm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"repro/internal/tensor"
)

// keyVersion is folded into every key. Bump it whenever the encoding or the
// simulation semantics change, so stale caches can never serve results
// computed under different rules.
const keyVersion = "bifrost/farm/v1"

// KeyVersion is the key-derivation version, exported for the peer wire
// protocol's handshake: nodes deriving keys under different rules would
// look up (and replicate) results under keys the other side never writes,
// so a mismatch downgrades a peer to always-miss instead.
const KeyVersion = keyVersion

// Key returns the content-addressed cache key of a job: a hex-encoded
// SHA-256 over a canonical little-endian encoding of the normalised
// hardware configuration, operator kind, geometry, mapping, declared seed
// and the full operand tensor contents. Two jobs share a key exactly when
// they describe the same simulation, and keys are stable across processes
// and platforms (golden values are pinned in key_test.go and
// testdata/job_keys.golden; the fuzz target in key_fuzz_test.go checks the
// equivalence both ways). ExecWorkers and Reference are deliberately
// excluded: neither can change the result — only the wall-clock time of
// computing it — so fused and reference submissions share cache entries.
//
// Keys also name the disk-tier cache files, so any change to this encoding
// must bump both keyVersion and DiskFormatVersion.
func (j Job) Key() (string, error) {
	cfg := j.HW.Normalize()
	d := j.Dims
	if j.Kind == Conv2D {
		if err := d.Resolve(); err != nil {
			return "", err
		}
	}
	h := sha256.New()
	w := keyWriter{h: h}
	w.str(keyVersion)

	// Hardware configuration, Table III order.
	w.str(string(cfg.Controller))
	w.str(string(cfg.MSNetwork))
	w.ints(cfg.MSSize, cfg.MSRows, cfg.MSCols, cfg.DNBandwidth, cfg.RNBandwidth)
	w.str(string(cfg.ReduceNetwork))
	w.ints(cfg.SparsityRatio)
	w.bool(cfg.AccumBuffer)

	// Operator identity.
	w.str(string(j.Kind))
	w.str(string(j.Layout))
	w.bool(j.DryRun)
	w.u64(uint64(j.Seed)) // full 64 bits — int() would truncate on 32-bit builds

	// Geometry (conv dims are resolved so defaulted fields hash equal).
	w.ints(d.N, d.C, d.H, d.W, d.K, d.R, d.S, d.G,
		d.StrideH, d.StrideW, d.PadH, d.PadW, d.DilationH, d.DilationW)
	w.ints(j.M, j.K, j.N)

	// Mappings.
	m := j.ConvMapping
	w.ints(m.TR, m.TS, m.TC, m.TK, m.TG, m.TN, m.TX, m.TY)
	f := j.FCMapping
	w.ints(f.TS, f.TK, f.TN)

	// Operand contents — this is what makes the key content-addressed.
	w.tensor(j.Input)
	w.tensor(j.Weights)

	return hex.EncodeToString(h.Sum(nil)), nil
}

// keyWriter serialises values into the hash in a fixed, self-delimiting
// format: every string is length-prefixed and every integer is a fixed-width
// little-endian int64, so no two distinct jobs can produce the same byte
// stream.
type keyWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w keyWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w keyWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w keyWriter) ints(vs ...int) {
	for _, v := range vs {
		w.u64(uint64(int64(v)))
	}
}

func (w keyWriter) bool(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w keyWriter) tensor(t *tensor.Tensor) {
	if t == nil {
		w.u64(0)
		return
	}
	w.u64(1)
	shape := t.Shape()
	w.u64(uint64(len(shape)))
	w.ints(shape...)
	data := t.Data()
	w.u64(uint64(len(data)))
	// Stream the elements through tensor's canonical chunked encoder: the
	// hashed bytes are identical to a single contiguous conversion, without
	// the per-submission allocation proportional to the operand size.
	tensor.WriteFloatBits(w.h, data)
}
