package farm

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

// TestStatsSnapshotConsistent hammers a farm with concurrent submissions
// (hits, misses and dedups all occur) while a snapshot loop checks the
// cross-counter invariants on every Stats() it takes:
//
//	Hits + Deduped + Completed + Failed + Pending <= Submitted
//	DiskHits <= Hits
//
// Before the statsMu grouping, a snapshot could land between a job's
// Completed (or Hits) increment and its Pending decrement and observe the
// job counted twice, violating the first invariant; this test fails on
// that interleaving when the scheduler reproduces it. With the grouping the
// invariants hold on every snapshot, by construction.
func TestStatsSnapshotConsistent(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		d := tensor.ConvDims{N: 1, C: 2, H: 6, W: 6, K: 4, R: 3, S: 3}
		jobs[i] = Job{
			HW: config.Default(config.MAERIDenseWorkload), Kind: Conv2D, Dims: d,
			ConvMapping: mapping.Basic(),
			Input:       tensor.RandomUniform(int64(i), 1, 1, 6, 6, 2),
			Weights:     tensor.RandomUniform(int64(i)+100, 1, 3, 3, 2, 4),
			Layout:      tensor.NHWC,
			Seed:        int64(i),
		}
	}
	f := New(4)
	defer f.Close()

	var stop atomic.Bool
	var snapErr atomic.Pointer[Stats]
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for !stop.Load() {
			st := f.Stats()
			if st.Hits+st.Deduped+st.Completed+st.Failed+st.Pending > st.Submitted ||
				st.DiskHits > st.Hits {
				snapErr.CompareAndSwap(nil, &st)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				if _, err := f.Do(jobs[(g+r)%len(jobs)]); err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	snapWG.Wait()
	if st := snapErr.Load(); st != nil {
		t.Fatalf("inconsistent stats snapshot observed: %+v (Hits+Deduped+Completed+Failed+Pending = %d > Submitted = %d, or DiskHits %d > Hits %d)",
			*st, st.Hits+st.Deduped+st.Completed+st.Failed+st.Pending, st.Submitted, st.DiskHits, st.Hits)
	}

	// Quiescent accounting: every submission is exactly one of hit, dedup,
	// or execution (completed/failed), and nothing stays pending.
	st := f.Stats()
	if st.Pending != 0 {
		t.Fatalf("pending jobs after quiescence: %+v", st)
	}
	if st.Hits+st.Deduped+st.Completed+st.Failed != st.Submitted {
		t.Fatalf("quiescent counters do not partition submissions: %+v", st)
	}
}

// TestFarmSharesPackCacheAcrossJobs proves the Farm → Job → engine
// threading: two jobs with identical weights but different mappings must
// reuse the shared pack cache (the second job's panels come from the
// first's packing), and a farm with pack reuse disabled must not touch it.
func TestFarmSharesPackCacheAcrossJobs(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 2, H: 8, W: 8, K: 8, R: 3, S: 3, PadH: 1, PadW: 1}
	in := tensor.RandomUniform(1, 1, 1, 8, 8, 2)
	w := tensor.RandomUniform(2, 1, 3, 3, 2, 8)
	job := func(tk int) Job {
		return Job{HW: config.Default(config.MAERIDenseWorkload), Kind: Conv2D,
			Layout: tensor.NHWC, Dims: d,
			ConvMapping: mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: tk, TG: 1, TN: 1, TX: 1, TY: 1},
			Input:       in, Weights: w, Seed: 1}
	}

	f := New(2)
	if _, err := f.Do(job(2)); err != nil {
		t.Fatal(err)
	}
	afterFirst := f.Stats().Pack
	if afterFirst.Puts == 0 {
		t.Fatalf("first job published nothing to the pack cache: %+v", afterFirst)
	}
	if _, err := f.Do(job(4)); err != nil {
		t.Fatal(err)
	}
	afterSecond := f.Stats().Pack
	f.Close()
	if afterSecond.Hits <= afterFirst.Hits {
		t.Fatalf("second job with shared weights never hit the pack cache: first %+v, second %+v",
			afterFirst, afterSecond)
	}

	off := New(1, WithPackCache(nil))
	if _, err := off.Do(job(2)); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats().Pack; st != (tensor.PackStats{}) {
		t.Fatalf("pack-disabled farm recorded pack activity: %+v", st)
	}
	off.Close()
}
