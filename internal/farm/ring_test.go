package farm_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/farm"
)

// TestRingDeterministic pins that two independently built rings over the
// same member set agree on every owner — the property that lets every
// coordinator compute placement locally with no consensus traffic.
func TestRingDeterministic(t *testing.T) {
	build := func() *farm.Ring {
		r := farm.NewRing(0)
		// Insertion order must not matter.
		for _, m := range []string{"node-c", "node-a", "node-b"} {
			r.Add(m)
		}
		return r
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %q: ring A owner %q, ring B owner %q", key, ao, bo)
		}
	}
}

// TestRingOwnersDistinctFailoverOrder checks Owners returns distinct
// members, the primary first, and never more than the membership.
func TestRingOwnersDistinctFailoverOrder(t *testing.T) {
	r := farm.NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 10)
		if len(owners) != 4 {
			t.Fatalf("key %q: %d owners, want all 4", key, len(owners))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %q: Owners[0]=%q != Owner=%q", key, owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q in %v", key, o, owners)
			}
			seen[o] = true
		}
	}
}

// TestRingRemoveOnlyRemapsLostShard is the consistent-hashing property
// itself: dropping one of four members must leave every key owned by a
// surviving member exactly where it was.
func TestRingRemoveOnlyRemapsLostShard(t *testing.T) {
	r := farm.NewRing(0)
	members := []string{"node-0", "node-1", "node-2", "node-3"}
	for _, m := range members {
		r.Add(m)
	}
	const keys = 2000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}
	r.Remove("node-2")
	moved := 0
	for k, owner := range before {
		now := r.Owner(k)
		if owner == "node-2" {
			if now == "node-2" || now == "" {
				t.Fatalf("key %q still maps to the removed member", k)
			}
			moved++
			continue
		}
		if now != owner {
			t.Fatalf("key %q moved %q → %q though its owner survived", k, owner, now)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned zero of 2000 keys — ring badly skewed")
	}
}

// TestRingBalance checks virtual nodes keep the shard sizes roughly
// uniform: with the default replica count no member of a 4-node ring
// should stray past ~2x from its fair share over 8000 keys.
func TestRingBalance(t *testing.T) {
	r := farm.NewRing(0)
	const nodes, keys = 4, 8000
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := float64(keys) / nodes
	for m, n := range counts {
		if ratio := float64(n) / fair; math.Abs(ratio-1) > 1.0 {
			t.Errorf("member %s owns %d keys (%.2fx fair share)", m, n, ratio)
		}
	}
	if len(counts) != nodes {
		t.Fatalf("only %d members ever own keys, want %d", len(counts), nodes)
	}
}

// TestRingEmptyAndChurn covers the edges: an empty ring owns nothing,
// add/remove are idempotent, and a ring churned down to one member routes
// everything there.
func TestRingEmptyAndChurn(t *testing.T) {
	r := farm.NewRing(8)
	if o := r.Owner("anything"); o != "" {
		t.Fatalf("empty ring owner = %q, want empty", o)
	}
	if owners := r.Owners("anything", 3); owners != nil {
		t.Fatalf("empty ring owners = %v, want nil", owners)
	}
	r.Add("solo")
	r.Add("solo") // idempotent
	r.Remove("ghost")
	if got := r.Members(); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("members = %v, want [solo]", got)
	}
	for i := 0; i < 10; i++ {
		if o := r.Owner(fmt.Sprintf("k%d", i)); o != "solo" {
			t.Fatalf("single-member ring routed %q to %q", fmt.Sprintf("k%d", i), o)
		}
	}
	r.Remove("solo")
	if r.Len() != 0 || r.Owner("k") != "" {
		t.Fatal("ring did not drain to empty")
	}
}
