package farm

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/job_keys.golden with freshly computed keys")

// goldenJobs is the named job set whose keys are pinned on disk. The file
// is the tripwire for the persistent cache: cache keys name disk files, so
// any change to the canonical encoding must bump keyVersion AND
// DiskFormatVersion, then regenerate with
//
//	go test ./internal/farm/ -run TestKeyGoldenFile -update-golden
func goldenJobs() []struct {
	name string
	job  Job
} {
	sigmaDense := Job{
		HW: config.Default(config.SIGMASparseGEMM), Kind: Dense,
		FCMapping: mapping.FCMapping{TS: 2, TK: 2, TN: 1},
		Input:     tensor.RandomUniform(3, 1, 1, 8),
		Weights:   tensor.RandomUniform(4, 1, 4, 8),
		Seed:      3,
	}
	sigmaDense.HW.SparsityRatio = 50
	tpuConv := Job{
		HW: config.Default(config.TPUOSDense), Kind: Conv2D,
		Dims:        tensor.ConvDims{N: 1, C: 2, H: 6, W: 6, K: 4, R: 3, S: 3},
		ConvMapping: mapping.Basic(),
		Input:       tensor.RandomUniform(5, 1, 1, 2, 6, 6),
		Weights:     tensor.RandomUniform(6, 1, 4, 2, 3, 3),
		Seed:        5,
	}
	nhwcConv := convJob()
	nhwcConv.Layout = tensor.NHWC
	dryConv := Job{
		HW: config.Default(config.MAERIDenseWorkload), Kind: Conv2D, DryRun: true,
		Dims:        tensor.ConvDims{N: 1, C: 4, H: 10, W: 10, K: 8, R: 3, S: 3},
		ConvMapping: mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 2, TG: 1, TN: 1, TX: 1, TY: 1},
	}
	return []struct {
		name string
		job  Job
	}{
		{"maeri-conv-nchw", convJob()},
		{"maeri-conv-nhwc", nhwcConv},
		{"maeri-dense-dry", denseJob()},
		{"maeri-conv-dry", dryConv},
		{"sigma-dense-sparse", sigmaDense},
		{"tpu-conv", tpuConv},
	}
}

// TestKeyGoldenFile pins today's key bytes in testdata/job_keys.golden.
func TestKeyGoldenFile(t *testing.T) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# Content-addressed job keys, pinned. Regenerate ONLY together with a\n")
	fmt.Fprintf(&buf, "# keyVersion + DiskFormatVersion bump: these keys name on-disk cache files.\n")
	fmt.Fprintf(&buf, "# key version: %s   disk format: %s\n", keyVersion, DiskFormatVersion)
	for _, g := range goldenJobs() {
		fmt.Fprintf(&buf, "%s\t%s\n", g.name, mustKey(t, g.job))
	}
	path := filepath.Join("testdata", "job_keys.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden after a deliberate version bump): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("job keys changed — the disk cache format is invalidated.\nBump keyVersion (key.go) and DiskFormatVersion (codec.go), then regenerate.\n--- want\n%s--- got\n%s", want, buf.Bytes())
	}
}

// fuzzJob builds a small dry-run conv job from fuzzed parameters, clamped
// into valid ranges so Key() never errors. Dry-run jobs keep the fuzz fast:
// the key still covers HW, geometry, mapping, seed and flags.
func fuzzJob(c, h, k, r, stride, pad, tk uint8, seed int64, nhwc bool, ms uint8) Job {
	d := tensor.ConvDims{
		N: 1, C: int(c%6) + 1, H: int(h%10) + 4, W: int(h%10) + 4,
		K: int(k%8) + 1, R: int(r%3) + 1, S: int(r%3) + 1,
		StrideH: int(stride%2) + 1, StrideW: int(stride%2) + 1,
		PadH: int(pad % 3), PadW: int(pad % 3),
	}
	layout := tensor.NCHW
	if nhwc {
		layout = tensor.NHWC
	}
	cfg := config.Default(config.MAERIDenseWorkload)
	cfg.MSSize = 16 << (ms % 3)
	return Job{
		HW: cfg, Kind: Conv2D, Layout: layout, Dims: d, DryRun: true, Seed: seed,
		ConvMapping: mapping.ConvMapping{TR: d.R, TS: d.S, TC: 1, TK: int(tk%2) + 1, TG: 1, TN: 1, TX: 1, TY: 1},
	}
}

// jobsEquivalent decides semantic job equality independently of the hash:
// normalised hardware, operator identity, resolved geometry, mappings,
// seed, flags and bitwise operand contents. It is the ⇔ oracle for the
// fuzz target below.
func jobsEquivalent(a, b Job) bool {
	da, db := a.Dims, b.Dims
	if a.Kind == Conv2D {
		if da.Resolve() != nil || db.Resolve() != nil {
			return false
		}
	}
	if a.HW.Normalize() != b.HW.Normalize() {
		return false
	}
	if a.Kind != b.Kind || a.Layout != b.Layout || a.DryRun != b.DryRun || a.Seed != b.Seed {
		return false
	}
	if da != db || a.ConvMapping != b.ConvMapping || a.FCMapping != b.FCMapping {
		return false
	}
	if a.M != b.M || a.K != b.K || a.N != b.N {
		return false
	}
	return tensorBitsEqual(a.Input, b.Input) && tensorBitsEqual(a.Weights, b.Weights)
}

func tensorBitsEqual(a, b *tensor.Tensor) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if !tensor.ShapeEq(a.Shape(), b.Shape()) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Float32bits(ad[i]) != math.Float32bits(bd[i]) {
			return false
		}
	}
	return true
}

// FuzzKeyEquality asserts the content-addressing contract both ways on
// arbitrary pairs of generated jobs: equal keys ⇔ equivalent jobs. A
// violation in the ⇐ direction is a missed field (stale cache served for a
// different simulation — the dangerous one now that keys name disk files);
// in the ⇒ direction it is over-hashing (evaluation-order or
// normalisation instability).
func FuzzKeyEquality(f *testing.F) {
	f.Add(uint8(2), uint8(6), uint8(4), uint8(3), uint8(1), uint8(1), uint8(2), int64(7), false, uint8(0),
		uint8(2), uint8(6), uint8(4), uint8(3), uint8(1), uint8(1), uint8(2), int64(7), false, uint8(0))
	f.Add(uint8(2), uint8(6), uint8(4), uint8(3), uint8(1), uint8(1), uint8(2), int64(7), false, uint8(0),
		uint8(3), uint8(6), uint8(4), uint8(3), uint8(1), uint8(1), uint8(2), int64(7), false, uint8(0))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), uint8(0), int64(0), true, uint8(2),
		uint8(1), uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), uint8(0), int64(0), false, uint8(2))
	f.Fuzz(func(t *testing.T,
		c1, h1, k1, r1, s1, p1, t1 uint8, seed1 int64, l1 bool, m1 uint8,
		c2, h2, k2, r2, s2, p2, t2 uint8, seed2 int64, l2 bool, m2 uint8) {
		a := fuzzJob(c1, h1, k1, r1, s1, p1, t1, seed1, l1, m1)
		b := fuzzJob(c2, h2, k2, r2, s2, p2, t2, seed2, l2, m2)
		ka, err := a.Key()
		if err != nil {
			t.Fatalf("key of valid job errored: %v (%+v)", err, a)
		}
		kb, err := b.Key()
		if err != nil {
			t.Fatalf("key of valid job errored: %v (%+v)", err, b)
		}
		if same := jobsEquivalent(a, b); same != (ka == kb) {
			t.Fatalf("key equality (%v) disagrees with job equivalence (%v):\n  a: %+v\n  b: %+v\n  ka: %s\n  kb: %s",
				ka == kb, same, a, b, ka, kb)
		}
		// ExecWorkers is performance-only and must never split the cache.
		aw := a
		aw.ExecWorkers = int(c2)%8 + 2
		kw, err := aw.Key()
		if err != nil {
			t.Fatal(err)
		}
		if kw != ka {
			t.Fatalf("ExecWorkers changed the key: %s vs %s", kw, ka)
		}
	})
}
