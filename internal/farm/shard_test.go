package farm

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardedStoreBoundsSumToTotals pins the bound-distribution contract:
// whatever the shard count, the per-shard entry and byte bounds sum exactly
// to the configured totals.
func TestShardedStoreBoundsSumToTotals(t *testing.T) {
	for _, tc := range []struct {
		shards, maxEntries int
		maxBytes           int64
	}{
		{1, 10, 1000}, {3, 10, 1000}, {7, 100, 12345}, {16, 5, 3}, {4, 0, 0},
	} {
		s := NewShardedStore(tc.shards, tc.maxEntries, tc.maxBytes)
		var entries int
		var bytes int64
		for _, sh := range s.shards {
			entries += sh.maxEntries
			bytes += sh.maxBytes
		}
		if tc.maxEntries > 0 && entries != tc.maxEntries {
			t.Errorf("shards=%d: entry bounds sum to %d, want %d", tc.shards, entries, tc.maxEntries)
		}
		if tc.maxEntries <= 0 && entries != 0 {
			t.Errorf("shards=%d: unbounded store got entry bounds %d", tc.shards, entries)
		}
		if tc.maxBytes > 0 && bytes != tc.maxBytes {
			t.Errorf("shards=%d: byte bounds sum to %d, want %d", tc.shards, bytes, tc.maxBytes)
		}
		s.Close()
	}
}

// TestShardedStoreBehavesLikeAStore checks the Store contract end to end:
// round-trips, recency-refreshing hits, aggregate stats, and the total
// entry bound holding under keys spread across shards.
func TestShardedStoreBehavesLikeAStore(t *testing.T) {
	s := NewShardedStore(4, 64, 0)
	defer s.Close()
	res := func(i int) Result { return fakeResult(i, 4) }
	for i := 0; i < 200; i++ {
		s.Put(fmt.Sprintf("%08x-key", i), res(i))
	}
	st := s.Stats()
	if st.Entries > 64 {
		t.Fatalf("sharded store exceeded its total bound: %+v", st)
	}
	if st.Evictions == 0 || st.Puts != 200 {
		t.Fatalf("eviction accounting wrong: %+v", st)
	}
	// Whatever survived must round-trip intact.
	hits := 0
	for i := 0; i < 200; i++ {
		if got, ok := s.Get(fmt.Sprintf("%08x-key", i)); ok {
			hits++
			if got.Stats != res(i).Stats {
				t.Fatalf("key %d round-tripped wrong stats", i)
			}
		}
	}
	if hits == 0 {
		t.Fatal("nothing survived in any shard")
	}
}

// TestShardedStoreConcurrent hammers one store from many goroutines (run
// under -race in CI): per-shard locking must keep puts, hits and evictions
// coherent.
func TestShardedStoreConcurrent(t *testing.T) {
	s := NewShardedStore(8, 32, 0)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("%08x", (g*31+i)%64)
				if i%3 == 0 {
					s.Put(key, fakeResult(i, 4))
				} else {
					s.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries > 32 {
		t.Fatalf("bound exceeded under concurrency: %+v", st)
	}
}

// TestDefaultStoreShards pins the adaptive shard count: unbounded farms
// shard by core count, tiny bounds collapse to one shard so per-shard LRU
// slicing never degrades small caches.
func TestDefaultStoreShards(t *testing.T) {
	if got := defaultStoreShards(0, 0); got < 1 {
		t.Fatalf("unbounded shard count = %d", got)
	}
	if got := defaultStoreShards(3, 0); got != 1 {
		t.Fatalf("maxEntries=3 should collapse to 1 shard, got %d", got)
	}
	if got := defaultStoreShards(0, 1024); got != 1 {
		t.Fatalf("maxBytes=1KiB should collapse to 1 shard, got %d", got)
	}
	if got := defaultStoreShards(1<<20, 1<<40); got < 1 {
		t.Fatalf("large bounds shard count = %d", got)
	}
}
