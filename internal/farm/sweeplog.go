package farm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// SweepLog is the crash-safe journal behind resumable sweeps: one file per
// client sweep id recording, for each completed row of the sweep, the row's
// index and its result's content-addressed farm key. The result bytes
// themselves ride the existing disk-store machinery (CRC-framed,
// atomic-rename writes under the versioned directory); the journal only has
// to remember *which* key answers *which* row, so a reconnecting client can
// replay every journaled row straight from the cache and recompute nothing.
//
// Records are fixed-size frames appended with a single write:
//
//	u32 row | 64-byte key | u32 crc32(row+key)
//
// Each frame carries its own checksum, so a crash mid-append leaves at most
// one torn frame at the tail; OpenSweepLog discards everything from the
// first damaged frame onward (truncating the file back to the last good
// frame, exactly like the disk store's corruption-tolerant reads) and the
// lost rows are simply recomputed. Journals for distinct sweep ids never
// collide: the file name is the SHA-256 of the id, which also makes any
// client-chosen id a safe file name.
type SweepLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	rows map[int]string
}

const sweepRecordSize = 4 + 64 + 4

// SweepLogName maps a client sweep id onto its journal file name. Hashing
// rather than sanitising: ids are arbitrary client strings, and two ids that
// differ only in characters a sanitiser would strip must not share a journal.
func SweepLogName(id string) string {
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:]) + ".sweep"
}

// OpenSweepLog opens (or creates) the journal for sweep id under dir,
// replaying every intact record already on disk. The returned log owns the
// open file until Close.
func OpenSweepLog(dir, id string) (*SweepLog, error) {
	if dir == "" {
		return nil, fmt.Errorf("farm: sweep log needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: creating sweep log dir: %w", err)
	}
	path := filepath.Join(dir, SweepLogName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: opening sweep log: %w", err)
	}
	l := &SweepLog{f: f, path: path, rows: make(map[int]string)}
	good, err := l.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail a crashed writer may have left, so the next append
	// starts on a frame boundary.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("farm: truncating sweep log tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("farm: seeking sweep log: %w", err)
	}
	return l, nil
}

// replay scans the journal's frames into the row map and returns the offset
// of the first damaged (or missing) frame — the point to truncate back to.
func (l *SweepLog) replay() (int64, error) {
	b, err := io.ReadAll(l.f)
	if err != nil {
		return 0, fmt.Errorf("farm: reading sweep log: %w", err)
	}
	off := 0
	for off+sweepRecordSize <= len(b) {
		rec := b[off : off+sweepRecordSize]
		sum := crc32.ChecksumIEEE(rec[:4+64])
		if binary.LittleEndian.Uint32(rec[4+64:]) != sum {
			break
		}
		row := int(binary.LittleEndian.Uint32(rec[:4]))
		key := string(rec[4 : 4+64])
		if !validKey(key) {
			break
		}
		l.rows[row] = key
		off += sweepRecordSize
	}
	return int64(off), nil
}

// Rows returns a copy of the journaled row → key map.
func (l *SweepLog) Rows() map[int]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int]string, len(l.rows))
	for r, k := range l.rows {
		out[r] = k
	}
	return out
}

// Len returns the number of journaled rows.
func (l *SweepLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.rows)
}

// Record journals one completed row. A row recorded twice keeps the latest
// key (replay applies frames in order). Records are buffered by the OS only
// — no fsync — matching the disk store's durability stance: a power cut may
// lose the newest rows, never corrupt older ones.
func (l *SweepLog) Record(row int, key string) error {
	if row < 0 || row > 1<<30 {
		return fmt.Errorf("farm: sweep log row %d out of range", row)
	}
	if !validKey(key) {
		return fmt.Errorf("farm: sweep log key %q is not a farm cache key", key)
	}
	var rec [sweepRecordSize]byte
	binary.LittleEndian.PutUint32(rec[:4], uint32(row))
	copy(rec[4:4+64], key)
	binary.LittleEndian.PutUint32(rec[4+64:], crc32.ChecksumIEEE(rec[:4+64]))
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("farm: sweep log closed")
	}
	if _, err := l.f.Write(rec[:]); err != nil {
		return fmt.Errorf("farm: appending sweep log: %w", err)
	}
	l.rows[row] = key
	return nil
}

// Close releases the journal's file handle. The journal itself stays on
// disk so a later process can resume the sweep.
func (l *SweepLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// RemoveSweepLog deletes the journal for sweep id under dir, if present —
// the "start this sweep over" path a non-resume submission takes.
func RemoveSweepLog(dir, id string) error {
	if dir == "" {
		return nil
	}
	err := os.Remove(filepath.Join(dir, SweepLogName(id)))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
