// Package api is the STONNE-Bifrost API (§V of the paper): the boundary
// where layer information coming from the compiler (graph executor) is
// transformed into a format the simulator accepts, a fresh STONNE instance
// is configured and run, and the output is transformed back. The package
// exposes the same entry points the paper registers as TVM packed
// functions — tvm.contrib.stonne.conv2d.nchw, tvm.contrib.stonne.conv2d.nhwc
// and the dense operator — and implements each architecture's lowering:
// native NHWC convolution for MAERI, im2col GEMM for SIGMA and the TPU.
package api

import (
	"fmt"
	"time"

	"repro/internal/stonne"
	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/stonne/stats"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// computeSeconds is the per-controller compute-time histogram family: the
// wall-clock cost of one layer execution through this API boundary
// (simulator configuration, lowering and arithmetic included), labelled by
// the short controller name. Observation is lock-free and allocation-free,
// so it is always on; the /metrics endpoint exposes the family and /stats
// serves its rollups via ComputeSummaries.
var computeSeconds = map[config.ControllerType]*telemetry.Histogram{
	config.MAERIDenseWorkload: newComputeHistogram("maeri"),
	config.SIGMASparseGEMM:    newComputeHistogram("sigma"),
	config.TPUOSDense:         newComputeHistogram("tpu"),
}

func newComputeHistogram(controller string) *telemetry.Histogram {
	return telemetry.Default().Histogram("bifrost_compute_seconds",
		"Layer execution wall-clock time per controller (lowering + simulation).",
		nil, telemetry.Label{Name: "controller", Value: controller})
}

// observeCompute records one layer execution's duration for cfg's
// controller. Unknown controllers (impossible after Validate) are dropped.
func observeCompute(cfg config.HWConfig, start time.Time) {
	if h, ok := computeSeconds[cfg.Controller]; ok {
		h.Observe(time.Since(start).Seconds())
	}
}

// ComputeSummaries returns the per-controller compute-time rollups keyed by
// short controller name, for the serve layer's /stats endpoint.
func ComputeSummaries() map[string]telemetry.HistogramSummary {
	out := make(map[string]telemetry.HistogramSummary, len(computeSeconds))
	out["maeri"] = computeSeconds[config.MAERIDenseWorkload].Summary()
	out["sigma"] = computeSeconds[config.SIGMASparseGEMM].Summary()
	out["tpu"] = computeSeconds[config.TPUOSDense].Summary()
	return out
}

// ConvParams is the Nvidia-taxonomy description of a convolution
// (Table II). It is an alias of the tensor package's geometry type, re-named
// here to document the API contract.
type ConvParams = tensor.ConvDims

// Conv2DNCHW executes a convolution with an NCHW input and KCRS kernel on a
// freshly configured simulator, returning the NCHW output. The execution
// path follows §V-B:
//
//   - MAERI: the input is transposed to NHWC and the kernel to RSCK on the
//     CPU (the conversion cost is not part of the simulated cycle count),
//     the layer runs natively, and the NPQK output is transformed to NKPQ.
//   - SIGMA / TPU: the convolution is lowered to GEMM ("GEMM convolution"):
//     per group, the kernel becomes the (K/G)×(C/G·R·S) stationary matrix
//     and the im2col input the (C/G·R·S)×(N·P·Q) streaming matrix.
func Conv2DNCHW(cfg config.HWConfig, in, kernel *tensor.Tensor, d ConvParams, m mapping.ConvMapping) (*tensor.Tensor, stats.Stats, error) {
	return Conv2DNCHWWorkers(cfg, in, kernel, d, m, 1)
}

// Options tune how a layer executes without changing what it computes: the
// counters and output bytes are bitwise identical for every combination
// (enforced by the engine equivalence suites and the farmtest differential
// harness), so none of these fields participates in result cache keys.
type Options struct {
	// Workers is the worker count for the exact arithmetic of the
	// GEMM-lowered path (SIGMA / TPU): 0 or 1 keeps the serial kernel,
	// > 1 parallelises column blocks, < 0 selects GOMAXPROCS. MAERI's
	// native path is unaffected.
	Workers int

	// Reference forces the step-loop / cycle-ticked reference engines and,
	// for the GEMM-lowered architectures, the materialised im2col lowering —
	// the full pre-fast-path execution. It exists to validate the fused
	// default and is how the differential harness produces its step-loop
	// baseline.
	Reference bool

	// Pack shares a content-keyed cache of derived operand forms (packed
	// weight panels, kernel matrices, layout transposes) across layer
	// executions: a sweep over fixed weights derives each form once instead
	// of once per job. Reference runs deliberately ignore it so the
	// validation baseline stays cache-free. Outputs and counters are
	// bitwise identical with or without a cache.
	Pack *tensor.PackCache
}

// pack returns the cache the fused path may use: none in Reference mode,
// keeping the differential baseline independent of the cache.
func (o Options) pack() *tensor.PackCache {
	if o.Reference {
		return nil
	}
	return o.Pack
}

// Conv2DNCHWWorkers is Conv2DNCHW with an explicit worker count for the
// exact arithmetic of the GEMM-lowered path (SIGMA / TPU). The simulated
// counters and the output are bitwise identical for every worker count —
// tensor.ConvGEMMImplicit never changes the per-element accumulation order —
// so results cache under the same content-addressed key regardless of
// workers. workers <= 1 keeps the serial kernel; workers > 1 parallelises
// column blocks; negative selects GOMAXPROCS. MAERI's native path is
// unaffected by workers.
func Conv2DNCHWWorkers(cfg config.HWConfig, in, kernel *tensor.Tensor, d ConvParams, m mapping.ConvMapping, workers int) (*tensor.Tensor, stats.Stats, error) {
	return Conv2DNCHWOpts(cfg, in, kernel, d, m, Options{Workers: workers})
}

// Conv2DNCHWOpts is Conv2DNCHW with full execution options.
func Conv2DNCHWOpts(cfg config.HWConfig, in, kernel *tensor.Tensor, d ConvParams, m mapping.ConvMapping, opt Options) (*tensor.Tensor, stats.Stats, error) {
	if err := d.Resolve(); err != nil {
		return nil, stats.Stats{}, err
	}
	defer observeCompute(cfg, time.Now())
	sim, err := stonne.New(cfg) // a new STONNE instance per layer (§V step 3)
	if err != nil {
		return nil, stats.Stats{}, err
	}
	sim.SetReference(opt.Reference).SetPackCache(opt.pack())
	if sim.SupportsDirectConv() {
		nhwc := tensor.NCHWToNHWCCached(in, opt.pack())
		rsck := tensor.KCRSToRSCKCached(kernel, opt.pack())
		out, st, err := sim.Conv2D(nhwc, rsck, d, m)
		if err != nil {
			return nil, stats.Stats{}, err
		}
		nkpq := tensor.NPQKToNKPQ(out)
		out.Release() // transient NPQK intermediate, pooled by the engine
		return nkpq, st, nil
	}
	return convViaGEMM(sim, in, kernel, d, opt)
}

// convViaGEMM lowers a convolution to per-group GEMMs for the architectures
// without native convolution support (§V-B-2/3). The lowering is
// im2col-free: the simulator's counters are computed from the stationary
// kernel matrix and the streaming shape alone (Simulator.GEMMStats), and
// the exact arithmetic runs through the fused implicit-GEMM kernel, which
// streams kernel-window column panels block-by-block instead of
// materialising the (C/G·R·S) × (N·P·Q) matrix. The output is bitwise
// identical to the materialised path (GEMM over Im2Col): both accumulate
// each output element in ascending (C, R, S) order.
//
// The panel kernel runs with one worker by default: a layer execution is
// one job, and parallelism belongs to the layers above it (the simulation
// farm's worker pool and the wavefront graph executor), so job-level serial
// arithmetic keeps the serial paths genuinely serial and avoids
// oversubscribing a farm that is already running one job per core. Callers
// who do want intra-conv parallelism opt in per job (farm.Job.ExecWorkers,
// bifrost-serve's exec_workers) or use tensor.ConvGEMMImplicit directly;
// the result is bitwise identical either way.
func convViaGEMM(sim *stonne.Simulator, in, kernel *tensor.Tensor, d ConvParams, opt Options) (*tensor.Tensor, stats.Stats, error) {
	if opt.Reference {
		return convViaGEMMReference(sim, in, kernel, d)
	}
	p, q := d.P(), d.Q()
	cols := d.N * p * q
	var total stats.Stats
	for g := 0; g < d.G; g++ {
		km := tensor.KernelMatrixCached(kernel, d, g, opt.pack()) // (K/G) × (C/G·R·S), weight-stationary
		st, err := sim.GEMMStats(km, cols)
		if err != nil {
			return nil, stats.Stats{}, err
		}
		total.Add(st)
	}
	workers := opt.Workers
	if workers == 0 {
		workers = 1
	}
	return tensor.ConvGEMMImplicitCached(in, kernel, d, workers, opt.pack()), total, nil
}

// convViaGEMMReference is the materialised reference lowering: per group the
// full (C/G·R·S) × (N·P·Q) im2col matrix is built and the simulator's own
// GEMM — running its step-loop / cycle-ticked reference engine — computes
// both counters and product, which is then scattered into the NCHW output.
// The fused path above is proven bitwise identical to this by the farmtest
// differential harness.
func convViaGEMMReference(sim *stonne.Simulator, in, kernel *tensor.Tensor, d ConvParams) (*tensor.Tensor, stats.Stats, error) {
	p, q := d.P(), d.Q()
	pq := p * q
	cols := d.N * pq
	kg := d.K / d.G
	out := tensor.New(d.N, d.K, p, q)
	outD := out.Data()
	var total stats.Stats
	for g := 0; g < d.G; g++ {
		km := tensor.KernelMatrix(kernel, d, g)
		im := tensor.Im2Col(in, d, g)
		prod, st, err := sim.GEMM(km, im) // kg × cols
		if err != nil {
			return nil, stats.Stats{}, err
		}
		total.Add(st)
		prodD := prod.Data()
		for kk := 0; kk < kg; kk++ {
			ch := g*kg + kk
			for n := 0; n < d.N; n++ {
				copy(outD[(n*d.K+ch)*pq:(n*d.K+ch)*pq+pq], prodD[kk*cols+n*pq:kk*cols+(n+1)*pq])
			}
		}
	}
	return out, total, nil
}

// Conv2DNHWC executes a convolution with an NHWC input and RSCK kernel
// (the TensorFlow-default layouts), returning the NHWC output. MAERI runs
// it natively with no layout conversion ("the layer can be executed with
// minimal change to the data provided by TVM"); GEMM architectures reuse
// the NCHW lowering after a CPU-side transpose.
func Conv2DNHWC(cfg config.HWConfig, in, kernel *tensor.Tensor, d ConvParams, m mapping.ConvMapping) (*tensor.Tensor, stats.Stats, error) {
	return Conv2DNHWCWorkers(cfg, in, kernel, d, m, 1)
}

// Conv2DNHWCWorkers is Conv2DNHWC with an explicit worker count for the
// GEMM-lowered arithmetic; see Conv2DNCHWWorkers.
func Conv2DNHWCWorkers(cfg config.HWConfig, in, kernel *tensor.Tensor, d ConvParams, m mapping.ConvMapping, workers int) (*tensor.Tensor, stats.Stats, error) {
	return Conv2DNHWCOpts(cfg, in, kernel, d, m, Options{Workers: workers})
}

// Conv2DNHWCOpts is Conv2DNHWC with full execution options.
func Conv2DNHWCOpts(cfg config.HWConfig, in, kernel *tensor.Tensor, d ConvParams, m mapping.ConvMapping, opt Options) (*tensor.Tensor, stats.Stats, error) {
	if err := d.Resolve(); err != nil {
		return nil, stats.Stats{}, err
	}
	defer observeCompute(cfg, time.Now())
	sim, err := stonne.New(cfg)
	if err != nil {
		return nil, stats.Stats{}, err
	}
	sim.SetReference(opt.Reference).SetPackCache(opt.pack())
	if sim.SupportsDirectConv() {
		out, st, err := sim.Conv2D(in, kernel, d, m)
		if err != nil {
			return nil, stats.Stats{}, err
		}
		return out, st, nil // NPQK is NHWC for the output tensor
	}
	nchw := tensor.NHWCToNCHWCached(in, opt.pack())
	kcrs := tensor.RSCKToKCRSCached(kernel, opt.pack())
	out, st, err := convViaGEMM(sim, nchw, kcrs, d, opt)
	if err != nil {
		return nil, stats.Stats{}, err
	}
	nhwc := tensor.NCHWToNHWC(out)
	out.Release() // transient NCHW intermediate, pooled by the lowering
	return nhwc, st, nil
}

// Dense executes a fully connected layer (input [M, K] × weights [S, K] →
// [M, S]). Only the linear transformation runs on the accelerator; any
// activation stays on the CPU target (§V-A).
func Dense(cfg config.HWConfig, in, weights *tensor.Tensor, m mapping.FCMapping) (*tensor.Tensor, stats.Stats, error) {
	return DenseOpts(cfg, in, weights, m, Options{})
}

// DenseOpts is Dense with full execution options.
func DenseOpts(cfg config.HWConfig, in, weights *tensor.Tensor, m mapping.FCMapping, opt Options) (*tensor.Tensor, stats.Stats, error) {
	defer observeCompute(cfg, time.Now())
	sim, err := stonne.New(cfg)
	if err != nil {
		return nil, stats.Stats{}, err
	}
	sim.SetReference(opt.Reference).SetPackCache(opt.pack())
	return sim.Dense(in, weights, m)
}

// LayerRecord captures what a simulated layer execution reported — the
// "record the simulated cycle count and/or partial sums" step (§V step 7).
type LayerRecord struct {
	Name    string
	Op      string // "conv2d" or "dense"
	Arch    config.ControllerType
	Mapping string
	Stats   stats.Stats
}

// String renders one report line.
func (r LayerRecord) String() string {
	return fmt.Sprintf("%-12s %-7s %-22s mapping=[%s] %s", r.Name, r.Op, r.Arch, r.Mapping, r.Stats)
}
