package api

import (
	"strings"
	"testing"

	"repro/internal/stonne/config"
	"repro/internal/stonne/mapping"
	"repro/internal/tensor"
	"repro/internal/topi"
)

var convCase = tensor.ConvDims{N: 1, C: 3, H: 9, W: 9, K: 4, R: 3, S: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}

func TestConv2DNCHWAllArchitectures(t *testing.T) {
	d := convCase
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomUniform(1, 1, d.N, d.C, d.H, d.W)
	ker := tensor.RandomUniform(2, 1, d.K, d.C, d.R, d.S)
	want, err := topi.Conv2DNCHW(in, ker, d)
	if err != nil {
		t.Fatal(err)
	}
	m := mapping.ConvMapping{TR: 3, TS: 3, TC: 1, TK: 2, TG: 1, TN: 1, TX: 2, TY: 1}
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense} {
		out, st, err := Conv2DNCHW(config.Default(ct), in, ker, d, m)
		if err != nil {
			t.Fatalf("%s: %v", ct, err)
		}
		if !tensor.AllClose(want, out, 1e-3) {
			t.Fatalf("%s: conv output wrong, max diff %v", ct, tensor.MaxAbsDiff(want, out))
		}
		if st.Cycles <= 0 {
			t.Fatalf("%s: no cycles", ct)
		}
	}
}

func TestConv2DNCHWGrouped(t *testing.T) {
	d := tensor.ConvDims{N: 1, C: 4, H: 7, W: 7, K: 6, R: 3, S: 3, G: 2, PadH: 1, PadW: 1}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomUniform(5, 1, d.N, d.C, d.H, d.W)
	ker := tensor.RandomUniform(6, 1, d.K, d.C/d.G, d.R, d.S)
	want, err := topi.Conv2DNCHW(in, ker, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense} {
		out, _, err := Conv2DNCHW(config.Default(ct), in, ker, d, mapping.Basic())
		if err != nil {
			t.Fatalf("%s: %v", ct, err)
		}
		if !tensor.AllClose(want, out, 1e-3) {
			t.Fatalf("%s: grouped conv wrong, max diff %v", ct, tensor.MaxAbsDiff(want, out))
		}
	}
}

func TestConv2DNHWCMatchesNCHW(t *testing.T) {
	d := convCase
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomUniform(3, 1, d.N, d.C, d.H, d.W)
	ker := tensor.RandomUniform(4, 1, d.K, d.C, d.R, d.S)
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM} {
		cfg := config.Default(ct)
		a, _, err := Conv2DNCHW(cfg, in, ker, d, mapping.Basic())
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := Conv2DNHWC(cfg, tensor.NCHWToNHWC(in), tensor.KCRSToRSCK(ker), d, mapping.Basic())
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(a, tensor.NHWCToNCHW(b), 1e-3) {
			t.Fatalf("%s: layout paths disagree", ct)
		}
	}
}

func TestDenseAllArchitectures(t *testing.T) {
	in := tensor.RandomUniform(1, 1, 1, 48)
	w := tensor.RandomUniform(2, 1, 24, 48)
	want, err := topi.Dense(in, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, ct := range []config.ControllerType{config.MAERIDenseWorkload, config.SIGMASparseGEMM, config.TPUOSDense} {
		out, st, err := Dense(config.Default(ct), in, w, mapping.FCMapping{TS: 8, TN: 1, TK: 4})
		if err != nil {
			t.Fatalf("%s: %v", ct, err)
		}
		if !tensor.AllClose(want, out, 1e-3) {
			t.Fatalf("%s: dense wrong", ct)
		}
		if st.Outputs != 24 {
			t.Fatalf("%s: outputs = %d", ct, st.Outputs)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default(config.MAERIDenseWorkload)
	cfg.MSSize = 3
	d := convCase
	if _, _, err := Conv2DNCHW(cfg, tensor.New(1, 3, 9, 9), tensor.New(4, 3, 3, 3), d, mapping.Basic()); err == nil {
		t.Fatal("invalid hardware config must be rejected at the API boundary")
	}
	if _, _, err := Dense(cfg, tensor.New(1, 4), tensor.New(2, 4), mapping.BasicFC()); err == nil {
		t.Fatal("invalid hardware config must be rejected at the API boundary")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	d := tensor.ConvDims{N: 0, C: 1, H: 4, W: 4, K: 1, R: 3, S: 3}
	if _, _, err := Conv2DNCHW(config.Default(config.MAERIDenseWorkload), nil, nil, d, mapping.Basic()); err == nil {
		t.Fatal("invalid geometry must be rejected")
	}
	if _, _, err := Conv2DNHWC(config.Default(config.MAERIDenseWorkload), nil, nil, d, mapping.Basic()); err == nil {
		t.Fatal("invalid geometry must be rejected")
	}
}

func TestLayerRecordString(t *testing.T) {
	r := LayerRecord{Name: "conv1", Op: "conv2d", Arch: config.MAERIDenseWorkload, Mapping: "T_R=1"}
	s := r.String()
	for _, want := range []string{"conv1", "conv2d", "MAERI", "T_R=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("record string %q missing %q", s, want)
		}
	}
}

// TestComputeSummariesRecorded checks that a layer execution through the
// API boundary lands in its controller's compute-time histogram and that
// every controller appears in the rollup map.
func TestComputeSummariesRecorded(t *testing.T) {
	before := ComputeSummaries()["maeri"].Count
	d := tensor.ConvDims{N: 1, C: 2, H: 6, W: 6, K: 2, R: 3, S: 3}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomUniform(1, 1, 1, 2, 6, 6)
	w := tensor.RandomUniform(2, 1, 2, 2, 3, 3)
	if _, _, err := Conv2DNCHW(config.Default(config.MAERIDenseWorkload), in, w, d, mapping.Basic()); err != nil {
		t.Fatal(err)
	}
	sums := ComputeSummaries()
	for _, c := range []string{"maeri", "sigma", "tpu"} {
		if _, ok := sums[c]; !ok {
			t.Errorf("controller %q missing from compute summaries", c)
		}
	}
	if sums["maeri"].Count != before+1 {
		t.Errorf("maeri compute count = %d, want %d", sums["maeri"].Count, before+1)
	}
	if sums["maeri"].SumMS <= 0 {
		t.Errorf("maeri compute sum = %v ms, want > 0", sums["maeri"].SumMS)
	}
}
