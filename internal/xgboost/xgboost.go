// Package xgboost implements gradient-boosted regression trees from
// scratch: the learned cost model behind Bifrost's XGBTuner, standing in
// for the XGBoost library (Chen & Guestrin, KDD 2016) that AutoTVM uses.
// The implementation is a classic exact-greedy GBT: squared-error loss,
// depth-limited regression trees fit to residuals, shrinkage, and optional
// per-tree feature/row subsampling for variance reduction.
package xgboost

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Params configures training.
type Params struct {
	Rounds       int     // number of boosting rounds (trees)
	LearningRate float64 // shrinkage applied to every tree's output
	MaxDepth     int     // maximum tree depth
	MinSamples   int     // minimum samples to attempt a split
	Lambda       float64 // L2 regularisation on leaf values
	SubsampleRow float64 // fraction of rows sampled per tree (0 or 1 = all)
	Seed         int64
}

// DefaultParams mirrors the conservative settings AutoTVM uses for its
// transfer cost model.
func DefaultParams() Params {
	return Params{Rounds: 50, LearningRate: 0.2, MaxDepth: 4, MinSamples: 2, Lambda: 1.0, SubsampleRow: 1.0}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	value       float64
	left, right int // child indices; -1 for leaves
}

// tree is a regression tree stored as a flat node arena.
type tree struct{ nodes []node }

func (t *tree) predict(x []float64) float64 {
	i := 0
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a trained gradient-boosted ensemble.
type Model struct {
	params Params
	base   float64
	trees  []tree
}

// Train fits a model to the rows of x (features) and targets y.
func Train(x [][]float64, y []float64, p Params) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("xgboost: need matching non-empty x (%d) and y (%d)", len(x), len(y))
	}
	dim := len(x[0])
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("xgboost: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	if p.Rounds <= 0 || p.MaxDepth <= 0 || p.LearningRate <= 0 {
		return nil, fmt.Errorf("xgboost: invalid params %+v", p)
	}
	if p.MinSamples < 2 {
		p.MinSamples = 2
	}
	rng := rand.New(rand.NewSource(p.Seed))

	var base float64
	for _, v := range y {
		base += v
	}
	base /= float64(len(y))

	m := &Model{params: p, base: base}
	residual := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = base
	}
	allRows := make([]int, len(y))
	for i := range allRows {
		allRows[i] = i
	}
	for round := 0; round < p.Rounds; round++ {
		for i := range residual {
			residual[i] = y[i] - pred[i]
		}
		rows := allRows
		if p.SubsampleRow > 0 && p.SubsampleRow < 1 {
			k := int(math.Ceil(p.SubsampleRow * float64(len(y))))
			perm := rng.Perm(len(y))[:k]
			sort.Ints(perm)
			rows = perm
		}
		t := buildTree(x, residual, rows, p, 0)
		m.trees = append(m.trees, t)
		for i := range pred {
			pred[i] += p.LearningRate * t.predict(x[i])
		}
	}
	return m, nil
}

// buildTree greedily grows one regression tree on the given rows.
func buildTree(x [][]float64, target []float64, rows []int, p Params, _ int) tree {
	t := tree{}
	var grow func(rows []int, depth int) int
	grow = func(rows []int, depth int) int {
		idx := len(t.nodes)
		t.nodes = append(t.nodes, node{feature: -1, left: -1, right: -1})
		var sum float64
		for _, r := range rows {
			sum += target[r]
		}
		// Regularised leaf value.
		t.nodes[idx].value = sum / (float64(len(rows)) + p.Lambda)
		if depth >= p.MaxDepth || len(rows) < p.MinSamples {
			return idx
		}
		feature, threshold, ok := bestSplit(x, target, rows, p)
		if !ok {
			return idx
		}
		var left, right []int
		for _, r := range rows {
			if x[r][feature] <= threshold {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			return idx
		}
		t.nodes[idx].feature = feature
		t.nodes[idx].threshold = threshold
		t.nodes[idx].left = grow(left, depth+1)
		t.nodes[idx].right = grow(right, depth+1)
		return idx
	}
	grow(rows, 0)
	return t
}

// bestSplit scans every feature for the exact split minimising the
// regularised squared-error objective (maximum variance-reduction gain).
func bestSplit(x [][]float64, target []float64, rows []int, p Params) (int, float64, bool) {
	dim := len(x[0])
	var total, totalSq float64
	for _, r := range rows {
		total += target[r]
		totalSq += target[r] * target[r]
	}
	n := float64(len(rows))
	parentScore := total * total / (n + p.Lambda)

	bestGain := 1e-12
	bestFeature, bestThreshold, found := -1, 0.0, false

	type fv struct{ v, t float64 }
	vals := make([]fv, 0, len(rows))
	for f := 0; f < dim; f++ {
		vals = vals[:0]
		for _, r := range rows {
			vals = append(vals, fv{x[r][f], target[r]})
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })
		var leftSum float64
		for i := 0; i < len(vals)-1; i++ {
			leftSum += vals[i].t
			if vals[i].v == vals[i+1].v {
				continue // cannot split between equal values
			}
			nl := float64(i + 1)
			nr := n - nl
			rightSum := total - leftSum
			gain := leftSum*leftSum/(nl+p.Lambda) + rightSum*rightSum/(nr+p.Lambda) - parentScore
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (vals[i].v + vals[i+1].v) / 2
				found = true
			}
		}
	}
	return bestFeature, bestThreshold, found
}

// Predict returns the model's estimate for one feature vector.
func (m *Model) Predict(x []float64) float64 {
	out := m.base
	for i := range m.trees {
		out += m.params.LearningRate * m.trees[i].predict(x)
	}
	return out
}

// PredictBatch returns estimates for many feature vectors.
func (m *Model) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// MSE returns the mean squared error of the model on a dataset.
func (m *Model) MSE(x [][]float64, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for i, row := range x {
		d := m.Predict(row) - y[i]
		sum += d * d
	}
	return sum / float64(len(x))
}

// NumTrees returns the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }
