package xgboost

import (
	"math"
	"math/rand"
	"testing"
)

func dataset(n int, seed int64, f func([]float64) float64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		y[i] = f(x[i])
	}
	return x, y
}

func TestFitsConstant(t *testing.T) {
	x, y := dataset(50, 1, func([]float64) float64 { return 7 })
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if mse := m.MSE(x, y); mse > 1e-3 {
		t.Fatalf("constant target MSE = %v", mse)
	}
}

func TestFitsLinear(t *testing.T) {
	x, y := dataset(300, 2, func(v []float64) float64 { return 3*v[0] - 2*v[1] })
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: predicting the mean.
	var mean, varY float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		varY += (v - mean) * (v - mean)
	}
	varY /= float64(len(y))
	if mse := m.MSE(x, y); mse > varY/10 {
		t.Fatalf("linear fit MSE %v not ≪ variance %v", mse, varY)
	}
}

func TestFitsInteraction(t *testing.T) {
	if testing.Short() {
		t.Skip("100 boosting rounds on 500 samples takes ~0.1s")
	}
	// Tuning cost surfaces are highly non-linear; trees must capture x0·x1.
	x, y := dataset(500, 3, func(v []float64) float64 { return v[0] * v[1] })
	p := DefaultParams()
	p.Rounds = 100
	p.MaxDepth = 5
	m, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	var mean, varY float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		varY += (v - mean) * (v - mean)
	}
	varY /= float64(len(y))
	if mse := m.MSE(x, y); mse > varY/5 {
		t.Fatalf("interaction fit MSE %v not ≪ variance %v", mse, varY)
	}
}

func TestMoreRoundsReduceTrainError(t *testing.T) {
	x, y := dataset(200, 4, func(v []float64) float64 { return math.Sin(v[0]) * v[1] })
	short := DefaultParams()
	short.Rounds = 5
	long := DefaultParams()
	long.Rounds = 80
	m1, err := Train(x, y, short)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(x, y, long)
	if err != nil {
		t.Fatal(err)
	}
	if m2.MSE(x, y) >= m1.MSE(x, y) {
		t.Fatalf("80 rounds (%v) must beat 5 rounds (%v) on train MSE", m2.MSE(x, y), m1.MSE(x, y))
	}
}

func TestGeneralisesToHeldOut(t *testing.T) {
	x, y := dataset(400, 5, func(v []float64) float64 { return 2*v[0] + v[1]*v[1] })
	xTest, yTest := dataset(100, 6, func(v []float64) float64 { return 2*v[0] + v[1]*v[1] })
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var mean, varY float64
	for _, v := range yTest {
		mean += v
	}
	mean /= float64(len(yTest))
	for _, v := range yTest {
		varY += (v - mean) * (v - mean)
	}
	varY /= float64(len(yTest))
	if mse := m.MSE(xTest, yTest); mse > varY/2 {
		t.Fatalf("held-out MSE %v not better than mean predictor %v", mse, varY)
	}
}

func TestPredictBatch(t *testing.T) {
	x, y := dataset(50, 7, func(v []float64) float64 { return v[2] })
	m, err := Train(x, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(x[:5])
	for i, row := range x[:5] {
		if batch[i] != m.Predict(row) {
			t.Fatal("batch and single predictions must agree")
		}
	}
}

func TestSubsampling(t *testing.T) {
	x, y := dataset(200, 8, func(v []float64) float64 { return v[0] })
	p := DefaultParams()
	p.SubsampleRow = 0.5
	p.Seed = 42
	m, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != p.Rounds {
		t.Fatalf("trees = %d, want %d", m.NumTrees(), p.Rounds)
	}
	if mse := m.MSE(x, y); mse > 2 {
		t.Fatalf("subsampled fit too poor: MSE %v", mse)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	x, y := dataset(100, 9, func(v []float64) float64 { return v[0] + v[1] })
	p := DefaultParams()
	p.SubsampleRow = 0.7
	p.Seed = 5
	m1, _ := Train(x, y, p)
	m2, _ := Train(x, y, p)
	for i := range x {
		if m1.Predict(x[i]) != m2.Predict(x[i]) {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, DefaultParams()); err == nil {
		t.Fatal("empty dataset must be rejected")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, DefaultParams()); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, DefaultParams()); err == nil {
		t.Fatal("ragged features must be rejected")
	}
	p := DefaultParams()
	p.Rounds = 0
	if _, err := Train([][]float64{{1}, {2}}, []float64{1, 2}, p); err == nil {
		t.Fatal("zero rounds must be rejected")
	}
}

func TestSingleFeatureStep(t *testing.T) {
	// A step function needs only one split.
	x := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	y := []float64{0, 0, 0, 5, 5, 5}
	p := DefaultParams()
	p.Rounds = 30
	p.Lambda = 0.1
	m, err := Train(x, y, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict([]float64{2.5})-0) > 0.5 {
		t.Fatalf("left side predicts %v", m.Predict([]float64{2.5}))
	}
	if math.Abs(m.Predict([]float64{11})-5) > 0.5 {
		t.Fatalf("right side predicts %v", m.Predict([]float64{11}))
	}
}
