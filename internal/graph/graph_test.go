package graph

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

func buildTiny(t *testing.T) (*Graph, *Node) {
	t.Helper()
	g := New("tiny")
	x := g.Input("data", 1, 2, 6, 6)
	w := g.Constant("w", tensor.RandomNormal(1, 0.5, 3, 2, 3, 3))
	y := g.Conv2D("conv", x, w, Attrs{PadH: 1, PadW: 1})
	b := g.Constant("b", tensor.RandomNormal(2, 0.5, 3))
	y = g.BiasAdd("bias", y, b)
	y = g.ReLU("relu", y)
	y = g.MaxPool2D("pool", y, 2, 2, 0)
	y = g.Flatten("flat", y)
	fw := g.Constant("fw", tensor.RandomNormal(3, 0.5, 4, 27))
	y = g.Dense("fc", y, fw)
	y = g.Softmax("prob", y)
	g.MarkOutput(y)
	return g, y
}

func TestValidateOK(t *testing.T) {
	g, _ := buildTiny(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateNoOutputs(t *testing.T) {
	g := New("empty")
	g.Input("x", 1)
	if err := g.Validate(); err == nil {
		t.Fatal("graph without outputs must fail validation")
	}
}

func TestValidateArity(t *testing.T) {
	g := New("bad")
	x := g.Input("x", 1, 2)
	n := g.ReLU("r", x)
	n.Inputs = append(n.Inputs, x) // corrupt arity
	g.MarkOutput(n)
	if err := g.Validate(); err == nil {
		t.Fatal("wrong arity must fail validation")
	}
}

func TestTopoSortOrder(t *testing.T) {
	g, _ := buildTiny(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[*Node]int)
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n] {
				t.Fatalf("node %q appears before its input %q", n.Name, in.Name)
			}
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New("cycle")
	x := g.Input("x", 1, 2)
	a := g.ReLU("a", x)
	b := g.ReLU("b", a)
	a.Inputs[0] = b // introduce a cycle
	g.MarkOutput(b)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle must be detected")
	}
}

func TestTopoSortForeignNode(t *testing.T) {
	g := New("g1")
	x := g.Input("x", 1, 2)
	other := New("g2")
	foreign := other.Input("y", 1, 2)
	n := g.Add("add", x, foreign)
	g.MarkOutput(n)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("edge to foreign node must be detected")
	}
}

func TestInferShapes(t *testing.T) {
	g, out := buildTiny(t)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(out.OutShape, []int{1, 4}) {
		t.Fatalf("output shape = %v, want [1 4]", out.OutShape)
	}
}

func TestInferShapesNHWCConv(t *testing.T) {
	g := New("nhwc")
	x := g.Input("data", 1, 8, 8, 3)             // NHWC
	w := g.Constant("w", tensor.New(3, 3, 3, 5)) // RSCK
	y := g.Conv2D("conv", x, w, Attrs{DataLayout: tensor.NHWC, PadH: 1, PadW: 1})
	g.MarkOutput(y)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(y.OutShape, []int{1, 8, 8, 5}) {
		t.Fatalf("NHWC conv output = %v, want [1 8 8 5]", y.OutShape)
	}
}

func TestInferShapesDenseMismatch(t *testing.T) {
	g := New("bad")
	x := g.Input("x", 1, 10)
	w := g.Constant("w", tensor.New(4, 11))
	g.MarkOutput(g.Dense("fc", x, w))
	if err := g.InferShapes(); err == nil {
		t.Fatal("dense reduction mismatch must fail shape inference")
	}
}

func TestConvDimsOf(t *testing.T) {
	g := New("c")
	x := g.Input("x", 1, 3, 227, 227)
	w := g.Constant("w", tensor.New(96, 3, 11, 11))
	conv := g.Conv2D("conv1", x, w, Attrs{StrideH: 4, StrideW: 4})
	g.MarkOutput(conv)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	d, err := ConvDimsOf(conv)
	if err != nil {
		t.Fatal(err)
	}
	if d.P() != 55 || d.Q() != 55 || d.K != 96 {
		t.Fatalf("dims = %+v", d)
	}
	if _, err := ConvDimsOf(x); err == nil {
		t.Fatal("ConvDimsOf on non-conv must error")
	}
}

func TestExecutorEndToEnd(t *testing.T) {
	g, _ := buildTiny(t)
	ex := &Executor{Graph: g}
	in := tensor.RandomUniform(9, 1, 1, 2, 6, 6)
	outs, err := ex.Run(map[string]*tensor.Tensor{"data": in})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || !tensor.ShapeEq(outs[0].Shape(), []int{1, 4}) {
		t.Fatalf("outputs = %v", outs)
	}
	var sum float64
	for _, v := range outs[0].Data() {
		sum += float64(v)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax output must sum to 1, got %v", sum)
	}
}

func TestExecutorMissingFeed(t *testing.T) {
	g, _ := buildTiny(t)
	ex := &Executor{Graph: g}
	if _, err := ex.Run(nil); err == nil {
		t.Fatal("missing feed must error")
	}
}

func TestExecutorWrongFeedShape(t *testing.T) {
	g, _ := buildTiny(t)
	ex := &Executor{Graph: g}
	if _, err := ex.Run(map[string]*tensor.Tensor{"data": tensor.New(1, 2, 5, 5)}); err == nil {
		t.Fatal("wrong feed shape must error")
	}
}

func TestExecutorOffloadIntercepts(t *testing.T) {
	g := New("off")
	x := g.Input("x", 1, 4)
	w := g.Constant("w", tensor.RandomNormal(1, 1, 4, 4))
	y := g.Dense("fc", x, w)
	g.MarkOutput(y)
	called := 0
	ex := &Executor{
		Graph: g,
		Offload: func(n *Node, ins []*tensor.Tensor) (*tensor.Tensor, bool, error) {
			if n.Op != OpDense {
				return nil, false, nil
			}
			called++
			out := tensor.New(1, 4)
			out.Fill(7)
			return out, true, nil
		},
	}
	outs, err := ex.Run(map[string]*tensor.Tensor{"x": tensor.New(1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Fatalf("offload called %d times, want 1", called)
	}
	if outs[0].At(0, 0) != 7 {
		t.Fatal("offload result must be used")
	}
}

func TestExecutorOffloadShapeChecked(t *testing.T) {
	g := New("off")
	x := g.Input("x", 1, 4)
	w := g.Constant("w", tensor.RandomNormal(1, 1, 4, 4))
	g.MarkOutput(g.Dense("fc", x, w))
	ex := &Executor{
		Graph: g,
		Offload: func(n *Node, ins []*tensor.Tensor) (*tensor.Tensor, bool, error) {
			if n.Op != OpDense {
				return nil, false, nil
			}
			return tensor.New(2, 2), true, nil // wrong shape
		},
	}
	if _, err := ex.Run(map[string]*tensor.Tensor{"x": tensor.New(1, 4)}); err == nil {
		t.Fatal("offload returning wrong shape must be rejected")
	}
}

func TestDOTContainsNodes(t *testing.T) {
	g, _ := buildTiny(t)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "conv", "relu", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestBatchNormShapeInference(t *testing.T) {
	g := New("bn")
	x := g.Input("x", 1, 4, 5, 5)
	p := func(name string) *Node { return g.Constant(name, tensor.New(4)) }
	y := g.BatchNorm("bn", x, p("g"), p("b"), p("m"), p("v"), 1e-5)
	g.MarkOutput(y)
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(y.OutShape, []int{1, 4, 5, 5}) {
		t.Fatalf("bn shape = %v", y.OutShape)
	}
}
