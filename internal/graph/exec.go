package graph

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/topi"
)

// OffloadFunc lets a caller intercept execution of individual nodes — this
// is how the Bifrost engine redirects conv2d and dense nodes to a simulated
// accelerator. It returns (result, true, nil) when it handled the node, or
// (nil, false, nil) to fall back to the CPU operator inventory.
type OffloadFunc func(n *Node, inputs []*tensor.Tensor) (*tensor.Tensor, bool, error)

// Executor evaluates a graph on the CPU operator inventory, optionally
// diverting nodes through an OffloadFunc.
type Executor struct {
	Graph   *Graph
	Offload OffloadFunc
}

// Run evaluates the graph for the given named input feeds and returns the
// values of the graph outputs in order.
func (e *Executor) Run(feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := e.Graph.InferShapes(); err != nil {
		return nil, err
	}
	order, err := e.Graph.TopoSort()
	if err != nil {
		return nil, err
	}
	values := make(map[*Node]*tensor.Tensor, len(order))
	for _, n := range order {
		v, err := e.evalNode(n, values, feeds)
		if err != nil {
			return nil, fmt.Errorf("graph: executing node %q (%s): %w", n.Name, n.Op, err)
		}
		if !tensor.ShapeEq(v.Shape(), n.OutShape) {
			return nil, fmt.Errorf("graph: node %q produced shape %v, inferred %v", n.Name, v.Shape(), n.OutShape)
		}
		values[n] = v
	}
	outs := make([]*tensor.Tensor, len(e.Graph.Outputs))
	for i, n := range e.Graph.Outputs {
		outs[i] = values[n]
	}
	return outs, nil
}

func (e *Executor) evalNode(n *Node, values map[*Node]*tensor.Tensor, feeds map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	ins := make([]*tensor.Tensor, len(n.Inputs))
	for i, in := range n.Inputs {
		v, ok := values[in]
		if !ok {
			return nil, fmt.Errorf("input %q not yet evaluated", in.Name)
		}
		ins[i] = v
	}
	if e.Offload != nil {
		v, handled, err := e.Offload(n, ins)
		if err != nil {
			return nil, err
		}
		if handled {
			return v, nil
		}
	}
	switch n.Op {
	case OpInput:
		v, ok := feeds[n.Name]
		if !ok {
			return nil, fmt.Errorf("no feed provided for input %q", n.Name)
		}
		if !tensor.ShapeEq(v.Shape(), n.OutShape) {
			return nil, fmt.Errorf("feed for %q has shape %v, want %v", n.Name, v.Shape(), n.OutShape)
		}
		return v, nil
	case OpConstant:
		return n.Value, nil
	case OpConv2D:
		d, err := ConvDimsOf(n)
		if err != nil {
			return nil, err
		}
		if n.Attrs.DataLayout == tensor.NHWC {
			return topi.Conv2DNHWC(ins[0], ins[1], d)
		}
		return topi.Conv2DNCHW(ins[0], ins[1], d)
	case OpDense:
		return topi.Dense(ins[0], ins[1])
	case OpBiasAdd:
		return topi.BiasAdd(ins[0], ins[1])
	case OpReLU:
		return topi.ReLU(ins[0]), nil
	case OpSigmoid:
		return topi.Sigmoid(ins[0]), nil
	case OpTanh:
		return topi.Tanh(ins[0]), nil
	case OpMaxPool:
		return topi.Pool2D(ins[0], topi.MaxPool, n.Attrs.PoolKernel, n.Attrs.PoolStride, n.Attrs.PoolPad)
	case OpAvgPool:
		return topi.Pool2D(ins[0], topi.AvgPool, n.Attrs.PoolKernel, n.Attrs.PoolStride, n.Attrs.PoolPad)
	case OpSoftmax:
		return topi.Softmax(ins[0]), nil
	case OpLRN:
		return topi.LRN(ins[0], n.Attrs.LRNSize, n.Attrs.LRNAlpha, n.Attrs.LRNBeta, n.Attrs.LRNBias)
	case OpFlatten:
		return topi.Flatten(ins[0]), nil
	case OpAdd:
		return topi.Add(ins[0], ins[1])
	case OpBatchNorm:
		return topi.BatchNormInference(ins[0], ins[1], ins[2], ins[3], ins[4], n.Attrs.Epsilon)
	case OpDropout:
		return ins[0].Clone(), nil // inference-mode dropout is the identity
	}
	return nil, fmt.Errorf("no CPU implementation for op %q", n.Op)
}
