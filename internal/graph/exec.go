package graph

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/topi"
)

// OffloadFunc lets a caller intercept execution of individual nodes — this
// is how the Bifrost engine redirects conv2d and dense nodes to a simulated
// accelerator. It returns (result, true, nil) when it handled the node, or
// (nil, false, nil) to fall back to the CPU operator inventory.
type OffloadFunc func(n *Node, inputs []*tensor.Tensor) (*tensor.Tensor, bool, error)

// Executor evaluates a graph on the CPU operator inventory, optionally
// diverting nodes through an OffloadFunc.
type Executor struct {
	Graph   *Graph
	Offload OffloadFunc

	// Workers selects the execution strategy: 0 or 1 evaluates the graph
	// serially in topological order; > 1 runs wavefront scheduling, where a
	// node becomes runnable the moment all of its inputs have been
	// evaluated, so independent branches of the model execute concurrently
	// (each on its own goroutine, e.g. each submitting its own simulation
	// to the farm); < 0 selects GOMAXPROCS workers. Every node still
	// evaluates exactly once with exactly the same inputs, so the outputs
	// are bitwise identical to serial execution. With Workers > 1 the
	// Offload function must be safe for concurrent use.
	Workers int
}

// Run evaluates the graph for the given named input feeds and returns the
// values of the graph outputs in order.
func (e *Executor) Run(feeds map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	if err := e.Graph.InferShapes(); err != nil {
		return nil, err
	}
	order, err := e.Graph.TopoSort()
	if err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = len(order)
	}
	if workers > 1 {
		return e.runParallel(order, feeds, workers)
	}
	values := make(map[*Node]*tensor.Tensor, len(order))
	for _, n := range order {
		v, err := e.evalNode(n, values, feeds)
		if err != nil {
			return nil, fmt.Errorf("graph: executing node %q (%s): %w", n.Name, n.Op, err)
		}
		if !tensor.ShapeEq(v.Shape(), n.OutShape) {
			return nil, fmt.Errorf("graph: node %q produced shape %v, inferred %v", n.Name, v.Shape(), n.OutShape)
		}
		values[n] = v
	}
	outs := make([]*tensor.Tensor, len(e.Graph.Outputs))
	for i, n := range e.Graph.Outputs {
		outs[i] = values[n]
	}
	return outs, nil
}

// runParallel evaluates the graph with topo-level wavefront scheduling: a
// fixed worker pool drains a ready queue, and completing a node unlocks the
// consumers whose remaining input count drops to zero. Node evaluation is
// deterministic and every node sees exactly the inputs serial execution
// would hand it, so outputs are bit-identical to Run's serial path; only
// wall-clock time changes.
func (e *Executor) runParallel(order []*Node, feeds map[string]*tensor.Tensor, workers int) ([]*tensor.Tensor, error) {
	n := len(order)
	index := make(map[*Node]int, n)
	for i, node := range order {
		index[node] = i
	}
	values := make([]*tensor.Tensor, n)
	remaining := make([]int32, n)  // input edges not yet satisfied
	consumers := make([][]int, n) // edges out of each node (duplicates kept)
	for i, node := range order {
		remaining[i] = int32(len(node.Inputs))
		for _, in := range node.Inputs {
			j := index[in]
			consumers[j] = append(consumers[j], i)
		}
	}

	// Buffered to the node count so completion never blocks on the send.
	ready := make(chan int, n)
	for i := range order {
		if remaining[i] == 0 {
			ready <- i
		}
	}
	var pending atomic.Int32
	pending.Store(int32(n))
	var stop atomic.Bool
	var mu sync.Mutex
	firstErr := error(nil)
	firstErrIdx := n // deterministic: keep the error of the earliest topo index
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				node := order[i]
				// After a failure we stop evaluating but keep draining so
				// every queued node is accounted for and the pool exits.
				if !stop.Load() {
					ins := make([]*tensor.Tensor, len(node.Inputs))
					for j, in := range node.Inputs {
						ins[j] = values[index[in]]
					}
					v, err := e.evalNodeInputs(node, ins, feeds)
					if err == nil && !tensor.ShapeEq(v.Shape(), node.OutShape) {
						err = fmt.Errorf("graph: node %q produced shape %v, inferred %v", node.Name, v.Shape(), node.OutShape)
					} else if err != nil {
						err = fmt.Errorf("graph: executing node %q (%s): %w", node.Name, node.Op, err)
					}
					if err != nil {
						mu.Lock()
						if i < firstErrIdx {
							firstErr, firstErrIdx = err, i
						}
						mu.Unlock()
						stop.Store(true)
					} else {
						values[i] = v
					}
				}
				for _, c := range consumers[i] {
					if atomic.AddInt32(&remaining[c], -1) == 0 {
						ready <- c
					}
				}
				if pending.Add(-1) == 0 {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	outs := make([]*tensor.Tensor, len(e.Graph.Outputs))
	for i, node := range e.Graph.Outputs {
		outs[i] = values[index[node]]
	}
	return outs, nil
}

func (e *Executor) evalNode(n *Node, values map[*Node]*tensor.Tensor, feeds map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	ins := make([]*tensor.Tensor, len(n.Inputs))
	for i, in := range n.Inputs {
		v, ok := values[in]
		if !ok {
			return nil, fmt.Errorf("input %q not yet evaluated", in.Name)
		}
		ins[i] = v
	}
	return e.evalNodeInputs(n, ins, feeds)
}

// evalNodeInputs evaluates one node given its already-gathered input
// values. It is the shared core of the serial and wavefront executors.
func (e *Executor) evalNodeInputs(n *Node, ins []*tensor.Tensor, feeds map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	if e.Offload != nil {
		v, handled, err := e.Offload(n, ins)
		if err != nil {
			return nil, err
		}
		if handled {
			return v, nil
		}
	}
	switch n.Op {
	case OpInput:
		v, ok := feeds[n.Name]
		if !ok {
			return nil, fmt.Errorf("no feed provided for input %q", n.Name)
		}
		if !tensor.ShapeEq(v.Shape(), n.OutShape) {
			return nil, fmt.Errorf("feed for %q has shape %v, want %v", n.Name, v.Shape(), n.OutShape)
		}
		return v, nil
	case OpConstant:
		return n.Value, nil
	case OpConv2D:
		d, err := ConvDimsOf(n)
		if err != nil {
			return nil, err
		}
		if n.Attrs.DataLayout == tensor.NHWC {
			return topi.Conv2DNHWC(ins[0], ins[1], d)
		}
		return topi.Conv2DNCHW(ins[0], ins[1], d)
	case OpDense:
		return topi.Dense(ins[0], ins[1])
	case OpBiasAdd:
		return topi.BiasAdd(ins[0], ins[1])
	case OpReLU:
		return topi.ReLU(ins[0]), nil
	case OpSigmoid:
		return topi.Sigmoid(ins[0]), nil
	case OpTanh:
		return topi.Tanh(ins[0]), nil
	case OpMaxPool:
		return topi.Pool2D(ins[0], topi.MaxPool, n.Attrs.PoolKernel, n.Attrs.PoolStride, n.Attrs.PoolPad)
	case OpAvgPool:
		return topi.Pool2D(ins[0], topi.AvgPool, n.Attrs.PoolKernel, n.Attrs.PoolStride, n.Attrs.PoolPad)
	case OpSoftmax:
		return topi.Softmax(ins[0]), nil
	case OpLRN:
		return topi.LRN(ins[0], n.Attrs.LRNSize, n.Attrs.LRNAlpha, n.Attrs.LRNBeta, n.Attrs.LRNBias)
	case OpFlatten:
		return topi.Flatten(ins[0]), nil
	case OpAdd:
		return topi.Add(ins[0], ins[1])
	case OpBatchNorm:
		return topi.BatchNormInference(ins[0], ins[1], ins[2], ins[3], ins[4], n.Attrs.Epsilon)
	case OpDropout:
		return ins[0].Clone(), nil // inference-mode dropout is the identity
	}
	return nil, fmt.Errorf("no CPU implementation for op %q", n.Op)
}
