// Package graph implements the computational-graph intermediate
// representation that stands in for TVM's Relay IR. Deep-learning models are
// parsed/built into a Graph of operator Nodes; the Bifrost engine walks the
// graph in topological order, offloading supported operators (conv2d, dense)
// to a simulated accelerator and executing everything else on the CPU
// operator inventory.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/tensor"
)

// OpKind identifies an operator.
type OpKind string

// Operator kinds understood by the executor and the shape-inference pass.
const (
	OpInput     OpKind = "input"
	OpConstant  OpKind = "constant"
	OpConv2D    OpKind = "conv2d"
	OpDense     OpKind = "dense"
	OpBiasAdd   OpKind = "bias_add"
	OpReLU      OpKind = "relu"
	OpSigmoid   OpKind = "sigmoid"
	OpTanh      OpKind = "tanh"
	OpMaxPool   OpKind = "max_pool2d"
	OpAvgPool   OpKind = "avg_pool2d"
	OpSoftmax   OpKind = "softmax"
	OpLRN       OpKind = "lrn"
	OpFlatten   OpKind = "flatten"
	OpAdd       OpKind = "add"
	OpBatchNorm OpKind = "batch_norm"
	OpDropout   OpKind = "dropout"
)

// Attrs carries the operator attributes. Only the fields relevant to a
// node's OpKind are meaningful.
type Attrs struct {
	// Conv2D.
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int
	DataLayout       tensor.Layout // NCHW or NHWC; empty means NCHW

	// Pooling.
	PoolKernel, PoolStride, PoolPad int

	// LRN.
	LRNSize           int
	LRNAlpha, LRNBeta float64
	LRNBias           float64

	// BatchNorm.
	Epsilon float64

	// Dropout (inference no-op, kept for graph fidelity).
	Rate float64
}

// Node is a single operator application in the graph.
type Node struct {
	ID     int
	Name   string
	Op     OpKind
	Attrs  Attrs
	Inputs []*Node

	// Value holds the tensor for OpConstant nodes (weights, biases).
	Value *tensor.Tensor

	// OutShape is filled in by InferShapes.
	OutShape []int

	// FusedActivation is set by the fusion pass when a following
	// activation has been folded into this node for reporting purposes.
	FusedActivation OpKind
}

// Graph is a DAG of nodes with designated inputs and outputs.
type Graph struct {
	Name    string
	nodes   []*Node
	Inputs  []*Node
	Outputs []*Node
	nextID  int
}

// New creates an empty graph.
func New(name string) *Graph { return &Graph{Name: name} }

// Nodes returns the nodes in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NumNodes returns the number of nodes currently in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// SetNodes replaces the node list. It is used by optimisation passes that
// drop nodes (e.g. dead-node elimination); the caller is responsible for
// keeping Inputs/Outputs consistent.
func (g *Graph) SetNodes(nodes []*Node) { g.nodes = nodes }

func (g *Graph) add(n *Node) *Node {
	n.ID = g.nextID
	g.nextID++
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s_%d", n.Op, n.ID)
	}
	g.nodes = append(g.nodes, n)
	return n
}

// Input declares a named graph input with a fixed shape.
func (g *Graph) Input(name string, shape ...int) *Node {
	n := g.add(&Node{Name: name, Op: OpInput, OutShape: append([]int(nil), shape...)})
	g.Inputs = append(g.Inputs, n)
	return n
}

// Constant adds a weight/parameter node.
func (g *Graph) Constant(name string, v *tensor.Tensor) *Node {
	return g.add(&Node{Name: name, Op: OpConstant, Value: v, OutShape: append([]int(nil), v.Shape()...)})
}

// Conv2D adds a 2-D convolution of x by kernel.
func (g *Graph) Conv2D(name string, x, kernel *Node, a Attrs) *Node {
	if a.Groups == 0 {
		a.Groups = 1
	}
	if a.StrideH == 0 {
		a.StrideH = 1
	}
	if a.StrideW == 0 {
		a.StrideW = 1
	}
	if a.DataLayout == "" {
		a.DataLayout = tensor.NCHW
	}
	return g.add(&Node{Name: name, Op: OpConv2D, Attrs: a, Inputs: []*Node{x, kernel}})
}

// Dense adds a fully connected layer: out = x × Wᵀ.
func (g *Graph) Dense(name string, x, weights *Node) *Node {
	return g.add(&Node{Name: name, Op: OpDense, Inputs: []*Node{x, weights}})
}

// BiasAdd adds a per-channel bias.
func (g *Graph) BiasAdd(name string, x, bias *Node) *Node {
	return g.add(&Node{Name: name, Op: OpBiasAdd, Inputs: []*Node{x, bias}})
}

// ReLU adds a rectified linear activation.
func (g *Graph) ReLU(name string, x *Node) *Node {
	return g.add(&Node{Name: name, Op: OpReLU, Inputs: []*Node{x}})
}

// Sigmoid adds a sigmoid activation.
func (g *Graph) Sigmoid(name string, x *Node) *Node {
	return g.add(&Node{Name: name, Op: OpSigmoid, Inputs: []*Node{x}})
}

// Tanh adds a tanh activation.
func (g *Graph) Tanh(name string, x *Node) *Node {
	return g.add(&Node{Name: name, Op: OpTanh, Inputs: []*Node{x}})
}

// MaxPool2D adds a max pooling layer.
func (g *Graph) MaxPool2D(name string, x *Node, kernel, stride, pad int) *Node {
	return g.add(&Node{Name: name, Op: OpMaxPool, Attrs: Attrs{PoolKernel: kernel, PoolStride: stride, PoolPad: pad}, Inputs: []*Node{x}})
}

// AvgPool2D adds an average pooling layer.
func (g *Graph) AvgPool2D(name string, x *Node, kernel, stride, pad int) *Node {
	return g.add(&Node{Name: name, Op: OpAvgPool, Attrs: Attrs{PoolKernel: kernel, PoolStride: stride, PoolPad: pad}, Inputs: []*Node{x}})
}

// Softmax adds a softmax over the last axis.
func (g *Graph) Softmax(name string, x *Node) *Node {
	return g.add(&Node{Name: name, Op: OpSoftmax, Inputs: []*Node{x}})
}

// LRN adds AlexNet-style local response normalisation.
func (g *Graph) LRN(name string, x *Node, size int, alpha, beta, bias float64) *Node {
	return g.add(&Node{Name: name, Op: OpLRN, Attrs: Attrs{LRNSize: size, LRNAlpha: alpha, LRNBeta: beta, LRNBias: bias}, Inputs: []*Node{x}})
}

// Flatten collapses trailing dimensions.
func (g *Graph) Flatten(name string, x *Node) *Node {
	return g.add(&Node{Name: name, Op: OpFlatten, Inputs: []*Node{x}})
}

// Add adds element-wise addition.
func (g *Graph) Add(name string, a, b *Node) *Node {
	return g.add(&Node{Name: name, Op: OpAdd, Inputs: []*Node{a, b}})
}

// BatchNorm adds inference-mode batch normalisation with parameters
// (gamma, beta, mean, variance).
func (g *Graph) BatchNorm(name string, x, gamma, beta, mean, variance *Node, eps float64) *Node {
	return g.add(&Node{Name: name, Op: OpBatchNorm, Attrs: Attrs{Epsilon: eps}, Inputs: []*Node{x, gamma, beta, mean, variance}})
}

// Dropout adds an inference-mode dropout (identity) node.
func (g *Graph) Dropout(name string, x *Node, rate float64) *Node {
	return g.add(&Node{Name: name, Op: OpDropout, Attrs: Attrs{Rate: rate}, Inputs: []*Node{x}})
}

// MarkOutput designates a node as a graph output.
func (g *Graph) MarkOutput(n *Node) { g.Outputs = append(g.Outputs, n) }

// TopoSort returns nodes in a topological order (inputs before users).
// It returns an error if the graph contains a cycle or an edge to a node
// that is not part of the graph.
func (g *Graph) TopoSort() ([]*Node, error) {
	known := make(map[*Node]bool, len(g.nodes))
	for _, n := range g.nodes {
		known[n] = true
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[*Node]int, len(g.nodes))
	var order []*Node
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("graph %q: cycle through node %q", g.Name, n.Name)
		}
		if !known[n] {
			return fmt.Errorf("graph %q: edge to foreign node %q", g.Name, n.Name)
		}
		state[n] = visiting
		for _, in := range n.Inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		state[n] = done
		order = append(order, n)
		return nil
	}
	// Deterministic order: walk nodes by insertion.
	for _, n := range g.nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Validate checks structural well-formedness: arity of every node, presence
// of outputs, and acyclicity.
func (g *Graph) Validate() error {
	if len(g.Outputs) == 0 {
		return fmt.Errorf("graph %q: no outputs marked", g.Name)
	}
	arity := map[OpKind][2]int{ // min, max input counts
		OpInput: {0, 0}, OpConstant: {0, 0},
		OpConv2D: {2, 2}, OpDense: {2, 2}, OpBiasAdd: {2, 2}, OpAdd: {2, 2},
		OpReLU: {1, 1}, OpSigmoid: {1, 1}, OpTanh: {1, 1},
		OpMaxPool: {1, 1}, OpAvgPool: {1, 1}, OpSoftmax: {1, 1},
		OpLRN: {1, 1}, OpFlatten: {1, 1}, OpDropout: {1, 1},
		OpBatchNorm: {5, 5},
	}
	for _, n := range g.nodes {
		bounds, ok := arity[n.Op]
		if !ok {
			return fmt.Errorf("graph %q: node %q has unknown op %q", g.Name, n.Name, n.Op)
		}
		if len(n.Inputs) < bounds[0] || len(n.Inputs) > bounds[1] {
			return fmt.Errorf("graph %q: node %q (%s) has %d inputs, want %d..%d",
				g.Name, n.Name, n.Op, len(n.Inputs), bounds[0], bounds[1])
		}
		if n.Op == OpConstant && n.Value == nil {
			return fmt.Errorf("graph %q: constant %q has no value", g.Name, n.Name)
		}
	}
	_, err := g.TopoSort()
	return err
}

// DOT renders the graph in Graphviz format, useful for debugging models.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	nodes := append([]*Node(nil), g.nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		label := fmt.Sprintf("%s\\n%s", n.Name, n.Op)
		if n.OutShape != nil {
			label += fmt.Sprintf("\\n%v", n.OutShape)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", n.ID, label)
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
