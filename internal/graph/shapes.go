package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvDimsOf reconstructs the convolution geometry of a conv2d node from its
// input shapes and attributes. The node's inputs must already have shapes.
func ConvDimsOf(n *Node) (tensor.ConvDims, error) {
	if n.Op != OpConv2D {
		return tensor.ConvDims{}, fmt.Errorf("graph: node %q is %s, not conv2d", n.Name, n.Op)
	}
	in := n.Inputs[0].OutShape
	ker := n.Inputs[1].OutShape
	if len(in) != 4 || len(ker) != 4 {
		return tensor.ConvDims{}, fmt.Errorf("graph: conv2d %q needs 4-D input and kernel, got %v and %v", n.Name, in, ker)
	}
	var d tensor.ConvDims
	switch n.Attrs.DataLayout {
	case tensor.NCHW, "":
		d = tensor.ConvDims{N: in[0], C: in[1], H: in[2], W: in[3], K: ker[0], R: ker[2], S: ker[3]}
	case tensor.NHWC:
		// NHWC activations pair with RSCK kernels.
		d = tensor.ConvDims{N: in[0], C: in[3], H: in[1], W: in[2], K: ker[3], R: ker[0], S: ker[1]}
	default:
		return tensor.ConvDims{}, fmt.Errorf("graph: conv2d %q has unsupported layout %q", n.Name, n.Attrs.DataLayout)
	}
	d.G = n.Attrs.Groups
	d.StrideH, d.StrideW = n.Attrs.StrideH, n.Attrs.StrideW
	d.PadH, d.PadW = n.Attrs.PadH, n.Attrs.PadW
	if err := d.Resolve(); err != nil {
		return tensor.ConvDims{}, fmt.Errorf("graph: conv2d %q: %w", n.Name, err)
	}
	return d, nil
}

// InferShapes fills OutShape for every node, in topological order.
func (g *Graph) InferShapes() error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	for _, n := range order {
		if err := inferNode(n); err != nil {
			return err
		}
	}
	return nil
}

func inferNode(n *Node) error {
	shapeOf := func(i int) []int { return n.Inputs[i].OutShape }
	switch n.Op {
	case OpInput, OpConstant:
		if n.OutShape == nil {
			return fmt.Errorf("graph: %s node %q has no shape", n.Op, n.Name)
		}
		return nil
	case OpConv2D:
		d, err := ConvDimsOf(n)
		if err != nil {
			return err
		}
		if n.Attrs.DataLayout == tensor.NHWC {
			n.OutShape = []int{d.N, d.P(), d.Q(), d.K}
		} else {
			n.OutShape = []int{d.N, d.K, d.P(), d.Q()}
		}
	case OpDense:
		in, w := shapeOf(0), shapeOf(1)
		if len(in) != 2 || len(w) != 2 {
			return fmt.Errorf("graph: dense %q needs 2-D input and weights, got %v and %v", n.Name, in, w)
		}
		if in[1] != w[1] {
			return fmt.Errorf("graph: dense %q reduction mismatch: %v × %v", n.Name, in, w)
		}
		n.OutShape = []int{in[0], w[0]}
	case OpBiasAdd:
		in, b := shapeOf(0), shapeOf(1)
		var channels int
		switch len(in) {
		case 4:
			channels = in[1]
		case 2:
			channels = in[1]
		default:
			return fmt.Errorf("graph: bias_add %q unsupported input rank %d", n.Name, len(in))
		}
		if len(b) != 1 || b[0] != channels {
			return fmt.Errorf("graph: bias_add %q bias shape %v does not match channels %d", n.Name, b, channels)
		}
		n.OutShape = append([]int(nil), in...)
	case OpReLU, OpSigmoid, OpTanh, OpSoftmax, OpDropout:
		n.OutShape = append([]int(nil), shapeOf(0)...)
	case OpLRN:
		in := shapeOf(0)
		if len(in) != 4 {
			return fmt.Errorf("graph: lrn %q needs 4-D input, got %v", n.Name, in)
		}
		n.OutShape = append([]int(nil), in...)
	case OpBatchNorm:
		in := shapeOf(0)
		if len(in) != 4 {
			return fmt.Errorf("graph: batch_norm %q needs 4-D input, got %v", n.Name, in)
		}
		for i := 1; i <= 4; i++ {
			p := shapeOf(i)
			if len(p) != 1 || p[0] != in[1] {
				return fmt.Errorf("graph: batch_norm %q parameter %d shape %v does not match channels %d", n.Name, i, p, in[1])
			}
		}
		n.OutShape = append([]int(nil), in...)
	case OpMaxPool, OpAvgPool:
		in := shapeOf(0)
		if len(in) != 4 {
			return fmt.Errorf("graph: pool %q needs 4-D input, got %v", n.Name, in)
		}
		k, s, p := n.Attrs.PoolKernel, n.Attrs.PoolStride, n.Attrs.PoolPad
		if k <= 0 || s <= 0 {
			return fmt.Errorf("graph: pool %q invalid kernel=%d stride=%d", n.Name, k, s)
		}
		oh := (in[2]+2*p-k)/s + 1
		ow := (in[3]+2*p-k)/s + 1
		if oh <= 0 || ow <= 0 {
			return fmt.Errorf("graph: pool %q output would be empty", n.Name)
		}
		n.OutShape = []int{in[0], in[1], oh, ow}
	case OpFlatten:
		in := shapeOf(0)
		rest := 1
		for _, d := range in[1:] {
			rest *= d
		}
		n.OutShape = []int{in[0], rest}
	case OpAdd:
		a, b := shapeOf(0), shapeOf(1)
		if !tensor.ShapeEq(a, b) {
			return fmt.Errorf("graph: add %q shape mismatch %v vs %v", n.Name, a, b)
		}
		n.OutShape = append([]int(nil), a...)
	default:
		return fmt.Errorf("graph: no shape rule for op %q", n.Op)
	}
	return nil
}
