package graph

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
)

// branchyGraph builds a multi-branch model: one stem convolution feeding
// four independent convolution branches that are reduced pairwise by
// element-wise adds — enough width for the wavefront executor to actually
// run branches concurrently.
func branchyGraph(t testing.TB) (*Graph, map[string]*tensor.Tensor) {
	t.Helper()
	g := New("branchy")
	in := g.Input("data", 1, 4, 12, 12)
	stemW := g.Constant("stem_w", tensor.RandomUniform(1, 1, 8, 4, 3, 3))
	stem := g.Conv2D("stem", in, stemW, Attrs{PadH: 1, PadW: 1})
	var branches []*Node
	for i := 0; i < 4; i++ {
		w := g.Constant(fmt.Sprintf("b%d_w", i), tensor.RandomUniform(int64(10+i), 1, 8, 8, 3, 3))
		c := g.Conv2D(fmt.Sprintf("b%d_conv", i), stem, w, Attrs{PadH: 1, PadW: 1})
		branches = append(branches, g.ReLU(fmt.Sprintf("b%d_relu", i), c))
	}
	l := g.Add("merge_l", branches[0], branches[1])
	r := g.Add("merge_r", branches[2], branches[3])
	out := g.Add("merge", l, r)
	g.MarkOutput(out)
	feeds := map[string]*tensor.Tensor{"data": tensor.RandomUniform(99, 1, 1, 4, 12, 12)}
	return g, feeds
}

// TestParallelExecBitwiseEqual proves wavefront execution bit-identical to
// serial execution for any worker count, with and without an offload.
func TestParallelExecBitwiseEqual(t *testing.T) {
	g, feeds := branchyGraph(t)
	serial := &Executor{Graph: g}
	want, err := serial.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	// A concurrency-safe offload that handles ReLU nodes by doubling them,
	// to prove offloaded nodes follow the same path in both executors.
	var offloadCalls atomic.Int32
	offload := func(n *Node, ins []*tensor.Tensor) (*tensor.Tensor, bool, error) {
		if n.Op != OpReLU {
			return nil, false, nil
		}
		offloadCalls.Add(1)
		out := ins[0].Clone()
		for i, v := range out.Data() {
			if v < 0 {
				out.Data()[i] = 0
			}
		}
		return out, true, nil
	}
	serialOff := &Executor{Graph: g, Offload: offload}
	wantOff, err := serialOff.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{-1, 2, 8} {
		for _, tc := range []struct {
			name string
			ex   *Executor
			want []*tensor.Tensor
		}{
			{"plain", &Executor{Graph: g, Workers: workers}, want},
			{"offload", &Executor{Graph: g, Offload: offload, Workers: workers}, wantOff},
		} {
			got, err := tc.ex.Run(feeds)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("%s workers=%d: %d outputs, want %d", tc.name, workers, len(got), len(tc.want))
			}
			for oi := range got {
				for i := range got[oi].Data() {
					if got[oi].Data()[i] != tc.want[oi].Data()[i] {
						t.Fatalf("%s workers=%d: output %d element %d = %v, want %v (not bitwise identical)",
							tc.name, workers, oi, i, got[oi].Data()[i], tc.want[oi].Data()[i])
					}
				}
			}
		}
	}
}

// TestParallelExecError checks that a failing node surfaces its error and
// the executor terminates cleanly (no deadlock, no panic).
func TestParallelExecError(t *testing.T) {
	g, feeds := branchyGraph(t)
	failing := func(n *Node, ins []*tensor.Tensor) (*tensor.Tensor, bool, error) {
		if n.Name == "b2_conv" {
			return nil, false, fmt.Errorf("injected failure")
		}
		return nil, false, nil
	}
	ex := &Executor{Graph: g, Offload: failing, Workers: 4}
	if _, err := ex.Run(feeds); err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("expected injected failure, got %v", err)
	}
}

// TestParallelExecMissingFeed checks the error path for an absent input
// feed under wavefront scheduling.
func TestParallelExecMissingFeed(t *testing.T) {
	g, _ := branchyGraph(t)
	ex := &Executor{Graph: g, Workers: 4}
	if _, err := ex.Run(map[string]*tensor.Tensor{}); err == nil || !strings.Contains(err.Error(), "no feed") {
		t.Fatalf("expected missing-feed error, got %v", err)
	}
}
