package tensor

import (
	"fmt"
	"testing"
)

func testConvDims() []ConvDims {
	return []ConvDims{
		{N: 1, C: 3, H: 8, W: 8, K: 4, R: 3, S: 3, PadH: 1, PadW: 1},
		{N: 2, C: 4, H: 7, W: 9, K: 6, R: 3, S: 3, StrideH: 2, StrideW: 2},
		{N: 1, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, G: 2, PadH: 1, PadW: 1},
		{N: 2, C: 6, H: 5, W: 5, K: 6, R: 5, S: 5, G: 3, PadH: 2, PadW: 2},
		{N: 1, C: 2, H: 9, W: 9, K: 3, R: 1, S: 1, StrideH: 2, StrideW: 2},
		{N: 1, C: 3, H: 12, W: 12, K: 2, R: 3, S: 3, DilationH: 2, DilationW: 2},
	}
}

// TestIm2ColBlockMatchesIm2Col checks the block producer against the
// materialised matrix, column range by column range.
func TestIm2ColBlockMatchesIm2Col(t *testing.T) {
	for _, d := range testConvDims() {
		if err := d.Resolve(); err != nil {
			t.Fatal(err)
		}
		in := RandomUniform(11, 1, d.N, d.C, d.H, d.W)
		cg := d.C / d.G
		rows := cg * d.R * d.S
		cols := d.N * d.P() * d.Q()
		for g := 0; g < d.G; g++ {
			want := Im2Col(in, d, g)
			for _, width := range []int{1, 3, cols} {
				dst := make([]float32, rows*width)
				for col0 := 0; col0 < cols; col0 += width {
					w := min(width, cols-col0)
					Im2ColBlock(in, d, g, col0, w, dst)
					for r := 0; r < rows; r++ {
						for j := 0; j < w; j++ {
							if dst[r*w+j] != want.At(r, col0+j) {
								t.Fatalf("dims=%+v g=%d block[%d+%d] row %d col %d: got %v want %v",
									d, g, col0, j, r, col0+j, dst[r*w+j], want.At(r, col0+j))
							}
						}
					}
				}
			}
		}
	}
}

// TestConvGEMMImplicitMatchesMaterialised proves the fused lowering bitwise
// identical to the materialised GEMM-over-Im2Col composition, serial and
// parallel.
func TestConvGEMMImplicitMatchesMaterialised(t *testing.T) {
	for _, d := range testConvDims() {
		if err := d.Resolve(); err != nil {
			t.Fatal(err)
		}
		in := RandomUniform(3, 1, d.N, d.C, d.H, d.W)
		kernel := RandomUniform(4, 1, d.K, d.C/d.G, d.R, d.S)
		p, q := d.P(), d.Q()
		kg := d.K / d.G

		// Materialised reference.
		want := New(d.N, d.K, p, q)
		for g := 0; g < d.G; g++ {
			km := KernelMatrix(kernel, d, g)
			prod := GEMM(km, Im2Col(in, d, g))
			for k := 0; k < kg; k++ {
				for n := 0; n < d.N; n++ {
					for y := 0; y < p; y++ {
						for x := 0; x < q; x++ {
							want.Set(prod.At(k, (n*p+y)*q+x), n, g*kg+k, y, x)
						}
					}
				}
			}
		}

		for _, workers := range []int{1, 4} {
			got := ConvGEMMImplicit(in, kernel, d, workers)
			if !ShapeEq(got.Shape(), want.Shape()) {
				t.Fatalf("dims=%+v workers=%d: shape %v, want %v", d, workers, got.Shape(), want.Shape())
			}
			for i := range got.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("dims=%+v workers=%d: element %d = %v, want %v (not bitwise identical)",
						d, workers, i, got.Data()[i], want.Data()[i])
				}
			}
		}
	}
}

// TestGEMMParallelBitwiseEqual proves the row-band parallel GEMM bitwise
// identical to the serial kernels for awkward shapes and any worker count.
func TestGEMMParallelBitwiseEqual(t *testing.T) {
	shapes := [][3]int{{1, 1, 1}, {17, 33, 9}, {64, 64, 64}, {65, 129, 63}}
	for _, s := range shapes {
		a := RandomUniform(5, 1, s[0], s[1])
		b := RandomUniform(6, 1, s[1], s[2])
		want := GEMM(a, b)
		blocked := GEMMBlocked(a, b, 16)
		for i := range want.Data() {
			if blocked.Data()[i] != want.Data()[i] {
				t.Fatalf("shape %v: GEMMBlocked element %d differs from GEMM", s, i)
			}
		}
		for _, workers := range []int{1, 3, 16} {
			got := GEMMParallel(a, b, 16, workers)
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("shape %v workers=%d: element %d = %v, want %v (not bitwise identical)",
						s, workers, i, got.Data()[i], want.Data()[i])
				}
			}
		}
	}
}

// TestGEMMBlockedValidatesShapes locks in the satellite fix: GEMMBlocked
// must reject mismatched operands just like GEMM instead of silently
// reading out of shape.
func TestGEMMBlockedValidatesShapes(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := New(4, 5)
	b := New(6, 3) // inner dimension mismatch
	expectPanic("inner mismatch", func() { GEMMBlocked(a, b, 0) })
	expectPanic("rank", func() { GEMMBlocked(New(4), b, 0) })
	expectPanic("parallel inner mismatch", func() { GEMMParallel(a, b, 0, 2) })
}

func BenchmarkGEMMVariants(b *testing.B) {
	a := RandomUniform(1, 1, 256, 256)
	bb := RandomUniform(2, 1, 256, 256)
	for _, bench := range []struct {
		name string
		f    func() *Tensor
	}{
		{"GEMM", func() *Tensor { return GEMM(a, bb) }},
		{"GEMMBlocked", func() *Tensor { return GEMMBlocked(a, bb, 64) }},
		{"GEMMParallel", func() *Tensor { return GEMMParallel(a, bb, 64, 0) }},
	} {
		b.Run(fmt.Sprintf("%s/256", bench.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bench.f()
			}
		})
	}
}
