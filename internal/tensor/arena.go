package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the pooled tensor and scratch arenas behind the
// allocation-free steady state: size-bucketed sync.Pools of tensors and raw
// float32 scratch, so hot simulation paths (fused convolution outputs,
// im2col panels, GEMM C-tiles) recycle their buffers instead of pressuring
// the allocator once per job. Pooling is semantically invisible — a pooled
// tensor is zeroed exactly like New's — and can be bypassed wholesale for
// tests with SetPooling(false).

// poolingOff disables the arenas when set; NewPooled then behaves exactly
// like New and Release becomes a no-op. Off is the test/bisection knob, on
// is the default.
var poolingOff atomic.Bool

// SetPooling enables or disables the tensor and scratch arenas and reports
// the previous setting. It exists so tests (and the differential harness)
// can prove pooled and unpooled executions byte-identical, and as an escape
// hatch when hunting allocator-adjacent bugs.
func SetPooling(on bool) (prev bool) {
	return !poolingOff.Swap(!on)
}

// PoolingEnabled reports whether the arenas are active.
func PoolingEnabled() bool { return !poolingOff.Load() }

// bucketBits spans capacities 1<<0 .. 1<<(numBuckets-1) (≈512M elements at
// the top); larger requests fall through to plain allocation.
const numBuckets = 30

// tensorPools holds released tensors bucketed by ceil-log2 of their element
// capacity: bucket i serves requests of up to 1<<i elements.
var tensorPools [numBuckets]sync.Pool

// scratchPools holds raw []float32 scratch, same bucketing. Scratch is NOT
// zeroed on Get — callers overwrite it entirely.
var scratchPools [numBuckets]sync.Pool

// bucketFor returns the pool bucket serving n elements, or -1 when n is out
// of the pooled range.
func bucketFor(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b >= numBuckets {
		return -1
	}
	return b
}

// NewPooled returns a zero-initialised tensor with the given shape, backed
// by the tensor arena when possible: the storage comes from a released
// tensor of sufficient capacity instead of a fresh allocation. The result
// is indistinguishable from New's. The caller owns the tensor; passing it
// to Release when it goes out of scope closes the recycling loop, and
// simply dropping it is always safe (the GC reclaims it like any other
// tensor).
func NewPooled(shape ...int) *Tensor {
	if poolingOff.Load() {
		return New(shape...)
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			return New(shape...) // New panics with the canonical message
		}
		n *= d
	}
	b := bucketFor(n)
	if b < 0 {
		return New(shape...)
	}
	v := tensorPools[b].Get()
	if v == nil {
		t := &Tensor{shape: append(make([]int, 0, 8), shape...), data: make([]float32, n, 1<<b)}
		t.pooled = true
		return t
	}
	t := v.(*Tensor)
	t.shape = append(t.shape[:0], shape...)
	t.data = t.data[:n]
	clear(t.data)
	t.chash.Store(nil)
	return t
}

// Release returns a pooled tensor's storage to the arena. Only tensors
// minted by NewPooled are recycled — Release on any other tensor (including
// Reshape/FromData views, which alias storage the arena must never hand
// out twice) is a no-op. After Release the tensor must not be used; the
// caller must also guarantee no aliasing view (Reshape, Data) outlives the
// call.
func (t *Tensor) Release() {
	if t == nil || !t.pooled || poolingOff.Load() {
		return
	}
	b := bucketFor(cap(t.data))
	if b < 0 || cap(t.data) != 1<<b {
		return // capacity no longer matches a bucket; let the GC take it
	}
	tensorPools[b].Put(t)
}

// getScratch returns a []float32 of length n whose contents are
// unspecified. Pair with putScratch.
func getScratch(n int) []float32 {
	if poolingOff.Load() {
		return make([]float32, n)
	}
	b := bucketFor(n)
	if b < 0 {
		return make([]float32, n)
	}
	if v := scratchPools[b].Get(); v != nil {
		s := *v.(*[]float32)
		return s[:n]
	}
	return make([]float32, n, 1<<b)
}

// putScratch returns scratch obtained from getScratch to the arena.
func putScratch(s []float32) {
	if poolingOff.Load() {
		return
	}
	b := bucketFor(cap(s))
	if b < 0 || cap(s) != 1<<b {
		return
	}
	s = s[:0]
	scratchPools[b].Put(&s)
}

// GetScratch returns a length-n float32 scratch slice with unspecified
// contents from the shared arena; PutScratch recycles it. Exported for the
// engine packages that stage panels and accumulator tiles.
func GetScratch(n int) []float32 { return getScratch(n) }

// PutScratch returns a slice obtained from GetScratch to the arena.
func PutScratch(s []float32) { putScratch(s) }
