package tensor

import (
	"testing"
)

// TestNewPooledZeroed proves a recycled tensor indistinguishable from a
// fresh one: dirty released storage must come back zeroed, with the right
// shape, and with no stale memoized content hash.
func TestNewPooledZeroed(t *testing.T) {
	a := NewPooled(3, 4)
	for i := range a.Data() {
		a.Data()[i] = float32(i + 1)
	}
	dirtyHash := a.ContentHash()
	a.Release()

	b := NewPooled(2, 5) // same bucket, different shape
	if !ShapeEq(b.Shape(), []int{2, 5}) {
		t.Fatalf("recycled tensor shape = %v", b.Shape())
	}
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("recycled tensor not zeroed at %d: %v", i, v)
		}
	}
	if b.ContentHash() == dirtyHash {
		t.Fatal("recycled tensor kept the previous contents' hash")
	}
	zero := New(2, 5)
	if b.ContentHash() != zero.ContentHash() {
		t.Fatal("pooled zero tensor hashes differently from a fresh zero tensor")
	}
}

// TestReleaseIgnoresUnpooled pins the safety property that keeps the arena
// sound: tensors not minted by NewPooled — plain New, FromData wrappers,
// Reshape views — must never enter the pools, where their aliased storage
// could be handed out twice.
func TestReleaseIgnoresUnpooled(t *testing.T) {
	plain := New(4, 4)
	plain.Release() // must be a no-op, not a panic

	backing := make([]float32, 16)
	FromData(backing, 4, 4).Release()

	p := NewPooled(4, 4)
	view := p.Reshape(16)
	view.Release() // view is not pooled; only p itself may be released
	p.Release()

	var nilT *Tensor
	nilT.Release()
}

// TestSetPooling proves the bypass knob: with pooling off, released storage
// must not be reused.
func TestSetPooling(t *testing.T) {
	prev := SetPooling(false)
	defer SetPooling(prev)
	if PoolingEnabled() {
		t.Fatal("SetPooling(false) left pooling enabled")
	}
	a := NewPooled(8)
	a.Data()[0] = 42
	a.Release()
	b := NewPooled(8)
	if b.Data()[0] != 0 {
		t.Fatal("bypassed arena reused storage")
	}
}

// TestScratchArena pins the raw scratch contract: requested length, shared
// recycling, and no panic on foreign slices.
func TestScratchArena(t *testing.T) {
	s := GetScratch(100)
	if len(s) != 100 {
		t.Fatalf("GetScratch(100) returned len %d", len(s))
	}
	PutScratch(s)
	PutScratch(make([]float32, 33)) // odd capacity: silently dropped
	if got := GetScratch(0); len(got) != 0 {
		t.Fatalf("GetScratch(0) returned len %d", len(got))
	}
}

// TestFusedPathsPoolingEquivalence runs the fused GEMM kernels with the
// arena bypassed and enabled and requires bitwise-equal outputs — pooling
// must be semantically invisible.
func TestFusedPathsPoolingEquivalence(t *testing.T) {
	a := RandomUniform(3, 1, 40, 80)
	b := RandomUniform(4, 1, 80, 50)
	want := GEMM(a, b)

	prev := SetPooling(false)
	bypass := GEMMCached(a, b, nil)
	SetPooling(true)
	pooled1 := GEMMCached(a, b, nil)
	pooled1.Release()
	pooled2 := GEMMCached(a, b, nil) // reuses pooled1's dirty storage
	SetPooling(prev)

	for name, got := range map[string]*Tensor{"bypassed": bypass, "pooled": pooled2} {
		if i := FirstBitDiff(want, got); i != -1 {
			t.Fatalf("%s GEMM differs from reference at element %d", name, i)
		}
	}
}
