package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroInitialised(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size() = %d, want 24", x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 5)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At(1,2,3) = %v, want 42", got)
	}
	// Row-major offset must be ((1*3)+2)*5+3 = 28.
	if x.Data()[28] != 42 {
		t.Fatalf("flat offset wrong: data[28] = %v", x.Data()[28])
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds access")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromDataLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromData([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesStorage(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(7, 2, 3)
	if x.At(1, 5) != 7 {
		t.Fatal("reshape must alias storage")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(5)
}

func TestCloneIsDeep(t *testing.T) {
	x := New(4)
	x.Set(1, 0)
	y := x.Clone()
	y.Set(9, 0)
	if x.At(0) != 1 {
		t.Fatal("clone must not alias storage")
	}
}

func TestTransposeIdentity(t *testing.T) {
	x := RandomUniform(1, 1, 3, 4, 5)
	y := x.Transpose(0, 1, 2)
	if MaxAbsDiff(x, y) != 0 {
		t.Fatal("identity permutation must preserve contents")
	}
}

func TestTranspose2D(t *testing.T) {
	x := New(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			x.Set(float32(i*10+j), i, j)
		}
	}
	y := x.Transpose(1, 0)
	if !ShapeEq(y.Shape(), []int{3, 2}) {
		t.Fatalf("shape = %v, want [3 2]", y.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if y.At(j, i) != x.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4)}
		x := RandomUniform(seed, 1, shape...)
		perm := rng.Perm(4)
		inv := make([]int, 4)
		for i, p := range perm {
			inv[p] = i
		}
		y := x.Transpose(perm...).Transpose(inv...)
		return MaxAbsDiff(x, y) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutConversionsRoundTrip(t *testing.T) {
	x := RandomUniform(7, 1, 2, 3, 5, 4)
	if MaxAbsDiff(x, NHWCToNCHW(NCHWToNHWC(x))) != 0 {
		t.Fatal("NCHW→NHWC→NCHW must round-trip")
	}
	k := RandomUniform(8, 1, 6, 3, 2, 2) // KCRS
	if MaxAbsDiff(k, RSCKToKCRS(KCRSToRSCK(k))) != 0 {
		t.Fatal("KCRS→RSCK→KCRS must round-trip")
	}
	if MaxAbsDiff(x, NPQKToNKPQ(NKPQToNPQK(x))) != 0 {
		t.Fatal("NKPQ→NPQK→NKPQ must round-trip")
	}
}

func TestKernelForPairs(t *testing.T) {
	if l, err := KernelFor(NCHW); err != nil || l != KCRS {
		t.Fatalf("KernelFor(NCHW) = %v, %v", l, err)
	}
	if l, err := KernelFor(NHWC); err != nil || l != RSCK {
		t.Fatalf("KernelFor(NHWC) = %v, %v", l, err)
	}
	if _, err := KernelFor(KCRS); err == nil {
		t.Fatal("KernelFor(KCRS) should error")
	}
}

func TestPad2D(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Set(1, 0, 0, 0, 0)
	x.Set(2, 0, 0, 0, 1)
	x.Set(3, 0, 0, 1, 0)
	x.Set(4, 0, 0, 1, 1)
	y := Pad2D(x, 1, 2)
	if !ShapeEq(y.Shape(), []int{1, 1, 4, 6}) {
		t.Fatalf("shape = %v", y.Shape())
	}
	if y.At(0, 0, 1, 2) != 1 || y.At(0, 0, 2, 3) != 4 {
		t.Fatal("padded contents misplaced")
	}
	// Border must be zero.
	if y.At(0, 0, 0, 0) != 0 || y.At(0, 0, 3, 5) != 0 {
		t.Fatal("padding must be zero")
	}
}

func TestPad2DZeroIsCopy(t *testing.T) {
	x := RandomUniform(3, 1, 1, 2, 3, 3)
	y := Pad2D(x, 0, 0)
	if MaxAbsDiff(x, y) != 0 {
		t.Fatal("zero padding must preserve contents")
	}
	y.Set(99, 0, 0, 0, 0)
	if x.At(0, 0, 0, 0) == 99 {
		t.Fatal("zero padding must not alias input")
	}
}

func TestPad2DNHWCMatchesNCHW(t *testing.T) {
	x := RandomUniform(4, 1, 2, 3, 5, 4) // NCHW
	a := NCHWToNHWC(Pad2D(x, 2, 1))
	b := Pad2DNHWC(NCHWToNHWC(x), 2, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("NHWC padding must match NCHW padding after conversion")
	}
}

func TestGEMMSmall(t *testing.T) {
	a := FromData([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromData([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := GEMM(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("GEMM[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestGEMMIdentity(t *testing.T) {
	n := 5
	id := New(n, n)
	for i := 0; i < n; i++ {
		id.Set(1, i, i)
	}
	a := RandomUniform(11, 1, n, n)
	if MaxAbsDiff(GEMM(a, id), a) != 0 {
		t.Fatal("A × I must equal A")
	}
	if MaxAbsDiff(GEMM(id, a), a) != 0 {
		t.Fatal("I × A must equal A")
	}
}

func TestGEMMShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GEMM(New(2, 3), New(4, 2))
}

func TestGEMMBlockedMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		a := RandomUniform(seed, 1, m, k)
		b := RandomUniform(seed+1, 1, k, n)
		return AllClose(GEMM(a, b), GEMMBlocked(a, b, 8), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConvDimsResolve(t *testing.T) {
	d := ConvDims{N: 1, C: 3, H: 227, W: 227, K: 96, R: 11, S: 11, StrideH: 4, StrideW: 4}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	if d.P() != 55 || d.Q() != 55 {
		t.Fatalf("AlexNet conv1 output = %dx%d, want 55x55", d.P(), d.Q())
	}
	if got := d.MACs(); got != int64(96*55*55*11*11*3) {
		t.Fatalf("MACs = %d", got)
	}
}

func TestConvDimsErrors(t *testing.T) {
	cases := []ConvDims{
		{N: 0, C: 1, H: 4, W: 4, K: 1, R: 3, S: 3},
		{N: 1, C: 3, H: 4, W: 4, K: 4, R: 3, S: 3, G: 2}, // G does not divide C
		{N: 1, C: 1, H: 2, W: 2, K: 1, R: 5, S: 5},       // empty output
	}
	for i, d := range cases {
		if err := d.Resolve(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestIm2ColGEMMEqualsDirectConv(t *testing.T) {
	// Property: GEMM over im2col must match the direct convolution sum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := ConvDims{
			N: 1 + rng.Intn(2), C: 1 + rng.Intn(4), H: 5 + rng.Intn(6), W: 5 + rng.Intn(6),
			K: 1 + rng.Intn(4), R: 1 + rng.Intn(3), S: 1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2), StrideW: 1 + rng.Intn(2),
			PadH: rng.Intn(2), PadW: rng.Intn(2),
		}
		if err := d.Resolve(); err != nil {
			return true // skip invalid geometry
		}
		in := RandomUniform(seed, 1, d.N, d.C, d.H, d.W)
		ker := RandomUniform(seed+1, 1, d.K, d.C, d.R, d.S)
		cols := Im2Col(in, d, 0)
		km := KernelMatrix(ker, d, 0)
		out := GEMM(km, cols) // K × (N·P·Q)
		// Direct computation.
		for n := 0; n < d.N; n++ {
			for k := 0; k < d.K; k++ {
				for y := 0; y < d.P(); y++ {
					for x := 0; x < d.Q(); x++ {
						var acc float64
						for c := 0; c < d.C; c++ {
							for r := 0; r < d.R; r++ {
								for s := 0; s < d.S; s++ {
									iy := y*d.StrideH - d.PadH + r
									ix := x*d.StrideW - d.PadW + s
									if iy < 0 || iy >= d.H || ix < 0 || ix >= d.W {
										continue
									}
									acc += float64(in.At(n, c, iy, ix)) * float64(ker.At(k, c, r, s))
								}
							}
						}
						got := float64(out.At(k, (n*d.P()+y)*d.Q()+x))
						if math.Abs(got-acc) > 1e-3 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColGrouped(t *testing.T) {
	d := ConvDims{N: 1, C: 4, H: 6, W: 6, K: 4, R: 3, S: 3, G: 2}
	if err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	in := RandomUniform(5, 1, 1, 4, 6, 6)
	// Group 1's im2col must only read channels 2..3.
	zeroFirst := in.Clone()
	for c := 0; c < 2; c++ {
		for y := 0; y < 6; y++ {
			for x := 0; x < 6; x++ {
				zeroFirst.Set(0, 0, c, y, x)
			}
		}
	}
	a := Im2Col(in, d, 1)
	b := Im2Col(zeroFirst, d, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("group 1 im2col must not depend on group 0 channels")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := RandomNormal(42, 1, 10, 10)
	b := RandomNormal(42, 1, 10, 10)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed must give same tensor")
	}
	c := RandomNormal(43, 1, 10, 10)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestPruneReachesTargetSparsity(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.9, 1} {
		x := RandomNormal(1, 1, 64, 64)
		Prune(x, frac)
		got := x.Sparsity()
		if math.Abs(got-frac) > 0.01 {
			t.Fatalf("Prune(%.2f): sparsity = %.3f", frac, got)
		}
	}
}

func TestPruneKeepsLargest(t *testing.T) {
	x := FromData([]float32{0.1, -5, 0.2, 4, -0.3, 3}, 6)
	Prune(x, 0.5)
	if x.At(1) != -5 || x.At(3) != 4 || x.At(5) != 3 {
		t.Fatalf("large magnitudes must survive: %v", x.Data())
	}
	if x.At(0) != 0 || x.At(2) != 0 || x.At(4) != 0 {
		t.Fatalf("small magnitudes must be zeroed: %v", x.Data())
	}
}

func TestSparsityAndNNZ(t *testing.T) {
	x := FromData([]float32{0, 1, 0, 2}, 4)
	if x.NNZ() != 2 {
		t.Fatalf("NNZ = %d", x.NNZ())
	}
	if x.Sparsity() != 0.5 {
		t.Fatalf("Sparsity = %v", x.Sparsity())
	}
}

func TestAllClose(t *testing.T) {
	a := FromData([]float32{1, 2}, 2)
	b := FromData([]float32{1.0001, 2.0001}, 2)
	if !AllClose(a, b, 1e-3) {
		t.Fatal("expected close")
	}
	if AllClose(a, b, 1e-6) {
		t.Fatal("expected not close at tight tolerance")
	}
	if AllClose(a, FromData([]float32{1}, 1), 1) {
		t.Fatal("shape mismatch must not be close")
	}
}

func TestStringer(t *testing.T) {
	if s := New(1, 3, 224, 224).String(); s != "Tensor[1 3 224 224]" {
		t.Fatalf("String() = %q", s)
	}
}
