package tensor

import "fmt"

// Layout identifies the memory ordering of a 4-D activation or kernel
// tensor, following the taxonomy in §V-B of the Bifrost paper.
type Layout string

// Activation and kernel layouts supported by the STONNE-Bifrost API.
// NCHW/KCRS are the PyTorch defaults; NHWC/RSCK the TensorFlow defaults.
const (
	NCHW Layout = "NCHW"
	NHWC Layout = "NHWC"
	KCRS Layout = "KCRS"
	RSCK Layout = "RSCK"
)

// KernelFor returns the kernel layout conventionally paired with an
// activation layout (NCHW→KCRS, NHWC→RSCK).
func KernelFor(l Layout) (Layout, error) {
	switch l {
	case NCHW:
		return KCRS, nil
	case NHWC:
		return RSCK, nil
	}
	return "", fmt.Errorf("tensor: no kernel layout paired with %q", l)
}

// Transpose returns a new tensor with dimensions permuted by perm, so that
// out.shape[i] == t.shape[perm[i]].
func (t *Tensor) Transpose(perm ...int) *Tensor {
	r := t.Rank()
	if len(perm) != r {
		panic(fmt.Sprintf("tensor: permutation %v does not match rank %d", perm, r))
	}
	seen := make([]bool, r)
	outShape := make([]int, r)
	for i, p := range perm {
		if p < 0 || p >= r || seen[p] {
			panic(fmt.Sprintf("tensor: invalid permutation %v", perm))
		}
		seen[p] = true
		outShape[i] = t.shape[p]
	}
	out := New(outShape...)
	// Strides of the input, row-major.
	inStride := make([]int, r)
	s := 1
	for i := r - 1; i >= 0; i-- {
		inStride[i] = s
		s *= t.shape[i]
	}
	// Walk output in row-major order, computing the source offset.
	idx := make([]int, r)
	for o := range out.data {
		src := 0
		for i := 0; i < r; i++ {
			src += idx[i] * inStride[perm[i]]
		}
		out.data[o] = t.data[src]
		for i := r - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < outShape[i] {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

// Transpose2DCached returns t.Transpose(1, 0) for a 2-D tensor, served
// from the content-keyed pack cache when one is supplied — e.g. the TPU
// dense lowering transposing the same weight matrix once per sweep instead
// of once per job. The cached tensor is shared and must be treated as
// read-only.
func Transpose2DCached(t *Tensor, cache *PackCache) *Tensor {
	if cache == nil {
		return t.Transpose(1, 0)
	}
	key := PackKey{Op: "tensor/transpose10/v1", Hash: t.ContentHash(),
		P: [6]int{t.Dim(0), t.Dim(1)}}
	return cache.GetOrBuild(key, func() *Tensor { return t.Transpose(1, 0) })
}

// KCRSToRSCKCached returns KCRSToRSCK(t), served from the content-keyed
// pack cache when one is supplied (the MAERI NCHW lowering converts the
// same kernel once per sweep instead of once per job). Shared, read-only.
func KCRSToRSCKCached(t *Tensor, cache *PackCache) *Tensor {
	if cache == nil {
		return KCRSToRSCK(t)
	}
	key := PackKey{Op: "tensor/kcrs2rsck/v1", Hash: t.ContentHash(),
		P: [6]int{t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)}}
	return cache.GetOrBuild(key, func() *Tensor { return KCRSToRSCK(t) })
}

// RSCKToKCRSCached returns RSCKToKCRS(t), content-cached like
// KCRSToRSCKCached. Shared, read-only.
func RSCKToKCRSCached(t *Tensor, cache *PackCache) *Tensor {
	if cache == nil {
		return RSCKToKCRS(t)
	}
	key := PackKey{Op: "tensor/rsck2kcrs/v1", Hash: t.ContentHash(),
		P: [6]int{t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)}}
	return cache.GetOrBuild(key, func() *Tensor { return RSCKToKCRS(t) })
}

// NCHWToNHWCCached returns NCHWToNHWC(t), content-cached like the kernel
// conversions: a mapping sweep converts each layer input once per sweep
// pass instead of once per job. Shared, read-only.
func NCHWToNHWCCached(t *Tensor, cache *PackCache) *Tensor {
	if cache == nil {
		return NCHWToNHWC(t)
	}
	key := PackKey{Op: "tensor/nchw2nhwc/v1", Hash: t.ContentHash(),
		P: [6]int{t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)}}
	return cache.GetOrBuild(key, func() *Tensor { return NCHWToNHWC(t) })
}

// NHWCToNCHWCached returns NHWCToNCHW(t), content-cached like
// NCHWToNHWCCached. Shared, read-only.
func NHWCToNCHWCached(t *Tensor, cache *PackCache) *Tensor {
	if cache == nil {
		return NHWCToNCHW(t)
	}
	key := PackKey{Op: "tensor/nhwc2nchw/v1", Hash: t.ContentHash(),
		P: [6]int{t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)}}
	return cache.GetOrBuild(key, func() *Tensor { return NHWCToNCHW(t) })
}

// NCHWToNHWC converts an activation tensor from NCHW to NHWC.
func NCHWToNHWC(t *Tensor) *Tensor { return t.Transpose(0, 2, 3, 1) }

// NHWCToNCHW converts an activation tensor from NHWC to NCHW.
func NHWCToNCHW(t *Tensor) *Tensor { return t.Transpose(0, 3, 1, 2) }

// KCRSToRSCK converts a kernel tensor from KCRS to RSCK.
func KCRSToRSCK(t *Tensor) *Tensor { return t.Transpose(2, 3, 1, 0) }

// RSCKToKCRS converts a kernel tensor from RSCK to KCRS.
func RSCKToKCRS(t *Tensor) *Tensor { return t.Transpose(3, 2, 0, 1) }

// NPQKToNKPQ converts a simulator output (NPQK, the MAERI native order) back
// to the NKPQ (= NCHW) order expected by the graph executor.
func NPQKToNKPQ(t *Tensor) *Tensor { return t.Transpose(0, 3, 1, 2) }

// NKPQToNPQK converts an NCHW-style output to the MAERI NPQK order.
func NKPQToNPQK(t *Tensor) *Tensor { return t.Transpose(0, 2, 3, 1) }

// Pad2D zero-pads the two spatial dimensions of a 4-D NCHW tensor by padH
// rows on top/bottom and padW columns on left/right.
func Pad2D(t *Tensor, padH, padW int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Pad2D requires a 4-D tensor, got %v", t.shape))
	}
	if padH == 0 && padW == 0 {
		return t.Clone()
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	out := New(n, c, h+2*padH, w+2*padW)
	oh, ow := h+2*padH, w+2*padW
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			srcBase := (in*c + ic) * h * w
			dstBase := (in*c+ic)*oh*ow + padH*ow + padW
			for y := 0; y < h; y++ {
				copy(out.data[dstBase+y*ow:dstBase+y*ow+w], t.data[srcBase+y*w:srcBase+(y+1)*w])
			}
		}
	}
	return out
}

// Pad2DNHWC zero-pads the spatial dimensions of an NHWC tensor.
func Pad2DNHWC(t *Tensor, padH, padW int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Pad2DNHWC requires a 4-D tensor, got %v", t.shape))
	}
	if padH == 0 && padW == 0 {
		return t.Clone()
	}
	return NCHWToNHWC(Pad2D(NHWCToNCHW(t), padH, padW))
}
