package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the fused, im2col-free GEMM lowering of convolution:
// instead of materialising the full (C/G·R·S) × (N·P·Q) im2col matrix, the
// streaming operand is produced one column block at a time and multiplied
// against the kernel matrix while still hot in cache. Peak memory drops
// from O(C·R·S·N·P·Q) to O(C·R·S·blockCols) per worker, and column blocks
// are processed by parallel workers.

// im2colBlockCols is the number of output positions one panel covers. 256
// columns keeps a 3×3×256-channel panel comfortably inside L2 while leaving
// enough arithmetic per panel to amortise the fill.
const im2colBlockCols = 256

// colCoord is one output position resolved to its batch and top-left input
// coordinates, the per-column state Im2ColBlock sweeps.
type colCoord struct{ n, iy0, ix0 int }

// coordPool recycles Im2ColBlock's per-panel coordinate scratch so the
// steady-state implicit-GEMM path allocates nothing per block.
var coordPool = sync.Pool{New: func() any { s := make([]colCoord, 0, im2colBlockCols); return &s }}

// Im2ColBlock fills dst with the columns [col0, col0+width) of the im2col
// matrix Im2Col(in, d, g) — rows × width, row-major, rows = C/G·R·S. The
// column index enumerates output positions in (N, P, Q) order, exactly as
// Im2Col does. dst must have room for rows × width values.
func Im2ColBlock(in *Tensor, d ConvDims, g, col0, width int, dst []float32) {
	if err := d.Resolve(); err != nil {
		panic(err)
	}
	cg := d.C / d.G
	p, q := d.P(), d.Q()
	rows := cg * d.R * d.S
	if len(dst) < rows*width {
		panic(fmt.Sprintf("tensor: Im2ColBlock dst holds %d values, needs %d", len(dst), rows*width))
	}
	// Decompose each column into its (batch, output-row, output-col)
	// coordinates once, then sweep the kernel-window rows.
	cp := coordPool.Get().(*[]colCoord)
	defer coordPool.Put(cp)
	if cap(*cp) < width {
		*cp = make([]colCoord, width)
	}
	coords := (*cp)[:width]
	for j := 0; j < width; j++ {
		col := col0 + j
		n := col / (p * q)
		rem := col % (p * q)
		y := rem / q
		x := rem % q
		coords[j] = colCoord{
			n:   n,
			iy0: y*d.StrideH - d.PadH,
			ix0: x*d.StrideW - d.PadW,
		}
	}
	inD := in.Data()
	hw := d.H * d.W
	for c := 0; c < cg; c++ {
		ic := g*cg + c
		for r := 0; r < d.R; r++ {
			dy := r * d.DilationH
			for s := 0; s < d.S; s++ {
				dx := s * d.DilationW
				row := (c*d.R+r)*d.S + s
				seg := dst[row*width : (row+1)*width]
				for j, cc := range coords {
					iy := cc.iy0 + dy
					ix := cc.ix0 + dx
					if iy >= 0 && iy < d.H && ix >= 0 && ix < d.W {
						seg[j] = inD[(cc.n*d.C+ic)*hw+iy*d.W+ix]
					} else {
						seg[j] = 0
					}
				}
			}
		}
	}
}

// ConvGEMMImplicit computes a grouped 2-D convolution of an NCHW input with
// a KCRS kernel, returning the NCHW output, via implicit GEMM: per group,
// the kernel matrix multiplies im2col column panels that are generated
// block-by-block and never materialised as a whole. Panels are distributed
// over `workers` goroutines (workers <= 0 selects GOMAXPROCS); each output
// element is written by exactly one worker and accumulated in ascending
// (C, R, S) order with zero kernel weights skipped, so the result is
// bitwise identical to GEMM(KernelMatrix(kernel, d, g), Im2Col(in, d, g))
// regardless of the worker count.
func ConvGEMMImplicit(in, kernel *Tensor, d ConvDims, workers int) *Tensor {
	return ConvGEMMImplicitCached(in, kernel, d, workers, nil)
}

// KernelMatrixCached returns KernelMatrix(kernel, d, g), serving the
// flattened matrix from the content-keyed pack cache when one is supplied:
// sweep jobs sharing weights flatten each group's kernel once. The result
// is shared and must be treated as read-only.
func KernelMatrixCached(kernel *Tensor, d ConvDims, g int, cache *PackCache) *Tensor {
	if cache == nil {
		return KernelMatrix(kernel, d, g)
	}
	key := PackKey{Op: "conv/kernelmatrix/v1", Hash: kernel.ContentHash(),
		P: [6]int{g, d.K, d.C, d.R, d.S, d.G}}
	return cache.GetOrBuild(key, func() *Tensor { return KernelMatrix(kernel, d, g) })
}

// ConvGEMMImplicitCached is ConvGEMMImplicit with a content-keyed pack
// cache for the per-group kernel matrices, and pooled panel / accumulator
// scratch either way. A nil cache only changes where the kernel matrix
// comes from, never the arithmetic: outputs are bitwise identical.
func ConvGEMMImplicitCached(in, kernel *Tensor, d ConvDims, workers int, cache *PackCache) *Tensor {
	if err := d.Resolve(); err != nil {
		panic(err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p, q := d.P(), d.Q()
	cg, kg := d.C/d.G, d.K/d.G
	rows := cg * d.R * d.S
	cols := d.N * p * q
	pq := p * q
	out := NewPooled(d.N, d.K, p, q)
	outD := out.Data()

	nBlocks := (cols + im2colBlockCols - 1) / im2colBlockCols
	for g := 0; g < d.G; g++ {
		km := KernelMatrixCached(kernel, d, g, cache) // kg × rows, weight-stationary
		kmD := km.Data()
		kgBase := g * kg
		// Dense kernels take the packed register-blocked micro-kernel;
		// pruned ones (the SIGMA lowering) keep the skip-zero axpy loop.
		// Both accumulate each output element in ascending (C, R, S) order
		// in one running chain, so the result is bitwise identical.
		packed := packedWorthIt(kg, rows, min(im2colBlockCols, cols)) && !sparseWorthSkipping(kmD)

		run := func(panel, acc []float32, block int) {
			col0 := block * im2colBlockCols
			width := min(im2colBlockCols, cols-col0)
			Im2ColBlock(in, d, g, col0, width, panel[:rows*width])
			acc = acc[:kg*width]
			for i := range acc {
				acc[i] = 0
			}
			if packed {
				gemmPackedAccum(kmD, panel[:rows*width], acc, kg, rows, width)
			} else {
				for kk := 0; kk < kg; kk++ {
					wrow := kmD[kk*rows : (kk+1)*rows]
					crow := acc[kk*width : (kk+1)*width]
					for l, wv := range wrow {
						if wv == 0 {
							continue
						}
						brow := panel[l*width : (l+1)*width]
						for j := range crow {
							crow[j] += wv * brow[j]
						}
					}
				}
			}
			// Scatter the block into the NCHW output: column col maps to
			// batch col/(P·Q) and plane offset col%(P·Q), so each row of
			// acc copies out in contiguous runs within one batch.
			for kk := 0; kk < kg; kk++ {
				ch := kgBase + kk
				j := 0
				for j < width {
					col := col0 + j
					n := col / pq
					rem := col % pq
					runLen := min(width-j, pq-rem)
					dst := outD[(n*d.K+ch)*pq+rem:]
					copy(dst[:runLen], acc[kk*width+j:kk*width+j+runLen])
					j += runLen
				}
			}
		}

		nw := min(workers, nBlocks)
		if nw <= 1 {
			panel := getScratch(rows * im2colBlockCols)
			acc := getScratch(kg * im2colBlockCols)
			for b := 0; b < nBlocks; b++ {
				run(panel, acc, b)
			}
			putScratch(acc)
			putScratch(panel)
			continue
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				panel := getScratch(rows * im2colBlockCols)
				acc := getScratch(kg * im2colBlockCols)
				for {
					b := int(next.Add(1)) - 1
					if b >= nBlocks {
						putScratch(acc)
						putScratch(panel)
						return
					}
					run(panel, acc, b)
				}
			}()
		}
		wg.Wait()
	}
	return out
}
