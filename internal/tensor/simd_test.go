package tensor

import (
	"math"
	"testing"
)

// TestSIMDKernelsMatchFallback pins the AVX micro-kernels to their pure-Go
// specification bit for bit, across lengths that exercise the unrolled and
// remainder paths. On machines without AVX the dispatch and the fallback are
// the same code and the test passes trivially.
func TestSIMDKernelsMatchFallback(t *testing.T) {
	if !hasAVX {
		t.Log("no AVX: dispatch equals fallback by construction")
	}
	for _, k := range []int{1, 2, 3, 7, 8, 9, 64, 255, 256} {
		a := RandomUniform(int64(k), 1, k).Data()
		b := RandomUniform(int64(k)+100, 1, k*8).Data()
		cWant := RandomUniform(7, 1, 8).Data()
		cGot := append([]float32(nil), cWant...)

		dot8CarryGo(k, a, b, cWant)
		dot8Carry(k, a, b, cGot)
		for j := range cWant {
			if math.Float32bits(cWant[j]) != math.Float32bits(cGot[j]) {
				t.Fatalf("dot8Carry k=%d lane %d: %v (%08x) vs fallback %v (%08x)",
					k, j, cGot[j], math.Float32bits(cGot[j]), cWant[j], math.Float32bits(cWant[j]))
			}
		}
	}
	for _, nv := range []int{1, 2, 3, 9, 36} {
		for _, nblocks := range []int{1, 2, 5, 32} {
			a := RandomUniform(int64(nv), 1, nv).Data()
			panel := RandomUniform(int64(nblocks), 1, nblocks*nv*8).Data()
			dWant := RandomUniform(9, 1, nblocks*8).Data()
			dGot := append([]float32(nil), dWant...)

			panelDot8Go(nv, nblocks, a, panel, dWant)
			panelDot8(nv, nblocks, a, panel, dGot)
			for j := range dWant {
				if math.Float32bits(dWant[j]) != math.Float32bits(dGot[j]) {
					t.Fatalf("panelDot8 nv=%d nblocks=%d lane %d: %v vs fallback %v",
						nv, nblocks, j, dGot[j], dWant[j])
				}
			}
		}
	}
}

// TestPackedGEMMWithoutAVX forces the pure-Go kernels and re-checks the
// packed route against the reference loop, so the fallback stays proven on
// machines where CI only ever runs the AVX path.
func TestPackedGEMMWithoutAVX(t *testing.T) {
	if !hasAVX {
		t.Skip("already running without AVX")
	}
	hasAVX = false
	defer func() { hasAVX = true }()

	a := RandomUniform(1, 1, 97, 130)
	b := RandomUniform(2, 1, 130, 61)
	want := refGEMM(a, b)
	got := GEMM(a, b)
	if i := FirstBitDiff(want, got); i >= 0 {
		t.Fatalf("fallback packed GEMM diverges at element %d", i)
	}
}
