package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// GEMM computes C = A × B for 2-D tensors A (M×K) and B (K×N).
// This is the matrix multiply used by the CPU target and by the GEMM
// lowering of convolutions for the SIGMA and TPU architectures. Large dense
// problems route through the packed register-blocked micro-kernel
// (packgemm.go); small or sparse-stationary ones stay on the skip-zero
// reference loop. Every route accumulates each output element in ascending-K
// order in one running chain, so the float32 result is bitwise identical
// regardless of which kernel ran (pinned by TestPackedGEMMBitwiseEqual).
func GEMM(a, b *Tensor) *Tensor {
	m, k, n := gemmDims(a, b)
	out := New(m, n)
	gemmAuto(a.data, b.data, out.data, m, k, n, 0)
	return out
}

// GEMMCached is GEMM with a content-keyed pack cache: when the dense packed
// route runs, B's micro-panels are looked up in (or published to) cache
// instead of repacked, so repeated multiplies against the same operand —
// sweep jobs sharing network weights — pack it exactly once. A nil cache,
// and every route decision, leaves the arithmetic identical to GEMM's; the
// result is bitwise equal in all cases. The output tensor comes from the
// pooled arena (indistinguishable from a fresh one; callers that finish
// with it may Release it).
func GEMMCached(a, b *Tensor, cache *PackCache) *Tensor {
	m, k, n := gemmDims(a, b)
	out := NewPooled(m, n)
	if cache == nil || !packedWorthIt(m, k, n) || sparseWorthSkipping(a.data) {
		gemmAuto(a.data, b.data, out.data, m, k, n, 0)
		return out
	}
	gemmPackedCached(a.data, b, out.data, k, n, 0, m, cache)
	return out
}

// gemmDims validates a GEMM operand pair and returns (M, K, N).
func gemmDims(a, b *Tensor) (int, int, int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: GEMM requires 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: GEMM inner dimensions differ: %v × %v", a.shape, b.shape))
	}
	return m, k, n
}

// gemmAuto accumulates c += a × b, picking the packed micro-kernel for
// problems where its packing preamble pays off and the reference skip-zero
// loop otherwise (tiny shapes, or a stationary operand sparse enough that
// skipping whole zero rows beats dense register tiling). kc <= 0 selects the
// tuned K-panel size.
func gemmAuto(a, b, c []float32, m, k, n, kc int) {
	if !packedWorthIt(m, k, n) || sparseWorthSkipping(a) {
		gemmRows(a, b, c, 0, m, k, n, 0)
		return
	}
	gemmPackedRange(a, b, c, k, n, 0, m, kc)
}

// GEMMBlocked computes C = A × B with explicit cache blocking: block sizes
// the K panel of the packed micro-kernel (block <= 0 selects the tuned
// default, so GEMMBlocked(a, b, 0) ≡ GEMM(a, b) on the dense route). The
// per-element summation order — ascending K in one running chain — and
// therefore the float32 result is bitwise identical to GEMM's for every
// block size.
func GEMMBlocked(a, b *Tensor, block int) *Tensor {
	m, k, n := gemmDims(a, b)
	out := New(m, n)
	gemmAuto(a.data, b.data, out.data, m, k, n, block)
	return out
}

// GEMMParallel computes C = A × B with row-band worker goroutines over the
// packed micro-kernel: the M axis is split into bands, each owned by exactly
// one worker, so no output element is ever written by two goroutines and the
// per-element summation order (ascending K, as in GEMM) is independent of
// the worker count — the result is bitwise identical to GEMM's.
// workers <= 0 selects GOMAXPROCS; block <= 0 selects the default band of 64
// rows (bands are merged so each worker repacks B as few times as possible).
func GEMMParallel(a, b *Tensor, block, workers int) *Tensor {
	if block <= 0 {
		block = 64
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m, k, n := gemmDims(a, b)
	out := New(m, n)
	bands := (m + block - 1) / block
	if workers > bands {
		workers = bands
	}
	if workers <= 1 {
		gemmAuto(a.data, b.data, out.data, m, k, n, 0)
		return out
	}
	// Merge bands so every worker gets at most one contiguous run per pass:
	// each band still has exactly one owner (rows are written once), but the
	// per-band B repacking is amortised over bigger row ranges.
	if merged := (m + workers - 1) / workers; merged > block {
		block = merged
		bands = (m + block - 1) / block
	}
	sparse := sparseWorthSkipping(a.data)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				band := int(next.Add(1)) - 1
				if band >= bands {
					return
				}
				i0 := band * block
				i1 := min(i0+block, m)
				if !packedWorthIt(i1-i0, k, n) || sparse {
					gemmRows(a.data, b.data, out.data, i0, i1, k, n, 0)
				} else {
					gemmPackedRange(a.data, b.data, out.data, k, n, i0, i1, 0)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// gemmRows computes the [i0, i1) row band of C += A × B with the reference
// ikj loop (optionally K-blocked; block <= 0 disables blocking), skipping
// zero A elements. This is the kernel every faster route must match bit for
// bit: ascending-K per-element summation in one running chain.
func gemmRows(a, b, c []float32, i0, i1, k, n, block int) {
	if block <= 0 {
		block = k
	}
	for pp := 0; pp < k; pp += block {
		pMax := min(pp+block, k)
		for i := i0; i < i1; i++ {
			crow := c[i*n : (i+1)*n]
			for p := pp; p < pMax; p++ {
				av := a[i*k+p]
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
	}
}

// ConvDims describes the geometry of a 2-D convolution using the Nvidia
// parameter taxonomy from Table II of the paper.
type ConvDims struct {
	N, C, H, W     int // input: batch, channels, rows, cols
	K, R, S        int // kernel: output channels, rows, cols
	G              int // groups
	StrideH        int
	StrideW        int
	PadH, PadW     int
	DilationH      int
	DilationW      int
	outP, outQ     int
	outputResolved bool
}

// Resolve fills derived fields and validates the geometry.
func (d *ConvDims) Resolve() error {
	if d.G == 0 {
		d.G = 1
	}
	if d.StrideH == 0 {
		d.StrideH = 1
	}
	if d.StrideW == 0 {
		d.StrideW = 1
	}
	if d.DilationH == 0 {
		d.DilationH = 1
	}
	if d.DilationW == 0 {
		d.DilationW = 1
	}
	switch {
	case d.N <= 0 || d.C <= 0 || d.H <= 0 || d.W <= 0:
		return fmt.Errorf("tensor: invalid conv input dims N=%d C=%d H=%d W=%d", d.N, d.C, d.H, d.W)
	case d.K <= 0 || d.R <= 0 || d.S <= 0:
		return fmt.Errorf("tensor: invalid conv kernel dims K=%d R=%d S=%d", d.K, d.R, d.S)
	case d.C%d.G != 0 || d.K%d.G != 0:
		return fmt.Errorf("tensor: groups G=%d must divide C=%d and K=%d", d.G, d.C, d.K)
	}
	effR := (d.R-1)*d.DilationH + 1
	effS := (d.S-1)*d.DilationW + 1
	d.outP = (d.H+2*d.PadH-effR)/d.StrideH + 1
	d.outQ = (d.W+2*d.PadW-effS)/d.StrideW + 1
	if d.outP <= 0 || d.outQ <= 0 {
		return fmt.Errorf("tensor: conv output would be empty (P=%d Q=%d)", d.outP, d.outQ)
	}
	d.outputResolved = true
	return nil
}

// P returns the number of output rows. Resolve must have been called.
func (d *ConvDims) P() int {
	if !d.outputResolved {
		if err := d.Resolve(); err != nil {
			panic(err)
		}
	}
	return d.outP
}

// Q returns the number of output columns. Resolve must have been called.
func (d *ConvDims) Q() int {
	if !d.outputResolved {
		if err := d.Resolve(); err != nil {
			panic(err)
		}
	}
	return d.outQ
}

// MACs returns the total multiply-accumulate count of the convolution.
func (d *ConvDims) MACs() int64 {
	return int64(d.N) * int64(d.K) * int64(d.P()) * int64(d.Q()) *
		int64(d.R) * int64(d.S) * int64(d.C/d.G)
}

// Im2Col lowers an NCHW input tensor to the (C/G·R·S) × (N·P·Q) matrix used
// by GEMM convolution, for a single group g.
func Im2Col(in *Tensor, d ConvDims, g int) *Tensor {
	if err := d.Resolve(); err != nil {
		panic(err)
	}
	cg := d.C / d.G
	p, q := d.P(), d.Q()
	rows := cg * d.R * d.S
	cols := d.N * p * q
	out := New(rows, cols)
	for c := 0; c < cg; c++ {
		ic := g*cg + c
		for r := 0; r < d.R; r++ {
			for s := 0; s < d.S; s++ {
				row := (c*d.R+r)*d.S + s
				dst := out.data[row*cols:]
				col := 0
				for n := 0; n < d.N; n++ {
					for y := 0; y < p; y++ {
						iy := y*d.StrideH - d.PadH + r*d.DilationH
						for x := 0; x < q; x++ {
							ix := x*d.StrideW - d.PadW + s*d.DilationW
							var v float32
							if iy >= 0 && iy < d.H && ix >= 0 && ix < d.W {
								v = in.At(n, ic, iy, ix)
							}
							dst[col] = v
							col++
						}
					}
				}
			}
		}
	}
	return out
}

// KernelMatrix flattens a KCRS kernel into the (K/G) × (C/G·R·S) matrix used
// by GEMM convolution, for a single group g.
func KernelMatrix(kernel *Tensor, d ConvDims, g int) *Tensor {
	kg := d.K / d.G
	cg := d.C / d.G
	rows := kg
	cols := cg * d.R * d.S
	out := New(rows, cols)
	for k := 0; k < kg; k++ {
		ok := g*kg + k
		for c := 0; c < cg; c++ {
			for r := 0; r < d.R; r++ {
				for s := 0; s < d.S; s++ {
					out.Set(kernel.At(ok, c, r, s), k, (c*d.R+r)*d.S+s)
				}
			}
		}
	}
	return out
}
