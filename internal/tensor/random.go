package tensor

import (
	"math"
	"math/rand"
	"sort"
)

// RandomUniform fills a new tensor of the given shape with values uniformly
// distributed in [-scale, scale), using a deterministic seed.
func RandomUniform(seed int64, scale float32, shape ...int) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := New(shape...)
	for i := range t.data {
		t.data[i] = (rng.Float32()*2 - 1) * scale
	}
	return t
}

// RandomNormal fills a new tensor with N(0, stddev²) values, deterministic
// per seed. This is the default weight initialisation for the model zoo.
func RandomNormal(seed int64, stddev float32, shape ...int) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64()) * stddev
	}
	return t
}

// Prune zeroes the smallest-magnitude elements of t in place until the given
// fraction (in [0,1]) of elements is zero. This is the magnitude pruning
// used to realise SIGMA's sparsity_ratio configuration: the paper evaluates
// SIGMA "with different levels of pruning" (§VIII-A).
func Prune(t *Tensor, fraction float64) {
	if fraction <= 0 {
		return
	}
	if fraction >= 1 {
		t.Fill(0)
		return
	}
	n := len(t.data)
	target := int(math.Round(fraction * float64(n)))
	if target <= 0 {
		return
	}
	mags := make([]float64, n)
	for i, v := range t.data {
		mags[i] = math.Abs(float64(v))
	}
	sorted := append([]float64(nil), mags...)
	sort.Float64s(sorted)
	threshold := sorted[target-1]
	zeroed := 0
	// First pass: zero strictly-below-threshold elements.
	for i := range t.data {
		if mags[i] < threshold {
			t.data[i] = 0
			zeroed++
		}
	}
	// Second pass: break ties at the threshold deterministically, in index
	// order, until the target count is reached.
	for i := range t.data {
		if zeroed >= target {
			break
		}
		if t.data[i] != 0 && mags[i] == threshold {
			t.data[i] = 0
			zeroed++
		}
	}
}
