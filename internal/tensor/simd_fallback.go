package tensor

// Pure-Go counterparts of the AVX micro-kernels in simd_amd64.s. They are
// the executable specification of the kernels' bitwise contract — per
// output lane, one multiply and one add per reduction step, in ascending
// reduction order — and run wherever the assembly does not (non-amd64
// builds, or amd64 without AVX). TestSIMDKernelsMatchFallback pins the two
// implementations together bit for bit.

// dot8CarryGo is the packed-GEMM inner kernel: c[0:8] carries one running
// K chain per lane, ascending p, over a packed 8-wide B panel.
func dot8CarryGo(k int, a, b, c []float32) {
	c = c[:8:8]
	c0, c1, c2, c3 := c[0], c[1], c[2], c[3]
	c4, c5, c6, c7 := c[4], c[5], c[6], c[7]
	a = a[:k]
	p := 0
	for ; p+1 < k; p += 2 {
		av := a[p]
		bp := b[8*p : 8*p+16 : 8*p+16]
		c0 += av * bp[0]
		c1 += av * bp[1]
		c2 += av * bp[2]
		c3 += av * bp[3]
		c4 += av * bp[4]
		c5 += av * bp[5]
		c6 += av * bp[6]
		c7 += av * bp[7]
		aw := a[p+1]
		c0 += aw * bp[8]
		c1 += aw * bp[9]
		c2 += aw * bp[10]
		c3 += aw * bp[11]
		c4 += aw * bp[12]
		c5 += aw * bp[13]
		c6 += aw * bp[14]
		c7 += aw * bp[15]
	}
	if p < k {
		av := a[p]
		bp := b[8*p : 8*p+8 : 8*p+8]
		c0 += av * bp[0]
		c1 += av * bp[1]
		c2 += av * bp[2]
		c3 += av * bp[3]
		c4 += av * bp[4]
		c5 += av * bp[5]
		c6 += av * bp[6]
		c7 += av * bp[7]
	}
	c[0], c[1], c[2], c[3] = c0, c1, c2, c3
	c[4], c[5], c[6], c[7] = c4, c5, c6, c7
}

// panelDot8Go is the fused-convolution inner kernel: per 8-wide block, a
// fresh accumulator sums the taps in ascending order and is added onto dst
// once — the reference's per-reduction-tile chain.
func panelDot8Go(nv, nblocks int, a, panel, dst []float32) {
	a = a[:nv:nv]
	for kb := 0; kb < nblocks; kb++ {
		var a0, a1, a2, a3, a4, a5, a6, a7 float32
		base := kb * nv * 8
		for t, iv := range a {
			kr := panel[base+t*8 : base+t*8+8 : base+t*8+8]
			a0 += iv * kr[0]
			a1 += iv * kr[1]
			a2 += iv * kr[2]
			a3 += iv * kr[3]
			a4 += iv * kr[4]
			a5 += iv * kr[5]
			a6 += iv * kr[6]
			a7 += iv * kr[7]
		}
		d := dst[kb*8 : kb*8+8 : kb*8+8]
		d[0] += a0
		d[1] += a1
		d[2] += a2
		d[3] += a3
		d[4] += a4
		d[5] += a5
		d[6] += a6
		d[7] += a7
	}
}
